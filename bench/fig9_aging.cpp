// Regenerates Fig. 9: impact of file-system aging on metadata throughput.
// The paper ages the MDS file system by create/delete churn to a target
// utilisation, then re-runs the metadata micro-benchmark:
//   * creation degrades badly (−43 % at 80 % capacity for embedded);
//   * deletion is barely hurt (bitmap-clearing dominates it);
//   * Lustre (ext4/Htree lookup) beats ext3 Redbud, but embedded
//     directories still lead both by >26 %.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/timeline.hpp"
#include "util/table.hpp"
#include "workload/aging.hpp"

namespace {

mif::mds::MdsConfig cfg_for(mif::mfs::DirectoryMode mode,
                            mif::mfs::LookupDiscipline disc) {
  mif::mds::MdsConfig cfg;
  cfg.mfs.mode = mode;
  cfg.mfs.discipline = disc;
  cfg.mfs.geometry.capacity_blocks = 128 * 1024;  // 512 MiB metadata volume
  cfg.mfs.journal_area_blocks = 4096;
  // Small MDS cache relative to the aged working set: lookups hit disk,
  // which is where the Htree-vs-linear-scan and embedded differences live.
  cfg.mfs.cache_blocks = 512;
  cfg.mfs.alloc_groups = 4;  // groups large enough for a full inode table
  return cfg;
}

mif::workload::AgingResult age(mif::mfs::DirectoryMode mode,
                               mif::mfs::LookupDiscipline disc, double target,
                               mif::obs::Timeline* tl = nullptr,
                               mif::obs::Json* metrics_out = nullptr) {
  mif::mds::Mds mds(cfg_for(mode, disc));
  if (tl) mds.set_timeline(tl);
  mif::workload::AgingConfig acfg;
  acfg.target_utilisation = target;
  acfg.files_per_round = 10000;  // large aged directories
  acfg.measure_files = 1000;
  acfg.measure_dirs = 4;
  const auto r = mif::workload::run_aging(mds, acfg);
  if (tl) {
    // Final epoch refreshes the fragmentation lens, so the series' last
    // sample and the exported end-of-run gauges are the SAME snapshot —
    // the invariant scripts/check_bench_json.sh asserts.
    tl->mark_epoch("end");
    if (metrics_out) {
      mif::obs::MetricsRegistry reg;
      mds.export_metrics(reg, "mds");
      mds.frag_lens()->export_metrics(reg, "frag");
      *metrics_out = reg.to_json();
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using mif::Table;
  using mif::mfs::DirectoryMode;
  using mif::mfs::LookupDiscipline;
  mif::obs::BenchReport report("fig9_aging", argc, argv);

  std::printf(
      "Fig 9 — metadata throughput after aging the MDS file system\n"
      "(paper: create suffers most — -43%% at 80%% for embedded; delete "
      "barely; embedded stays >26%% ahead)\n\n");

  Table t({"utilisation", "layout", "create ops/s", "delete ops/s"});
  const struct {
    const char* name;
    DirectoryMode mode;
    LookupDiscipline disc;
  } systems[] = {
      {"Redbud ext3 (normal)", DirectoryMode::kNormal,
       LookupDiscipline::kLinearScan},
      {"Lustre ext4 (htree)", DirectoryMode::kNormal,
       LookupDiscipline::kHtree},
      {"Redbud embedded (MiF)", DirectoryMode::kEmbedded,
       LookupDiscipline::kLinearScan},
  };
  const std::vector<double> targets =
      report.quick() ? std::vector<double>{0.1} : std::vector<double>{0.1, 0.4, 0.6, 0.8};
  for (double target : targets) {
    for (const auto& s : systems) {
      const std::string run_name =
          std::string(s.name) + " @" + std::to_string(target);
      std::unique_ptr<mif::obs::Timeline> tl;
      if (report.timeseries_enabled()) {
        tl = std::make_unique<mif::obs::Timeline>(report.timeline_config());
        tl->set_label(run_name);
      }
      mif::obs::Json metrics;
      const auto r = age(s.mode, s.disc, target, tl.get(),
                         report.json_enabled() ? &metrics : nullptr);
      t.add_row({Table::num(100.0 * r.utilisation_reached, 0) + "%", s.name,
                 Table::num(r.create_ops_per_sec, 0),
                 Table::num(r.delete_ops_per_sec, 0)});
      if (report.json_enabled()) {
        mif::obs::Json config;
        config["target_utilisation"] = target;
        config["layout"] = s.name;
        mif::obs::Json results;
        results["utilisation_reached"] = r.utilisation_reached;
        results["create_ops_per_sec"] = r.create_ops_per_sec;
        results["delete_ops_per_sec"] = r.delete_ops_per_sec;
        report.add_run(run_name, std::move(config), std::move(results),
                       tl ? std::move(metrics) : mif::obs::Json{},
                       tl ? tl->to_json() : mif::obs::Json{});
      }
    }
  }
  t.print();
  report.write();
  return 0;
}
