// Regenerates Table I: number of extents ("Seg Counts") and average MDS CPU
// utilisation for IOR and BTIO without collective I/O, under Vanilla /
// Reservation / On-demand allocation.  The paper's rows:
//   Vanilla      IOR 2023  BTIO 1332   cpu 7% / 10%
//   Reservation  IOR 1242  BTIO  701   cpu 6% /  8%
//   On-demand    IOR  231  BTIO  106   cpu 1.1% / 1.0%
// — a 5–10× extent reduction that translates into MDS CPU savings.
#include <cstdio>

#include "obs/report.hpp"
#include "util/table.hpp"
#include "workload/btio.hpp"
#include "workload/ior.hpp"

namespace {

struct Row {
  mif::u64 extents;
  double cpu;
};

Row run_ior_mode(mif::alloc::AllocatorMode mode, bool quick) {
  mif::core::ClusterConfig cfg;
  cfg.num_targets = 8;
  cfg.target.allocator = mode;
  mif::core::ParallelFileSystem fs(cfg);
  mif::workload::IorConfig wcfg;
  wcfg.processes = quick ? 16 : 64;
  wcfg.request_bytes = 32 * 1024;
  wcfg.bytes_per_process = quick ? 512 * 1024 : 2 * 1024 * 1024;
  const auto r = mif::workload::run_ior(fs, wcfg);
  return {r.extents, r.mds_cpu};
}

Row run_btio_mode(mif::alloc::AllocatorMode mode, bool quick) {
  mif::core::ClusterConfig cfg;
  cfg.num_targets = 8;
  cfg.target.allocator = mode;
  mif::core::ParallelFileSystem fs(cfg);
  mif::workload::BtioConfig wcfg;
  wcfg.processes = quick ? 16 : 64;
  wcfg.timesteps = quick ? 4 : 10;
  wcfg.cells_per_process = 16;
  wcfg.cell_bytes = 8 * 1024;
  const auto r = mif::workload::run_btio(fs, wcfg);
  return {r.extents, r.mds_cpu};
}

}  // namespace

int main(int argc, char** argv) {
  using mif::Table;
  using mif::alloc::AllocatorMode;
  mif::obs::BenchReport report("table1_extents", argc, argv);
  std::printf(
      "Table I — extents generated and MDS CPU, non-collective runs\n"
      "(paper: vanilla 2023/1332, reservation 1242/701, on-demand 231/106;\n"
      " on-demand cuts extents 5-10x and MDS CPU accordingly)\n\n");

  Table t({"mode", "app", "seg counts", "MDS cpu"});
  const struct {
    const char* name;
    const char* key;
    AllocatorMode mode;
  } modes[] = {{"Vanilla", "vanilla", AllocatorMode::kVanilla},
               {"Reservation", "reservation", AllocatorMode::kReservation},
               {"On-demand", "ondemand", AllocatorMode::kOnDemand}};
  for (const auto& m : modes) {
    const Row ior = run_ior_mode(m.mode, report.quick());
    const Row btio = run_btio_mode(m.mode, report.quick());
    t.add_row({m.name, "IOR", std::to_string(ior.extents),
               Table::num(100.0 * ior.cpu, 1) + "%"});
    t.add_row({"", "BTIO", std::to_string(btio.extents),
               Table::num(100.0 * btio.cpu, 1) + "%"});
    if (report.json_enabled()) {
      for (const auto& app : {std::pair{"ior", ior}, std::pair{"btio", btio}}) {
        mif::obs::Json config;
        config["mode"] = m.key;
        config["app"] = app.first;
        mif::obs::Json results;
        results["extents"] = app.second.extents;
        results["mds_cpu"] = app.second.cpu;
        report.add_run(std::string("mode=") + m.key + " app=" + app.first,
                       std::move(config), std::move(results));
      }
    }
  }
  t.print();
  report.write();
  return 0;
}
