// Ablation: embedded-directory lazy-free batch size (§IV-A).  Deleting a
// directory's files one by one, the batch size controls how often the
// free-space bitmap transaction is paid.
#include <cstdio>

#include "mds/mds.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"

namespace {

struct Out {
  double ops_per_sec;
  mif::u64 disk_accesses;
};

Out run(mif::u64 batch, int files) {
  using namespace mif;
  mds::MdsConfig cfg;
  cfg.mfs.mode = mfs::DirectoryMode::kEmbedded;
  cfg.mfs.embedded.lazy_free_batch = batch;
  cfg.mfs.cache_blocks = 4096;
  mds::Mds mds(cfg);

  const int kFiles = files;
  if (!mds.mkdir("d")) return {};
  for (int i = 0; i < kFiles; ++i)
    (void)mds.create("d/f" + std::to_string(i));
  mds.finish();
  mds.fs().cache().invalidate_all();

  const double t0 = mds.fs().elapsed_ms();
  const u64 a0 = mds.fs().disk_accesses();
  for (int i = 0; i < kFiles; ++i)
    (void)mds.unlink("d/f" + std::to_string(i));
  mds.finish();
  const double dt = mds.fs().elapsed_ms() - t0;
  return {kFiles / (dt * 1e-3), mds.fs().disk_accesses() - a0};
}

}  // namespace

int main(int argc, char** argv) {
  using mif::Table;
  mif::obs::BenchReport report("ablation_lazyfree", argc, argv);
  const int files = report.quick() ? 500 : 5000;
  std::printf(
      "Ablation — lazy-free batch size vs delete throughput (%d files)\n\n",
      files);
  Table t({"batch", "delete ops/s", "disk accesses"});
  for (mif::u64 batch : {1u, 4u, 16u, 64u, 256u}) {
    const Out o = run(batch, files);
    t.add_row({std::to_string(batch), Table::num(o.ops_per_sec, 0),
               std::to_string(o.disk_accesses)});
    if (report.json_enabled()) {
      mif::obs::Json config;
      config["lazy_free_batch"] = batch;
      mif::obs::Json results;
      results["delete_ops_per_sec"] = o.ops_per_sec;
      results["disk_accesses"] = o.disk_accesses;
      report.add_run("batch=" + std::to_string(batch), std::move(config),
                     std::move(results));
    }
  }
  t.print();
  report.write();
  std::printf(
      "\nBatch=1 degenerates to eager freeing (one bitmap transaction per "
      "unlink); the paper's batching amortises it away.\n");
  return 0;
}
