// Ablation for §III-C's sizing claim: "in our experiment on creating files
// (linux kernel code files), using static 256KB preallocation occupied 8GB
// space, 100 times more than static 16K preallocation."  We create a
// kernel-shaped tree of small files under fixed static preallocations of
// 16 KiB and 256 KiB versus the adaptive on-demand policy, and report the
// space each policy pins.
#include <cstdio>

#include "obs/report.hpp"
#include "osd/storage_target.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct Out {
  mif::u64 data_blocks;   // blocks holding actual file bytes
  mif::u64 pinned_blocks; // blocks unavailable to others after create+close
};

int g_files = 8000;

Out run_static(mif::u64 prealloc_bytes) {
  using namespace mif;
  osd::TargetConfig cfg;
  cfg.allocator = alloc::AllocatorMode::kStatic;
  cfg.geometry.capacity_blocks = u64{4} * 1024 * 1024;  // 16 GiB
  osd::StorageTarget t(cfg);
  Rng rng(2630);
  u64 data = 0;
  for (int i = 0; i < g_files; ++i) {
    const InodeNo ino{static_cast<u64>(i) + 1};
    const u64 size = rng.pareto(512, 128 * 1024, 1.4);  // kernel-file sizes
    const u64 blocks = bytes_to_blocks(size);
    (void)t.preallocate(ino, bytes_to_blocks(prealloc_bytes));
    (void)t.write(ino, StreamId{1, 0}, FileBlock{0}, blocks);
    t.close_file(ino);
    data += blocks;
  }
  t.drain();
  return {data, cfg.geometry.capacity_blocks - t.space().free_blocks()};
}

Out run_ondemand() {
  using namespace mif;
  osd::TargetConfig cfg;
  cfg.allocator = alloc::AllocatorMode::kOnDemand;
  cfg.geometry.capacity_blocks = u64{4} * 1024 * 1024;
  osd::StorageTarget t(cfg);
  Rng rng(2630);
  u64 data = 0;
  for (int i = 0; i < g_files; ++i) {
    const InodeNo ino{static_cast<u64>(i) + 1};
    const u64 size = rng.pareto(512, 128 * 1024, 1.4);
    const u64 blocks = bytes_to_blocks(size);
    // Files arrive as sequential writes (untar), 16 KiB at a time.
    for (u64 b = 0; b < blocks; b += 4) {
      (void)t.write(ino, StreamId{1, 0}, FileBlock{b},
                    std::min<u64>(4, blocks - b));
    }
    t.close_file(ino);
    data += blocks;
  }
  t.drain();
  return {data, cfg.geometry.capacity_blocks - t.space().free_blocks()};
}

}  // namespace

int main(int argc, char** argv) {
  using mif::Table;
  mif::obs::BenchReport report("ablation_prealloc_waste", argc, argv);
  if (report.quick()) g_files = 1000;
  std::printf(
      "Ablation — preallocation sizing waste on %d kernel-tree files\n"
      "(paper: static 256KB occupies ~100x the space of static 16KB)\n\n",
      g_files);
  Table t({"policy", "file data MiB", "space pinned MiB", "overhead"});
  auto row = [&](const char* name, const Out& o) {
    const double data_mib =
        static_cast<double>(mif::blocks_to_bytes(o.data_blocks)) / (1 << 20);
    const double pinned_mib =
        static_cast<double>(mif::blocks_to_bytes(o.pinned_blocks)) / (1 << 20);
    t.add_row({name, Table::num(data_mib, 1), Table::num(pinned_mib, 1),
               Table::num(pinned_mib / data_mib, 2) + "x"});
    if (report.json_enabled()) {
      mif::obs::Json config;
      config["policy"] = name;
      mif::obs::Json results;
      results["data_blocks"] = o.data_blocks;
      results["pinned_blocks"] = o.pinned_blocks;
      report.add_run(name, std::move(config), std::move(results));
    }
  };
  row("static 16 KiB", run_static(16 * 1024));
  row("static 256 KiB", run_static(256 * 1024));
  row("on-demand (adaptive)", run_ondemand());
  t.print();
  report.write();
  std::printf(
      "\nOn-demand sizes its persistent windows from observed write sizes, so "
      "small files pin little while big sequential files still stream.\n");
  return 0;
}
