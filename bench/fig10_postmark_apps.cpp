// Regenerates Fig. 10: PostMark plus three source-tree applications (untar,
// make, make-clean) under the two directory-placement algorithms, reported
// as execution-time proportions.  The paper: 4–13 % reduction for the
// file-intensive programs, only ~4 % for CPU-bound make.
//
// Scale note: the paper runs PostMark with 100 K files / 500 K transactions
// on real hardware; we run a proportionally smaller configuration (same
// transaction mix) — the comparison is between layouts at identical
// configuration, so the proportion is what carries over.
#include <cstdio>

#include "obs/report.hpp"
#include "util/table.hpp"
#include "workload/filetree.hpp"
#include "workload/postmark.hpp"

namespace {

mif::core::ClusterConfig cluster(mif::mfs::DirectoryMode mode) {
  mif::core::ClusterConfig cfg;
  cfg.num_targets = 4;
  cfg.target.allocator = mif::alloc::AllocatorMode::kOnDemand;
  cfg.mds.mfs.mode = mode;
  cfg.mds.mfs.cache_blocks = 4096;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using mif::Table;
  using mif::mfs::DirectoryMode;
  mif::obs::BenchReport report("fig10_postmark_apps", argc, argv);

  std::printf(
      "Fig 10 — PostMark and applications, execution-time proportion\n"
      "(normal directory = 100%%; paper: 4-13%% reduction, make only ~4%% — "
      "CPU-bound)\n\n");

  Table t({"program", "normal ms", "embedded ms", "proportion",
           "reduction"});

  // ---- PostMark -----------------------------------------------------------
  {
    mif::workload::PostmarkConfig pcfg;
    pcfg.base_files = report.quick() ? 1000 : 10000;
    pcfg.transactions = report.quick() ? 5000 : 50000;
    mif::core::ParallelFileSystem nfs(cluster(DirectoryMode::kNormal));
    mif::core::ParallelFileSystem efs(cluster(DirectoryMode::kEmbedded));
    const auto n = mif::workload::run_postmark(nfs, pcfg);
    const auto e = mif::workload::run_postmark(efs, pcfg);
    t.add_row({"PostMark", Table::num(n.elapsed_ms, 0),
               Table::num(e.elapsed_ms, 0),
               Table::num(100.0 * e.elapsed_ms / n.elapsed_ms, 1) + "%",
               Table::pct(1.0 - e.elapsed_ms / n.elapsed_ms)});
    if (report.json_enabled()) {
      mif::obs::Json config;
      config["program"] = "postmark";
      mif::obs::Json results;
      results["normal_ms"] = n.elapsed_ms;
      results["embedded_ms"] = e.elapsed_ms;
      report.add_run("postmark", std::move(config), std::move(results));
    }
  }

  // ---- tar / make / make-clean over a kernel-shaped tree ------------------
  {
    mif::core::ParallelFileSystem nfs(cluster(DirectoryMode::kNormal));
    mif::core::ParallelFileSystem efs(cluster(DirectoryMode::kEmbedded));
    mif::workload::FileTreeConfig fcfg;  // defaults: 300 dirs, 12000 files
    mif::workload::FileTreeWorkload ntree(nfs, fcfg);
    mif::workload::FileTreeWorkload etree(efs, fcfg);

    struct Phase {
      const char* name;
      mif::workload::AppRunResult n, e;
    };
    Phase phases[] = {
        {"tar -x (untar)", ntree.untar(), etree.untar()},
        {"make", ntree.make(), etree.make()},
        {"make clean", ntree.make_clean(), etree.make_clean()},
        {"tar -c (scan)", ntree.tar_scan(), etree.tar_scan()},
    };
    for (const Phase& p : phases) {
      t.add_row({p.name, Table::num(p.n.elapsed_ms, 0),
                 Table::num(p.e.elapsed_ms, 0),
                 Table::num(100.0 * p.e.elapsed_ms / p.n.elapsed_ms, 1) + "%",
                 Table::pct(1.0 - p.e.elapsed_ms / p.n.elapsed_ms)});
      if (report.json_enabled()) {
        mif::obs::Json config;
        config["program"] = p.name;
        mif::obs::Json results;
        results["normal_ms"] = p.n.elapsed_ms;
        results["embedded_ms"] = p.e.elapsed_ms;
        report.add_run(p.name, std::move(config), std::move(results));
      }
    }
  }

  t.print();
  report.write();
  return 0;
}
