// Ablation: the layout_miss demotion threshold (§III-B).  A mixed workload
// (sequential streams + random streams on the same shared file) is run with
// different thresholds: too low demotes sequential streams on a single
// hiccup, too high lets random streams hold reservations they never use.
#include <cstdio>

#include "alloc/ondemand.hpp"
#include "obs/report.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct Out {
  mif::u64 extents;
  mif::u64 released;     // blocks reserved then given back (waste)
  mif::u64 demoted;      // streams classified random
};

Out run(mif::u32 threshold) {
  using namespace mif;
  block::FreeSpace space(DiskBlock{0}, 1024 * 1024, 8);
  alloc::AllocatorTuning tuning;
  tuning.miss_threshold = threshold;
  alloc::OnDemandAllocator a(space, tuning);
  block::ExtentMap map;
  Rng rng(99);

  const u32 seq_streams = 8, rnd_streams = 8;
  const u64 per_stream = 512;
  std::vector<u64> cursor(seq_streams, 0);
  for (u64 round = 0; round < per_stream; ++round) {
    for (u32 p = 0; p < seq_streams; ++p) {
      // Sequential stream with occasional hiccups (2 %): a far jump ahead
      // that escapes even a ramped-up sequential window — a layout_miss.
      // Too low a threshold demotes these still-mostly-sequential streams.
      if (rng.chance(0.02) && cursor[p] + 64 < per_stream) cursor[p] += 64;
      if (cursor[p] >= per_stream) continue;
      const u64 logical = static_cast<u64>(p) * per_stream + cursor[p];
      ++cursor[p];
      (void)a.extend({InodeNo{1}, StreamId{p, 0}, FileBlock{logical}, 1}, map);
    }
    for (u32 q = 0; q < rnd_streams; ++q) {
      const u64 base = (seq_streams + static_cast<u64>(q)) * per_stream;
      const u64 logical = base + rng.uniform(0, per_stream - 1);
      (void)a.extend(
          {InodeNo{1}, StreamId{seq_streams + q, 0}, FileBlock{logical}, 1},
          map);
    }
  }
  // Count only the sequential region's extents: the random half fragments
  // identically under every threshold.
  u64 seq_extents = 0;
  for (const auto& e : map.extents())
    if (e.file_off.v < u64{seq_streams} * per_stream) ++seq_extents;
  return {seq_extents, a.stats().released_blocks,
          a.stats().prealloc_disabled};
}

}  // namespace

int main(int argc, char** argv) {
  using mif::Table;
  mif::obs::BenchReport report("ablation_miss_threshold", argc, argv);
  std::printf(
      "Ablation — miss threshold on a mixed sequential+random stream mix\n"
      "(8 sequential streams with 2%% hiccups + 8 random streams)\n\n");
  Table t({"threshold", "extents", "released (wasted) blocks",
           "streams demoted"});
  for (mif::u32 thr : {1u, 2u, 4u, 8u, 16u}) {
    const Out o = run(thr);
    t.add_row({std::to_string(thr), std::to_string(o.extents),
               std::to_string(o.released), std::to_string(o.demoted)});
    if (report.json_enabled()) {
      mif::obs::Json config;
      config["miss_threshold"] = thr;
      mif::obs::Json results;
      results["extents"] = o.extents;
      results["released_blocks"] = o.released;
      results["streams_demoted"] = o.demoted;
      report.add_run("threshold=" + std::to_string(thr), std::move(config),
                     std::move(results));
    }
  }
  t.print();
  report.write();
  std::printf(
      "\nA threshold around 4 keeps hiccuping sequential streams preallocated "
      "while random streams are cut off quickly.\n");
  return 0;
}
