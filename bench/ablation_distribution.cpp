// Ablation for §IV-D: how the metadata distribution policy interacts with
// embedded directories.  The paper's limitation: hash-based placement
// scatters a directory's children across servers, so the embedded layout's
// co-location cannot help; subtree delegation preserves it.
#include <cstdio>

#include "mds/subtree_cluster.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"

namespace {

struct Out {
  mif::u64 accesses;
  double ms;
  mif::u64 fanout;
};

Out run(mif::mds::DistributionPolicy policy, mif::mfs::DirectoryMode mode,
        bool quick) {
  mif::mds::MdsConfig cfg;
  cfg.mfs.mode = mode;
  cfg.mfs.cache_blocks = 2048;
  mif::mds::SubtreeCluster cluster(4, policy, cfg);

  const int kDirs = 4, kFiles = quick ? 250 : 2500;
  for (int d = 0; d < kDirs; ++d) {
    (void)cluster.mkdir("proj" + std::to_string(d));
    for (int f = 0; f < kFiles; ++f) {
      (void)cluster.create("proj" + std::to_string(d) + "/f" +
                           std::to_string(f));
    }
  }
  for (std::size_t s = 0; s < cluster.size(); ++s) {
    cluster.server(s).finish();
    cluster.server(s).fs().cache().invalidate_all();
  }
  const mif::u64 a0 = cluster.total_disk_accesses();
  const double t0 = cluster.total_elapsed_ms();
  const mif::u64 f0 = cluster.stats().fanout_requests;
  for (int d = 0; d < kDirs; ++d) {
    (void)cluster.readdir_stats("proj" + std::to_string(d));
  }
  for (std::size_t s = 0; s < cluster.size(); ++s) cluster.server(s).finish();
  return {cluster.total_disk_accesses() - a0,
          cluster.total_elapsed_ms() - t0,
          cluster.stats().fanout_requests - f0};
}

}  // namespace

int main(int argc, char** argv) {
  using mif::Table;
  using mif::mds::DistributionPolicy;
  using mif::mfs::DirectoryMode;
  mif::obs::BenchReport report("ablation_distribution", argc, argv);
  std::printf(
      "Ablation — §IV-D: distribution policy x directory layout\n"
      "(readdir-stat over four 2500-file directories on a 4-server MDS "
      "cluster)\n\n");
  Table t({"policy", "layout", "disk accesses", "sweep ms",
           "per-dir fan-out"});
  for (auto policy : {DistributionPolicy::kSubtree, DistributionPolicy::kHash}) {
    for (auto mode : {DirectoryMode::kNormal, DirectoryMode::kEmbedded}) {
      const Out o = run(policy, mode, report.quick());
      t.add_row({std::string(to_string(policy)),
                 std::string(to_string(mode)), std::to_string(o.accesses),
                 Table::num(o.ms, 1), Table::num(double(o.fanout) / 4.0, 1)});
      if (report.json_enabled()) {
        mif::obs::Json config;
        config["policy"] = to_string(policy);
        config["layout"] = to_string(mode);
        mif::obs::Json results;
        results["disk_accesses"] = o.accesses;
        results["sweep_ms"] = o.ms;
        results["fanout_requests"] = o.fanout;
        report.add_run(std::string(to_string(policy)) + " " +
                           std::string(to_string(mode)),
                       std::move(config), std::move(results));
      }
    }
  }
  t.print();
  report.write();
  std::printf(
      "\nUnder subtree delegation the embedded layout answers a listing from "
      "one server's\ncontiguous region; hash placement forces every server "
      "to sweep its shard, erasing the benefit (§IV-D).\n");
  return 0;
}
