// Ablation: on-demand window tuning (§III-C).  Sweeps the growth scale
// (2 vs 4, the two values the paper allows) and max_preallocation_size
// (the "tunable" cap) on the shared-file micro-benchmark, reporting
// throughput, extents and wasted (released) blocks.
#include <cstdio>
#include <vector>

#include "obs/report.hpp"
#include "util/table.hpp"
#include "workload/shared_file.hpp"

namespace {

struct Out {
  double mbps;
  mif::u64 extents;
  mif::u64 released;
};

Out run(mif::u64 scale, mif::u64 max_blocks, bool quick) {
  mif::core::ClusterConfig cfg;
  cfg.num_targets = 5;
  cfg.target.allocator = mif::alloc::AllocatorMode::kOnDemand;
  cfg.target.tuning.scale = scale;
  cfg.target.tuning.max_preallocation_blocks = max_blocks;
  mif::core::ParallelFileSystem fs(cfg);
  mif::workload::SharedFileConfig wcfg;
  wcfg.processes = quick ? 8 : 32;
  wcfg.blocks_per_process = quick ? 64 : 256;
  const auto r = mif::workload::run_shared_file(fs, wcfg);
  mif::u64 released = 0;
  for (std::size_t t = 0; t < fs.num_targets(); ++t)
    released += fs.target(t).allocator().stats().released_blocks;
  return {r.phase2_throughput_mbps, r.extents, released};
}

}  // namespace

int main(int argc, char** argv) {
  using mif::Table;
  mif::obs::BenchReport report("ablation_window", argc, argv);
  std::printf(
      "Ablation — on-demand window sizing (scale x max cap), 32 streams\n\n");
  Table t({"scale", "max window KiB", "read MB/s", "extents",
           "released blocks"});
  const std::vector<mif::u64> caps =
      report.quick() ? std::vector<mif::u64>{64, 1024}
                     : std::vector<mif::u64>{64, 256, 1024, 2048};
  for (mif::u64 scale : {2u, 4u}) {
    for (mif::u64 cap : caps) {
      const Out o = run(scale, cap, report.quick());
      t.add_row({std::to_string(scale),
                 std::to_string(cap * mif::kBlockSize / 1024),
                 Table::num(o.mbps), std::to_string(o.extents),
                 std::to_string(o.released)});
      if (report.json_enabled()) {
        mif::obs::Json config;
        config["scale"] = scale;
        config["max_preallocation_blocks"] = cap;
        mif::obs::Json results;
        results["read_mbps"] = o.mbps;
        results["extents"] = o.extents;
        results["released_blocks"] = o.released;
        report.add_run("scale=" + std::to_string(scale) +
                           " cap=" + std::to_string(cap),
                       std::move(config), std::move(results));
      }
    }
  }
  t.print();
  report.write();
  std::printf(
      "\nLarger caps keep long sequential runs contiguous; the scale mostly "
      "affects how fast the window gets there.\n");
  return 0;
}
