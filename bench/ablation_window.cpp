// Ablation: on-demand window tuning (§III-C).  Sweeps the growth scale
// (2 vs 4, the two values the paper allows) and max_preallocation_size
// (the "tunable" cap) on the shared-file micro-benchmark, reporting
// throughput, extents and wasted (released) blocks.
#include <cstdio>

#include "util/table.hpp"
#include "workload/shared_file.hpp"

namespace {

struct Out {
  double mbps;
  mif::u64 extents;
  mif::u64 released;
};

Out run(mif::u64 scale, mif::u64 max_blocks) {
  mif::core::ClusterConfig cfg;
  cfg.num_targets = 5;
  cfg.target.allocator = mif::alloc::AllocatorMode::kOnDemand;
  cfg.target.tuning.scale = scale;
  cfg.target.tuning.max_preallocation_blocks = max_blocks;
  mif::core::ParallelFileSystem fs(cfg);
  mif::workload::SharedFileConfig wcfg;
  wcfg.processes = 32;
  wcfg.blocks_per_process = 256;
  const auto r = mif::workload::run_shared_file(fs, wcfg);
  mif::u64 released = 0;
  for (std::size_t t = 0; t < fs.num_targets(); ++t)
    released += fs.target(t).allocator().stats().released_blocks;
  return {r.phase2_throughput_mbps, r.extents, released};
}

}  // namespace

int main() {
  using mif::Table;
  std::printf(
      "Ablation — on-demand window sizing (scale x max cap), 32 streams\n\n");
  Table t({"scale", "max window KiB", "read MB/s", "extents",
           "released blocks"});
  for (mif::u64 scale : {2u, 4u}) {
    for (mif::u64 cap : {64u, 256u, 1024u, 2048u}) {
      const Out o = run(scale, cap);
      t.add_row({std::to_string(scale),
                 std::to_string(cap * mif::kBlockSize / 1024),
                 Table::num(o.mbps), std::to_string(o.extents),
                 std::to_string(o.released)});
    }
  }
  t.print();
  std::printf(
      "\nLarger caps keep long sequential runs contiguous; the scale mostly "
      "affects how fast the window gets there.\n");
  return 0;
}
