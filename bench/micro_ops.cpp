// google-benchmark micro-benchmarks of the hot library primitives: bitmap
// run search, extent-map insert/lookup, allocator extend per strategy, disk
// service and scheduler drain.  These guard the simulator's own performance
// (the figure benches replay hundreds of thousands of operations).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "alloc/allocator.hpp"
#include "block/bitmap.hpp"
#include "core/pfs.hpp"
#include "obs/report.hpp"
#include "rpc/fault.hpp"
#include "sim/io_scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace mif;

// `--replicas N` / `--kill-osd id@ms` (parsed and validated by BenchReport —
// bad values exit 2 before google-benchmark sees argv).
u32 g_replicas = 0;
bool g_kill = false;
u32 g_kill_target = 0;
double g_kill_at_ms = 0.0;

void BM_BitmapFindRun(benchmark::State& state) {
  block::Bitmap bm(1 << 20);
  Rng rng(1);
  // Fragment: occupy every other 8-block chunk.
  for (u64 i = 0; i < (1 << 20); i += 16) bm.set_range(i, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bm.find_run(rng.uniform(0, (1 << 20) - 1), 8));
  }
}
BENCHMARK(BM_BitmapFindRun);

void BM_BitmapSetClear(benchmark::State& state) {
  block::Bitmap bm(1 << 20);
  u64 pos = 0;
  for (auto _ : state) {
    bm.set_range(pos, 64);
    bm.clear_range(pos, 64);
    pos = (pos + 64) % ((1 << 20) - 64);
  }
}
BENCHMARK(BM_BitmapSetClear);

void BM_ExtentMapInsertFragmented(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    block::ExtentMap m;
    state.ResumeTiming();
    // Worst case: nothing merges.
    for (u64 i = 0; i < 1024; ++i) {
      m.insert({FileBlock{i * 2}, DiskBlock{i * 64 + 7}, 1,
                block::kExtentNone});
    }
    benchmark::DoNotOptimize(m.extent_count());
  }
}
BENCHMARK(BM_ExtentMapInsertFragmented);

void BM_ExtentMapLookup(benchmark::State& state) {
  block::ExtentMap m;
  for (u64 i = 0; i < 4096; ++i)
    m.insert({FileBlock{i * 2}, DiskBlock{i * 64}, 1, block::kExtentNone});
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.lookup(FileBlock{rng.uniform(0, 8191)}));
  }
}
BENCHMARK(BM_ExtentMapLookup);

void BM_AllocatorExtend(benchmark::State& state) {
  const auto mode = static_cast<alloc::AllocatorMode>(state.range(0));
  block::FreeSpace space(DiskBlock{0}, u64{8} * 1024 * 1024, 16);
  auto a = alloc::make_allocator(mode, space);
  block::ExtentMap map;
  u64 logical = 0;
  for (auto _ : state) {
    if (!a->extend({InodeNo{1}, StreamId{1, 0}, FileBlock{logical}, 4}, map)
             .ok()) {
      // Device filled mid-run: recycle the file and keep timing.
      state.PauseTiming();
      a->delete_file(InodeNo{1}, map);
      logical = 0;
      state.ResumeTiming();
      continue;
    }
    logical += 4;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AllocatorExtend)
    ->Arg(static_cast<int>(alloc::AllocatorMode::kVanilla))
    ->Arg(static_cast<int>(alloc::AllocatorMode::kReservation))
    ->Arg(static_cast<int>(alloc::AllocatorMode::kOnDemand));

void BM_DiskServiceSequential(benchmark::State& state) {
  sim::Disk d;
  u64 pos = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        d.service({sim::IoKind::kWrite,
                   DiskBlock{pos % (d.geometry().capacity_blocks - 64)}, 64}));
    pos += 64;
  }
}
BENCHMARK(BM_DiskServiceSequential);

void BM_SchedulerDrain128(benchmark::State& state) {
  sim::Disk d;
  sim::IoScheduler s(d, 1 << 20);
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 128; ++i) {
      s.submit({sim::IoKind::kRead,
                DiskBlock{rng.uniform(0, d.geometry().capacity_blocks - 8)},
                4});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.drain());
  }
}
BENCHMARK(BM_SchedulerDrain128);

// Replicated stripe-unit writes through the whole stack (4 targets,
// g_replicas-way); with --kill-osd the scheduled fault fires mid-run and the
// fan degrades around the dead target.  Registered only when --replicas >= 2
// so the default benchmark list is unchanged.
void BM_ReplicatedStripeWrite(benchmark::State& state) {
  core::ClusterConfig cfg;
  cfg.num_targets = 4;
  cfg.stripe = {4, 16};
  cfg.redundancy.replicas = g_replicas;
  if (g_kill) cfg.rpc.inject_faults = true;
  core::ParallelFileSystem fs(cfg);
  if (g_kill) fs.transport().fault()->kill_osd(g_kill_target, g_kill_at_ms);
  auto client = fs.connect(ClientId{1});
  auto fh = client.create("replicated.dat");
  u64 off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        client.write(*fh, 0, off, 8 * kBlockSize).ok());
    off += 8 * kBlockSize;
  }
  fs.drain_data();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

/// Drop the harness's own flags from argv before handing it to
/// google-benchmark (which rejects arguments it does not recognize).
std::vector<char*> strip_harness_flags(int argc, char** argv) {
  std::vector<char*> args;
  args.push_back(argv[0]);
  const std::string_view valued[] = {
      "--json",           "--trace",     "--pipeline-depth",
      "--mds-shards",     "--collective-aggregators",
      "--list-io",        "--qos",       "--adaptive-depth",
      "--replicas",       "--kill-osd"};
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--quick" || a == "--attribution" || a == "--timeseries" ||
        a.rfind("--timeseries=", 0) == 0) {
      continue;
    }
    bool skip = false;
    for (const std::string_view f : valued) {
      if (a == f) {
        ++i;  // consume the value too
        skip = true;
        break;
      }
      if (a.size() > f.size() && a.rfind(f, 0) == 0 && a[f.size()] == '=') {
        skip = true;
        break;
      }
    }
    if (!skip) args.push_back(argv[i]);
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  // BenchReport owns flag validation: zero/negative/garbage counts and a
  // malformed or unreplicated --kill-osd exit 2 here, before any benchmark
  // runs.
  mif::obs::BenchReport report("micro_ops", argc, argv);
  g_replicas = report.replicas();
  if (g_replicas >= 2) {
    mif::redundancy::Policy policy;
    policy.replicas = g_replicas;
    if (const std::string err = mif::redundancy::validate(policy, 4);
        !err.empty()) {
      std::fprintf(stderr, "micro_ops: bad --replicas %u: %s\n", g_replicas,
                   err.c_str());
      std::exit(2);
    }
    if (report.kill_armed()) {
      if (report.kill_target() >= 4) {
        std::fprintf(stderr,
                     "micro_ops: bad --kill-osd target %u: the replicated "
                     "write bench mounts 4 targets\n",
                     report.kill_target());
        std::exit(2);
      }
      g_kill = true;
      g_kill_target = report.kill_target();
      g_kill_at_ms = report.kill_at_ms();
    }
    benchmark::RegisterBenchmark("BM_ReplicatedStripeWrite",
                                 BM_ReplicatedStripeWrite);
  }
  std::vector<char*> args = strip_harness_flags(argc, argv);
  int bargc = static_cast<int>(args.size());
  benchmark::Initialize(&bargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
