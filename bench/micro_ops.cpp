// google-benchmark micro-benchmarks of the hot library primitives: bitmap
// run search, extent-map insert/lookup, allocator extend per strategy, disk
// service and scheduler drain.  These guard the simulator's own performance
// (the figure benches replay hundreds of thousands of operations).
#include <benchmark/benchmark.h>

#include "alloc/allocator.hpp"
#include "block/bitmap.hpp"
#include "sim/io_scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace mif;

void BM_BitmapFindRun(benchmark::State& state) {
  block::Bitmap bm(1 << 20);
  Rng rng(1);
  // Fragment: occupy every other 8-block chunk.
  for (u64 i = 0; i < (1 << 20); i += 16) bm.set_range(i, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bm.find_run(rng.uniform(0, (1 << 20) - 1), 8));
  }
}
BENCHMARK(BM_BitmapFindRun);

void BM_BitmapSetClear(benchmark::State& state) {
  block::Bitmap bm(1 << 20);
  u64 pos = 0;
  for (auto _ : state) {
    bm.set_range(pos, 64);
    bm.clear_range(pos, 64);
    pos = (pos + 64) % ((1 << 20) - 64);
  }
}
BENCHMARK(BM_BitmapSetClear);

void BM_ExtentMapInsertFragmented(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    block::ExtentMap m;
    state.ResumeTiming();
    // Worst case: nothing merges.
    for (u64 i = 0; i < 1024; ++i) {
      m.insert({FileBlock{i * 2}, DiskBlock{i * 64 + 7}, 1,
                block::kExtentNone});
    }
    benchmark::DoNotOptimize(m.extent_count());
  }
}
BENCHMARK(BM_ExtentMapInsertFragmented);

void BM_ExtentMapLookup(benchmark::State& state) {
  block::ExtentMap m;
  for (u64 i = 0; i < 4096; ++i)
    m.insert({FileBlock{i * 2}, DiskBlock{i * 64}, 1, block::kExtentNone});
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.lookup(FileBlock{rng.uniform(0, 8191)}));
  }
}
BENCHMARK(BM_ExtentMapLookup);

void BM_AllocatorExtend(benchmark::State& state) {
  const auto mode = static_cast<alloc::AllocatorMode>(state.range(0));
  block::FreeSpace space(DiskBlock{0}, u64{8} * 1024 * 1024, 16);
  auto a = alloc::make_allocator(mode, space);
  block::ExtentMap map;
  u64 logical = 0;
  for (auto _ : state) {
    if (!a->extend({InodeNo{1}, StreamId{1, 0}, FileBlock{logical}, 4}, map)
             .ok()) {
      // Device filled mid-run: recycle the file and keep timing.
      state.PauseTiming();
      a->delete_file(InodeNo{1}, map);
      logical = 0;
      state.ResumeTiming();
      continue;
    }
    logical += 4;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AllocatorExtend)
    ->Arg(static_cast<int>(alloc::AllocatorMode::kVanilla))
    ->Arg(static_cast<int>(alloc::AllocatorMode::kReservation))
    ->Arg(static_cast<int>(alloc::AllocatorMode::kOnDemand));

void BM_DiskServiceSequential(benchmark::State& state) {
  sim::Disk d;
  u64 pos = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        d.service({sim::IoKind::kWrite,
                   DiskBlock{pos % (d.geometry().capacity_blocks - 64)}, 64}));
    pos += 64;
  }
}
BENCHMARK(BM_DiskServiceSequential);

void BM_SchedulerDrain128(benchmark::State& state) {
  sim::Disk d;
  sim::IoScheduler s(d, 1 << 20);
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 128; ++i) {
      s.submit({sim::IoKind::kRead,
                DiskBlock{rng.uniform(0, d.geometry().capacity_blocks - 8)},
                4});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.drain());
  }
}
BENCHMARK(BM_SchedulerDrain128);

}  // namespace

BENCHMARK_MAIN();
