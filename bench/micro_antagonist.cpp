// Antagonist microbench: one hot streaming client vs N small-file clients
// sharing the same stripe — the noisy-neighbour experiment the attribution
// ledger exists for.
//
// Sweeps the hot client's intensity (256 KiB streamed writes per round: 0,
// 1, 4).  Each round every victim client runs a small-file cycle
// (create → 64 KiB write → sequential read → close) interleaved with the hot
// stream, so both classes contend on the same disks, schedulers and MDS.
// Reported per intensity point:
//
//   * per-class p99 latency (simulated ms per hot round / victim cycle,
//     exact order statistic over the sweep);
//   * Jain's fairness index over per-client *attributed* simulated cost —
//     1 when every client gets an equal share, degrading toward 1/n as the
//     antagonist's share grows;
//   * the full attribution section (per-principal accounts + the global
//     conservation comparands) in the JSON report.
//
// Attribution is always on here — this bench IS the attribution demo; the
// figure benches keep it behind `--attribution`.
//
// `--qos <N>` (MB/s) appends an A/B sweep: the same antagonist with and
// without the per-client token-bucket transport scheduler (rpc/qos.hpp)
// mounted, reporting how admission shaping restores the victims' p99 and
// the attributed-fairness index.  Absent the flag the report stays
// byte-identical.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "obs/attrib.hpp"
#include "obs/critpath.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "util/table.hpp"
#include "core/pfs.hpp"

namespace {

using mif::u32;
using mif::u64;

/// The cluster's total simulated progress: every data disk's private clock
/// plus every metadata disk's.  A per-operation latency is the delta this
/// operation advanced the cluster by — queue wait, mechanical service and
/// MDS work all land in it.
double sim_total_ms(mif::core::ParallelFileSystem& fs) {
  double t = 0.0;
  for (std::size_t i = 0; i < fs.num_targets(); ++i)
    t += fs.target(i).sim_now_ms();
  for (std::size_t i = 0; i < fs.mds_shards(); ++i)
    t += fs.mds(i).fs().elapsed_ms();
  return t;
}

/// Exact p99: the ceil(0.99 n)-th smallest sample (0 for an empty set).
double p99_ms(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t rank =
      static_cast<std::size_t>((v.size() * 99 + 99) / 100);  // ceil(0.99 n)
  return v[std::min(rank, v.size()) - 1];
}

struct RunResult {
  double hot_p99_ms{0.0};
  double victim_p99_ms{0.0};
  double fairness{1.0};
};

RunResult run_point(mif::core::ParallelFileSystem& fs,
                    mif::obs::Attribution& attrib, u32 intensity,
                    std::size_t victims, std::size_t rounds) {
  constexpr u64 kHotBytes = 256 * 1024;
  constexpr u64 kVictimBytes = 64 * 1024;

  auto hot = fs.connect(mif::ClientId{1});
  std::vector<mif::client::ClientFs> small;
  small.reserve(victims);
  for (std::size_t v = 0; v < victims; ++v)
    small.push_back(fs.connect(mif::ClientId{static_cast<u32>(2 + v)}));

  mif::client::FileHandle hot_fh;
  if (intensity > 0) {
    auto h = hot.create("hot");
    if (!h) return {};
    hot_fh = *h;
  }

  std::vector<double> hot_ms;
  std::vector<double> victim_ms;
  u64 hot_off = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    // The hot stream is issued but NOT drained here: its blocks sit in the
    // shared schedulers while the victims run, so a victim's cycle waits
    // out whatever hot traffic the drain services first — the antagonism
    // this bench measures.  The round-final drain (whatever the victims
    // did not already absorb) is charged to the hot class.
    double hot_round = 0.0;
    if (intensity > 0) {
      const double before = sim_total_ms(fs);
      for (u32 burst = 0; burst < intensity; ++burst) {
        (void)hot.write(hot_fh, /*pid=*/0, hot_off, kHotBytes);
        hot_off += kHotBytes;
      }
      hot_round = sim_total_ms(fs) - before;
    }
    for (std::size_t v = 0; v < victims; ++v) {
      const std::string path =
          "v" + std::to_string(v) + "_f" + std::to_string(r);
      const double before = sim_total_ms(fs);
      auto fh = small[v].create(path);
      if (!fh) continue;
      (void)small[v].write(*fh, /*pid=*/0, 0, kVictimBytes);
      (void)small[v].read(*fh, 0, kVictimBytes);
      (void)small[v].close(*fh);
      victim_ms.push_back(sim_total_ms(fs) - before);
    }
    // Every intensity point shares the same round structure: one cluster
    // drain per round.  What the victims' own reads did not already force
    // out is the hot stream's backlog, so the drain is charged to the hot
    // class's round latency.
    const double before = sim_total_ms(fs);
    fs.drain_data();
    if (intensity > 0)
      hot_ms.push_back(hot_round + (sim_total_ms(fs) - before));
  }
  if (intensity > 0) (void)hot.close(hot_fh);
  fs.finish_mds();
  fs.drain_data();

  return {p99_ms(std::move(hot_ms)), p99_ms(std::move(victim_ms)),
          attrib.fairness()};
}

/// Round-boundary disk drain that does NOT flush the transport: a pump()
/// gives the token buckets their rate-shaped release for whatever the
/// round's simulated progress refilled, then each target services its
/// queue.  run_point's fs.drain_data() would instead rpc-flush first — a
/// full-barrier release of the whole QoS backlog every round, i.e. a free
/// bypass of the very scheduler the A/B section measures.
void drain_disks(mif::core::ParallelFileSystem& fs) {
  fs.rpc().pump();
  for (std::size_t i = 0; i < fs.num_targets(); ++i) fs.target(i).drain();
}

/// One `--qos` A/B point: the antagonist rounds of run_point with two
/// changes that make the scheduler's effect measurable.  First, every
/// victim cycle ends in its own drain_disks() — an fsync: in this simulator
/// all disk service happens at drain points, so a victim only FEELS the
/// antagonist when its own sync has to wait out the hot blocks queued
/// ahead of it.  Second, the cluster-level drain_data() (which rpc-flushes
/// first, a full-barrier release of the whole QoS backlog — a free bypass
/// of the very scheduler under test) is replaced by drain_disks()
/// everywhere.  Fairness is snapshotted over the measured window, BEFORE
/// the teardown barrier (hot close) releases the hot backlog: the deferred
/// hot bytes have not consumed any resource yet, so charging them to the
/// window would misstate what the victims actually shared the disks with.
/// Teardown then releases, services and charges everything, so the
/// embedded attribution section still conserves exactly.
RunResult run_qos_point(mif::core::ParallelFileSystem& fs,
                        mif::obs::Attribution& attrib, u32 intensity,
                        std::size_t victims, std::size_t rounds) {
  constexpr u64 kHotBytes = 256 * 1024;
  constexpr u64 kVictimBytes = 64 * 1024;

  auto hot = fs.connect(mif::ClientId{1});
  std::vector<mif::client::ClientFs> small;
  small.reserve(victims);
  for (std::size_t v = 0; v < victims; ++v)
    small.push_back(fs.connect(mif::ClientId{static_cast<u32>(2 + v)}));

  auto h = hot.create("hot");
  if (!h) return {};
  const mif::client::FileHandle hot_fh = *h;

  std::vector<double> hot_ms;
  std::vector<double> victim_ms;
  u64 hot_off = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    double before = sim_total_ms(fs);
    for (u32 burst = 0; burst < intensity; ++burst) {
      (void)hot.write(hot_fh, /*pid=*/0, hot_off, kHotBytes);
      hot_off += kHotBytes;
    }
    const double hot_round = sim_total_ms(fs) - before;
    for (std::size_t v = 0; v < victims; ++v) {
      const std::string path =
          "q" + std::to_string(v) + "_f" + std::to_string(r);
      before = sim_total_ms(fs);
      auto fh = small[v].create(path);
      if (!fh) continue;
      (void)small[v].write(*fh, /*pid=*/0, 0, kVictimBytes);
      (void)small[v].read(*fh, 0, kVictimBytes);
      (void)small[v].close(*fh);
      drain_disks(fs);  // the victim's fsync — where the antagonism lands
      victim_ms.push_back(sim_total_ms(fs) - before);
    }
    before = sim_total_ms(fs);
    drain_disks(fs);
    hot_ms.push_back(hot_round + (sim_total_ms(fs) - before));
  }
  const double fairness = attrib.fairness();
  (void)hot.close(hot_fh);  // ino-scoped barrier: releases the hot backlog
  fs.finish_mds();
  fs.drain_data();

  return {p99_ms(std::move(hot_ms)), p99_ms(std::move(victim_ms)), fairness};
}

}  // namespace

int main(int argc, char** argv) {
  using mif::Table;
  mif::obs::BenchReport report("micro_antagonist", argc, argv);

  const std::size_t victims = report.quick() ? 4 : 8;
  const std::size_t rounds = report.quick() ? 24 : 96;

  std::printf(
      "Antagonist microbench — 1 hot streaming client vs %zu small-file "
      "clients,\n%zu rounds, shared 4-disk stripe (per-class p99 + Jain's "
      "fairness over\nattributed cost)\n\n",
      victims, rounds);

  Table t({"hot intensity", "hot p99 ms", "victim p99 ms", "fairness"});

  // The ledgers and the collector outlive the report: critpath walks the
  // collector at the end, and each run's attribution JSON is read after the
  // mount is torn down.
  mif::obs::SpanCollector spans;
  std::vector<std::unique_ptr<mif::obs::Attribution>> ledgers;

  for (u32 intensity : {0u, 4u, 16u}) {
    mif::core::ClusterConfig cfg;
    cfg.num_targets = 4;
    cfg.stripe = {4, 16};
    cfg.target.allocator = mif::alloc::AllocatorMode::kOnDemand;
    cfg.target.scheduler_queue = 64;
    if (report.pipeline_depth() >= 2)
      cfg.rpc.pipeline_depth = report.pipeline_depth();
    if (report.mds_shards() >= 2) cfg.mds.shards = report.mds_shards();
    mif::core::ParallelFileSystem fs(cfg);
    fs.set_spans(&spans);
    ledgers.push_back(std::make_unique<mif::obs::Attribution>());
    mif::obs::Attribution& attrib = *ledgers.back();
    fs.set_attribution(&attrib);

    const RunResult r = run_point(fs, attrib, intensity, victims, rounds);

    t.add_row({std::to_string(intensity), Table::num(r.hot_p99_ms),
               Table::num(r.victim_p99_ms), Table::num(r.fairness)});

    if (report.json_enabled()) {
      mif::obs::Json config;
      config["hot_intensity"] = intensity;
      config["victims"] = static_cast<u64>(victims);
      config["rounds"] = static_cast<u64>(rounds);
      if (report.pipeline_depth() >= 2)
        config["pipeline_depth"] = report.pipeline_depth();
      if (report.mds_shards() >= 2)
        config["mds_shards"] = report.mds_shards();
      mif::obs::Json results;
      results["hot_p99_ms"] = r.hot_p99_ms;
      results["victim_p99_ms"] = r.victim_p99_ms;
      results["fairness"] = r.fairness;
      report.add_run("hot=" + std::to_string(intensity), std::move(config),
                     std::move(results), mif::obs::Json{}, mif::obs::Json{},
                     fs.attribution_json());
    }
  }

  t.print();

  // ---- `--qos N` (MB/s) A/B sweep -----------------------------------------
  // The same antagonist, twice per intensity: once on the plain chain and
  // once with the per-client token-bucket scheduler mounted at N MB/s of
  // admitted envelope bytes.  Open-loop rounds (see run_qos_point) so the
  // bucket actually shapes; absent the flag nothing runs and the report is
  // byte-identical.
  if (report.qos_mbps() > 0) {
    std::printf("\nqos A/B sweep — token bucket at %u MB/s per client, "
                "open-loop rounds\n\n",
                report.qos_mbps());
    Table qt({"hot intensity", "qos", "hot p99 ms", "victim p99 ms",
              "fairness"});
    for (u32 intensity : {4u, 16u}) {
      for (int on = 0; on < 2; ++on) {
        mif::core::ClusterConfig cfg;
        cfg.num_targets = 4;
        cfg.stripe = {4, 16};
        cfg.target.allocator = mif::alloc::AllocatorMode::kOnDemand;
        cfg.target.scheduler_queue = 64;
        if (on) {
          cfg.rpc.qos.enabled = true;
          cfg.rpc.qos.rate_bytes_per_ms =
              static_cast<double>(report.qos_mbps()) * 1000.0;
        }
        mif::core::ParallelFileSystem fs(cfg);
        fs.set_spans(&spans);
        ledgers.push_back(std::make_unique<mif::obs::Attribution>());
        mif::obs::Attribution& attrib = *ledgers.back();
        fs.set_attribution(&attrib);

        const RunResult r =
            run_qos_point(fs, attrib, intensity, victims, rounds);

        qt.add_row({std::to_string(intensity), on ? "on" : "off",
                    Table::num(r.hot_p99_ms), Table::num(r.victim_p99_ms),
                    Table::num(r.fairness)});

        if (report.json_enabled()) {
          mif::obs::Json config;
          config["hot_intensity"] = intensity;
          config["victims"] = static_cast<u64>(victims);
          config["rounds"] = static_cast<u64>(rounds);
          if (on) config["qos_mbps"] = report.qos_mbps();
          mif::obs::Json results;
          results["hot_p99_ms"] = r.hot_p99_ms;
          results["victim_p99_ms"] = r.victim_p99_ms;
          results["fairness"] = r.fairness;
          report.add_run(std::string("qos=") + (on ? "on" : "off") +
                             " hot=" + std::to_string(intensity),
                         std::move(config), std::move(results),
                         mif::obs::Json{}, mif::obs::Json{},
                         fs.attribution_json());
        }
      }
    }
    qt.print();
  }

  if (report.json_enabled()) {
    report.doc()["critical_path"] = mif::obs::analyze_critical_path(spans);
  }
  report.write();
  return 0;
}
