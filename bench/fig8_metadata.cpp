// Regenerates Fig. 8: Metarates-style metadata workloads (create, utime,
// delete, readdir-stat) on an MDS with one disk and synchronous writes,
// comparing the embedded directory layout against the traditional one.
// The paper reports (a) disk-access counts dropping under embedded mode —
// least for delete — and (b) 23–170 % throughput gains; plus the
// readdir-stat gain growing with directory size (kernel prefetch window).
#include <cstdio>
#include <vector>

#include "obs/report.hpp"
#include "rpc/mds_node.hpp"
#include "util/table.hpp"
#include "workload/metarates.hpp"

namespace {

mif::mds::MdsConfig mds_cfg(mif::mfs::DirectoryMode mode) {
  mif::mds::MdsConfig cfg;
  cfg.mfs.mode = mode;
  cfg.mfs.cache_blocks = 4096;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using mif::Table;
  using mif::mfs::DirectoryMode;
  mif::obs::BenchReport report("fig8_metadata", argc, argv);

  std::printf(
      "Fig 8 — Metarates metadata workloads: 10 clients, own directory, 5000 "
      "files each\n(paper: embedded cuts disk accesses — least for delete — "
      "and lifts throughput 23-170%%)\n\n");

  mif::workload::MetaratesConfig wcfg;
  wcfg.clients = report.quick() ? 4 : 10;
  wcfg.files_per_dir = report.quick() ? 500 : 5000;

  mif::rpc::MdsNode normal(mds_cfg(DirectoryMode::kNormal));
  mif::rpc::MdsNode embedded(mds_cfg(DirectoryMode::kEmbedded));
  const auto n = mif::workload::run_metarates(normal, wcfg);
  const auto e = mif::workload::run_metarates(embedded, wcfg);

  Table t({"workload", "normal ops/s", "embedded ops/s", "speedup",
           "disk-access proportion (embedded/normal)"});
  auto row = [&](const char* name, const mif::workload::PhaseResult& np,
                 const mif::workload::PhaseResult& ep) {
    t.add_row({name, Table::num(np.ops_per_sec()),
               Table::num(ep.ops_per_sec()),
               Table::pct(ep.ops_per_sec() / np.ops_per_sec() - 1.0),
               Table::num(100.0 * static_cast<double>(ep.disk_accesses) /
                              static_cast<double>(np.disk_accesses),
                          1) +
                   "%"});
    if (report.json_enabled()) {
      mif::obs::Json config;
      config["workload"] = name;
      mif::obs::Json results;
      results["normal_ops_per_sec"] = np.ops_per_sec();
      results["embedded_ops_per_sec"] = ep.ops_per_sec();
      results["normal_disk_accesses"] = np.disk_accesses;
      results["embedded_disk_accesses"] = ep.disk_accesses;
      report.add_run(std::string("workload=") + name, std::move(config),
                     std::move(results));
    }
  };
  row("create", n.create, e.create);
  row("utime", n.utime, e.utime);
  row("readdir-stat", n.readdir_stat, e.readdir_stat);
  row("delete", n.remove, e.remove);
  t.print();

  // ---- readdir-stat proportion vs directory size --------------------------
  std::printf(
      "\nreaddir-stat disk-access proportion vs directory size\n(paper: the "
      "decrease grows with directory size as the prefetch window ramps)\n\n");
  Table t2({"files/dir", "normal accesses", "embedded accesses",
            "proportion"});
  const std::vector<mif::u32> dir_sizes =
      report.quick() ? std::vector<mif::u32>{1000u}
                     : std::vector<mif::u32>{1000u, 2000u, 5000u, 10000u};
  for (mif::u32 files : dir_sizes) {
    mif::workload::MetaratesConfig c;
    c.clients = 4;
    c.files_per_dir = files;
    mif::rpc::MdsNode nm(mds_cfg(DirectoryMode::kNormal));
    mif::rpc::MdsNode em(mds_cfg(DirectoryMode::kEmbedded));
    const auto nr = mif::workload::run_metarates(nm, c);
    const auto er = mif::workload::run_metarates(em, c);
    t2.add_row({std::to_string(files),
                std::to_string(nr.readdir_stat.disk_accesses),
                std::to_string(er.readdir_stat.disk_accesses),
                Table::num(100.0 *
                               static_cast<double>(er.readdir_stat.disk_accesses) /
                               static_cast<double>(nr.readdir_stat.disk_accesses),
                           1) +
                    "%"});
  }
  t2.print();
  report.write();
  return 0;
}
