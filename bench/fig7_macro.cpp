// Regenerates Fig. 7: IOR2 and NPB BTIO macro benchmarks under reservation
// vs on-demand preallocation, with and without collective I/O.  The paper:
// on-demand > reservation (BTIO non-collective +19 %); IOR gains less
// (bigger, contiguous-per-process requests); collective I/O beats
// non-collective outright (~40 MB aggregated requests) and shrinks the
// allocator's influence.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "obs/attrib.hpp"
#include "obs/critpath.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "redundancy/redundancy.hpp"
#include "redundancy/repair.hpp"
#include "rpc/fault.hpp"
#include "shard/transport.hpp"
#include "util/table.hpp"
#include "workload/btio.hpp"
#include "workload/ior.hpp"

namespace {

mif::core::ParallelFileSystem make_fs(mif::alloc::AllocatorMode mode,
                                      mif::u32 pipeline_depth,
                                      mif::obs::SpanCollector* spans,
                                      mif::u32 mds_shards = 0,
                                      mif::shard::Policy placement =
                                          mif::shard::Policy::kSubtree,
                                      mif::u64 list_io_runs = 0,
                                      mif::u32 adaptive_depth = 0) {
  mif::core::ClusterConfig cfg;
  cfg.num_targets = 8;  // "all data are striped in eight disks"
  cfg.target.allocator = mode;
  if (pipeline_depth >= 2) cfg.rpc.pipeline_depth = pipeline_depth;
  if (adaptive_depth >= 2) cfg.rpc.adaptive_depth_max = adaptive_depth;
  if (mds_shards >= 2) {
    cfg.mds.shards = mds_shards;
    cfg.mds.placement = placement;
  }
  cfg.list_io_max_runs = list_io_runs;
  mif::core::ParallelFileSystem fs(cfg);
  fs.set_spans(spans);
  return fs;
}

/// With `--mds-shards N` (N >= 2): a dedicated namespace workload per
/// placement policy.  IOR/BTIO hammer a single shared file at the root, so
/// they say nothing about metadata spread; this run builds 2N directories of
/// small files and list-sweeps them, then reports the router's balance and
/// fan-out counters.  Absent the flag nothing runs and the report is
/// byte-identical to the single-MDS output.
void run_shard_namespace(mif::obs::BenchReport& report,
                         mif::obs::SpanCollector* spans) {
  const mif::u32 shards = report.mds_shards();
  if (shards < 2) return;
  std::printf("\nmds-shards=%u namespace sweep (%u dirs x 24 files each)\n",
              shards, 2 * shards);
  for (auto policy : {mif::shard::Policy::kSubtree, mif::shard::Policy::kHash}) {
    auto fs = make_fs(mif::alloc::AllocatorMode::kOnDemand,
                      report.pipeline_depth(), spans, shards, policy);
    auto* sharded = fs.transport().sharded();
    for (mif::u32 d = 0; d < 2 * shards; ++d) {
      const std::string dir = "ns" + std::to_string(d);
      (void)fs.rpc().mkdir(dir);
      for (int f = 0; f < 24; ++f) {
        (void)fs.rpc().create(dir + "/f" + std::to_string(f));
      }
    }
    const mif::u64 fanout_before = sharded->stats().fanout_requests;
    for (mif::u32 d = 0; d < 2 * shards; ++d) {
      (void)fs.rpc().readdir_stats("ns" + std::to_string(d));
    }
    const mif::shard::ShardStats s = sharded->stats();
    const std::string policy_name{mif::shard::to_string(policy)};
    std::printf("  %-8s imbalance=%.3f readdir_fanout=%llu\n",
                policy_name.c_str(), s.imbalance(),
                static_cast<unsigned long long>(s.fanout_requests -
                                                fanout_before));
    if (!report.json_enabled()) continue;
    mif::obs::Json config;
    config["benchmark"] = "shard-namespace";
    config["mds_shards"] = shards;
    config["placement"] = policy_name;
    mif::obs::Json results;
    results["shard_imbalance"] = s.imbalance();
    results["shard_fanout"] = s.fanout_requests - fanout_before;
    results["renames_cross"] = s.renames_cross;
    report.add_run("shard-namespace " + policy_name, std::move(config),
                   std::move(results));
  }
}

/// With `--list-io N`: a BTIO-style strided column sweep, once over the
/// per-block mount and once with list I/O mounted (max N runs per
/// envelope).  16 processes each write 128 single-block pieces at a
/// 16-block stride, so every process touches all eight targets and its
/// per-target slice lowers to a single strided envelope when list I/O is
/// on.  Reports data-RPC envelope counts and data-network sim time for
/// both mounts; with `--attribution`, embeds the list mount's ledger so
/// the conservation gate covers multi-run frames.  Absent the flag
/// nothing runs and the report is byte-identical.
void run_list_io_strided(mif::obs::BenchReport& report,
                         mif::obs::SpanCollector* spans,
                         mif::obs::Attribution* attrib) {
  const mif::u64 max_runs = report.list_io_runs();
  if (max_runs == 0) return;
  constexpr mif::u32 kProcs = 16;
  constexpr mif::u64 kSegments = 128;
  constexpr mif::u64 kPiece = mif::kBlockSize;
  mif::u64 data_rpcs[2] = {0, 0};
  double net_ms[2] = {0.0, 0.0};
  mif::obs::Json attribution;
  for (int list = 0; list < 2; ++list) {
    auto fs = make_fs(mif::alloc::AllocatorMode::kOnDemand,
                      report.pipeline_depth(), spans, report.mds_shards(),
                      mif::shard::Policy::kSubtree, list ? max_runs : 0);
    if (list) fs.set_attribution(attrib);
    auto client = fs.connect(mif::ClientId{1});
    auto fh = client.create("strided.odb");
    if (!fh) return;
    for (mif::u32 p = 0; p < kProcs; ++p) {
      (void)client.write_strided(*fh, p, p * kPiece, kPiece, kProcs * kPiece,
                                 kSegments);
    }
    (void)client.close(*fh);
    fs.drain_data();
    const mif::sim::NetworkStats& dn = fs.transport().data_network().stats();
    data_rpcs[list] = dn.rpcs;
    net_ms[list] = dn.time_ms;
    if (list && attrib) attribution = fs.attribution_json();
  }
  const double ratio =
      data_rpcs[1] ? static_cast<double>(data_rpcs[0]) / data_rpcs[1] : 0.0;
  std::printf(
      "\nlist-io=%llu strided sweep (%u procs x %llu single-block pieces)\n"
      "  per-block: %llu data rpcs  %.2f net ms\n"
      "  list-io:   %llu data rpcs  %.2f net ms  (%.1fx fewer envelopes)\n",
      static_cast<unsigned long long>(max_runs), kProcs,
      static_cast<unsigned long long>(kSegments),
      static_cast<unsigned long long>(data_rpcs[0]), net_ms[0],
      static_cast<unsigned long long>(data_rpcs[1]), net_ms[1], ratio);
  if (!report.json_enabled()) return;
  mif::obs::Json config;
  config["benchmark"] = "strided-list-io";
  config["list_io_runs"] = max_runs;
  config["processes"] = kProcs;
  config["segments"] = kSegments;
  mif::obs::Json results;
  results["perblock_data_rpcs"] = data_rpcs[0];
  results["list_data_rpcs"] = data_rpcs[1];
  results["perblock_net_ms"] = net_ms[0];
  results["list_net_ms"] = net_ms[1];
  results["envelope_ratio"] = ratio;
  report.add_run("strided list-io", std::move(config), std::move(results),
                 mif::obs::Json{}, mif::obs::Json{}, std::move(attribution));
}

/// One measured point of the redundancy sweep: a replicated 8-target mount
/// running an interleaved multi-file macro workload (write phase with
/// tick_timeline safe points, a mid-run degraded read sweep, drain — which
/// completes any queued rebuild — then a full verification read phase).
struct RedundancyRun {
  mif::u64 read_errors{0};
  mif::u64 degraded_reads{0};
  mif::u64 replica_writes{0};
  mif::u64 extents{0};  // post-repair primary-subfile extent total
  double read_ms{0.0};  // sim time of the final read phase
  mif::u64 repair_bytes{0};
  mif::u64 repair_completed{0};
  double repair_completed_ms{-1.0};
  mif::u64 dead_targets{0};
};

RedundancyRun run_redundancy_point(const mif::obs::BenchReport& report,
                                   mif::obs::SpanCollector* spans,
                                   bool kill) {
  constexpr mif::u32 kTargets = 8;
  mif::core::ClusterConfig cfg;
  cfg.num_targets = kTargets;
  cfg.target.allocator = mif::alloc::AllocatorMode::kOnDemand;
  cfg.redundancy.replicas = report.replicas();
  if (report.pipeline_depth() >= 2)
    cfg.rpc.pipeline_depth = report.pipeline_depth();
  cfg.list_io_max_runs = report.list_io_runs();
  if (kill) cfg.rpc.inject_faults = true;  // mounts the (disarmed) fault layer
  mif::core::ParallelFileSystem fs(cfg);
  fs.set_spans(spans);
  if (kill) {
    fs.transport().fault()->kill_osd(report.kill_target(),
                                     report.kill_at_ms());
  }
  auto client = fs.connect(mif::ClientId{1});

  const mif::u32 files = report.quick() ? 12 : 48;
  const mif::u64 file_blocks = report.quick() ? 192 : 512;
  const mif::u64 chunk_blocks = 16;
  std::vector<mif::client::FileHandle> fhs;
  for (mif::u32 f = 0; f < files; ++f) {
    auto fh = client.create("red" + std::to_string(f) + ".dat");
    if (!fh) return {};
    fhs.push_back(*fh);
  }
  // Interleaved write rounds (each file advances one chunk per round — the
  // fragmentation-inducing shape of the macro benches); every round is a
  // safe point, so a scheduled kill fires mid-run and the online repair
  // pumps while writes keep flowing.
  RedundancyRun out;
  for (mif::u64 round = 0; round * chunk_blocks < file_blocks; ++round) {
    for (mif::u32 f = 0; f < files; ++f) {
      if (!client.write(fhs[f], f, round * chunk_blocks * mif::kBlockSize,
                        chunk_blocks * mif::kBlockSize)) {
        ++out.read_errors;  // write errors are client-visible too
      }
    }
    fs.tick_timeline();
  }
  for (mif::u32 f = 0; f < files; ++f) (void)client.close(fhs[f]);

  // Degraded sweep: while the killed target is still dead (repair has only
  // been pumped, not drained), reads must re-route and succeed.
  for (mif::u32 f = 0; f < std::min<mif::u32>(files, 4); ++f) {
    if (!client.read(fhs[f], 0, file_blocks * mif::kBlockSize)) {
      ++out.read_errors;
    }
  }

  fs.drain_data();  // completes any queued rebuild on the sim timeline
  const double read_t0 = fs.data_elapsed_ms();
  for (mif::u32 f = 0; f < files; ++f) {
    if (!client.read(fhs[f], 0, file_blocks * mif::kBlockSize)) {
      ++out.read_errors;
    }
  }
  fs.drain_data();
  out.read_ms = fs.data_elapsed_ms() - read_t0;
  for (const auto& fh : fhs) out.extents += fs.file_extents(fh.ino);
  out.degraded_reads = fs.redundancy_stats().degraded_reads.load();
  out.replica_writes = fs.redundancy_stats().replica_writes.load();
  out.dead_targets = fs.health().dead_count();
  if (const mif::redundancy::RepairService* rep = fs.repair()) {
    out.repair_bytes = rep->stats().bytes_rebuilt;
    out.repair_completed = rep->stats().completed;
    out.repair_completed_ms = rep->stats().completed_at_ms;
  }
  return out;
}

/// With `--replicas N` (N >= 2): the striped-redundancy sweep — a baseline
/// replicated run, and, with `--kill-osd id@ms`, a second run that loses a
/// whole target mid-write and must finish with zero client-visible read
/// errors and a completed online rebuild.  Absent the flag nothing runs and
/// the report is byte-identical to the unreplicated output.
void run_redundancy_sweep(mif::obs::BenchReport& report,
                          mif::obs::SpanCollector* spans) {
  const mif::u32 replicas = report.replicas();
  if (replicas < 2) return;
  constexpr mif::u32 kTargets = 8;
  mif::redundancy::Policy policy;
  policy.replicas = replicas;
  if (const std::string err = mif::redundancy::validate(policy, kTargets);
      !err.empty()) {
    std::fprintf(stderr, "fig7_macro: bad --replicas %u: %s\n", replicas,
                 err.c_str());
    std::exit(2);
  }
  if (report.kill_armed() && report.kill_target() >= kTargets) {
    std::fprintf(stderr,
                 "fig7_macro: bad --kill-osd target %u: the redundancy sweep "
                 "mounts %u targets\n",
                 report.kill_target(), kTargets);
    std::exit(2);
  }
  std::printf("\nreplicas=%u redundancy sweep (8 targets%s)\n", replicas,
              report.kill_armed() ? ", kill-osd armed" : "");
  for (int kill = 0; kill <= (report.kill_armed() ? 1 : 0); ++kill) {
    const RedundancyRun r = run_redundancy_point(report, spans, kill != 0);
    std::printf(
        "  %-10s read_errors=%llu degraded_reads=%llu extents=%llu "
        "read_ms=%.2f repair_bytes=%llu\n",
        kill ? "killed" : "replicated",
        static_cast<unsigned long long>(r.read_errors),
        static_cast<unsigned long long>(r.degraded_reads),
        static_cast<unsigned long long>(r.extents), r.read_ms,
        static_cast<unsigned long long>(r.repair_bytes));
    if (!report.json_enabled()) continue;
    mif::obs::Json config;
    config["benchmark"] = "redundancy";
    config["replicas"] = replicas;
    config["killed"] = kill != 0;
    if (kill) {
      config["kill_target"] = report.kill_target();
      config["kill_at_ms"] = report.kill_at_ms();
    }
    mif::obs::Json results;
    results["read_errors"] = r.read_errors;
    results["degraded_reads"] = r.degraded_reads;
    results["replica_writes"] = r.replica_writes;
    results["extents"] = r.extents;
    results["read_ms"] = r.read_ms;
    results["repair_bytes_rebuilt"] = r.repair_bytes;
    results["repair_completed"] = r.repair_completed;
    results["repair_completed_ms"] = r.repair_completed_ms;
    results["dead_targets"] = r.dead_targets;
    report.add_run(std::string("redundancy ") +
                       (kill ? "killed" : "replicated"),
                   std::move(config), std::move(results));
  }
}

/// Pipelined transport timings for one mounted fs; empty JSON (no keys) when
/// the sync chain is mounted, so default output is untouched.
void add_pipeline_fields(mif::obs::Json& results, const char* prefix,
                         mif::core::ParallelFileSystem& fs) {
  const mif::rpc::AsyncTransport* a = fs.transport().async();
  if (!a) return;
  const mif::rpc::AsyncReport r = a->report();
  const std::string base(prefix);
  results[base + "_pipeline_serial_ms"] = r.serial_ms;
  results[base + "_pipeline_elapsed_ms"] = r.elapsed_ms;
  results[base + "_pipeline_speedup"] =
      r.elapsed_ms > 0 ? r.serial_ms / r.elapsed_ms : 1.0;
  if (r.adaptive) {
    results[base + "_pipeline_depth_changes"] = r.depth_changes;
    results[base + "_pipeline_depth_min"] = r.depth_min_seen;
    results[base + "_pipeline_depth_max"] = r.depth_max_seen;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using mif::Table;
  using mif::alloc::AllocatorMode;
  mif::obs::BenchReport report("fig7_macro", argc, argv);

  // One collector across every run: `--trace <path>` dumps the slowest
  // traces and the most recent spans of the whole macro sweep.
  // `--attribution` needs it too — the charging sites emit their sim cost
  // spans (net.exchange, io.queue_wait, …) only when BOTH a collector and a
  // ledger are attached, and the critical-path report walks them.  The
  // fig7 JSON embeds no metrics sections, so mounting the collector for
  // attribution alone leaves the default report byte-identical.
  mif::obs::SpanCollector spans;
  mif::obs::SpanCollector* sp =
      report.trace_enabled() || report.attribution_enabled() ? &spans
                                                             : nullptr;

  // One cost-attribution ledger per measured on-demand mount
  // (`--attribution`); heap-pinned like the timelines because timeline
  // gauge closures capture the raw ledger pointer.
  std::vector<std::unique_ptr<mif::obs::Attribution>> ledgers;
  auto new_ledger = [&]() -> mif::obs::Attribution* {
    if (!report.attribution_enabled()) return nullptr;
    ledgers.push_back(std::make_unique<mif::obs::Attribution>());
    return ledgers.back().get();
  };

  // One flight recorder per measured on-demand mount (`--timeseries`); the
  // series land in the JSON report and, with `--trace`, as Perfetto counter
  // tracks alongside the spans.
  std::vector<std::unique_ptr<mif::obs::Timeline>> timelines;
  auto new_timeline = [&](const std::string& label) -> mif::obs::Timeline* {
    if (!report.timeseries_enabled()) return nullptr;
    timelines.push_back(
        std::make_unique<mif::obs::Timeline>(report.timeline_config()));
    timelines.back()->set_label(label);
    return timelines.back().get();
  };

  std::printf(
      "Fig 7 — macro benchmarks on a 16-node/64-process cluster, 8-disk "
      "stripe\n(paper: on-demand > reservation, BTIO non-collective +19%%; "
      "collective >> non-collective)\n\n");

  Table t({"benchmark", "mode", "reservation MB/s", "on-demand MB/s",
           "improvement"});

  auto add_json = [&](const char* bench, bool collective, double res_mbps,
                      double ond_mbps, mif::core::ParallelFileSystem& rfs,
                      mif::core::ParallelFileSystem& ofs,
                      mif::obs::Timeline* tl) {
    if (!report.json_enabled()) return;
    mif::obs::Json config;
    config["benchmark"] = bench;
    config["collective"] = collective;
    if (report.pipeline_depth() >= 2)
      config["pipeline_depth"] = report.pipeline_depth();
    if (report.adaptive_depth() >= 2)
      config["adaptive_depth"] = report.adaptive_depth();
    if (report.mds_shards() >= 2) config["mds_shards"] = report.mds_shards();
    mif::obs::Json results;
    results["reservation_mbps"] = res_mbps;
    results["ondemand_mbps"] = ond_mbps;
    add_pipeline_fields(results, "reservation", rfs);
    add_pipeline_fields(results, "ondemand", ofs);
    report.add_run(std::string(bench) +
                       (collective ? " collective" : " non-collective"),
                   std::move(config), std::move(results), mif::obs::Json{},
                   tl ? tl->to_json() : mif::obs::Json{},
                   ofs.attribution_json());
  };

  // ---- IOR: each process owns a contiguous 1/m share, 32 KiB requests ----
  for (bool collective : {false, true}) {
    mif::workload::IorConfig cfg;
    cfg.processes = report.quick() ? 16 : 64;
    cfg.request_bytes = 64 * 1024;
    cfg.bytes_per_process = report.quick() ? 2 * 1024 * 1024 : 16 * 1024 * 1024;
    cfg.collective = collective;
    if (report.collective_aggregators() > 0)
      cfg.collective_cfg.aggregators = report.collective_aggregators();
    auto rfs = make_fs(AllocatorMode::kReservation, report.pipeline_depth(), sp,
                       report.mds_shards(), mif::shard::Policy::kSubtree,
                       report.list_io_runs(), report.adaptive_depth());
    auto ofs = make_fs(AllocatorMode::kOnDemand, report.pipeline_depth(), sp,
                       report.mds_shards(), mif::shard::Policy::kSubtree,
                       report.list_io_runs(), report.adaptive_depth());
    mif::obs::Timeline* tl = new_timeline(
        std::string("IOR2 ") + (collective ? "collective" : "non-collective"));
    ofs.set_timeline(tl);
    ofs.set_attribution(new_ledger());
    const auto r = mif::workload::run_ior(rfs, cfg);
    const auto o = mif::workload::run_ior(ofs, cfg);
    if (tl) tl->mark_epoch("end");
    t.add_row({"IOR2", collective ? "collective" : "non-collective",
               Table::num(r.total_mbps), Table::num(o.total_mbps),
               Table::pct(o.total_mbps / r.total_mbps - 1.0)});
    add_json("IOR2", collective, r.total_mbps, o.total_mbps, rfs, ofs, tl);
  }

  // ---- BTIO: nested-strided small cells per timestep ---------------------
  for (bool collective : {false, true}) {
    mif::workload::BtioConfig cfg;
    cfg.processes = report.quick() ? 16 : 64;
    cfg.timesteps = report.quick() ? 4 : 10;
    cfg.cells_per_process = 16;
    cfg.cell_bytes = 8 * 1024;
    cfg.collective = collective;
    if (report.collective_aggregators() > 0)
      cfg.collective_cfg.aggregators = report.collective_aggregators();
    auto rfs = make_fs(AllocatorMode::kReservation, report.pipeline_depth(), sp,
                       report.mds_shards(), mif::shard::Policy::kSubtree,
                       report.list_io_runs(), report.adaptive_depth());
    auto ofs = make_fs(AllocatorMode::kOnDemand, report.pipeline_depth(), sp,
                       report.mds_shards(), mif::shard::Policy::kSubtree,
                       report.list_io_runs(), report.adaptive_depth());
    mif::obs::Timeline* tl = new_timeline(
        std::string("BTIO ") + (collective ? "collective" : "non-collective"));
    ofs.set_timeline(tl);
    ofs.set_attribution(new_ledger());
    const auto r = mif::workload::run_btio(rfs, cfg);
    const auto o = mif::workload::run_btio(ofs, cfg);
    if (tl) tl->mark_epoch("end");
    const double rt = 2.0 / (1.0 / r.write_mbps + 1.0 / r.read_mbps);
    const double ot = 2.0 / (1.0 / o.write_mbps + 1.0 / o.read_mbps);
    t.add_row({"BTIO", collective ? "collective" : "non-collective",
               Table::num(rt), Table::num(ot), Table::pct(ot / rt - 1.0)});
    add_json("BTIO", collective, rt, ot, rfs, ofs, tl);
  }

  t.print();
  run_shard_namespace(report, sp);
  run_list_io_strided(report, sp, new_ledger());
  run_redundancy_sweep(report, sp);
  // Whole-sweep critical path: top slowest traced requests across every
  // mount, decomposed into the ledger's resource segments.
  if (report.attribution_enabled() && report.json_enabled()) {
    report.doc()["critical_path"] = mif::obs::analyze_critical_path(spans);
  }
  report.write();
  if (sp) {
    std::vector<const mif::obs::Timeline*> tls;
    for (const auto& tl : timelines) tls.push_back(tl.get());
    mif::obs::write_chrome_trace(spans, tls, report.trace_path());
  }
  return 0;
}
