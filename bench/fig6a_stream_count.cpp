// Regenerates Fig. 6(a): shared-file phase-2 throughput as the number of
// concurrent write streams varies (32/48/64), for the three preallocation
// strategies.  The paper reports on-demand beating reservation by ~17 %,
// 27 % and 48 % at 32, 48 and 64 processes, with static preallocation
// (fallocate) as the contiguous upper bound.
#include <cstdio>

#include "util/table.hpp"
#include "workload/shared_file.hpp"

namespace {

mif::workload::SharedFileResult run(mif::alloc::AllocatorMode mode,
                                    bool static_pre, mif::u32 processes) {
  mif::core::ClusterConfig cfg;
  cfg.num_targets = 5;  // "all data to be striped on five disks"
  cfg.target.allocator = mode;
  mif::core::ParallelFileSystem fs(cfg);
  mif::workload::SharedFileConfig wcfg;
  wcfg.processes = processes;
  wcfg.threads_per_client = 4;
  wcfg.blocks_per_process = 256;  // 1 MiB per process
  wcfg.request_blocks = 4;        // 16 KiB writes (Fig. 6(b)'s low-mid range)
  wcfg.read_segments = 1024;
  wcfg.static_prealloc = static_pre;
  return mif::workload::run_shared_file(fs, wcfg);
}

}  // namespace

int main() {
  using mif::Table;
  std::printf(
      "Fig 6(a) — shared-file micro-benchmark, phase-2 throughput vs stream "
      "count\n(paper: on-demand > reservation by ~17%%/27%%/48%% at "
      "32/48/64)\n\n");

  Table t({"streams", "reservation MB/s", "on-demand MB/s", "static MB/s",
           "on-demand vs reservation"});
  for (mif::u32 procs : {32u, 48u, 64u}) {
    const auto res = run(mif::alloc::AllocatorMode::kReservation, false, procs);
    const auto ond = run(mif::alloc::AllocatorMode::kOnDemand, false, procs);
    const auto sta = run(mif::alloc::AllocatorMode::kStatic, true, procs);
    t.add_row({std::to_string(procs),
               Table::num(res.phase2_throughput_mbps),
               Table::num(ond.phase2_throughput_mbps),
               Table::num(sta.phase2_throughput_mbps),
               Table::pct(ond.phase2_throughput_mbps /
                              res.phase2_throughput_mbps -
                          1.0)});
  }
  t.print();
  return 0;
}
