// Regenerates Fig. 6(a): shared-file phase-2 throughput as the number of
// concurrent write streams varies (32/48/64), for the three preallocation
// strategies.  The paper reports on-demand beating reservation by ~17 %,
// 27 % and 48 % at 32, 48 and 64 processes, with static preallocation
// (fallocate) as the contiguous upper bound.
//
// `--json <path>` additionally writes the full per-run metrics registry
// (allocator counters, extent-count histogram, positioning-time stats);
// `--trace <path>` records end-to-end request spans and writes a
// Chrome-trace / Perfetto JSON (open at ui.perfetto.dev); `--quick` shrinks
// the sweep for CI schema checks; `--pipeline-depth N` (N >= 2) mounts the
// async completion-queue transport and adds the pipelined end-to-end
// timings to each run's results (depth <= 1 output is byte-identical to
// the synchronous chain); `--adaptive-depth N` (N >= 2) instead floats the
// window in [2, N] off the live OSD queue gauges and adds the controller's
// depth trajectory to the pipelined fields.
#include <cstdio>
#include <vector>

#include "obs/report.hpp"
#include "obs/span.hpp"
#include "util/table.hpp"
#include "workload/shared_file.hpp"

namespace {

struct RunOut {
  mif::workload::SharedFileResult res;
  mif::obs::Json metrics;
  mif::rpc::AsyncReport pipeline{};  // meaningful only when depth >= 2
};

RunOut run(mif::alloc::AllocatorMode mode, bool static_pre, mif::u32 processes,
           bool quick, mif::u32 pipeline_depth, mif::u32 adaptive_depth,
           mif::obs::SpanCollector* spans) {
  mif::core::ClusterConfig cfg;
  cfg.num_targets = 5;  // "all data to be striped on five disks"
  cfg.target.allocator = mode;
  if (pipeline_depth >= 2) cfg.rpc.pipeline_depth = pipeline_depth;
  if (adaptive_depth >= 2) cfg.rpc.adaptive_depth_max = adaptive_depth;
  mif::core::ParallelFileSystem fs(cfg);
  fs.set_spans(spans);
  mif::workload::SharedFileConfig wcfg;
  wcfg.processes = processes;
  wcfg.threads_per_client = 4;
  wcfg.blocks_per_process = quick ? 64 : 256;  // 1 MiB per process (full run)
  wcfg.request_blocks = 4;        // 16 KiB writes (Fig. 6(b)'s low-mid range)
  wcfg.read_segments = quick ? 128 : 1024;
  wcfg.static_prealloc = static_pre;
  RunOut out;
  out.res = mif::workload::run_shared_file(fs, wcfg);
  out.metrics = fs.metrics_json();
  if (const mif::rpc::AsyncTransport* a = fs.transport().async())
    out.pipeline = a->report();
  return out;
}

mif::obs::Json results_json(const RunOut& out) {
  const mif::workload::SharedFileResult& r = out.res;
  mif::obs::Json j;
  j["phase1_ms"] = r.phase1_ms;
  j["phase2_ms"] = r.phase2_ms;
  j["phase2_throughput_mbps"] = r.phase2_throughput_mbps;
  j["file_blocks"] = r.file_blocks;
  j["extents"] = r.extents;
  j["positionings"] = r.positionings;
  j["mds_cpu"] = r.mds_cpu;
  // Pipelined end-to-end timings appear only under an async mount, so the
  // default (and depth-1) output stays byte-identical to the sync chain.
  // serial_ms is what a depth-1 client pays end-to-end for the same issue
  // sequence; elapsed_ms is the overlapped timeline — their ratio is the
  // transport-level aggregate-bandwidth win.
  if (out.pipeline.depth >= 2) {
    j["pipeline_depth"] = out.pipeline.depth;
    j["pipeline_serial_ms"] = out.pipeline.serial_ms;
    j["pipeline_elapsed_ms"] = out.pipeline.elapsed_ms;
    j["pipeline_stall_ms"] = out.pipeline.stall_ms;
    j["pipeline_speedup"] = out.pipeline.elapsed_ms > 0
                                ? out.pipeline.serial_ms / out.pipeline.elapsed_ms
                                : 1.0;
    // The controller's trajectory, only under an adaptive mount: how often
    // the window moved and the extremes it visited.
    if (out.pipeline.adaptive) {
      j["pipeline_depth_changes"] = out.pipeline.depth_changes;
      j["pipeline_depth_min"] = out.pipeline.depth_min_seen;
      j["pipeline_depth_max"] = out.pipeline.depth_max_seen;
    }
  }
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  using mif::Table;
  mif::obs::BenchReport report("fig6a_stream_count", argc, argv);
  std::printf(
      "Fig 6(a) — shared-file micro-benchmark, phase-2 throughput vs stream "
      "count\n(paper: on-demand > reservation by ~17%%/27%%/48%% at "
      "32/48/64)\n\n");

  const std::vector<mif::u32> sweep =
      report.quick() ? std::vector<mif::u32>{8}
                     : std::vector<mif::u32>{32u, 48u, 64u};

  // One collector across the sweep: the ring keeps the most recent spans,
  // the slow log the slowest traces of the whole bench.
  mif::obs::SpanCollector spans;
  mif::obs::SpanCollector* sp = report.trace_enabled() ? &spans : nullptr;

  Table t({"streams", "reservation MB/s", "on-demand MB/s", "static MB/s",
           "on-demand vs reservation"});
  for (mif::u32 procs : sweep) {
    const auto res = run(mif::alloc::AllocatorMode::kReservation, false, procs,
                         report.quick(), report.pipeline_depth(),
                         report.adaptive_depth(), sp);
    const auto ond = run(mif::alloc::AllocatorMode::kOnDemand, false, procs,
                         report.quick(), report.pipeline_depth(),
                         report.adaptive_depth(), sp);
    const auto sta = run(mif::alloc::AllocatorMode::kStatic, true, procs,
                         report.quick(), report.pipeline_depth(),
                         report.adaptive_depth(), sp);
    t.add_row({std::to_string(procs),
               Table::num(res.res.phase2_throughput_mbps),
               Table::num(ond.res.phase2_throughput_mbps),
               Table::num(sta.res.phase2_throughput_mbps),
               Table::pct(ond.res.phase2_throughput_mbps /
                              res.res.phase2_throughput_mbps -
                          1.0)});
    if (report.json_enabled()) {
      const struct {
        const char* mode;
        const RunOut* out;
      } rows[] = {{"reservation", &res}, {"ondemand", &ond}, {"static", &sta}};
      for (const auto& row : rows) {
        mif::obs::Json config;
        config["streams"] = procs;
        config["mode"] = row.mode;
        if (report.pipeline_depth() >= 2)
          config["pipeline_depth"] = report.pipeline_depth();
        if (report.adaptive_depth() >= 2)
          config["adaptive_depth"] = report.adaptive_depth();
        report.add_run("streams=" + std::to_string(procs) +
                           " mode=" + row.mode,
                       std::move(config), results_json(*row.out),
                       row.out->metrics);
      }
    }
  }
  t.print();
  report.write();
  if (sp) mif::obs::write_chrome_trace(spans, report.trace_path());
  return 0;
}
