// Regenerates Fig. 6(b): shared-file phase-2 throughput at 32 processes as
// the phase-1 allocation (request) size varies.  The paper: small requests
// suffer most under reservation ("the scheduler … can not merge the
// fragmentary requests"), on-demand narrows the gap to static.
#include <cstdio>
#include <vector>

#include "obs/report.hpp"
#include "util/table.hpp"
#include "workload/shared_file.hpp"

namespace {

double run(mif::alloc::AllocatorMode mode, bool static_pre,
           mif::u64 request_blocks, bool quick) {
  mif::core::ClusterConfig cfg;
  cfg.num_targets = 5;
  cfg.target.allocator = mode;
  mif::core::ParallelFileSystem fs(cfg);
  mif::workload::SharedFileConfig wcfg;
  wcfg.processes = quick ? 8 : 32;
  wcfg.blocks_per_process = quick ? 64 : 256;
  wcfg.request_blocks = request_blocks;
  wcfg.read_segments = quick ? 128 : 1024;
  wcfg.static_prealloc = static_pre;
  return mif::workload::run_shared_file(fs, wcfg).phase2_throughput_mbps;
}

}  // namespace

int main(int argc, char** argv) {
  using mif::Table;
  mif::obs::BenchReport report("fig6b_request_size", argc, argv);
  std::printf(
      "Fig 6(b) — phase-2 throughput vs phase-1 request size, 32 streams\n"
      "(paper: small allocations hurt reservation most; on-demand "
      "recovers)\n\n");
  Table t({"request KiB", "reservation MB/s", "on-demand MB/s",
           "static MB/s", "on-demand vs reservation"});
  const std::vector<mif::u64> sweep =
      report.quick() ? std::vector<mif::u64>{1, 4}
                     : std::vector<mif::u64>{1, 2, 4, 8, 16, 32};
  for (mif::u64 blocks : sweep) {
    const bool q = report.quick();
    const double res = run(mif::alloc::AllocatorMode::kReservation, false,
                           blocks, q);
    const double ond = run(mif::alloc::AllocatorMode::kOnDemand, false,
                           blocks, q);
    const double sta = run(mif::alloc::AllocatorMode::kStatic, true, blocks, q);
    t.add_row({std::to_string(blocks * mif::kBlockSize / 1024),
               Table::num(res), Table::num(ond), Table::num(sta),
               Table::pct(ond / res - 1.0)});
    if (report.json_enabled()) {
      mif::obs::Json config;
      config["request_blocks"] = blocks;
      mif::obs::Json results;
      results["reservation_mbps"] = res;
      results["ondemand_mbps"] = ond;
      results["static_mbps"] = sta;
      report.add_run("request_blocks=" + std::to_string(blocks),
                     std::move(config), std::move(results));
    }
  }
  t.print();
  report.write();
  return 0;
}
