// Regenerates Fig. 6(b): shared-file phase-2 throughput at 32 processes as
// the phase-1 allocation (request) size varies.  The paper: small requests
// suffer most under reservation ("the scheduler … can not merge the
// fragmentary requests"), on-demand narrows the gap to static.
#include <cstdio>

#include "util/table.hpp"
#include "workload/shared_file.hpp"

namespace {

double run(mif::alloc::AllocatorMode mode, bool static_pre,
           mif::u64 request_blocks) {
  mif::core::ClusterConfig cfg;
  cfg.num_targets = 5;
  cfg.target.allocator = mode;
  mif::core::ParallelFileSystem fs(cfg);
  mif::workload::SharedFileConfig wcfg;
  wcfg.processes = 32;
  wcfg.blocks_per_process = 256;
  wcfg.request_blocks = request_blocks;
  wcfg.read_segments = 1024;
  wcfg.static_prealloc = static_pre;
  return mif::workload::run_shared_file(fs, wcfg).phase2_throughput_mbps;
}

}  // namespace

int main() {
  using mif::Table;
  std::printf(
      "Fig 6(b) — phase-2 throughput vs phase-1 request size, 32 streams\n"
      "(paper: small allocations hurt reservation most; on-demand "
      "recovers)\n\n");
  Table t({"request KiB", "reservation MB/s", "on-demand MB/s",
           "static MB/s", "on-demand vs reservation"});
  for (mif::u64 blocks : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const double res = run(mif::alloc::AllocatorMode::kReservation, false, blocks);
    const double ond = run(mif::alloc::AllocatorMode::kOnDemand, false, blocks);
    const double sta = run(mif::alloc::AllocatorMode::kStatic, true, blocks);
    t.add_row({std::to_string(blocks * mif::kBlockSize / 1024),
               Table::num(res), Table::num(ond), Table::num(sta),
               Table::pct(ond / res - 1.0)});
  }
  t.print();
  return 0;
}
