#!/usr/bin/env sh
# Build and run the threading-sensitive tier-1 tests under ThreadSanitizer.
#
# Usage: check_tsan.sh [source-dir]
#
# Configures a side build (<source>/build-tsan) with -DMIF_SANITIZE=thread,
# builds the subset that exercises the transport stack's locking (the async
# completion queue, the batching queues, the shared-file workloads, the
# attribution ledger's concurrent charge sites) and runs it via ctest.
# Skips cleanly (exit 0) when the toolchain has no TSan runtime, so plain CI
# environments are not broken.  Registered as a ctest from
# tests/CMakeLists.txt for sanitizer-less parent builds.
set -eu

SCRIPT_DIR="$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)"
. "$SCRIPT_DIR/lib.sh"

SRC="${1:-$(CDPATH= cd -- "$SCRIPT_DIR/.." && pwd)}"
SANITIZERS="thread"

mif_require_sanitizer check_tsan "$SANITIZERS"

export TSAN_OPTIONS=halt_on_error=1
mif_sanitized_ctest check_tsan "$SRC" "$SRC/build-tsan" "$SANITIZERS" \
    rpc_test rpc_async_test formation_test qos_test concurrency_test \
    client_test collective_test shard_test timeline_test attrib_test \
    redundancy_test
