#!/usr/bin/env sh
# Build and run the threading-sensitive tier-1 tests under ThreadSanitizer.
#
# Usage: check_tsan.sh [source-dir]
#
# Configures a side build (<source>/build-tsan) with -DMIF_SANITIZE=thread,
# builds the subset that exercises the transport stack's locking (the async
# completion queue, the batching queues, the shared-file workloads) and runs
# it via ctest.  Skips cleanly (exit 0) when the toolchain has no TSan
# runtime, so plain CI environments are not broken.  Registered as a ctest
# from tests/CMakeLists.txt for sanitizer-less parent builds.
set -eu

SRC="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"
BUILD="$SRC/build-tsan"
SANITIZERS="thread"
TESTS="rpc_test rpc_async_test concurrency_test client_test collective_test shard_test timeline_test"

# Probe: can this toolchain link a TSan binary at all?
PROBE_DIR="$(mktemp -d /tmp/mif_tsan_probe.XXXXXX)"
trap 'rm -rf "$PROBE_DIR"' EXIT
printf 'int main(){return 0;}\n' > "$PROBE_DIR/probe.cpp"
if ! c++ -fsanitize=$SANITIZERS "$PROBE_DIR/probe.cpp" -o "$PROBE_DIR/probe" \
    > /dev/null 2>&1; then
  echo "check_tsan: SKIP (toolchain cannot link -fsanitize=$SANITIZERS)"
  exit 0
fi

cmake -B "$BUILD" -S "$SRC" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DMIF_SANITIZE="$SANITIZERS" > /dev/null

JOBS="$(nproc 2>/dev/null || echo 4)"
# shellcheck disable=SC2086  # word-splitting of $TESTS is intended
cmake --build "$BUILD" -j "$JOBS" --target $TESTS > /dev/null

TEST_REGEX="$(echo "$TESTS" | tr ' ' '|')"
TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$BUILD" -R "^($TEST_REGEX)$" --output-on-failure \
          -j "$JOBS"

echo "check_tsan: OK ($TESTS under $SANITIZERS)"
