#!/usr/bin/env sh
# CI schema check for the bench harness's --json reports.
#
# Usage: check_bench_json.sh <path-to-fig6a_stream_count> [more benches...]
#
# Runs the fastest figure bench in --quick mode, then validates the report:
# schema envelope, per-run config/results, and — for the on-demand run — the
# allocator counters, extent-count histogram and positioning-time stats the
# paper's evaluation reads.
#
# Then the async-transport equivalence gate: for EVERY bench passed,
# `--pipeline-depth 1` must be byte-identical to the default run (depth 1 IS
# the sync chain — no AsyncTransport is mounted), and for the first bench a
# depth-8 run must report pipelined timings with an aggregate speedup > 1.
#
# Then the metadata-sharding gate: `--mds-shards 1` must likewise be
# byte-identical for every bench (a single shard mounts no ShardedTransport),
# and a fig7_macro `--mds-shards 4` run must carry balanced shard-namespace
# runs: subtree listing with no fan-out, hash listing with fan-out.
#
# Then the flight-recorder gate: without `--timeseries` no run carries a
# timeseries section; a fig9_aging `--timeseries` run must emit strictly
# monotone sim timestamps, a non-empty and non-decreasing frag.extent_count
# series whose final sample equals the end-of-run frag.extent_count registry
# gauge exactly, and the workload's epoch marks.
# Registered as a ctest (see bench/CMakeLists.txt).
set -eu

BENCH="${1:?usage: check_bench_json.sh <fig6a_stream_count binary> [more...]}"
OUT="$(mktemp /tmp/mif_bench_json.XXXXXX)"
DEPTH1="$(mktemp /tmp/mif_bench_json_d1.XXXXXX)"
DEPTH8="$(mktemp /tmp/mif_bench_json_d8.XXXXXX)"
SHARD1="$(mktemp /tmp/mif_bench_json_s1.XXXXXX)"
SHARD4="$(mktemp /tmp/mif_bench_json_s4.XXXXXX)"
TS="$(mktemp /tmp/mif_bench_json_ts.XXXXXX)"
trap 'rm -f "$OUT" "$DEPTH1" "$DEPTH8" "$SHARD1" "$SHARD4" "$TS"' EXIT

"$BENCH" --quick --json "$OUT" > /dev/null

python3 - "$OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_bench_json: FAIL: {msg}")

require(doc.get("schema_version") == 1, "schema_version != 1")
require(doc.get("bench") == "fig6a_stream_count", "bench name mismatch")
runs = doc.get("runs")
require(isinstance(runs, list) and runs, "runs missing or empty")

for run in runs:
    for key in ("name", "config", "results"):
        require(key in run, f"run missing '{key}'")
    require(isinstance(run["results"].get("phase2_throughput_mbps"),
                       (int, float)), "results missing throughput")

ondemand = [r for r in runs if r["config"].get("mode") == "ondemand"]
require(ondemand, "no ondemand run in report")
m = ondemand[0].get("metrics")
require(isinstance(m, dict), "ondemand run has no metrics registry")

counters = m.get("counters", {})
for key in ("alloc.ondemand.layout_miss", "alloc.ondemand.pre_alloc_layout"):
    require(key in counters, f"counter '{key}' missing")
    require(counters[key] > 0, f"counter '{key}' is zero")

hist = m.get("histograms", {}).get("alloc.extents_per_file")
require(hist is not None, "histogram 'alloc.extents_per_file' missing")
require(hist.get("count", 0) > 0, "extent histogram is empty")
require(isinstance(hist.get("buckets"), list), "extent histogram has no buckets")

stat = m.get("stats", {}).get("sim.disk.position_ms")
require(stat is not None, "stat 'sim.disk.position_ms' missing")
require(stat.get("count", 0) > 0, "positioning-time stat is empty")
require(stat.get("mean", 0) > 0, "positioning-time mean is zero")

print(f"check_bench_json: OK ({len(runs)} runs, "
      f"layout_miss={counters['alloc.ondemand.layout_miss']})")
EOF

# ---- async-transport equivalence gate ------------------------------------
# Depth 1 is the synchronous chain by construction; its report must be
# byte-identical to the default run for every bench we are handed.
for bench in "$@"; do
  name="$(basename "$bench")"
  "$bench" --quick --json "$OUT" > /dev/null 2>&1
  "$bench" --quick --json "$DEPTH1" --pipeline-depth 1 > /dev/null 2>&1
  if ! cmp -s "$OUT" "$DEPTH1"; then
    echo "check_bench_json: FAIL: $name --pipeline-depth 1 is not" \
         "byte-identical to the default (sync) report"
    diff "$OUT" "$DEPTH1" | head -20 || true
    exit 1
  fi
  echo "check_bench_json: OK ($name depth-1 report byte-identical to sync)"
done

# A deep pipeline must actually overlap: the depth-8 report carries the
# pipelined timings and the modeled elapsed time beats the serial sum.
"$BENCH" --quick --json "$DEPTH8" --pipeline-depth 8 > /dev/null 2>&1
python3 - "$DEPTH8" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

runs = doc.get("runs", [])
if not runs:
    sys.exit("check_bench_json: FAIL: depth-8 report has no runs")
speedups = []
for run in runs:
    cfg, res = run.get("config", {}), run.get("results", {})
    if cfg.get("pipeline_depth") != 8:
        sys.exit(f"check_bench_json: FAIL: run '{run.get('name')}' config "
                 "lacks pipeline_depth=8")
    for key in ("pipeline_serial_ms", "pipeline_elapsed_ms",
                "pipeline_speedup"):
        if not isinstance(res.get(key), (int, float)):
            sys.exit(f"check_bench_json: FAIL: run '{run.get('name')}' "
                     f"results lack '{key}'")
    speedups.append(res["pipeline_speedup"])

best = max(speedups)
if best <= 1.0:
    sys.exit(f"check_bench_json: FAIL: depth-8 pipeline_speedup <= 1 "
             f"everywhere (best {best:.3f}) — no overlap")
print(f"check_bench_json: OK (depth-8 overlap, best speedup {best:.2f}x "
      f"across {len(runs)} runs)")
EOF

# ---- metadata-sharding equivalence gate ----------------------------------
# A single shard mounts no ShardedTransport by construction; `--mds-shards 1`
# must be byte-identical to the default report for every bench we are handed.
for bench in "$@"; do
  name="$(basename "$bench")"
  "$bench" --quick --json "$OUT" > /dev/null 2>&1
  "$bench" --quick --json "$SHARD1" --mds-shards 1 > /dev/null 2>&1
  if ! cmp -s "$OUT" "$SHARD1"; then
    echo "check_bench_json: FAIL: $name --mds-shards 1 is not" \
         "byte-identical to the default (single-MDS) report"
    diff "$OUT" "$SHARD1" | head -20 || true
    exit 1
  fi
  echo "check_bench_json: OK ($name shards-1 report byte-identical to single-MDS)"
done

# A 4-shard fig7 mount must route for real: the shard-namespace runs report
# a balanced load (imbalance < 2.0), subtree listings that touch ONE shard
# (fan-out 0) and hash listings that fan out to every shard.
for bench in "$@"; do
  [ "$(basename "$bench")" = "fig7_macro" ] || continue
  "$bench" --quick --json "$SHARD4" --mds-shards 4 > /dev/null 2>&1
  python3 - "$SHARD4" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_bench_json: FAIL: {msg}")

ns = {r["config"].get("placement"): r for r in doc.get("runs", [])
      if r["config"].get("benchmark") == "shard-namespace"}
for placement in ("subtree", "hash"):
    require(placement in ns, f"shards-4 report lacks the {placement} "
            "shard-namespace run")
    res = ns[placement]["results"]
    require(ns[placement]["config"].get("mds_shards") == 4,
            f"{placement} namespace run config lacks mds_shards=4")
    imb = res.get("shard_imbalance")
    require(isinstance(imb, (int, float)) and imb < 2.0,
            f"{placement} shard_imbalance {imb} not < 2.0")
fanout_subtree = ns["subtree"]["results"].get("shard_fanout")
fanout_hash = ns["hash"]["results"].get("shard_fanout")
require(fanout_subtree == 0,
        f"subtree listings fanned out ({fanout_subtree} requests) — "
        "children left their directory's shard")
require(isinstance(fanout_hash, int) and fanout_hash > 0,
        f"hash listings recorded no fan-out ({fanout_hash})")
print(f"check_bench_json: OK (shards-4 namespace: subtree fanout 0, "
      f"hash fanout {fanout_hash}, imbalance "
      f"{ns['subtree']['results']['shard_imbalance']:.2f}/"
      f"{ns['hash']['results']['shard_imbalance']:.2f})")
EOF
done

# ---- flight-recorder (--timeseries) gate ----------------------------------
# Off by default: no run of any bench carries a "timeseries" section.
for bench in "$@"; do
  name="$(basename "$bench")"
  "$bench" --quick --json "$OUT" > /dev/null 2>&1
  python3 - "$OUT" "$name" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for run in doc.get("runs", []):
    if "timeseries" in run:
        sys.exit(f"check_bench_json: FAIL: {sys.argv[2]} run "
                 f"'{run.get('name')}' carries a timeseries section "
                 "without --timeseries")
EOF
done
echo "check_bench_json: OK (no timeseries section without --timeseries)"

# An invalid interval must fail fast, not mount a broken recorder.
for bench in "$@"; do
  [ "$(basename "$bench")" = "fig9_aging" ] || continue
  if "$bench" --quick --json "$TS" --timeseries=0 > /dev/null 2>&1; then
    echo "check_bench_json: FAIL: fig9_aging --timeseries=0 did not fail"
    exit 1
  fi
  echo "check_bench_json: OK (fig9_aging --timeseries=0 rejected)"
done

# The aging bench under the recorder: strictly monotone sim time axis, a
# non-empty, non-decreasing frag.extent_count series whose final sample
# equals the end-of-run registry gauge EXACTLY (same scan, same doubles),
# and the aging workload's epoch marks.
for bench in "$@"; do
  [ "$(basename "$bench")" = "fig9_aging" ] || continue
  "$bench" --quick --json "$TS" --timeseries > /dev/null 2>&1
  python3 - "$TS" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_bench_json: FAIL: {msg}")

runs = doc.get("runs", [])
require(runs, "fig9 --timeseries report has no runs")
samples = 0
for run in runs:
    name = run.get("name")
    ts = run.get("timeseries")
    require(isinstance(ts, dict), f"run '{name}' has no timeseries")
    require(ts.get("interval_ms", 0) > 0, f"run '{name}' interval_ms <= 0")
    times = ts.get("times_ms")
    require(isinstance(times, list) and times, f"run '{name}' times_ms empty")
    for a, b in zip(times, times[1:]):
        require(a < b, f"run '{name}' sim timestamps not strictly "
                f"increasing ({a} then {b})")
    frag = ts.get("series", {}).get("frag.extent_count")
    require(isinstance(frag, dict), f"run '{name}' lacks frag.extent_count")
    values = frag.get("values")
    require(isinstance(values, list) and values,
            f"run '{name}' frag.extent_count series empty")
    require(len(values) == len(times),
            f"run '{name}' series length != time axis length")
    require(any(v > 0 for v in values),
            f"run '{name}' frag.extent_count never rose above zero")
    for a, b in zip(values, values[1:]):
        require(b >= a, f"run '{name}' frag.extent_count decreased under "
                f"churn ({a} then {b})")
    gauge = run.get("metrics", {}).get("gauges", {}).get("frag.extent_count")
    require(gauge is not None, f"run '{name}' metrics lack frag.extent_count")
    require(values[-1] == gauge and frag.get("last") == gauge,
            f"run '{name}' final timeline sample {values[-1]} != end-of-run "
            f"registry gauge {gauge}")
    labels = {e.get("label") for e in ts.get("epochs", [])}
    for epoch in ("churn", "measure.create", "measure.delete", "end"):
        require(epoch in labels, f"run '{name}' missing epoch '{epoch}' "
                f"(got {sorted(labels)})")
    samples += len(times)

print(f"check_bench_json: OK (fig9 --timeseries: {len(runs)} runs, "
      f"{samples} samples, final frag.extent_count matches registry)")
EOF
done
