#!/usr/bin/env sh
# CI schema check for the bench harness's --json reports.
#
# Usage: check_bench_json.sh <path-to-fig6a_stream_count> [more benches...]
#
# Runs the fastest figure bench in --quick mode, then validates the report:
# schema envelope, per-run config/results, and — for the on-demand run — the
# allocator counters, extent-count histogram and positioning-time stats the
# paper's evaluation reads.
#
# Then the async-transport equivalence gate: for EVERY bench passed,
# `--pipeline-depth 1` must be byte-identical to the default run (depth 1 IS
# the sync chain — no AsyncTransport is mounted), and for the first bench a
# depth-8 run must report pipelined timings with an aggregate speedup > 1.
#
# Then the metadata-sharding gate: `--mds-shards 1` must likewise be
# byte-identical for every bench (a single shard mounts no ShardedTransport),
# and a fig7_macro `--mds-shards 4` run must carry balanced shard-namespace
# runs: subtree listing with no fan-out, hash listing with fan-out.
# Registered as a ctest (see bench/CMakeLists.txt).
set -eu

BENCH="${1:?usage: check_bench_json.sh <fig6a_stream_count binary> [more...]}"
OUT="$(mktemp /tmp/mif_bench_json.XXXXXX)"
DEPTH1="$(mktemp /tmp/mif_bench_json_d1.XXXXXX)"
DEPTH8="$(mktemp /tmp/mif_bench_json_d8.XXXXXX)"
SHARD1="$(mktemp /tmp/mif_bench_json_s1.XXXXXX)"
SHARD4="$(mktemp /tmp/mif_bench_json_s4.XXXXXX)"
trap 'rm -f "$OUT" "$DEPTH1" "$DEPTH8" "$SHARD1" "$SHARD4"' EXIT

"$BENCH" --quick --json "$OUT" > /dev/null

python3 - "$OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_bench_json: FAIL: {msg}")

require(doc.get("schema_version") == 1, "schema_version != 1")
require(doc.get("bench") == "fig6a_stream_count", "bench name mismatch")
runs = doc.get("runs")
require(isinstance(runs, list) and runs, "runs missing or empty")

for run in runs:
    for key in ("name", "config", "results"):
        require(key in run, f"run missing '{key}'")
    require(isinstance(run["results"].get("phase2_throughput_mbps"),
                       (int, float)), "results missing throughput")

ondemand = [r for r in runs if r["config"].get("mode") == "ondemand"]
require(ondemand, "no ondemand run in report")
m = ondemand[0].get("metrics")
require(isinstance(m, dict), "ondemand run has no metrics registry")

counters = m.get("counters", {})
for key in ("alloc.ondemand.layout_miss", "alloc.ondemand.pre_alloc_layout"):
    require(key in counters, f"counter '{key}' missing")
    require(counters[key] > 0, f"counter '{key}' is zero")

hist = m.get("histograms", {}).get("alloc.extents_per_file")
require(hist is not None, "histogram 'alloc.extents_per_file' missing")
require(hist.get("count", 0) > 0, "extent histogram is empty")
require(isinstance(hist.get("buckets"), list), "extent histogram has no buckets")

stat = m.get("stats", {}).get("sim.disk.position_ms")
require(stat is not None, "stat 'sim.disk.position_ms' missing")
require(stat.get("count", 0) > 0, "positioning-time stat is empty")
require(stat.get("mean", 0) > 0, "positioning-time mean is zero")

print(f"check_bench_json: OK ({len(runs)} runs, "
      f"layout_miss={counters['alloc.ondemand.layout_miss']})")
EOF

# ---- async-transport equivalence gate ------------------------------------
# Depth 1 is the synchronous chain by construction; its report must be
# byte-identical to the default run for every bench we are handed.
for bench in "$@"; do
  name="$(basename "$bench")"
  "$bench" --quick --json "$OUT" > /dev/null 2>&1
  "$bench" --quick --json "$DEPTH1" --pipeline-depth 1 > /dev/null 2>&1
  if ! cmp -s "$OUT" "$DEPTH1"; then
    echo "check_bench_json: FAIL: $name --pipeline-depth 1 is not" \
         "byte-identical to the default (sync) report"
    diff "$OUT" "$DEPTH1" | head -20 || true
    exit 1
  fi
  echo "check_bench_json: OK ($name depth-1 report byte-identical to sync)"
done

# A deep pipeline must actually overlap: the depth-8 report carries the
# pipelined timings and the modeled elapsed time beats the serial sum.
"$BENCH" --quick --json "$DEPTH8" --pipeline-depth 8 > /dev/null 2>&1
python3 - "$DEPTH8" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

runs = doc.get("runs", [])
if not runs:
    sys.exit("check_bench_json: FAIL: depth-8 report has no runs")
speedups = []
for run in runs:
    cfg, res = run.get("config", {}), run.get("results", {})
    if cfg.get("pipeline_depth") != 8:
        sys.exit(f"check_bench_json: FAIL: run '{run.get('name')}' config "
                 "lacks pipeline_depth=8")
    for key in ("pipeline_serial_ms", "pipeline_elapsed_ms",
                "pipeline_speedup"):
        if not isinstance(res.get(key), (int, float)):
            sys.exit(f"check_bench_json: FAIL: run '{run.get('name')}' "
                     f"results lack '{key}'")
    speedups.append(res["pipeline_speedup"])

best = max(speedups)
if best <= 1.0:
    sys.exit(f"check_bench_json: FAIL: depth-8 pipeline_speedup <= 1 "
             f"everywhere (best {best:.3f}) — no overlap")
print(f"check_bench_json: OK (depth-8 overlap, best speedup {best:.2f}x "
      f"across {len(runs)} runs)")
EOF

# ---- metadata-sharding equivalence gate ----------------------------------
# A single shard mounts no ShardedTransport by construction; `--mds-shards 1`
# must be byte-identical to the default report for every bench we are handed.
for bench in "$@"; do
  name="$(basename "$bench")"
  "$bench" --quick --json "$OUT" > /dev/null 2>&1
  "$bench" --quick --json "$SHARD1" --mds-shards 1 > /dev/null 2>&1
  if ! cmp -s "$OUT" "$SHARD1"; then
    echo "check_bench_json: FAIL: $name --mds-shards 1 is not" \
         "byte-identical to the default (single-MDS) report"
    diff "$OUT" "$SHARD1" | head -20 || true
    exit 1
  fi
  echo "check_bench_json: OK ($name shards-1 report byte-identical to single-MDS)"
done

# A 4-shard fig7 mount must route for real: the shard-namespace runs report
# a balanced load (imbalance < 2.0), subtree listings that touch ONE shard
# (fan-out 0) and hash listings that fan out to every shard.
for bench in "$@"; do
  [ "$(basename "$bench")" = "fig7_macro" ] || continue
  "$bench" --quick --json "$SHARD4" --mds-shards 4 > /dev/null 2>&1
  python3 - "$SHARD4" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_bench_json: FAIL: {msg}")

ns = {r["config"].get("placement"): r for r in doc.get("runs", [])
      if r["config"].get("benchmark") == "shard-namespace"}
for placement in ("subtree", "hash"):
    require(placement in ns, f"shards-4 report lacks the {placement} "
            "shard-namespace run")
    res = ns[placement]["results"]
    require(ns[placement]["config"].get("mds_shards") == 4,
            f"{placement} namespace run config lacks mds_shards=4")
    imb = res.get("shard_imbalance")
    require(isinstance(imb, (int, float)) and imb < 2.0,
            f"{placement} shard_imbalance {imb} not < 2.0")
fanout_subtree = ns["subtree"]["results"].get("shard_fanout")
fanout_hash = ns["hash"]["results"].get("shard_fanout")
require(fanout_subtree == 0,
        f"subtree listings fanned out ({fanout_subtree} requests) — "
        "children left their directory's shard")
require(isinstance(fanout_hash, int) and fanout_hash > 0,
        f"hash listings recorded no fan-out ({fanout_hash})")
print(f"check_bench_json: OK (shards-4 namespace: subtree fanout 0, "
      f"hash fanout {fanout_hash}, imbalance "
      f"{ns['subtree']['results']['shard_imbalance']:.2f}/"
      f"{ns['hash']['results']['shard_imbalance']:.2f})")
EOF
done
