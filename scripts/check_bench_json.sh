#!/usr/bin/env sh
# CI schema check for the bench harness's --json reports.
#
# Usage: check_bench_json.sh <path-to-fig6a_stream_count>
#
# Runs the fastest figure bench in --quick mode, then validates the report:
# schema envelope, per-run config/results, and — for the on-demand run — the
# allocator counters, extent-count histogram and positioning-time stats the
# paper's evaluation reads.  Registered as a ctest (see bench/CMakeLists.txt).
set -eu

BENCH="${1:?usage: check_bench_json.sh <fig6a_stream_count binary>}"
OUT="$(mktemp /tmp/mif_bench_json.XXXXXX)"
trap 'rm -f "$OUT"' EXIT

"$BENCH" --quick --json "$OUT" > /dev/null

python3 - "$OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_bench_json: FAIL: {msg}")

require(doc.get("schema_version") == 1, "schema_version != 1")
require(doc.get("bench") == "fig6a_stream_count", "bench name mismatch")
runs = doc.get("runs")
require(isinstance(runs, list) and runs, "runs missing or empty")

for run in runs:
    for key in ("name", "config", "results"):
        require(key in run, f"run missing '{key}'")
    require(isinstance(run["results"].get("phase2_throughput_mbps"),
                       (int, float)), "results missing throughput")

ondemand = [r for r in runs if r["config"].get("mode") == "ondemand"]
require(ondemand, "no ondemand run in report")
m = ondemand[0].get("metrics")
require(isinstance(m, dict), "ondemand run has no metrics registry")

counters = m.get("counters", {})
for key in ("alloc.ondemand.layout_miss", "alloc.ondemand.pre_alloc_layout"):
    require(key in counters, f"counter '{key}' missing")
    require(counters[key] > 0, f"counter '{key}' is zero")

hist = m.get("histograms", {}).get("alloc.extents_per_file")
require(hist is not None, "histogram 'alloc.extents_per_file' missing")
require(hist.get("count", 0) > 0, "extent histogram is empty")
require(isinstance(hist.get("buckets"), list), "extent histogram has no buckets")

stat = m.get("stats", {}).get("sim.disk.position_ms")
require(stat is not None, "stat 'sim.disk.position_ms' missing")
require(stat.get("count", 0) > 0, "positioning-time stat is empty")
require(stat.get("mean", 0) > 0, "positioning-time mean is zero")

print(f"check_bench_json: OK ({len(runs)} runs, "
      f"layout_miss={counters['alloc.ondemand.layout_miss']})")
EOF
