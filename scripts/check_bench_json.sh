#!/usr/bin/env sh
# CI schema check for the bench harness's --json reports.
#
# Usage: check_bench_json.sh <path-to-fig6a_stream_count> [more benches...]
#
# Runs the fastest figure bench in --quick mode, then validates the report:
# schema envelope, per-run config/results, and — for the on-demand run — the
# allocator counters, extent-count histogram and positioning-time stats the
# paper's evaluation reads.
#
# Then the async-transport equivalence gate: for EVERY bench passed,
# `--pipeline-depth 1` must be byte-identical to the default run (depth 1 IS
# the sync chain — no AsyncTransport is mounted), and for the first bench a
# depth-8 run must report pipelined timings with an aggregate speedup > 1.
#
# Then the metadata-sharding gate: `--mds-shards 1` must likewise be
# byte-identical for every bench (a single shard mounts no ShardedTransport),
# and a fig7_macro `--mds-shards 4` run must carry balanced shard-namespace
# runs: subtree listing with no fan-out, hash listing with fan-out.
#
# Then the flight-recorder gate: without `--timeseries` no run carries a
# timeseries section; a fig9_aging `--timeseries` run must emit strictly
# monotone sim timestamps, a non-empty and non-decreasing frag.extent_count
# series whose final sample equals the end-of-run frag.extent_count registry
# gauge exactly, and the workload's epoch marks.
#
# Then the cost-attribution gate: without `--attribution` no run carries an
# attribution section (micro_antagonist excepted — attribution IS that
# bench); a zero/garbage `--pipeline-depth`/`--mds-shards` fails fast with
# status 2; a fig7_macro `--attribution` run must conserve — for every cost
# category the per-principal sums equal the global counters within 1e-9
# relative — and carry a critical-path report whose per-request segments sum
# to the request total; micro_antagonist must conserve, report Jain's
# fairness in (0,1] that DEGRADES as the antagonist's intensity grows, and
# reproduce byte-identically across two runs.
#
# Then the redundancy gate: zero/negative/garbage `--replicas` and a
# malformed `--kill-osd` spec fail fast with status 2, as does `--kill-osd`
# without `--replicas >= 2` (killing an unreplicated mount is data loss, not
# a scenario); `--replicas 1` must be byte-identical to the default report
# for every bench (and byte-identical on stdout for the figure benches); a
# fig7_macro `--replicas 2 --kill-osd 1@2` run must complete with ZERO
# client-visible read errors, rebuild a positive number of bytes, finish the
# repair on the simulated timeline with no target left dead, and land its
# post-repair extent count and read time within tolerance of the
# never-killed replicated baseline in the same report.
#
# Then the list-I/O gate: `--collective-aggregators 4` (the built-in default)
# must be byte-identical to the default fig7 report; a fig7_macro
# `--list-io 64 --attribution` run must carry the strided sweep with >= 5x
# fewer data-RPC envelopes and strictly less data-network sim time on the
# list mount, and every attributed run — now carrying multi-run list/strided
# frames — must still conserve disk/net/cpu/bytes.
#
# Then the formation/QoS gate: zero/negative/garbage `--qos` and
# `--adaptive-depth` values fail fast with status 2 (and `--adaptive-depth 1`
# specifically — a ceiling of 1 can never arm the controller); with neither
# flag no run of any bench carries qos or adaptive-depth fields; a fig6a
# `--adaptive-depth 8` run must report a floating window that actually moved
# (depth_min < depth_max) and still overlap (best speedup > 1); a
# micro_antagonist `--qos 4` A/B sweep must show the token bucket working at
# the top intensity — Jain fairness >= 0.9 with the scheduler on, strictly
# better than off, the victims' p99 restored — while the shaped runs still
# conserve their attribution ledgers.
# Registered as a ctest (see bench/CMakeLists.txt).
set -eu

SCRIPT_DIR="$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)"
. "$SCRIPT_DIR/lib.sh"

BENCH="${1:?usage: check_bench_json.sh <fig6a_stream_count binary> [more...]}"
mif_tmpfile OUT bench_json
mif_tmpfile DEPTH1 bench_json_d1
mif_tmpfile DEPTH8 bench_json_d8
mif_tmpfile SHARD1 bench_json_s1
mif_tmpfile SHARD4 bench_json_s4
mif_tmpfile TS bench_json_ts
mif_tmpfile ATTR bench_json_attr
mif_tmpfile ATTR2 bench_json_attr2
mif_tmpfile LIST bench_json_list
mif_tmpfile ADAPT bench_json_adapt
mif_tmpfile QOS bench_json_qos
mif_tmpfile RED bench_json_red
mif_tmpfile BOUT bench_stdout_base
mif_tmpfile ROUT bench_stdout_red

"$BENCH" --quick --json "$OUT" > /dev/null

python3 - "$OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_bench_json: FAIL: {msg}")

require(doc.get("schema_version") == 1, "schema_version != 1")
require(doc.get("bench") == "fig6a_stream_count", "bench name mismatch")
runs = doc.get("runs")
require(isinstance(runs, list) and runs, "runs missing or empty")

for run in runs:
    for key in ("name", "config", "results"):
        require(key in run, f"run missing '{key}'")
    require(isinstance(run["results"].get("phase2_throughput_mbps"),
                       (int, float)), "results missing throughput")

ondemand = [r for r in runs if r["config"].get("mode") == "ondemand"]
require(ondemand, "no ondemand run in report")
m = ondemand[0].get("metrics")
require(isinstance(m, dict), "ondemand run has no metrics registry")

counters = m.get("counters", {})
for key in ("alloc.ondemand.layout_miss", "alloc.ondemand.pre_alloc_layout"):
    require(key in counters, f"counter '{key}' missing")
    require(counters[key] > 0, f"counter '{key}' is zero")

hist = m.get("histograms", {}).get("alloc.extents_per_file")
require(hist is not None, "histogram 'alloc.extents_per_file' missing")
require(hist.get("count", 0) > 0, "extent histogram is empty")
require(isinstance(hist.get("buckets"), list), "extent histogram has no buckets")

stat = m.get("stats", {}).get("sim.disk.position_ms")
require(stat is not None, "stat 'sim.disk.position_ms' missing")
require(stat.get("count", 0) > 0, "positioning-time stat is empty")
require(stat.get("mean", 0) > 0, "positioning-time mean is zero")

print(f"check_bench_json: OK ({len(runs)} runs, "
      f"layout_miss={counters['alloc.ondemand.layout_miss']})")
EOF

# ---- async-transport equivalence gate ------------------------------------
# Depth 1 is the synchronous chain by construction; its report must be
# byte-identical to the default run for every bench we are handed.
for bench in "$@"; do
  name="$(basename "$bench")"
  "$bench" --quick --json "$OUT" > /dev/null 2>&1
  "$bench" --quick --json "$DEPTH1" --pipeline-depth 1 > /dev/null 2>&1
  if ! cmp -s "$OUT" "$DEPTH1"; then
    echo "check_bench_json: FAIL: $name --pipeline-depth 1 is not" \
         "byte-identical to the default (sync) report"
    diff "$OUT" "$DEPTH1" | head -20 || true
    exit 1
  fi
  echo "check_bench_json: OK ($name depth-1 report byte-identical to sync)"
done

# A deep pipeline must actually overlap: the depth-8 report carries the
# pipelined timings and the modeled elapsed time beats the serial sum.
"$BENCH" --quick --json "$DEPTH8" --pipeline-depth 8 > /dev/null 2>&1
python3 - "$DEPTH8" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

runs = doc.get("runs", [])
if not runs:
    sys.exit("check_bench_json: FAIL: depth-8 report has no runs")
speedups = []
for run in runs:
    cfg, res = run.get("config", {}), run.get("results", {})
    if cfg.get("pipeline_depth") != 8:
        sys.exit(f"check_bench_json: FAIL: run '{run.get('name')}' config "
                 "lacks pipeline_depth=8")
    for key in ("pipeline_serial_ms", "pipeline_elapsed_ms",
                "pipeline_speedup"):
        if not isinstance(res.get(key), (int, float)):
            sys.exit(f"check_bench_json: FAIL: run '{run.get('name')}' "
                     f"results lack '{key}'")
    speedups.append(res["pipeline_speedup"])

best = max(speedups)
if best <= 1.0:
    sys.exit(f"check_bench_json: FAIL: depth-8 pipeline_speedup <= 1 "
             f"everywhere (best {best:.3f}) — no overlap")
print(f"check_bench_json: OK (depth-8 overlap, best speedup {best:.2f}x "
      f"across {len(runs)} runs)")
EOF

# ---- metadata-sharding equivalence gate ----------------------------------
# A single shard mounts no ShardedTransport by construction; `--mds-shards 1`
# must be byte-identical to the default report for every bench we are handed.
for bench in "$@"; do
  name="$(basename "$bench")"
  "$bench" --quick --json "$OUT" > /dev/null 2>&1
  "$bench" --quick --json "$SHARD1" --mds-shards 1 > /dev/null 2>&1
  if ! cmp -s "$OUT" "$SHARD1"; then
    echo "check_bench_json: FAIL: $name --mds-shards 1 is not" \
         "byte-identical to the default (single-MDS) report"
    diff "$OUT" "$SHARD1" | head -20 || true
    exit 1
  fi
  echo "check_bench_json: OK ($name shards-1 report byte-identical to single-MDS)"
done

# A 4-shard fig7 mount must route for real: the shard-namespace runs report
# a balanced load (imbalance < 2.0), subtree listings that touch ONE shard
# (fan-out 0) and hash listings that fan out to every shard.
for bench in "$@"; do
  [ "$(basename "$bench")" = "fig7_macro" ] || continue
  "$bench" --quick --json "$SHARD4" --mds-shards 4 > /dev/null 2>&1
  python3 - "$SHARD4" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_bench_json: FAIL: {msg}")

ns = {r["config"].get("placement"): r for r in doc.get("runs", [])
      if r["config"].get("benchmark") == "shard-namespace"}
for placement in ("subtree", "hash"):
    require(placement in ns, f"shards-4 report lacks the {placement} "
            "shard-namespace run")
    res = ns[placement]["results"]
    require(ns[placement]["config"].get("mds_shards") == 4,
            f"{placement} namespace run config lacks mds_shards=4")
    imb = res.get("shard_imbalance")
    require(isinstance(imb, (int, float)) and imb < 2.0,
            f"{placement} shard_imbalance {imb} not < 2.0")
fanout_subtree = ns["subtree"]["results"].get("shard_fanout")
fanout_hash = ns["hash"]["results"].get("shard_fanout")
require(fanout_subtree == 0,
        f"subtree listings fanned out ({fanout_subtree} requests) — "
        "children left their directory's shard")
require(isinstance(fanout_hash, int) and fanout_hash > 0,
        f"hash listings recorded no fan-out ({fanout_hash})")
print(f"check_bench_json: OK (shards-4 namespace: subtree fanout 0, "
      f"hash fanout {fanout_hash}, imbalance "
      f"{ns['subtree']['results']['shard_imbalance']:.2f}/"
      f"{ns['hash']['results']['shard_imbalance']:.2f})")
EOF
done

# ---- flight-recorder (--timeseries) gate ----------------------------------
# Off by default: no run of any bench carries a "timeseries" section.
for bench in "$@"; do
  name="$(basename "$bench")"
  "$bench" --quick --json "$OUT" > /dev/null 2>&1
  python3 - "$OUT" "$name" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for run in doc.get("runs", []):
    if "timeseries" in run:
        sys.exit(f"check_bench_json: FAIL: {sys.argv[2]} run "
                 f"'{run.get('name')}' carries a timeseries section "
                 "without --timeseries")
EOF
done
echo "check_bench_json: OK (no timeseries section without --timeseries)"

# An invalid interval must fail fast, not mount a broken recorder.
for bench in "$@"; do
  [ "$(basename "$bench")" = "fig9_aging" ] || continue
  if "$bench" --quick --json "$TS" --timeseries=0 > /dev/null 2>&1; then
    echo "check_bench_json: FAIL: fig9_aging --timeseries=0 did not fail"
    exit 1
  fi
  echo "check_bench_json: OK (fig9_aging --timeseries=0 rejected)"
done

# The aging bench under the recorder: strictly monotone sim time axis, a
# non-empty, non-decreasing frag.extent_count series whose final sample
# equals the end-of-run registry gauge EXACTLY (same scan, same doubles),
# and the aging workload's epoch marks.
for bench in "$@"; do
  [ "$(basename "$bench")" = "fig9_aging" ] || continue
  "$bench" --quick --json "$TS" --timeseries > /dev/null 2>&1
  python3 - "$TS" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_bench_json: FAIL: {msg}")

runs = doc.get("runs", [])
require(runs, "fig9 --timeseries report has no runs")
samples = 0
for run in runs:
    name = run.get("name")
    ts = run.get("timeseries")
    require(isinstance(ts, dict), f"run '{name}' has no timeseries")
    require(ts.get("interval_ms", 0) > 0, f"run '{name}' interval_ms <= 0")
    times = ts.get("times_ms")
    require(isinstance(times, list) and times, f"run '{name}' times_ms empty")
    for a, b in zip(times, times[1:]):
        require(a < b, f"run '{name}' sim timestamps not strictly "
                f"increasing ({a} then {b})")
    frag = ts.get("series", {}).get("frag.extent_count")
    require(isinstance(frag, dict), f"run '{name}' lacks frag.extent_count")
    values = frag.get("values")
    require(isinstance(values, list) and values,
            f"run '{name}' frag.extent_count series empty")
    require(len(values) == len(times),
            f"run '{name}' series length != time axis length")
    require(any(v > 0 for v in values),
            f"run '{name}' frag.extent_count never rose above zero")
    for a, b in zip(values, values[1:]):
        require(b >= a, f"run '{name}' frag.extent_count decreased under "
                f"churn ({a} then {b})")
    gauge = run.get("metrics", {}).get("gauges", {}).get("frag.extent_count")
    require(gauge is not None, f"run '{name}' metrics lack frag.extent_count")
    require(values[-1] == gauge and frag.get("last") == gauge,
            f"run '{name}' final timeline sample {values[-1]} != end-of-run "
            f"registry gauge {gauge}")
    labels = {e.get("label") for e in ts.get("epochs", [])}
    for epoch in ("churn", "measure.create", "measure.delete", "end"):
        require(epoch in labels, f"run '{name}' missing epoch '{epoch}' "
                f"(got {sorted(labels)})")
    samples += len(times)

print(f"check_bench_json: OK (fig9 --timeseries: {len(runs)} runs, "
      f"{samples} samples, final frag.extent_count matches registry)")
EOF
done

# ---- cost-attribution gate -------------------------------------------------
# Off by default: no run of any figure bench carries an "attribution"
# section and no report carries a "critical_path" document.  micro_antagonist
# is the exception by design — attribution IS that bench.
for bench in "$@"; do
  name="$(basename "$bench")"
  [ "$name" = "micro_antagonist" ] && continue
  "$bench" --quick --json "$OUT" > /dev/null 2>&1
  python3 - "$OUT" "$name" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
if "critical_path" in doc:
    sys.exit(f"check_bench_json: FAIL: {sys.argv[2]} report carries a "
             "critical_path document without --attribution")
for run in doc.get("runs", []):
    if "attribution" in run:
        sys.exit(f"check_bench_json: FAIL: {sys.argv[2]} run "
                 f"'{run.get('name')}' carries an attribution section "
                 "without --attribution")
EOF
done
echo "check_bench_json: OK (no attribution section without --attribution)"

# Invalid transport knobs must fail fast with status 2 — not mount a broken
# stack and emit a report that silently ignored the flag.
for flag in --pipeline-depth --mds-shards --collective-aggregators --list-io \
            --qos --adaptive-depth --replicas; do
  for bad in 0 -3 many; do
    if "$BENCH" --quick --json "$OUT" "$flag" "$bad" > /dev/null 2>&1; then
      echo "check_bench_json: FAIL: $flag $bad did not fail"
      exit 1
    fi
    rc=0
    "$BENCH" --quick --json "$OUT" "$flag=$bad" > /dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 2 ]; then
      echo "check_bench_json: FAIL: $flag=$bad exited $rc, want 2"
      exit 1
    fi
  done
done
echo "check_bench_json: OK (zero/negative/garbage transport knobs exit 2)"

# Conservation: a fig7_macro --attribution report must account every
# simulated millisecond — per-principal sums equal the global counters —
# and its critical-path requests must decompose exactly.
for bench in "$@"; do
  [ "$(basename "$bench")" = "fig7_macro" ] || continue
  "$bench" --quick --json "$ATTR" --attribution > /dev/null 2>&1
  python3 - "$ATTR" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_bench_json: FAIL: {msg}")

def close(a, b):
    return abs(a - b) <= 1e-9 * max(1.0, abs(a), abs(b))

DISK = ("disk_seek_ms", "disk_rotation_ms", "disk_skip_ms",
        "disk_transfer_ms")

attributed = [r for r in doc.get("runs", []) if "attribution" in r]
require(attributed, "fig7 --attribution report has no attributed runs")
for run in attributed:
    name = run.get("name")
    a = run["attribution"]
    principals, glob = a.get("principals"), a.get("global")
    require(isinstance(principals, dict) and principals,
            f"run '{name}' has no principals")
    require(isinstance(glob, dict), f"run '{name}' has no global comparands")
    sums = {"disk": 0.0, "net": 0.0, "cpu": 0.0, "bytes": 0}
    for label, acct in principals.items():
        sums["disk"] += sum(acct[k] for k in DISK)
        sums["net"] += acct["net_ms"]
        sums["cpu"] += acct["mds_cpu_ms"]
        sums["bytes"] += acct["net_bytes"]
    require(close(sums["disk"], glob["disk_ms"]),
            f"run '{name}' disk not conserved: principals {sums['disk']} "
            f"vs global {glob['disk_ms']}")
    require(close(sums["net"], glob["net_ms"]),
            f"run '{name}' net time not conserved: {sums['net']} vs "
            f"{glob['net_ms']}")
    require(close(sums["cpu"], glob["mds_cpu_ms"]),
            f"run '{name}' MDS cpu not conserved: {sums['cpu']} vs "
            f"{glob['mds_cpu_ms']}")
    require(sums["bytes"] == glob["net_bytes"],
            f"run '{name}' net bytes not conserved: {sums['bytes']} vs "
            f"{glob['net_bytes']}")
    fairness = a.get("fairness")
    require(isinstance(fairness, (int, float)) and 0 < fairness <= 1.0,
            f"run '{name}' fairness {fairness} outside (0,1]")

cp = doc.get("critical_path")
require(isinstance(cp, dict), "--attribution report lacks critical_path")
reqs = cp.get("requests")
require(isinstance(reqs, list) and reqs, "critical_path has no requests")
for r in reqs:
    seg_sum = sum(r["segments"].values())
    require(close(seg_sum, r["total_ms"]),
            f"trace {r.get('trace_id')} segments sum {seg_sum} != total "
            f"{r['total_ms']}")
totals = [r["total_ms"] for r in reqs]
require(totals == sorted(totals, reverse=True),
        "critical_path requests not slowest-first")

print(f"check_bench_json: OK (fig7 --attribution: {len(attributed)} runs "
      f"conserve disk/net/cpu/bytes, {len(reqs)} critical-path requests "
      "decompose exactly)")
EOF
done

# The antagonist bench: always-on attribution must conserve, per-class p99s
# must be present, and Jain's fairness must sit in (0,1] AND degrade as the
# hot client's intensity grows — the noisy neighbour is visible in the
# ledger.  Two runs must agree byte-for-byte (the whole pipeline is
# sim-deterministic).
for bench in "$@"; do
  [ "$(basename "$bench")" = "micro_antagonist" ] || continue
  "$bench" --quick --json "$ATTR" > /dev/null 2>&1
  "$bench" --quick --json "$ATTR2" > /dev/null 2>&1
  if ! cmp -s "$ATTR" "$ATTR2"; then
    echo "check_bench_json: FAIL: micro_antagonist reports differ between" \
         "two identical runs"
    diff "$ATTR" "$ATTR2" | head -20 || true
    exit 1
  fi
  python3 - "$ATTR" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_bench_json: FAIL: {msg}")

def close(a, b):
    return abs(a - b) <= 1e-9 * max(1.0, abs(a), abs(b))

DISK = ("disk_seek_ms", "disk_rotation_ms", "disk_skip_ms",
        "disk_transfer_ms")

runs = doc.get("runs", [])
require(len(runs) >= 3, f"expected >= 3 intensity points, got {len(runs)}")
fairness_by_intensity = []
for run in runs:
    name = run.get("name")
    res = run.get("results", {})
    for key in ("hot_p99_ms", "victim_p99_ms", "fairness"):
        require(isinstance(res.get(key), (int, float)),
                f"run '{name}' results lack '{key}'")
    require(0 < res["fairness"] <= 1.0,
            f"run '{name}' fairness {res['fairness']} outside (0,1]")
    a = run.get("attribution")
    require(isinstance(a, dict), f"run '{name}' has no attribution section")
    disk = sum(sum(acct[k] for k in DISK) for acct in a["principals"].values())
    require(close(disk, a["global"]["disk_ms"]),
            f"run '{name}' disk not conserved: {disk} vs "
            f"{a['global']['disk_ms']}")
    require(close(res["fairness"], a["fairness"]),
            f"run '{name}' results fairness != attribution fairness")
    fairness_by_intensity.append(
        (run["config"]["hot_intensity"], res["fairness"]))

fairness_by_intensity.sort()
base, top = fairness_by_intensity[0], fairness_by_intensity[-1]
require(base[0] == 0, f"no hot_intensity=0 baseline run ({base})")
require(top[1] < base[1],
        f"fairness did not degrade: intensity {top[0]} scored {top[1]:.4f} "
        f">= baseline {base[1]:.4f}")
print("check_bench_json: OK (micro_antagonist: deterministic, conserved, "
      f"fairness {base[1]:.3f} -> {top[1]:.3f} as intensity "
      f"{base[0]} -> {top[0]})")
EOF
done

# ---- redundancy gate -------------------------------------------------------
# A malformed kill spec must fail fast in both spellings, and killing a
# target without a replicated mount is harness misuse, not a scenario.
for bad in 0 -3 many 1@ @2 1@-2 x@y; do
  if "$BENCH" --quick --json "$OUT" --kill-osd "$bad" > /dev/null 2>&1; then
    echo "check_bench_json: FAIL: --kill-osd $bad did not fail"
    exit 1
  fi
  rc=0
  "$BENCH" --quick --json "$OUT" "--kill-osd=$bad" > /dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "check_bench_json: FAIL: --kill-osd=$bad exited $rc, want 2"
    exit 1
  fi
done
rc=0
"$BENCH" --quick --json "$OUT" --kill-osd 1@2 > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "check_bench_json: FAIL: --kill-osd without --replicas exited $rc, want 2"
  exit 1
fi
echo "check_bench_json: OK (bad/unreplicated --kill-osd specs exit 2)"

# Replication off is the mount everything else in CI measures: `--replicas 1`
# must not change a byte — of the JSON report for every bench, nor of the
# printed tables for the figure benches (their stdout is sim-deterministic).
for bench in "$@"; do
  name="$(basename "$bench")"
  "$bench" --quick --json "$OUT" > "$BOUT" 2>/dev/null
  "$bench" --quick --json "$RED" --replicas 1 > "$ROUT" 2>/dev/null
  if ! cmp -s "$OUT" "$RED"; then
    echo "check_bench_json: FAIL: $name --replicas 1 is not byte-identical" \
         "to the default (unreplicated) report"
    diff "$OUT" "$RED" | head -20 || true
    exit 1
  fi
  case "$name" in
    fig*)
      if ! cmp -s "$BOUT" "$ROUT"; then
        echo "check_bench_json: FAIL: $name --replicas 1 stdout differs" \
             "from the default run"
        diff "$BOUT" "$ROUT" | head -20 || true
        exit 1
      fi
      ;;
  esac
  echo "check_bench_json: OK ($name replicas-1 report byte-identical to default)"
done

# The survivable-kill scenario: a 2-way replicated fig7 mount loses target 1
# two simulated milliseconds in, serves every read degraded with zero
# client-visible errors, and the online rebuild finishes on the sim timeline
# leaving figures within tolerance of the never-killed replicated baseline.
for bench in "$@"; do
  [ "$(basename "$bench")" = "fig7_macro" ] || continue
  "$bench" --quick --json "$RED" --replicas 2 --kill-osd 1@2 > /dev/null 2>&1
  python3 - "$RED" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_bench_json: FAIL: {msg}")

red = {r["name"]: r for r in doc.get("runs", [])
       if r["config"].get("benchmark") == "redundancy"}
for name in ("redundancy replicated", "redundancy killed"):
    require(name in red, f"--replicas 2 --kill-osd report lacks '{name}' run")
base, killed = red["redundancy replicated"], red["redundancy killed"]
require(base["config"].get("replicas") == 2
        and killed["config"].get("replicas") == 2,
        "redundancy runs lack replicas=2 in config")
require(killed["config"].get("killed") is True
        and killed["config"].get("kill_target") == 1,
        "killed run config lacks the kill spec")

kr, br = killed["results"], base["results"]
require(kr["read_errors"] == 0,
        f"killed run saw {kr['read_errors']} client-visible read errors")
require(kr["degraded_reads"] > 0,
        "killed run re-routed no reads — the kill never bit")
require(kr["repair_bytes_rebuilt"] > 0, "repair rebuilt zero bytes")
require(kr["repair_completed"] >= 1, "repair never completed")
require(kr["repair_completed_ms"] >= 0.0,
        f"repair completion stamp {kr['repair_completed_ms']} not on the "
        "sim timeline")
require(kr["dead_targets"] == 0,
        f"{kr['dead_targets']} target(s) still dead after the drain barrier")

# Post-repair figures: the rebuild writes merged, sorted runs, so the extent
# count must not balloon past the never-killed baseline, and the degraded +
# repaired read phase stays within 30% of it.
require(br["extents"] > 0, "baseline replicated run mapped no extents")
require(kr["extents"] <= 1.5 * br["extents"],
        f"killed run fragmented: {kr['extents']} extents vs baseline "
        f"{br['extents']}")
require(kr["read_ms"] <= 1.3 * br["read_ms"],
        f"killed run read phase {kr['read_ms']:.1f} ms vs baseline "
        f"{br['read_ms']:.1f} ms (> 1.3x)")

print(f"check_bench_json: OK (kill-osd recovery: 0 read errors, "
      f"{kr['degraded_reads']} degraded reads, "
      f"{kr['repair_bytes_rebuilt']} bytes rebuilt by "
      f"{kr['repair_completed_ms']:.1f} ms sim, extents "
      f"{br['extents']}->{kr['extents']}, read "
      f"{br['read_ms']:.1f}->{kr['read_ms']:.1f} ms)")
EOF
done

# ---- list-I/O gate ---------------------------------------------------------
# Passing the collective-aggregator default explicitly must not change a
# byte: 4 aggregators IS the built-in CollectiveConfig, so the flag only
# re-states it.
for bench in "$@"; do
  [ "$(basename "$bench")" = "fig7_macro" ] || continue
  "$bench" --quick --json "$OUT" > /dev/null 2>&1
  "$bench" --quick --json "$LIST" --collective-aggregators 4 > /dev/null 2>&1
  if ! cmp -s "$OUT" "$LIST"; then
    echo "check_bench_json: FAIL: fig7_macro --collective-aggregators 4 is" \
         "not byte-identical to the default report"
    diff "$OUT" "$LIST" | head -20 || true
    exit 1
  fi
  echo "check_bench_json: OK (fig7 aggregators-4 report byte-identical to default)"

  # List mount on: the strided sweep must ship an order fewer data-RPC
  # envelopes (>= 5x) in strictly less data-network sim time, and every
  # attributed run — whose frames now carry multiple (offset,len) runs each
  # — must still conserve against the global counters.
  "$bench" --quick --json "$LIST" --list-io 64 --attribution > /dev/null 2>&1
  python3 - "$LIST" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_bench_json: FAIL: {msg}")

def close(a, b):
    return abs(a - b) <= 1e-9 * max(1.0, abs(a), abs(b))

strided = [r for r in doc.get("runs", [])
           if r["config"].get("benchmark") == "strided-list-io"]
require(strided, "--list-io report lacks the strided-list-io run")
res = strided[0]["results"]
per, lst = res["perblock_data_rpcs"], res["list_data_rpcs"]
require(lst > 0, "list mount issued no data RPCs")
require(per >= 5 * lst,
        f"list mount shipped only {per / lst:.1f}x fewer data envelopes "
        f"({per} per-block vs {lst} list), want >= 5x")
require(res["list_net_ms"] < res["perblock_net_ms"],
        f"list mount was not faster on the data network "
        f"({res['list_net_ms']} vs {res['perblock_net_ms']} ms)")

DISK = ("disk_seek_ms", "disk_rotation_ms", "disk_skip_ms",
        "disk_transfer_ms")
attributed = [r for r in doc.get("runs", []) if "attribution" in r]
require(attributed, "--list-io --attribution report has no attributed runs")
for run in attributed:
    name = run.get("name")
    a = run["attribution"]
    principals, glob = a.get("principals"), a.get("global")
    require(isinstance(principals, dict) and principals,
            f"run '{name}' has no principals")
    sums = {"disk": 0.0, "net": 0.0, "cpu": 0.0, "bytes": 0}
    for acct in principals.values():
        sums["disk"] += sum(acct[k] for k in DISK)
        sums["net"] += acct["net_ms"]
        sums["cpu"] += acct["mds_cpu_ms"]
        sums["bytes"] += acct["net_bytes"]
    require(close(sums["disk"], glob["disk_ms"]),
            f"run '{name}' disk not conserved over list frames: "
            f"{sums['disk']} vs {glob['disk_ms']}")
    require(close(sums["net"], glob["net_ms"]),
            f"run '{name}' net time not conserved over list frames: "
            f"{sums['net']} vs {glob['net_ms']}")
    require(close(sums["cpu"], glob["mds_cpu_ms"]),
            f"run '{name}' MDS cpu not conserved over list frames: "
            f"{sums['cpu']} vs {glob['mds_cpu_ms']}")
    require(sums["bytes"] == glob["net_bytes"],
            f"run '{name}' net bytes not conserved over list frames: "
            f"{sums['bytes']} vs {glob['net_bytes']}")

print(f"check_bench_json: OK (list-io: {per}->{lst} data envelopes "
      f"({per / lst:.1f}x), net {res['perblock_net_ms']:.1f}->"
      f"{res['list_net_ms']:.1f} ms, {len(attributed)} attributed runs "
      "conserve over multi-run frames)")
EOF
done

# ---- formation/QoS gate ----------------------------------------------------
# An adaptive ceiling of 1 can never arm the controller: it must fail fast
# with status 2 in both spellings, not silently run the sync chain.
for form in "--adaptive-depth 1" "--adaptive-depth=1"; do
  rc=0
  # shellcheck disable=SC2086
  "$BENCH" --quick --json "$OUT" $form > /dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "check_bench_json: FAIL: $form exited $rc, want 2"
    exit 1
  fi
done
echo "check_bench_json: OK (--adaptive-depth 1 rejected with status 2)"

# Defaults off: without --qos/--adaptive-depth no run of any bench carries
# the scheduler's config knobs or the adaptive controller's trajectory.
for bench in "$@"; do
  name="$(basename "$bench")"
  "$bench" --quick --json "$OUT" > /dev/null 2>&1
  python3 - "$OUT" "$name" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for run in doc.get("runs", []):
    cfg, res = run.get("config", {}), run.get("results", {})
    for key in ("qos_mbps", "adaptive_depth"):
        if key in cfg:
            sys.exit(f"check_bench_json: FAIL: {sys.argv[2]} run "
                     f"'{run.get('name')}' config carries '{key}' without "
                     "the flag")
    for key in ("pipeline_depth_changes", "pipeline_depth_min",
                "pipeline_depth_max"):
        if key in res:
            sys.exit(f"check_bench_json: FAIL: {sys.argv[2]} run "
                     f"'{run.get('name')}' results carry '{key}' without "
                     "--adaptive-depth")
    if run.get("name", "").startswith("qos="):
        sys.exit(f"check_bench_json: FAIL: {sys.argv[2]} emitted a qos A/B "
                 "run without --qos")
EOF
done
echo "check_bench_json: OK (no qos/adaptive fields without the flags)"

# The floating window must actually float: under `--adaptive-depth 8` every
# run records the ceiling in its config, the controller's trajectory shows
# the window moved off its floor somewhere, and the pipeline still overlaps.
"$BENCH" --quick --json "$ADAPT" --adaptive-depth 8 > /dev/null 2>&1
python3 - "$ADAPT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_bench_json: FAIL: {msg}")

runs = doc.get("runs", [])
require(runs, "--adaptive-depth 8 report has no runs")
moved = 0
speedups = []
for run in runs:
    name = run.get("name")
    cfg, res = run.get("config", {}), run.get("results", {})
    require(cfg.get("adaptive_depth") == 8,
            f"run '{name}' config lacks adaptive_depth=8")
    for key in ("pipeline_speedup", "pipeline_depth_changes",
                "pipeline_depth_min", "pipeline_depth_max"):
        require(isinstance(res.get(key), (int, float)),
                f"run '{name}' results lack '{key}'")
    require(res["pipeline_depth_min"] <= res["pipeline_depth_max"],
            f"run '{name}' depth_min {res['pipeline_depth_min']} > "
            f"depth_max {res['pipeline_depth_max']}")
    if res["pipeline_depth_min"] < res["pipeline_depth_max"]:
        moved += 1
        require(res["pipeline_depth_changes"] > 0,
                f"run '{name}' window moved but depth_changes == 0")
    speedups.append(res["pipeline_speedup"])

require(moved > 0, "adaptive window never left its floor in any run")
best = max(speedups)
require(best > 1.0,
        f"adaptive pipeline_speedup <= 1 everywhere (best {best:.3f})")
print(f"check_bench_json: OK (adaptive-depth 8: window moved in {moved}/"
      f"{len(runs)} runs, best speedup {best:.2f}x)")
EOF

# The antagonist under the token bucket: at the top intensity the shaped
# mount must restore fairness (>= 0.9, strictly above the unshaped run) and
# the victims' p99, and the shaped runs — whose parked envelopes release
# under the scheduler's own principal scope — must still conserve their
# attribution ledgers exactly.
for bench in "$@"; do
  [ "$(basename "$bench")" = "micro_antagonist" ] || continue
  "$bench" --quick --json "$QOS" --qos 4 > /dev/null 2>&1
  python3 - "$QOS" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_bench_json: FAIL: {msg}")

def close(a, b):
    return abs(a - b) <= 1e-9 * max(1.0, abs(a), abs(b))

DISK = ("disk_seek_ms", "disk_rotation_ms", "disk_skip_ms",
        "disk_transfer_ms")

ab = {r["name"]: r for r in doc.get("runs", [])
      if r.get("name", "").startswith("qos=")}
require(ab, "--qos 4 report has no qos A/B runs")
for arm in ("qos=on hot=16", "qos=off hot=16"):
    require(arm in ab, f"--qos sweep lacks the '{arm}' run")
on, off = ab["qos=on hot=16"], ab["qos=off hot=16"]
require(on["config"].get("qos_mbps") == 4,
        "qos=on run config lacks qos_mbps=4")
require("qos_mbps" not in off["config"],
        "qos=off run config carries qos_mbps")

f_on, f_off = on["results"]["fairness"], off["results"]["fairness"]
require(f_on >= 0.9,
        f"shaped fairness {f_on:.4f} < 0.9 at hot=16")
require(f_on > f_off,
        f"scheduler did not improve fairness ({f_on:.4f} on vs "
        f"{f_off:.4f} off)")
v_on, v_off = on["results"]["victim_p99_ms"], off["results"]["victim_p99_ms"]
require(v_on < v_off,
        f"victims' p99 did not improve under qos ({v_on:.2f} on vs "
        f"{v_off:.2f} off)")

for name, run in ab.items():
    a = run.get("attribution")
    require(isinstance(a, dict), f"run '{name}' has no attribution section")
    sums = {"disk": 0.0, "net": 0.0, "cpu": 0.0, "bytes": 0}
    for acct in a["principals"].values():
        sums["disk"] += sum(acct[k] for k in DISK)
        sums["net"] += acct["net_ms"]
        sums["cpu"] += acct["mds_cpu_ms"]
        sums["bytes"] += acct["net_bytes"]
    glob = a["global"]
    require(close(sums["disk"], glob["disk_ms"]),
            f"run '{name}' disk not conserved under qos: {sums['disk']} "
            f"vs {glob['disk_ms']}")
    require(close(sums["net"], glob["net_ms"]),
            f"run '{name}' net time not conserved under qos: "
            f"{sums['net']} vs {glob['net_ms']}")
    require(close(sums["cpu"], glob["mds_cpu_ms"]),
            f"run '{name}' MDS cpu not conserved under qos: "
            f"{sums['cpu']} vs {glob['mds_cpu_ms']}")
    require(sums["bytes"] == glob["net_bytes"],
            f"run '{name}' net bytes not conserved under qos: "
            f"{sums['bytes']} vs {glob['net_bytes']}")

print(f"check_bench_json: OK (qos A/B at hot=16: fairness {f_off:.3f} -> "
      f"{f_on:.3f}, victim p99 {v_off:.2f} -> {v_on:.2f} ms, "
      f"{len(ab)} shaped runs conserve)")
EOF
done
