# Shared helpers for the scripts/check_*.sh CI gates.  POSIX sh; source it
# after `set -eu`:
#
#   . "$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)/lib.sh"
#
# Provides:
#   mif_tmpfile VAR [label]   create a temp file, assign its path to $VAR
#   mif_tmpdir  VAR [label]   create a temp directory, assign its path to $VAR
#   mif_require_sanitizer NAME SANITIZERS
#                             exit 0 with a SKIP line when the toolchain
#                             cannot link -fsanitize=SANITIZERS
#   mif_sanitized_ctest NAME SRC BUILD SANITIZERS TEST...
#                             configure a -DMIF_SANITIZE side build, build
#                             the listed test targets and run them via ctest
#
# Every temporary registered through mif_tmpfile/mif_tmpdir is removed by one
# shared EXIT trap, so callers never write their own mktemp/trap boilerplate.
# The helpers assign through `eval` instead of printing so they work in the
# parent shell (a $(...) capture would grow the cleanup list in a subshell
# and leak the file).

MIF_TMP_PATHS=""

mif_cleanup() {
  # shellcheck disable=SC2086  # word-splitting of the path list is intended
  [ -z "$MIF_TMP_PATHS" ] || rm -rf $MIF_TMP_PATHS
}
trap mif_cleanup EXIT

mif_tmpfile() {
  _mif_path="$(mktemp "/tmp/mif_${2:-tmp}.XXXXXX")"
  MIF_TMP_PATHS="$MIF_TMP_PATHS $_mif_path"
  eval "$1=\$_mif_path"
}

mif_tmpdir() {
  _mif_path="$(mktemp -d "/tmp/mif_${2:-tmp}.XXXXXX")"
  MIF_TMP_PATHS="$MIF_TMP_PATHS $_mif_path"
  eval "$1=\$_mif_path"
}

# Probe: can this toolchain link a sanitized binary at all?  Skipping keeps
# plain CI environments green; the sanitizer gates only bite where the
# runtime exists.
mif_require_sanitizer() {
  mif_tmpdir _mif_probe "${1}_probe"
  printf 'int main(){return 0;}\n' > "$_mif_probe/probe.cpp"
  if ! c++ -fsanitize="$2" "$_mif_probe/probe.cpp" -o "$_mif_probe/probe" \
      > /dev/null 2>&1; then
    echo "$1: SKIP (toolchain cannot link -fsanitize=$2)"
    exit 0
  fi
}

# Configure <build> from <src> with -DMIF_SANITIZE=<sanitizers>, build the
# listed test targets and run exactly those via ctest.  Sanitizer runtime
# options (ASAN_OPTIONS & co.) should be exported by the caller beforehand.
mif_sanitized_ctest() {
  _mif_name="$1"
  _mif_src="$2"
  _mif_build="$3"
  _mif_san="$4"
  shift 4

  cmake -B "$_mif_build" -S "$_mif_src" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DMIF_SANITIZE="$_mif_san" > /dev/null

  _mif_jobs="$(nproc 2>/dev/null || echo 4)"
  cmake --build "$_mif_build" -j "$_mif_jobs" --target "$@" > /dev/null

  _mif_regex="$(printf '%s|' "$@")"
  _mif_regex="${_mif_regex%|}"
  ctest --test-dir "$_mif_build" -R "^($_mif_regex)$" --output-on-failure \
        -j "$_mif_jobs"

  echo "$_mif_name: OK ($* under $_mif_san)"
}
