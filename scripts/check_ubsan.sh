#!/usr/bin/env sh
# Build and run the arithmetic-heavy tier-1 tests under UndefinedBehavior-
# Sanitizer alone (no ASan shadow): catches signed overflow, bad shifts,
# misaligned access and enum abuse in the simulator's clock/geometry math
# with much less memory and runtime than the combined check_asan build.
#
# Usage: check_ubsan.sh [source-dir]
#
# Configures a side build (<source>/build-ubsan) with -DMIF_SANITIZE=
# undefined, builds the subset that leans hardest on integer/double
# arithmetic (disk geometry, extent maps, allocator properties, the
# attribution ledger's pro-rata splitting) and runs it via ctest.  Skips
# cleanly (exit 0) when the toolchain has no UBSan runtime.  Registered as a
# ctest from tests/CMakeLists.txt for sanitizer-less parent builds.
set -eu

SCRIPT_DIR="$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)"
. "$SCRIPT_DIR/lib.sh"

SRC="${1:-$(CDPATH= cd -- "$SCRIPT_DIR/.." && pwd)}"
SANITIZERS="undefined"

mif_require_sanitizer check_ubsan "$SANITIZERS"

export UBSAN_OPTIONS=halt_on_error=1
mif_sanitized_ctest check_ubsan "$SRC" "$SRC/build-ubsan" "$SANITIZERS" \
    sim_disk_test sim_scheduler_test block_extent_map_test \
    alloc_property_test rpc_test qos_test attrib_test span_test \
    redundancy_test
