#!/usr/bin/env sh
# Build and run the RPC/concurrency-sensitive tier-1 tests under
# AddressSanitizer + UBSan.
#
# Usage: check_asan.sh [source-dir]
#
# Configures a side build (<source>/build-asan) with -DMIF_SANITIZE=
# address,undefined, builds the test subset that exercises the transport
# stack, threading and fault paths, and runs it via ctest.  Skips cleanly
# (exit 0) when the toolchain has no sanitizer runtime, so plain CI
# environments are not broken.  Registered as a ctest from
# tests/CMakeLists.txt for sanitizer-less parent builds.
set -eu

SRC="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"
BUILD="$SRC/build-asan"
SANITIZERS="address,undefined"
TESTS="rpc_test concurrency_test fault_verify_test client_test mds_test"

# Probe: can this toolchain link a sanitized binary at all?
PROBE_DIR="$(mktemp -d /tmp/mif_asan_probe.XXXXXX)"
trap 'rm -rf "$PROBE_DIR"' EXIT
printf 'int main(){return 0;}\n' > "$PROBE_DIR/probe.cpp"
if ! c++ -fsanitize=$SANITIZERS "$PROBE_DIR/probe.cpp" -o "$PROBE_DIR/probe" \
    > /dev/null 2>&1; then
  echo "check_asan: SKIP (toolchain cannot link -fsanitize=$SANITIZERS)"
  exit 0
fi

cmake -B "$BUILD" -S "$SRC" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DMIF_SANITIZE="$SANITIZERS" > /dev/null

JOBS="$(nproc 2>/dev/null || echo 4)"
# shellcheck disable=SC2086  # word-splitting of $TESTS is intended
cmake --build "$BUILD" -j "$JOBS" --target $TESTS > /dev/null

TEST_REGEX="$(echo "$TESTS" | tr ' ' '|')"
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$BUILD" -R "^($TEST_REGEX)$" --output-on-failure \
          -j "$JOBS"

echo "check_asan: OK ($TESTS under $SANITIZERS)"
