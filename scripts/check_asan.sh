#!/usr/bin/env sh
# Build and run the RPC/concurrency-sensitive tier-1 tests under
# AddressSanitizer + UBSan.
#
# Usage: check_asan.sh [source-dir]
#
# Configures a side build (<source>/build-asan) with -DMIF_SANITIZE=
# address,undefined, builds the test subset that exercises the transport
# stack, threading and fault paths, and runs it via ctest.  Skips cleanly
# (exit 0) when the toolchain has no sanitizer runtime, so plain CI
# environments are not broken.  Registered as a ctest from
# tests/CMakeLists.txt for sanitizer-less parent builds.
set -eu

SCRIPT_DIR="$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)"
. "$SCRIPT_DIR/lib.sh"

SRC="${1:-$(CDPATH= cd -- "$SCRIPT_DIR/.." && pwd)}"
SANITIZERS="address,undefined"

mif_require_sanitizer check_asan "$SANITIZERS"

export ASAN_OPTIONS=detect_leaks=1
export UBSAN_OPTIONS=halt_on_error=1
mif_sanitized_ctest check_asan "$SRC" "$SRC/build-asan" "$SANITIZERS" \
    rpc_test concurrency_test fault_verify_test client_test mds_test
