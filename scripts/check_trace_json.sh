#!/usr/bin/env sh
# CI check for the bench harness's --trace Chrome-trace/Perfetto dumps.
#
# Usage: check_trace_json.sh <path-to-fig6a_stream_count>
#
# Runs the fastest figure bench in --quick mode with both --trace and --json,
# then validates the span dump: well-formed Chrome trace events (ph/ts/dur),
# sane timestamps, phase coverage across client/mds/osd/disk, the slow-request
# log, and the span quantiles in the metrics registry.  Registered as a ctest
# (see bench/CMakeLists.txt).
set -eu

BENCH="${1:?usage: check_trace_json.sh <fig6a_stream_count binary>}"
TRACE="$(mktemp /tmp/mif_trace_json.XXXXXX)"
METRICS="$(mktemp /tmp/mif_trace_metrics.XXXXXX)"
trap 'rm -f "$TRACE" "$METRICS"' EXIT

"$BENCH" --quick --trace "$TRACE" --json "$METRICS" > /dev/null

python3 - "$TRACE" "$METRICS" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_trace_json: FAIL: {msg}")

events = doc.get("traceEvents")
require(isinstance(events, list) and events, "traceEvents missing or empty")

spans = [e for e in events if e.get("ph") == "X"]
require(spans, "no complete ('X') span events")
for e in spans:
    for key in ("name", "cat", "ts", "dur", "pid", "tid"):
        require(key in e, f"span event missing '{key}': {e}")
    require(e["ts"] >= 0, f"negative timestamp: {e}")
    require(e["dur"] >= 0, f"negative duration: {e}")
    require(e["pid"] in (1, 2), f"unknown pid (host=1, sim=2): {e}")
    args = e.get("args", {})
    require("trace_id" in args and "span_id" in args,
            f"span event missing identity args: {e}")

# Phase coverage: every layer of the stack shows up, ≥ 6 distinct phases.
names = {e["name"] for e in spans}
require(len(names) >= 6, f"expected >= 6 distinct phases, got {sorted(names)}")
for layer in ("client.", "mds.", "osd.", "disk."):
    require(any(n.startswith(layer) for n in names),
            f"no '{layer}*' phase in trace ({sorted(names)})")

# Parent/child timestamps are causally sane per trace on the host clock:
# children start no earlier than their parent.
by_span = {e["args"]["span_id"]: e for e in spans if e["pid"] == 1}
checked = 0
for e in by_span.values():
    parent = by_span.get(e["args"].get("parent_id"))
    if parent is None:
        continue
    require(e["ts"] + 1e-6 >= parent["ts"],
            f"child starts before parent: {e}")
    checked += 1
require(checked > 0, "no parent/child pair found on the host clock")

# Sim-disk spans never overlap on one disk's timeline (tid = track).
by_track = {}
for e in spans:
    if e["pid"] == 2:
        by_track.setdefault(e["tid"], []).append((e["ts"], e["dur"]))
for track, ts in by_track.items():
    ts.sort()
    for (a_ts, a_dur), (b_ts, _) in zip(ts, ts[1:]):
        require(a_ts + a_dur <= b_ts + 1e-3,  # 1 ns slack for ms→µs rounding
                f"overlapping sim spans on disk track {track}")
require(by_track, "no sim-disk spans recorded")

slow = doc.get("slowTraces")
require(isinstance(slow, list) and slow, "slowTraces missing or empty")
for t in slow:
    require(t.get("spans"), f"slow trace {t.get('trace_id')} has no spans")
durs = [t["dur_us"] for t in slow]
require(durs == sorted(durs, reverse=True), "slowTraces not slowest-first")

# The metrics registry carries span quantiles for the key phases.
with open(sys.argv[2]) as f:
    metrics = json.load(f)
runs = metrics.get("runs")
require(isinstance(runs, list) and runs, "metrics report has no runs")
hist = runs[-1].get("metrics", {}).get("histograms", {})
for phase in ("span.disk.seek", "span.journal.commit", "span.client.write"):
    require(phase in hist, f"histogram '{phase}' missing from metrics")
    for q in ("p50", "p95", "p99"):
        require(q in hist[phase], f"'{phase}' missing quantile '{q}'")

print(f"check_trace_json: OK ({len(spans)} spans, {len(names)} phases, "
      f"{len(slow)} slow traces)")
EOF
