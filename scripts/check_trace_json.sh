#!/usr/bin/env sh
# CI check for the bench harness's --trace Chrome-trace/Perfetto dumps.
#
# Usage: check_trace_json.sh <path-to-fig6a_stream_count> [fig7_macro]
#
# Runs the fastest figure bench in --quick mode with both --trace and --json,
# then validates the span dump: well-formed Chrome trace events (ph/ts/dur),
# sane timestamps, phase coverage across client/mds/osd/disk, the slow-request
# log, and the span quantiles in the metrics registry.
#
# When a fig7_macro binary is also passed, reruns it with --timeseries and
# validates the flight-recorder counter tracks merged into the trace: named
# process metas on pid >= 3, ph "C" counter events with numeric values on a
# non-decreasing per-series time axis, the frag.extent_count track, and the
# workloads' epoch instants.  Registered as a ctest (see bench/CMakeLists.txt).
set -eu

SCRIPT_DIR="$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)"
. "$SCRIPT_DIR/lib.sh"

BENCH="${1:?usage: check_trace_json.sh <fig6a_stream_count binary> [fig7_macro]}"
FIG7="${2:-}"
mif_tmpfile TRACE trace_json
mif_tmpfile METRICS trace_metrics

"$BENCH" --quick --trace "$TRACE" --json "$METRICS" > /dev/null

python3 - "$TRACE" "$METRICS" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_trace_json: FAIL: {msg}")

events = doc.get("traceEvents")
require(isinstance(events, list) and events, "traceEvents missing or empty")

spans = [e for e in events if e.get("ph") == "X"]
require(spans, "no complete ('X') span events")
for e in spans:
    for key in ("name", "cat", "ts", "dur", "pid", "tid"):
        require(key in e, f"span event missing '{key}': {e}")
    require(e["ts"] >= 0, f"negative timestamp: {e}")
    require(e["dur"] >= 0, f"negative duration: {e}")
    require(e["pid"] in (1, 2), f"unknown pid (host=1, sim=2): {e}")
    args = e.get("args", {})
    require("trace_id" in args and "span_id" in args,
            f"span event missing identity args: {e}")

# Phase coverage: every layer of the stack shows up, ≥ 6 distinct phases.
names = {e["name"] for e in spans}
require(len(names) >= 6, f"expected >= 6 distinct phases, got {sorted(names)}")
for layer in ("client.", "mds.", "osd.", "disk."):
    require(any(n.startswith(layer) for n in names),
            f"no '{layer}*' phase in trace ({sorted(names)})")

# Parent/child timestamps are causally sane per trace on the host clock:
# children start no earlier than their parent.
by_span = {e["args"]["span_id"]: e for e in spans if e["pid"] == 1}
checked = 0
for e in by_span.values():
    parent = by_span.get(e["args"].get("parent_id"))
    if parent is None:
        continue
    require(e["ts"] + 1e-6 >= parent["ts"],
            f"child starts before parent: {e}")
    checked += 1
require(checked > 0, "no parent/child pair found on the host clock")

# Sim-disk spans never overlap on one disk's timeline (tid = track).
by_track = {}
for e in spans:
    if e["pid"] == 2:
        by_track.setdefault(e["tid"], []).append((e["ts"], e["dur"]))
for track, ts in by_track.items():
    ts.sort()
    for (a_ts, a_dur), (b_ts, _) in zip(ts, ts[1:]):
        require(a_ts + a_dur <= b_ts + 1e-3,  # 1 ns slack for ms→µs rounding
                f"overlapping sim spans on disk track {track}")
require(by_track, "no sim-disk spans recorded")

slow = doc.get("slowTraces")
require(isinstance(slow, list) and slow, "slowTraces missing or empty")
for t in slow:
    require(t.get("spans"), f"slow trace {t.get('trace_id')} has no spans")
durs = [t["dur_us"] for t in slow]
require(durs == sorted(durs, reverse=True), "slowTraces not slowest-first")

# The metrics registry carries span quantiles for the key phases.
with open(sys.argv[2]) as f:
    metrics = json.load(f)
runs = metrics.get("runs")
require(isinstance(runs, list) and runs, "metrics report has no runs")
hist = runs[-1].get("metrics", {}).get("histograms", {})
for phase in ("span.disk.seek", "span.journal.commit", "span.client.write"):
    require(phase in hist, f"histogram '{phase}' missing from metrics")
    for q in ("p50", "p95", "p99", "p999"):
        require(q in hist[phase], f"'{phase}' missing quantile '{q}'")

print(f"check_trace_json: OK ({len(spans)} spans, {len(names)} phases, "
      f"{len(slow)} slow traces)")
EOF

# ---- flight-recorder counter tracks (fig7_macro --timeseries --trace) ------
[ -n "$FIG7" ] || exit 0
"$FIG7" --quick --trace "$TRACE" --timeseries --json "$METRICS" > /dev/null

python3 - "$TRACE" "$METRICS" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def require(cond, msg):
    if not cond:
        sys.exit(f"check_trace_json: FAIL: {msg}")

events = doc.get("traceEvents", [])
require(events, "traceEvents missing or empty")

# Spans still present and still confined to the host/sim pids.
require(any(e.get("ph") == "X" for e in events), "no span events in trace")
for e in events:
    if e.get("ph") == "X":
        require(e["pid"] in (1, 2), f"span on a timeline pid: {e}")

counters = [e for e in events if e.get("ph") == "C"]
require(counters, "no counter ('C') events — timelines not merged")
series = {}
for e in counters:
    for key in ("name", "cat", "ts", "pid", "tid"):
        require(key in e, f"counter event missing '{key}': {e}")
    require(e["pid"] >= 3, f"counter on a span pid: {e}")
    require(e["ts"] >= 0, f"negative counter timestamp: {e}")
    value = e.get("args", {}).get("value")
    require(isinstance(value, (int, float)), f"counter value not numeric: {e}")
    series.setdefault((e["pid"], e["name"]), []).append(e["ts"])
for (pid, name), ts in series.items():
    require(ts == sorted(ts),
            f"counter '{name}' (pid {pid}) timestamps not non-decreasing")
require(any(name == "frag.extent_count" for _, name in series),
        "no frag.extent_count counter track")

# Every timeline pid is a named Perfetto process; epochs land as instants.
meta_pids = {e["pid"] for e in events
             if e.get("ph") == "M" and e.get("name") == "process_name"}
counter_pids = {pid for pid, _ in series}
require(counter_pids <= meta_pids,
        f"unnamed timeline pids: {sorted(counter_pids - meta_pids)}")
instants = [e for e in events if e.get("ph") == "i"]
require(instants, "no epoch instant ('i') events")
require(any(e.get("name") == "end" for e in instants),
        "no 'end' epoch instant")

# The JSON report carries the matching timeseries sections.
with open(sys.argv[2]) as f:
    metrics = json.load(f)
with_ts = [r for r in metrics.get("runs", []) if "timeseries" in r]
require(with_ts, "fig7 --timeseries report has no timeseries runs")
for run in with_ts:
    times = run["timeseries"].get("times_ms", [])
    require(times, f"run '{run.get('name')}' has an empty time axis")
    for a, b in zip(times, times[1:]):
        require(a < b, f"run '{run.get('name')}' time axis not strictly "
                "increasing")

print(f"check_trace_json: OK (fig7 timeseries: {len(counters)} counter "
      f"events across {len(series)} tracks on {len(counter_pids)} timelines, "
      f"{len(instants)} epoch instants, {len(with_ts)} report runs)")
EOF
