// Storage target (OST / IO server): one data disk behind a merging
// scheduler, a PAG-partitioned free-space manager, and a pluggable file
// allocator — the place where MiF's on-demand preallocation lives ("in some
// parallel file systems, allocator is located in their IO servers", §I).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>

#include "alloc/allocator.hpp"
#include "sim/disk.hpp"
#include "sim/io_scheduler.hpp"

namespace mif::obs {
class MetricsRegistry;
class Histo;
class SpanCollector;
}

namespace mif::osd {

struct TargetConfig {
  sim::DiskGeometry geometry{};
  u32 alloc_groups{8};
  alloc::AllocatorMode allocator{alloc::AllocatorMode::kReservation};
  alloc::AllocatorTuning tuning{};
  /// Bounded read queue (block-layer nr_requests scale).
  std::size_t scheduler_queue{256};
  /// Write-back depth: the OSS page cache keeps ~100 MB of dirty data per
  /// spindle and flushes it in long per-region runs, so interleaved write
  /// streams amortise positioning far better than readers can.
  std::size_t writeback_queue{4096};
};

class StorageTarget {
 public:
  explicit StorageTarget(TargetConfig cfg = {});

  /// Extend-and-write [logical, logical+count) of the target-local subfile
  /// of `inode` on behalf of `stream`.  Allocates through the configured
  /// strategy and submits the data writes.
  Status write(InodeNo inode, StreamId stream, FileBlock logical, u64 count);

  /// Read [logical, logical+count); unmapped holes read nothing (zeroes).
  Status read(InodeNo inode, FileBlock logical, u64 count);

  /// Batched write: the runs of one rpc::BlockWriteRequest envelope, applied
  /// in order.  One fault-injection check covers the whole envelope (a wire
  /// message fails as a unit); each run still takes its own allocator
  /// decision, so placement is identical to issuing the runs one by one.
  Status write_runs(InodeNo inode, StreamId stream,
                    std::span<const BlockRun> runs);

  /// Batched read of several runs (one rpc::BlockReadRequest envelope).
  Status read_runs(InodeNo inode, std::span<const BlockRun> runs);

  /// fallocate the local subfile to `total_blocks`.
  Status preallocate(InodeNo inode, u64 total_blocks);

  /// Release the allocator's temporary reservations for this file.
  void close_file(InodeNo inode);

  /// Free all blocks of the file.
  void delete_file(InodeNo inode);

  /// Extents currently mapping the local subfile.
  u64 extent_count(InodeNo inode) const;
  /// All extents (diagnostics / layout shipping).
  std::vector<block::Extent> extents(InodeNo inode) const;

  /// Visit every local subfile inode (sorted — callers that rebuild from
  /// this enumeration must be deterministic).  The repair service's source
  /// of truth for what survives on this target.
  void for_each_file(const std::function<void(InodeNo)>& fn) const;

  /// Disk replacement after a kill-OSD fault: every subfile mapping and the
  /// whole free-space/allocator state are discarded (the new spindle is
  /// freshly formatted), while the disk's simulated clock and stats stay
  /// monotone — the replacement arrives at the time the cluster has
  /// reached, it does not rewind history.  Subfile entries survive as
  /// zero-extent shells rather than being erased, so a FileState reference
  /// held across the swap stays valid.  Must run at a safe point with no
  /// writer concurrently inside the allocator (the kill path fires it from
  /// the transport caller's thread).
  void reset_contents();

  // --- fault injection ------------------------------------------------------
  /// After `after_ops` further data operations, the next `count` operations
  /// fail with kIo before touching allocator or disk.  Models a transient
  /// device/path fault; callers must see the error and the target must stay
  /// consistent.
  void inject_fault(u64 after_ops, u64 count);
  u64 injected_failures() const { return failures_seen_; }

  // --- integrity verification ----------------------------------------------
  struct VerifyReport {
    u64 files{0};
    u64 extents{0};
    u64 mapped_blocks{0};
    u64 reserved_blocks{0};
    u64 used_blocks{0};
    bool overlap_free{true};
    bool space_accounted{true};
    bool ok() const { return overlap_free && space_accounted; }
  };
  /// fsck-style pass: no physical block owned twice across all files, and
  /// every used block is owned by a file mapping or an allocator
  /// reservation.
  VerifyReport verify() const;

  // --- observability -------------------------------------------------------
  /// Attach a trace sink to the allocator state machine (nullptr detaches).
  void set_trace(obs::TraceBuffer* trace) {
    trace_ = trace;
    alloc_->set_trace(trace);
  }

  /// Attach a span collector: allocator decisions record `alloc.decide` and
  /// the data disk records `disk.*` on span track `track` (nullptr
  /// detaches).  The scheduler's aggregated `io.queue_wait` spans get their
  /// own lane (track + 64) so their cumulative wait clock never interleaves
  /// with the disk's real timeline on one viewer lane.
  void set_spans(obs::SpanCollector* spans, u32 track) {
    spans_ = spans;
    disk_.set_spans(spans, track);
    io_.set_spans(spans, track + 64);
  }

  /// Attach cost attribution: the scheduler stamps submitters and splits
  /// merged dispatches back to them (see sim::IoScheduler::set_attribution).
  void set_attribution(obs::Attribution* attrib) {
    io_.set_attribution(attrib);
  }

  /// Publish this target's counters under `<prefix>.…`: disk, scheduler,
  /// allocator, free-space gauges and the per-file extent-count histogram.
  void export_metrics(obs::MetricsRegistry& reg,
                      std::string_view prefix) const;

  /// Merge every local subfile's extent count into a (cluster-level)
  /// histogram — the Table I "Seg Counts" distribution.
  void add_extent_counts(obs::Histo& h) const;

  // --- timeline gauges ------------------------------------------------------
  // Instantaneous views for the flight recorder (obs/timeline.hpp).  Each
  // takes the lock guarding the state it reads, so they are safe to call
  // from a sampling thread while data-path threads run.
  /// Requests currently queued in the elevator (pre-merge).
  std::size_t queue_depth() const;
  /// This target's simulated clock (ms since mount).
  double sim_now_ms() const;
  /// Fraction of simulated time the disk spent positioning/transferring.
  double busy_fraction() const;
  /// Current head position (absolute block).
  u64 head_block() const;
  /// Visit every local subfile's extent count (fragmentation-lens source;
  /// same locking as add_extent_counts).
  void for_each_extent_count(const std::function<void(u64)>& fn) const;

  void drain() {
    std::lock_guard lock(io_mu_);
    io_.drain();
  }
  double elapsed_ms() const { return disk_.now_ms(); }

  sim::Disk& disk() { return disk_; }
  const sim::Disk& disk() const { return disk_; }
  sim::IoScheduler& io() { return io_; }
  block::FreeSpace& space() { return *space_; }
  alloc::FileAllocator& allocator() { return *alloc_; }
  const alloc::FileAllocator& allocator() const { return *alloc_; }

 private:
  struct FileState {
    block::ExtentMap map;
    mutable std::mutex mu;
  };
  FileState& file(InodeNo inode);

  TargetConfig cfg_;
  obs::SpanCollector* spans_{nullptr};
  obs::TraceBuffer* trace_{nullptr};
  sim::Disk disk_;
  /// The scheduler (and the disk behind it) is single-threaded state; all
  /// submissions and drains serialise here.
  mutable std::mutex io_mu_;
  sim::IoScheduler io_;
  std::unique_ptr<block::FreeSpace> space_;
  std::unique_ptr<alloc::FileAllocator> alloc_;
  mutable std::mutex files_mu_;
  std::unordered_map<u64, std::unique_ptr<FileState>> files_;

  /// Returns true if this operation should fail (fault injection).
  bool fault_fires();
  mutable std::mutex fault_mu_;
  u64 fault_after_{0};
  u64 fault_count_{0};
  u64 failures_seen_{0};
};

}  // namespace mif::osd
