// File striping across storage targets.
//
// Redbud stripes file data over shared disks ("we configured all data to be
// striped on five disks", §V-C) in fixed stripe units, round-robin.  This
// header maps a file-global logical block range onto per-target slices and
// back.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace mif::osd {

struct StripeLayout {
  u32 width{1};            // number of targets
  u64 unit_blocks{16};     // 64 KiB stripe unit
};

struct StripeSlice {
  u32 target{0};
  FileBlock local_start{};  // logical block within the target-local subfile
  u64 count{0};
  FileBlock global_start{}; // where this slice begins in the file
};

/// Decompose the file-global range [start, start+count) into per-target
/// slices, ordered by global offset.
std::vector<StripeSlice> slices_for(const StripeLayout& layout,
                                    FileBlock start, u64 count);

/// Target-local logical block for a file-global block.
FileBlock to_local(const StripeLayout& layout, FileBlock global);

/// Owning target of a file-global block.
u32 target_of(const StripeLayout& layout, FileBlock global);

/// Owning target of redundancy copy `copy` (1-based: copy 0 is the primary
/// itself) of a stripe unit whose primary lives on `primary_target`:
/// copies rotate right, so each target backs its left neighbours and a
/// single-target loss always leaves `copy` surviving replicas elsewhere.
/// The copies keep the primary's local block addresses — see
/// redundancy/redundancy.hpp for why that makes degraded routing a pure
/// (target, ino) swap.
u32 replica_target(const StripeLayout& layout, u32 primary_target, u32 copy);

}  // namespace mif::osd
