#include "osd/storage_target.hpp"

#include <algorithm>

#include "obs/export.hpp"
#include "obs/span.hpp"

namespace mif::osd {

StorageTarget::StorageTarget(TargetConfig cfg)
    : cfg_(cfg),
      disk_(cfg.geometry),
      io_(disk_, cfg.scheduler_queue, cfg.writeback_queue) {
  space_ = std::make_unique<block::FreeSpace>(
      DiskBlock{0}, cfg_.geometry.capacity_blocks, cfg_.alloc_groups);
  alloc_ = alloc::make_allocator(cfg_.allocator, *space_, cfg_.tuning);
}

StorageTarget::FileState& StorageTarget::file(InodeNo inode) {
  std::lock_guard lock(files_mu_);
  auto& slot = files_[inode.v];
  if (!slot) slot = std::make_unique<FileState>();
  return *slot;
}

void StorageTarget::inject_fault(u64 after_ops, u64 count) {
  std::lock_guard lock(fault_mu_);
  fault_after_ = after_ops;
  fault_count_ = count;
}

bool StorageTarget::fault_fires() {
  std::lock_guard lock(fault_mu_);
  if (fault_count_ == 0) return false;
  if (fault_after_ > 0) {
    --fault_after_;
    return false;
  }
  --fault_count_;
  ++failures_seen_;
  return true;
}

StorageTarget::VerifyReport StorageTarget::verify() const {
  VerifyReport report;
  std::vector<std::pair<u64, u64>> phys;
  {
    std::lock_guard lock(files_mu_);
    report.files = files_.size();
    for (const auto& [ino, state] : files_) {
      std::lock_guard flock(state->mu);
      for (const block::Extent& e : state->map.extents()) {
        phys.emplace_back(e.disk_off.v, e.length);
        ++report.extents;
        report.mapped_blocks += e.length;
      }
    }
  }
  std::sort(phys.begin(), phys.end());
  for (std::size_t i = 1; i < phys.size(); ++i) {
    if (phys[i].first < phys[i - 1].first + phys[i - 1].second) {
      report.overlap_free = false;
      break;
    }
  }
  report.reserved_blocks = alloc_->stats().reserved_blocks;
  report.used_blocks =
      cfg_.geometry.capacity_blocks - space_->free_blocks();
  report.space_accounted =
      report.used_blocks == report.mapped_blocks + report.reserved_blocks;
  return report;
}

void StorageTarget::export_metrics(obs::MetricsRegistry& reg,
                                   std::string_view prefix) const {
  obs::publish(reg, obs::join_key(prefix, "disk"), disk_.stats());
  reg.stat(obs::join_key(prefix, "disk.position_ms"))
      .merge_from(disk_.position_times_ms());
  obs::publish(reg, obs::join_key(prefix, "io"), io_.stats());
  obs::publish(reg, obs::join_key(prefix, "alloc"), alloc_->stats());
  reg.gauge(obs::join_key(prefix, "space.free_blocks"))
      .set(static_cast<double>(space_->free_blocks()));
  reg.gauge(obs::join_key(prefix, "space.total_blocks"))
      .set(static_cast<double>(space_->total_blocks()));
  reg.gauge(obs::join_key(prefix, "space.utilisation"))
      .set(space_->utilisation());
  add_extent_counts(reg.histogram(obs::join_key(prefix, "extents_per_file")));
}

void StorageTarget::add_extent_counts(obs::Histo& h) const {
  std::lock_guard lock(files_mu_);
  for (const auto& [ino, state] : files_) {
    std::lock_guard flock(state->mu);
    h.add(state->map.extent_count());
  }
}

std::size_t StorageTarget::queue_depth() const {
  std::lock_guard lock(io_mu_);
  return io_.queue_depth();
}

double StorageTarget::sim_now_ms() const {
  std::lock_guard lock(io_mu_);
  return disk_.now_ms();
}

double StorageTarget::busy_fraction() const {
  std::lock_guard lock(io_mu_);
  const double now = disk_.now_ms();
  return now > 0.0 ? disk_.stats().busy_ms() / now : 0.0;
}

u64 StorageTarget::head_block() const {
  std::lock_guard lock(io_mu_);
  return disk_.head().v;
}

void StorageTarget::for_each_extent_count(
    const std::function<void(u64)>& fn) const {
  std::lock_guard lock(files_mu_);
  for (const auto& [ino, state] : files_) {
    std::lock_guard flock(state->mu);
    fn(state->map.extent_count());
  }
}

Status StorageTarget::write(InodeNo inode, StreamId stream, FileBlock logical,
                            u64 count) {
  const BlockRun run{logical, count};
  return write_runs(inode, stream, std::span<const BlockRun>(&run, 1));
}

Status StorageTarget::write_runs(InodeNo inode, StreamId stream,
                                 std::span<const BlockRun> runs) {
  if (fault_fires()) return Errc::kIo;
  FileState& f = file(inode);
  std::lock_guard lock(f.mu);
  for (const BlockRun& run : runs) {
    alloc::AllocContext ctx{inode, stream, run.start, run.count};
    {
      obs::ScopedSpan span(spans_, "alloc.decide", inode.v, run.count);
      if (Status s = alloc_->extend(ctx, f.map); !s) return s;
    }
    // Submit the data writes along the physical runs the placement produced
    // — this is where fragmentation turns into positioning time.
    std::lock_guard io_lock(io_mu_);
    for (const block::BlockRange& r : f.map.map_range(run.start, run.count)) {
      io_.submit({sim::IoKind::kWrite, r.start, r.length});
    }
  }
  return {};
}

Status StorageTarget::read(InodeNo inode, FileBlock logical, u64 count) {
  const BlockRun run{logical, count};
  return read_runs(inode, std::span<const BlockRun>(&run, 1));
}

Status StorageTarget::read_runs(InodeNo inode,
                                std::span<const BlockRun> runs) {
  if (fault_fires()) return Errc::kIo;
  FileState& f = file(inode);
  std::lock_guard lock(f.mu);
  std::lock_guard io_lock(io_mu_);
  for (const BlockRun& run : runs) {
    for (const block::BlockRange& r : f.map.map_range(run.start, run.count)) {
      io_.submit({sim::IoKind::kRead, r.start, r.length});
    }
  }
  return {};
}

Status StorageTarget::preallocate(InodeNo inode, u64 total_blocks) {
  FileState& f = file(inode);
  std::lock_guard lock(f.mu);
  return alloc_->preallocate(inode, f.map, total_blocks);
}

void StorageTarget::close_file(InodeNo inode) {
  FileState& f = file(inode);
  std::lock_guard lock(f.mu);
  alloc_->close_file(inode, f.map);
}

void StorageTarget::delete_file(InodeNo inode) {
  std::unique_ptr<FileState> victim;
  {
    std::lock_guard lock(files_mu_);
    auto it = files_.find(inode.v);
    if (it == files_.end()) return;
    victim = std::move(it->second);
    files_.erase(it);
  }
  std::lock_guard lock(victim->mu);
  alloc_->delete_file(inode, victim->map);
}

u64 StorageTarget::extent_count(InodeNo inode) const {
  std::lock_guard lock(files_mu_);
  auto it = files_.find(inode.v);
  if (it == files_.end()) return 0;
  std::lock_guard flock(it->second->mu);
  return it->second->map.extent_count();
}

std::vector<block::Extent> StorageTarget::extents(InodeNo inode) const {
  std::lock_guard lock(files_mu_);
  auto it = files_.find(inode.v);
  if (it == files_.end()) return {};
  std::lock_guard flock(it->second->mu);
  return it->second->map.extents();
}

void StorageTarget::for_each_file(
    const std::function<void(InodeNo)>& fn) const {
  std::vector<u64> inos;
  {
    std::lock_guard lock(files_mu_);
    inos.reserve(files_.size());
    for (const auto& [ino, state] : files_) inos.push_back(ino);
  }
  std::sort(inos.begin(), inos.end());
  for (u64 ino : inos) fn(InodeNo{ino});
}

void StorageTarget::reset_contents() {
  {
    std::lock_guard lock(io_mu_);
    io_.drain();
  }
  std::lock_guard lock(files_mu_);
  for (auto& [ino, state] : files_) {
    std::lock_guard flock(state->mu);
    state->map = block::ExtentMap{};
  }
  // The allocator must die before the free space it references: its
  // destructor releases outstanding reservations back into that space.
  alloc_.reset();
  space_ = std::make_unique<block::FreeSpace>(
      DiskBlock{0}, cfg_.geometry.capacity_blocks, cfg_.alloc_groups);
  alloc_ = alloc::make_allocator(cfg_.allocator, *space_, cfg_.tuning);
  alloc_->set_trace(trace_);
}

}  // namespace mif::osd
