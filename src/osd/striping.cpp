#include "osd/striping.hpp"

#include <algorithm>
#include <cassert>

namespace mif::osd {

u32 target_of(const StripeLayout& layout, FileBlock global) {
  return static_cast<u32>((global.v / layout.unit_blocks) % layout.width);
}

u32 replica_target(const StripeLayout& layout, u32 primary_target, u32 copy) {
  assert(copy < layout.width);
  return (primary_target + copy) % layout.width;
}

FileBlock to_local(const StripeLayout& layout, FileBlock global) {
  const u64 stripe = global.v / layout.unit_blocks;      // global stripe no.
  const u64 row = stripe / layout.width;                 // stripe row
  const u64 within = global.v % layout.unit_blocks;
  return FileBlock{row * layout.unit_blocks + within};
}

std::vector<StripeSlice> slices_for(const StripeLayout& layout,
                                    FileBlock start, u64 count) {
  assert(layout.width >= 1 && layout.unit_blocks >= 1);
  std::vector<StripeSlice> out;
  u64 pos = start.v;
  const u64 end = start.v + count;
  while (pos < end) {
    const u64 unit_end = (pos / layout.unit_blocks + 1) * layout.unit_blocks;
    const u64 take = std::min(end, unit_end) - pos;
    const FileBlock g{pos};
    StripeSlice s{target_of(layout, g), to_local(layout, g), take, g};
    // Merge with the previous slice when it continues the same target-local
    // run (width==1, or count smaller than a unit).
    if (!out.empty() && out.back().target == s.target &&
        out.back().local_start.v + out.back().count == s.local_start.v) {
      out.back().count += take;
    } else {
      out.push_back(s);
    }
    pos += take;
  }
  return out;
}

}  // namespace mif::osd
