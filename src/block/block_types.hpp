// On-disk layout primitives.
//
// Redbud is a block-based PFS whose "basic element of file layout is extent,
// identified by a tuple of [file offset, group offset, length, flags]"
// (§V-A).  Extent is exactly that tuple; ExtentMap is the per-file logical →
// physical indirection whose fragmentation the whole paper is about (Table I
// counts these entries).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "util/types.hpp"

namespace mif::block {

enum ExtentFlags : u32 {
  kExtentNone = 0,
  /// Persistently preallocated but not yet written (fallocate-style or the
  /// unwritten tail of an on-demand current window).
  kExtentUnwritten = 1u << 0,
};

struct Extent {
  FileBlock file_off{};   // first logical block covered
  DiskBlock disk_off{};   // first physical block
  u64 length{0};          // blocks
  u32 flags{kExtentNone};

  u64 file_end() const { return file_off.v + length; }
  u64 disk_end() const { return disk_off.v + length; }
  bool covers(FileBlock b) const {
    return b.v >= file_off.v && b.v < file_end();
  }
  /// Physical block backing logical block `b`; caller must check covers().
  DiskBlock map(FileBlock b) const {
    return DiskBlock{disk_off.v + (b.v - file_off.v)};
  }
  bool operator==(const Extent&) const = default;
};

/// A run of physical blocks (no logical position attached).
struct BlockRange {
  DiskBlock start{};
  u64 length{0};
  u64 end() const { return start.v + length; }
  bool contains(DiskBlock b) const {
    return b.v >= start.v && b.v < end();
  }
  bool operator==(const BlockRange&) const = default;
};

/// Sorted, merging extent map for one file.
///
/// Adjacent extents that are contiguous in BOTH address spaces (and share
/// flags) coalesce on insert — this is what makes extent counts a direct
/// fragmentation metric: a perfectly placed file has one extent per
/// contiguous physical run, a badly interleaved one has an extent per write.
class ExtentMap {
 public:
  /// Insert a mapping.  The caller guarantees the logical range is not
  /// already mapped (files here are extend-only or hole-filling, never
  /// remapped in place — the paper notes mappings don't change before
  /// deletion).
  void insert(Extent e);

  /// Find the extent covering logical block `b`.
  std::optional<Extent> lookup(FileBlock b) const;

  /// Translate a logical run [b, b+len) into physical runs.  Holes and
  /// unmapped tails are skipped (a real FS would return zeros).
  std::vector<BlockRange> map_range(FileBlock b, u64 len) const;

  /// Clear the unwritten flag over [b, b+len), splitting extents as needed.
  void mark_written(FileBlock b, u64 len);

  std::size_t extent_count() const { return extents_.size(); }
  const std::vector<Extent>& extents() const { return extents_; }
  bool empty() const { return extents_.empty(); }

  /// One past the last mapped logical block (file size in blocks when there
  /// are no holes at the end).
  u64 logical_end() const;

  /// Total mapped blocks (excludes holes).
  u64 mapped_blocks() const;

 private:
  std::vector<Extent> extents_;  // sorted by file_off
};

}  // namespace mif::block
