// Write-ahead metadata journal.
//
// Fig. 8's setup: "to maintain the metadata integrity, journal was first
// sequentially done on the disk; the reduction of disk access counts mainly
// comes from the checkpoint operations."  So the journal itself writes
// sequentially into a reserved area (cheap for every mode), while
// checkpointing writes each logged block back to its home location — that
// is where embedded directories win, because their home locations are
// contiguous.
#pragma once

#include <vector>

#include "block/block_types.hpp"
#include "obs/trace.hpp"
#include "sim/io_scheduler.hpp"
#include "util/types.hpp"

namespace mif::obs {
class SpanCollector;
}

namespace mif::block {

struct JournalStats {
  u64 transactions{0};
  u64 journal_blocks{0};     // sequential writes into the journal area
  u64 checkpoint_blocks{0};  // home-location writes at checkpoint
  u64 checkpoints{0};
};

class Journal {
 public:
  /// Journal area occupies [area_start, area_start + area_blocks) on the
  /// disk behind `io`.  `checkpoint_interval` = transactions between
  /// checkpoints.  `commit_batch` = transactions folded into one compound
  /// commit before the journal write is issued (jbd-style batching — even a
  /// "synchronous" ext3 merges concurrent handles into one running
  /// transaction); 1 ⇒ a journal write per operation.
  Journal(sim::IoScheduler& io, DiskBlock area_start, u64 area_blocks,
          u64 checkpoint_interval = 64, u64 commit_batch = 1);

  /// Log a transaction touching the given home-location blocks.  Records
  /// accumulate in the running compound transaction; every `commit_batch`
  /// transactions the records + a commit block are written sequentially
  /// into the journal area.  Home blocks are remembered for the next
  /// checkpoint, which runs every `checkpoint_interval` transactions.
  void log(const std::vector<BlockRange>& home_blocks);

  /// Force the running compound transaction out to the journal area.
  void commit();

  /// Force outstanding home-location writes to disk.
  void checkpoint();

  const JournalStats& stats() const { return stats_; }
  JournalStats snapshot() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Blocks the journal still owes the disk: the running compound
  /// transaction plus every logged-but-not-yet-checkpointed home block.
  /// Timeline gauge — shows commit/checkpoint sawtooth over sim time.
  u64 backlog_blocks() const {
    u64 pending = 0;
    for (const BlockRange& r : pending_) pending += r.length;
    return uncommitted_blocks_ + pending;
  }

  /// Attach a trace sink for commit/checkpoint events (nullptr disables).
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }

  /// Attach a span collector: commits and checkpoints then record
  /// `journal.commit` / `journal.checkpoint` phases (nullptr detaches).
  void set_spans(obs::SpanCollector* spans) { spans_ = spans; }

 private:
  sim::IoScheduler& io_;
  obs::TraceBuffer* trace_{nullptr};
  obs::SpanCollector* spans_{nullptr};
  DiskBlock area_start_;
  u64 area_blocks_;
  u64 checkpoint_interval_;
  u64 commit_batch_;
  u64 cursor_{0};  // next free block inside the journal area (wraps)
  u64 since_checkpoint_{0};
  u64 since_commit_{0};
  u64 uncommitted_blocks_{0};  // record blocks of the running transaction
  std::vector<BlockRange> pending_;
  JournalStats stats_;
};

}  // namespace mif::block
