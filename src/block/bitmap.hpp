// Free-space bitmap: one bit per block, with first-fit and goal-directed run
// search.  This is the lowest layer every allocator strategy sits on.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "block/block_types.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace mif::block {

class Bitmap {
 public:
  explicit Bitmap(u64 blocks);

  u64 size() const { return size_; }
  u64 free_blocks() const { return free_; }
  u64 used_blocks() const { return size_ - free_; }

  bool is_set(u64 bit) const;

  /// Marks [start, start+len) used.  All bits must currently be free.
  void set_range(u64 start, u64 len);

  /// Marks [start, start+len) free.  All bits must currently be used.
  void clear_range(u64 start, u64 len);

  /// True iff every bit in [start, start+len) is free.
  bool range_free(u64 start, u64 len) const;

  /// Longest free run starting exactly at `start`, capped at `max_len`.
  u64 free_run_at(u64 start, u64 max_len) const;

  /// First free run of exactly `len` blocks at or after `goal`, wrapping
  /// around once.  Returns the start bit, or nullopt if no such run exists.
  std::optional<u64> find_run(u64 goal, u64 len) const;

  /// Best-effort variant: the first free run at or after `goal` of length in
  /// [min_len, want_len]; prefers the first run that reaches want_len, else
  /// returns the longest run seen (>= min_len).  This is what allocators use
  /// to degrade gracefully when the disk fills.
  std::optional<BlockRange> find_run_best(u64 goal, u64 min_len,
                                          u64 want_len) const;

  /// Append the length of every maximal free run into `h` (the free-space
  /// run-length distribution the fragmentation lens samples).  Returns the
  /// number of runs seen.
  u64 add_free_runs(Histogram& h) const;

 private:
  u64 next_free(u64 from) const;  // first free bit >= from, or size_
  u64 next_used(u64 from) const;  // first used bit >= from, or size_

  std::vector<u64> words_;
  u64 size_;
  u64 free_;
};

}  // namespace mif::block
