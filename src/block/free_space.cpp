#include "block/free_space.hpp"

#include <algorithm>
#include <cassert>

namespace mif::block {

FreeSpace::FreeSpace(DiskBlock first_block, u64 blocks, u32 groups)
    : first_block_(first_block), total_blocks_(blocks) {
  assert(groups > 0);
  group_size_ = blocks / groups;
  assert(group_size_ > 0);
  u64 base = first_block.v;
  for (u32 g = 0; g < groups; ++g) {
    const u64 len = g + 1 == groups ? blocks - g * group_size_ : group_size_;
    groups_.push_back(std::make_unique<AllocGroup>(g, DiskBlock{base}, len));
    base += len;
  }
}

AllocGroup* FreeSpace::group_of(DiskBlock b) {
  if (b.v < first_block_.v || b.v >= first_block_.v + total_blocks_)
    return nullptr;
  const u64 idx = std::min<u64>((b.v - first_block_.v) / group_size_,
                                groups_.size() - 1);
  // Last group may be oversized; walk back if needed (cannot happen with the
  // floor division above, but keep the invariant explicit).
  AllocGroup* g = groups_[idx].get();
  return g->contains(b) ? g : nullptr;
}

u64 FreeSpace::free_blocks() const {
  u64 n = 0;
  for (const auto& g : groups_) n += g->free_blocks();
  return n;
}

double FreeSpace::utilisation() const {
  return 1.0 - static_cast<double>(free_blocks()) /
                   static_cast<double>(total_blocks_);
}

Result<BlockRange> FreeSpace::allocate_exact(DiskBlock goal, u64 len) {
  AllocGroup* first = group_of(goal);
  const u32 start = first ? first->index() : 0;
  for (u32 i = 0; i < group_count(); ++i) {
    AllocGroup& g = *groups_[(start + i) % group_count()];
    if (auto r = g.allocate_exact(goal, len)) return r;
  }
  return Errc::kNoSpace;
}

Result<BlockRange> FreeSpace::allocate_best(DiskBlock goal, u64 min_len,
                                            u64 want_len) {
  AllocGroup* first = group_of(goal);
  const u32 start = first ? first->index() : 0;
  // First pass: any group that can serve the full want_len.
  for (u32 i = 0; i < group_count(); ++i) {
    AllocGroup& g = *groups_[(start + i) % group_count()];
    if (auto r = g.allocate_exact(goal, want_len)) return r;
  }
  // Second pass: best-effort shrink.
  for (u32 i = 0; i < group_count(); ++i) {
    AllocGroup& g = *groups_[(start + i) % group_count()];
    if (auto r = g.allocate_best(goal, min_len, want_len)) return r;
  }
  return Errc::kNoSpace;
}

Result<std::vector<BlockRange>> FreeSpace::allocate_scattered(DiskBlock goal,
                                                              u64 len) {
  std::vector<BlockRange> out;
  u64 remaining = len;
  DiskBlock cursor = goal;
  while (remaining > 0) {
    auto r = allocate_best(cursor, 1, remaining);
    if (!r) {
      // Roll back partial allocation so a failed call has no side effects.
      for (const BlockRange& br : out) (void)free_range(br);
      return Errc::kNoSpace;
    }
    remaining -= r->length;
    cursor = DiskBlock{r->end()};
    out.push_back(*r);
  }
  return out;
}

u64 FreeSpace::extend_in_place(DiskBlock end, u64 len) {
  AllocGroup* g = group_of(end);
  return g ? g->extend_in_place(end, len) : 0;
}

Status FreeSpace::free_range(BlockRange r) {
  // A range may legitimately straddle group boundaries if it was allocated
  // before a remount with different group counts; split it defensively.
  while (r.length > 0) {
    AllocGroup* g = group_of(r.start);
    if (!g) return Errc::kInvalid;
    const u64 in_group =
        std::min(r.length, g->base().v + g->size() - r.start.v);
    if (Status s = g->free_range(BlockRange{r.start, in_group}); !s) return s;
    r.start.v += in_group;
    r.length -= in_group;
  }
  return {};
}

}  // namespace mif::block
