// Block buffer cache (LRU, write-back).
//
// The MDS "satisfies requests from its local cache as much as possible"
// (§IV); what the paper measures is the *miss* traffic that reaches the
// disk.  This cache sits between the metadata file system and a disk's
// IoScheduler.  Payload bytes are not stored — the simulation only needs
// residency and dirtiness to decide which accesses become disk requests.
#pragma once

#include <list>
#include <unordered_map>

#include "obs/trace.hpp"
#include "sim/io_scheduler.hpp"
#include "util/types.hpp"

namespace mif::block {

struct CacheStats {
  u64 hits{0};
  u64 misses{0};
  u64 writebacks{0};
  u64 evictions{0};
  double hit_ratio() const {
    const u64 n = hits + misses;
    return n ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
  }
};

class BufferCache {
 public:
  /// `capacity_blocks == 0` disables caching entirely (every access goes to
  /// disk) — used by benches that model cold-cache synchronous metadata.
  BufferCache(sim::IoScheduler& io, u64 capacity_blocks);

  /// Read [start, start+len); issues disk reads for the non-resident subset.
  void read(DiskBlock start, u64 len);

  /// Dirty [start, start+len) in cache (allocating entries as needed).
  void write(DiskBlock start, u64 len);

  /// Write-through convenience: dirty then immediately flush that range.
  void write_sync(DiskBlock start, u64 len);

  /// Make [start, start+len) resident and CLEAN without any disk traffic.
  /// Used by journaled writers: the journal owns persistence (log +
  /// checkpoint), the cache only needs to know the blocks are up to date so
  /// subsequent reads hit.
  void install(DiskBlock start, u64 len);

  /// Flush all dirty blocks (sorted ascending so the scheduler can merge).
  void flush();

  /// Drop every entry (clean or dirty-after-flush); models memory pressure
  /// or a remount between benchmark phases.
  void invalidate_all();

  const CacheStats& stats() const { return stats_; }
  CacheStats snapshot() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  u64 resident_blocks() const { return map_.size(); }

  /// Attach a trace sink for eviction events (nullptr disables).
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }

 private:
  struct Entry {
    std::list<u64>::iterator lru_pos;
    bool dirty{false};
  };

  void touch(u64 block);
  void insert(u64 block, bool dirty);
  void evict_one();

  sim::IoScheduler& io_;
  obs::TraceBuffer* trace_{nullptr};
  u64 capacity_;
  std::list<u64> lru_;  // front = most recent
  std::unordered_map<u64, Entry> map_;
  CacheStats stats_;
};

}  // namespace mif::block
