#include "block/buffer_cache.hpp"

#include <algorithm>
#include <vector>

namespace mif::block {

BufferCache::BufferCache(sim::IoScheduler& io, u64 capacity_blocks)
    : io_(io), capacity_(capacity_blocks) {}

void BufferCache::touch(u64 block) {
  auto it = map_.find(block);
  lru_.erase(it->second.lru_pos);
  lru_.push_front(block);
  it->second.lru_pos = lru_.begin();
}

void BufferCache::insert(u64 block, bool dirty) {
  if (capacity_ == 0) return;
  while (map_.size() >= capacity_) evict_one();
  lru_.push_front(block);
  map_[block] = Entry{lru_.begin(), dirty};
}

void BufferCache::evict_one() {
  const u64 victim = lru_.back();
  auto it = map_.find(victim);
  const bool dirty = it->second.dirty;
  if (dirty) {
    io_.submit({sim::IoKind::kWrite, DiskBlock{victim}, 1});
    ++stats_.writebacks;
  }
  map_.erase(it);
  lru_.pop_back();
  ++stats_.evictions;
  if (trace_) {
    trace_->record(obs::TraceEventType::kCacheEvict, victim, dirty ? 1 : 0);
  }
}

void BufferCache::read(DiskBlock start, u64 len) {
  // Coalesce the missing sub-ranges into as few disk requests as possible.
  u64 miss_start = kNoBlock;
  for (u64 b = start.v; b < start.v + len; ++b) {
    if (auto it = map_.find(b); it != map_.end()) {
      ++stats_.hits;
      touch(b);
      if (miss_start != kNoBlock) {
        io_.submit({sim::IoKind::kRead, DiskBlock{miss_start}, b - miss_start});
        miss_start = kNoBlock;
      }
    } else {
      ++stats_.misses;
      insert(b, /*dirty=*/false);
      if (miss_start == kNoBlock) miss_start = b;
    }
  }
  if (miss_start != kNoBlock) {
    io_.submit(
        {sim::IoKind::kRead, DiskBlock{miss_start}, start.v + len - miss_start});
  }
}

void BufferCache::write(DiskBlock start, u64 len) {
  if (capacity_ == 0) {
    io_.submit({sim::IoKind::kWrite, start, len});
    ++stats_.writebacks;
    return;
  }
  for (u64 b = start.v; b < start.v + len; ++b) {
    if (auto it = map_.find(b); it != map_.end()) {
      ++stats_.hits;
      it->second.dirty = true;
      touch(b);
    } else {
      ++stats_.misses;
      insert(b, /*dirty=*/true);
    }
  }
}

void BufferCache::install(DiskBlock start, u64 len) {
  if (capacity_ == 0) return;
  for (u64 b = start.v; b < start.v + len; ++b) {
    if (auto it = map_.find(b); it != map_.end()) {
      touch(b);
    } else {
      insert(b, /*dirty=*/false);
    }
  }
}

void BufferCache::write_sync(DiskBlock start, u64 len) {
  write(start, len);
  if (capacity_ == 0) return;
  // Flush just this range.
  for (u64 b = start.v; b < start.v + len; ++b) {
    auto it = map_.find(b);
    if (it != map_.end() && it->second.dirty) it->second.dirty = false;
  }
  io_.submit({sim::IoKind::kWrite, start, len});
  ++stats_.writebacks;
}

void BufferCache::flush() {
  std::vector<u64> dirty;
  for (auto& [block, entry] : map_) {
    if (entry.dirty) {
      dirty.push_back(block);
      entry.dirty = false;
    }
  }
  std::sort(dirty.begin(), dirty.end());
  // Emit maximal contiguous runs.
  std::size_t i = 0;
  while (i < dirty.size()) {
    std::size_t j = i + 1;
    while (j < dirty.size() && dirty[j] == dirty[j - 1] + 1) ++j;
    io_.submit({sim::IoKind::kWrite, DiskBlock{dirty[i]}, j - i});
    ++stats_.writebacks;
    i = j;
  }
}

void BufferCache::invalidate_all() {
  flush();
  io_.drain();
  lru_.clear();
  map_.clear();
}

}  // namespace mif::block
