#include "block/alloc_group.hpp"

#include <algorithm>
#include <cassert>

namespace mif::block {

AllocGroup::AllocGroup(u32 index, DiskBlock base, u64 blocks)
    : index_(index), base_(base), bitmap_(blocks) {}

u64 AllocGroup::size() const { return bitmap_.size(); }

u64 AllocGroup::free_blocks() const {
  std::lock_guard lock(mu_);
  return bitmap_.free_blocks();
}

double AllocGroup::utilisation() const {
  std::lock_guard lock(mu_);
  return static_cast<double>(bitmap_.used_blocks()) /
         static_cast<double>(bitmap_.size());
}

bool AllocGroup::contains(DiskBlock b) const {
  return b.v >= base_.v && b.v < base_.v + bitmap_.size();
}

Result<BlockRange> AllocGroup::allocate_exact(DiskBlock goal, u64 len) {
  if (len == 0) return Errc::kInvalid;
  std::lock_guard lock(mu_);
  const u64 local_goal =
      contains(goal) ? to_local(goal) : 0;
  auto run = bitmap_.find_run(local_goal, len);
  if (!run) return Errc::kNoSpace;
  bitmap_.set_range(*run, len);
  ++stats_.allocations;
  stats_.blocks_allocated += len;
  return to_global(*run, len);
}

Result<BlockRange> AllocGroup::allocate_best(DiskBlock goal, u64 min_len,
                                             u64 want_len) {
  if (want_len == 0 || min_len > want_len) return Errc::kInvalid;
  std::lock_guard lock(mu_);
  const u64 local_goal = contains(goal) ? to_local(goal) : 0;
  auto run = bitmap_.find_run_best(local_goal, min_len, want_len);
  if (!run) return Errc::kNoSpace;
  // The bitmap speaks group-local bit indices; translate to disk addresses.
  const u64 local = run->start.v;
  bitmap_.set_range(local, run->length);
  ++stats_.allocations;
  stats_.blocks_allocated += run->length;
  return to_global(local, run->length);
}

u64 AllocGroup::extend_in_place(DiskBlock end, u64 len) {
  if (!contains(end) || len == 0) return 0;
  std::lock_guard lock(mu_);
  const u64 local = to_local(end);
  const u64 run = bitmap_.free_run_at(
      local, std::min(len, bitmap_.size() - local));
  if (run == 0) return 0;
  bitmap_.set_range(local, run);
  ++stats_.allocations;
  stats_.blocks_allocated += run;
  return run;
}

Status AllocGroup::free_range(BlockRange r) {
  if (!contains(r.start) || r.length == 0) return Errc::kInvalid;
  std::lock_guard lock(mu_);
  bitmap_.clear_range(to_local(r.start), r.length);
  ++stats_.frees;
  stats_.blocks_freed += r.length;
  return {};
}

}  // namespace mif::block
