#include "block/bitmap.hpp"

#include <bit>
#include <cassert>

namespace mif::block {

namespace {
constexpr u64 kWordBits = 64;
}

Bitmap::Bitmap(u64 blocks)
    : words_((blocks + kWordBits - 1) / kWordBits, 0),
      size_(blocks),
      free_(blocks) {}

bool Bitmap::is_set(u64 bit) const {
  assert(bit < size_);
  return (words_[bit / kWordBits] >> (bit % kWordBits)) & 1u;
}

void Bitmap::set_range(u64 start, u64 len) {
  assert(start + len <= size_);
  assert(range_free(start, len));
  for (u64 b = start; b < start + len; ++b)
    words_[b / kWordBits] |= u64{1} << (b % kWordBits);
  free_ -= len;
}

void Bitmap::clear_range(u64 start, u64 len) {
  assert(start + len <= size_);
  for (u64 b = start; b < start + len; ++b) {
    assert(is_set(b));
    words_[b / kWordBits] &= ~(u64{1} << (b % kWordBits));
  }
  free_ += len;
}

bool Bitmap::range_free(u64 start, u64 len) const {
  if (start + len > size_) return false;
  return free_run_at(start, len) >= len;
}

u64 Bitmap::free_run_at(u64 start, u64 max_len) const {
  u64 run = 0;
  u64 b = start;
  while (run < max_len && b < size_) {
    // Fast path: whole free word.
    if (b % kWordBits == 0 && max_len - run >= kWordBits &&
        b + kWordBits <= size_ && words_[b / kWordBits] == 0) {
      run += kWordBits;
      b += kWordBits;
      continue;
    }
    if (is_set(b)) break;
    ++run;
    ++b;
  }
  return run;
}

u64 Bitmap::next_free(u64 from) const {
  u64 b = from;
  while (b < size_) {
    const u64 w = words_[b / kWordBits] >> (b % kWordBits);
    if (w == ~u64{0} >> (b % kWordBits) && (b % kWordBits) == 0) {
      b += kWordBits;  // fully used word
      continue;
    }
    if (!((w)&1u)) return b;
    // Skip the used run inside this word.
    const u64 trailing_used = static_cast<u64>(std::countr_one(w));
    b += trailing_used;
    if (trailing_used == 0) ++b;  // defensive; cannot happen
  }
  return size_;
}

u64 Bitmap::next_used(u64 from) const {
  u64 b = from;
  while (b < size_) {
    const u64 idx = b / kWordBits;
    const u64 w = words_[idx] >> (b % kWordBits);
    if (w == 0) {
      b = (idx + 1) * kWordBits;  // fully free from here in this word
      continue;
    }
    return b + static_cast<u64>(std::countr_zero(w));
  }
  return size_;
}

std::optional<u64> Bitmap::find_run(u64 goal, u64 len) const {
  if (len == 0 || len > size_) return std::nullopt;
  auto scan = [&](u64 from, u64 to) -> std::optional<u64> {
    u64 b = from;
    while (b < to) {
      b = next_free(b);
      if (b >= to) break;
      const u64 run_end = next_used(b);
      if (run_end - b >= len) return b;
      b = run_end;
    }
    return std::nullopt;
  };
  if (auto r = scan(goal, size_)) return r;
  if (goal > 0) return scan(0, goal);
  return std::nullopt;
}

u64 Bitmap::add_free_runs(Histogram& h) const {
  u64 runs = 0;
  u64 b = 0;
  while (b < size_) {
    b = next_free(b);
    if (b >= size_) break;
    const u64 run_end = next_used(b);
    h.add(run_end - b);
    ++runs;
    b = run_end;
  }
  return runs;
}

std::optional<BlockRange> Bitmap::find_run_best(u64 goal, u64 min_len,
                                                u64 want_len) const {
  if (min_len == 0) min_len = 1;
  std::optional<BlockRange> best;
  auto scan = [&](u64 from, u64 to) -> bool {
    u64 b = from;
    while (b < to) {
      b = next_free(b);
      if (b >= to) break;
      const u64 run_end = next_used(b);
      const u64 run = run_end - b;
      if (run >= want_len) {
        best = BlockRange{DiskBlock{b}, want_len};
        return true;  // first full-size run wins (locality to goal)
      }
      if (run >= min_len && (!best || run > best->length)) {
        best = BlockRange{DiskBlock{b}, run};
      }
      b = run_end;
    }
    return false;
  };
  if (!scan(goal, size_) && goal > 0) scan(0, goal);
  return best;
}

}  // namespace mif::block
