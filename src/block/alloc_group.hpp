// Parallel Allocation Group (PAG).
//
// Redbud "divides shared disks into parallel allocation groups for parallel
// management of free space" (§V-A).  A group owns a contiguous slice of one
// disk's block space behind its own lock, so concurrent streams allocating
// in different groups never contend.
#pragma once

#include <mutex>
#include <optional>

#include "block/bitmap.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace mif::block {

struct GroupStats {
  u64 allocations{0};
  u64 frees{0};
  u64 blocks_allocated{0};
  u64 blocks_freed{0};
};

class AllocGroup {
 public:
  /// Owns disk blocks [base, base + blocks).
  AllocGroup(u32 index, DiskBlock base, u64 blocks);

  u32 index() const { return index_; }
  DiskBlock base() const { return base_; }
  u64 size() const;
  u64 free_blocks() const;
  double utilisation() const;

  /// Allocate exactly `len` contiguous blocks near `goal` (absolute disk
  /// address; clamped into this group).  Fails with kNoSpace if no run fits.
  Result<BlockRange> allocate_exact(DiskBlock goal, u64 len);

  /// Allocate the best available run of length in [min_len, want_len].
  Result<BlockRange> allocate_best(DiskBlock goal, u64 min_len, u64 want_len);

  /// Try to extend an existing allocation in place: grab [end, end+len) if
  /// free.  Returns the number of blocks actually appended (0..len).
  u64 extend_in_place(DiskBlock end, u64 len);

  Status free_range(BlockRange r);

  bool contains(DiskBlock b) const;
  const GroupStats& stats() const { return stats_; }

  /// Free-space run lengths of this group's bitmap appended into `h`;
  /// returns the run count.  Takes the group lock (timeline-safe against
  /// concurrent allocation).
  u64 add_free_runs(Histogram& h) const {
    std::lock_guard lock(mu_);
    return bitmap_.add_free_runs(h);
  }

 private:
  u64 to_local(DiskBlock b) const { return b.v - base_.v; }
  BlockRange to_global(u64 local, u64 len) const {
    return BlockRange{DiskBlock{base_.v + local}, len};
  }

  const u32 index_;
  const DiskBlock base_;
  mutable std::mutex mu_;
  Bitmap bitmap_;
  GroupStats stats_;
};

}  // namespace mif::block
