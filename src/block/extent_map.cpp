#include <algorithm>
#include <cassert>

#include "block/block_types.hpp"

namespace mif::block {

namespace {
bool mergeable(const Extent& a, const Extent& b) {
  return a.file_end() == b.file_off.v && a.disk_end() == b.disk_off.v &&
         a.flags == b.flags;
}
}  // namespace

void ExtentMap::insert(Extent e) {
  assert(e.length > 0);
  auto it = std::lower_bound(extents_.begin(), extents_.end(), e,
                             [](const Extent& a, const Extent& b) {
                               return a.file_off.v < b.file_off.v;
                             });
  // No overlap allowed: check neighbours.
  assert(it == extents_.end() || e.file_end() <= it->file_off.v);
  assert(it == extents_.begin() || std::prev(it)->file_end() <= e.file_off.v);

  // Try merging with the predecessor.
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (mergeable(*prev, e)) {
      prev->length += e.length;
      // The grown predecessor may now touch the successor too.
      if (it != extents_.end() && mergeable(*prev, *it)) {
        prev->length += it->length;
        extents_.erase(it);
      }
      return;
    }
  }
  // Try merging with the successor.
  if (it != extents_.end() && mergeable(e, *it)) {
    it->file_off = e.file_off;
    it->disk_off = e.disk_off;
    it->length += e.length;
    return;
  }
  extents_.insert(it, e);
}

std::optional<Extent> ExtentMap::lookup(FileBlock b) const {
  auto it = std::upper_bound(extents_.begin(), extents_.end(), b,
                             [](FileBlock lhs, const Extent& rhs) {
                               return lhs.v < rhs.file_off.v;
                             });
  if (it == extents_.begin()) return std::nullopt;
  --it;
  if (it->covers(b)) return *it;
  return std::nullopt;
}

std::vector<BlockRange> ExtentMap::map_range(FileBlock b, u64 len) const {
  std::vector<BlockRange> out;
  const u64 end = b.v + len;
  auto it = std::upper_bound(extents_.begin(), extents_.end(), b,
                             [](FileBlock lhs, const Extent& rhs) {
                               return lhs.v < rhs.file_off.v;
                             });
  if (it != extents_.begin()) --it;
  for (; it != extents_.end() && it->file_off.v < end; ++it) {
    const u64 lo = std::max(b.v, it->file_off.v);
    const u64 hi = std::min(end, it->file_end());
    if (lo >= hi) continue;
    BlockRange r{DiskBlock{it->disk_off.v + (lo - it->file_off.v)}, hi - lo};
    // Physically contiguous with the previous run: coalesce so callers see
    // the true contiguity of the placement.
    if (!out.empty() && out.back().end() == r.start.v) {
      out.back().length += r.length;
    } else {
      out.push_back(r);
    }
  }
  return out;
}

void ExtentMap::mark_written(FileBlock b, u64 len) {
  const u64 end = b.v + len;
  std::vector<Extent> rebuilt;
  rebuilt.reserve(extents_.size() + 2);
  for (const Extent& e : extents_) {
    const u64 lo = std::max(b.v, e.file_off.v);
    const u64 hi = std::min(end, e.file_end());
    if (lo >= hi || !(e.flags & kExtentUnwritten)) {
      rebuilt.push_back(e);
      continue;
    }
    // Split into up-to-three pieces; the middle one becomes written.
    if (e.file_off.v < lo) {
      rebuilt.push_back(
          Extent{e.file_off, e.disk_off, lo - e.file_off.v, e.flags});
    }
    rebuilt.push_back(Extent{FileBlock{lo},
                             DiskBlock{e.disk_off.v + (lo - e.file_off.v)},
                             hi - lo, e.flags & ~kExtentUnwritten});
    if (hi < e.file_end()) {
      rebuilt.push_back(Extent{FileBlock{hi},
                               DiskBlock{e.disk_off.v + (hi - e.file_off.v)},
                               e.file_end() - hi, e.flags});
    }
  }
  extents_.clear();
  for (const Extent& e : rebuilt) insert(e);  // re-merge
}

u64 ExtentMap::logical_end() const {
  return extents_.empty() ? 0 : extents_.back().file_end();
}

u64 ExtentMap::mapped_blocks() const {
  u64 n = 0;
  for (const Extent& e : extents_) n += e.length;
  return n;
}

}  // namespace mif::block
