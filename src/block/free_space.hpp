// Free-space manager: the set of PAGs covering one storage target's disk.
//
// Goal-directed allocation tries the group containing the goal first, then
// sweeps the others — the same policy ext-family block allocators use across
// cylinder/block groups, which the paper's Redbud inherits.
#pragma once

#include <memory>
#include <vector>

#include "block/alloc_group.hpp"
#include "util/result.hpp"

namespace mif::block {

class FreeSpace {
 public:
  /// Carves [first_block, first_block + blocks) into `groups` equal PAGs.
  FreeSpace(DiskBlock first_block, u64 blocks, u32 groups);

  u32 group_count() const { return static_cast<u32>(groups_.size()); }
  AllocGroup& group(u32 i) { return *groups_[i]; }
  const AllocGroup& group(u32 i) const { return *groups_[i]; }

  /// Group that owns disk block `b`, or nullptr.
  AllocGroup* group_of(DiskBlock b);

  u64 total_blocks() const { return total_blocks_; }
  u64 free_blocks() const;
  double utilisation() const;

  /// Contiguous allocation of exactly `len` blocks, goal-first.
  Result<BlockRange> allocate_exact(DiskBlock goal, u64 len);

  /// Allocate up to `want_len` (at least `min_len`) contiguous blocks near
  /// the goal; degrades across groups as space fragments.
  Result<BlockRange> allocate_best(DiskBlock goal, u64 min_len, u64 want_len);

  /// Allocate `len` blocks as a list of runs (possibly discontiguous) —
  /// the fallback when nothing contiguous is left.
  Result<std::vector<BlockRange>> allocate_scattered(DiskBlock goal, u64 len);

  u64 extend_in_place(DiskBlock end, u64 len);

  Status free_range(BlockRange r);

  /// Free-space run lengths across every group appended into `h`; returns
  /// the total run count.  A run never spans groups (PAG boundaries are
  /// allocation boundaries), so summing per-group scans is exact.
  u64 add_free_runs(Histogram& h) const {
    u64 runs = 0;
    for (const auto& g : groups_) runs += g->add_free_runs(h);
    return runs;
  }

 private:
  std::vector<std::unique_ptr<AllocGroup>> groups_;
  DiskBlock first_block_;
  u64 total_blocks_;
  u64 group_size_;
};

}  // namespace mif::block
