#include "block/journal.hpp"

#include <algorithm>

#include "obs/span.hpp"

namespace mif::block {

Journal::Journal(sim::IoScheduler& io, DiskBlock area_start, u64 area_blocks,
                 u64 checkpoint_interval, u64 commit_batch)
    : io_(io),
      area_start_(area_start),
      area_blocks_(area_blocks),
      checkpoint_interval_(std::max<u64>(1, checkpoint_interval)),
      commit_batch_(std::max<u64>(1, commit_batch)) {}

void Journal::log(const std::vector<BlockRange>& home_blocks) {
  u64 record_blocks = 0;
  for (const BlockRange& r : home_blocks) record_blocks += r.length;
  uncommitted_blocks_ += record_blocks;
  stats_.journal_blocks += record_blocks;
  ++stats_.transactions;
  pending_.insert(pending_.end(), home_blocks.begin(), home_blocks.end());

  if (++since_commit_ >= commit_batch_) commit();
  if (++since_checkpoint_ >= checkpoint_interval_) checkpoint();
}

void Journal::commit() {
  since_commit_ = 0;
  const u64 blocks = uncommitted_blocks_ + 1;  // + commit block
  obs::ScopedSpan span(spans_, "journal.commit", blocks);
  uncommitted_blocks_ = 0;
  stats_.journal_blocks += 1;

  // Sequential append into the journal area, wrapping when full.  A wrap
  // forces a checkpoint first (the tail cannot be overwritten while its
  // home blocks are unwritten).
  if (cursor_ + blocks > area_blocks_) {
    checkpoint();
    cursor_ = 0;
  }
  io_.submit({sim::IoKind::kWrite, DiskBlock{area_start_.v + cursor_},
              std::min(blocks, area_blocks_)});
  cursor_ = std::min(cursor_ + blocks, area_blocks_);
  if (trace_) trace_->record(obs::TraceEventType::kJournalCommit, blocks);
}

void Journal::checkpoint() {
  since_checkpoint_ = 0;
  if (uncommitted_blocks_ > 0) commit();
  if (pending_.empty()) return;
  obs::ScopedSpan span(spans_, "journal.checkpoint", pending_.size());
  const u64 checkpoint_blocks_before = stats_.checkpoint_blocks;
  // Sort by home address and merge duplicates/adjacent runs so the write-back
  // pass is a single elevator sweep — mirroring jbd2 checkpoint behaviour.
  std::sort(pending_.begin(), pending_.end(),
            [](const BlockRange& a, const BlockRange& b) {
              return a.start.v < b.start.v;
            });
  std::size_t i = 0;
  while (i < pending_.size()) {
    BlockRange run = pending_[i];
    std::size_t j = i + 1;
    while (j < pending_.size() && pending_[j].start.v <= run.end()) {
      run.length = std::max(run.end(), pending_[j].end()) - run.start.v;
      ++j;
    }
    io_.submit({sim::IoKind::kWrite, run.start, run.length});
    stats_.checkpoint_blocks += run.length;
    i = j;
  }
  pending_.clear();
  ++stats_.checkpoints;
  if (trace_) {
    trace_->record(obs::TraceEventType::kJournalCheckpoint,
                   stats_.checkpoint_blocks - checkpoint_blocks_before);
  }
}

}  // namespace mif::block
