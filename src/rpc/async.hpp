// AsyncTransport: completion-queue decorator that retires tickets against a
// pipelined simulated timeline.
//
// The base Transport's sync fallback completes every call_async() at issue —
// the blocking chain's semantics.  This decorator is the layer that actually
// DEFERS completion: an issued envelope is dispatched into the inner
// transport immediately (server-side effects — allocation, disk service,
// rpc.* charging — happen in issue order, exactly as the sync chain), but
// its Result<Response> is admitted to the completion queue with a modeled
// done time on a sim::Pipeline timeline:
//
//   service(envelope) = network(wire) [+ network(bulk reply)]
//                       [+ disk streaming estimate for block I/O]
//
//   issue   — bounded by the pipeline window (`depth` in flight);
//   start   — max(issue, destination channel clock): FIFO per destination;
//   done    — start + service; distinct destinations overlap, so a window
//             completes in max() of its members, not their sum.
//
// depth == 1 reproduces the blocking client exactly (elapsed == serial sum);
// the stack only builds this decorator for depth >= 2, keeping the default
// figures byte-identical.  The pipelined elapsed/serial times are exposed via
// report() for the bench JSON (fig6a/fig7 --pipeline-depth) and exported as
// rpc.pipeline.* metrics plus the rpc.inflight window-occupancy histogram.
//
// Placement in the chain: directly above InprocTransport —
// Fault(Batching(Async(Inproc))) — so faults fail tickets before issue and
// batching still coalesces frames underneath its own deferred acks.
#pragma once

#include <functional>
#include <mutex>

#include "obs/metrics.hpp"
#include "rpc/transport.hpp"
#include "sim/disk.hpp"
#include "sim/network.hpp"
#include "sim/pipeline.hpp"

namespace mif::rpc {

struct AsyncConfig {
  /// Max in-flight envelopes per chain (the completion-queue window).
  u32 depth{2};
  /// Adaptive window ceiling.  0 (default) = static `depth`.  >= 2 arms the
  /// controller: the window floats in [2, depth_max], driven by the live
  /// device queue gauges wired via set_queue_probe() — deepen while the
  /// devices are starved, shrink when queue wait dominates.  The floor of 2
  /// guarantees the window always overlaps at least two exchanges.
  u32 depth_max{0};
  sim::NetworkConfig meta_net{};
  sim::NetworkConfig data_net{};
  /// Geometry used for the per-envelope disk service estimate (streaming
  /// floor; the OSDs still charge the real seek-aware cost internally).
  sim::DiskGeometry geometry{};
};

/// Pipeline outcome snapshot for the bench JSON: serial_ms is what a
/// depth-1 (blocking) client would have paid end-to-end, elapsed_ms is the
/// pipelined end-to-end, so serial/elapsed is the overlap speedup.
struct AsyncReport {
  u32 depth{1};  // current window (the last adaptive choice, or the static)
  u64 issued{0};
  u64 stalls{0};
  u64 max_inflight{0};
  double stall_ms{0.0};
  double serial_ms{0.0};
  double elapsed_ms{0.0};
  // Adaptive-controller outcome (meaningful only when `adaptive`).
  bool adaptive{false};
  u64 depth_changes{0};
  u32 depth_min_seen{1};
  u32 depth_max_seen{1};
};

class AsyncTransport final : public Transport {
 public:
  AsyncTransport(Transport& inner, AsyncConfig cfg = {});

  /// Sync calls stay synchronous — the metadata path is unchanged.
  Result<Response> call(const Address& to, const Request& req) override {
    return inner_.call(to, req);
  }

  /// Eager dispatch, deferred retirement (see file comment).
  Ticket call_async(const Address& to, const Request& req) override;

  CompletionQueue& completions() override { return cq_; }

  Status call_batch(const Address& to, std::vector<Request> reqs) override {
    return inner_.call_batch(to, std::move(reqs));
  }
  Status flush() override { return inner_.flush(); }
  void pump() override { inner_.pump(); }

  /// Wire the live device-queue gauge the adaptive controller reads:
  /// `probe(osd_index)` returns that target's current scheduler queue depth
  /// (StorageTarget::queue_depth, published since the PR 6 timeline).  Only
  /// consulted when cfg.depth_max >= 2; unset probe = controller dormant.
  void set_queue_probe(std::function<double(u32)> probe);

  void set_spans(obs::SpanCollector* spans) override;
  void set_attribution(obs::Attribution* attrib) override {
    attrib_ = attrib;
    inner_.set_attribution(attrib);
  }
  void export_metrics(obs::MetricsRegistry& reg,
                      std::string_view prefix) const override;

  u32 depth() const { return cfg_.depth; }
  AsyncReport report() const;

  /// Envelopes currently inside the completion window (timeline gauge).
  u64 inflight() const {
    std::lock_guard lock(mu_);
    return pipe_.inflight();
  }

 private:
  /// One pipeline channel per destination: OSDs on their own lanes, MDS
  /// addresses offset past any realistic OSD count.
  static u32 channel_of(const Address& to) {
    return to.kind == Address::Kind::kOsd ? to.index : 128u + to.index;
  }
  /// Modeled end-to-end service time of one exchange (ms).
  double price(const Address& to, const Request& req,
               const Result<Response>& resp) const;
  /// One controller step: fold `queue_depth` into the sample window and,
  /// every kAdaptPeriod OSD issues, resize the pipeline window.  mu_ held.
  void adapt_locked(double queue_depth);

  /// OSD issues between adaptive window adjustments.
  static constexpr u32 kAdaptPeriod = 8;
  /// Adaptive floor: never below 2 — the window must keep overlapping.
  static constexpr u32 kAdaptFloor = 2;
  /// Shrink once the mean device queue exceeds this multiple of the window
  /// (queue wait dominates: deeper issue only lengthens the line).
  static constexpr double kShrinkFactor = 8.0;

  Transport& inner_;
  AsyncConfig cfg_;
  sim::Network meta_model_;  // cost() only — never charged
  sim::Network data_model_;
  obs::SpanCollector* spans_{nullptr};
  obs::Attribution* attrib_{nullptr};
  u32 track_ns_{0};
  mutable std::mutex mu_;
  sim::Pipeline pipe_;
  obs::Histo inflight_{16};  // window occupancy at each issue
  CompletionQueue cq_;
  // Adaptive-controller state (mu_).
  std::function<double(u32)> probe_;
  double probe_sum_{0.0};
  u32 probe_samples_{0};
  u64 depth_changes_{0};
  u32 depth_min_seen_{1};
  u32 depth_max_seen_{1};
};

}  // namespace mif::rpc
