#include "rpc/envelope.hpp"

#include <array>
#include <cstring>

namespace mif::rpc {

namespace {

// Op order!  Span names must be string literals (static storage) because
// ScopedSpan keeps the pointer.
constexpr std::array<OpTraits, kOpCount> kOpTraits{{
    {"mkdir", "rpc.mkdir", true, false, false},
    {"create", "rpc.create", true, false, false},
    {"stat", "rpc.stat", true, false, false},
    {"utime", "rpc.utime", true, false, true},
    {"unlink", "rpc.unlink", true, false, false},
    {"rename", "rpc.rename", true, false, false},
    {"resolve", "rpc.resolve", true, true, false},
    {"open_getlayout", "rpc.open_getlayout", true, false, false},
    {"readdir", "rpc.readdir", true, false, false},
    {"readdirplus", "rpc.readdirplus", true, false, false},
    {"report_extents", "rpc.report_extents", true, false, true},
    {"block_write", "rpc.block_write", false, false, true},
    {"block_read", "rpc.block_read", false, false, false},
    {"get_extents", "rpc.get_extents", false, false, false},
    {"preallocate", "rpc.preallocate", false, false, false},
    {"close_file", "rpc.close_file", false, false, false},
    {"delete_file", "rpc.delete_file", false, false, false},
    {"list.write", "rpc.list.write", false, false, false},
    {"list.read", "rpc.list.read", false, false, false},
    {"list.write_strided", "rpc.list.write_strided", false, false, false},
    {"list.read_strided", "rpc.list.read_strided", false, false, false},
}};

// Little-endian field writer/reader for the byte-exact codec.
class Writer {
 public:
  explicit Writer(std::vector<u8>& out) : out_(out) {}
  void u8v(u8 v) { out_.push_back(v); }
  void u32v(u32 v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  void u64v(u64 v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  void str(const std::string& s) {
    u32v(static_cast<u32>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void runs(const std::vector<BlockRun>& rs) {
    u32v(static_cast<u32>(rs.size()));
    for (const BlockRun& r : rs) {
      u64v(r.start.v);
      u64v(r.count);
    }
  }

 private:
  std::vector<u8>& out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<u8>& in) : in_(in) {}
  bool ok() const { return ok_; }
  bool done() const { return ok_ && pos_ == in_.size(); }
  u8 u8v() {
    if (pos_ + 1 > in_.size()) return fail<u8>();
    return in_[pos_++];
  }
  u32 u32v() {
    if (pos_ + 4 > in_.size()) return fail<u32>();
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(in_[pos_++]) << (8 * i);
    return v;
  }
  u64 u64v() {
    if (pos_ + 8 > in_.size()) return fail<u64>();
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(in_[pos_++]) << (8 * i);
    return v;
  }
  std::string str() {
    const u32 n = u32v();
    if (!ok_ || pos_ + n > in_.size()) return fail<std::string>();
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<BlockRun> runs() {
    const u32 n = u32v();
    std::vector<BlockRun> rs;
    if (!ok_ || pos_ + static_cast<std::size_t>(n) * 16 > in_.size())
      return fail<std::vector<BlockRun>>();
    rs.reserve(n);
    for (u32 i = 0; i < n; ++i) {
      BlockRun r;
      r.start.v = u64v();
      r.count = u64v();
      rs.push_back(r);
    }
    return rs;
  }

 private:
  template <typename T>
  T fail() {
    ok_ = false;
    return T{};
  }
  const std::vector<u8>& in_;
  std::size_t pos_{0};
  bool ok_{true};
};

u64 dirent_bytes(const mfs::DirEntry& e) {
  return kDirentFixedBytes + e.name.size();
}

}  // namespace

const OpTraits& traits(Op op) { return kOpTraits[static_cast<std::size_t>(op)]; }

std::string_view to_string(Op op) { return traits(op).name; }

Op op_of(const Request& req) {
  return std::visit([](const auto& r) { return std::decay_t<decltype(r)>::kOp; },
                    req);
}

u64 wire_bytes(const Request& req) {
  u64 bytes = kHeaderBytes +
              std::visit([](const auto& r) { return r.body_bytes(); }, req);
  // Block/list/strided writes ship the data payload with the envelope.
  if (const auto* w = std::get_if<BlockWriteRequest>(&req)) {
    bytes += w->blocks() * kBlockSize;
  } else if (const auto* l = std::get_if<WriteListRequest>(&req)) {
    bytes += l->blocks() * kBlockSize;
  } else if (const auto* s = std::get_if<WriteStridedRequest>(&req)) {
    bytes += s->blocks() * kBlockSize;
  }
  return bytes;
}

u64 bulk_bytes(const Response& resp) {
  if (const auto* l = std::get_if<OpenGetLayoutResponse>(&resp)) {
    return l->extent_count * kExtentWireBytes;
  }
  if (const auto* d = std::get_if<ReaddirResponse>(&resp)) {
    u64 bytes = 0;
    for (const mfs::DirEntry& e : d->entries) {
      bytes += dirent_bytes(e) + (d->plus ? kInodeAttrBytes : 0);
    }
    return bytes;
  }
  if (const auto* b = std::get_if<BlockDataResponse>(&resp)) {
    return b->blocks * kBlockSize;
  }
  return 0;
}

std::vector<u8> encode(const Request& req) {
  std::vector<u8> out;
  Writer w(out);
  w.u8v(static_cast<u8>(op_of(req)));
  std::visit(
      [&](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, RenameRequest>) {
          w.str(r.from);
          w.str(r.to);
        } else if constexpr (std::is_same_v<T, ReportExtentsRequest>) {
          w.u64v(r.ino.v);
          w.u64v(r.extent_count);
        } else if constexpr (std::is_same_v<T, BlockWriteRequest> ||
                             std::is_same_v<T, WriteListRequest>) {
          w.u64v(r.ino.v);
          w.u64v(r.stream.key());
          w.runs(r.runs);
        } else if constexpr (std::is_same_v<T, BlockReadRequest> ||
                             std::is_same_v<T, ReadListRequest>) {
          w.u64v(r.ino.v);
          w.runs(r.runs);
        } else if constexpr (std::is_same_v<T, WriteStridedRequest>) {
          w.u64v(r.ino.v);
          w.u64v(r.stream.key());
          w.u64v(r.start.v);
          w.u64v(r.count);
          w.u64v(r.stride);
          w.u64v(r.block_len);
        } else if constexpr (std::is_same_v<T, ReadStridedRequest>) {
          w.u64v(r.ino.v);
          w.u64v(r.start.v);
          w.u64v(r.count);
          w.u64v(r.stride);
          w.u64v(r.block_len);
        } else if constexpr (std::is_same_v<T, GetExtentsRequest> ||
                             std::is_same_v<T, CloseFileRequest> ||
                             std::is_same_v<T, DeleteFileRequest>) {
          w.u64v(r.ino.v);
        } else if constexpr (std::is_same_v<T, PreallocateRequest>) {
          w.u64v(r.ino.v);
          w.u64v(r.total_blocks);
        } else {
          // All the path-only metadata requests.
          w.str(r.path);
        }
      },
      req);
  return out;
}

Result<Request> decode_request(const std::vector<u8>& buf) {
  Reader r(buf);
  const u8 tag = r.u8v();
  if (!r.ok() || tag >= kOpCount) return Errc::kInvalid;
  Request req = [&]() -> Request {
    switch (static_cast<Op>(tag)) {
      case Op::kMkdir: return MkdirRequest{r.str()};
      case Op::kCreate: return CreateRequest{r.str()};
      case Op::kStat: return StatRequest{r.str()};
      case Op::kUtime: return UtimeRequest{r.str()};
      case Op::kUnlink: return UnlinkRequest{r.str()};
      case Op::kRename: {
        RenameRequest q;
        q.from = r.str();
        q.to = r.str();
        return q;
      }
      case Op::kResolve: return ResolveRequest{r.str()};
      case Op::kOpenGetLayout: return OpenGetLayoutRequest{r.str()};
      case Op::kReaddir: return ReaddirRequest{r.str()};
      case Op::kReaddirPlus: return ReaddirPlusRequest{r.str()};
      case Op::kReportExtents: {
        ReportExtentsRequest q;
        q.ino.v = r.u64v();
        q.extent_count = r.u64v();
        return q;
      }
      case Op::kBlockWrite: {
        BlockWriteRequest q;
        q.ino.v = r.u64v();
        const u64 key = r.u64v();
        q.stream = StreamId{static_cast<u32>(key >> 32),
                            static_cast<u32>(key & 0xffffffffu)};
        q.runs = r.runs();
        return q;
      }
      case Op::kBlockRead: {
        BlockReadRequest q;
        q.ino.v = r.u64v();
        q.runs = r.runs();
        return q;
      }
      case Op::kGetExtents: {
        GetExtentsRequest q;
        q.ino.v = r.u64v();
        return q;
      }
      case Op::kPreallocate: {
        PreallocateRequest q;
        q.ino.v = r.u64v();
        q.total_blocks = r.u64v();
        return q;
      }
      case Op::kCloseFile: {
        CloseFileRequest q;
        q.ino.v = r.u64v();
        return q;
      }
      case Op::kDeleteFile: {
        DeleteFileRequest q;
        q.ino.v = r.u64v();
        return q;
      }
      case Op::kWriteList: {
        WriteListRequest q;
        q.ino.v = r.u64v();
        const u64 key = r.u64v();
        q.stream = StreamId{static_cast<u32>(key >> 32),
                            static_cast<u32>(key & 0xffffffffu)};
        q.runs = r.runs();
        return q;
      }
      case Op::kReadList: {
        ReadListRequest q;
        q.ino.v = r.u64v();
        q.runs = r.runs();
        return q;
      }
      case Op::kWriteStrided: {
        WriteStridedRequest q;
        q.ino.v = r.u64v();
        const u64 key = r.u64v();
        q.stream = StreamId{static_cast<u32>(key >> 32),
                            static_cast<u32>(key & 0xffffffffu)};
        q.start.v = r.u64v();
        q.count = r.u64v();
        q.stride = r.u64v();
        q.block_len = r.u64v();
        return q;
      }
      case Op::kReadStrided: {
        ReadStridedRequest q;
        q.ino.v = r.u64v();
        q.start.v = r.u64v();
        q.count = r.u64v();
        q.stride = r.u64v();
        q.block_len = r.u64v();
        return q;
      }
    }
    return MkdirRequest{};
  }();
  if (!r.done()) return Errc::kInvalid;
  return req;
}

std::vector<u8> encode(const Response& resp) {
  std::vector<u8> out;
  Writer w(out);
  w.u8v(static_cast<u8>(resp.index()));
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, InodeResponse>) {
          w.u64v(v.ino.v);
        } else if constexpr (std::is_same_v<T, OpenGetLayoutResponse>) {
          w.u64v(v.ino.v);
          w.u64v(v.extent_count);
        } else if constexpr (std::is_same_v<T, ReaddirResponse>) {
          w.u8v(v.plus ? 1 : 0);
          w.u32v(static_cast<u32>(v.entries.size()));
          for (const mfs::DirEntry& e : v.entries) {
            w.str(e.name);
            w.u64v(e.ino.v);
            w.u8v(static_cast<u8>(e.type));
          }
        } else if constexpr (std::is_same_v<T, ExtentCountResponse>) {
          w.u64v(v.extent_count);
        } else if constexpr (std::is_same_v<T, BlockDataResponse>) {
          w.u64v(v.blocks);
        }
        // VoidResponse: tag only.
      },
      resp);
  return out;
}

Result<Response> decode_response(const std::vector<u8>& buf) {
  Reader r(buf);
  const u8 tag = r.u8v();
  if (!r.ok() || tag >= std::variant_size_v<Response>) return Errc::kInvalid;
  Response resp = [&]() -> Response {
    switch (tag) {
      case 0: return VoidResponse{};
      case 1: {
        InodeResponse v;
        v.ino.v = r.u64v();
        return v;
      }
      case 2: {
        OpenGetLayoutResponse v;
        v.ino.v = r.u64v();
        v.extent_count = r.u64v();
        return v;
      }
      case 3: {
        ReaddirResponse v;
        v.plus = r.u8v() != 0;
        const u32 n = r.u32v();
        for (u32 i = 0; r.ok() && i < n; ++i) {
          mfs::DirEntry e;
          e.name = r.str();
          e.ino.v = r.u64v();
          e.type = static_cast<mfs::FileType>(r.u8v());
          v.entries.push_back(std::move(e));
        }
        return v;
      }
      case 4: {
        ExtentCountResponse v;
        v.extent_count = r.u64v();
        return v;
      }
      default: {
        BlockDataResponse v;
        v.blocks = r.u64v();
        return v;
      }
    }
  }();
  if (!r.done()) return Errc::kInvalid;
  return resp;
}

}  // namespace mif::rpc
