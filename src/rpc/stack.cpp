#include "rpc/stack.hpp"

namespace mif::rpc {

TransportStack::TransportStack(Endpoints eps, const TransportOptions& opt) {
  inproc_ = std::make_unique<InprocTransport>(std::move(eps), opt.meta_net,
                                              opt.data_net);
  top_ = inproc_.get();
  if (opt.pipeline_depth >= 2) {
    AsyncConfig acfg;
    acfg.depth = opt.pipeline_depth;
    acfg.meta_net = opt.meta_net;
    acfg.data_net = opt.data_net;
    acfg.geometry = opt.geometry;
    async_ = std::make_unique<AsyncTransport>(*top_, acfg);
    top_ = async_.get();
  }
  if (opt.kind == TransportOptions::Kind::kBatching) {
    batching_ = std::make_unique<BatchingTransport>(*top_, opt.batching);
    top_ = batching_.get();
  }
  if (opt.inject_faults) {
    fault_ = std::make_unique<FaultTransport>(*top_);
    top_ = fault_.get();
  }
  if (opt.mds_shards >= 2) {
    sharded_ = std::make_unique<shard::ShardedTransport>(*top_, opt.mds_shards,
                                                         opt.placement);
    top_ = sharded_.get();
  }
}

}  // namespace mif::rpc
