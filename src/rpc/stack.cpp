#include "rpc/stack.hpp"

namespace mif::rpc {

TransportStack::TransportStack(Endpoints eps, const TransportOptions& opt) {
  inproc_ = std::make_unique<InprocTransport>(std::move(eps), opt.meta_net,
                                              opt.data_net);
  top_ = inproc_.get();
  if (opt.kind == TransportOptions::Kind::kBatching) {
    batching_ = std::make_unique<BatchingTransport>(*top_, opt.batching);
    top_ = batching_.get();
  }
  if (opt.inject_faults) {
    fault_ = std::make_unique<FaultTransport>(*top_);
    top_ = fault_.get();
  }
}

}  // namespace mif::rpc
