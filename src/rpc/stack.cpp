#include "rpc/stack.hpp"

#include <algorithm>

namespace mif::rpc {

TransportStack::TransportStack(Endpoints eps, const TransportOptions& opt) {
  inproc_ = std::make_unique<InprocTransport>(std::move(eps), opt.meta_net,
                                              opt.data_net);
  top_ = inproc_.get();
  if (opt.pipeline_depth >= 2 || opt.adaptive_depth_max >= 2) {
    AsyncConfig acfg;
    // Adaptive mode may be armed without an explicit static depth; start at
    // the floor so the controller earns any deeper window from the gauges.
    acfg.depth = std::max<u32>(opt.pipeline_depth, 2);
    acfg.depth_max = opt.adaptive_depth_max;
    acfg.meta_net = opt.meta_net;
    acfg.data_net = opt.data_net;
    acfg.geometry = opt.geometry;
    async_ = std::make_unique<AsyncTransport>(*top_, acfg);
    top_ = async_.get();
  }
  if (opt.kind == TransportOptions::Kind::kBatching) {
    batching_ = std::make_unique<BatchingTransport>(*top_, opt.batching);
    top_ = batching_.get();
  } else if (opt.kind == TransportOptions::Kind::kFormation) {
    formation_ = std::make_unique<FormationTransport>(*top_, opt.formation);
    top_ = formation_.get();
  }
  if (opt.qos.enabled) {
    qos_ = std::make_unique<QosTransport>(*top_, opt.qos);
    top_ = qos_.get();
  }
  if (opt.inject_faults) {
    fault_ = std::make_unique<FaultTransport>(*top_);
    top_ = fault_.get();
  }
  if (opt.mds_shards >= 2) {
    sharded_ = std::make_unique<shard::ShardedTransport>(*top_, opt.mds_shards,
                                                         opt.placement);
    top_ = sharded_.get();
  }
}

}  // namespace mif::rpc
