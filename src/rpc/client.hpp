// rpc::Client — the typed stub callers use instead of server method calls.
//
// One method per operation: it builds the request envelope, sends it through
// the transport, and unwraps the expected response alternative.  ClientFs,
// the MDS cluster routers, workloads and benches all speak to servers
// exclusively through this class; nothing above the transport ever touches
// a server object's RPC surface directly.
#pragma once

#include <string_view>
#include <vector>

#include "rpc/envelope.hpp"
#include "rpc/transport.hpp"

namespace mif::rpc {

class Client {
 public:
  /// Stub bound to one transport; metadata ops go to MDS `mds_index`.
  explicit Client(Transport& transport, u32 mds_index = 0)
      : transport_(&transport), mds_(mds_at(mds_index)) {}

  // --- metadata ops (client ↔ MDS) -----------------------------------------
  Result<InodeNo> mkdir(std::string_view path);
  Result<InodeNo> create(std::string_view path);
  Status stat(std::string_view path);
  Status utime(std::string_view path);
  Status unlink(std::string_view path);
  Result<InodeNo> rename(std::string_view from, std::string_view to);
  /// Revalidate a cached handle (free — no wire message, see OpTraits).
  Result<InodeNo> resolve(std::string_view path);
  Result<OpenGetLayoutResponse> open_getlayout(std::string_view path);
  Result<std::vector<mfs::DirEntry>> readdir(std::string_view path);
  Result<std::vector<mfs::DirEntry>> readdir_stats(std::string_view path);
  Status report_extents(InodeNo ino, u64 extent_count);

  // --- data ops (client ↔ storage target) ----------------------------------
  Status block_write(u32 target, InodeNo ino, StreamId stream, FileBlock start,
                     u64 count);
  Status block_read(u32 target, InodeNo ino, FileBlock start, u64 count);
  /// List I/O: one envelope moves every run in one server pass.
  Status write_list(u32 target, InodeNo ino, StreamId stream,
                    std::vector<BlockRun> runs);
  Status read_list(u32 target, InodeNo ino, std::vector<BlockRun> runs);
  /// Datatype I/O: a (count, stride, block_len) pattern in constant wire
  /// bytes.
  Status write_strided(u32 target, InodeNo ino, StreamId stream,
                       FileBlock start, u64 count, u64 stride, u64 block_len);
  Status read_strided(u32 target, InodeNo ino, FileBlock start, u64 count,
                      u64 stride, u64 block_len);
  Result<u64> target_extents(u32 target, InodeNo ino);
  Status preallocate(u32 target, InodeNo ino, u64 total_blocks);
  Status close_file(u32 target, InodeNo ino);
  Status delete_file(u32 target, InodeNo ino);

  // --- async data ops: issue a ticket, drain via completions() -------------
  // The striped data path issues many of these before claiming any result,
  // so an async transport keeps a window in flight across the targets.
  Ticket block_write_async(u32 target, InodeNo ino, StreamId stream,
                           FileBlock start, u64 count);
  Ticket block_read_async(u32 target, InodeNo ino, FileBlock start, u64 count);
  Ticket write_list_async(u32 target, InodeNo ino, StreamId stream,
                          std::vector<BlockRun> runs);
  Ticket read_list_async(u32 target, InodeNo ino, std::vector<BlockRun> runs);
  Ticket write_strided_async(u32 target, InodeNo ino, StreamId stream,
                             FileBlock start, u64 count, u64 stride,
                             u64 block_len);
  Ticket read_strided_async(u32 target, InodeNo ino, FileBlock start,
                            u64 count, u64 stride, u64 block_len);
  Ticket preallocate_async(u32 target, InodeNo ino, u64 total_blocks);
  Ticket close_file_async(u32 target, InodeNo ino);
  Ticket delete_file_async(u32 target, InodeNo ino);

  /// The transport chain's completion queue (drain point for the tickets
  /// above).
  CompletionQueue& completions() { return transport_->completions(); }
  /// Claim one ticket's result as a Status, blocking the modeled timeline.
  Status wait(const Ticket& t) {
    Result<Response> r = completions().wait(t);
    return to_status(r);
  }

  /// Push out anything a buffering transport still holds; surfaces deferred
  /// errors.
  Status flush() { return transport_->flush(); }

  /// Let time-based layers (QoS token refill) act on clock progress without
  /// forcing a flush.
  void pump() { transport_->pump(); }

  Transport& transport() { return *transport_; }
  u32 mds_index() const { return mds_.index; }

 private:
  template <typename T>
  Result<T> expect(Result<Response> r) {
    if (!r) return r.error();
    if (T* v = std::get_if<T>(&*r)) return std::move(*v);
    return Errc::kInvalid;  // transport returned the wrong alternative
  }
  Status to_status(const Result<Response>& r) {
    return r ? Status{} : Status{r.error()};
  }

  Transport* transport_;
  Address mds_;
};

}  // namespace mif::rpc
