// BatchingTransport: coalesce deferrable envelopes into single wire frames.
//
// The paper's §II-A2 aggregation argument applied to the transport itself:
// a logical operation's cost is dominated by how many wire messages it
// becomes, so deferrable envelopes (block writes, utime, layout reports —
// anything whose ack the caller does not need synchronously) are queued per
// destination and shipped as ONE call_batch() frame.  Contiguous block-write
// runs of the same (file, stream) are merged in place, so a streaming writer
// sends one envelope with one long run instead of hundreds.
//
// Semantics:
//   * deferrable ops return success immediately; a later failure is held
//     sticky and surfaced by the next flush() or barrier;
//   * non-deferrable ops are barriers: all queues flush first (preserving
//     order), any sticky error surfaces as the barrier's result;
//   * queues flush on their own once a destination holds watermark_bytes or
//     max_queue_msgs envelopes (backpressure).
//
// Decorates any inner transport; cost accounting stays with the inner one.
#pragma once

#include <map>
#include <mutex>

#include "obs/attrib.hpp"
#include "rpc/transport.hpp"

namespace mif::rpc {

struct BatchingConfig {
  /// Flush a destination queue once its buffered wire bytes reach this.
  u64 watermark_bytes{4ull << 20};
  /// Flush once this many distinct envelopes are queued for one target.
  std::size_t max_queue_msgs{512};
};

struct BatchingStats {
  u64 queued{0};            // deferrable envelopes accepted
  u64 coalesced_runs{0};    // block-write runs merged into a previous run
  u64 folded_lists{0};      // multi-run block writes shipped as list envelopes
  u64 wire_messages{0};     // frames pushed to the inner transport
  u64 flushes{0};           // explicit flush() calls
  u64 watermark_flushes{0}; // queue-full backpressure flushes
  u64 barrier_flushes{0};   // flushes forced by a non-deferrable op
  u64 deferred_errors{0};   // errors produced by deferred envelopes
};

class BatchingTransport final : public Transport {
 public:
  explicit BatchingTransport(Transport& inner, BatchingConfig cfg = {});
  ~BatchingTransport() override;  // best-effort flush of leftovers

  Result<Response> call(const Address& to, const Request& req) override;
  Ticket call_async(const Address& to, const Request& req) override;
  CompletionQueue& completions() override { return inner_.completions(); }
  Status call_batch(const Address& to, std::vector<Request> reqs) override;
  Status flush() override;

  void set_spans(obs::SpanCollector* spans) override {
    inner_.set_spans(spans);
  }
  void set_attribution(obs::Attribution* attrib) override {
    attrib_ = attrib;
    inner_.set_attribution(attrib);
  }
  void export_metrics(obs::MetricsRegistry& reg,
                      std::string_view prefix) const override;

  BatchingStats stats() const {
    std::lock_guard lock(mu_);
    return stats_;
  }
  /// Buffered wire bytes across all destination queues.
  u64 pending_bytes() const;

 private:
  struct Queue {
    Address addr;
    std::vector<Request> reqs;
    /// Parallel per-envelope principal tags (only filled while attribution
    /// is attached).  A coalesced run keeps its tail envelope's tag — same
    /// (file, stream) means same client, so nothing is misattributed.  The
    /// flush hands these to the inner transport as the frame's principals.
    std::vector<obs::Principal> principals;
    u64 bytes{0};
  };
  static u64 key(const Address& a) {
    return (static_cast<u64>(a.kind) << 32) | a.index;
  }
  /// Try to merge a block write into the queue's pending tail envelope.
  bool coalesce_locked(Queue& q, const BlockWriteRequest& w);
  Status flush_queue_locked(Queue& q);
  void flush_all_locked();
  Status take_sticky_locked();

  Transport& inner_;
  BatchingConfig cfg_;
  obs::Attribution* attrib_{nullptr};
  mutable std::mutex mu_;
  std::map<u64, Queue> queues_;
  Status sticky_{};
  BatchingStats stats_;
};

}  // namespace mif::rpc
