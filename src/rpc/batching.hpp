// BatchingTransport: coalesce deferrable envelopes into single wire frames.
//
// Historically this class owned the staging queues itself; frame formation
// is now a first-class layer (src/rpc/formation.hpp) and BatchingTransport
// is a compatibility adapter over a FormationTransport engine running in
// legacy mode: unbounded frames (one per destination flush) reproduce the
// old coalesce-on-watermark behavior exactly, and metrics keep the
// historical batch.* keys.  The public surface — BatchingConfig,
// BatchingStats, semantics — is unchanged:
//
//   * deferrable ops return success immediately; a later failure is held
//     sticky and surfaced by the next flush() or barrier;
//   * non-deferrable ops are barriers: all queues flush first (preserving
//     order), any sticky error surfaces as the barrier's result;
//   * queues flush on their own once a destination holds watermark_bytes or
//     max_queue_msgs envelopes (backpressure).
//
// Decorates any inner transport; cost accounting stays with the inner one.
#pragma once

#include "rpc/formation.hpp"
#include "rpc/transport.hpp"

namespace mif::rpc {

struct BatchingConfig {
  /// Flush a destination queue once its buffered wire bytes reach this.
  u64 watermark_bytes{4ull << 20};
  /// Flush once this many distinct envelopes are queued for one target.
  std::size_t max_queue_msgs{512};
};

struct BatchingStats {
  u64 queued{0};            // deferrable envelopes accepted
  u64 coalesced_runs{0};    // block-write runs merged into a previous run
  u64 folded_lists{0};      // multi-run block writes shipped as list envelopes
  u64 wire_messages{0};     // frames pushed to the inner transport
  u64 flushes{0};           // explicit flush() calls
  u64 watermark_flushes{0}; // queue-full backpressure flushes
  u64 barrier_flushes{0};   // flushes forced by a non-deferrable op
  u64 deferred_errors{0};   // errors produced by deferred envelopes
  u64 dropped_errors{0};    // sticky errors the destructor had to discard
};

class BatchingTransport final : public Transport {
 public:
  explicit BatchingTransport(Transport& inner, BatchingConfig cfg = {});

  Result<Response> call(const Address& to, const Request& req) override {
    return engine_.call(to, req);
  }
  Ticket call_async(const Address& to, const Request& req) override {
    return engine_.call_async(to, req);
  }
  CompletionQueue& completions() override { return inner_.completions(); }
  Status call_batch(const Address& to, std::vector<Request> reqs) override {
    return engine_.call_batch(to, std::move(reqs));
  }
  Status flush() override { return engine_.flush(); }
  void pump() override { engine_.pump(); }

  void set_spans(obs::SpanCollector* spans) override {
    engine_.set_spans(spans);
  }
  void set_attribution(obs::Attribution* attrib) override {
    engine_.set_attribution(attrib);
  }
  void export_metrics(obs::MetricsRegistry& reg,
                      std::string_view prefix) const override;

  BatchingStats stats() const;
  /// Buffered wire bytes across all destination queues.
  u64 pending_bytes() const { return engine_.pending_bytes(); }

 private:
  Transport& inner_;
  FormationTransport engine_;
};

}  // namespace mif::rpc
