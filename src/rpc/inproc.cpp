#include "rpc/inproc.hpp"

#include <optional>

#include "mds/mds.hpp"
#include "obs/attrib.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"
#include "osd/storage_target.hpp"

namespace mif::rpc {

namespace {

Result<Response> dispatch_mds(mds::Mds& m, const Request& req) {
  return std::visit(
      [&](const auto& r) -> Result<Response> {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, MkdirRequest>) {
          auto ino = m.mkdir(r.path);
          if (!ino) return ino.error();
          return Response{InodeResponse{*ino}};
        } else if constexpr (std::is_same_v<T, CreateRequest>) {
          auto ino = m.create(r.path);
          if (!ino) return ino.error();
          return Response{InodeResponse{*ino}};
        } else if constexpr (std::is_same_v<T, StatRequest>) {
          if (Status s = m.stat(r.path); !s) return s.error();
          return Response{VoidResponse{}};
        } else if constexpr (std::is_same_v<T, UtimeRequest>) {
          if (Status s = m.utime(r.path); !s) return s.error();
          return Response{VoidResponse{}};
        } else if constexpr (std::is_same_v<T, UnlinkRequest>) {
          if (Status s = m.unlink(r.path); !s) return s.error();
          return Response{VoidResponse{}};
        } else if constexpr (std::is_same_v<T, RenameRequest>) {
          auto ino = m.rename(r.from, r.to);
          if (!ino) return ino.error();
          return Response{InodeResponse{*ino}};
        } else if constexpr (std::is_same_v<T, ResolveRequest>) {
          // Revalidation of a client-cached handle: namespace lookup only,
          // no RPC/network accounting (traits(kResolve).free).
          auto ino = m.fs().resolve(r.path);
          if (!ino) return ino.error();
          return Response{InodeResponse{*ino}};
        } else if constexpr (std::is_same_v<T, OpenGetLayoutRequest>) {
          auto res = m.open_getlayout(r.path);
          if (!res) return res.error();
          return Response{OpenGetLayoutResponse{res->ino, res->extent_count}};
        } else if constexpr (std::is_same_v<T, ReaddirRequest>) {
          auto entries = m.readdir(r.path);
          if (!entries) return entries.error();
          return Response{ReaddirResponse{std::move(*entries), false}};
        } else if constexpr (std::is_same_v<T, ReaddirPlusRequest>) {
          auto entries = m.readdir_stats(r.path);
          if (!entries) return entries.error();
          return Response{ReaddirResponse{std::move(*entries), true}};
        } else if constexpr (std::is_same_v<T, ReportExtentsRequest>) {
          if (Status s = m.report_extents(r.ino, r.extent_count); !s)
            return s.error();
          return Response{VoidResponse{}};
        } else {
          return Errc::kInvalid;  // data op addressed to an MDS
        }
      },
      req);
}

Result<Response> dispatch_osd(osd::StorageTarget& t, const Request& req) {
  return std::visit(
      [&](const auto& r) -> Result<Response> {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, BlockWriteRequest>) {
          if (Status s = t.write_runs(r.ino, r.stream, r.runs); !s)
            return s.error();
          return Response{VoidResponse{}};
        } else if constexpr (std::is_same_v<T, BlockReadRequest>) {
          if (Status s = t.read_runs(r.ino, r.runs); !s) return s.error();
          return Response{BlockDataResponse{r.blocks()}};
        } else if constexpr (std::is_same_v<T, WriteListRequest>) {
          // One server pass over the whole run list (PVFS list I/O).
          if (Status s = t.write_runs(r.ino, r.stream, r.runs); !s)
            return s.error();
          return Response{VoidResponse{}};
        } else if constexpr (std::is_same_v<T, ReadListRequest>) {
          if (Status s = t.read_runs(r.ino, r.runs); !s) return s.error();
          return Response{BlockDataResponse{r.blocks()}};
        } else if constexpr (std::is_same_v<T, WriteStridedRequest>) {
          // The server expands the (count, stride, block_len) datatype.
          if (Status s = t.write_runs(r.ino, r.stream, r.runs()); !s)
            return s.error();
          return Response{VoidResponse{}};
        } else if constexpr (std::is_same_v<T, ReadStridedRequest>) {
          if (Status s = t.read_runs(r.ino, r.runs()); !s) return s.error();
          return Response{BlockDataResponse{r.blocks()}};
        } else if constexpr (std::is_same_v<T, GetExtentsRequest>) {
          return Response{ExtentCountResponse{t.extent_count(r.ino)}};
        } else if constexpr (std::is_same_v<T, PreallocateRequest>) {
          if (Status s = t.preallocate(r.ino, r.total_blocks); !s)
            return s.error();
          return Response{VoidResponse{}};
        } else if constexpr (std::is_same_v<T, CloseFileRequest>) {
          t.close_file(r.ino);
          return Response{VoidResponse{}};
        } else if constexpr (std::is_same_v<T, DeleteFileRequest>) {
          t.delete_file(r.ino);
          return Response{VoidResponse{}};
        } else {
          return Errc::kInvalid;  // metadata op addressed to a target
        }
      },
      req);
}

}  // namespace

InprocTransport::InprocTransport(Endpoints eps, sim::NetworkConfig meta_net,
                                 sim::NetworkConfig data_net)
    : eps_(std::move(eps)), meta_net_(meta_net), data_net_(data_net) {}

double InprocTransport::charge(Address::Kind kind, u64 bytes) {
  const bool meta = kind == Address::Kind::kMds;
  std::lock_guard lock(net_mu_);
  const double cost = (meta ? meta_net_ : data_net_).rpc(bytes);
  // With attribution on, each network exchange also becomes a sim span on a
  // cumulative per-network clock (critical-path "network" segment).
  if (attrib_ && spans_) {
    if (!net_ns_set_) {
      net_ns_ = spans_->reserve_track_namespace();
      net_ns_set_ = true;
    }
    double& clock = net_clock_[meta ? 0 : 1];
    spans_->record_sim("net.exchange", obs::make_track(net_ns_, meta ? 0 : 1),
                       clock, cost, spans_->ambient(), bytes);
    clock += cost;
  }
  return cost;
}

Result<Response> InprocTransport::dispatch(const Address& to,
                                           const Request& req) {
  const OpTraits& tr = traits(op_of(req));
  if (tr.meta != (to.kind == Address::Kind::kMds)) return Errc::kInvalid;
  if (tr.meta) {
    if (to.index >= eps_.mds.size()) return Errc::kInvalid;
    mds::Mds& m = *eps_.mds[to.index];
    // Count the RPC on the server before handling, so failed requests load
    // the MDS too (they were decoded and dispatched).
    if (!tr.free) m.account_rpc();
    return dispatch_mds(m, req);
  }
  if (to.index >= eps_.osds.size()) return Errc::kInvalid;
  return dispatch_osd(*eps_.osds[to.index], req);
}

Result<Response> InprocTransport::call(const Address& to, const Request& req) {
  const Op op = op_of(req);
  const OpTraits& tr = traits(op);
  PerOp& po = ops_[static_cast<std::size_t>(op)];
  const u64 wire = wire_bytes(req);
  obs::ScopedSpan span(spans_, tr.span, to.index, wire);

  double cost_ms = 0.0;
  if (!tr.free) cost_ms = charge(to.kind, wire);
  Result<Response> resp = dispatch(to, req);
  po.count.fetch_add(1, std::memory_order_relaxed);
  u64 bytes = tr.free ? 0 : wire;
  if (resp) {
    if (const u64 bulk = tr.free ? 0 : bulk_bytes(*resp); bulk > 0) {
      cost_ms += charge(to.kind, bulk);
      bytes += bulk;
    }
  } else {
    po.errors.fetch_add(1, std::memory_order_relaxed);
  }
  po.bytes.fetch_add(bytes, std::memory_order_relaxed);
  po.latency_us.add(static_cast<u64>(cost_ms * 1000.0));
  if (attrib_) {
    const obs::Principal p = obs::ambient_principal();
    attrib_->count_rpc(p);
    if (cost_ms > 0.0 || bytes > 0) attrib_->charge_net(p, cost_ms, bytes);
  }
  return resp;
}

Status InprocTransport::call_batch(const Address& to,
                                   std::vector<Request> reqs) {
  if (reqs.empty()) return {};
  // A flushed frame carries its contributors' principals (BatchingTransport
  // runs the flush on whatever thread tripped the watermark — the ambient
  // there is the flusher, not the contributors).
  const auto [fp, fp_n] = obs::frame_principals();
  const bool tagged = attrib_ && fp != nullptr && fp_n == reqs.size();
  if (reqs.size() == 1) {
    std::optional<obs::ScopedPrincipal> tag;
    if (tagged) tag.emplace(fp[0]);
    Result<Response> r = call(to, reqs.front());
    return r ? Status{} : Status{r.error()};
  }
  // One wire frame: a single shared header plus every envelope's body (and
  // data payload).  This — not the dispatch below — is what batching buys.
  u64 frame = kHeaderBytes;
  for (const Request& r : reqs) frame += wire_bytes(r) - kHeaderBytes;
  obs::ScopedSpan span(spans_, "rpc.batch", to.index, reqs.size());
  double cost_ms = charge(to.kind, frame);

  // Frame-cost split, pro-rata by bytes: contributor i owns its own body
  // (the first also carries the shared header), so the byte shares sum to
  // the frame exactly; ms shares are byte-weighted, last takes the
  // remainder so they sum to the charge exactly.
  std::vector<u64> share_bytes;
  std::vector<double> share_ms;
  if (attrib_) {
    share_bytes.resize(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i)
      share_bytes[i] = wire_bytes(reqs[i]) - kHeaderBytes;
    share_bytes[0] += kHeaderBytes;
    share_ms.resize(reqs.size());
    double left = cost_ms;
    for (std::size_t i = 0; i + 1 < reqs.size(); ++i) {
      share_ms[i] = cost_ms * static_cast<double>(share_bytes[i]) /
                    static_cast<double>(frame);
      left -= share_ms[i];
    }
    share_ms.back() = left;
  }

  Status first{};
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Request& r = reqs[i];
    const Op op = op_of(r);
    PerOp& po = ops_[static_cast<std::size_t>(op)];
    // Dispatch under the contributor's identity so MDS handler time and
    // disk-scheduler submits attribute to whoever enqueued the envelope.
    const obs::Principal p =
        tagged ? fp[i] : (attrib_ ? obs::ambient_principal() : obs::Principal{});
    std::optional<obs::ScopedPrincipal> tag;
    if (tagged) tag.emplace(p);
    Result<Response> resp = dispatch(to, r);
    po.count.fetch_add(1, std::memory_order_relaxed);
    u64 bytes = wire_bytes(r);
    double env_ms = attrib_ ? share_ms[i] : 0.0;
    u64 env_bytes = attrib_ ? share_bytes[i] : 0;
    if (resp) {
      if (const u64 bulk = bulk_bytes(*resp); bulk > 0) {
        const double bulk_ms = charge(to.kind, bulk);
        cost_ms += bulk_ms;
        bytes += bulk;
        env_ms += bulk_ms;
        env_bytes += bulk;
      }
    } else {
      po.errors.fetch_add(1, std::memory_order_relaxed);
      if (first.ok()) first = resp.error();
    }
    po.bytes.fetch_add(bytes, std::memory_order_relaxed);
    if (attrib_) {
      attrib_->count_rpc(p);
      attrib_->charge_net(p, env_ms, env_bytes);
    }
  }
  // Every batched envelope experienced the frame's exchange latency.
  const u64 us = static_cast<u64>(cost_ms * 1000.0);
  for (const Request& r : reqs) {
    ops_[static_cast<std::size_t>(op_of(r))].latency_us.add(us);
  }
  return first;
}

InprocTransport::OpCounters InprocTransport::op_counters(Op op) const {
  const PerOp& po = ops_[static_cast<std::size_t>(op)];
  return {po.count.load(std::memory_order_relaxed),
          po.bytes.load(std::memory_order_relaxed),
          po.errors.load(std::memory_order_relaxed)};
}

void InprocTransport::export_metrics(obs::MetricsRegistry& reg,
                                     std::string_view prefix) const {
  u64 meta_count = 0, meta_bytes = 0, data_count = 0, data_bytes = 0;
  for (std::size_t i = 0; i < kOpCount; ++i) {
    const Op op = static_cast<Op>(i);
    const OpTraits& tr = traits(op);
    const PerOp& po = ops_[i];
    const u64 count = po.count.load(std::memory_order_relaxed);
    const u64 bytes = po.bytes.load(std::memory_order_relaxed);
    const u64 errors = po.errors.load(std::memory_order_relaxed);
    (tr.meta ? meta_count : data_count) += count;
    (tr.meta ? meta_bytes : data_bytes) += bytes;
    if (count == 0 && errors == 0) continue;  // keep exports sparse
    const std::string base = obs::join_key(prefix, tr.name);
    reg.counter(obs::join_key(base, "count")).inc(count);
    reg.counter(obs::join_key(base, "bytes")).inc(bytes);
    if (errors > 0) reg.counter(obs::join_key(base, "errors")).inc(errors);
    reg.histogram(obs::join_key(base, "latency_us"))
        .merge_from(po.latency_us.snapshot());
  }
  reg.counter(obs::join_key(prefix, "meta.count")).inc(meta_count);
  reg.counter(obs::join_key(prefix, "meta.bytes")).inc(meta_bytes);
  reg.counter(obs::join_key(prefix, "data.count")).inc(data_count);
  reg.counter(obs::join_key(prefix, "data.bytes")).inc(data_bytes);
  {
    std::lock_guard lock(net_mu_);
    obs::publish(reg, obs::join_key(prefix, "net.meta"), meta_net_.stats());
    obs::publish(reg, obs::join_key(prefix, "net.data"), data_net_.stats());
  }
}

}  // namespace mif::rpc
