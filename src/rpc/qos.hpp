// QosTransport: per-client token-bucket admission control for the data path.
//
// PR 7 built the measurement half of the noisy-neighbour story (per-principal
// attribution, Jain's fairness, micro_antagonist); this layer is the
// enforcement half.  Every deferrable data envelope is metered against its
// issuing client's token bucket (identity = obs::Principal, the same tag the
// attribution ledger charges): within rate, the envelope is admitted to the
// inner transport immediately; over rate, it parks in a per-client backlog
// and returns a deferred ack (batching semantics — a later failure is held
// sticky and surfaces at the next barrier or flush).  Buckets refill on the
// cluster's simulated clock, and backlogged clients drain in weighted
// round-robin whenever tokens come back, so one hot streamer is capped at
// its configured rate while everyone else's small envelopes sail through.
//
// Barriers stay correct but narrow: a non-deferrable op force-releases only
// the backlogged envelopes of the SAME inode (a read must see that file's
// queued writes; it must NOT flush an unrelated client's backlog — that
// would hand the antagonist a bypass).  flush() releases everything — the
// drain-on-unmount path.
//
// Placement: above the formation/batching layer, below fault/shard —
//   Sharded( Fault( Qos( Formation( Async( Inproc )))))
// so a throttled envelope never reaches a staging queue or the pipeline
// until its tokens are available.  Built only when QosConfig::enabled, so
// the default chain is untouched (byte-identical figures).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <mutex>

#include "obs/attrib.hpp"
#include "obs/metrics.hpp"
#include "rpc/transport.hpp"

namespace mif::rpc {

/// One client's token bucket: `tokens` bytes available, refilled at
/// `rate_bytes_per_ms` on the simulated clock, capped at `burst_bytes`.
/// Starts full — a client's first burst up to the cap is never throttled.
/// Deterministic: refill is a pure function of the clock delta.
class TokenBucket {
 public:
  TokenBucket(double rate_bytes_per_ms, u64 burst_bytes)
      : rate_(rate_bytes_per_ms),
        burst_(static_cast<double>(burst_bytes)),
        tokens_(static_cast<double>(burst_bytes)) {}

  /// Credit rate * elapsed since the last refill, capped at the burst.  A
  /// clock that has not advanced (or went backwards) credits nothing.
  void refill(double now_ms) {
    if (now_ms > last_ms_) {
      tokens_ = std::min(burst_, tokens_ + rate_ * (now_ms - last_ms_));
      last_ms_ = now_ms;
    }
  }

  /// Take `bytes` tokens if available; false (and no change) otherwise.
  bool try_consume(u64 bytes) {
    const double b = static_cast<double>(bytes);
    if (tokens_ < b) return false;
    tokens_ -= b;
    return true;
  }

  double tokens() const { return tokens_; }
  double rate_bytes_per_ms() const { return rate_; }
  u64 burst_bytes() const { return static_cast<u64>(burst_); }

 private:
  double rate_;
  double burst_;
  double tokens_;
  double last_ms_{0.0};
};

/// Per-client override of the default rate/burst/weight (0 = keep default).
struct QosClientOverride {
  u32 client{0};
  double rate_bytes_per_ms{0.0};
  u64 burst_bytes{0};
  u32 weight{0};
};

struct QosConfig {
  /// Build the QoS layer at all.  Off (default) keeps the chain byte-
  /// identical to a mount without QoS.
  bool enabled{false};
  /// Default per-client refill rate (simulated bytes per simulated ms).
  double rate_bytes_per_ms{512.0 * 1024.0};
  /// Default bucket capacity: the burst a client may issue from a standing
  /// start without throttling.
  u64 burst_bytes{1ull << 20};
  /// Default weighted-round-robin share for backlogged clients (envelopes
  /// released per scheduling visit).
  u32 default_weight{1};
  std::vector<QosClientOverride> overrides;
};

/// "" when `cfg` is mountable; otherwise a human-readable reason (the same
/// contract as obs::validate for the timeline Config).
std::string validate(const QosConfig& cfg);

struct QosStats {
  u64 admitted{0};        // metered envelopes forwarded within rate
  u64 throttled{0};       // metered envelopes parked in a backlog
  u64 released{0};        // backlogged envelopes admitted by refilled tokens
  u64 forced{0};          // backlogged envelopes force-released by a barrier
  u64 barriers{0};        // non-deferrable ops that scanned the backlog
  u64 flushes{0};         // explicit flush() calls
  u64 deferred_errors{0}; // errors produced by released envelopes
  u64 dropped_errors{0};  // sticky errors discarded by the destructor
  u64 backlog_peak{0};    // deepest total backlog observed (envelopes)
};

class QosTransport final : public Transport {
 public:
  QosTransport(Transport& inner, QosConfig cfg = {});
  ~QosTransport() override;  // best-effort release of leftovers

  Result<Response> call(const Address& to, const Request& req) override;
  Ticket call_async(const Address& to, const Request& req) override;
  CompletionQueue& completions() override { return inner_.completions(); }
  Status call_batch(const Address& to, std::vector<Request> reqs) override;
  Status flush() override;
  void pump() override;

  void set_spans(obs::SpanCollector* spans) override;
  void set_attribution(obs::Attribution* attrib) override {
    attrib_ = attrib;
    inner_.set_attribution(attrib);
  }
  void export_metrics(obs::MetricsRegistry& reg,
                      std::string_view prefix) const override;

  /// The simulated clock buckets refill against (typically the cluster-max
  /// target clock, wired by core::ParallelFileSystem at mount).  Without
  /// one the clock stays at 0: buckets never refill past their initial
  /// burst, which is exactly what a standalone unit test wants.
  void set_clock(std::function<double()> clock);

  QosStats stats() const;
  /// Backlogged envelopes / their wire bytes across all clients (timeline
  /// gauges).
  u64 backlog() const;
  u64 backlog_bytes() const;
  /// Tokens currently available to `client` (tests; -1 for unknown client
  /// before its first metered envelope).
  double tokens(u32 client) const;

 private:
  struct Parked {
    Address to;
    Request req;
    obs::Principal principal;
    u64 bytes{0};
    double enqueue_ms{0.0};
  };
  struct Lane {
    TokenBucket bucket;
    u32 weight{1};
    std::deque<Parked> backlog;
  };

  /// Deferrable, non-metadata, issued by a real client: the envelopes the
  /// scheduler meters.  System/background work is never throttled.
  static bool meterable(const OpTraits& tr, const obs::Principal& p) {
    return tr.deferrable && !tr.meta && !p.system();
  }

  double now_locked() const { return clock_ ? clock_() : 0.0; }
  Lane& lane_locked(u32 client);
  /// Refill every bucket and release backlogged envelopes in weighted
  /// round-robin while tokens allow.
  void pump_locked(double now_ms);
  /// Dispatch one parked envelope under its owner's principal; errors go
  /// sticky.
  void release_locked(Parked&& p, bool forced);
  /// Barrier scope: force-release every parked envelope of `ino` (any
  /// client, any destination) so the non-deferrable op observes them.
  void release_ino_locked(InodeNo ino);
  void release_all_locked();
  Status take_sticky_locked();
  void note_backlog_locked();

  Transport& inner_;
  QosConfig cfg_;
  obs::Attribution* attrib_{nullptr};
  obs::SpanCollector* spans_{nullptr};
  u32 track_ns_{0};
  std::function<double()> clock_;
  mutable std::mutex mu_;
  std::map<u32, Lane> lanes_;  // keyed by client id (deterministic order)
  u64 rr_cursor_{0};           // last-served position in the WRR cycle
  u64 backlog_count_{0};
  u64 backlog_bytes_{0};
  Status sticky_{};
  QosStats stats_;
  obs::Stat wait_ms_;  // backlog residency of released envelopes
};

}  // namespace mif::rpc
