#include "rpc/batching.hpp"

#include "obs/export.hpp"

namespace mif::rpc {

namespace {
FormationConfig legacy_config(const BatchingConfig& cfg) {
  FormationConfig f;
  // Unbounded frames: one frame per destination flush, exactly the old
  // coalesce-on-watermark behavior (and its stats), byte for byte.
  f.max_frame_bytes = ~0ull;
  f.watermark_bytes = cfg.watermark_bytes;
  f.max_queue_msgs = cfg.max_queue_msgs;
  f.legacy = true;
  return f;
}
}  // namespace

BatchingTransport::BatchingTransport(Transport& inner, BatchingConfig cfg)
    : inner_(inner), engine_(inner, legacy_config(cfg)) {}

BatchingStats BatchingTransport::stats() const {
  const FormationStats f = engine_.stats();
  BatchingStats s;
  s.queued = f.queued;
  s.coalesced_runs = f.coalesced_runs;
  s.folded_lists = f.folded_lists;
  s.wire_messages = f.wire_messages;
  s.flushes = f.flushes;
  s.watermark_flushes = f.watermark_flushes;
  s.barrier_flushes = f.barrier_flushes;
  s.deferred_errors = f.deferred_errors;
  s.dropped_errors = f.dropped_errors;
  return s;
}

void BatchingTransport::export_metrics(obs::MetricsRegistry& reg,
                                       std::string_view prefix) const {
  // Straight to the inner transport — the engine's formation.* keys must not
  // leak into a legacy batching mount.
  inner_.export_metrics(reg, prefix);
  const BatchingStats s = stats();
  const std::string base = obs::join_key(prefix, "batch");
  reg.counter(obs::join_key(base, "queued")).inc(s.queued);
  reg.counter(obs::join_key(base, "coalesced_runs")).inc(s.coalesced_runs);
  reg.counter(obs::join_key(base, "folded_lists")).inc(s.folded_lists);
  reg.counter(obs::join_key(base, "wire_messages")).inc(s.wire_messages);
  reg.counter(obs::join_key(base, "flushes")).inc(s.flushes);
  reg.counter(obs::join_key(base, "watermark_flushes"))
      .inc(s.watermark_flushes);
  reg.counter(obs::join_key(base, "barrier_flushes")).inc(s.barrier_flushes);
  reg.counter(obs::join_key(base, "deferred_errors")).inc(s.deferred_errors);
  reg.counter(obs::join_key(base, "dropped_errors")).inc(s.dropped_errors);
}

}  // namespace mif::rpc
