#include "rpc/batching.hpp"

#include <optional>

#include "obs/export.hpp"

namespace mif::rpc {

BatchingTransport::BatchingTransport(Transport& inner, BatchingConfig cfg)
    : inner_(inner), cfg_(cfg) {}

BatchingTransport::~BatchingTransport() {
  // Leftovers a caller never flushed still have to reach the servers; their
  // errors have nowhere to go at this point.
  std::lock_guard lock(mu_);
  flush_all_locked();
}

bool BatchingTransport::coalesce_locked(Queue& q, const BlockWriteRequest& w) {
  if (q.reqs.empty()) return false;
  auto* tail = std::get_if<BlockWriteRequest>(&q.reqs.back());
  if (!tail || tail->ino != w.ino || tail->stream != w.stream) return false;
  for (const BlockRun& run : w.runs) {
    if (util::append_run(tail->runs, run)) ++stats_.coalesced_runs;
  }
  return true;
}

Status BatchingTransport::flush_queue_locked(Queue& q) {
  if (q.reqs.empty()) return {};
  ++stats_.wire_messages;
  // Adjacent per-block writes that coalesced into a noncontiguous run set
  // ship as ONE list envelope instead of a run-split block write: the server
  // executes the whole set in a single pass.  Single-run writes stay block
  // writes (same wire bytes either way — the two bodies are byte-identical).
  for (Request& r : q.reqs) {
    auto* w = std::get_if<BlockWriteRequest>(&r);
    if (!w || w->runs.size() <= 1) continue;
    WriteListRequest l;
    l.ino = w->ino;
    l.stream = w->stream;
    l.runs = std::move(w->runs);
    r = std::move(l);
    ++stats_.folded_lists;
  }
  Status s;
  {
    // The flush runs on whatever thread tripped the watermark/barrier, so
    // its ambient principal is NOT the contributors'.  Publish the queue's
    // per-envelope tags for the inner transport's pro-rata frame split.
    std::optional<obs::ScopedFramePrincipals> frame;
    if (attrib_ && q.principals.size() == q.reqs.size())
      frame.emplace(q.principals.data(), q.principals.size());
    s = inner_.call_batch(q.addr, std::move(q.reqs));
  }
  q.reqs.clear();
  q.principals.clear();
  q.bytes = 0;
  if (!s) {
    ++stats_.deferred_errors;
    if (sticky_.ok()) sticky_ = s;
  }
  return s;
}

void BatchingTransport::flush_all_locked() {
  for (auto& [k, q] : queues_) (void)flush_queue_locked(q);
  queues_.clear();
}

Status BatchingTransport::take_sticky_locked() {
  Status s = sticky_;
  sticky_ = {};
  return s;
}

Result<Response> BatchingTransport::call(const Address& to,
                                         const Request& req) {
  const OpTraits& tr = traits(op_of(req));
  if (tr.deferrable) {
    std::lock_guard lock(mu_);
    Queue& q = queues_[key(to)];
    q.addr = to;
    ++stats_.queued;
    const auto* w = std::get_if<BlockWriteRequest>(&req);
    if (w && coalesce_locked(q, *w)) {
      // Only the merged body rides in the tail envelope's frame share.
      q.bytes += wire_bytes(req) - kHeaderBytes;
    } else {
      q.bytes += wire_bytes(req);
      q.reqs.push_back(req);
      if (attrib_) q.principals.push_back(obs::ambient_principal());
    }
    if (q.bytes >= cfg_.watermark_bytes ||
        q.reqs.size() >= cfg_.max_queue_msgs) {
      ++stats_.watermark_flushes;
      (void)flush_queue_locked(q);
    }
    return Response{VoidResponse{}};  // deferred ack
  }

  // Non-deferrable: a barrier.  Everything queued anywhere must be on the
  // servers before this op runs (a read must see queued writes, an unlink
  // must follow queued utimes), and a deferred failure surfaces here.
  {
    std::lock_guard lock(mu_);
    if (!queues_.empty()) {
      ++stats_.barrier_flushes;
      flush_all_locked();
    }
    if (Status s = take_sticky_locked(); !s) return s.error();
  }
  return inner_.call(to, req);
}

Ticket BatchingTransport::call_async(const Address& to, const Request& req) {
  // Same split as call(): deferrable envelopes join their destination queue
  // and the ticket is an immediate ack (a deferred failure stays sticky for
  // the next barrier); non-deferrable envelopes are barriers and the issue
  // itself flows to the inner transport's async path.
  const OpTraits& tr = traits(op_of(req));
  if (tr.deferrable) {
    Result<Response> ack = call(to, req);  // enqueue + early ack
    return completions().admit(to, op_of(req), std::move(ack));
  }
  {
    std::lock_guard lock(mu_);
    if (!queues_.empty()) {
      ++stats_.barrier_flushes;
      flush_all_locked();
    }
    if (Status s = take_sticky_locked(); !s)
      return completions().admit(to, op_of(req), s.error());
  }
  return inner_.call_async(to, req);
}

Status BatchingTransport::call_batch(const Address& to,
                                     std::vector<Request> reqs) {
  std::lock_guard lock(mu_);
  if (!queues_.empty()) {
    ++stats_.barrier_flushes;
    flush_all_locked();
  }
  if (Status s = take_sticky_locked(); !s) return s;
  ++stats_.wire_messages;
  return inner_.call_batch(to, std::move(reqs));
}

Status BatchingTransport::flush() {
  Status mine;
  {
    std::lock_guard lock(mu_);
    ++stats_.flushes;
    flush_all_locked();
    mine = take_sticky_locked();
  }
  Status inner = inner_.flush();
  return mine.ok() ? inner : mine;
}

u64 BatchingTransport::pending_bytes() const {
  std::lock_guard lock(mu_);
  u64 total = 0;
  for (const auto& [k, q] : queues_) total += q.bytes;
  return total;
}

void BatchingTransport::export_metrics(obs::MetricsRegistry& reg,
                                       std::string_view prefix) const {
  inner_.export_metrics(reg, prefix);
  const BatchingStats s = stats();
  const std::string base = obs::join_key(prefix, "batch");
  reg.counter(obs::join_key(base, "queued")).inc(s.queued);
  reg.counter(obs::join_key(base, "coalesced_runs")).inc(s.coalesced_runs);
  reg.counter(obs::join_key(base, "folded_lists")).inc(s.folded_lists);
  reg.counter(obs::join_key(base, "wire_messages")).inc(s.wire_messages);
  reg.counter(obs::join_key(base, "flushes")).inc(s.flushes);
  reg.counter(obs::join_key(base, "watermark_flushes"))
      .inc(s.watermark_flushes);
  reg.counter(obs::join_key(base, "barrier_flushes")).inc(s.barrier_flushes);
  reg.counter(obs::join_key(base, "deferred_errors")).inc(s.deferred_errors);
}

}  // namespace mif::rpc
