// Transport — the single seam every cross-node call passes through.
//
// A Transport takes (Address, Request) and produces a Response.  All network
// charging, rpc.* metrics and rpc.<op> span phases live behind this
// interface, so swapping the implementation (batching, async, a real socket)
// changes cost and concurrency without touching client, MDS or OSD code.
//
// Implementations compose as decorators:
//
//   FaultTransport( BatchingTransport( InprocTransport ) )
//
// with InprocTransport always innermost (it owns dispatch + charging) and
// FaultTransport outermost (faults hit before any queueing, like a NIC).
#pragma once

#include <string_view>
#include <vector>

#include "rpc/envelope.hpp"
#include "util/result.hpp"

namespace mif::mds {
class Mds;
}
namespace mif::osd {
class StorageTarget;
}
namespace mif::obs {
class MetricsRegistry;
class SpanCollector;
}  // namespace mif::obs

namespace mif::rpc {

/// The servers an in-process transport can deliver to.  Raw pointers: the
/// cluster (core::ParallelFileSystem or a test fixture) owns the servers and
/// outlives the transport.
struct Endpoints {
  std::vector<mds::Mds*> mds;
  std::vector<osd::StorageTarget*> osds;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Deliver one envelope and wait for its response.
  virtual Result<Response> call(const Address& to, const Request& req) = 0;

  /// Deliver several envelopes to one destination as a single wire message.
  /// The default unrolls into individual calls; InprocTransport overrides it
  /// to charge one frame — that difference is the batching win.
  virtual Status call_batch(const Address& to, std::vector<Request> reqs) {
    for (const Request& r : reqs) {
      if (Result<Response> resp = call(to, r); !resp) return resp.error();
    }
    return {};
  }

  /// Push out anything a buffering implementation is holding.  Returns the
  /// first error any deferred envelope produced (sticky until reported).
  virtual Status flush() { return {}; }

  virtual void set_spans(obs::SpanCollector* spans) { (void)spans; }
  virtual void export_metrics(obs::MetricsRegistry& reg,
                              std::string_view prefix) const {
    (void)reg;
    (void)prefix;
  }
};

}  // namespace mif::rpc
