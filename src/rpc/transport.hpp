// Transport — the single seam every cross-node call passes through.
//
// A Transport takes (Address, Request) and produces a Response.  All network
// charging, rpc.* metrics and rpc.<op> span phases live behind this
// interface, so swapping the implementation (batching, async, a real socket)
// changes cost and concurrency without touching client, MDS or OSD code.
//
// Implementations compose as decorators:
//
//   FaultTransport( BatchingTransport( AsyncTransport( InprocTransport )))
//
// with InprocTransport always innermost (it owns dispatch + charging) and
// FaultTransport outermost (faults hit before any queueing, like a NIC).
//
// Two call shapes share the seam:
//
//   * call()        — synchronous request/response, used by metadata ops;
//   * call_async()  — issue an envelope and get a Ticket back; its
//                     Result<Response> retires later through the chain's
//                     CompletionQueue.  The data path (striped block I/O)
//                     issues many tickets and drains them, so an async
//                     implementation can keep a window of requests in
//                     flight across the storage targets.
//
// The base class provides a correct-by-default sync fallback: call_async()
// performs the call immediately and admits an already-completed ticket, so
// every existing transport composes without knowing about tickets.  Each
// decorator forwards completions() to its inner transport — ONE queue per
// chain, owned by the innermost transport that actually defers completion.
#pragma once

#include <deque>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "rpc/envelope.hpp"
#include "util/result.hpp"

namespace mif::mds {
class Mds;
}
namespace mif::osd {
class StorageTarget;
}
namespace mif::obs {
class Attribution;
class MetricsRegistry;
class SpanCollector;
}  // namespace mif::obs

namespace mif::rpc {

/// The servers an in-process transport can deliver to.  Raw pointers: the
/// cluster (core::ParallelFileSystem or a test fixture) owns the servers and
/// outlives the transport.
struct Endpoints {
  std::vector<mds::Mds*> mds;
  std::vector<osd::StorageTarget*> osds;
};

/// Handle to one in-flight envelope.  Its Result<Response> is claimed from
/// the chain's CompletionQueue (wait/try_take); id 0 = invalid.
struct Ticket {
  u64 id{0};
  Address to{};
  Op op{Op::kMkdir};
  bool valid() const { return id != 0; }
};

/// One retired envelope: the ticket plus its result and the simulated time
/// (ms on the transport's pipeline timeline) at which it completed.
struct Completion {
  Ticket ticket;
  Result<Response> result{Errc::kInvalid};
  double done_ms{0.0};
};

/// The chain's completion side: every call_async() admits a ticket here and
/// callers retire tickets out of it.
///
/// Ordering semantics (exercised by rpc_async_test):
///   * retirement order is modeled-completion order (done_ms, then admit
///     sequence) — envelopes to DISTINCT destinations may retire out of
///     issue order when a later, cheaper exchange completes first;
///   * envelopes to ONE destination always retire FIFO: the transport's
///     per-destination channel clocks are monotonic, so a destination's
///     done_ms never reorders against its issue order.
///
/// poll() only surfaces tickets whose modeled completion lies at or before
/// the issue clock (what a non-blocking client would see); wait()/wait_all()
/// block the modeled timeline forward and retire regardless.
///
/// Thread-safety: one mutex; concurrent clients admit and retire their own
/// tickets by id without observing each other's results.
class CompletionQueue {
 public:
  /// Admit a ticket.  `done_ms` < 0 ⇒ completed-at-issue (sync fallback);
  /// otherwise the ticket retires once the clock reaches done_ms.
  Ticket admit(const Address& to, Op op, Result<Response> result,
               double done_ms = -1.0);

  /// Advance the retirement horizon (the async transport's issue clock).
  void set_clock(double now_ms);

  /// Next ticket already complete at the current clock, oldest completion
  /// first; nullopt when everything still in flight is ahead of the clock.
  std::optional<Completion> poll();

  /// Non-blocking claim of one specific ticket: its result if it has
  /// completed by the current clock, nullopt otherwise (ticket stays).
  std::optional<Result<Response>> try_take(const Ticket& t);

  /// Claim one specific ticket, blocking the modeled timeline forward to
  /// its completion.  Unknown tickets (already claimed) return kInvalid.
  Result<Response> wait(const Ticket& t);

  /// Retire everything outstanding in completion order; returns the first
  /// error encountered (sticky until reported).  The drain-on-unmount path.
  Status wait_all();

  /// Tickets admitted but not yet retired.
  std::size_t in_flight() const;

 private:
  struct Entry {
    Ticket ticket;
    Result<Response> result{Errc::kInvalid};
    double done_ms{-1.0};
    u64 seq{0};
  };
  /// True when `e` retires no later than `f` (completion order).
  static bool before(const Entry& e, const Entry& f);

  mutable std::mutex mu_;
  u64 next_id_{1};
  u64 next_seq_{0};
  double clock_ms_{0.0};
  std::deque<Entry> entries_;  // admit order; scanned in completion order
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Deliver one envelope and wait for its response.
  virtual Result<Response> call(const Address& to, const Request& req) = 0;

  /// Issue one envelope without waiting; the Result<Response> retires
  /// through completions().  Default = sync fallback: perform the call now
  /// and admit an already-completed ticket, preserving synchronous
  /// semantics exactly.  Decorators forward to their inner transport so the
  /// deferring layer (AsyncTransport) sees every issue.
  virtual Ticket call_async(const Address& to, const Request& req) {
    return completions().admit(to, op_of(req), call(to, req));
  }

  /// The chain's single completion queue.  Decorators forward to the inner
  /// transport; the innermost (or the async decorator) owns the real one.
  virtual CompletionQueue& completions() { return cq_; }

  /// Deliver several envelopes to one destination as a single wire message.
  /// The default unrolls into individual calls; InprocTransport overrides it
  /// to charge one frame — that difference is the batching win.
  virtual Status call_batch(const Address& to, std::vector<Request> reqs) {
    for (const Request& r : reqs) {
      if (Result<Response> resp = call(to, r); !resp) return resp.error();
    }
    return {};
  }

  /// Push out anything a buffering implementation is holding.  Returns the
  /// first error any deferred envelope produced (sticky until reported).
  virtual Status flush() { return {}; }

  /// Give time-based layers a chance to act on clock progress (the QoS
  /// scheduler releases backlogged envelopes as its buckets refill) WITHOUT
  /// forcing anything out the way flush() does.  Decorators forward inward;
  /// the default is a no-op.  Called from client drain points.
  virtual void pump() {}

  virtual void set_spans(obs::SpanCollector* spans) { (void)spans; }

  /// Attach per-principal cost attribution (see obs/attrib.hpp).  Decorators
  /// keep a pointer for their own charges (stall, fault delay, frame
  /// splitting) and forward inward; with none attached the chain's cost
  /// accounting is unchanged.  nullptr detaches.
  virtual void set_attribution(obs::Attribution* attrib) { (void)attrib; }
  virtual void export_metrics(obs::MetricsRegistry& reg,
                              std::string_view prefix) const {
    (void)reg;
    (void)prefix;
  }

 private:
  CompletionQueue cq_;
};

}  // namespace mif::rpc
