#include "rpc/client.hpp"

namespace mif::rpc {

Result<InodeNo> Client::mkdir(std::string_view path) {
  auto r = expect<InodeResponse>(
      transport_->call(mds_, MkdirRequest{std::string(path)}));
  if (!r) return r.error();
  return r->ino;
}

Result<InodeNo> Client::create(std::string_view path) {
  auto r = expect<InodeResponse>(
      transport_->call(mds_, CreateRequest{std::string(path)}));
  if (!r) return r.error();
  return r->ino;
}

Status Client::stat(std::string_view path) {
  return to_status(transport_->call(mds_, StatRequest{std::string(path)}));
}

Status Client::utime(std::string_view path) {
  return to_status(transport_->call(mds_, UtimeRequest{std::string(path)}));
}

Status Client::unlink(std::string_view path) {
  return to_status(transport_->call(mds_, UnlinkRequest{std::string(path)}));
}

Result<InodeNo> Client::rename(std::string_view from, std::string_view to) {
  RenameRequest req;
  req.from = std::string(from);
  req.to = std::string(to);
  auto r = expect<InodeResponse>(transport_->call(mds_, std::move(req)));
  if (!r) return r.error();
  return r->ino;
}

Result<InodeNo> Client::resolve(std::string_view path) {
  auto r = expect<InodeResponse>(
      transport_->call(mds_, ResolveRequest{std::string(path)}));
  if (!r) return r.error();
  return r->ino;
}

Result<OpenGetLayoutResponse> Client::open_getlayout(std::string_view path) {
  return expect<OpenGetLayoutResponse>(
      transport_->call(mds_, OpenGetLayoutRequest{std::string(path)}));
}

Result<std::vector<mfs::DirEntry>> Client::readdir(std::string_view path) {
  auto r = expect<ReaddirResponse>(
      transport_->call(mds_, ReaddirRequest{std::string(path)}));
  if (!r) return r.error();
  return std::move(r->entries);
}

Result<std::vector<mfs::DirEntry>> Client::readdir_stats(
    std::string_view path) {
  auto r = expect<ReaddirResponse>(
      transport_->call(mds_, ReaddirPlusRequest{std::string(path)}));
  if (!r) return r.error();
  return std::move(r->entries);
}

Status Client::report_extents(InodeNo ino, u64 extent_count) {
  ReportExtentsRequest req;
  req.ino = ino;
  req.extent_count = extent_count;
  return to_status(transport_->call(mds_, req));
}

Status Client::block_write(u32 target, InodeNo ino, StreamId stream,
                           FileBlock start, u64 count) {
  BlockWriteRequest req;
  req.ino = ino;
  req.stream = stream;
  req.runs.push_back(BlockRun{start, count});
  return to_status(transport_->call(osd_at(target), std::move(req)));
}

Status Client::block_read(u32 target, InodeNo ino, FileBlock start,
                          u64 count) {
  BlockReadRequest req;
  req.ino = ino;
  req.runs.push_back(BlockRun{start, count});
  return to_status(transport_->call(osd_at(target), std::move(req)));
}

Status Client::write_list(u32 target, InodeNo ino, StreamId stream,
                          std::vector<BlockRun> runs) {
  WriteListRequest req;
  req.ino = ino;
  req.stream = stream;
  req.runs = std::move(runs);
  return to_status(transport_->call(osd_at(target), std::move(req)));
}

Status Client::read_list(u32 target, InodeNo ino, std::vector<BlockRun> runs) {
  ReadListRequest req;
  req.ino = ino;
  req.runs = std::move(runs);
  return to_status(transport_->call(osd_at(target), std::move(req)));
}

Status Client::write_strided(u32 target, InodeNo ino, StreamId stream,
                             FileBlock start, u64 count, u64 stride,
                             u64 block_len) {
  WriteStridedRequest req;
  req.ino = ino;
  req.stream = stream;
  req.start = start;
  req.count = count;
  req.stride = stride;
  req.block_len = block_len;
  return to_status(transport_->call(osd_at(target), req));
}

Status Client::read_strided(u32 target, InodeNo ino, FileBlock start,
                            u64 count, u64 stride, u64 block_len) {
  ReadStridedRequest req;
  req.ino = ino;
  req.start = start;
  req.count = count;
  req.stride = stride;
  req.block_len = block_len;
  return to_status(transport_->call(osd_at(target), req));
}

Ticket Client::block_write_async(u32 target, InodeNo ino, StreamId stream,
                                 FileBlock start, u64 count) {
  BlockWriteRequest req;
  req.ino = ino;
  req.stream = stream;
  req.runs.push_back(BlockRun{start, count});
  return transport_->call_async(osd_at(target), std::move(req));
}

Ticket Client::block_read_async(u32 target, InodeNo ino, FileBlock start,
                                u64 count) {
  BlockReadRequest req;
  req.ino = ino;
  req.runs.push_back(BlockRun{start, count});
  return transport_->call_async(osd_at(target), std::move(req));
}

Ticket Client::write_list_async(u32 target, InodeNo ino, StreamId stream,
                                std::vector<BlockRun> runs) {
  WriteListRequest req;
  req.ino = ino;
  req.stream = stream;
  req.runs = std::move(runs);
  return transport_->call_async(osd_at(target), std::move(req));
}

Ticket Client::read_list_async(u32 target, InodeNo ino,
                               std::vector<BlockRun> runs) {
  ReadListRequest req;
  req.ino = ino;
  req.runs = std::move(runs);
  return transport_->call_async(osd_at(target), std::move(req));
}

Ticket Client::write_strided_async(u32 target, InodeNo ino, StreamId stream,
                                   FileBlock start, u64 count, u64 stride,
                                   u64 block_len) {
  WriteStridedRequest req;
  req.ino = ino;
  req.stream = stream;
  req.start = start;
  req.count = count;
  req.stride = stride;
  req.block_len = block_len;
  return transport_->call_async(osd_at(target), req);
}

Ticket Client::read_strided_async(u32 target, InodeNo ino, FileBlock start,
                                  u64 count, u64 stride, u64 block_len) {
  ReadStridedRequest req;
  req.ino = ino;
  req.start = start;
  req.count = count;
  req.stride = stride;
  req.block_len = block_len;
  return transport_->call_async(osd_at(target), req);
}

Ticket Client::preallocate_async(u32 target, InodeNo ino, u64 total_blocks) {
  PreallocateRequest req;
  req.ino = ino;
  req.total_blocks = total_blocks;
  return transport_->call_async(osd_at(target), req);
}

Ticket Client::close_file_async(u32 target, InodeNo ino) {
  CloseFileRequest req;
  req.ino = ino;
  return transport_->call_async(osd_at(target), req);
}

Ticket Client::delete_file_async(u32 target, InodeNo ino) {
  DeleteFileRequest req;
  req.ino = ino;
  return transport_->call_async(osd_at(target), req);
}

Result<u64> Client::target_extents(u32 target, InodeNo ino) {
  GetExtentsRequest req;
  req.ino = ino;
  auto r = expect<ExtentCountResponse>(transport_->call(osd_at(target), req));
  if (!r) return r.error();
  return r->extent_count;
}

Status Client::preallocate(u32 target, InodeNo ino, u64 total_blocks) {
  PreallocateRequest req;
  req.ino = ino;
  req.total_blocks = total_blocks;
  return to_status(transport_->call(osd_at(target), req));
}

Status Client::close_file(u32 target, InodeNo ino) {
  CloseFileRequest req;
  req.ino = ino;
  return to_status(transport_->call(osd_at(target), req));
}

Status Client::delete_file(u32 target, InodeNo ino) {
  DeleteFileRequest req;
  req.ino = ino;
  return to_status(transport_->call(osd_at(target), req));
}

}  // namespace mif::rpc
