#include "rpc/qos.hpp"

#include <cstdio>
#include <optional>

#include "obs/export.hpp"
#include "obs/span.hpp"

namespace mif::rpc {

namespace {

template <typename T>
concept HasIno = requires(const T& t) {
  { t.ino } -> std::convertible_to<InodeNo>;
};

/// The inode an envelope touches; nullopt for path-addressed metadata ops.
std::optional<InodeNo> ino_of(const Request& req) {
  return std::visit(
      [](const auto& r) -> std::optional<InodeNo> {
        if constexpr (HasIno<std::decay_t<decltype(r)>>) return r.ino;
        return std::nullopt;
      },
      req);
}

/// Viewer lane for qos wait spans (async stall spans use 255).
constexpr u32 kQosLane = 254;

}  // namespace

std::string validate(const QosConfig& cfg) {
  if (!cfg.enabled) return "";
  if (!(cfg.rate_bytes_per_ms > 0.0))
    return "qos.rate_bytes_per_ms must be > 0";
  if (cfg.burst_bytes == 0) return "qos.burst_bytes must be > 0";
  if (cfg.default_weight == 0) return "qos.default_weight must be > 0";
  for (const QosClientOverride& o : cfg.overrides) {
    if (o.client == 0)
      return "qos override targets reserved client 0 (the system principal)";
    if (o.rate_bytes_per_ms < 0.0)
      return "qos override rate_bytes_per_ms must be >= 0";
  }
  return "";
}

QosTransport::QosTransport(Transport& inner, QosConfig cfg)
    : inner_(inner), cfg_(std::move(cfg)) {}

QosTransport::~QosTransport() {
  // Leftovers a caller never flushed still have to reach the servers; an
  // error at this point has nowhere to surface — make the loss observable
  // (same contract as the formation layer's destructor).
  std::lock_guard lock(mu_);
  release_all_locked();
  if (!sticky_.ok()) {
    ++stats_.dropped_errors;
    if (spans_)
      spans_->record_sim("qos.dropped_error", obs::make_track(track_ns_, kQosLane),
                         now_locked(), 0.0, spans_->ambient(),
                         static_cast<u64>(sticky_.error()), 1);
    std::fprintf(stderr,
                 "[mif.qos] destructor dropped sticky deferred error: %.*s\n",
                 static_cast<int>(to_string(sticky_.error()).size()),
                 to_string(sticky_.error()).data());
  }
}

void QosTransport::set_spans(obs::SpanCollector* spans) {
  spans_ = spans;
  if (spans) track_ns_ = spans->reserve_track_namespace();
  inner_.set_spans(spans);
}

void QosTransport::set_clock(std::function<double()> clock) {
  std::lock_guard lock(mu_);
  clock_ = std::move(clock);
}

QosTransport::Lane& QosTransport::lane_locked(u32 client) {
  auto it = lanes_.find(client);
  if (it != lanes_.end()) return it->second;
  double rate = cfg_.rate_bytes_per_ms;
  u64 burst = cfg_.burst_bytes;
  u32 weight = cfg_.default_weight;
  for (const QosClientOverride& o : cfg_.overrides) {
    if (o.client != client) continue;
    if (o.rate_bytes_per_ms > 0.0) rate = o.rate_bytes_per_ms;
    if (o.burst_bytes > 0) burst = o.burst_bytes;
    if (o.weight > 0) weight = o.weight;
  }
  return lanes_.emplace(client, Lane{TokenBucket(rate, burst), weight, {}})
      .first->second;
}

void QosTransport::note_backlog_locked() {
  stats_.backlog_peak = std::max(stats_.backlog_peak, backlog_count_);
}

void QosTransport::release_locked(Parked&& p, bool forced) {
  const double now = now_locked();
  if (forced)
    ++stats_.forced;
  else
    ++stats_.released;
  const double waited = std::max(0.0, now - p.enqueue_ms);
  wait_ms_.add(waited);
  if (spans_)
    spans_->record_sim("rpc.qos.wait", obs::make_track(track_ns_, kQosLane),
                       p.enqueue_ms, waited, spans_->ambient(),
                       static_cast<u64>(p.principal.client), p.bytes);
  // Dispatch under the OWNER's identity, not the thread that happened to
  // pump — the attribution ledger must keep charging the client that issued
  // the envelope (conservation holds because nothing new is charged here).
  obs::ScopedPrincipal sp(p.principal);
  Result<Response> r = inner_.call(p.to, p.req);
  if (!r) {
    ++stats_.deferred_errors;
    if (sticky_.ok()) sticky_ = r.error();
  }
}

void QosTransport::pump_locked(double now_ms) {
  for (auto& [c, l] : lanes_) l.bucket.refill(now_ms);
  if (backlog_count_ == 0) return;
  // Weighted round-robin over backlogged lanes: each visit releases up to
  // `weight` envelopes while the lane's tokens cover them; cycles repeat
  // until a full pass makes no progress (everyone throttled or drained).
  std::vector<u32> ids;
  ids.reserve(lanes_.size());
  for (const auto& [c, l] : lanes_) ids.push_back(c);
  std::size_t start = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] > rr_cursor_) {
      start = i;
      break;
    }
  }
  bool progress = true;
  while (progress && backlog_count_ > 0) {
    progress = false;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      Lane& l = lanes_.at(ids[(start + i) % ids.size()]);
      for (u32 w = 0; w < l.weight && !l.backlog.empty(); ++w) {
        Parked& front = l.backlog.front();
        // An envelope larger than the bucket itself could never earn enough
        // tokens — let it through rather than wedging the lane.
        if (!l.bucket.try_consume(front.bytes) &&
            front.bytes <= l.bucket.burst_bytes())
          break;
        Parked p = std::move(front);
        l.backlog.pop_front();
        --backlog_count_;
        backlog_bytes_ -= p.bytes;
        rr_cursor_ = ids[(start + i) % ids.size()];
        release_locked(std::move(p), /*forced=*/false);
        progress = true;
      }
    }
  }
}

void QosTransport::release_ino_locked(InodeNo ino) {
  // A non-deferrable op on `ino` must observe that file's queued writes —
  // and ONLY that file's: flushing everyone's backlog at every victim read
  // would hand a backlogged antagonist a barrier-shaped bypass.
  for (auto& [c, l] : lanes_) {
    for (std::size_t i = 0; i < l.backlog.size();) {
      std::optional<InodeNo> pino = ino_of(l.backlog[i].req);
      if (!pino || *pino != ino) {
        ++i;
        continue;
      }
      Parked p = std::move(l.backlog[i]);
      l.backlog.erase(l.backlog.begin() + static_cast<std::ptrdiff_t>(i));
      --backlog_count_;
      backlog_bytes_ -= p.bytes;
      release_locked(std::move(p), /*forced=*/true);
    }
  }
}

void QosTransport::release_all_locked() {
  for (auto& [c, l] : lanes_) {
    while (!l.backlog.empty()) {
      Parked p = std::move(l.backlog.front());
      l.backlog.pop_front();
      --backlog_count_;
      backlog_bytes_ -= p.bytes;
      release_locked(std::move(p), /*forced=*/true);
    }
  }
}

Status QosTransport::take_sticky_locked() {
  Status s = sticky_;
  sticky_ = {};
  return s;
}

Result<Response> QosTransport::call(const Address& to, const Request& req) {
  const OpTraits& tr = traits(op_of(req));
  const obs::Principal p = obs::ambient_principal();
  if (tr.deferrable) {
    if (meterable(tr, p)) {
      std::lock_guard lock(mu_);
      const double now = now_locked();
      pump_locked(now);  // drain refilled backlog first: per-client FIFO
      Lane& l = lane_locked(p.client);
      l.bucket.refill(now);
      const u64 bytes = wire_bytes(req);
      if (l.backlog.empty() &&
          (l.bucket.try_consume(bytes) || bytes > l.bucket.burst_bytes())) {
        ++stats_.admitted;
        return inner_.call(to, req);
      }
      ++stats_.throttled;
      l.backlog.push_back(Parked{to, req, p, bytes, now});
      ++backlog_count_;
      backlog_bytes_ += bytes;
      note_backlog_locked();
      return Response{VoidResponse{}};  // deferred ack, batching semantics
    }
    // Unmetered deferrable work (metadata, system principal) passes through,
    // but still pumps so a waiting backlog drains as the clock advances.
    {
      std::lock_guard lock(mu_);
      pump_locked(now_locked());
    }
    return inner_.call(to, req);
  }

  // kGetExtents is an advisory statistics poll (the client's periodic
  // layout-report cadence), not a data dependency: treating it as a barrier
  // would force-release a throttled client's entire backlog every report
  // interval — a scheduler bypass the client earns just by streaming.
  // A deferred-ack write that has not been released simply does not appear
  // in the count yet.
  if (op_of(req) == Op::kGetExtents) {
    std::lock_guard lock(mu_);
    pump_locked(now_locked());
    return inner_.call(to, req);
  }

  // Non-deferrable: an ino-scoped barrier (see release_ino_locked).  A
  // sticky deferred failure surfaces here, like the batching layer's.
  {
    std::lock_guard lock(mu_);
    ++stats_.barriers;
    pump_locked(now_locked());
    if (std::optional<InodeNo> ino = ino_of(req)) release_ino_locked(*ino);
    if (Status s = take_sticky_locked(); !s) return s.error();
  }
  return inner_.call(to, req);
}

Ticket QosTransport::call_async(const Address& to, const Request& req) {
  // Same admission split as call(); an admitted envelope keeps the inner
  // async path (pipelined), a parked one gets an immediate-ack ticket.
  const OpTraits& tr = traits(op_of(req));
  const obs::Principal p = obs::ambient_principal();
  if (tr.deferrable) {
    if (meterable(tr, p)) {
      std::lock_guard lock(mu_);
      const double now = now_locked();
      pump_locked(now);
      Lane& l = lane_locked(p.client);
      l.bucket.refill(now);
      const u64 bytes = wire_bytes(req);
      if (l.backlog.empty() &&
          (l.bucket.try_consume(bytes) || bytes > l.bucket.burst_bytes())) {
        ++stats_.admitted;
        return inner_.call_async(to, req);
      }
      ++stats_.throttled;
      l.backlog.push_back(Parked{to, req, p, bytes, now});
      ++backlog_count_;
      backlog_bytes_ += bytes;
      note_backlog_locked();
      return completions().admit(to, op_of(req), Response{VoidResponse{}});
    }
    {
      std::lock_guard lock(mu_);
      pump_locked(now_locked());
    }
    return inner_.call_async(to, req);
  }
  if (op_of(req) == Op::kGetExtents) {  // advisory poll; see call()
    std::lock_guard lock(mu_);
    pump_locked(now_locked());
    return inner_.call_async(to, req);
  }
  {
    std::lock_guard lock(mu_);
    ++stats_.barriers;
    pump_locked(now_locked());
    if (std::optional<InodeNo> ino = ino_of(req)) release_ino_locked(*ino);
    if (Status s = take_sticky_locked(); !s)
      return completions().admit(to, op_of(req), s.error());
  }
  return inner_.call_async(to, req);
}

Status QosTransport::call_batch(const Address& to, std::vector<Request> reqs) {
  // A pre-formed frame from an outer layer: treat as a full barrier (the
  // frame may span many inodes) and forward intact.
  {
    std::lock_guard lock(mu_);
    pump_locked(now_locked());
    release_all_locked();
    if (Status s = take_sticky_locked(); !s) return s;
  }
  return inner_.call_batch(to, std::move(reqs));
}

Status QosTransport::flush() {
  Status mine;
  {
    std::lock_guard lock(mu_);
    ++stats_.flushes;
    pump_locked(now_locked());
    release_all_locked();
    mine = take_sticky_locked();
  }
  Status inner = inner_.flush();
  return mine.ok() ? inner : mine;
}

void QosTransport::pump() {
  {
    std::lock_guard lock(mu_);
    pump_locked(now_locked());
  }
  inner_.pump();
}

QosStats QosTransport::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

u64 QosTransport::backlog() const {
  std::lock_guard lock(mu_);
  return backlog_count_;
}

u64 QosTransport::backlog_bytes() const {
  std::lock_guard lock(mu_);
  return backlog_bytes_;
}

double QosTransport::tokens(u32 client) const {
  std::lock_guard lock(mu_);
  auto it = lanes_.find(client);
  return it == lanes_.end() ? -1.0 : it->second.bucket.tokens();
}

void QosTransport::export_metrics(obs::MetricsRegistry& reg,
                                  std::string_view prefix) const {
  inner_.export_metrics(reg, prefix);
  QosStats s;
  u64 bl = 0, blb = 0;
  RunningStats wait;
  {
    std::lock_guard lock(mu_);
    s = stats_;
    bl = backlog_count_;
    blb = backlog_bytes_;
    wait = wait_ms_.snapshot();
  }
  const std::string base = obs::join_key(prefix, "qos");
  reg.counter(obs::join_key(base, "admitted")).inc(s.admitted);
  reg.counter(obs::join_key(base, "throttled")).inc(s.throttled);
  reg.counter(obs::join_key(base, "released")).inc(s.released);
  reg.counter(obs::join_key(base, "forced")).inc(s.forced);
  reg.counter(obs::join_key(base, "barriers")).inc(s.barriers);
  reg.counter(obs::join_key(base, "flushes")).inc(s.flushes);
  reg.counter(obs::join_key(base, "deferred_errors")).inc(s.deferred_errors);
  reg.counter(obs::join_key(base, "dropped_errors")).inc(s.dropped_errors);
  reg.counter(obs::join_key(base, "backlog_peak")).inc(s.backlog_peak);
  reg.gauge(obs::join_key(base, "backlog")).set(static_cast<double>(bl));
  reg.gauge(obs::join_key(base, "backlog_bytes")).set(static_cast<double>(blb));
  reg.stat(obs::join_key(base, "wait_ms")).merge_from(wait);
}

}  // namespace mif::rpc
