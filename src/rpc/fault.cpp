#include "rpc/fault.hpp"

#include "obs/attrib.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"

namespace mif::rpc {

bool FaultTransport::fires() {
  std::lock_guard lock(mu_);
  ++stats_.calls;
  if (!armed_) return false;
  if (cfg_.drop_count > 0) {
    if (cfg_.drop_after > 0) {
      --cfg_.drop_after;
    } else {
      --cfg_.drop_count;
      ++stats_.dropped;
      return true;
    }
  }
  if (cfg_.delay_ms > 0.0) {
    if (cfg_.delay_ms >= cfg_.timeout_ms) {
      ++stats_.dropped;
      return true;
    }
    ++stats_.delayed;
    stats_.delay_total_ms += cfg_.delay_ms;
    // An injected delay is a fault of the harness, not of any disk or
    // queue: it gets its own attribution category (`fault.delay`), so
    // fault runs don't skew per-principal disk accounts.
    if (attrib_) {
      attrib_->charge_fault_delay(obs::ambient_principal(), cfg_.delay_ms);
      if (spans_) {
        if (!span_ns_set_) {
          span_ns_ = spans_->reserve_track_namespace();
          span_ns_set_ = true;
        }
        spans_->record_sim("fault.delay", obs::make_track(span_ns_, 0),
                           stats_.delay_total_ms - cfg_.delay_ms,
                           cfg_.delay_ms, spans_->ambient());
      }
    }
  }
  return false;
}

void FaultTransport::export_metrics(obs::MetricsRegistry& reg,
                                    std::string_view prefix) const {
  inner_.export_metrics(reg, prefix);
  const FaultStats s = stats();
  if (s.dropped == 0 && s.delayed == 0) return;
  const std::string base = obs::join_key(prefix, "fault");
  reg.counter(obs::join_key(base, "calls")).inc(s.calls);
  reg.counter(obs::join_key(base, "dropped")).inc(s.dropped);
  reg.counter(obs::join_key(base, "delayed")).inc(s.delayed);
  reg.stat(obs::join_key(base, "delay_total_ms")).add(s.delay_total_ms);
}

}  // namespace mif::rpc
