#include "rpc/fault.hpp"

#include "obs/attrib.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"

namespace mif::rpc {

bool FaultTransport::fires() {
  std::lock_guard lock(mu_);
  ++stats_.calls;
  if (!armed_) return false;
  if (cfg_.drop_count > 0) {
    if (cfg_.drop_after > 0) {
      --cfg_.drop_after;
    } else {
      --cfg_.drop_count;
      ++stats_.dropped;
      return true;
    }
  }
  if (cfg_.delay_ms > 0.0) {
    if (cfg_.delay_ms >= cfg_.timeout_ms) {
      ++stats_.dropped;
      return true;
    }
    ++stats_.delayed;
    stats_.delay_total_ms += cfg_.delay_ms;
    // An injected delay is a fault of the harness, not of any disk or
    // queue: it gets its own attribution category (`fault.delay`), so
    // fault runs don't skew per-principal disk accounts.
    if (attrib_) {
      attrib_->charge_fault_delay(obs::ambient_principal(), cfg_.delay_ms);
      if (spans_) {
        if (!span_ns_set_) {
          span_ns_ = spans_->reserve_track_namespace();
          span_ns_set_ = true;
        }
        spans_->record_sim("fault.delay", obs::make_track(span_ns_, 0),
                           stats_.delay_total_ms - cfg_.delay_ms,
                           cfg_.delay_ms, spans_->ambient());
      }
    }
  }
  return false;
}

void FaultTransport::kill_osd(u32 target, double at_ms) {
  std::lock_guard lock(mu_);
  kills_.push_back(KillEvent{target, at_ms, false});
}

void FaultTransport::set_kill_clock(std::function<double()> clock) {
  std::lock_guard lock(mu_);
  kill_clock_ = std::move(clock);
}

void FaultTransport::set_kill_sink(std::function<void(u32)> sink) {
  std::lock_guard lock(mu_);
  kill_sink_ = std::move(sink);
}

void FaultTransport::set_dead_probe(std::function<bool(u32)> dead) {
  std::lock_guard lock(mu_);
  dead_probe_ = std::move(dead);
}

void FaultTransport::poll_kills() {
  // Collect due events under the lock, run the sink outside it: the sink
  // wipes target state and enqueues repair, which must not nest under mu_.
  std::vector<u32> due;
  std::function<void(u32)> sink;
  {
    std::lock_guard lock(mu_);
    if (kills_.empty()) return;
    const double now = kill_clock_ ? kill_clock_() : 0.0;
    for (KillEvent& k : kills_) {
      if (!k.fired && now >= k.at_ms) {
        k.fired = true;
        ++stats_.kills;
        due.push_back(k.target);
      }
    }
    if (due.empty()) return;
    sink = kill_sink_;
  }
  if (sink)
    for (u32 t : due) sink(t);
}

bool FaultTransport::refuses(const Address& to, const Request& req) {
  if (to.kind != Address::Kind::kOsd) return false;
  // The probe is the HealthMap's lock-free dead mask — safe to call under
  // mu_ (it takes no locks of its own).
  std::lock_guard lock(mu_);
  if (!dead_probe_ || !dead_probe_(to.index)) return false;
  // A dead OSD has nothing to serve reads from; writes pass — they land on
  // the freshly formatted replacement (that is the repair write path).
  const Op op = op_of(req);
  const bool is_read = op == Op::kBlockRead || op == Op::kReadList ||
                       op == Op::kReadStrided || op == Op::kGetExtents;
  if (!is_read) return false;
  ++stats_.dead_reads;
  return true;
}

void FaultTransport::export_metrics(obs::MetricsRegistry& reg,
                                    std::string_view prefix) const {
  inner_.export_metrics(reg, prefix);
  const FaultStats s = stats();
  if (s.dropped == 0 && s.delayed == 0 && s.kills == 0) return;
  const std::string base = obs::join_key(prefix, "fault");
  reg.counter(obs::join_key(base, "calls")).inc(s.calls);
  reg.counter(obs::join_key(base, "dropped")).inc(s.dropped);
  reg.counter(obs::join_key(base, "delayed")).inc(s.delayed);
  reg.stat(obs::join_key(base, "delay_total_ms")).add(s.delay_total_ms);
  if (s.kills > 0) {
    reg.counter(obs::join_key(base, "kills")).inc(s.kills);
    reg.counter(obs::join_key(base, "dead_reads")).inc(s.dead_reads);
  }
}

}  // namespace mif::rpc
