// MdsNode: one metadata server bundled with its transport and stub — the
// unit metadata-only fixtures (mds_test, workload/metarates, fig8) drive.
//
// Everything the old direct-call code measured is still reachable
// (`mds().stats()`, `mds().fs()`), but the request path goes through the
// envelope layer like the full cluster's does, so RPC counts and network
// charges come from one place.
#pragma once

#include "mds/mds.hpp"
#include "rpc/client.hpp"
#include "rpc/inproc.hpp"

namespace mif::rpc {

class MdsNode {
 public:
  explicit MdsNode(mds::MdsConfig cfg = {}, sim::NetworkConfig net = {})
      : mds_(cfg),
        transport_(Endpoints{{&mds_}, {}}, net, sim::NetworkConfig{}),
        client_(transport_) {}

  MdsNode(const MdsNode&) = delete;
  MdsNode& operator=(const MdsNode&) = delete;

  mds::Mds& mds() { return mds_; }
  const mds::Mds& mds() const { return mds_; }
  Client& client() { return client_; }
  InprocTransport& transport() { return transport_; }

 private:
  mds::Mds mds_;
  InprocTransport transport_;
  Client client_;
};

}  // namespace mif::rpc
