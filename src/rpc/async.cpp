#include "rpc/async.hpp"

#include <algorithm>

#include "obs/attrib.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"

namespace mif::rpc {

AsyncTransport::AsyncTransport(Transport& inner, AsyncConfig cfg)
    : inner_(inner),
      cfg_(cfg),
      meta_model_(cfg.meta_net),
      data_model_(cfg.data_net),
      pipe_(cfg.depth),
      depth_min_seen_(std::max<u32>(cfg.depth, 1)),
      depth_max_seen_(std::max<u32>(cfg.depth, 1)) {}

void AsyncTransport::set_queue_probe(std::function<double(u32)> probe) {
  std::lock_guard lock(mu_);
  probe_ = std::move(probe);
}

void AsyncTransport::adapt_locked(double queue_depth) {
  probe_sum_ += queue_depth;
  if (++probe_samples_ < kAdaptPeriod) return;
  const double mean = probe_sum_ / probe_samples_;
  probe_sum_ = 0.0;
  probe_samples_ = 0;
  const u32 cur = pipe_.depth();
  u32 next = cur;
  if (mean < static_cast<double>(cur)) {
    // Device queues shallower than the window: the spindles are starved for
    // overlap — admit more.
    next = std::min(cur * 2, cfg_.depth_max);
  } else if (mean > kShrinkFactor * static_cast<double>(cur)) {
    // Queue wait dominates service: deeper issue only lengthens the line —
    // back off (excess in-flight exchanges drain before the next admit).
    next = std::max(cur / 2, kAdaptFloor);
  }
  next = std::clamp(next, kAdaptFloor, cfg_.depth_max);
  if (next == cur) return;
  pipe_.set_depth(next);
  ++depth_changes_;
  depth_min_seen_ = std::min(depth_min_seen_, next);
  depth_max_seen_ = std::max(depth_max_seen_, next);
}

double AsyncTransport::price(const Address& to, const Request& req,
                             const Result<Response>& resp) const {
  const OpTraits& tr = traits(op_of(req));
  if (tr.free) return 0.0;
  const sim::Network& net =
      to.kind == Address::Kind::kMds ? meta_model_ : data_model_;
  double ms = net.cost(wire_bytes(req));
  if (resp) {
    if (const u64 bulk = bulk_bytes(*resp); bulk > 0) ms += net.cost(bulk);
  }
  // Block I/O also occupies the destination's spindle; the streaming floor
  // is the portion that pipelining genuinely overlaps across targets.
  if (const auto* w = std::get_if<BlockWriteRequest>(&req)) {
    ms += sim::stream_transfer_ms(cfg_.geometry, w->blocks(),
                                  sim::IoKind::kWrite);
  } else if (const auto* r = std::get_if<BlockReadRequest>(&req)) {
    ms += sim::stream_transfer_ms(cfg_.geometry, r->blocks(),
                                  sim::IoKind::kRead);
  } else if (const auto* lw = std::get_if<WriteListRequest>(&req)) {
    ms += sim::stream_transfer_ms(cfg_.geometry, lw->blocks(),
                                  sim::IoKind::kWrite);
  } else if (const auto* lr = std::get_if<ReadListRequest>(&req)) {
    ms += sim::stream_transfer_ms(cfg_.geometry, lr->blocks(),
                                  sim::IoKind::kRead);
  } else if (const auto* sw = std::get_if<WriteStridedRequest>(&req)) {
    ms += sim::stream_transfer_ms(cfg_.geometry, sw->blocks(),
                                  sim::IoKind::kWrite);
  } else if (const auto* sr = std::get_if<ReadStridedRequest>(&req)) {
    ms += sim::stream_transfer_ms(cfg_.geometry, sr->blocks(),
                                  sim::IoKind::kRead);
  }
  return ms;
}

Ticket AsyncTransport::call_async(const Address& to, const Request& req) {
  // Dispatch now: server-side effects happen in issue order, exactly as the
  // sync chain, so placement and figures are independent of depth.  Only
  // the caller-visible completion is deferred.
  const Op op = op_of(req);
  const u64 wire = wire_bytes(req);
  Result<Response> resp = inner_.call(to, req);
  const double service = price(to, req, resp);

  const u32 channel = channel_of(to);
  std::lock_guard lock(mu_);
  if (cfg_.depth_max >= 2 && probe_ && to.kind == Address::Kind::kOsd)
    adapt_locked(probe_(to.index));
  const sim::Pipeline::Times t = pipe_.submit(channel, service);
  inflight_.add(pipe_.inflight());
  cq_.set_clock(pipe_.issue_clock_ms());
  if (attrib_ && t.stall_ms > 0.0) {
    // The issuer waited out the window's backpressure — a cost of the
    // pipeline, not of any disk or network, so it gets its own category.
    attrib_->charge_stall(obs::ambient_principal(), t.stall_ms);
    if (spans_) {
      // Lane 255 of this transport's namespace, on the cumulative stall
      // clock (stats_.stall_ms grew by exactly t.stall_ms above).
      spans_->record_sim("rpc.stall", obs::make_track(track_ns_, 255),
                         pipe_.stats().stall_ms - t.stall_ms, t.stall_ms,
                         spans_->ambient(), static_cast<u64>(op));
    }
  }
  if (spans_) {
    // One sim-clock span per ticket, issue → complete, on the destination's
    // channel lane.  arg0 = op (decode with rpc::to_string), arg1 = wire
    // bytes.  Distinct name from the inner host-clock rpc.<op> spans so the
    // two clock families never share a phase-stats bucket.
    spans_->record_sim("rpc.async", obs::make_track(track_ns_, channel),
                       t.issue_ms, t.done_ms - t.issue_ms, spans_->ambient(),
                       static_cast<u64>(op), wire);
  }
  return cq_.admit(to, op, std::move(resp), t.done_ms);
}

void AsyncTransport::set_spans(obs::SpanCollector* spans) {
  spans_ = spans;
  if (spans) track_ns_ = spans->reserve_track_namespace();
  inner_.set_spans(spans);
}

AsyncReport AsyncTransport::report() const {
  std::lock_guard lock(mu_);
  const sim::PipelineStats& s = pipe_.stats();
  AsyncReport r;
  r.depth = pipe_.depth();
  r.issued = s.issued;
  r.stalls = s.stalls;
  r.max_inflight = s.max_inflight;
  r.stall_ms = s.stall_ms;
  r.serial_ms = s.serial_ms;
  r.elapsed_ms = pipe_.elapsed_ms();
  r.adaptive = cfg_.depth_max >= 2;
  r.depth_changes = depth_changes_;
  r.depth_min_seen = depth_min_seen_;
  r.depth_max_seen = depth_max_seen_;
  return r;
}

void AsyncTransport::export_metrics(obs::MetricsRegistry& reg,
                                    std::string_view prefix) const {
  inner_.export_metrics(reg, prefix);
  const AsyncReport r = report();
  reg.histogram(obs::join_key(prefix, "inflight"), 16)
      .merge_from(inflight_.snapshot());
  const std::string base = obs::join_key(prefix, "pipeline");
  reg.gauge(obs::join_key(base, "depth")).set(r.depth);
  reg.counter(obs::join_key(base, "issued")).inc(r.issued);
  reg.counter(obs::join_key(base, "stalls")).inc(r.stalls);
  reg.counter(obs::join_key(base, "max_inflight")).inc(r.max_inflight);
  reg.gauge(obs::join_key(base, "stall_ms")).set(r.stall_ms);
  reg.gauge(obs::join_key(base, "serial_ms")).set(r.serial_ms);
  reg.gauge(obs::join_key(base, "elapsed_ms")).set(r.elapsed_ms);
  if (r.adaptive) {
    // Adaptive-only keys: a static-depth mount's export stays unchanged.
    reg.counter(obs::join_key(base, "depth_changes")).inc(r.depth_changes);
    reg.gauge(obs::join_key(base, "depth_min_seen")).set(r.depth_min_seen);
    reg.gauge(obs::join_key(base, "depth_max_seen")).set(r.depth_max_seen);
  }
}

}  // namespace mif::rpc
