// InprocTransport: synchronous in-process delivery with all cost accounting.
//
// This is the innermost transport and the only place in the stack that
// touches sim::Network or Mds::account_rpc():
//
//   * one metadata network and one data network, charged from each
//     envelope's wire_bytes(); variable-length replies (layouts, listings,
//     block data) are charged as a second transfer from bulk_bytes();
//   * one `rpc.<op>` span per delivered envelope;
//   * per-op count/bytes/errors counters and a simulated-latency histogram,
//     exported as `rpc.<op>.*` plus the `rpc.meta.*`/`rpc.data.*`
//     aggregates.
//
// call_batch() delivers several envelopes as ONE wire frame (one shared
// header, one network exchange) — the quantity BatchingTransport optimises.
//
// Thread-safety: dispatch into storage targets may run concurrently (the
// targets lock internally); both sim::Network instances are plain
// accumulators and are guarded by net_mu_.  Metadata dispatch is
// single-threaded by design, like the namespace it serialises.
#pragma once

#include <array>
#include <atomic>
#include <mutex>

#include "obs/metrics.hpp"
#include "rpc/transport.hpp"
#include "sim/network.hpp"

namespace mif::rpc {

class InprocTransport final : public Transport {
 public:
  explicit InprocTransport(Endpoints eps, sim::NetworkConfig meta_net = {},
                           sim::NetworkConfig data_net = {});

  Result<Response> call(const Address& to, const Request& req) override;
  Status call_batch(const Address& to, std::vector<Request> reqs) override;

  void set_spans(obs::SpanCollector* spans) override { spans_ = spans; }
  void set_attribution(obs::Attribution* attrib) override { attrib_ = attrib; }
  void export_metrics(obs::MetricsRegistry& reg,
                      std::string_view prefix) const override;

  const sim::Network& meta_network() const { return meta_net_; }
  const sim::Network& data_network() const { return data_net_; }

  /// Snapshot of one op's counters (testing / diagnostics).
  struct OpCounters {
    u64 count{0};
    u64 bytes{0};
    u64 errors{0};
  };
  OpCounters op_counters(Op op) const;

 private:
  Result<Response> dispatch(const Address& to, const Request& req);
  /// Charge one network exchange to the destination-kind's network; returns
  /// the simulated cost in ms.
  double charge(Address::Kind kind, u64 bytes);

  struct PerOp {
    std::atomic<u64> count{0};
    std::atomic<u64> bytes{0};
    std::atomic<u64> errors{0};
    obs::Histo latency_us{32};  // simulated exchange latency per envelope
  };

  Endpoints eps_;
  obs::SpanCollector* spans_{nullptr};
  obs::Attribution* attrib_{nullptr};
  mutable std::mutex net_mu_;
  sim::Network meta_net_;
  sim::Network data_net_;
  /// `net.exchange` sim spans ride a cumulative per-network clock (lane
  /// 0 = meta, 1 = data) in a lazily-reserved track namespace; only emitted
  /// while BOTH attribution and spans are attached.  Guarded by net_mu_.
  bool net_ns_set_{false};
  u32 net_ns_{0};
  std::array<double, 2> net_clock_{0.0, 0.0};
  std::array<PerOp, kOpCount> ops_;
};

}  // namespace mif::rpc
