#include "rpc/formation.hpp"

#include <cstdio>
#include <optional>

#include "obs/export.hpp"
#include "obs/span.hpp"

namespace mif::rpc {

namespace {
/// Viewer lane for formation drop markers (qos uses 254, async stall 255).
constexpr u32 kFormationLane = 253;
}  // namespace

std::string validate(const FormationConfig& cfg) {
  if (cfg.max_frame_bytes <= kHeaderBytes)
    return "formation.max_frame_bytes must exceed the frame header";
  if (cfg.watermark_bytes == 0) return "formation.watermark_bytes must be > 0";
  if (cfg.max_queue_msgs == 0) return "formation.max_queue_msgs must be > 0";
  return "";
}

FormationTransport::FormationTransport(Transport& inner, FormationConfig cfg)
    : inner_(inner), cfg_(cfg) {}

FormationTransport::~FormationTransport() {
  // Leftovers a caller never flushed still have to reach the servers; their
  // errors have nowhere to go at this point — but a silently vanished write
  // error is the worst kind of loss, so make the drop observable: count it,
  // stamp a span for the tail/slow log, and shout on stderr.
  std::lock_guard lock(mu_);
  flush_all_locked();
  if (!sticky_.ok()) {
    ++stats_.dropped_errors;
    if (spans_)
      spans_->record_sim(
          cfg_.legacy ? "batch.dropped_error" : "formation.dropped_error",
          obs::make_track(track_ns_, kFormationLane), 0.0, 0.0,
          spans_->ambient(), static_cast<u64>(sticky_.error()), 1);
    std::fprintf(
        stderr, "[mif.%s] destructor dropped sticky deferred error: %.*s\n",
        cfg_.legacy ? "batch" : "formation",
        static_cast<int>(to_string(sticky_.error()).size()),
        to_string(sticky_.error()).data());
  }
}

void FormationTransport::set_spans(obs::SpanCollector* spans) {
  spans_ = spans;
  if (spans) track_ns_ = spans->reserve_track_namespace();
  inner_.set_spans(spans);
}

bool FormationTransport::coalesce_locked(Queue& q, const BlockWriteRequest& w) {
  if (q.reqs.empty()) return false;
  auto* tail = std::get_if<BlockWriteRequest>(&q.reqs.back());
  if (!tail || tail->ino != w.ino || tail->stream != w.stream) return false;
  for (const BlockRun& run : w.runs) {
    if (util::append_run(tail->runs, run)) ++stats_.coalesced_runs;
  }
  return true;
}

void FormationTransport::order_urgent_locked(Queue& q) {
  bool has_meta = false;
  bool has_data = false;
  for (const Request& r : q.reqs)
    (traits(op_of(r)).meta ? has_meta : has_data) = true;
  if (!has_meta || !has_data) return;  // homogeneous: the common case
  ++stats_.urgent_reorders;
  const bool tagged = q.principals.size() == q.reqs.size();
  std::vector<Request> reqs;
  std::vector<obs::Principal> principals;
  reqs.reserve(q.reqs.size());
  if (tagged) principals.reserve(q.principals.size());
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < q.reqs.size(); ++i) {
      if (traits(op_of(q.reqs[i])).meta != (pass == 0)) continue;
      reqs.push_back(std::move(q.reqs[i]));
      if (tagged) principals.push_back(q.principals[i]);
    }
  }
  q.reqs = std::move(reqs);
  q.principals = std::move(principals);
}

Status FormationTransport::flush_queue_locked(Queue& q) {
  if (q.reqs.empty()) return {};
  // Adjacent per-block writes that coalesced into a noncontiguous run set
  // ship as ONE list envelope instead of a run-split block write: the server
  // executes the whole set in a single pass.  Single-run writes stay block
  // writes (same wire bytes either way — the two bodies are byte-identical).
  for (Request& r : q.reqs) {
    auto* w = std::get_if<BlockWriteRequest>(&r);
    if (!w || w->runs.size() <= 1) continue;
    WriteListRequest l;
    l.ino = w->ino;
    l.stream = w->stream;
    l.runs = std::move(w->runs);
    r = std::move(l);
    ++stats_.folded_lists;
  }
  if (cfg_.urgent_first) order_urgent_locked(q);
  const bool tagged = attrib_ && q.principals.size() == q.reqs.size();
  // First-fit packing in queue order.  A frame's wire cost is one header
  // plus the marginal bodies (InprocTransport::call_batch charges exactly
  // this), so the bound is checked against that same sum.
  Status first;
  std::size_t i = 0;
  while (i < q.reqs.size()) {
    u64 frame_bytes = kHeaderBytes;
    std::size_t j = i;
    while (j < q.reqs.size()) {
      const u64 marginal = wire_bytes(q.reqs[j]) - kHeaderBytes;
      if (j > i && frame_bytes + marginal > cfg_.max_frame_bytes) break;
      frame_bytes += marginal;
      ++j;
    }
    ++stats_.frames;
    ++stats_.wire_messages;
    if (frame_bytes > cfg_.max_frame_bytes) ++stats_.oversize_frames;
    std::vector<Request> frame(std::make_move_iterator(q.reqs.begin() + i),
                               std::make_move_iterator(q.reqs.begin() + j));
    Status s;
    {
      // The flush runs on whatever thread tripped the watermark/barrier, so
      // its ambient principal is NOT the contributors'.  Publish the frame's
      // per-envelope tags for the inner transport's pro-rata split.
      std::optional<obs::ScopedFramePrincipals> fp;
      if (tagged) fp.emplace(q.principals.data() + i, j - i);
      s = inner_.call_batch(q.addr, std::move(frame));
    }
    if (!s) {
      ++stats_.deferred_errors;
      if (sticky_.ok()) sticky_ = s;
      if (first.ok()) first = s;
    }
    i = j;
  }
  q.reqs.clear();
  q.principals.clear();
  q.bytes = 0;
  return first;
}

void FormationTransport::flush_all_locked() {
  // std::map key order puts MDS destinations (kind 0) ahead of OSDs: urgent
  // metadata frames hit the wire before the bulk data frames they describe.
  for (auto& [k, q] : queues_) (void)flush_queue_locked(q);
  queues_.clear();
}

Status FormationTransport::take_sticky_locked() {
  Status s = sticky_;
  sticky_ = {};
  return s;
}

Result<Response> FormationTransport::call(const Address& to,
                                          const Request& req) {
  const OpTraits& tr = traits(op_of(req));
  if (tr.deferrable) {
    std::lock_guard lock(mu_);
    Queue& q = queues_[key(to)];
    q.addr = to;
    ++stats_.queued;
    const auto* w = std::get_if<BlockWriteRequest>(&req);
    if (w && coalesce_locked(q, *w)) {
      // Only the merged body rides in the tail envelope's frame share.
      q.bytes += wire_bytes(req) - kHeaderBytes;
    } else {
      q.bytes += wire_bytes(req);
      q.reqs.push_back(req);
      if (attrib_) q.principals.push_back(obs::ambient_principal());
    }
    if (q.bytes >= cfg_.watermark_bytes ||
        q.reqs.size() >= cfg_.max_queue_msgs) {
      ++stats_.watermark_flushes;
      (void)flush_queue_locked(q);
    }
    return Response{VoidResponse{}};  // deferred ack
  }

  // Non-deferrable: a barrier.  Everything staged anywhere must be on the
  // servers before this op runs (a read must see queued writes, an unlink
  // must follow queued utimes), and a deferred failure surfaces here.
  {
    std::lock_guard lock(mu_);
    if (!queues_.empty()) {
      ++stats_.barrier_flushes;
      flush_all_locked();
    }
    if (Status s = take_sticky_locked(); !s) return s.error();
  }
  return inner_.call(to, req);
}

Ticket FormationTransport::call_async(const Address& to, const Request& req) {
  // Same split as call(): deferrable envelopes join their destination queue
  // and the ticket is an immediate ack (a deferred failure stays sticky for
  // the next barrier); non-deferrable envelopes are barriers and the issue
  // itself flows to the inner transport's async path.
  const OpTraits& tr = traits(op_of(req));
  if (tr.deferrable) {
    Result<Response> ack = call(to, req);  // enqueue + early ack
    return completions().admit(to, op_of(req), std::move(ack));
  }
  {
    std::lock_guard lock(mu_);
    if (!queues_.empty()) {
      ++stats_.barrier_flushes;
      flush_all_locked();
    }
    if (Status s = take_sticky_locked(); !s)
      return completions().admit(to, op_of(req), s.error());
  }
  return inner_.call_async(to, req);
}

Status FormationTransport::call_batch(const Address& to,
                                      std::vector<Request> reqs) {
  std::lock_guard lock(mu_);
  if (!queues_.empty()) {
    ++stats_.barrier_flushes;
    flush_all_locked();
  }
  if (Status s = take_sticky_locked(); !s) return s;
  ++stats_.wire_messages;
  return inner_.call_batch(to, std::move(reqs));
}

Status FormationTransport::flush() {
  Status mine;
  {
    std::lock_guard lock(mu_);
    ++stats_.flushes;
    flush_all_locked();
    mine = take_sticky_locked();
  }
  Status inner = inner_.flush();
  return mine.ok() ? inner : mine;
}

u64 FormationTransport::pending_bytes() const {
  std::lock_guard lock(mu_);
  u64 total = 0;
  for (const auto& [k, q] : queues_) total += q.bytes;
  return total;
}

void FormationTransport::export_metrics(obs::MetricsRegistry& reg,
                                        std::string_view prefix) const {
  inner_.export_metrics(reg, prefix);
  const FormationStats s = stats();
  const std::string base = obs::join_key(prefix, "formation");
  reg.counter(obs::join_key(base, "queued")).inc(s.queued);
  reg.counter(obs::join_key(base, "coalesced_runs")).inc(s.coalesced_runs);
  reg.counter(obs::join_key(base, "folded_lists")).inc(s.folded_lists);
  reg.counter(obs::join_key(base, "frames")).inc(s.frames);
  reg.counter(obs::join_key(base, "oversize_frames")).inc(s.oversize_frames);
  reg.counter(obs::join_key(base, "wire_messages")).inc(s.wire_messages);
  reg.counter(obs::join_key(base, "flushes")).inc(s.flushes);
  reg.counter(obs::join_key(base, "watermark_flushes"))
      .inc(s.watermark_flushes);
  reg.counter(obs::join_key(base, "barrier_flushes")).inc(s.barrier_flushes);
  reg.counter(obs::join_key(base, "urgent_reorders")).inc(s.urgent_reorders);
  reg.counter(obs::join_key(base, "deferred_errors")).inc(s.deferred_errors);
  reg.counter(obs::join_key(base, "dropped_errors")).inc(s.dropped_errors);
}

}  // namespace mif::rpc
