// FormationTransport: first-class RPC frame formation (motr-style).
//
// The batching layer treated "what goes on the wire together" as an emergent
// property of its flush triggers: everything a destination had queued at the
// watermark shipped as ONE arbitrarily-large frame.  This layer makes frame
// formation explicit, the way Lustre/motr's formation engine does: per-
// destination staging queues accept deferrable envelopes (same early-ack +
// sticky-error semantics as batching), and a flush *packs* the queue into
// frames bounded by `max_frame_bytes`, ordered by urgency class —
//
//   barrier   — non-deferrable ops; never staged, they flush the queues and
//               pass through (order with respect to staged work preserved);
//   metadata  — deferrable MDS envelopes (utime, extent reports): small,
//               latency-sensitive, packed ahead of data when `urgent_first`;
//   data      — block writes: bulk, coalesced into runs (util::append_run)
//               and folded into kWriteList when noncontiguous.
//
// Frame accounting matches InprocTransport::call_batch exactly: a frame
// costs kHeaderBytes + Σ(wire_bytes − kHeaderBytes), so packing K envelopes
// into F frames puts F headers on the wire — the formation win is choosing
// F, not hiding bytes.  An envelope whose lone marginal body exceeds
// `max_frame_bytes` ships as an oversize singleton frame (counted) rather
// than wedging the queue.
//
// BatchingTransport is now a thin compatibility adapter over this engine
// (legacy mode: unbounded frames = exactly the old coalesce-on-watermark
// behavior, exported under the historical batch.* keys).
#pragma once

#include <map>
#include <mutex>

#include "obs/attrib.hpp"
#include "rpc/transport.hpp"

namespace mif::obs {
class SpanCollector;
}

namespace mif::rpc {

struct FormationConfig {
  /// Upper bound on one wire frame (header + packed bodies).  Envelopes are
  /// packed first-fit in queue order; a single oversize envelope ships alone.
  u64 max_frame_bytes{1ull << 20};
  /// Flush a destination queue once its buffered wire bytes reach this.
  u64 watermark_bytes{4ull << 20};
  /// Flush once this many distinct envelopes are staged for one target.
  std::size_t max_queue_msgs{512};
  /// Pack deferrable metadata envelopes ahead of data in a mixed queue (and
  /// MDS destinations already flush before OSD by key order).
  bool urgent_first{true};
  /// Batching-compat mode: the adapter sets this so destructor-drop spans
  /// keep the historical "batch." naming.
  bool legacy{false};
};

/// "" when `cfg` is mountable; otherwise a human-readable reason.
std::string validate(const FormationConfig& cfg);

struct FormationStats {
  u64 queued{0};            // deferrable envelopes accepted
  u64 coalesced_runs{0};    // block-write runs merged into a previous run
  u64 folded_lists{0};      // multi-run block writes shipped as list envelopes
  u64 frames{0};            // frames packed from staged envelopes
  u64 oversize_frames{0};   // frames forced over max_frame_bytes by one envelope
  u64 wire_messages{0};     // frames + pre-formed call_batch passthroughs
  u64 flushes{0};           // explicit flush() calls
  u64 watermark_flushes{0}; // queue-full backpressure flushes
  u64 barrier_flushes{0};   // flushes forced by a non-deferrable op
  u64 urgent_reorders{0};   // mixed queues where metadata was packed first
  u64 deferred_errors{0};   // errors produced by deferred envelopes
  u64 dropped_errors{0};    // sticky errors discarded by the destructor
};

class FormationTransport final : public Transport {
 public:
  explicit FormationTransport(Transport& inner, FormationConfig cfg = {});
  ~FormationTransport() override;  // best-effort flush; drops are observable

  Result<Response> call(const Address& to, const Request& req) override;
  Ticket call_async(const Address& to, const Request& req) override;
  CompletionQueue& completions() override { return inner_.completions(); }
  Status call_batch(const Address& to, std::vector<Request> reqs) override;
  Status flush() override;
  void pump() override { inner_.pump(); }

  void set_spans(obs::SpanCollector* spans) override;
  void set_attribution(obs::Attribution* attrib) override {
    attrib_ = attrib;
    inner_.set_attribution(attrib);
  }
  void export_metrics(obs::MetricsRegistry& reg,
                      std::string_view prefix) const override;

  FormationStats stats() const {
    std::lock_guard lock(mu_);
    return stats_;
  }
  /// Buffered wire bytes across all destination staging queues.
  u64 pending_bytes() const;

 private:
  struct Queue {
    Address addr;
    std::vector<Request> reqs;
    /// Parallel per-envelope principal tags (only filled while attribution
    /// is attached); a coalesced run keeps its tail envelope's tag.
    std::vector<obs::Principal> principals;
    u64 bytes{0};
  };
  static u64 key(const Address& a) {
    return (static_cast<u64>(a.kind) << 32) | a.index;
  }
  /// Try to merge a block write into the queue's pending tail envelope.
  bool coalesce_locked(Queue& q, const BlockWriteRequest& w);
  /// Stable-partition metadata envelopes (and their principal tags) ahead of
  /// data; no-op when the queue is homogeneous (the common case — a
  /// destination is either an MDS or an OSD).
  void order_urgent_locked(Queue& q);
  /// Fold, order, pack into frames and ship them.  First error goes sticky
  /// and is returned; later frames still ship (the data must reach the
  /// servers regardless).
  Status flush_queue_locked(Queue& q);
  void flush_all_locked();
  Status take_sticky_locked();

  Transport& inner_;
  FormationConfig cfg_;
  obs::Attribution* attrib_{nullptr};
  obs::SpanCollector* spans_{nullptr};
  u32 track_ns_{0};
  mutable std::mutex mu_;
  std::map<u64, Queue> queues_;  // MDS keys sort before OSD: meta frames first
  Status sticky_{};
  FormationStats stats_;
};

}  // namespace mif::rpc
