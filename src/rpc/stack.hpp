// TransportStack: owns and chains the transport decorators for one cluster.
//
//   top() == FaultTransport( [BatchingTransport(] InprocTransport [)] )
//
// InprocTransport is always present (it dispatches and charges); batching is
// opt-in via TransportOptions::kind; the fault decorator is built only when
// inject_faults is set, so the default request path has zero fault-check
// overhead.  core::ParallelFileSystem holds one stack; tests build their own
// around hand-made Endpoints.
#pragma once

#include <memory>

#include "rpc/batching.hpp"
#include "rpc/fault.hpp"
#include "rpc/inproc.hpp"

namespace mif::rpc {

struct TransportOptions {
  enum class Kind : u8 { kInproc, kBatching };
  /// kInproc preserves the pre-RPC-layer figures exactly; kBatching trades
  /// deferred acks for fewer wire messages.
  Kind kind{Kind::kInproc};
  sim::NetworkConfig meta_net{};
  sim::NetworkConfig data_net{};
  BatchingConfig batching{};
  /// Build a FaultTransport on top (disarmed until FaultTransport::arm).
  bool inject_faults{false};
};

class TransportStack {
 public:
  TransportStack() = default;
  TransportStack(Endpoints eps, const TransportOptions& opt);

  TransportStack(TransportStack&&) = default;
  TransportStack& operator=(TransportStack&&) = default;

  explicit operator bool() const { return top_ != nullptr; }

  /// The transport callers should send through (outermost decorator).
  Transport& top() { return *top_; }

  /// The charging layer (always present).
  InprocTransport& wire() { return *inproc_; }
  const InprocTransport& wire() const { return *inproc_; }

  /// Decorators, when configured (nullptr otherwise).
  BatchingTransport* batching() { return batching_.get(); }
  FaultTransport* fault() { return fault_.get(); }

  const sim::Network& meta_network() const { return inproc_->meta_network(); }
  const sim::Network& data_network() const { return inproc_->data_network(); }

  void set_spans(obs::SpanCollector* spans) {
    if (inproc_) inproc_->set_spans(spans);
  }
  void export_metrics(obs::MetricsRegistry& reg,
                      std::string_view prefix) const {
    if (top_) top_->export_metrics(reg, prefix);
  }

 private:
  std::unique_ptr<InprocTransport> inproc_;
  std::unique_ptr<BatchingTransport> batching_;
  std::unique_ptr<FaultTransport> fault_;
  Transport* top_{nullptr};
};

}  // namespace mif::rpc
