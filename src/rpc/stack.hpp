// TransportStack: owns and chains the transport decorators for one cluster.
//
//   top() == Sharded( [Fault(] [Qos(] [Formation|Batching(] [Async(]
//            Inproc [)] [)] [)] [)] )
//
// InprocTransport is always present (it dispatches and charges); the async
// pipeline is built for pipeline_depth >= 2 OR an adaptive ceiling
// adaptive_depth_max >= 2 (depth 1 IS the sync chain); staging is opt-in via
// TransportOptions::kind — kBatching is the legacy coalescer, kFormation the
// explicit frame-formation engine; the QoS scheduler is built only when
// qos.enabled, above the staging layer so a throttled envelope never
// occupies a staging queue; the fault decorator is built only when
// inject_faults is set, so the default request path has zero fault-check
// overhead; the shard router is built only for mds_shards >= 2 — above the
// fault layer, because multi-MDS routing is client-library logic and each of
// its sub-envelopes (fan-out legs, rename phases) must individually cross
// the "NIC".  core::ParallelFileSystem holds one stack; tests build their
// own around hand-made Endpoints.
#pragma once

#include <memory>

#include "rpc/async.hpp"
#include "rpc/batching.hpp"
#include "rpc/fault.hpp"
#include "rpc/formation.hpp"
#include "rpc/inproc.hpp"
#include "rpc/qos.hpp"
#include "shard/transport.hpp"

namespace mif::rpc {

struct TransportOptions {
  enum class Kind : u8 { kInproc, kBatching, kFormation };
  /// kInproc preserves the pre-RPC-layer figures exactly; kBatching trades
  /// deferred acks for fewer wire messages (legacy unbounded frames);
  /// kFormation stages per destination and packs size-bounded frames.
  Kind kind{Kind::kInproc};
  sim::NetworkConfig meta_net{};
  sim::NetworkConfig data_net{};
  BatchingConfig batching{};
  /// Frame-formation knobs (Kind::kFormation only).
  FormationConfig formation{};
  /// Per-client token-bucket admission control; qos.enabled builds the
  /// QosTransport above the staging layer.
  QosConfig qos{};
  /// In-flight window for the async completion-queue transport; depth <= 1
  /// keeps the fully synchronous chain (no AsyncTransport is built, so the
  /// default figures stay byte-identical).
  u32 pipeline_depth{1};
  /// Adaptive pipeline ceiling: >= 2 arms AsyncTransport's depth controller
  /// in [2, adaptive_depth_max] (builds the async layer even when
  /// pipeline_depth is 1, starting at max(2, pipeline_depth)).  0 = static.
  u32 adaptive_depth_max{0};
  /// Disk geometry for AsyncTransport's per-envelope service estimate
  /// (should match the OSDs' spindle geometry).
  sim::DiskGeometry geometry{};
  /// Build a FaultTransport on top (disarmed until FaultTransport::arm).
  bool inject_faults{false};
  /// Metadata shards to route across; <= 1 keeps the single-MDS chain (no
  /// ShardedTransport is built, so the default figures stay byte-identical).
  u32 mds_shards{1};
  /// Namespace placement across shards (ignored for mds_shards <= 1).
  shard::Policy placement{shard::Policy::kSubtree};
};

class TransportStack {
 public:
  TransportStack() = default;
  TransportStack(Endpoints eps, const TransportOptions& opt);

  TransportStack(TransportStack&&) = default;
  TransportStack& operator=(TransportStack&&) = default;

  explicit operator bool() const { return top_ != nullptr; }

  /// The transport callers should send through (outermost decorator).
  Transport& top() { return *top_; }

  /// The charging layer (always present).
  InprocTransport& wire() { return *inproc_; }
  const InprocTransport& wire() const { return *inproc_; }

  /// Decorators, when configured (nullptr otherwise).
  AsyncTransport* async() { return async_.get(); }
  const AsyncTransport* async() const { return async_.get(); }
  BatchingTransport* batching() { return batching_.get(); }
  FormationTransport* formation() { return formation_.get(); }
  const FormationTransport* formation() const { return formation_.get(); }
  QosTransport* qos() { return qos_.get(); }
  const QosTransport* qos() const { return qos_.get(); }
  FaultTransport* fault() { return fault_.get(); }
  shard::ShardedTransport* sharded() { return sharded_.get(); }
  const shard::ShardedTransport* sharded() const { return sharded_.get(); }

  const sim::Network& meta_network() const { return inproc_->meta_network(); }
  const sim::Network& data_network() const { return inproc_->data_network(); }

  void set_spans(obs::SpanCollector* spans) {
    // Decorators forward set_spans inward; the async layer also claims its
    // sim-track namespace on the way through.
    if (top_) top_->set_spans(spans);
  }
  void set_attribution(obs::Attribution* attrib) {
    if (top_) top_->set_attribution(attrib);
  }
  void export_metrics(obs::MetricsRegistry& reg,
                      std::string_view prefix) const {
    if (top_) top_->export_metrics(reg, prefix);
  }

 private:
  std::unique_ptr<InprocTransport> inproc_;
  std::unique_ptr<AsyncTransport> async_;
  std::unique_ptr<BatchingTransport> batching_;
  std::unique_ptr<FormationTransport> formation_;
  std::unique_ptr<QosTransport> qos_;
  std::unique_ptr<FaultTransport> fault_;
  std::unique_ptr<shard::ShardedTransport> sharded_;
  Transport* top_{nullptr};
};

}  // namespace mif::rpc
