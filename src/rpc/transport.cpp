#include "rpc/transport.hpp"

#include <algorithm>

namespace mif::rpc {

bool CompletionQueue::before(const Entry& e, const Entry& f) {
  // Completed-at-issue entries (done_ms < 0) sort by admission; modeled
  // completions by their timeline position, admission order breaking ties.
  const double ed = e.done_ms < 0 ? 0.0 : e.done_ms;
  const double fd = f.done_ms < 0 ? 0.0 : f.done_ms;
  if (ed != fd) return ed < fd;
  return e.seq < f.seq;
}

Ticket CompletionQueue::admit(const Address& to, Op op,
                              Result<Response> result, double done_ms) {
  std::lock_guard lock(mu_);
  Entry e;
  e.ticket = Ticket{next_id_++, to, op};
  e.result = std::move(result);
  e.done_ms = done_ms;
  e.seq = next_seq_++;
  entries_.push_back(std::move(e));
  return entries_.back().ticket;
}

void CompletionQueue::set_clock(double now_ms) {
  std::lock_guard lock(mu_);
  clock_ms_ = std::max(clock_ms_, now_ms);
}

std::optional<Completion> CompletionQueue::poll() {
  std::lock_guard lock(mu_);
  auto best = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->done_ms > clock_ms_) continue;  // still in flight at the clock
    if (best == entries_.end() || before(*it, *best)) best = it;
  }
  if (best == entries_.end()) return std::nullopt;
  Completion c{best->ticket, std::move(best->result),
               best->done_ms < 0 ? 0.0 : best->done_ms};
  entries_.erase(best);
  return c;
}

std::optional<Result<Response>> CompletionQueue::try_take(const Ticket& t) {
  std::lock_guard lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->ticket.id != t.id) continue;
    if (it->done_ms > clock_ms_) return std::nullopt;
    Result<Response> r = std::move(it->result);
    entries_.erase(it);
    return r;
  }
  return std::nullopt;
}

Result<Response> CompletionQueue::wait(const Ticket& t) {
  std::lock_guard lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->ticket.id != t.id) continue;
    // Waiting blocks the caller to the ticket's completion: the modeled
    // timeline advances, so everything issued before it becomes pollable.
    clock_ms_ = std::max(clock_ms_, it->done_ms);
    Result<Response> r = std::move(it->result);
    entries_.erase(it);
    return r;
  }
  return Errc::kInvalid;  // unknown or already claimed
}

Status CompletionQueue::wait_all() {
  std::lock_guard lock(mu_);
  std::stable_sort(entries_.begin(), entries_.end(), before);
  Status first{};
  for (Entry& e : entries_) {
    clock_ms_ = std::max(clock_ms_, e.done_ms);
    if (!e.result && first.ok()) first = e.result.error();
  }
  entries_.clear();
  return first;
}

std::size_t CompletionQueue::in_flight() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

}  // namespace mif::rpc
