// FaultTransport: fault-injecting decorator — the outermost layer, so a
// fault hits before any queueing or coalescing, exactly where a NIC or
// switch would lose the message.
//
// Armed with a FaultConfig it can
//   * drop envelopes: after `drop_after` further calls, the next
//     `drop_count` calls fail with Errc::kIo without reaching the inner
//     transport (the servers never see them — retries must be idempotent);
//   * delay envelopes: every call is slowed by `delay_ms`; a delay at or
//     beyond `timeout_ms` is a timeout and also surfaces as Errc::kIo;
//   * kill an OSD: `kill_osd(target, at_ms)` schedules a whole-target
//     failure on the simulated clock.  The first envelope issued at or
//     after `at_ms` trips the kill: the sink callback (wired by
//     core::ParallelFileSystem) marks the target dead in the
//     redundancy::HealthMap, wipes its contents (disk replacement) and
//     queues repair.  While a target is dead, READ-class envelopes
//     addressed to it fail with kIo here — defense in depth under the
//     client's own health-aware routing; write-class envelopes pass (they
//     land on the freshly formatted replacement, which is how the repair
//     service rebuilds it).
//
// Disarmed (the default) it forwards everything untouched; kill scheduling
// is independent of arm()/disarm() (a kill is a scenario event, not a
// drop/delay profile).
#pragma once

#include <functional>
#include <mutex>
#include <vector>

#include "rpc/transport.hpp"

namespace mif::rpc {

struct FaultConfig {
  u64 drop_after{0};      // calls to let through before dropping starts
  u64 drop_count{0};      // how many calls to drop once started
  double delay_ms{0.0};   // added latency per call
  double timeout_ms{50.0};  // delays >= this are timeouts (kIo)
};

struct FaultStats {
  u64 calls{0};
  u64 dropped{0};  // drops + timeouts (the caller sees kIo either way)
  u64 delayed{0};
  double delay_total_ms{0.0};
  u64 kills{0};       // kill-OSD events fired
  u64 dead_reads{0};  // read envelopes refused because the OSD is dead
};

class FaultTransport final : public Transport {
 public:
  explicit FaultTransport(Transport& inner) : inner_(inner) {}

  void arm(FaultConfig cfg) {
    std::lock_guard lock(mu_);
    cfg_ = cfg;
    armed_ = true;
  }
  void disarm() {
    std::lock_guard lock(mu_);
    armed_ = false;
  }
  FaultStats stats() const {
    std::lock_guard lock(mu_);
    return stats_;
  }

  // --- kill-OSD fault mode ---------------------------------------------------
  /// Schedule a deterministic whole-target failure: the first envelope
  /// issued once the simulated clock (set_kill_clock) reaches `at_ms` fires
  /// the kill sink for `target`.  Multiple kills may be scheduled.
  void kill_osd(u32 target, double at_ms);
  /// The simulated clock kills are scheduled against (the cluster-max
  /// timeline, wired at mount).  Without one, kills fire on the first call.
  void set_kill_clock(std::function<double()> clock);
  /// Invoked exactly once per fired kill, outside the fault lock (it wipes
  /// the target and queues repair).
  void set_kill_sink(std::function<void(u32)> sink);
  /// Per-OSD death probe (the redundancy::HealthMap); when set, read-class
  /// envelopes to a dead OSD fail with kIo.
  void set_dead_probe(std::function<bool(u32)> dead);

  Result<Response> call(const Address& to, const Request& req) override {
    poll_kills();
    if (fires()) return Errc::kIo;
    if (refuses(to, req)) return Errc::kIo;
    return inner_.call(to, req);
  }
  Ticket call_async(const Address& to, const Request& req) override {
    // A dropped issue still yields a ticket: the loss surfaces as kIo when
    // the caller drains, on exactly the envelope that was lost.
    poll_kills();
    if (fires()) return completions().admit(to, op_of(req), Errc::kIo);
    if (refuses(to, req)) return completions().admit(to, op_of(req), Errc::kIo);
    return inner_.call_async(to, req);
  }
  CompletionQueue& completions() override { return inner_.completions(); }
  Status call_batch(const Address& to, std::vector<Request> reqs) override {
    poll_kills();
    if (fires()) return Errc::kIo;  // the whole frame is lost as a unit
    return inner_.call_batch(to, std::move(reqs));
  }
  Status flush() override {
    poll_kills();
    return inner_.flush();
  }
  void pump() override {
    poll_kills();
    inner_.pump();
  }
  void set_spans(obs::SpanCollector* spans) override {
    spans_ = spans;
    inner_.set_spans(spans);
  }
  void set_attribution(obs::Attribution* attrib) override {
    attrib_ = attrib;
    inner_.set_attribution(attrib);
  }
  void export_metrics(obs::MetricsRegistry& reg,
                      std::string_view prefix) const override;

 private:
  /// True when this call must fail with kIo (drop or timeout).
  bool fires();
  /// Fire any scheduled kill whose time has come (sink runs unlocked).
  void poll_kills();
  /// True when `req` is a read-class envelope addressed to a dead OSD.
  bool refuses(const Address& to, const Request& req);

  struct KillEvent {
    u32 target{0};
    double at_ms{0.0};
    bool fired{false};
  };

  Transport& inner_;
  mutable std::mutex mu_;
  FaultConfig cfg_{};
  bool armed_{false};
  FaultStats stats_;
  std::vector<KillEvent> kills_;
  std::function<double()> kill_clock_;
  std::function<void(u32)> kill_sink_;
  std::function<bool(u32)> dead_probe_;
  obs::SpanCollector* spans_{nullptr};
  obs::Attribution* attrib_{nullptr};
  /// Lazily-reserved namespace for `fault.delay` sim spans (cumulative
  /// delay clock).  Guarded by mu_.
  bool span_ns_set_{false};
  u32 span_ns_{0};
};

}  // namespace mif::rpc
