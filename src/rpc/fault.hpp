// FaultTransport: fault-injecting decorator — the outermost layer, so a
// fault hits before any queueing or coalescing, exactly where a NIC or
// switch would lose the message.
//
// Armed with a FaultConfig it can
//   * drop envelopes: after `drop_after` further calls, the next
//     `drop_count` calls fail with Errc::kIo without reaching the inner
//     transport (the servers never see them — retries must be idempotent);
//   * delay envelopes: every call is slowed by `delay_ms`; a delay at or
//     beyond `timeout_ms` is a timeout and also surfaces as Errc::kIo.
//
// Disarmed (the default) it forwards everything untouched.
#pragma once

#include <mutex>

#include "rpc/transport.hpp"

namespace mif::rpc {

struct FaultConfig {
  u64 drop_after{0};      // calls to let through before dropping starts
  u64 drop_count{0};      // how many calls to drop once started
  double delay_ms{0.0};   // added latency per call
  double timeout_ms{50.0};  // delays >= this are timeouts (kIo)
};

struct FaultStats {
  u64 calls{0};
  u64 dropped{0};  // drops + timeouts (the caller sees kIo either way)
  u64 delayed{0};
  double delay_total_ms{0.0};
};

class FaultTransport final : public Transport {
 public:
  explicit FaultTransport(Transport& inner) : inner_(inner) {}

  void arm(FaultConfig cfg) {
    std::lock_guard lock(mu_);
    cfg_ = cfg;
    armed_ = true;
  }
  void disarm() {
    std::lock_guard lock(mu_);
    armed_ = false;
  }
  FaultStats stats() const {
    std::lock_guard lock(mu_);
    return stats_;
  }

  Result<Response> call(const Address& to, const Request& req) override {
    if (fires()) return Errc::kIo;
    return inner_.call(to, req);
  }
  Ticket call_async(const Address& to, const Request& req) override {
    // A dropped issue still yields a ticket: the loss surfaces as kIo when
    // the caller drains, on exactly the envelope that was lost.
    if (fires()) return completions().admit(to, op_of(req), Errc::kIo);
    return inner_.call_async(to, req);
  }
  CompletionQueue& completions() override { return inner_.completions(); }
  Status call_batch(const Address& to, std::vector<Request> reqs) override {
    if (fires()) return Errc::kIo;  // the whole frame is lost as a unit
    return inner_.call_batch(to, std::move(reqs));
  }
  Status flush() override { return inner_.flush(); }
  void pump() override { inner_.pump(); }
  void set_spans(obs::SpanCollector* spans) override {
    spans_ = spans;
    inner_.set_spans(spans);
  }
  void set_attribution(obs::Attribution* attrib) override {
    attrib_ = attrib;
    inner_.set_attribution(attrib);
  }
  void export_metrics(obs::MetricsRegistry& reg,
                      std::string_view prefix) const override;

 private:
  /// True when this call must fail with kIo (drop or timeout).
  bool fires();

  Transport& inner_;
  mutable std::mutex mu_;
  FaultConfig cfg_{};
  bool armed_{false};
  FaultStats stats_;
  obs::SpanCollector* spans_{nullptr};
  obs::Attribution* attrib_{nullptr};
  /// Lazily-reserved namespace for `fault.delay` sim spans (cumulative
  /// delay clock).  Guarded by mu_.
  bool span_ns_set_{false};
  u32 span_ns_{0};
};

}  // namespace mif::rpc
