// Typed request/response envelopes — the wire vocabulary of the cluster.
//
// Every cross-node interaction (client ↔ MDS, client ↔ storage target) is
// one of these operations; the structs below are what a real deployment
// would serialise onto the wire.  The simulator mostly passes them by
// reference through an in-process Transport (src/rpc/transport.hpp), but the
// encode/decode round trip is real, and every payload size the network model
// charges is computed from the envelope itself — no magic constants.
//
// The taxonomy follows the paper's aggregation argument (§II-A2): what
// matters for parallel-I/O cost is how many wire messages a logical
// operation becomes, so each *aggregated* server operation (open-getlayout,
// readdirplus) is ONE envelope, and block I/O envelopes carry *batches* of
// runs so a batching transport can coalesce them.
//
// Adding an op (see docs/ARCHITECTURE.md for the walk-through):
//   1. add the enum value + a row in kOpTraits (same order!),
//   2. define the request struct (kOp member + body_bytes()),
//   3. add it to the Request variant (same position as the enum value),
//   4. extend encode/decode in envelope.cpp and the dispatch visitor in
//      inproc.cpp, plus a stub method on rpc::Client.
//
// Replica-target annotation (src/redundancy/redundancy.hpp): an envelope
// addressed to a replica subfile carries the copy tag INSIDE its InodeNo
// (bits 48..55, redundancy::replica_ino) rather than as a new field.  The
// codec, the op taxonomy and the wire-size model above are untouched by
// replication; Formation coalescing keys and QoS classification see a
// distinct (ino, stream) per copy for free; and a storage target serves a
// replica subfile exactly like any other file.  Only the redundancy layer
// ever folds the tag back out (redundancy::primary_ino).
#pragma once

#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "mfs/layout.hpp"
#include "util/result.hpp"
#include "util/runs.hpp"
#include "util/types.hpp"

namespace mif::rpc {

/// Every operation an envelope can carry.  Order must match the Request
/// variant and the kOpTraits table.
enum class Op : u8 {
  // Metadata-server ops.
  kMkdir = 0,
  kCreate,
  kStat,
  kUtime,
  kUnlink,
  kRename,
  kResolve,  // cached-handle revalidation: free under the DLM-style lease
  kOpenGetLayout,
  kReaddir,
  kReaddirPlus,
  kReportExtents,
  // Storage-target (data path) ops.
  kBlockWrite,
  kBlockRead,
  kGetExtents,
  kPreallocate,
  kCloseFile,
  kDeleteFile,
  // List/datatype I/O (noncontiguous regions in one envelope).
  kWriteList,
  kReadList,
  kWriteStrided,
  kReadStrided,
};
inline constexpr std::size_t kOpCount = 21;

/// Per-op routing/charging properties.  `span` strings have static storage —
/// ScopedSpan requires it.
struct OpTraits {
  std::string_view name;  // "mkdir" — metric key segment
  std::string_view span;  // "rpc.mkdir" — span phase name
  bool meta;              // addressed to an MDS (vs a storage target)
  bool free;              // costs no wire message (client-local revalidation)
  bool deferrable;        // a batching transport may queue + ack it early
};
const OpTraits& traits(Op op);
std::string_view to_string(Op op);

/// Envelope destination: which server of which kind.
struct Address {
  enum class Kind : u8 { kMds = 0, kOsd = 1 };
  Kind kind{Kind::kMds};
  u32 index{0};
  constexpr auto operator<=>(const Address&) const = default;
};
constexpr Address mds_at(u32 i) { return {Address::Kind::kMds, i}; }
constexpr Address osd_at(u32 i) { return {Address::Kind::kOsd, i}; }

/// Fixed framing overhead per wire message: op tag, ids, lengths, checksum.
inline constexpr u64 kHeaderBytes = 24;
/// Wire size of one extent descriptor in a shipped layout.
inline constexpr u64 kExtentWireBytes = 32;
/// Wire size of the fixed dirent fields (ino + type + length prefix).
inline constexpr u64 kDirentFixedBytes = 13;
/// Wire size of the inode attributes a readdirplus entry carries.
inline constexpr u64 kInodeAttrBytes = 96;

namespace wire {
inline u64 str_bytes(const std::string& s) { return 4 + s.size(); }
}  // namespace wire

// --- requests ---------------------------------------------------------------
// Each request knows its op and the byte size of its encoded body.

struct MkdirRequest {
  static constexpr Op kOp = Op::kMkdir;
  std::string path;
  u64 body_bytes() const { return wire::str_bytes(path); }
};

struct CreateRequest {
  static constexpr Op kOp = Op::kCreate;
  std::string path;
  u64 body_bytes() const { return wire::str_bytes(path); }
};

struct StatRequest {
  static constexpr Op kOp = Op::kStat;
  std::string path;
  u64 body_bytes() const { return wire::str_bytes(path); }
};

struct UtimeRequest {
  static constexpr Op kOp = Op::kUtime;
  std::string path;
  u64 body_bytes() const { return wire::str_bytes(path); }
};

struct UnlinkRequest {
  static constexpr Op kOp = Op::kUnlink;
  std::string path;
  u64 body_bytes() const { return wire::str_bytes(path); }
};

struct RenameRequest {
  static constexpr Op kOp = Op::kRename;
  std::string from;
  std::string to;
  u64 body_bytes() const {
    return wire::str_bytes(from) + wire::str_bytes(to);
  }
};

/// Revalidate a cached layout handle.  Under the lease/lock model the client
/// holds a delegation for layouts it cached, so this costs no wire message —
/// but it still flows through the transport, keeping the seam complete.
struct ResolveRequest {
  static constexpr Op kOp = Op::kResolve;
  std::string path;
  u64 body_bytes() const { return wire::str_bytes(path); }
};

struct OpenGetLayoutRequest {
  static constexpr Op kOp = Op::kOpenGetLayout;
  std::string path;
  u64 body_bytes() const { return wire::str_bytes(path); }
};

struct ReaddirRequest {
  static constexpr Op kOp = Op::kReaddir;
  std::string path;
  u64 body_bytes() const { return wire::str_bytes(path); }
};

struct ReaddirPlusRequest {
  static constexpr Op kOp = Op::kReaddirPlus;
  std::string path;
  u64 body_bytes() const { return wire::str_bytes(path); }
};

struct ReportExtentsRequest {
  static constexpr Op kOp = Op::kReportExtents;
  InodeNo ino{};
  u64 extent_count{0};
  u64 body_bytes() const { return 16; }
};

/// Write `runs` of the target-local subfile on behalf of `stream`.  A
/// batching transport grows `runs` by coalescing contiguous writes; the data
/// payload (blocks × block size) rides along with the envelope.
struct BlockWriteRequest {
  static constexpr Op kOp = Op::kBlockWrite;
  InodeNo ino{};
  StreamId stream{};
  std::vector<BlockRun> runs;
  u64 blocks() const {
    u64 n = 0;
    for (const BlockRun& r : runs) n += r.count;
    return n;
  }
  u64 body_bytes() const { return 8 + 8 + 4 + runs.size() * 16; }
};

struct BlockReadRequest {
  static constexpr Op kOp = Op::kBlockRead;
  InodeNo ino{};
  std::vector<BlockRun> runs;
  u64 blocks() const {
    u64 n = 0;
    for (const BlockRun& r : runs) n += r.count;
    return n;
  }
  u64 body_bytes() const { return 8 + 4 + runs.size() * 16; }
};

struct GetExtentsRequest {
  static constexpr Op kOp = Op::kGetExtents;
  InodeNo ino{};
  u64 body_bytes() const { return 8; }
};

struct PreallocateRequest {
  static constexpr Op kOp = Op::kPreallocate;
  InodeNo ino{};
  u64 total_blocks{0};
  u64 body_bytes() const { return 16; }
};

struct CloseFileRequest {
  static constexpr Op kOp = Op::kCloseFile;
  InodeNo ino{};
  u64 body_bytes() const { return 8; }
};

struct DeleteFileRequest {
  static constexpr Op kOp = Op::kDeleteFile;
  InodeNo ino{};
  u64 body_bytes() const { return 8; }
};

/// List I/O (PVFS-style): one envelope writes an arbitrary set of
/// target-local runs in a single server pass.  Unlike kBlockWrite — whose
/// run vector only ever grows by transport-level coalescing of adjacent
/// writes — a list envelope is *born* noncontiguous: the client (or the
/// collective aggregator) lowers a whole file region into it up front, so
/// the envelope count tracks regions, not blocks.
struct WriteListRequest {
  static constexpr Op kOp = Op::kWriteList;
  InodeNo ino{};
  StreamId stream{};
  std::vector<BlockRun> runs;
  u64 blocks() const {
    u64 n = 0;
    for (const BlockRun& r : runs) n += r.count;
    return n;
  }
  u64 body_bytes() const { return 8 + 8 + 4 + runs.size() * 16; }
};

struct ReadListRequest {
  static constexpr Op kOp = Op::kReadList;
  InodeNo ino{};
  std::vector<BlockRun> runs;
  u64 blocks() const {
    u64 n = 0;
    for (const BlockRun& r : runs) n += r.count;
    return n;
  }
  u64 body_bytes() const { return 8 + 4 + runs.size() * 16; }
};

/// Datatype/strided I/O (MPI-IO style): a regular pattern described by a
/// (count, stride, block_len) triple instead of an enumerated run list —
/// constant wire size no matter how many pieces the pattern has.
struct WriteStridedRequest {
  static constexpr Op kOp = Op::kWriteStrided;
  InodeNo ino{};
  StreamId stream{};
  FileBlock start{};
  u64 count{0};      // number of pieces
  u64 stride{0};     // start-to-start gap, in blocks
  u64 block_len{0};  // blocks per piece
  u64 blocks() const { return count * block_len; }
  std::vector<BlockRun> runs() const {
    return util::expand_strided({start, count, stride, block_len});
  }
  u64 body_bytes() const { return 8 + 8 + 8 + 8 + 8 + 8; }
};

struct ReadStridedRequest {
  static constexpr Op kOp = Op::kReadStrided;
  InodeNo ino{};
  FileBlock start{};
  u64 count{0};
  u64 stride{0};
  u64 block_len{0};
  u64 blocks() const { return count * block_len; }
  std::vector<BlockRun> runs() const {
    return util::expand_strided({start, count, stride, block_len});
  }
  u64 body_bytes() const { return 8 + 8 + 8 + 8 + 8; }
};

/// Variant order MUST match the Op enum (op_of relies on the kOp members,
/// encode/decode on the variant index).
using Request =
    std::variant<MkdirRequest, CreateRequest, StatRequest, UtimeRequest,
                 UnlinkRequest, RenameRequest, ResolveRequest,
                 OpenGetLayoutRequest, ReaddirRequest, ReaddirPlusRequest,
                 ReportExtentsRequest, BlockWriteRequest, BlockReadRequest,
                 GetExtentsRequest, PreallocateRequest, CloseFileRequest,
                 DeleteFileRequest, WriteListRequest, ReadListRequest,
                 WriteStridedRequest, ReadStridedRequest>;

// --- responses --------------------------------------------------------------
// Fixed-size responses piggyback on the request round trip (bulk_bytes 0);
// variable-length ones (layouts, listings, block data) are a second transfer
// whose size the transport charges from the actual content.

struct VoidResponse {};

struct InodeResponse {
  InodeNo ino{};
};

struct OpenGetLayoutResponse {
  InodeNo ino{};
  u64 extent_count{0};
};

struct ReaddirResponse {
  std::vector<mfs::DirEntry> entries;
  bool plus{false};
};

struct ExtentCountResponse {
  u64 extent_count{0};
};

/// Block data shipped back by a read; the simulator tracks only the size.
struct BlockDataResponse {
  u64 blocks{0};
};

using Response = std::variant<VoidResponse, InodeResponse,
                              OpenGetLayoutResponse, ReaddirResponse,
                              ExtentCountResponse, BlockDataResponse>;

// --- free functions ---------------------------------------------------------

Op op_of(const Request& req);

/// Total bytes this request puts on the wire: framing header + encoded body
/// + any data payload riding along (block writes).
u64 wire_bytes(const Request& req);

/// Bytes of the variable-length reply transfer; 0 when the response
/// piggybacks on the request exchange.
u64 bulk_bytes(const Response& resp);

/// Byte-exact serialisation (tag + body).  decode(encode(x)) == x; used by
/// the round-trip tests and any future real wire transport.
std::vector<u8> encode(const Request& req);
std::vector<u8> encode(const Response& resp);
Result<Request> decode_request(const std::vector<u8>& buf);
Result<Response> decode_response(const std::vector<u8>& buf);

}  // namespace mif::rpc
