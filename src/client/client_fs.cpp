#include "client/client_fs.hpp"

#include "core/pfs.hpp"
#include "obs/attrib.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"

namespace mif::client {

ClientFs::ClientFs(core::ParallelFileSystem& fs, ClientId id)
    : fs_(&fs), id_(id) {}

void ClientFs::export_metrics(obs::MetricsRegistry& reg,
                              std::string_view prefix) const {
  obs::publish(reg, prefix, stats_);
}

Result<FileHandle> ClientFs::create(std::string_view path) {
  obs::ScopedSpan span(fs_->spans(), "client.create", id_.v);
  obs::ScopedPrincipal who({id_.v, obs::OpClass::kMeta});
  auto ino = fs_->rpc().create(path);
  if (!ino) return ino.error();
  ++stats_.opens;
  return FileHandle{*ino, std::string(path)};
}

Result<FileHandle> ClientFs::open(std::string_view path) {
  obs::ScopedSpan span(fs_->spans(), "client.open", id_.v);
  obs::ScopedPrincipal who({id_.v, obs::OpClass::kMeta});
  ++stats_.opens;
  const std::string key(path);
  if (layout_cache_.contains(key)) {
    // Layout already cached from an earlier open; the resolve envelope is a
    // free revalidation of the cached handle (traits(kResolve).free).
    ++stats_.layout_cache_hits;
    auto ino = fs_->rpc().resolve(path);
    if (!ino) return ino.error();
    return FileHandle{*ino, key};
  }
  auto r = fs_->rpc().open_getlayout(path);
  if (!r) return r.error();
  layout_cache_[key] = r->extent_count;
  return FileHandle{r->ino, key};
}

Result<FileHandle> ClientFs::rename(std::string_view from,
                                    std::string_view to) {
  obs::ScopedSpan span(fs_->spans(), "client.rename", id_.v);
  obs::ScopedPrincipal who({id_.v, obs::OpClass::kMeta});
  auto ino = fs_->rpc().rename(from, to);
  if (!ino) return ino.error();
  // A cross-shard rename mints a new inode; drop the stale cached layout so
  // the next open re-fetches under the new name.
  layout_cache_.erase(std::string(from));
  return FileHandle{*ino, std::string(to)};
}

Status ClientFs::write(const FileHandle& fh, u32 pid, u64 offset_bytes,
                       u64 len_bytes) {
  std::vector<rpc::Ticket> tickets;
  Status issued = write_async(fh, pid, offset_bytes, len_bytes, tickets);
  Status drained = drain(tickets);
  return issued.ok() ? drained : issued;
}

u64 ClientFs::list_io_runs() const { return fs_->config().list_io_max_runs; }

void ClientFs::gather_runs(
    u64 first, u64 last,
    std::map<u32, std::vector<BlockRun>>& per_target) const {
  for (const osd::StripeSlice& s :
       osd::slices_for(fs_->stripe(), FileBlock{first}, last - first)) {
    util::append_run(per_target[s.target], BlockRun{s.local_start, s.count});
  }
}

Status ClientFs::issue_write_runs_to(InodeNo ino, StreamId stream, u32 target,
                                     const std::vector<BlockRun>& runs,
                                     std::vector<rpc::Ticket>& out) {
  rpc::CompletionQueue& cq = fs_->rpc().completions();
  const u64 max_runs = std::max<u64>(list_io_runs(), 1);
  for (std::size_t at = 0; at < runs.size(); at += max_runs) {
    const std::span<const BlockRun> chunk{
        runs.data() + at, std::min<std::size_t>(max_runs, runs.size() - at)};
    u64 blocks = 0;
    for (const BlockRun& r : chunk) blocks += r.count;
    obs::ScopedSpan unit(fs_->spans(), "osd.stripe_unit", target, blocks);
    rpc::Ticket t;
    util::StridedRuns pat;
    if (chunk.size() == 1) {
      t = fs_->rpc().block_write_async(target, ino, stream, chunk[0].start,
                                       chunk[0].count);
    } else if (util::as_strided(chunk, pat)) {
      t = fs_->rpc().write_strided_async(target, ino, stream, pat.start,
                                         pat.count, pat.stride, pat.block_len);
    } else {
      t = fs_->rpc().write_list_async(
          target, ino, stream, {chunk.begin(), chunk.end()});
    }
    if (auto r = cq.try_take(t)) {
      if (!*r) return r->error();
    } else {
      out.push_back(t);
    }
  }
  return {};
}

Status ClientFs::issue_write_runs(const FileHandle& fh, StreamId stream,
                                  u32 target, std::vector<BlockRun> runs,
                                  std::vector<rpc::Ticket>& out) {
  if (!replicas_on())
    return issue_write_runs_to(fh.ino, stream, target, runs, out);
  // Replica fan: the same local runs go to the primary and to every copy's
  // rotated target, under the tagged subfile ino (the copies keep the
  // primary's local addresses — the invariant degraded reads rely on).
  const redundancy::Policy& pol = fs_->redundancy_policy();
  redundancy::HealthMap& health = fs_->health();
  redundancy::Stats& red = fs_->redundancy_stats();
  u32 issued = 0;
  Status first{};
  for (u32 c = 0; c <= pol.copies(); ++c) {
    const u32 t =
        c == 0 ? target : redundancy::copy_target(fs_->stripe(), target, c);
    if (!health.alive(t)) {
      // Skip the dead copy: surviving replicas carry the data and the
      // repair service re-converges the replacement later.
      if (c == 0) red.degraded_writes.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const InodeNo ino =
        c == 0 ? fh.ino : redundancy::replica_ino(fh.ino, c);
    if (c > 0) red.replica_writes.fetch_add(1, std::memory_order_relaxed);
    if (Status st = issue_write_runs_to(ino, stream, t, runs, out);
        !st && first.ok()) {
      first = st;
    }
    ++issued;
  }
  if (issued == 0) {
    red.lost_routes.fetch_add(1, std::memory_order_relaxed);
    return Errc::kIo;
  }
  return first;
}

Status ClientFs::issue_read_runs_to(InodeNo ino, u32 target,
                                    const std::vector<BlockRun>& runs,
                                    std::vector<rpc::Ticket>& out) {
  rpc::CompletionQueue& cq = fs_->rpc().completions();
  const u64 max_runs = std::max<u64>(list_io_runs(), 1);
  for (std::size_t at = 0; at < runs.size(); at += max_runs) {
    const std::span<const BlockRun> chunk{
        runs.data() + at, std::min<std::size_t>(max_runs, runs.size() - at)};
    u64 blocks = 0;
    for (const BlockRun& r : chunk) blocks += r.count;
    obs::ScopedSpan unit(fs_->spans(), "osd.stripe_unit", target, blocks);
    rpc::Ticket t;
    util::StridedRuns pat;
    if (chunk.size() == 1) {
      t = fs_->rpc().block_read_async(target, ino, chunk[0].start,
                                      chunk[0].count);
    } else if (util::as_strided(chunk, pat)) {
      t = fs_->rpc().read_strided_async(target, ino, pat.start, pat.count,
                                        pat.stride, pat.block_len);
    } else {
      t = fs_->rpc().read_list_async(target, ino,
                                     {chunk.begin(), chunk.end()});
    }
    if (auto r = cq.try_take(t)) {
      if (!*r) return r->error();
    } else {
      out.push_back(t);
    }
  }
  return {};
}

Status ClientFs::issue_read_runs(const FileHandle& fh, u32 target,
                                 std::vector<BlockRun> runs,
                                 std::vector<rpc::Ticket>& out) {
  u32 t = target;
  InodeNo ino = fh.ino;
  if (replicas_on()) {
    auto routed = route_read(target, fh.ino);
    if (!routed) return routed.error();
    t = routed->first;
    ino = routed->second;
  }
  return issue_read_runs_to(ino, t, runs, out);
}

bool ClientFs::replicas_on() const {
  return fs_->redundancy_policy().enabled();
}

Result<std::pair<u32, InodeNo>> ClientFs::route_read(u32 target, InodeNo ino) {
  redundancy::HealthMap& health = fs_->health();
  if (health.alive(target)) return std::pair{target, ino};
  // Degraded read: the copies hold the same local block addresses under the
  // tagged subfile ino, so re-routing is a pure (target, ino) swap.
  const redundancy::Policy& pol = fs_->redundancy_policy();
  redundancy::Stats& red = fs_->redundancy_stats();
  for (u32 c = 1; c <= pol.copies(); ++c) {
    const u32 t = redundancy::copy_target(fs_->stripe(), target, c);
    if (health.alive(t)) {
      red.degraded_reads.fetch_add(1, std::memory_order_relaxed);
      return std::pair{t, redundancy::replica_ino(ino, c)};
    }
  }
  red.lost_routes.fetch_add(1, std::memory_order_relaxed);
  return Errc::kIo;
}

Status ClientFs::write_async(const FileHandle& fh, u32 pid, u64 offset_bytes,
                             u64 len_bytes, std::vector<rpc::Ticket>& out) {
  if (!fh.valid() || len_bytes == 0) return Errc::kInvalid;
  obs::ScopedSpan span(fs_->spans(), "client.write", fh.ino.v, len_bytes);
  obs::ScopedPrincipal who({id_.v, obs::OpClass::kData});
  const u64 first = offset_bytes / kBlockSize;
  const u64 last = (offset_bytes + len_bytes + kBlockSize - 1) / kBlockSize;
  const StreamId stream{id_.v, pid};
  rpc::CompletionQueue& cq = fs_->rpc().completions();
  if (list_io_runs() > 0) {
    // List mode: a region spanning several stripe rounds becomes one merged
    // run set per target — one envelope each — instead of one per slice.
    std::map<u32, std::vector<BlockRun>> per_target;
    gather_runs(first, last, per_target);
    for (auto& [target, runs] : per_target) {
      if (Status st = issue_write_runs(fh, stream, target, std::move(runs), out);
          !st)
        return st;
    }
  } else if (replicas_on()) {
    // Per-block mode with replication: each slice still becomes one
    // block_write envelope for the primary, plus one per alive copy — the
    // fan lives in issue_write_runs so both I/O modes share it.
    for (const osd::StripeSlice& s :
         osd::slices_for(fs_->stripe(), FileBlock{first}, last - first)) {
      if (Status st = issue_write_runs(
              fh, stream, s.target, {BlockRun{s.local_start, s.count}}, out);
          !st)
        return st;
    }
  } else {
    for (const osd::StripeSlice& s :
         osd::slices_for(fs_->stripe(), FileBlock{first}, last - first)) {
      obs::ScopedSpan unit(fs_->spans(), "osd.stripe_unit", s.target, s.count);
      rpc::Ticket t = fs_->rpc().block_write_async(s.target, fh.ino, stream,
                                                   s.local_start, s.count);
      if (auto r = cq.try_take(t)) {
        // Completed at issue (the sync chain): a failure stops the loop
        // before the next slice, exactly like the blocking path.
        if (!*r) return r->error();
      } else {
        out.push_back(t);
      }
    }
  }
  ++stats_.writes;
  stats_.bytes_written += len_bytes;
  // Periodic layout shipping: every so many writes the client pushes the
  // file's grown extent list to the MDS, which pays CPU to merge and index
  // it — the continual cost Table I correlates with fragmentation.
  if (++writes_since_report_[fh.ino.v] >= 64) {
    writes_since_report_[fh.ino.v] = 0;
    (void)fs_->rpc().report_extents(fh.ino, remote_extents(fh.ino));
  }
  return {};
}

Status ClientFs::drain(std::vector<rpc::Ticket>& tickets) {
  // Give time-based transport layers (QoS token refill) a chance to release
  // backlogged work before we block on the tickets it may be holding.
  fs_->rpc().pump();
  Status first{};
  for (const rpc::Ticket& t : tickets) {
    if (Status st = fs_->rpc().wait(t); !st && first.ok()) first = st;
  }
  tickets.clear();
  return first;
}

u64 ClientFs::remote_extents(InodeNo ino) {
  // Ask every target for its local subfile's extent count — what a client
  // really does before shipping a layout (it cannot read server memory).
  u64 n = 0;
  for (u32 t = 0; t < fs_->num_targets(); ++t) {
    n += fs_->rpc().target_extents(t, ino).value_or(0);
  }
  return n;
}

Status ClientFs::read_blocks(const FileHandle& fh, u64 first, u64 last) {
  // Issue every slice before claiming any completion, so reads (including
  // readahead top-ups) overlap across the striped targets too.
  std::vector<rpc::Ticket> pending;
  Status issued{};
  if (list_io_runs() > 0) {
    std::map<u32, std::vector<BlockRun>> per_target;
    gather_runs(first, last, per_target);
    for (auto& [target, runs] : per_target) {
      issued = issue_read_runs(fh, target, std::move(runs), pending);
      if (!issued) break;
    }
  } else if (replicas_on()) {
    // Per-block mode with replication: route each slice around dead targets
    // (the fan/route logic lives in issue_read_runs for both I/O modes).
    for (const osd::StripeSlice& s :
         osd::slices_for(fs_->stripe(), FileBlock{first}, last - first)) {
      issued = issue_read_runs(fh, s.target,
                               {BlockRun{s.local_start, s.count}}, pending);
      if (!issued) break;
    }
  } else {
    rpc::CompletionQueue& cq = fs_->rpc().completions();
    for (const osd::StripeSlice& s :
         osd::slices_for(fs_->stripe(), FileBlock{first}, last - first)) {
      obs::ScopedSpan unit(fs_->spans(), "osd.stripe_unit", s.target, s.count);
      rpc::Ticket t =
          fs_->rpc().block_read_async(s.target, fh.ino, s.local_start, s.count);
      if (auto r = cq.try_take(t)) {
        if (!*r) {
          issued = r->error();
          break;
        }
      } else {
        pending.push_back(t);
      }
    }
  }
  Status drained = drain(pending);
  return issued.ok() ? drained : issued;
}

Status ClientFs::write_strided(const FileHandle& fh, u32 pid, u64 offset_bytes,
                               u64 piece_bytes, u64 stride_bytes, u64 count) {
  if (!fh.valid() || piece_bytes == 0 || count == 0) return Errc::kInvalid;
  if (list_io_runs() == 0) {
    // Per-block mode: exactly the caller loop this API replaces.
    for (u64 i = 0; i < count; ++i) {
      if (Status st =
              write(fh, pid, offset_bytes + i * stride_bytes, piece_bytes);
          !st)
        return st;
    }
    return {};
  }
  obs::ScopedSpan span(fs_->spans(), "client.write_strided", fh.ino.v,
                       count * piece_bytes);
  obs::ScopedPrincipal who({id_.v, obs::OpClass::kData});
  std::map<u32, std::vector<BlockRun>> per_target;
  for (u64 i = 0; i < count; ++i) {
    const u64 off = offset_bytes + i * stride_bytes;
    gather_runs(off / kBlockSize,
                (off + piece_bytes + kBlockSize - 1) / kBlockSize, per_target);
  }
  const StreamId stream{id_.v, pid};
  std::vector<rpc::Ticket> tickets;
  Status issued{};
  for (auto& [target, runs] : per_target) {
    issued = issue_write_runs(fh, stream, target, std::move(runs), tickets);
    if (!issued) break;
  }
  Status drained = drain(tickets);
  stats_.writes += count;
  stats_.bytes_written += count * piece_bytes;
  writes_since_report_[fh.ino.v] += static_cast<u32>(count);
  if (writes_since_report_[fh.ino.v] >= 64) {
    writes_since_report_[fh.ino.v] = 0;
    (void)fs_->rpc().report_extents(fh.ino, remote_extents(fh.ino));
  }
  return issued.ok() ? drained : issued;
}

Status ClientFs::read_strided(const FileHandle& fh, u64 offset_bytes,
                              u64 piece_bytes, u64 stride_bytes, u64 count) {
  if (!fh.valid() || piece_bytes == 0 || count == 0) return Errc::kInvalid;
  if (list_io_runs() == 0) {
    for (u64 i = 0; i < count; ++i) {
      if (Status st = read(fh, offset_bytes + i * stride_bytes, piece_bytes);
          !st)
        return st;
    }
    return {};
  }
  obs::ScopedSpan span(fs_->spans(), "client.read_strided", fh.ino.v,
                       count * piece_bytes);
  obs::ScopedPrincipal who({id_.v, obs::OpClass::kData});
  std::map<u32, std::vector<BlockRun>> per_target;
  for (u64 i = 0; i < count; ++i) {
    const u64 off = offset_bytes + i * stride_bytes;
    gather_runs(off / kBlockSize,
                (off + piece_bytes + kBlockSize - 1) / kBlockSize, per_target);
  }
  std::vector<rpc::Ticket> tickets;
  Status issued{};
  for (auto& [target, runs] : per_target) {
    issued = issue_read_runs(fh, target, std::move(runs), tickets);
    if (!issued) break;
  }
  Status drained = drain(tickets);
  stats_.reads += count;
  stats_.bytes_read += count * piece_bytes;
  return issued.ok() ? drained : issued;
}

Status ClientFs::write_ranges_async(const FileHandle& fh, u32 pid,
                                    std::span<const util::ByteRange> ranges,
                                    std::vector<rpc::Ticket>& out) {
  if (!fh.valid() || list_io_runs() == 0) return Errc::kInvalid;
  u64 total = 0;
  for (const util::ByteRange& r : ranges) total += r.len;
  if (total == 0) return {};
  obs::ScopedSpan span(fs_->spans(), "client.write", fh.ino.v, total);
  obs::ScopedPrincipal who({id_.v, obs::OpClass::kData});
  std::map<u32, std::vector<BlockRun>> per_target;
  for (const util::ByteRange& r : ranges) {
    if (r.len == 0) continue;
    gather_runs(r.offset / kBlockSize,
                (r.end() + kBlockSize - 1) / kBlockSize, per_target);
  }
  const StreamId stream{id_.v, pid};
  for (auto& [target, runs] : per_target) {
    if (Status st = issue_write_runs(fh, stream, target, std::move(runs), out);
        !st)
      return st;
  }
  ++stats_.writes;
  stats_.bytes_written += total;
  return {};
}

Status ClientFs::read_ranges_async(const FileHandle& fh,
                                   std::span<const util::ByteRange> ranges,
                                   std::vector<rpc::Ticket>& out) {
  if (!fh.valid() || list_io_runs() == 0) return Errc::kInvalid;
  u64 total = 0;
  for (const util::ByteRange& r : ranges) total += r.len;
  if (total == 0) return {};
  obs::ScopedSpan span(fs_->spans(), "client.read", fh.ino.v, total);
  obs::ScopedPrincipal who({id_.v, obs::OpClass::kData});
  std::map<u32, std::vector<BlockRun>> per_target;
  for (const util::ByteRange& r : ranges) {
    if (r.len == 0) continue;
    gather_runs(r.offset / kBlockSize,
                (r.end() + kBlockSize - 1) / kBlockSize, per_target);
  }
  for (auto& [target, runs] : per_target) {
    if (Status st = issue_read_runs(fh, target, std::move(runs), out); !st)
      return st;
  }
  ++stats_.reads;
  stats_.bytes_read += total;
  return {};
}

Status ClientFs::fetch_range(const FileHandle& fh, u64 first, u64 last,
                             bool consume) {
  u64 run_start = kNoBlock;
  for (u64 b = first; b < last; ++b) {
    const u64 key = block_key(fh.ino, b);
    const bool resident = buffered_.contains(key);
    if (resident) {
      if (consume) buffered_.erase(key);
      if (run_start != kNoBlock) {
        if (Status st = read_blocks(fh, run_start, b); !st) return st;
        run_start = kNoBlock;
      }
    } else {
      if (!consume && buffered_.size() < (u64{1} << 20)) buffered_.insert(key);
      if (run_start == kNoBlock) run_start = b;
    }
  }
  if (run_start != kNoBlock) return read_blocks(fh, run_start, last);
  return {};
}

Status ClientFs::read(const FileHandle& fh, u64 offset_bytes, u64 len_bytes) {
  if (!fh.valid() || len_bytes == 0) return Errc::kInvalid;
  obs::ScopedSpan span(fs_->spans(), "client.read", fh.ino.v, len_bytes);
  obs::ScopedPrincipal who({id_.v, obs::OpClass::kData});
  const u64 first = offset_bytes / kBlockSize;
  const u64 last = (offset_bytes + len_bytes + kBlockSize - 1) / kBlockSize;
  ++stats_.reads;
  stats_.bytes_read += len_bytes;

  const u64 max_window = fs_->config().client_readahead_max_blocks;
  auto it = cursors_.find(block_key(fh.ino, first));
  const bool sequential = it != cursors_.end() && max_window > 0;

  // Hand the requested range to the application (buffered blocks served
  // from the readahead buffer, the rest from the targets).
  if (Status st = fetch_range(fh, first, last, /*consume=*/true); !st)
    return st;

  ReadCursor cur{last, last - first};
  if (sequential) {
    // Sequential continuation: double the window and prefetch ahead, as a
    // Lustre client would for a striped file region.
    cur = it->second;
    cursors_.erase(it);
    cur.window = std::min(std::max(cur.window * 2, last - first), max_window);
    if (last <= cur.prefetched_until) ++stats_.readahead_hits;
    // Hysteresis: top up only when the stream has consumed half the window,
    // so prefetch goes out in window-sized batches rather than per read.
    if (last + cur.window / 2 > cur.prefetched_until) {
      const u64 want_until = last + cur.window;
      const u64 from = std::max(last, cur.prefetched_until);
      if (Status st = fetch_range(fh, from, want_until, /*consume=*/false);
          !st)
        return st;
      stats_.readahead_blocks += want_until - from;
      cur.prefetched_until = want_until;
    }
  } else if (max_window == 0) {
    return {};
  }
  if (cursors_.size() < 4096)
    cursors_[block_key(fh.ino, last)] = cur;
  return {};
}

Status ClientFs::close(const FileHandle& fh) {
  if (!fh.valid()) return Errc::kInvalid;
  obs::ScopedSpan span(fs_->spans(), "client.close", fh.ino.v);
  obs::ScopedPrincipal who({id_.v, obs::OpClass::kMeta});
  fs_->close_file(fh.ino);
  // Ship the final layout to the MDS; it persists the mapping and pays CPU
  // per extent — fragmented files are expensive here (Table I).
  const u64 extents = remote_extents(fh.ino);
  layout_cache_[fh.path] = extents;
  return fs_->rpc().report_extents(fh.ino, extents);
}

}  // namespace mif::client
