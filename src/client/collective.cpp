#include "client/collective.hpp"

#include <algorithm>

#include "core/pfs.hpp"

namespace mif::client {

CollectiveWriter::CollectiveWriter(ClientFs& client, CollectiveConfig cfg)
    : client_(client), cfg_(cfg) {}

std::vector<CollectiveWriter::Range> CollectiveWriter::merge(
    std::vector<IoRequest> requests) {
  std::sort(requests.begin(), requests.end(),
            [](const IoRequest& a, const IoRequest& b) {
              return a.offset < b.offset;
            });
  std::vector<Range> out;
  for (const IoRequest& r : requests) {
    if (r.len == 0) continue;
    if (!out.empty() && r.offset <= out.back().offset + out.back().len) {
      const u64 end = std::max(out.back().offset + out.back().len,
                               r.offset + r.len);
      out.back().len = end - out.back().offset;
    } else {
      out.push_back(Range{r.offset, r.len});
    }
  }
  return out;
}

Status CollectiveWriter::write_round(const FileHandle& fh,
                                     std::vector<IoRequest> requests) {
  ++stats_.rounds;
  stats_.requests_in += requests.size();
  u32 next_aggregator = 0;
  // Issue the whole round before draining: every aggregator chunk's striped
  // slices go out as tickets, so an async transport keeps the round's
  // requests in flight across all targets at once.
  std::vector<rpc::Ticket> tickets;
  for (const Range& range : merge(std::move(requests))) {
    u64 pos = range.offset;
    const u64 end = range.offset + range.len;
    while (pos < end) {
      const u64 chunk = std::min(cfg_.cb_bytes, end - pos);
      // Each chunk is one big write from one aggregator stream; aggregators
      // rotate so targets stay busy in parallel.
      const u32 pid = 1'000'000 + (next_aggregator++ % cfg_.aggregators);
      if (Status s = client_.write_async(fh, pid, pos, chunk, tickets); !s) {
        (void)client_.drain(tickets);
        return s;
      }
      ++stats_.requests_out;
      stats_.bytes += chunk;
      pos += chunk;
    }
  }
  // A collective round is a synchronisation point (MPI_File_write_all
  // returns only when every aggregator's data is on the servers): drain the
  // round's tickets, then push out anything a batching transport still
  // buffers; the first error in completion order wins.
  Status drained = client_.drain(tickets);
  Status flushed = client_.fs().rpc().flush();
  return drained.ok() ? flushed : drained;
}

Status CollectiveWriter::read_round(const FileHandle& fh,
                                    std::vector<IoRequest> requests) {
  ++stats_.rounds;
  stats_.requests_in += requests.size();
  for (const Range& range : merge(std::move(requests))) {
    u64 pos = range.offset;
    const u64 end = range.offset + range.len;
    while (pos < end) {
      const u64 chunk = std::min(cfg_.cb_bytes, end - pos);
      if (Status s = client_.read(fh, pos, chunk); !s) return s;
      ++stats_.requests_out;
      stats_.bytes += chunk;
      pos += chunk;
    }
  }
  return client_.fs().rpc().flush();
}

}  // namespace mif::client
