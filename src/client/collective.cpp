#include "client/collective.hpp"

#include <algorithm>

#include "core/pfs.hpp"
#include "obs/span.hpp"

namespace mif::client {

CollectiveWriter::CollectiveWriter(ClientFs& client, CollectiveConfig cfg)
    : client_(client), cfg_(cfg) {}

std::vector<util::ByteRange> CollectiveWriter::merge(
    std::vector<IoRequest> requests) {
  std::vector<util::ByteRange> ranges;
  ranges.reserve(requests.size());
  for (const IoRequest& r : requests)
    ranges.push_back(util::ByteRange{r.offset, r.len});
  return util::merge_ranges(std::move(ranges));
}

std::vector<std::vector<util::ByteRange>> CollectiveWriter::partition(
    const std::vector<util::ByteRange>& merged) const {
  u64 total = 0;
  for (const util::ByteRange& r : merged) total += r.len;
  const u32 n = std::max<u32>(cfg_.aggregators, 1);
  std::vector<std::vector<util::ByteRange>> domains(n);
  // Equal-byte contiguous shares in file order: aggregator a owns the a-th
  // `share` bytes of the covered region (ROMIO's fd_start/fd_end split).
  const u64 share = (total + n - 1) / n;
  u32 a = 0;
  u64 filled = 0;
  for (util::ByteRange r : merged) {
    while (r.len > 0) {
      if (a + 1 < n && filled >= share) {
        ++a;
        filled = 0;
      }
      const u64 take =
          a + 1 < n ? std::min<u64>(r.len, share - filled) : r.len;
      domains[a].push_back(util::ByteRange{r.offset, take});
      r.offset += take;
      r.len -= take;
      filled += take;
    }
  }
  return domains;
}

bool CollectiveWriter::two_phase() const {
  return client_.fs().config().list_io_max_runs > 0;
}

Status CollectiveWriter::two_phase_round(const FileHandle& fh,
                                         std::vector<IoRequest> requests,
                                         bool write) {
  // Phase 1 — exchange: the aggregators learn the round's request union,
  // merge it, and reorder it into per-aggregator file domains.  The span
  // prices this as a distinct pipeline stage (arg0 = requests exchanged).
  std::vector<std::vector<util::ByteRange>> domains;
  {
    obs::ScopedSpan span(client_.fs().spans(), "collective.exchange", fh.ino.v,
                         requests.size());
    domains = partition(merge(std::move(requests)));
  }
  // Phase 2 — I/O: each aggregator issues its domain as one list-I/O
  // envelope per OSD per cb_bytes chunk; the whole round's tickets stay in
  // flight until the closing drain (the MPI_File_*_all barrier).
  std::vector<rpc::Ticket> tickets;
  Status issued{};
  for (u32 a = 0; a < domains.size() && issued.ok(); ++a) {
    const u32 pid = 1'000'000 + a;
    std::vector<util::ByteRange> chunk;
    u64 chunk_bytes = 0;
    auto ship = [&]() -> Status {
      if (chunk.empty()) return {};
      Status s = write ? client_.write_ranges_async(fh, pid, chunk, tickets)
                       : client_.read_ranges_async(fh, chunk, tickets);
      if (s.ok()) {
        ++stats_.requests_out;
        stats_.bytes += chunk_bytes;
      }
      chunk.clear();
      chunk_bytes = 0;
      return s;
    };
    for (util::ByteRange r : domains[a]) {
      while (r.len > 0 && issued.ok()) {
        const u64 take = std::min(r.len, cfg_.cb_bytes - chunk_bytes);
        chunk.push_back(util::ByteRange{r.offset, take});
        chunk_bytes += take;
        r.offset += take;
        r.len -= take;
        if (chunk_bytes >= cfg_.cb_bytes) issued = ship();
      }
      if (!issued.ok()) break;
    }
    if (issued.ok()) issued = ship();
  }
  Status drained = client_.drain(tickets);
  Status flushed = client_.fs().rpc().flush();
  if (!issued.ok()) return issued;
  return drained.ok() ? flushed : drained;
}

Status CollectiveWriter::write_round(const FileHandle& fh,
                                     std::vector<IoRequest> requests) {
  ++stats_.rounds;
  stats_.requests_in += requests.size();
  if (two_phase()) return two_phase_round(fh, std::move(requests), true);
  u32 next_aggregator = 0;
  // Issue the whole round before draining: every aggregator chunk's striped
  // slices go out as tickets, so an async transport keeps the round's
  // requests in flight across all targets at once.
  std::vector<rpc::Ticket> tickets;
  for (const util::ByteRange& range : merge(std::move(requests))) {
    u64 pos = range.offset;
    const u64 end = range.offset + range.len;
    while (pos < end) {
      const u64 chunk = std::min(cfg_.cb_bytes, end - pos);
      // Each chunk is one big write from one aggregator stream; aggregators
      // rotate so targets stay busy in parallel.
      const u32 pid = 1'000'000 + (next_aggregator++ % cfg_.aggregators);
      if (Status s = client_.write_async(fh, pid, pos, chunk, tickets); !s) {
        (void)client_.drain(tickets);
        return s;
      }
      ++stats_.requests_out;
      stats_.bytes += chunk;
      pos += chunk;
    }
  }
  // A collective round is a synchronisation point (MPI_File_write_all
  // returns only when every aggregator's data is on the servers): drain the
  // round's tickets, then push out anything a batching transport still
  // buffers; the first error in completion order wins.
  Status drained = client_.drain(tickets);
  Status flushed = client_.fs().rpc().flush();
  return drained.ok() ? flushed : drained;
}

Status CollectiveWriter::read_round(const FileHandle& fh,
                                    std::vector<IoRequest> requests) {
  ++stats_.rounds;
  stats_.requests_in += requests.size();
  if (two_phase()) return two_phase_round(fh, std::move(requests), false);
  for (const util::ByteRange& range : merge(std::move(requests))) {
    u64 pos = range.offset;
    const u64 end = range.offset + range.len;
    while (pos < end) {
      const u64 chunk = std::min(cfg_.cb_bytes, end - pos);
      if (Status s = client_.read(fh, pos, chunk); !s) return s;
      ++stats_.requests_out;
      stats_.bytes += chunk;
      pos += chunk;
    }
  }
  return client_.fs().rpc().flush();
}

}  // namespace mif::client
