// Two-phase collective I/O (ROMIO-style), used by the Fig. 7 macro
// benchmarks.
//
// The paper profiles BTIO/IOR "using either non-collective I/O or collective
// I/O" and observes that collective runs issue ~40 MB requests, which makes
// placement near-irrelevant ("this may make the effectiveness of on-demand
// preallocation be disappointed in this case").  This aggregator reproduces
// the mechanism: per collective round, the processes' requests are exchanged,
// merged into contiguous file ranges, chopped into cb_buffer-sized chunks and
// written by a few aggregator threads as single large streams.
//
// With list I/O mounted (ClusterConfig::list_io_max_runs > 0) the rounds run
// as proper two-phase I/O: the exchange phase partitions the merged request
// union into per-aggregator file domains (equal-byte contiguous shares, the
// ROMIO fd_start/fd_end split), and each aggregator lowers its domain into
// one list-I/O envelope per OSD per cb_bytes chunk through the async path.
// Without it, the legacy chop-and-stream path runs untouched, keeping the
// paper figures byte-identical.
#pragma once

#include <vector>

#include "client/client_fs.hpp"
#include "util/runs.hpp"

namespace mif::client {

struct CollectiveConfig {
  /// Collective-buffer size per aggregator request (the paper observed
  /// ~40 MB requests in its collective runs).
  u64 cb_bytes{u64{40} * 1024 * 1024};
  /// Number of aggregator processes (ROMIO cb_nodes).
  u32 aggregators{4};
};

struct IoRequest {
  u32 pid{0};  // issuing thread on this client
  u64 offset{0};
  u64 len{0};
};

struct CollectiveStats {
  u64 rounds{0};
  u64 requests_in{0};
  u64 requests_out{0};  // aggregated writes actually issued
  u64 bytes{0};
};

class CollectiveWriter {
 public:
  CollectiveWriter(ClientFs& client, CollectiveConfig cfg = {});

  /// One collective round: exchange, merge, and write the union of the
  /// processes' requests through the aggregators.
  Status write_round(const FileHandle& fh, std::vector<IoRequest> requests);

  /// Same pipeline for reads.
  Status read_round(const FileHandle& fh, std::vector<IoRequest> requests);

  const CollectiveStats& stats() const { return stats_; }

 private:
  std::vector<util::ByteRange> merge(std::vector<IoRequest> requests);
  /// Split the merged union into `aggregators` contiguous equal-byte file
  /// domains (the exchange phase's reorder target).
  std::vector<std::vector<util::ByteRange>> partition(
      const std::vector<util::ByteRange>& merged) const;
  bool two_phase() const;
  Status two_phase_round(const FileHandle& fh, std::vector<IoRequest> requests,
                         bool write);

  ClientFs& client_;
  CollectiveConfig cfg_;
  CollectiveStats stats_;
};

}  // namespace mif::client
