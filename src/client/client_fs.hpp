// Client-side file system.
//
// One ClientFs per cluster node; write streams are (client id, thread pid)
// pairs exactly as the paper's allocator identifies them (§III-A).  The
// client congregates common operation pairs (open-getlayout) to reduce MDS
// interaction (§V-A) and keeps a layout cache so repeated opens of the same
// file do not re-fetch extents.
#pragma once

#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "rpc/transport.hpp"
#include "util/result.hpp"
#include "util/runs.hpp"
#include "util/types.hpp"

namespace mif::core {
class ParallelFileSystem;
}
namespace mif::obs {
class MetricsRegistry;
}

namespace mif::client {

struct FileHandle {
  InodeNo ino{};
  std::string path;
  bool valid() const { return ino.valid(); }
};

struct ClientStats {
  u64 opens{0};
  u64 layout_cache_hits{0};
  u64 writes{0};
  u64 reads{0};
  u64 bytes_written{0};
  u64 bytes_read{0};
  u64 readahead_hits{0};      // reads fully served from prefetched data
  u64 readahead_blocks{0};    // blocks fetched ahead of the application
};

class ClientFs {
 public:
  ClientFs(core::ParallelFileSystem& fs, ClientId id);

  /// Create a file through the MDS and open it.
  Result<FileHandle> create(std::string_view path);

  /// Aggregated open-getlayout; hits the layout cache when this client
  /// already holds the layout.
  Result<FileHandle> open(std::string_view path);

  /// Rename `from` to `to` through the MDS.  Under a sharded mount a rename
  /// that crosses shard boundaries runs the two-phase protocol inside the
  /// transport; either way the returned handle is the entry at `to`.
  Result<FileHandle> rename(std::string_view from, std::string_view to);

  /// Write [offset, offset+len) bytes from the given thread.  Offsets and
  /// lengths are rounded outward to block granularity (the simulation
  /// tracks placement, not payload).  Internally issue-then-drain: every
  /// striped slice is issued as a ticket before any completion is claimed,
  /// so an async transport overlaps the slices across targets.
  Status write(const FileHandle& fh, u32 pid, u64 offset_bytes,
               u64 len_bytes);

  /// Issue the striped writes for [offset, offset+len) WITHOUT draining;
  /// outstanding tickets are appended to `out` for a later drain().  The
  /// collective writer uses this to keep a whole round's chunks in flight.
  /// Tickets that complete at issue (the sync chain) are claimed inline, so
  /// a failure there stops issuing exactly like the blocking loop did.
  Status write_async(const FileHandle& fh, u32 pid, u64 offset_bytes,
                     u64 len_bytes, std::vector<rpc::Ticket>& out);

  /// Strided write: `count` pieces of `piece_bytes`, starts `stride_bytes`
  /// apart.  With list I/O off this is exactly a caller loop of write();
  /// with list I/O on the whole pattern lowers into one list/datatype
  /// envelope per storage target (the MPI-IO datatype path).
  Status write_strided(const FileHandle& fh, u32 pid, u64 offset_bytes,
                       u64 piece_bytes, u64 stride_bytes, u64 count);

  /// Strided read, same lowering as write_strided (no readahead involved —
  /// the pattern is explicit).
  Status read_strided(const FileHandle& fh, u64 offset_bytes, u64 piece_bytes,
                      u64 stride_bytes, u64 count);

  /// List-I/O issue of a set of byte ranges: lowers the union into at most
  /// one envelope per storage target per list_io_max_runs runs, through the
  /// async path.  The collective aggregators' write arm.  Requires list I/O
  /// to be mounted (kInvalid otherwise).
  Status write_ranges_async(const FileHandle& fh, u32 pid,
                            std::span<const util::ByteRange> ranges,
                            std::vector<rpc::Ticket>& out);
  /// Read-side twin of write_ranges_async.
  Status read_ranges_async(const FileHandle& fh,
                           std::span<const util::ByteRange> ranges,
                           std::vector<rpc::Ticket>& out);

  /// Claim every ticket in `tickets` (clearing it); returns the first error
  /// in completion order — the sticky-error semantics of the sync path.
  Status drain(std::vector<rpc::Ticket>& tickets);

  /// Read [offset, offset+len) bytes.  Sequential streams are detected and
  /// prefetched Lustre-client-style: the window doubles while the stream
  /// stays sequential (up to max_readahead_blocks), so the storage targets
  /// see large per-region reads instead of the application's small front.
  Status read(const FileHandle& fh, u64 offset_bytes, u64 len_bytes);

  /// Close: releases allocator reservations on every target and reports the
  /// final layout to the MDS (which pays CPU per extent, Table I).
  Status close(const FileHandle& fh);

  ClientId id() const { return id_; }
  const ClientStats& stats() const { return stats_; }
  ClientStats snapshot() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  /// Publish this client's counters under `<prefix>.…` into the registry.
  void export_metrics(obs::MetricsRegistry& reg,
                      std::string_view prefix) const;
  core::ParallelFileSystem& fs() { return *fs_; }

 private:
  /// Issue block reads [first, last) to the striped targets.
  Status read_blocks(const FileHandle& fh, u64 first, u64 last);

  /// list_io_max_runs from the mount config; 0 = per-block mode.
  u64 list_io_runs() const;

  /// Per-target run accumulation: lower the block range [first, last) via
  /// the stripe layout, merging adjacent local runs per target.
  void gather_runs(u64 first, u64 last,
                   std::map<u32, std::vector<BlockRun>>& per_target) const;

  /// Ship one target's run list as block/list/strided envelope(s) through
  /// the async path, chunked at list_io_max_runs; tickets that complete at
  /// issue are claimed inline (sync-chain fast path).  With replication
  /// mounted, writes fan to the primary and every alive replica copy (a
  /// dead primary degrades the write; repair re-converges it later) and
  /// reads route to the first alive copy (redundancy.degraded_reads).
  Status issue_write_runs(const FileHandle& fh, StreamId stream, u32 target,
                          std::vector<BlockRun> runs,
                          std::vector<rpc::Ticket>& out);
  Status issue_read_runs(const FileHandle& fh, u32 target,
                         std::vector<BlockRun> runs,
                         std::vector<rpc::Ticket>& out);

  /// The single-destination workers behind the fan/route wrappers above
  /// (`ino` is the primary or a redundancy::replica_ino-tagged subfile).
  Status issue_write_runs_to(InodeNo ino, StreamId stream, u32 target,
                             const std::vector<BlockRun>& runs,
                             std::vector<rpc::Ticket>& out);
  Status issue_read_runs_to(InodeNo ino, u32 target,
                            const std::vector<BlockRun>& runs,
                            std::vector<rpc::Ticket>& out);

  /// True when the mount replicates (cfg.redundancy.replicas >= 2).
  bool replicas_on() const;
  /// Health-aware read routing: a dead primary resolves to the first alive
  /// copy's (target, tagged ino); kIo when every copy is gone.
  Result<std::pair<u32, InodeNo>> route_read(u32 target, InodeNo ino);

  /// Sum the file's extent counts across all targets via get_extents
  /// envelopes (what a layout report ships to the MDS).
  u64 remote_extents(InodeNo ino);

  /// Fetch [first, last), skipping blocks already sitting in the client's
  /// readahead buffer.  `consume` = the application is reading these blocks
  /// now (buffered ones are handed over and dropped); otherwise this is a
  /// prefetch and fetched blocks are retained.
  Status fetch_range(const FileHandle& fh, u64 first, u64 last, bool consume);

  struct ReadCursor {
    u64 prefetched_until{0};  // exclusive block bound already fetched
    u64 window{0};            // current readahead window (blocks)
  };

  static u64 block_key(InodeNo ino, u64 block) {
    return ino.v * 0x9e3779b97f4a7c15ULL + block * 0xff51afd7ed558ccdULL;
  }

  core::ParallelFileSystem* fs_;
  ClientId id_;
  std::unordered_map<std::string, u64> layout_cache_;  // path -> extent count
  /// Sequential-read detectors: key = (ino, next expected block).
  std::unordered_map<u64, ReadCursor> cursors_;
  /// Blocks prefetched but not yet consumed by the application.
  std::unordered_set<u64> buffered_;
  /// Writes since the last periodic layout report, per file.
  std::unordered_map<u64, u32> writes_since_report_;
  ClientStats stats_;
};

}  // namespace mif::client
