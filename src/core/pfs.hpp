// MiF public API: the Redbud parallel file system facade.
//
// Wires one metadata server (MFS + journal + metadata disk) to a set of
// storage targets (data disks + PAG free space + the configured allocator)
// behind the stripe layout, and hands out per-node clients.  The two MiF
// techniques are mount options:
//
//   mif::ClusterConfig cfg;
//   cfg.target.allocator = mif::alloc::AllocatorMode::kOnDemand;  // §III
//   cfg.mds.mfs.mode = mif::mfs::DirectoryMode::kEmbedded;        // §IV
//   mif::ParallelFileSystem fs{cfg};
//   auto client = fs.connect(ClientId{1});
//   auto fh = client.create("/data/ckpt.odb");
//   client.write(*fh, /*pid=*/0, /*offset=*/0, /*len=*/1 << 20);
#pragma once

#include <memory>
#include <vector>

#include "client/client_fs.hpp"
#include "mds/mds.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "osd/storage_target.hpp"
#include "osd/striping.hpp"
#include "redundancy/redundancy.hpp"
#include "redundancy/repair.hpp"
#include "rpc/client.hpp"
#include "rpc/stack.hpp"

namespace mif::core {

struct ClusterConfig {
  std::size_t num_targets{5};  // the paper stripes over five disks (§V-C)
  osd::StripeLayout stripe{5, 16};
  osd::TargetConfig target{};
  mds::MdsConfig mds{};
  /// Transport between clients and servers.  The default (kInproc,
  /// synchronous) preserves the paper figures exactly; see rpc/stack.hpp.
  /// rpc.pipeline_depth >= 2 mounts the async completion-queue transport
  /// (issue-many-then-drain on the striped data path); its disk-service
  /// model is wired to `target.geometry` automatically at mount.
  /// rpc.adaptive_depth_max >= 2 floats that window in [2, max], driven by
  /// the live per-OSD scheduler queue gauges (wired automatically).
  /// rpc.kind == kFormation stages envelopes per destination and packs
  /// size-bounded, urgency-ordered frames (rpc.formation knobs; validated
  /// by rpc::validate(FormationConfig)).  rpc.qos.enabled mounts the
  /// per-client token-bucket scheduler (rpc::validate(QosConfig)); its
  /// refill clock is wired to the cluster-max target timeline at mount.
  rpc::TransportOptions rpc{};
  /// Client sequential-read prefetch cap in blocks (Lustre-style per-file
  /// readahead; 2048 blocks = 8 MiB).  0 disables client readahead.
  u64 client_readahead_max_blocks{2048};
  /// List-I/O lowering: when > 0, clients ship noncontiguous accesses as
  /// kWriteList/kReadList (or the strided datatype flavor) envelopes holding
  /// up to this many runs each, instead of one per-block envelope per stripe
  /// slice, and CollectiveWriter runs proper two-phase exchange+write.
  /// 0 (default) keeps the per-block data path byte-identical to the paper
  /// figures.
  u64 list_io_max_runs{0};
  /// Striped redundancy: redundancy.replicas >= 2 mounts N-way replication
  /// per stripe unit (copy c of a unit with primary target p lives on
  /// (p + c) % width, in the tagged subfile redundancy::replica_ino).
  /// Clients fan replica writes through the async path, re-route reads
  /// around dead targets, and the online RepairService rebuilds a killed
  /// target from survivors at tick_timeline()/drain_data() safe points.
  /// The default (replicas = 1) mounts none of it — byte-identical figures.
  redundancy::Policy redundancy{};
};

/// The mount-time knobs a deployment tunes (allocator mode, directory mode,
/// stripe, transport pipeline depth).  Alias of ClusterConfig: the cluster
/// IS its mount options in this in-process harness.
using MountOptions = ClusterConfig;

class ParallelFileSystem {
 public:
  explicit ParallelFileSystem(ClusterConfig cfg = {});

  /// A client session for cluster node `id`.
  client::ClientFs connect(ClientId id);

  // --- namespace (proxied to the MDS) -------------------------------------
  /// Shard 0 — THE metadata server of a classic single-MDS mount.
  mds::Mds& mds() { return *mds_[0]; }
  /// Metadata shard `i` (mds.shards of them; see mds(i) for i >= 1 only
  /// when mounted with shards >= 2).
  mds::Mds& mds(std::size_t i) { return *mds_[i]; }
  std::size_t mds_shards() const { return mds_.size(); }
  /// Unmount-style finish of every metadata shard (journal flush + disk
  /// idle); what workloads call instead of mds().finish().
  void finish_mds() {
    for (auto& m : mds_) m->finish();
  }

  // --- RPC layer ------------------------------------------------------------
  /// The typed stub every cross-node call goes through (clients, workloads).
  rpc::Client& rpc() { return *rpc_client_; }
  /// The transport chain itself (metrics, batching/fault decorators).
  rpc::TransportStack& transport() { return rpc_stack_; }
  const rpc::TransportStack& transport() const { return rpc_stack_; }

  // --- data path -----------------------------------------------------------
  std::size_t num_targets() const { return targets_.size(); }
  osd::StorageTarget& target(std::size_t i) { return *targets_[i]; }
  const osd::StripeLayout& stripe() const { return cfg_.stripe; }

  /// fallocate the file to `total_blocks` (static preallocation baseline).
  Status preallocate(InodeNo ino, u64 total_blocks);

  /// Release allocator reservations for a file on every target.
  void close_file(InodeNo ino);

  /// Free the file's data everywhere.
  void delete_file(InodeNo ino);

  /// Total extents mapping this file across all targets — the Table I
  /// "Seg Counts" metric.
  u64 file_extents(InodeNo ino) const;

  // --- redundancy & repair ---------------------------------------------------
  /// The mounted replication policy (cfg.redundancy).
  const redundancy::Policy& redundancy_policy() const {
    return cfg_.redundancy;
  }
  /// Per-target liveness (kill-OSD faults flip entries dead; repair revives
  /// them).  Always present — all-alive on an unreplicated mount.
  redundancy::HealthMap& health() { return *health_; }
  const redundancy::HealthMap& health() const { return *health_; }
  /// Degraded-path counters (clients bump these when re-routing).
  redundancy::Stats& redundancy_stats() { return *red_stats_; }
  /// The online rebuild service (nullptr unless redundancy.replicas >= 2).
  redundancy::RepairService* repair() { return repair_.get(); }
  const redundancy::RepairService* repair() const { return repair_.get(); }

  /// Flush every target queue.
  void drain_data();

  /// Data-path wall clock: the slowest target timeline (a striped request
  /// completes when its last member disk does).
  double data_elapsed_ms() const;

  /// Aggregate data-disk counters.
  sim::DiskStats data_stats() const;

  void reset_data_stats();

  // --- observability -------------------------------------------------------
  /// Attach one trace sink to the whole cluster: every target's allocator
  /// state machine plus the MDS journal and buffer cache.  nullptr detaches.
  void set_trace(obs::TraceBuffer* trace);

  /// Attach one span collector to the whole cluster: client ops become root
  /// spans, MDS RPCs / allocator decisions / journal commits become child
  /// phases, and every disk (data disks on tracks 0..N-1, metadata disk on
  /// track 255) records its simulated mechanical phases.  nullptr detaches.
  void set_spans(obs::SpanCollector* spans);

  /// The attached collector (nullptr when none); clients read this per op.
  obs::SpanCollector* spans() const { return spans_; }

  /// Attach a flight recorder (obs/timeline.hpp) to the whole cluster:
  /// cluster-max sim clock, per-OSD disk gauges (queue depth, busy
  /// fraction, head position), async-pipeline inflight/stall gauges when
  /// the completion-queue transport is mounted, per-shard op counts when
  /// sharded, per-MDS journal/cache gauges, and a fragmentation lens
  /// (OSD subfile extent distribution + data free-space runs + namespace
  /// degree).  Sampling is driven from MDS handler boundaries and from
  /// tick_timeline() — never from threaded data-path internals.  nullptr
  /// detaches.
  void set_timeline(obs::Timeline* tl);
  obs::Timeline* timeline() const { return timeline_; }
  /// Safe-point sample hook for single-threaded drivers (workload loops,
  /// phase boundaries).  Cheap when no timeline is attached or none is due.
  void tick_timeline();
  /// The cluster fragmentation lens (nullptr until set_timeline).
  const obs::FragLens* frag_lens() const { return frag_lens_.get(); }

  /// Attach a cost-attribution ledger (obs/attrib.hpp) to the whole
  /// cluster: the transport tags/charges network cost per principal, every
  /// IO scheduler (data targets and each shard's metadata disk) stamps
  /// submitters and splits merged dispatches back to them, and MDS handler
  /// CPU is charged to the ambient principal.  nullptr detaches.
  void set_attribution(obs::Attribution* attrib);
  obs::Attribution* attribution() const { return attrib_; }

  /// The attribution report: `principals` (per-principal cost accounts),
  /// `global` (the independent cluster-wide totals the ledger must
  /// conserve against), and `fairness` (Jain's index over per-client
  /// attributed milliseconds).  Null JSON when no ledger is attached.
  obs::Json attribution_json() const;

  /// Publish the entire stack into `reg`: per-instance metrics
  /// (`osd.<i>.…`, `mds.…`) plus cluster-wide aggregates
  /// (`alloc.<mode>.layout_miss`, `alloc.extents_per_file`,
  /// `sim.disk.position_ms`, …).  With a timeline attached, also the
  /// lens's end-of-run `frag.*` snapshot.
  void export_metrics(obs::MetricsRegistry& reg) const;

  /// One-shot convenience: fresh registry → export_metrics → to_json().
  obs::Json metrics_json() const;

  const ClusterConfig& config() const { return cfg_; }

 private:
  /// Register timeline gauges for principals that appeared since the last
  /// safe point (tick_timeline calls this BEFORE ticking — add_gauge and
  /// tick share the timeline mutex, so gauges cannot be added from a tick).
  void sync_attrib_gauges();

  ClusterConfig cfg_;
  /// One Mds per metadata shard; size 1 unless cfg.mds.shards >= 2.
  std::vector<std::unique_ptr<mds::Mds>> mds_;
  std::vector<std::unique_ptr<osd::StorageTarget>> targets_;
  rpc::TransportStack rpc_stack_;
  std::unique_ptr<rpc::Client> rpc_client_;
  obs::SpanCollector* spans_{nullptr};
  obs::Attribution* attrib_{nullptr};
  obs::Timeline* timeline_{nullptr};
  /// attrib.* gauge bookkeeping: fixed gauges bound once, one total_ms
  /// gauge per principal key seen so far.
  bool attrib_gauges_bound_{false};
  std::vector<u64> attrib_gauge_keys_;
  /// Disk busy time discarded by reset_data_stats(): workloads reset the
  /// counters before their measured phase, but the attribution ledger is
  /// lifetime-cumulative, so the conservation comparand adds this back.
  double reset_disk_ms_{0.0};
  std::unique_ptr<obs::FragLens> frag_lens_;
  /// Heap-pinned (closures capture raw pointers, never `this`): target
  /// liveness + degraded counters exist on every mount; the repair service
  /// only when replication is on.
  std::unique_ptr<redundancy::HealthMap> health_;
  std::unique_ptr<redundancy::Stats> red_stats_;
  std::unique_ptr<redundancy::RepairService> repair_;
};

}  // namespace mif::core
