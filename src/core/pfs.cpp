#include "core/pfs.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "obs/attrib.hpp"
#include "obs/export.hpp"
#include "obs/fraglens.hpp"
#include "obs/timeline.hpp"

namespace mif::core {

ParallelFileSystem::ParallelFileSystem(ClusterConfig cfg) : cfg_(cfg) {
  assert(cfg_.num_targets >= 1);
  cfg_.stripe.width = static_cast<u32>(cfg_.num_targets);
  const std::size_t shards = std::max<u32>(cfg_.mds.shards, 1);
  mds_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    mds_.push_back(std::make_unique<mds::Mds>(cfg_.mds));
  }
  targets_.reserve(cfg_.num_targets);
  for (std::size_t i = 0; i < cfg_.num_targets; ++i) {
    targets_.push_back(std::make_unique<osd::StorageTarget>(cfg_.target));
  }
  rpc::Endpoints eps;
  for (auto& m : mds_) eps.mds.push_back(m.get());
  for (auto& t : targets_) eps.osds.push_back(t.get());
  // The async transport prices per-envelope disk service from the spindle
  // geometry the targets actually mount; the shard router mirrors the
  // metadata config (shards <= 1 builds no router at all).
  cfg_.rpc.geometry = cfg_.target.geometry;
  cfg_.rpc.mds_shards = cfg_.mds.shards;
  cfg_.rpc.placement = cfg_.mds.placement;
  // Fail fast on an unmountable formation/QoS config (benches validate user
  // flags with exit 2 before getting here; this guards programmatic use).
  assert(rpc::validate(cfg_.rpc.formation).empty());
  assert(rpc::validate(cfg_.rpc.qos).empty());
  assert(redundancy::validate(cfg_.redundancy, cfg_.stripe.width).empty());
  rpc_stack_ = rpc::TransportStack(std::move(eps), cfg_.rpc);
  rpc_client_ = std::make_unique<rpc::Client>(rpc_stack_.top());
  // Closures below capture raw pointers to the heap-pinned targets, NOT
  // `this` — benches move the PFS value around.
  std::vector<osd::StorageTarget*> tgts;
  for (auto& t : targets_) tgts.push_back(t.get());
  if (rpc::QosTransport* qos = rpc_stack_.qos()) {
    // Token buckets refill on the cluster-max simulated timeline — metadata
    // servers included, NOT just the data disks: when the scheduler parks a
    // client's whole data stream, the disks idle, and a data-only clock
    // would freeze the refill exactly when the backlog needs it (the
    // throttled state would be an absorbing state).
    std::vector<mds::Mds*> servers;
    for (auto& m : mds_) servers.push_back(m.get());
    qos->set_clock([tgts, servers] {
      double now = 0.0;
      for (osd::StorageTarget* t : tgts) now = std::max(now, t->sim_now_ms());
      for (mds::Mds* m : servers) now = std::max(now, m->fs().elapsed_ms());
      return now;
    });
  }
  if (rpc::AsyncTransport* async = rpc_stack_.async();
      async && cfg_.rpc.adaptive_depth_max >= 2) {
    // The adaptive controller reads the live scheduler queue of the target
    // it is about to issue to (the PR 6 timeline gauges, sans timeline).
    async->set_queue_probe([tgts](u32 i) {
      return i < tgts.size() ? static_cast<double>(tgts[i]->queue_depth())
                             : 0.0;
    });
  }

  // Redundancy: target liveness + degraded counters exist on every mount
  // (all-alive, all-zero by default); the rebuild service only when the
  // policy replicates.
  health_ = std::make_unique<redundancy::HealthMap>();
  health_->resize(static_cast<u32>(cfg_.num_targets));
  red_stats_ = std::make_unique<redundancy::Stats>();
  std::vector<mds::Mds*> servers;
  for (auto& m : mds_) servers.push_back(m.get());
  auto cluster_now = [tgts, servers] {
    double now = 0.0;
    for (osd::StorageTarget* t : tgts) now = std::max(now, t->sim_now_ms());
    for (mds::Mds* m : servers) now = std::max(now, m->fs().elapsed_ms());
    return now;
  };
  if (cfg_.redundancy.enabled()) {
    redundancy::RepairConfig rcfg;
    if (cfg_.list_io_max_runs > 0) rcfg.max_runs_per_envelope = cfg_.list_io_max_runs;
    repair_ = std::make_unique<redundancy::RepairService>(
        cfg_.stripe, cfg_.redundancy, *health_, tgts, *rpc_client_, rcfg);
    repair_->set_clock(cluster_now);
  }
  if (rpc::FaultTransport* fault = rpc_stack_.fault()) {
    fault->set_kill_clock(cluster_now);
    redundancy::HealthMap* health = health_.get();
    redundancy::RepairService* rep = repair_.get();
    fault->set_kill_sink([tgts, health, rep](u32 t) {
      if (t >= tgts.size()) return;
      health->mark_dead(t);
      // The kill IS the disk replacement: the target forgets every block it
      // held and comes back formatted, so the rebuild starts from zero.
      tgts[t]->reset_contents();
      if (rep) rep->request(t);
    });
    fault->set_dead_probe([health](u32 t) { return !health->alive(t); });
  }
}

client::ClientFs ParallelFileSystem::connect(ClientId id) {
  return client::ClientFs(*this, id);
}

Status ParallelFileSystem::preallocate(InodeNo ino, u64 total_blocks) {
  // Split the whole-file reservation the way the stripe splits the data.
  const auto slices =
      osd::slices_for(cfg_.stripe, FileBlock{0}, total_blocks);
  // Per-target local sizes: the maximum local end seen per target.
  std::vector<u64> local_end(targets_.size(), 0);
  for (const osd::StripeSlice& s : slices) {
    local_end[s.target] =
        std::max(local_end[s.target], s.local_start.v + s.count);
  }
  // Fan the per-target reservations out as tickets (one per OSD) and drain:
  // under an async transport the targets reserve concurrently.
  rpc::CompletionQueue& cq = rpc_client_->completions();
  std::vector<rpc::Ticket> pending;
  Status issued{};
  for (std::size_t t = 0; t < targets_.size(); ++t) {
    if (local_end[t] == 0) continue;
    rpc::Ticket tk =
        rpc_client_->preallocate_async(static_cast<u32>(t), ino, local_end[t]);
    if (auto r = cq.try_take(tk)) {
      if (!*r) {
        issued = r->error();
        break;
      }
    } else {
      pending.push_back(tk);
    }
  }
  Status drained{};
  for (const rpc::Ticket& tk : pending) {
    if (Status st = rpc_client_->wait(tk); !st && drained.ok()) drained = st;
  }
  return issued.ok() ? drained : issued;
}

void ParallelFileSystem::close_file(InodeNo ino) {
  std::vector<rpc::Ticket> tickets;
  tickets.reserve(targets_.size());
  for (u32 t = 0; t < targets_.size(); ++t) {
    tickets.push_back(rpc_client_->close_file_async(t, ino));
    // Replica subfiles hold their own allocator reservations.
    for (u32 c = 1; c <= cfg_.redundancy.copies(); ++c) {
      tickets.push_back(
          rpc_client_->close_file_async(t, redundancy::replica_ino(ino, c)));
    }
  }
  for (const rpc::Ticket& tk : tickets) (void)rpc_client_->wait(tk);
}

void ParallelFileSystem::delete_file(InodeNo ino) {
  std::vector<rpc::Ticket> tickets;
  tickets.reserve(targets_.size());
  for (u32 t = 0; t < targets_.size(); ++t) {
    tickets.push_back(rpc_client_->delete_file_async(t, ino));
    for (u32 c = 1; c <= cfg_.redundancy.copies(); ++c) {
      tickets.push_back(
          rpc_client_->delete_file_async(t, redundancy::replica_ino(ino, c)));
    }
  }
  for (const rpc::Ticket& tk : tickets) (void)rpc_client_->wait(tk);
}

u64 ParallelFileSystem::file_extents(InodeNo ino) const {
  u64 n = 0;
  for (const auto& t : targets_) n += t->extent_count(ino);
  return n;
}

void ParallelFileSystem::drain_data() {
  // Anything a batching transport still buffers has to reach the targets
  // before their queues can drain, and every outstanding ticket must retire
  // (drain-on-unmount: errors with no claimant are swallowed here, like a
  // close(2) after failed writeback).
  (void)rpc_client_->flush();
  (void)rpc_stack_.top().completions().wait_all();
  for (auto& t : targets_) t->drain();
  // Phase/unmount barrier: any queued rebuild runs to completion here (the
  // throttle is bypassed — there is no foreground left to protect).  The
  // repair traffic itself flows through the transport, so flush and drain
  // once more behind it.
  if (repair_ && repair_->pending()) {
    repair_->drain();
    (void)rpc_client_->flush();
    (void)rpc_stack_.top().completions().wait_all();
    for (auto& t : targets_) t->drain();
  }
  // Phase boundary in every workload — a natural safe point to sample.
  tick_timeline();
}

double ParallelFileSystem::data_elapsed_ms() const {
  double t = 0.0;
  for (const auto& tgt : targets_) t = std::max(t, tgt->elapsed_ms());
  return t;
}

sim::DiskStats ParallelFileSystem::data_stats() const {
  sim::DiskStats total;
  for (const auto& t : targets_) {
    const sim::DiskStats& s = t->disk().stats();
    total.requests += s.requests;
    total.positionings += s.positionings;
    total.skips += s.skips;
    total.sequential_hits += s.sequential_hits;
    total.blocks_read += s.blocks_read;
    total.blocks_written += s.blocks_written;
    total.seek_ms += s.seek_ms;
    total.rotation_ms += s.rotation_ms;
    total.skip_ms += s.skip_ms;
    total.transfer_ms += s.transfer_ms;
  }
  return total;
}

void ParallelFileSystem::reset_data_stats() {
  for (auto& t : targets_) {
    t->drain();
    // The attribution ledger is lifetime-cumulative while workloads reset
    // the disk counters between setup and the measured phase; bank the
    // discarded busy time so attribution_json's conservation comparand
    // still covers every millisecond ever charged.
    reset_disk_ms_ += t->disk().stats().busy_ms();
    t->disk().reset_stats();
    t->io().reset_stats();
  }
}

void ParallelFileSystem::tick_timeline() {
  // Safe point: one bounded repair pump before sampling, so the timeline
  // gauges see the rebuild ramp (files_per_pump keeps foreground flowing).
  if (repair_ && repair_->pending()) (void)repair_->pump();
  // Gauges for principals that appeared since the last safe point must be
  // registered BEFORE the tick — add_gauge and tick share the timeline's
  // mutex, so a gauge callback can never register another gauge.
  if (timeline_ && attrib_) sync_attrib_gauges();
  if (timeline_) timeline_->tick();
}

void ParallelFileSystem::sync_attrib_gauges() {
  obs::Attribution* a = attrib_;  // raw ledger pointer, NOT `this` — benches
                                  // move the PFS value around.
  if (!attrib_gauges_bound_) {
    attrib_gauges_bound_ = true;
    timeline_->add_gauge("attrib.principals", [a] {
      return static_cast<double>(a->accounts().size());
    });
    timeline_->add_gauge("attrib.fairness", [a] { return a->fairness(); });
  }
  for (const auto& [key, acct] : attrib_->accounts()) {
    if (std::find(attrib_gauge_keys_.begin(), attrib_gauge_keys_.end(),
                  key) != attrib_gauge_keys_.end()) {
      continue;
    }
    attrib_gauge_keys_.push_back(key);
    const u64 k = key;
    timeline_->add_gauge(
        "attrib." + obs::Principal::from_key(key).label() + ".total_ms",
        [a, k] {
          const auto accts = a->accounts();
          const auto it = accts.find(k);
          return it == accts.end() ? 0.0 : it->second.total_ms();
        });
  }
}

void ParallelFileSystem::set_attribution(obs::Attribution* attrib) {
  attrib_ = attrib;
  rpc_stack_.set_attribution(attrib);
  for (auto& t : targets_) t->set_attribution(attrib);
  for (auto& m : mds_) m->set_attribution(attrib);
}

obs::Json ParallelFileSystem::attribution_json() const {
  if (!attrib_) return obs::Json{};
  obs::Json j;
  j["principals"] = attrib_->to_json();
  // The independent cluster totals the per-principal ledger must conserve
  // against (the attrib_test / bench-gate invariant): sums over principals
  // equal these to within FP accumulation order.
  obs::Json global;
  double disk_ms = reset_disk_ms_ + data_stats().busy_ms();
  double mds_cpu = 0.0;
  for (const auto& m : mds_) {
    disk_ms += m->fs().disk().stats().busy_ms();
    mds_cpu += m->stats().cpu_ms;
  }
  global["disk_ms"] = disk_ms;
  const sim::NetworkStats& mn = rpc_stack_.meta_network().stats();
  const sim::NetworkStats& dn = rpc_stack_.data_network().stats();
  global["net_ms"] = mn.time_ms + dn.time_ms;
  global["net_bytes"] = mn.bytes + dn.bytes;
  global["mds_cpu_ms"] = mds_cpu;
  if (const rpc::AsyncTransport* async = rpc_stack_.async()) {
    global["stall_ms"] = async->report().stall_ms;
  }
  if (const rpc::FaultTransport* fault =
          const_cast<rpc::TransportStack&>(rpc_stack_).fault()) {
    global["fault_delay_ms"] = fault->stats().delay_total_ms;
  }
  j["global"] = global;
  j["fairness"] = attrib_->fairness();
  return j;
}

void ParallelFileSystem::set_timeline(obs::Timeline* tl) {
  timeline_ = tl;
  frag_lens_.reset();
  attrib_gauges_bound_ = false;
  attrib_gauge_keys_.clear();
  // The shards drive sampling from their handler boundaries; the cluster
  // registers all gauges itself (per-shard Mds::set_timeline would collide
  // on the lens names).
  for (auto& m : mds_) m->set_timeline_ticker(tl);
  if (!tl) return;

  // Gauge closures capture raw pointers to the heap-pinned servers/targets
  // (unique_ptr-held), NOT `this` — benches move the PFS value around.
  std::vector<osd::StorageTarget*> tgts;
  for (auto& t : targets_) tgts.push_back(t.get());
  std::vector<mds::Mds*> servers;
  for (auto& m : mds_) servers.push_back(m.get());

  // Cluster clock: the furthest-ahead simulated timeline — a sample is
  // stamped with the time the cluster as a whole has reached.
  tl->set_clock([tgts, servers] {
    double now = 0.0;
    for (osd::StorageTarget* t : tgts) now = std::max(now, t->sim_now_ms());
    for (mds::Mds* m : servers) now = std::max(now, m->fs().elapsed_ms());
    return now;
  });

  for (std::size_t i = 0; i < tgts.size(); ++i) {
    osd::StorageTarget* t = tgts[i];
    const std::string p = "osd." + std::to_string(i);
    tl->add_gauge(p + ".queue_depth", [t] {
      return static_cast<double>(t->queue_depth());
    });
    tl->add_gauge(p + ".busy_frac", [t] { return t->busy_fraction(); });
    tl->add_gauge(p + ".head_block", [t] {
      return static_cast<double>(t->head_block());
    });
  }

  if (rpc::AsyncTransport* async = rpc_stack_.async()) {
    tl->add_gauge("rpc.pipeline.inflight", [async] {
      return static_cast<double>(async->inflight());
    });
    tl->add_gauge("rpc.pipeline.stalls", [async] {
      return static_cast<double>(async->report().stalls);
    });
    tl->add_gauge("rpc.pipeline.stall_ms",
                  [async] { return async->report().stall_ms; });
    tl->add_gauge("rpc.pipeline.depth", [async] {
      return static_cast<double>(async->report().depth);
    });
  }

  if (rpc::QosTransport* qos = rpc_stack_.qos()) {
    tl->add_gauge("qos.backlog",
                  [qos] { return static_cast<double>(qos->backlog()); });
    tl->add_gauge("qos.backlog_bytes", [qos] {
      return static_cast<double>(qos->backlog_bytes());
    });
  }

  if (cfg_.redundancy.enabled()) {
    redundancy::HealthMap* health = health_.get();
    redundancy::Stats* red = red_stats_.get();
    tl->add_gauge("redundancy.dead_targets", [health] {
      return static_cast<double>(health->dead_count());
    });
    tl->add_gauge("redundancy.degraded_reads", [red] {
      return static_cast<double>(
          red->degraded_reads.load(std::memory_order_relaxed));
    });
    if (redundancy::RepairService* rep = repair_.get()) {
      tl->add_gauge("repair.backlog", [rep] {
        return static_cast<double>(rep->backlog());
      });
      tl->add_gauge("repair.blocks_rebuilt", [rep] {
        return static_cast<double>(rep->stats().blocks_rebuilt);
      });
    }
  }

  if (shard::ShardedTransport* sharded = rpc_stack_.sharded()) {
    for (std::size_t i = 0; i < servers.size(); ++i) {
      tl->add_gauge("shard." + std::to_string(i) + ".ops", [sharded, i] {
        const shard::ShardStats s = sharded->stats();
        return i < s.ops_per_shard.size()
                   ? static_cast<double>(s.ops_per_shard[i])
                   : 0.0;
      });
    }
  }

  const bool single = servers.size() == 1;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    mds::Mds* m = servers[i];
    const std::string p = single ? "mds" : "mds." + std::to_string(i);
    tl->add_gauge(p + ".rpcs", [m] {
      return static_cast<double>(m->stats().rpcs);
    });
    tl->add_gauge(p + ".journal.backlog_blocks", [m] {
      return static_cast<double>(m->fs().journal().backlog_blocks());
    });
    tl->add_gauge(p + ".cache.resident_blocks", [m] {
      return static_cast<double>(m->fs().cache().resident_blocks());
    });
    tl->add_gauge(p + ".disk.queue_depth", [m] {
      return static_cast<double>(m->fs().io().queue_depth());
    });
  }

  // Cluster fragmentation lens: the data-side per-subfile extent
  // distribution and free-space runs (the paper's Table I view), plus the
  // namespace's per-directory degree from every shard.
  frag_lens_ = std::make_unique<obs::FragLens>();
  for (osd::StorageTarget* t : tgts) {
    frag_lens_->add_source([t](obs::FragSnapshot& s) {
      t->for_each_extent_count([&s](u64 extents) { s.add_file(extents); });
      s.free_run_count += t->space().add_free_runs(s.free_runs);
      s.free_blocks += t->space().free_blocks();
    });
  }
  for (mds::Mds* m : servers) {
    frag_lens_->add_source([m](obs::FragSnapshot& s) {
      m->fs().layout().scan_fragmentation(
          [](u64) {},  // files counted on the data side (subfile extents)
          [&s](double degree, u64 files) { s.add_dir(degree, files); });
    });
  }
  frag_lens_->bind(*tl);
}

void ParallelFileSystem::set_trace(obs::TraceBuffer* trace) {
  for (auto& m : mds_) m->set_trace(trace);
  for (auto& t : targets_) t->set_trace(trace);
}

void ParallelFileSystem::set_spans(obs::SpanCollector* spans) {
  spans_ = spans;
  for (auto& m : mds_) m->set_spans(spans);
  rpc_stack_.set_spans(spans);
  // One track namespace per attachment: a bench sweeping configurations
  // recreates the cluster against a shared collector, and each mount's
  // disks must keep their own timelines (lane = target index).
  const u32 inst = spans ? spans->reserve_track_namespace() : 0;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    targets_[i]->set_spans(spans, obs::make_track(inst, static_cast<u32>(i)));
  }
  if (repair_) repair_->set_spans(spans);
}

void ParallelFileSystem::export_metrics(obs::MetricsRegistry& reg) const {
  // Single-MDS mounts keep the historical "mds" prefix (byte-identity with
  // the pre-sharding reports); multi-shard mounts export per shard.
  if (mds_.size() == 1) {
    mds_[0]->export_metrics(reg, "mds");
  } else {
    for (std::size_t i = 0; i < mds_.size(); ++i) {
      mds_[i]->export_metrics(reg, "mds." + std::to_string(i));
    }
  }
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    targets_[i]->export_metrics(reg, "osd." + std::to_string(i));
  }
  // Per-op envelope counters, latency histograms, the meta/data aggregates
  // and both simulated networks — everything the transport charges.
  rpc_stack_.export_metrics(reg, "rpc");

  // Cluster-wide aggregates under the names the paper's algorithm uses.
  alloc::AllocatorStats agg;
  for (const auto& t : targets_) {
    const alloc::AllocatorStats s = t->allocator().stats();
    agg.extends += s.extends;
    agg.fresh_allocations += s.fresh_allocations;
    agg.allocated_blocks += s.allocated_blocks;
    agg.layout_misses += s.layout_misses;
    agg.prealloc_promotions += s.prealloc_promotions;
    agg.reserved_blocks += s.reserved_blocks;
    agg.released_blocks += s.released_blocks;
    agg.prealloc_disabled += s.prealloc_disabled;
  }
  const std::string mode =
      obs::join_key("alloc", obs::metric_key(cfg_.target.allocator));
  obs::publish(reg, mode, agg);

  obs::publish(reg, "sim.disk", data_stats());
  obs::Histo& extents = reg.histogram("alloc.extents_per_file");
  obs::Stat& position = reg.stat("sim.disk.position_ms");
  for (const auto& t : targets_) {
    t->add_extent_counts(extents);
    position.merge_from(t->disk().position_times_ms());
  }

  // Redundancy & repair counters — only on replicated mounts, so default
  // reports stay byte-identical.
  if (cfg_.redundancy.enabled()) {
    reg.counter("redundancy.replicas").inc(cfg_.redundancy.replicas);
    reg.counter("redundancy.degraded_reads")
        .inc(red_stats_->degraded_reads.load(std::memory_order_relaxed));
    reg.counter("redundancy.replica_writes")
        .inc(red_stats_->replica_writes.load(std::memory_order_relaxed));
    reg.counter("redundancy.degraded_writes")
        .inc(red_stats_->degraded_writes.load(std::memory_order_relaxed));
    reg.counter("redundancy.lost_routes")
        .inc(red_stats_->lost_routes.load(std::memory_order_relaxed));
    reg.counter("redundancy.deaths").inc(health_->deaths());
    reg.counter("redundancy.dead_targets").inc(health_->dead_count());
    if (repair_) {
      const redundancy::RepairStats& rs = repair_->stats();
      reg.counter("repair.requested").inc(rs.requested);
      reg.counter("repair.completed").inc(rs.completed);
      reg.counter("repair.files_rebuilt").inc(rs.files_rebuilt);
      reg.counter("repair.extents_rebuilt").inc(rs.extents_rebuilt);
      reg.counter("repair.blocks_rebuilt").inc(rs.blocks_rebuilt);
      reg.counter("repair.bytes_rebuilt").inc(rs.bytes_rebuilt);
      reg.counter("repair.rounds").inc(rs.rounds);
      reg.counter("repair.rollbacks").inc(rs.rollbacks);
      reg.counter("repair.unrecoverable").inc(rs.unrecoverable);
      reg.stat("repair.completed_at_ms").add(rs.completed_at_ms);
    }
  }

  // Per-phase request-span latency distributions (span.<phase>), when a
  // collector is attached.
  if (spans_) spans_->export_metrics(reg);

  // End-of-run fragmentation snapshot, when a timeline is attached (the
  // lens caches the last sample, so this equals the final series values —
  // the invariant the bench-JSON CI gate checks).  Guarded so default
  // reports stay byte-identical.
  if (frag_lens_) frag_lens_->export_metrics(reg, "frag");
}

obs::Json ParallelFileSystem::metrics_json() const {
  obs::MetricsRegistry reg;
  export_metrics(reg);
  return reg.to_json();
}

}  // namespace mif::core
