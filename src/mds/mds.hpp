// Metadata server: the MFS wrapped with the protocol the clients speak.
//
// Adds what the paper's evaluation measures beyond raw block traffic:
//   * aggregated operation pairs (§II-A2): open-getlayout and readdir-stat
//     (readdirplus) are single RPCs that touch co-located metadata;
//   * MDS CPU accounting — Table I correlates extent counts with MDS CPU
//     utilisation ("the less extents … to be operated, such as merging and
//     indexing, the less CPU load involved in MDS").
//
// Network cost is NOT charged here: every handler below is reached through
// an rpc::Transport envelope (src/rpc/), and the transport charges
// sim::Network from the envelope's actual wire size in one place.  The
// transport calls account_rpc() once per delivered metadata envelope so RPC
// counts and per-RPC CPU stay with the server they load.
#pragma once

#include <memory>
#include <string_view>

#include "mfs/mfs.hpp"
#include "obs/fraglens.hpp"
#include "shard/map.hpp"

namespace mif::obs {
class Attribution;
class MetricsRegistry;
class SpanCollector;
class Timeline;
}

namespace mif::mds {

struct MdsConfig {
  mfs::MfsConfig mfs{};
  /// CPU microseconds charged per extent the MDS touches (merge/index/send).
  double cpu_us_per_extent{20.0};
  /// Fixed CPU microseconds per RPC (decode, dispatch, encode).
  double cpu_us_per_rpc{2.0};
  /// Metadata servers the cluster mounts.  1 = the classic single-MDS stack
  /// (no shard routing is built at all); >= 2 mounts one full Mds per shard
  /// behind shard::ShardedTransport.
  u32 shards{1};
  /// How the sharded namespace is placed across servers (ignored for
  /// shards == 1).
  shard::Policy placement{shard::Policy::kSubtree};
};

struct MdsStats {
  u64 rpcs{0};
  u64 extent_ops{0};  // extents merged/indexed/shipped
  double cpu_ms{0.0};
};

struct OpenResult {
  InodeNo ino{};
  u64 extent_count{0};
};

class Mds {
 public:
  explicit Mds(MdsConfig cfg = {});

  // --- namespace RPC handlers ----------------------------------------------
  Result<InodeNo> mkdir(std::string_view path);
  Result<InodeNo> create(std::string_view path);
  Status stat(std::string_view path);
  Status utime(std::string_view path);
  Status unlink(std::string_view path);
  Result<InodeNo> rename(std::string_view from, std::string_view to);

  /// Aggregated open: resolve + getlayout in ONE request (pNFS block-mode /
  /// Lustre open behaviour, §II-A2).  Ships the extent list to the client,
  /// charging CPU per extent.
  Result<OpenResult> open_getlayout(std::string_view path);

  /// Aggregated readdir + stat of every child (readdirplus, §II-A2).
  Result<std::vector<mfs::DirEntry>> readdir_stats(std::string_view path);

  /// Plain readdir (no inode fetch in normal mode).
  Result<std::vector<mfs::DirEntry>> readdir(std::string_view path);

  /// Storage targets report a file's grown layout; the MDS persists it and
  /// pays CPU for every extent it has to merge/index.
  Status report_extents(InodeNo file, u64 extent_count);

  /// One delivered RPC envelope: count it and pay the fixed dispatch CPU.
  /// Called by the transport, exactly once per (non-free) metadata op.
  void account_rpc();

  // --- observability -------------------------------------------------------
  mfs::Mfs& fs() { return fs_; }
  const MdsStats& stats() const { return stats_; }
  MdsStats snapshot() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Attach a trace sink to the metadata stack (journal, cache).
  void set_trace(obs::TraceBuffer* trace) { fs_.set_trace(trace); }

  /// Attach a span collector: namespace RPCs record `mds.*` phases and the
  /// metadata stack (journal, MDS disk) records its own (nullptr detaches).
  void set_spans(obs::SpanCollector* spans) {
    spans_ = spans;
    fs_.set_spans(spans);
  }

  /// Attach cost attribution: handler CPU is charged to the ambient
  /// principal (`mds.cpu` sim spans ride a cumulative CPU clock when spans
  /// are also attached), and the metadata disk's scheduler stamps/charges
  /// its submitters too.  nullptr detaches.
  void set_attribution(obs::Attribution* attrib);

  /// Publish MDS RPC/CPU counters plus the whole MFS stack under
  /// `<prefix>.…`.
  void export_metrics(obs::MetricsRegistry& reg,
                      std::string_view prefix) const;

  /// Attach a flight recorder (obs/timeline.hpp): wires this server's own
  /// gauges — journal backlog, cache occupancy, metadata-disk queue depth /
  /// busy fraction / head position, RPC count — plus a fragmentation lens
  /// over the namespace and the metadata free space, and ticks the timeline
  /// at the end of every handler.  nullptr detaches.
  void set_timeline(obs::Timeline* tl);

  /// Tick-only attachment: the owner (core::ParallelFileSystem) registers
  /// cluster-level gauges itself; this server merely drives sampling from
  /// its handler boundaries — the safe points where no block operation is
  /// mid-flight.
  void set_timeline_ticker(obs::Timeline* tl) { timeline_ = tl; }

  obs::Timeline* timeline() { return timeline_; }
  const obs::FragLens* frag_lens() const { return frag_lens_.get(); }

  /// CPU utilisation over the run so far: CPU time ÷ elapsed (disk) time.
  double cpu_utilization() const;

  void finish() { fs_.finish(); }

 private:
  void charge_extents(u64 n);
  /// Accumulate handler CPU and, with attribution on, charge the ambient
  /// principal (plus an `mds.cpu` sim span when spans are attached).
  void charge_cpu(double cpu_ms);

  /// RAII handler hook: declared before any ScopedSpan so the sample is
  /// taken after the span closed and the handler's block traffic settled.
  struct TimelineTick {
    Mds& m;
    explicit TimelineTick(Mds& mds) : m(mds) {}
    ~TimelineTick();
  };

  MdsConfig cfg_;
  mfs::Mfs fs_;
  MdsStats stats_;
  obs::SpanCollector* spans_{nullptr};
  obs::Attribution* attrib_{nullptr};
  obs::Timeline* timeline_{nullptr};
  std::unique_ptr<obs::FragLens> frag_lens_;
  /// Lazily-reserved namespace for `mds.cpu` sim spans.
  bool cpu_ns_set_{false};
  u32 cpu_ns_{0};
};

}  // namespace mif::mds
