#include "mds/mds_cluster.hpp"

#include <cassert>

namespace mif::mds {

MdsCluster::MdsCluster(std::size_t servers, std::string dirname, MdsConfig cfg)
    : dirname_(std::move(dirname)),
      group_(servers, cfg),
      map_(static_cast<u32>(servers), shard::Policy::kHash) {
  for (std::size_t i = 0; i < group_.size(); ++i) {
    auto r = group_.client(i).mkdir(dirname_);
    assert(r);
    (void)r;
  }
}

std::string MdsCluster::subpath(std::string_view name) const {
  std::string p = dirname_;
  p += '/';
  p += name;
  return p;
}

Result<InodeNo> MdsCluster::create(std::string_view name) {
  const u64 h = shard::hash_of(name);
  if (name_hashes_.contains(h)) return Errc::kExists;
  auto r = group_.client(map_.owner_by_hash(name)).create(subpath(name));
  if (r) {
    name_hashes_.insert(h);
    ++stats_.subordinate_rpcs;
  }
  return r;
}

Status MdsCluster::stat(std::string_view name) {
  ++stats_.lookups;
  const u64 h = shard::hash_of(name);
  if (!name_hashes_.contains(h)) {
    // Primary answers the negative straight from its hash set — no
    // subordinate interaction (§IV-C).
    ++stats_.avoided_rpcs;
    return Errc::kNotFound;
  }
  ++stats_.primary_hits;
  ++stats_.subordinate_rpcs;
  return group_.client(map_.owner_by_hash(name)).stat(subpath(name));
}

Status MdsCluster::unlink(std::string_view name) {
  const u64 h = shard::hash_of(name);
  if (!name_hashes_.contains(h)) return Errc::kNotFound;
  Status s = group_.client(map_.owner_by_hash(name)).unlink(subpath(name));
  if (s.ok()) {
    name_hashes_.erase(h);
    ++stats_.subordinate_rpcs;
  }
  return s;
}

u64 MdsCluster::total_entries() const { return name_hashes_.size(); }

}  // namespace mif::mds
