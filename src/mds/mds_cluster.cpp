#include "mds/mds_cluster.hpp"

#include <cassert>

#include "mfs/name_index.hpp"

namespace mif::mds {

MdsCluster::MdsCluster(std::size_t servers, std::string dirname, MdsConfig cfg)
    : dirname_(std::move(dirname)) {
  assert(servers >= 1);
  servers_.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i) {
    servers_.push_back(std::make_unique<Mds>(cfg));
  }
  rpc::Endpoints eps;
  for (auto& s : servers_) eps.mds.push_back(s.get());
  transport_ = std::make_unique<rpc::InprocTransport>(std::move(eps));
  clients_.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i) {
    clients_.emplace_back(*transport_, static_cast<u32>(i));
    auto r = clients_.back().mkdir(dirname_);
    assert(r);
    (void)r;
  }
}

std::size_t MdsCluster::owner_of(std::string_view name) const {
  return mfs::name_hash(name) % servers_.size();
}

std::string MdsCluster::subpath(std::string_view name) const {
  std::string p = dirname_;
  p += '/';
  p += name;
  return p;
}

Result<InodeNo> MdsCluster::create(std::string_view name) {
  const u64 h = mfs::name_hash(name);
  if (name_hashes_.contains(h)) return Errc::kExists;
  auto r = clients_[owner_of(name)].create(subpath(name));
  if (r) {
    name_hashes_.insert(h);
    ++stats_.subordinate_rpcs;
  }
  return r;
}

Status MdsCluster::stat(std::string_view name) {
  ++stats_.lookups;
  const u64 h = mfs::name_hash(name);
  if (!name_hashes_.contains(h)) {
    // Primary answers the negative straight from its hash set — no
    // subordinate interaction (§IV-C).
    ++stats_.avoided_rpcs;
    return Errc::kNotFound;
  }
  ++stats_.primary_hits;
  ++stats_.subordinate_rpcs;
  return clients_[owner_of(name)].stat(subpath(name));
}

Status MdsCluster::unlink(std::string_view name) {
  const u64 h = mfs::name_hash(name);
  if (!name_hashes_.contains(h)) return Errc::kNotFound;
  Status s = clients_[owner_of(name)].unlink(subpath(name));
  if (s.ok()) {
    name_hashes_.erase(h);
    ++stats_.subordinate_rpcs;
  }
  return s;
}

u64 MdsCluster::total_entries() const { return name_hashes_.size(); }

}  // namespace mif::mds
