// MDS cluster for extreme (millions-of-entries) directories — §IV-C.
//
// "Subfiles in the extreme large directory are assigned to and managed by
// different servers.  The cluster using embedded directory enforces the
// PRIMARY server (managing the parent directory content) to collect the
// hash value of the subfiles' names.  Therefore, to lookup a specific file,
// the primary server finds whether the hash value of the file name exists,
// avoiding extra interactions with the subordinate servers."
//
// We model one giant directory striped across N servers by name hash; every
// member runs its own full MDS stack (shard::MdsGroup), and the owner of a
// subfile is decided by the cluster-wide shard::Map — the same placement
// function the whole-stack ShardedTransport uses.  The interesting counter
// is `avoided_rpcs`: negative lookups the primary answered from its hash set
// without touching any subordinate.
#pragma once

#include <string>
#include <unordered_set>

#include "shard/group.hpp"
#include "shard/map.hpp"

namespace mif::mds {

struct ClusterStats {
  u64 lookups{0};
  u64 primary_hits{0};      // positive lookups routed to a subordinate
  u64 avoided_rpcs{0};      // negative lookups answered by the hash set
  u64 subordinate_rpcs{0};  // requests that did reach a subordinate
};

class MdsCluster {
 public:
  /// `servers` metadata servers; server 0 is the primary for the single
  /// giant directory `dirname` this model manages.
  MdsCluster(std::size_t servers, std::string dirname, MdsConfig cfg = {});

  /// Create a subfile; routed to the owning server by name hash, and the
  /// primary records the hash.
  Result<InodeNo> create(std::string_view name);

  /// Lookup/stat a subfile by name.  Misses are answered by the primary's
  /// hash set; hits pay one subordinate RPC.
  Status stat(std::string_view name);

  Status unlink(std::string_view name);

  /// Entries across the whole cluster (scatter-gather readdir).
  u64 total_entries() const;

  Mds& server(std::size_t i) { return group_.server(i); }
  std::size_t size() const { return group_.size(); }
  const ClusterStats& stats() const { return stats_; }

  /// Attach a span collector to every member server (nullptr detaches).
  /// Member metadata disks share one span track; the per-server lookup /
  /// create phases still separate by span args.
  void set_spans(obs::SpanCollector* spans) { group_.set_spans(spans); }

 private:
  std::string subpath(std::string_view name) const;

  std::string dirname_;
  shard::MdsGroup group_;
  /// Name-hash placement over the members (shard::hash_of everywhere).
  shard::Map map_;
  std::unordered_set<u64> name_hashes_;  // primary's collected hash set
  ClusterStats stats_;
};

}  // namespace mif::mds
