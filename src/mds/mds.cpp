#include "mds/mds.hpp"

#include <algorithm>

#include "obs/export.hpp"
#include "obs/span.hpp"

namespace mif::mds {

Mds::Mds(MdsConfig cfg) : cfg_(cfg), fs_(cfg.mfs) {}

void Mds::charge_extents(u64 n) {
  stats_.extent_ops += n;
  stats_.cpu_ms += static_cast<double>(n) * cfg_.cpu_us_per_extent / 1000.0;
}

Result<InodeNo> Mds::mkdir(std::string_view path) { return fs_.mkdir(path); }

Result<InodeNo> Mds::create(std::string_view path) {
  obs::ScopedSpan span(spans_, "mds.create");
  return fs_.create(path);
}

Status Mds::stat(std::string_view path) {
  // A stat is a pure namespace lookup: one path walk, no layout work.
  obs::ScopedSpan span(spans_, "mds.lookup");
  return fs_.stat(path);
}

Status Mds::utime(std::string_view path) { return fs_.utime(path); }

Status Mds::unlink(std::string_view path) { return fs_.unlink(path); }

Result<InodeNo> Mds::rename(std::string_view from, std::string_view to) {
  return fs_.rename(from, to);
}

Result<OpenResult> Mds::open_getlayout(std::string_view path) {
  obs::ScopedSpan span(spans_, "mds.open_getlayout");
  auto ino = [&] {
    obs::ScopedSpan lookup(spans_, "mds.lookup");
    return fs_.resolve(path);
  }();
  if (!ino) return ino.error();
  mfs::Inode* node = fs_.find(*ino);
  if (!node) return Errc::kNotFound;
  if (Status s = fs_.getlayout(*ino); !s) return s.error();
  // The MDS serves the layout it last persisted from the storage targets.
  // The transport charges the reply transfer from the extent count it finds
  // in the response envelope — fragmented files cost bandwidth too.
  const u64 extents = node->last_synced_extents;
  charge_extents(extents);
  return OpenResult{*ino, extents};
}

Result<std::vector<mfs::DirEntry>> Mds::readdir_stats(std::string_view path) {
  return fs_.readdir(path, /*plus=*/true);
}

Result<std::vector<mfs::DirEntry>> Mds::readdir(std::string_view path) {
  return fs_.readdir(path, /*plus=*/false);
}

Status Mds::report_extents(InodeNo file, u64 extent_count) {
  // The MDS merges the newly grown part of the layout into its index; CPU
  // is paid per extent it has to process, i.e. the delta since the last
  // report.
  obs::ScopedSpan span(spans_, "mds.report_extents", file.v, extent_count);
  mfs::Inode* node = fs_.find(file);
  if (!node) return Errc::kNotFound;
  const u64 before = node->last_synced_extents;
  const u64 delta = extent_count > before ? extent_count - before
                                          : before - extent_count;
  charge_extents(delta);
  return fs_.sync_file_layout(file, extent_count);
}

double Mds::cpu_utilization() const {
  const double elapsed = std::max(fs_.elapsed_ms(), 1e-9);
  return std::min(1.0, stats_.cpu_ms / elapsed);
}

void Mds::export_metrics(obs::MetricsRegistry& reg,
                         std::string_view prefix) const {
  obs::publish(reg, prefix, stats_);
  reg.gauge(obs::join_key(prefix, "cpu_utilization")).set(cpu_utilization());
  fs_.export_metrics(reg, obs::join_key(prefix, "mfs"));
}

}  // namespace mif::mds
