#include "mds/mds.hpp"

#include <algorithm>

#include "obs/attrib.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"

namespace mif::mds {

Mds::Mds(MdsConfig cfg) : cfg_(cfg), fs_(cfg.mfs) {}

Mds::TimelineTick::~TimelineTick() {
  if (m.timeline_) m.timeline_->tick();
}

void Mds::charge_cpu(double cpu_ms) {
  stats_.cpu_ms += cpu_ms;
  if (!attrib_ || cpu_ms <= 0.0) return;
  attrib_->charge_mds(obs::ambient_principal(), cpu_ms);
  if (spans_) {
    if (!cpu_ns_set_) {
      cpu_ns_ = spans_->reserve_track_namespace();
      cpu_ns_set_ = true;
    }
    // Cumulative CPU clock: stats_.cpu_ms just grew by exactly cpu_ms.
    spans_->record_sim("mds.cpu", obs::make_track(cpu_ns_, 0),
                       stats_.cpu_ms - cpu_ms, cpu_ms, spans_->ambient());
  }
}

void Mds::account_rpc() {
  ++stats_.rpcs;
  charge_cpu(cfg_.cpu_us_per_rpc / 1000.0);
}

void Mds::charge_extents(u64 n) {
  stats_.extent_ops += n;
  charge_cpu(static_cast<double>(n) * cfg_.cpu_us_per_extent / 1000.0);
}

void Mds::set_attribution(obs::Attribution* attrib) {
  attrib_ = attrib;
  fs_.io().set_attribution(attrib);
}

Result<InodeNo> Mds::mkdir(std::string_view path) {
  TimelineTick tick(*this);
  return fs_.mkdir(path);
}

Result<InodeNo> Mds::create(std::string_view path) {
  TimelineTick tick(*this);
  obs::ScopedSpan span(spans_, "mds.create");
  return fs_.create(path);
}

Status Mds::stat(std::string_view path) {
  TimelineTick tick(*this);
  // A stat is a pure namespace lookup: one path walk, no layout work.
  obs::ScopedSpan span(spans_, "mds.lookup");
  return fs_.stat(path);
}

Status Mds::utime(std::string_view path) {
  TimelineTick tick(*this);
  return fs_.utime(path);
}

Status Mds::unlink(std::string_view path) {
  TimelineTick tick(*this);
  return fs_.unlink(path);
}

Result<InodeNo> Mds::rename(std::string_view from, std::string_view to) {
  TimelineTick tick(*this);
  return fs_.rename(from, to);
}

Result<OpenResult> Mds::open_getlayout(std::string_view path) {
  TimelineTick tick(*this);
  obs::ScopedSpan span(spans_, "mds.open_getlayout");
  auto ino = [&] {
    obs::ScopedSpan lookup(spans_, "mds.lookup");
    return fs_.resolve(path);
  }();
  if (!ino) return ino.error();
  mfs::Inode* node = fs_.find(*ino);
  if (!node) return Errc::kNotFound;
  if (Status s = fs_.getlayout(*ino); !s) return s.error();
  // The MDS serves the layout it last persisted from the storage targets.
  // The transport charges the reply transfer from the extent count it finds
  // in the response envelope — fragmented files cost bandwidth too.
  const u64 extents = node->last_synced_extents;
  charge_extents(extents);
  return OpenResult{*ino, extents};
}

Result<std::vector<mfs::DirEntry>> Mds::readdir_stats(std::string_view path) {
  TimelineTick tick(*this);
  return fs_.readdir(path, /*plus=*/true);
}

Result<std::vector<mfs::DirEntry>> Mds::readdir(std::string_view path) {
  TimelineTick tick(*this);
  return fs_.readdir(path, /*plus=*/false);
}

Status Mds::report_extents(InodeNo file, u64 extent_count) {
  TimelineTick tick(*this);
  // The MDS merges the newly grown part of the layout into its index; CPU
  // is paid per extent it has to process, i.e. the delta since the last
  // report.
  obs::ScopedSpan span(spans_, "mds.report_extents", file.v, extent_count);
  mfs::Inode* node = fs_.find(file);
  if (!node) return Errc::kNotFound;
  const u64 before = node->last_synced_extents;
  const u64 delta = extent_count > before ? extent_count - before
                                          : before - extent_count;
  charge_extents(delta);
  return fs_.sync_file_layout(file, extent_count);
}

void Mds::set_timeline(obs::Timeline* tl) {
  timeline_ = tl;
  frag_lens_.reset();
  if (!tl) return;
  tl->set_clock([this] { return fs_.elapsed_ms(); });
  tl->add_gauge("mds.rpcs",
                [this] { return static_cast<double>(stats_.rpcs); });
  tl->add_gauge("mds.journal.backlog_blocks", [this] {
    return static_cast<double>(fs_.journal().backlog_blocks());
  });
  tl->add_gauge("mds.cache.resident_blocks", [this] {
    return static_cast<double>(fs_.cache().resident_blocks());
  });
  tl->add_gauge("mds.disk.queue_depth", [this] {
    return static_cast<double>(fs_.io().queue_depth());
  });
  tl->add_gauge("mds.disk.busy_frac", [this] {
    const double now = fs_.disk().now_ms();
    return now > 0.0 ? fs_.disk().stats().busy_ms() / now : 0.0;
  });
  tl->add_gauge("mds.disk.head_block", [this] {
    return static_cast<double>(fs_.disk().head().v);
  });
  frag_lens_ = std::make_unique<obs::FragLens>();
  frag_lens_->add_source([this](obs::FragSnapshot& s) {
    fs_.layout().scan_fragmentation(
        [&s](u64 extents) { s.add_file(extents); },
        [&s](double degree, u64 files) { s.add_dir(degree, files); });
  });
  frag_lens_->add_source([this](obs::FragSnapshot& s) {
    s.free_run_count += fs_.space().add_free_runs(s.free_runs);
    s.free_blocks += fs_.space().free_blocks();
  });
  frag_lens_->bind(*tl);
}

double Mds::cpu_utilization() const {
  const double elapsed = std::max(fs_.elapsed_ms(), 1e-9);
  return std::min(1.0, stats_.cpu_ms / elapsed);
}

void Mds::export_metrics(obs::MetricsRegistry& reg,
                         std::string_view prefix) const {
  obs::publish(reg, prefix, stats_);
  reg.gauge(obs::join_key(prefix, "cpu_utilization")).set(cpu_utilization());
  fs_.export_metrics(reg, obs::join_key(prefix, "mfs"));
}

}  // namespace mif::mds
