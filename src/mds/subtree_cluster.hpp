// Metadata-server cluster with pluggable namespace distribution — §IV-D.
//
// The paper's limitation discussion: embedded directories assume "related
// metadata objects are often located in the same disk", which holds for
// clusters that delegate DIRECTORY SUBTREES to individual servers, and
// breaks for clusters that place metadata by PATHNAME HASH (locality
// sacrificed for load distribution): "inode structures of the subfiles in
// the same directory are often managed by different servers … the embedded
// directory can not improve the disk performance."
//
// This cluster implements both policies over real Mds instances so the
// claim is measurable: under subtree partitioning, a directory and all its
// children live on one server (readdirplus = one server's one contiguous
// region); under hash partitioning, children scatter and an aggregated
// listing must fan out.  Placement itself is shard::Map — the same
// delegation/hash logic the whole-stack ShardedTransport routes by.
#pragma once

#include "shard/group.hpp"
#include "shard/map.hpp"

namespace mif::mds {

/// Placement policy, shared with the shard subsystem (`to_string` comes
/// along via ADL).
using DistributionPolicy = shard::Policy;

struct SubtreeClusterStats {
  u64 ops{0};
  u64 colocated_ops{0};   // served by the directory's home server
  u64 fanout_requests{0}; // per-server sub-requests issued by aggregates
};

class SubtreeCluster {
 public:
  SubtreeCluster(std::size_t servers, DistributionPolicy policy,
                 MdsConfig cfg = {});

  /// Create a directory.  Under subtree policy, top-level directories are
  /// spread round-robin (load balance) and everything beneath them stays
  /// put; under hash policy the directory is created on every server that
  /// may hold its children (namespace is mirrored, content is not).
  Status mkdir(std::string_view path);

  Result<InodeNo> create(std::string_view path);
  Status stat(std::string_view path);
  Status utime(std::string_view path);
  Status unlink(std::string_view path);

  /// Aggregated readdir+stat.  Subtree: one server answers for the whole
  /// directory.  Hash: every server owning any child must be asked.
  Result<std::vector<mfs::DirEntry>> readdir_stats(std::string_view dir);

  Mds& server(std::size_t i) { return group_.server(i); }
  std::size_t size() const { return group_.size(); }
  const SubtreeClusterStats& stats() const { return stats_; }

  /// Aggregate disk requests across the cluster (the Fig. 8-style metric).
  u64 total_disk_accesses() const;
  double total_elapsed_ms() const;

 private:
  shard::MdsGroup group_;
  shard::Map map_;
  SubtreeClusterStats stats_;
};

}  // namespace mif::mds
