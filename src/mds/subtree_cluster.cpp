#include "mds/subtree_cluster.hpp"

#include <cassert>

#include "mfs/mfs.hpp"
#include "mfs/name_index.hpp"

namespace mif::mds {

std::string_view to_string(DistributionPolicy p) {
  switch (p) {
    case DistributionPolicy::kSubtree: return "subtree";
    case DistributionPolicy::kHash: return "hash";
  }
  return "?";
}

SubtreeCluster::SubtreeCluster(std::size_t servers, DistributionPolicy policy,
                               MdsConfig cfg)
    : policy_(policy) {
  assert(servers >= 1);
  servers_.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i)
    servers_.push_back(std::make_unique<Mds>(cfg));
  rpc::Endpoints eps;
  for (auto& s : servers_) eps.mds.push_back(s.get());
  transport_ = std::make_unique<rpc::InprocTransport>(std::move(eps));
  clients_.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i)
    clients_.emplace_back(*transport_, static_cast<u32>(i));
}

std::size_t SubtreeCluster::home_of_dir(std::string_view dir_path) const {
  const auto parts = mfs::split_path(dir_path);
  if (parts.empty()) return 0;  // the root itself
  const auto it = delegation_.find(std::string(parts.front()));
  return it == delegation_.end() ? 0 : it->second;
}

std::size_t SubtreeCluster::owner_of(std::string_view path) const {
  switch (policy_) {
    case DistributionPolicy::kSubtree:
      return home_of_dir(path);
    case DistributionPolicy::kHash:
      return mfs::name_hash(path) % servers_.size();
  }
  return 0;
}

Status SubtreeCluster::mkdir(std::string_view path) {
  ++stats_.ops;
  const auto parts = mfs::split_path(path);
  if (parts.empty()) return Errc::kInvalid;
  if (policy_ == DistributionPolicy::kSubtree) {
    // Delegate top-level directories round-robin; deeper ones stay in the
    // subtree they belong to.
    if (parts.size() == 1) {
      delegation_.emplace(std::string(parts.front()),
                          next_delegate_++ % servers_.size());
    }
    auto r = clients_[home_of_dir(path)].mkdir(path);
    if (r) ++stats_.colocated_ops;
    return r ? Status{} : Status{r.error()};
  }
  // Hash policy: the directory skeleton must exist on every server, because
  // any server may be asked to create a child under it.
  Status out;
  for (auto& c : clients_) {
    auto r = c.mkdir(path);
    if (!r && r.error() != Errc::kExists) out = r.error();
    ++stats_.fanout_requests;
  }
  return out;
}

Result<InodeNo> SubtreeCluster::create(std::string_view path) {
  ++stats_.ops;
  const std::size_t owner = owner_of(path);
  if (policy_ == DistributionPolicy::kSubtree ||
      owner == home_of_dir(path)) {
    ++stats_.colocated_ops;
  }
  return clients_[owner].create(path);
}

Status SubtreeCluster::stat(std::string_view path) {
  ++stats_.ops;
  const std::size_t owner = owner_of(path);
  if (policy_ == DistributionPolicy::kSubtree ||
      owner == home_of_dir(path)) {
    ++stats_.colocated_ops;
  }
  return clients_[owner].stat(path);
}

Status SubtreeCluster::utime(std::string_view path) {
  ++stats_.ops;
  return clients_[owner_of(path)].utime(path);
}

Status SubtreeCluster::unlink(std::string_view path) {
  ++stats_.ops;
  return clients_[owner_of(path)].unlink(path);
}

Result<std::vector<mfs::DirEntry>> SubtreeCluster::readdir_stats(
    std::string_view dir) {
  ++stats_.ops;
  if (policy_ == DistributionPolicy::kSubtree) {
    // One server holds the directory AND every child's embedded metadata:
    // the aggregation stays a single contiguous sweep (§IV-D).
    ++stats_.colocated_ops;
    ++stats_.fanout_requests;
    return clients_[home_of_dir(dir)].readdir_stats(dir);
  }
  // Hash policy: children are scattered; every server must list its share.
  std::vector<mfs::DirEntry> all;
  for (auto& c : clients_) {
    ++stats_.fanout_requests;
    auto part = c.readdir_stats(dir);
    if (!part) {
      if (part.error() == Errc::kNotFound) continue;
      return part;
    }
    all.insert(all.end(), part->begin(), part->end());
  }
  return all;
}

u64 SubtreeCluster::total_disk_accesses() const {
  u64 n = 0;
  for (const auto& s : servers_)
    n += const_cast<Mds&>(*s).fs().disk_accesses();
  return n;
}

double SubtreeCluster::total_elapsed_ms() const {
  double t = 0.0;
  for (const auto& s : servers_)
    t += const_cast<Mds&>(*s).fs().elapsed_ms();
  return t;
}

}  // namespace mif::mds
