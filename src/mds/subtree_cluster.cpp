#include "mds/subtree_cluster.hpp"

#include "mfs/mfs.hpp"

namespace mif::mds {

SubtreeCluster::SubtreeCluster(std::size_t servers, DistributionPolicy policy,
                               MdsConfig cfg)
    : group_(servers, cfg), map_(static_cast<u32>(servers), policy) {}

Status SubtreeCluster::mkdir(std::string_view path) {
  ++stats_.ops;
  const auto parts = mfs::split_path(path);
  if (parts.empty()) return Errc::kInvalid;
  if (map_.policy() == DistributionPolicy::kSubtree) {
    // Delegate top-level directories round-robin; deeper ones stay in the
    // subtree they belong to.
    const u32 home = parts.size() == 1 ? map_.delegate(parts.front())
                                       : map_.home_of(path);
    auto r = group_.client(home).mkdir(path);
    if (r) ++stats_.colocated_ops;
    return r ? Status{} : Status{r.error()};
  }
  // Hash policy: the directory skeleton must exist on every server, because
  // any server may be asked to create a child under it.
  Status out;
  for (std::size_t i = 0; i < group_.size(); ++i) {
    auto r = group_.client(i).mkdir(path);
    if (!r && r.error() != Errc::kExists) out = r.error();
    ++stats_.fanout_requests;
  }
  return out;
}

Result<InodeNo> SubtreeCluster::create(std::string_view path) {
  ++stats_.ops;
  const u32 owner = map_.owner_of(path);
  if (owner == map_.home_of(path)) ++stats_.colocated_ops;
  return group_.client(owner).create(path);
}

Status SubtreeCluster::stat(std::string_view path) {
  ++stats_.ops;
  const u32 owner = map_.owner_of(path);
  if (owner == map_.home_of(path)) ++stats_.colocated_ops;
  return group_.client(owner).stat(path);
}

Status SubtreeCluster::utime(std::string_view path) {
  ++stats_.ops;
  return group_.client(map_.owner_of(path)).utime(path);
}

Status SubtreeCluster::unlink(std::string_view path) {
  ++stats_.ops;
  return group_.client(map_.owner_of(path)).unlink(path);
}

Result<std::vector<mfs::DirEntry>> SubtreeCluster::readdir_stats(
    std::string_view dir) {
  ++stats_.ops;
  if (map_.policy() == DistributionPolicy::kSubtree) {
    // One server holds the directory AND every child's embedded metadata:
    // the aggregation stays a single contiguous sweep (§IV-D).
    ++stats_.colocated_ops;
    ++stats_.fanout_requests;
    return group_.client(map_.home_of(dir)).readdir_stats(dir);
  }
  // Hash policy: children are scattered; every server must list its share.
  std::vector<mfs::DirEntry> all;
  for (std::size_t i = 0; i < group_.size(); ++i) {
    ++stats_.fanout_requests;
    auto part = group_.client(i).readdir_stats(dir);
    if (!part) {
      if (part.error() == Errc::kNotFound) continue;
      return part;
    }
    all.insert(all.end(), part->begin(), part->end());
  }
  return all;
}

u64 SubtreeCluster::total_disk_accesses() const {
  u64 n = 0;
  for (std::size_t i = 0; i < group_.size(); ++i) {
    n += const_cast<shard::MdsGroup&>(group_).server(i).fs().disk_accesses();
  }
  return n;
}

double SubtreeCluster::total_elapsed_ms() const {
  double t = 0.0;
  for (std::size_t i = 0; i < group_.size(); ++i) {
    t += const_cast<shard::MdsGroup&>(group_).server(i).fs().elapsed_ms();
  }
  return t;
}

}  // namespace mif::mds
