#include "mfs/embedded_dir.hpp"

#include <algorithm>
#include <cassert>

namespace mif::mfs {

EmbeddedDirLayout::EmbeddedDirLayout(MdsContext ctx, EmbeddedLayoutConfig cfg)
    : DirLayout(ctx), cfg_(cfg) {
  auto bitmap = ctx_.space.allocate_exact(DiskBlock{0}, 1);
  auto table = ctx_.space.allocate_exact(DiskBlock{1}, cfg_.dir_table_blocks);
  assert(bitmap && table);
  free_bitmap_block_ = bitmap->start;
  table_base_ = table->start;
}

DiskBlock EmbeddedDirLayout::dir_table_block(DirId id) const {
  // 256 table entries per block; clamp into the reserved region.
  return DiskBlock{table_base_.v +
                   std::min<u64>(id.v / 256, cfg_.dir_table_blocks - 1)};
}

EmbeddedDirLayout::DirState* EmbeddedDirLayout::dir_state(InodeNo dir) {
  auto node = inodes_.find(correlation_.current(dir).v);
  if (node == inodes_.end() || !node->second.is_dir()) return nullptr;
  auto it = dirs_.find(node->second.dir_id.v);
  return it == dirs_.end() ? nullptr : &it->second;
}

const EmbeddedDirLayout::DirState* EmbeddedDirLayout::dir_state(
    InodeNo dir) const {
  return const_cast<EmbeddedDirLayout*>(this)->dir_state(dir);
}

Status EmbeddedDirLayout::grow_content(DirState& d) {
  // "When directory enlarging, the number of preallocated blocks is scaled
  // to support large directories" — double the reservation, preferably
  // extending the existing run so the content stays one contiguous region.
  const u64 want = std::max<u64>(
      cfg_.initial_dir_blocks, d.content.size() * (cfg_.growth_factor - 1));
  const DiskBlock tail{d.content.back().v + 1};
  u64 got = ctx_.space.extend_in_place(tail, want);
  if (got > 0) {
    for (u64 i = 0; i < got; ++i)
      d.content.push_back(DiskBlock{tail.v + i});
    return {};
  }
  auto run = ctx_.space.allocate_best(tail, 1, want);
  if (!run) return Errc::kNoSpace;
  for (u64 i = 0; i < run->length; ++i)
    d.content.push_back(DiskBlock{run->start.v + i});
  return {};
}

Result<u64> EmbeddedDirLayout::take_content_block(DirState& d) {
  if (d.used_blocks == d.content.size()) {
    if (Status s = grow_content(d); !s) return s.error();
  }
  return d.used_blocks++;
}

Result<DiskBlock> EmbeddedDirLayout::slot_block(DirState& d, u32 slot) {
  const u64 group = slot / Format::kEmbeddedSlotsPerBlock;
  while (d.slot_group_block.size() <= group) {
    auto idx = take_content_block(d);
    if (!idx) return idx.error();
    d.slot_group_block.push_back(*idx);
  }
  return d.content[d.slot_group_block[group]];
}

Result<InodeNo> EmbeddedDirLayout::make_root() {
  if (root_.valid()) return Errc::kExists;
  // The root's inode number uses the reserved DirId 0 so number-based
  // resolution terminates at it.
  const InodeNo ino = EmbeddedInodeNo::make(DirId{0}, 1);
  const DirId id = dir_table_.register_directory(ino);

  Inode node;
  node.num = ino;
  node.type = FileType::kDirectory;
  node.dir_id = id;
  inodes_[ino.v] = std::move(node);

  DirState d{ctx_.readahead};
  d.id = id;
  auto run = ctx_.space.allocate_best(DiskBlock{table_base_.v +
                                                cfg_.dir_table_blocks},
                                      1, cfg_.initial_dir_blocks);
  if (!run) return Errc::kNoSpace;
  for (u64 i = 0; i < run->length; ++i)
    d.content.push_back(DiskBlock{run->start.v + i});
  dirs_.emplace(id.v, std::move(d));
  root_ = ino;
  ctx_.journal.log({{dir_table_block(id), 1}});
  return ino;
}

Result<InodeNo> EmbeddedDirLayout::create_common(InodeNo parent,
                                                 std::string_view name,
                                                 FileType type) {
  DirState* d = dir_state(parent);
  if (!d) return Errc::kNotDirectory;
  if (d->index.find(name)) return Errc::kExists;

  u32 slot;
  if (!d->reusable_slots.empty()) {
    slot = d->reusable_slots.back();
    d->reusable_slots.pop_back();
  } else {
    slot = static_cast<u32>(d->next_slot++);
  }
  auto blk = slot_block(*d, slot);
  if (!blk) return blk.error();

  const InodeNo ino = EmbeddedInodeNo::make(d->id, slot);
  Inode node;
  node.num = ino;
  node.type = type;
  node.inode_block = *blk;
  node.dir_id = d->id;  // overwritten below for directories

  std::vector<block::BlockRange> tx{{*blk, 1}};

  if (type == FileType::kDirectory) {
    const DirId id = dir_table_.register_directory(ino);
    node.dir_id = id;
    DirState child{ctx_.readahead};
    child.id = id;
    // Persistent content preallocation for the new directory's future
    // children.  Content is placed right after the parent's content region:
    // related directories cluster on disk the way related cylinder-group
    // data does, keeping metadata sweeps short.  (Redbud's 'rlov' spreads
    // content across PAGs of *different disks* for load balance; on the
    // single MDS spindle modelled here that locality is what matters.)
    auto run = ctx_.space.allocate_best(
        d->content.empty() ? DiskBlock{table_base_.v + cfg_.dir_table_blocks}
                           : DiskBlock{d->content.back().v + 1},
        1, cfg_.initial_dir_blocks);
    if (!run) return Errc::kNoSpace;
    for (u64 i = 0; i < run->length; ++i)
      child.content.push_back(DiskBlock{run->start.v + i});
    dirs_.emplace(id.v, std::move(child));
    parent_of_[ino.v] = correlation_.current(parent);
    tx.push_back({dir_table_block(id), 1});
  } else {
    ++d->file_count;
    // Eager mapping-block preallocation when the directory is already badly
    // fragmented (§IV-A "an extra block is thus preallocated on creating").
    if (d->file_count > 1 &&
        static_cast<double>(d->extent_units) /
                static_cast<double>(d->file_count) >
            cfg_.frag_degree_threshold) {
      if (auto idx = take_content_block(*d)) {
        node.mapping_blocks.push_back(d->content[*idx]);
        tx.push_back({d->content[*idx], 1});
      }
    }
  }

  inodes_[ino.v] = std::move(node);
  d->slots[slot] = Slot{std::string(name), ino, type};
  d->index.insert(name, slot);
  ++d->live_entries;

  ctx_.cache.read(*blk, 1);  // read-modify-write of the content block
  ctx_.journal.log(tx);
  ctx_.cache.install(*blk, 1);
  ++stats_.creates;
  return ino;
}

Result<InodeNo> EmbeddedDirLayout::mkdir(InodeNo parent,
                                         std::string_view name) {
  return create_common(parent, name, FileType::kDirectory);
}

Result<InodeNo> EmbeddedDirLayout::create(InodeNo parent,
                                          std::string_view name) {
  return create_common(parent, name, FileType::kFile);
}

Result<InodeNo> EmbeddedDirLayout::lookup(InodeNo dir, std::string_view name) {
  DirState* d = dir_state(dir);
  if (!d) return Errc::kNotDirectory;
  auto slot = d->index.find(name);
  if (!slot) return Errc::kNotFound;
  ++stats_.lookups;
  // §IV-C: metadata servers using embedded directories keep a fast
  // in-memory hash index over names, so a lookup goes straight to the one
  // content block holding the embedded inode — no linear dirent scan.
  const u64 group = *slot / Format::kEmbeddedSlotsPerBlock;
  ctx_.cache.read(d->content[d->slot_group_block[group]], 1);
  return d->slots.at(static_cast<u32>(*slot)).ino;
}

Status EmbeddedDirLayout::stat(InodeNo ino) {
  Inode* node = find(ino);
  if (!node) return Errc::kNotFound;
  ++stats_.stats_ops;
  ctx_.cache.read(node->inode_block, 1);
  return {};
}

Status EmbeddedDirLayout::utime(InodeNo ino) {
  Inode* node = find(ino);
  if (!node) return Errc::kNotFound;
  ++stats_.utimes;
  ++node->mtime;
  ctx_.cache.read(node->inode_block, 1);
  ctx_.journal.log({{node->inode_block, 1}});
  return {};
}

Result<std::vector<DirEntry>> EmbeddedDirLayout::readdir(InodeNo dir,
                                                         bool plus) {
  DirState* d = dir_state(dir);
  if (!d) return Errc::kNotDirectory;
  ++stats_.readdirs;
  (void)plus;  // "we opt to read all content in directory, including the
               // extra mapping blocks" — plain readdir and readdirplus cost
               // the same sequential sweep in embedded mode.

  // Per-scan readahead, as a kernel fd would hold.
  sim::Readahead ra(ctx_.readahead);
  for (u64 idx = 0; idx < d->used_blocks; ++idx) {
    const u64 fetch = ra.advise(idx, 1);
    for (u64 f = 0; f < fetch && idx + f < d->used_blocks; ++f)
      ctx_.cache.read(d->content[idx + f], 1);
  }

  std::vector<DirEntry> out;
  out.reserve(d->live_entries);
  for (u32 s = 0; s < d->next_slot; ++s) {
    auto it = d->slots.find(s);
    if (it == d->slots.end()) continue;
    out.push_back(DirEntry{it->second.name, it->second.ino, it->second.type});
  }
  return out;
}

void EmbeddedDirLayout::lazy_free_flush(DirState& d) {
  if (d.pending_frees.empty()) return;
  d.reusable_slots.insert(d.reusable_slots.end(), d.pending_frees.begin(),
                          d.pending_frees.end());
  d.pending_frees.clear();
  // One batched free-space update covers the whole batch.
  ctx_.journal.log({{free_bitmap_block_, 1}});
}

Status EmbeddedDirLayout::unlink(InodeNo dir, std::string_view name) {
  DirState* d = dir_state(dir);
  if (!d) return Errc::kNotDirectory;
  auto slot = d->index.find(name);
  if (!slot) return Errc::kNotFound;
  const u32 s = static_cast<u32>(*slot);
  Slot entry = d->slots.at(s);

  if (entry.type == FileType::kDirectory) {
    DirState* child = dir_state(entry.ino);
    if (child && child->live_entries > 0) return Errc::kNotEmpty;
    if (child) {
      release_content(*child);
      (void)dir_table_.unregister(child->id);
      dirs_.erase(child->id.v);
    }
    parent_of_.erase(correlation_.current(entry.ino).v);
  } else {
    Inode& node = inodes_.at(correlation_.current(entry.ino).v);
    d->extent_units -= std::min<u64>(d->extent_units,
                                     node.layout.extent_count());
    --d->file_count;
    // Mapping blocks return to the directory's reusable pool implicitly:
    // they were content blocks; lazy-free reclaims slots, blocks stay in
    // the reservation.
  }
  ++stats_.unlinks;

  const DiskBlock blk = d->content[d->slot_group_block[
      s / Format::kEmbeddedSlotsPerBlock]];
  ctx_.cache.read(blk, 1);
  // Single-block transaction: clearing the embedded slot IS the dirent
  // removal, the inode drop and (deferred) the space free — no inode-bitmap
  // block, which is exactly the saving Fig. 8 attributes to deletion.
  ctx_.journal.log({{blk, 1}});

  inodes_.erase(correlation_.current(entry.ino).v);
  d->index.erase(name);
  d->slots.erase(s);
  --d->live_entries;
  d->pending_frees.push_back(s);
  if (d->pending_frees.size() >= cfg_.lazy_free_batch) lazy_free_flush(*d);
  return {};
}

void EmbeddedDirLayout::release_content(DirState& d) {
  // Free maximal contiguous runs.
  std::size_t i = 0;
  while (i < d.content.size()) {
    std::size_t j = i + 1;
    while (j < d.content.size() &&
           d.content[j].v == d.content[j - 1].v + 1)
      ++j;
    (void)ctx_.space.free_range({d.content[i], j - i});
    i = j;
  }
  d.content.clear();
}

Result<InodeNo> EmbeddedDirLayout::rename(InodeNo src_dir,
                                          std::string_view src_name,
                                          InodeNo dst_dir,
                                          std::string_view dst_name) {
  DirState* src = dir_state(src_dir);
  DirState* dst = dir_state(dst_dir);
  if (!src || !dst) return Errc::kNotDirectory;
  auto src_slot = src->index.find(src_name);
  if (!src_slot) return Errc::kNotFound;
  if (dst->index.find(dst_name)) return Errc::kExists;
  ++stats_.renames;

  const u32 s_old = static_cast<u32>(*src_slot);
  Slot moving = src->slots.at(s_old);
  const InodeNo old_ino = correlation_.current(moving.ino);
  Inode node = std::move(inodes_.at(old_ino.v));
  inodes_.erase(old_ino.v);

  src->index.erase(src_name);
  src->slots.erase(s_old);
  --src->live_entries;
  src->pending_frees.push_back(s_old);
  if (moving.type == FileType::kFile) {
    src->extent_units -=
        std::min<u64>(src->extent_units, node.layout.extent_count());
    --src->file_count;
  }

  u32 s_new;
  if (!dst->reusable_slots.empty()) {
    s_new = dst->reusable_slots.back();
    dst->reusable_slots.pop_back();
  } else {
    s_new = static_cast<u32>(dst->next_slot++);
  }
  auto dst_blk = slot_block(*dst, s_new);
  if (!dst_blk) return dst_blk.error();

  // "Because inode number encodes the inode's parent directory
  // identification, the inode number must be changed" — and the old↔new
  // correlation is kept for management routines (§IV-B).
  const InodeNo new_ino = EmbeddedInodeNo::make(dst->id, s_new);
  node.num = new_ino;
  node.inode_block = *dst_blk;
  if (moving.type == FileType::kFile) {
    dst->extent_units += node.layout.extent_count();
    ++dst->file_count;
  } else {
    // A moved directory keeps its DirId — the table is re-pointed at the
    // new composite number and the subtree is unaffected (children embed
    // the directory's id, not its inode number).
    (void)dir_table_.update(node.dir_id, new_ino);
    parent_of_.erase(old_ino.v);
    parent_of_[new_ino.v] = correlation_.current(dst_dir);
  }
  inodes_[new_ino.v] = std::move(node);
  correlation_.record(old_ino, new_ino);

  moving.name = std::string(dst_name);
  moving.ino = new_ino;
  dst->slots[s_new] = std::move(moving);
  dst->index.insert(dst_name, s_new);
  ++dst->live_entries;

  const DiskBlock src_blk = src->content[src->slot_group_block[
      s_old / Format::kEmbeddedSlotsPerBlock]];
  ctx_.cache.read(src_blk, 1);
  ctx_.cache.read(*dst_blk, 1);
  ctx_.journal.log({{src_blk, 1}, {*dst_blk, 1}});
  if (src->pending_frees.size() >= cfg_.lazy_free_batch)
    lazy_free_flush(*src);
  return new_ino;
}

Status EmbeddedDirLayout::sync_layout(InodeNo file, u64 extent_count) {
  Inode* node = find(file);
  if (!node) return Errc::kNotFound;
  ++stats_.layout_syncs;
  // Maintain the parent's fragmentation degree.
  DirState* d = nullptr;
  if (auto it = dirs_.find(EmbeddedInodeNo::dir_of(node->num).v);
      it != dirs_.end())
    d = &it->second;
  if (d) {
    d->extent_units -= std::min<u64>(d->extent_units, node->last_synced_extents);
    d->extent_units += extent_count;
  }
  node->last_synced_extents = extent_count;

  const u64 need = Inode::overflow_blocks_for(extent_count);
  std::vector<block::BlockRange> tx{{node->inode_block, 1}};
  while (node->mapping_blocks.size() < need && d) {
    auto idx = take_content_block(*d);
    if (!idx) return idx.error();
    node->mapping_blocks.push_back(d->content[*idx]);
    tx.push_back({d->content[*idx], 1});
  }
  ctx_.cache.read(node->inode_block, 1);
  ctx_.journal.log(tx);
  return {};
}

Status EmbeddedDirLayout::getlayout(InodeNo file) {
  Inode* node = find(file);
  if (!node) return Errc::kNotFound;
  ++stats_.getlayouts;
  // Inode and its stuffed/adjacent mapping in one contiguous touch — "all
  // disk accesses can be combined in the same disk request" (§IV-A).
  ctx_.cache.read(node->inode_block, 1);
  for (DiskBlock mb : node->mapping_blocks) ctx_.cache.read(mb, 1);
  return {};
}

Inode* EmbeddedDirLayout::find(InodeNo ino) {
  auto it = inodes_.find(correlation_.current(ino).v);
  return it == inodes_.end() ? nullptr : &it->second;
}

void EmbeddedDirLayout::scan_fragmentation(
    const std::function<void(u64)>& file_cb,
    const std::function<void(double, u64)>& dir_cb) const {
  for (const auto& [num, node] : inodes_) {
    if (!node.is_dir()) file_cb(node.last_synced_extents);
  }
  // Degree comes straight from the per-directory accumulators the layout
  // already maintains for eager preallocation (§IV-A).
  for (const auto& [id, d] : dirs_) {
    const double degree = d.file_count == 0
                              ? 0.0
                              : static_cast<double>(d.extent_units) /
                                    static_cast<double>(d.file_count);
    dir_cb(degree, d.file_count);
  }
}

double EmbeddedDirLayout::fragmentation_degree(InodeNo dir) const {
  const DirState* d = dir_state(dir);
  if (!d || d->file_count == 0) return 0.0;
  return static_cast<double>(d->extent_units) /
         static_cast<double>(d->file_count);
}

u64 EmbeddedDirLayout::pending_lazy_frees(InodeNo dir) const {
  const DirState* d = dir_state(dir);
  return d ? d->pending_frees.size() : 0;
}

u64 EmbeddedDirLayout::content_blocks(InodeNo dir) const {
  const DirState* d = dir_state(dir);
  return d ? d->content.size() : 0;
}

NamespaceVerifyReport EmbeddedDirLayout::verify() const {
  NamespaceVerifyReport report;
  report.inodes = inodes_.size();
  report.directories = dirs_.size();

  // Content blocks (including mapping overflow blocks) owned exactly once.
  std::vector<u64> blocks;
  for (const auto& [id, d] : dirs_) {
    for (DiskBlock b : d.content) blocks.push_back(b.v);
  }
  report.metadata_blocks = blocks.size();
  std::sort(blocks.begin(), blocks.end());
  report.blocks_unique =
      std::adjacent_find(blocks.begin(), blocks.end()) == blocks.end();

  // Slot ↔ inode ↔ directory-table consistency.
  for (const auto& [id, d] : dirs_) {
    for (const auto& [slot, entry] : d.slots) {
      auto node = inodes_.find(entry.ino.v);
      if (node == inodes_.end()) {
        report.links_consistent = false;
        continue;
      }
      // A file's composite number must encode this directory.
      if (node->second.type == FileType::kFile &&
          EmbeddedInodeNo::dir_of(entry.ino).v != id) {
        report.links_consistent = false;
      }
      // A child directory must be registered and resolvable.
      if (node->second.type == FileType::kDirectory) {
        auto via_table = dir_table_.directory_inode(node->second.dir_id);
        if (!via_table || via_table->v != entry.ino.v) {
          report.links_consistent = false;
        }
      }
    }
  }
  return report;
}

Result<std::vector<InodeNo>> EmbeddedDirLayout::resolve_by_number(
    InodeNo ino) {
  std::unordered_map<u64, InodeNo> parents;
  for (const auto& [child, parent] : parent_of_) parents.emplace(child, parent);
  auto chain = dir_table_.resolve_chain(correlation_.current(ino), parents);
  if (!chain) return chain;
  // Charge the directory-table block reads the walk performs (§IV-B "this
  // process may require extra disk IO").
  for (const InodeNo& dir_ino : *chain) {
    Inode* node = find(dir_ino);
    if (node) ctx_.cache.read(dir_table_block(node->dir_id), 1);
  }
  return chain;
}

}  // namespace mif::mfs
