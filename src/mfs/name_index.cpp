#include "mfs/name_index.hpp"

#include <algorithm>

namespace mif::mfs {

u64 name_hash(std::string_view name) {
  u64 h = 0xcbf29ce484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool NameIndex::insert(std::string_view name, u64 ordinal) {
  return map_.emplace(std::string(name), ordinal).second;
}

std::optional<u64> NameIndex::find(std::string_view name) const {
  auto it = map_.find(std::string(name));
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

bool NameIndex::erase(std::string_view name) {
  return map_.erase(std::string(name)) > 0;
}

u64 NameIndex::lookup_block_cost(LookupDiscipline d, u64 blocks,
                                 u64 found_in) {
  if (blocks == 0) return 0;
  switch (d) {
    case LookupDiscipline::kLinearScan:
      // Scans from the first dirent block up to and including the hit.
      return std::min(found_in + 1, blocks);
    case LookupDiscipline::kHtree:
      // Htree root is resident with the directory inode; one leaf probe.
      return 1;
  }
  return 1;
}

}  // namespace mif::mfs
