#include "mfs/inode.hpp"

// Inode is a plain aggregate; implementation lives in the header.  This TU
// exists so the format constants have a home object file and to keep the
// build graph uniform (one .cpp per module).
namespace mif::mfs {}
