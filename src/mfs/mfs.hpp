// Metadata file system (MFS): the storage stack behind one metadata server.
//
// Owns a simulated disk, its merging scheduler, a buffer cache, a
// write-ahead journal and one of the two directory-layout engines, and
// exposes a path-based namespace API.  "Metadata server collectively manages
// the storage of metadata, assisted by a dedicated metadata file system"
// (§V-A) — this is that MFS; the MDS wraps it with RPC and CPU accounting.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "block/buffer_cache.hpp"
#include "block/free_space.hpp"
#include "block/journal.hpp"
#include "mfs/embedded_dir.hpp"
#include "mfs/layout.hpp"
#include "mfs/normal_dir.hpp"
#include "obs/span.hpp"
#include "sim/disk.hpp"
#include "sim/io_scheduler.hpp"

namespace mif::obs {
class MetricsRegistry;
}

namespace mif::mfs {

struct MfsConfig {
  DirectoryMode mode{DirectoryMode::kNormal};
  LookupDiscipline discipline{LookupDiscipline::kLinearScan};
  sim::DiskGeometry geometry{};
  u64 cache_blocks{8192};        // 32 MiB of metadata cache
  u64 journal_area_blocks{8192}; // 32 MiB journal
  /// jbd checkpoints are lazy — they run when journal space gets tight, not
  /// per handful of operations.  (A wrap of the journal area forces one
  /// regardless of this setting.)
  u64 checkpoint_interval{512};
  u64 journal_commit_batch{16};  // jbd-style compound-transaction batching
  u32 alloc_groups{8};
  sim::ReadaheadConfig readahead{};
  NormalLayoutConfig normal{};
  EmbeddedLayoutConfig embedded{};
  /// Synchronous metadata: drain the disk queue after every operation (the
  /// Fig. 8 MDS configuration).  Off = writes batch until finish().
  bool sync_ops{true};
};

class Mfs {
 public:
  explicit Mfs(MfsConfig cfg = {});

  // --- path API (charges lookup traffic along the walk) ------------------
  Result<InodeNo> mkdir(std::string_view path);
  Result<InodeNo> create(std::string_view path);
  Result<InodeNo> resolve(std::string_view path);
  Status stat(std::string_view path);
  Status utime(std::string_view path);
  Result<std::vector<DirEntry>> readdir(std::string_view path,
                                        bool plus = false);
  Status unlink(std::string_view path);
  Result<InodeNo> rename(std::string_view from, std::string_view to);

  // --- handle API (no lookup charge; used by the MDS fast paths) ---------
  DirLayout& layout() { return *layout_; }
  Inode* find(InodeNo ino) { return layout_->find(ino); }

  /// Persist a file's grown extent mapping.
  Status sync_file_layout(InodeNo file, u64 extent_count);
  Status getlayout(InodeNo file);

  /// Checkpoint the journal and flush everything to disk.
  void finish();

  // --- observability ------------------------------------------------------
  sim::Disk& disk() { return disk_; }
  sim::IoScheduler& io() { return io_; }
  block::BufferCache& cache() { return *cache_; }
  block::Journal& journal() { return *journal_; }
  block::FreeSpace& space() { return *space_; }
  const MfsConfig& config() const { return cfg_; }

  /// Requests dispatched to the disk so far (the paper's Fig. 8 metric,
  /// "intercepting the disk access in the general block layer").
  u64 disk_accesses() const { return io_.stats().dispatched; }
  double elapsed_ms() const { return disk_.now_ms(); }
  void reset_io_stats();

  /// Attach a trace sink for journal commit/checkpoint and cache eviction
  /// events (nullptr detaches).
  void set_trace(obs::TraceBuffer* trace) {
    journal_->set_trace(trace);
    cache_->set_trace(trace);
  }

  /// Metadata disk's span track *lane* (data disks take lanes 0..N-1 in
  /// their own namespace; compare with obs::track_lane).
  static constexpr u32 kMdsDiskTrack = 255;

  /// Attach a span collector to the metadata stack: journal commits /
  /// checkpoints plus the metadata disk's mechanical phases (nullptr
  /// detaches).  Claims its own track namespace per attachment.
  void set_spans(obs::SpanCollector* spans) {
    journal_->set_spans(spans);
    const u32 inst = spans ? spans->reserve_track_namespace() : 0;
    disk_.set_spans(spans, obs::make_track(inst, kMdsDiskTrack));
  }

  /// Publish cache/journal/disk/scheduler counters under `<prefix>.…`.
  void export_metrics(obs::MetricsRegistry& reg,
                      std::string_view prefix) const;

 private:
  struct Walk {
    InodeNo parent{};
    std::string leaf;
  };
  Result<Walk> walk_to_parent(std::string_view path);
  void sync_point();

  MfsConfig cfg_;
  sim::Disk disk_;
  sim::IoScheduler io_;
  std::unique_ptr<block::FreeSpace> space_;
  std::unique_ptr<block::BufferCache> cache_;
  std::unique_ptr<block::Journal> journal_;
  std::unique_ptr<DirLayout> layout_;
};

/// Split "a/b/c" into components; leading/duplicate slashes are tolerated.
std::vector<std::string_view> split_path(std::string_view path);

}  // namespace mif::mfs
