// Inode model for the metadata file system (MFS) behind the MDS.
//
// In a block-based PFS the MDS persists, per file: the inode proper plus the
// *layout mapping* — the extent list describing where the file's data lives
// on the storage targets (§IV-A: "it can be either the extents in
// block-based parallel file systems or the object id in the object-based
// file systems").  MiF's embedded directory stuffs that mapping into the
// inode tail and spills to extra blocks placed contiguously with the inode;
// the traditional layout keeps inodes in per-group inode tables and spills
// mappings to blocks allocated wherever the data area had room.
#pragma once

#include <vector>

#include "block/block_types.hpp"
#include "util/types.hpp"

namespace mif::mfs {

enum class FileType : u8 { kFile, kDirectory };

/// Structural constants of the on-disk format.  They only need to be
/// *plausible* (ext3-like) — what the experiments measure is which blocks
/// each operation touches, and these constants decide that.
struct Format {
  /// ext3-style 256-byte inodes, 16 per 4 KiB block (normal-mode tables).
  static constexpr u64 kInodesPerTableBlock = 16;
  /// Directory entries per 4 KiB dirent block (normal mode).
  static constexpr u64 kDirentsPerBlock = 64;
  /// Embedded-mode slots per directory content block: the embedded inode
  /// (with the name and the stuffed mapping in its tail) stays 256 B like a
  /// table inode, so content is as dense as an inode table.
  static constexpr u64 kEmbeddedSlotsPerBlock = 16;
  /// Extents that fit in the inode tail before spilling (§IV-A).
  static constexpr u64 kInlineExtents = 8;
  /// Extents per dedicated mapping block.
  static constexpr u64 kExtentsPerMappingBlock = 256;
  /// Reserved overflow pointers in the inode ("two pointers in inode
  /// structure are reserved to indicate the address of extra blocks").
  static constexpr u64 kReservedMappingPointers = 2;
};

struct Inode {
  InodeNo num{};
  FileType type{FileType::kFile};
  u64 size_bytes{0};
  u32 links{1};
  u64 mtime{0};  // logical op counter, not wall time
  u64 ctime{0};

  /// For files: layout mapping onto storage-target space.  For directories:
  /// mapping of the directory content blocks on the MDS disk.
  block::ExtentMap layout;

  /// Where this inode structure itself lives on the MDS disk.
  DiskBlock inode_block{};
  /// Overflow blocks on the MDS disk holding spilled layout mappings.
  std::vector<DiskBlock> mapping_blocks;

  /// Directories only: id in the global directory table (embedded mode).
  DirId dir_id{};

  /// Extent count last persisted via sync_layout (drives the per-directory
  /// fragmentation degree without rescanning the layout).
  u64 last_synced_extents{0};

  bool is_dir() const { return type == FileType::kDirectory; }

  /// Mapping blocks needed to persist `extent_count` extents beyond the
  /// inline capacity.
  static u64 overflow_blocks_for(u64 extent_count) {
    if (extent_count <= Format::kInlineExtents) return 0;
    const u64 spill = extent_count - Format::kInlineExtents;
    return (spill + Format::kExtentsPerMappingBlock - 1) /
           Format::kExtentsPerMappingBlock;
  }
};

/// Inode-number codec for the embedded-directory scheme (§IV-B): the number
/// is (directory id << 32) | slot offset inside that directory.
struct EmbeddedInodeNo {
  static InodeNo make(DirId dir, u32 offset) {
    return InodeNo{(static_cast<u64>(dir.v) << 32) | offset};
  }
  static DirId dir_of(InodeNo n) {
    return DirId{static_cast<u32>(n.v >> 32)};
  }
  static u32 offset_of(InodeNo n) { return static_cast<u32>(n.v); }

  /// Structural limits of the 64-bit carrier the paper notes: at most 2^32
  /// files per directory and 2^32 directories per file system.
  static constexpr u64 kMaxSlots = u64{1} << 32;
  static constexpr u64 kMaxDirectories = u64{1} << 32;
};

/// The paper's forward-compatible variant: "shifting to a 128-bit inode
/// number with a 64-bit directory number and a 64-bit offset would overcome
/// any realistic limitations" (§IV-B).  Provided for file systems that need
/// more than 2^32 entries per directory or directories per volume; the same
/// resolution machinery applies.
struct InodeNo128 {
  u64 dir{0};
  u64 offset{0};
  constexpr auto operator<=>(const InodeNo128&) const = default;

  static InodeNo128 make(u64 dir, u64 offset) { return {dir, offset}; }
  constexpr u64 dir_of() const { return dir; }
  constexpr u64 offset_of() const { return offset; }

  /// A 64-bit composite widens losslessly.
  static InodeNo128 widen(InodeNo n) {
    return {EmbeddedInodeNo::dir_of(n).v, EmbeddedInodeNo::offset_of(n)};
  }
  /// Narrowing back is only possible while both halves fit in 32 bits.
  bool narrowable() const {
    return dir < EmbeddedInodeNo::kMaxDirectories &&
           offset < EmbeddedInodeNo::kMaxSlots;
  }
  InodeNo narrow() const {
    return EmbeddedInodeNo::make(DirId{static_cast<u32>(dir)},
                                 static_cast<u32>(offset));
  }
};

}  // namespace mif::mfs
