#include "mfs/mfs.hpp"

#include <cassert>

#include "obs/export.hpp"

namespace mif::mfs {

std::string_view to_string(DirectoryMode m) {
  switch (m) {
    case DirectoryMode::kNormal: return "normal";
    case DirectoryMode::kEmbedded: return "embedded";
  }
  return "?";
}

std::vector<std::string_view> split_path(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    if (j > i) parts.push_back(path.substr(i, j - i));
    i = j;
  }
  return parts;
}

Mfs::Mfs(MfsConfig cfg) : cfg_(cfg), disk_(cfg.geometry), io_(disk_) {
  // Disk map: [journal][data area].  The layout engines carve their fixed
  // regions (tables, bitmaps) from the head of the data area themselves.
  const u64 data_start = cfg_.journal_area_blocks;
  const u64 data_blocks = cfg_.geometry.capacity_blocks - data_start;
  space_ = std::make_unique<block::FreeSpace>(DiskBlock{data_start},
                                              data_blocks, cfg_.alloc_groups);
  cache_ = std::make_unique<block::BufferCache>(io_, cfg_.cache_blocks);
  journal_ = std::make_unique<block::Journal>(
      io_, DiskBlock{0}, cfg_.journal_area_blocks, cfg_.checkpoint_interval,
      cfg_.journal_commit_batch);

  MdsContext ctx{*cache_, *journal_, *space_, cfg_.discipline, cfg_.readahead};
  switch (cfg_.mode) {
    case DirectoryMode::kNormal:
      layout_ = std::make_unique<NormalDirLayout>(ctx, cfg_.normal);
      break;
    case DirectoryMode::kEmbedded:
      layout_ = std::make_unique<EmbeddedDirLayout>(ctx, cfg_.embedded);
      break;
  }
  auto root = layout_->make_root();
  assert(root);
  (void)root;
  sync_point();
}

void Mfs::sync_point() {
  if (cfg_.sync_ops) io_.drain();
}

Result<Mfs::Walk> Mfs::walk_to_parent(std::string_view path) {
  auto parts = split_path(path);
  if (parts.empty()) return Errc::kInvalid;
  InodeNo dir = layout_->root();
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    auto next = layout_->lookup(dir, parts[i]);
    if (!next) return next.error();
    Inode* node = layout_->find(*next);
    if (!node || !node->is_dir()) return Errc::kNotDirectory;
    dir = *next;
  }
  return Walk{dir, std::string(parts.back())};
}

Result<InodeNo> Mfs::mkdir(std::string_view path) {
  auto w = walk_to_parent(path);
  if (!w) return w.error();
  auto r = layout_->mkdir(w->parent, w->leaf);
  sync_point();
  return r;
}

Result<InodeNo> Mfs::create(std::string_view path) {
  auto w = walk_to_parent(path);
  if (!w) return w.error();
  auto r = layout_->create(w->parent, w->leaf);
  sync_point();
  return r;
}

Result<InodeNo> Mfs::resolve(std::string_view path) {
  auto parts = split_path(path);
  InodeNo cur = layout_->root();
  for (std::string_view p : parts) {
    auto next = layout_->lookup(cur, p);
    if (!next) return next.error();
    cur = *next;
  }
  sync_point();
  return cur;
}

Status Mfs::stat(std::string_view path) {
  auto ino = resolve(path);
  if (!ino) return ino.error();
  Status s = layout_->stat(*ino);
  sync_point();
  return s;
}

Status Mfs::utime(std::string_view path) {
  auto ino = resolve(path);
  if (!ino) return ino.error();
  Status s = layout_->utime(*ino);
  sync_point();
  return s;
}

Result<std::vector<DirEntry>> Mfs::readdir(std::string_view path, bool plus) {
  auto ino = resolve(path);
  if (!ino) return ino.error();
  auto r = layout_->readdir(*ino, plus);
  sync_point();
  return r;
}

Status Mfs::unlink(std::string_view path) {
  auto w = walk_to_parent(path);
  if (!w) return w.error();
  Status s = layout_->unlink(w->parent, w->leaf);
  sync_point();
  return s;
}

Result<InodeNo> Mfs::rename(std::string_view from, std::string_view to) {
  auto src = walk_to_parent(from);
  if (!src) return src.error();
  auto dst = walk_to_parent(to);
  if (!dst) return dst.error();
  auto r = layout_->rename(src->parent, src->leaf, dst->parent, dst->leaf);
  sync_point();
  return r;
}

Status Mfs::sync_file_layout(InodeNo file, u64 extent_count) {
  Status s = layout_->sync_layout(file, extent_count);
  sync_point();
  return s;
}

Status Mfs::getlayout(InodeNo file) {
  Status s = layout_->getlayout(file);
  sync_point();
  return s;
}

void Mfs::finish() {
  journal_->checkpoint();
  cache_->flush();
  io_.drain();
}

void Mfs::reset_io_stats() {
  io_.drain();
  io_.reset_stats();
  disk_.reset_stats();
  cache_->reset_stats();
  journal_->reset_stats();
}

void Mfs::export_metrics(obs::MetricsRegistry& reg,
                         std::string_view prefix) const {
  obs::publish(reg, obs::join_key(prefix, "cache"), cache_->stats());
  obs::publish(reg, obs::join_key(prefix, "journal"), journal_->stats());
  obs::publish(reg, obs::join_key(prefix, "disk"), disk_.stats());
  reg.stat(obs::join_key(prefix, "disk.position_ms"))
      .merge_from(disk_.position_times_ms());
  obs::publish(reg, obs::join_key(prefix, "io"), io_.stats());
  reg.gauge(obs::join_key(prefix, "space.free_blocks"))
      .set(static_cast<double>(space_->free_blocks()));
}

}  // namespace mif::mfs
