// Rename correlation table (§IV-B).
//
// Moving a file between embedded directories moves its inode and therefore
// changes its (directory-id-encoded) inode number.  External management
// tools may still hold the old number, so "the additional structure to
// correlate the old and new inodes is kept.  If some applications intend to
// modify the new inode, the changes are also routed to the old one, and this
// correlation is maintained until the management routines exit."
#pragma once

#include <mutex>
#include <optional>
#include <unordered_map>

#include "util/types.hpp"

namespace mif::mfs {

class RenameCorrelation {
 public:
  /// Record that `old_no` is now `new_no`.  Chains collapse: if `old_no`
  /// itself was the target of an earlier rename, the earlier source now
  /// points at `new_no` too.
  void record(InodeNo old_no, InodeNo new_no);

  /// Translate a possibly-stale inode number to the current one.  Identity
  /// for numbers that were never renamed.
  InodeNo current(InodeNo n) const;

  /// True if `n` is a stale (pre-rename) number still being honoured.
  bool is_stale(InodeNo n) const;

  /// Management routines exited: drop all correlations (stale numbers stop
  /// resolving).
  void expire_all();

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<InodeNo, InodeNo> old_to_new_;
};

}  // namespace mif::mfs
