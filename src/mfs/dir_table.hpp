// Global directory table (§IV-B).
//
// Embedded directories break the direct inode-number → disk-location
// translation, so MiF introduces a dedicated table: "on creating a new
// directory, the new directory inode number is mapped to a unique directory
// identification and this mapping is stored into the global directory
// table."  Locating an inode by number walks: dir-id portion → parent
// directory inode number → (recursively) up to the root.
#pragma once

#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/result.hpp"
#include "util/types.hpp"

namespace mif::mfs {

class DirectoryTable {
 public:
  /// Registers a new directory and returns its fresh id.  `dir_inode` is the
  /// directory's own inode number.
  DirId register_directory(InodeNo dir_inode);

  /// The directory inode number for a given id.
  Result<InodeNo> directory_inode(DirId id) const;

  /// Re-point an existing id at a new inode number (directory rename: the
  /// id is stable, the composite number is not).
  Status update(DirId id, InodeNo new_inode);

  /// Remove a directory (rmdir).  Ids are never reused — management tools
  /// may still hold stale inode numbers and must get kNotFound, not a
  /// recycled directory.
  Status unregister(DirId id);

  /// Resolve the chain of parent-directory inode numbers from a composite
  /// inode number up to the root (§IV-B "tracking back recursively").  The
  /// returned vector is ordered [immediate parent, ..., root].  `parent_of`
  /// tells the table which directory contains a given directory inode.
  Result<std::vector<InodeNo>> resolve_chain(
      InodeNo composite,
      const std::unordered_map<u64, InodeNo>& parent_of) const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<DirId, InodeNo> table_;
  u32 next_id_{1};  // id 0 reserved as "invalid"
};

}  // namespace mif::mfs
