#include "mfs/rename_map.hpp"

namespace mif::mfs {

void RenameCorrelation::record(InodeNo old_no, InodeNo new_no) {
  std::lock_guard lock(mu_);
  // Collapse chains: anything that pointed at old_no must follow the move.
  for (auto& [stale, cur] : old_to_new_) {
    if (cur == old_no) cur = new_no;
  }
  old_to_new_[old_no] = new_no;
}

InodeNo RenameCorrelation::current(InodeNo n) const {
  std::lock_guard lock(mu_);
  auto it = old_to_new_.find(n);
  return it == old_to_new_.end() ? n : it->second;
}

bool RenameCorrelation::is_stale(InodeNo n) const {
  std::lock_guard lock(mu_);
  return old_to_new_.contains(n);
}

void RenameCorrelation::expire_all() {
  std::lock_guard lock(mu_);
  old_to_new_.clear();
}

std::size_t RenameCorrelation::size() const {
  std::lock_guard lock(mu_);
  return old_to_new_.size();
}

}  // namespace mif::mfs
