#include "mfs/normal_dir.hpp"

#include <algorithm>
#include <cassert>

namespace mif::mfs {

NormalDirLayout::NormalDirLayout(MdsContext ctx, NormalLayoutConfig cfg)
    : DirLayout(ctx), cfg_(cfg) {
  // Carve the fixed metadata regions out of the data area up front, the way
  // mkfs lays out group descriptors, bitmaps and inode tables.
  auto gdesc = ctx_.space.allocate_exact(DiskBlock{0}, 1);
  auto ibitmap = ctx_.space.allocate_exact(DiskBlock{1}, 1);
  auto table = ctx_.space.allocate_exact(DiskBlock{2}, cfg_.inode_table_blocks);
  assert(gdesc && ibitmap && table);
  gdesc_block_ = gdesc->start;
  ibitmap_block_ = ibitmap->start;
  table_base_ = table->start;
}

DiskBlock NormalDirLayout::inode_block_of(InodeNo ino) const {
  // Inode numbers wrap over the fixed table (real ext3 reuses freed inode
  // slots; our monotone counter models the location, not the recycling).
  return DiskBlock{table_base_.v + (ino.v / Format::kInodesPerTableBlock) %
                                       cfg_.inode_table_blocks};
}

NormalDirLayout::DirState* NormalDirLayout::dir_state(InodeNo dir) {
  auto it = dirs_.find(dir.v);
  return it == dirs_.end() ? nullptr : &it->second;
}

Result<DiskBlock> NormalDirLayout::ensure_dirent_block(DirState& d,
                                                       u64 ordinal) {
  const u64 idx = ordinal / Format::kDirentsPerBlock;
  while (d.dirent_blocks.size() <= idx) {
    if (d.reserve_left == 0) {
      // Refill the directory's ext3-style reservation window (8 blocks).
      const DiskBlock goal =
          d.dirent_blocks.empty()
              ? DiskBlock{table_base_.v + cfg_.inode_table_blocks}
              : DiskBlock{d.dirent_blocks.back().v + 1};
      auto run = ctx_.space.allocate_best(goal, 1, 8);
      if (!run) return run.error();
      d.reserve_next = run->start;
      d.reserve_left = run->length;
    }
    d.dirent_blocks.push_back(d.reserve_next);
    d.reserve_next.v += 1;
    d.reserve_left -= 1;
  }
  return d.dirent_blocks[idx];
}

void NormalDirLayout::read_dirent_block(DirState& d, u64 ordinal) {
  const u64 idx = ordinal / Format::kDirentsPerBlock;
  if (idx < d.dirent_blocks.size()) ctx_.cache.read(d.dirent_blocks[idx], 1);
}

Result<InodeNo> NormalDirLayout::make_root() {
  if (root_.valid()) return Errc::kExists;
  const InodeNo ino{next_ino_++};
  Inode node;
  node.num = ino;
  node.type = FileType::kDirectory;
  node.inode_block = inode_block_of(ino);
  inodes_[ino.v] = std::move(node);
  dirs_.emplace(ino.v, DirState{ctx_.readahead});
  root_ = ino;
  ctx_.journal.log({{inode_block_of(ino), 1}, {ibitmap_block_, 1}});
  ctx_.cache.install(inode_block_of(ino), 1);
  return ino;
}

Result<InodeNo> NormalDirLayout::create_common(InodeNo parent,
                                               std::string_view name,
                                               FileType type) {
  DirState* d = dir_state(parent);
  if (!d) return Errc::kNotDirectory;
  // Existence check: ext3 proves the name absent by scanning every dirent
  // block (an Htree MDS probes one leaf).  This is the lookup cost the
  // paper says "is involved in all metadata access operations" (§V-D2).
  if (ctx_.discipline == LookupDiscipline::kLinearScan) {
    for (DiskBlock blk : d->dirent_blocks) ctx_.cache.read(blk, 1);
  } else if (!d->dirent_blocks.empty()) {
    ctx_.cache.read(
        d->dirent_blocks[name_hash(name) % d->dirent_blocks.size()], 1);
  }
  if (d->index.find(name)) return Errc::kExists;

  u64 ordinal;
  if (!d->free_ordinals.empty()) {
    ordinal = d->free_ordinals.back();
    d->free_ordinals.pop_back();
  } else {
    ordinal = d->slots.size();
    d->slots.emplace_back();
  }
  auto dirent_blk = ensure_dirent_block(*d, ordinal);
  if (!dirent_blk) return dirent_blk.error();

  const InodeNo ino{next_ino_++};
  Inode node;
  node.num = ino;
  node.type = type;
  node.inode_block = inode_block_of(ino);
  inodes_[ino.v] = std::move(node);
  linkage_[ino.v] = Linkage{parent, ordinal};

  d->slots[ordinal] = Slot{std::string(name), ino, type};
  d->index.insert(name, ordinal);
  ++d->live_entries;

  if (type == FileType::kDirectory) dirs_.emplace(ino.v, DirState{ctx_.readahead});

  // Read-modify-write of the dirent block AND the inode-table block (ext3
  // reads the table block to initialise one 256-byte inode in it), plus the
  // inode bitmap and the group descriptor — the classic create transaction.
  ctx_.cache.read(*dirent_blk, 1);
  ctx_.cache.read(inode_block_of(ino), 1);
  ctx_.journal.log({{*dirent_blk, 1},
                    {inode_block_of(ino), 1},
                    {ibitmap_block_, 1},
                    {gdesc_block_, 1}});
  ctx_.cache.install(*dirent_blk, 1);
  ctx_.cache.install(inode_block_of(ino), 1);
  ++stats_.creates;
  return ino;
}

Result<InodeNo> NormalDirLayout::mkdir(InodeNo parent, std::string_view name) {
  return create_common(parent, name, FileType::kDirectory);
}

Result<InodeNo> NormalDirLayout::create(InodeNo parent,
                                        std::string_view name) {
  return create_common(parent, name, FileType::kFile);
}

Result<InodeNo> NormalDirLayout::lookup(InodeNo dir, std::string_view name) {
  DirState* d = dir_state(dir);
  if (!d) return Errc::kNotDirectory;
  auto ordinal = d->index.find(name);
  if (!ordinal) return Errc::kNotFound;
  ++stats_.lookups;
  // Charge the dirent-block probes the lookup discipline would make; the
  // buffer cache absorbs re-probes of hot blocks.
  const u64 found_in = *ordinal / Format::kDirentsPerBlock;
  const u64 probes = NameIndex::lookup_block_cost(
      ctx_.discipline, d->dirent_blocks.size(), found_in);
  if (ctx_.discipline == LookupDiscipline::kLinearScan) {
    for (u64 i = 0; i < probes && i < d->dirent_blocks.size(); ++i)
      ctx_.cache.read(d->dirent_blocks[i], 1);
  } else {
    read_dirent_block(*d, *ordinal);
  }
  return d->slots[*ordinal]->ino;
}

Status NormalDirLayout::stat(InodeNo ino) {
  Inode* node = find(ino);
  if (!node) return Errc::kNotFound;
  ++stats_.stats_ops;
  ctx_.cache.read(node->inode_block, 1);
  return {};
}

Status NormalDirLayout::utime(InodeNo ino) {
  Inode* node = find(ino);
  if (!node) return Errc::kNotFound;
  ++stats_.utimes;
  ++node->mtime;
  ctx_.cache.read(node->inode_block, 1);
  ctx_.journal.log({{node->inode_block, 1}});
  return {};
}

Result<std::vector<DirEntry>> NormalDirLayout::readdir(InodeNo dir,
                                                       bool plus) {
  DirState* d = dir_state(dir);
  if (!d) return Errc::kNotDirectory;
  ++stats_.readdirs;

  std::vector<DirEntry> out;
  out.reserve(d->live_entries);

  // Readahead state is per-scan, as a kernel file descriptor's would be:
  // the window grows while this sweep stays sequential and dies with it.
  sim::Readahead content_ra(ctx_.readahead);
  sim::Readahead table_ra(ctx_.readahead);

  // Stream the dirent blocks in logical order under readahead.  Blocks are
  // often physically contiguous (allocated back to back), so the scheduler
  // merges what readahead batches.
  for (u64 idx = 0; idx < d->dirent_blocks.size(); ++idx) {
    const u64 fetch = content_ra.advise(idx, 1);
    for (u64 f = 0; f < fetch && idx + f < d->dirent_blocks.size(); ++f)
      ctx_.cache.read(d->dirent_blocks[idx + f], 1);
  }
  for (const auto& slot : d->slots) {
    if (!slot) continue;
    out.push_back(DirEntry{slot->name, slot->ino, slot->type});
    if (plus) {
      // readdirplus: fetch each child's inode from the table region — the
      // second disk region of Fig. 1(b) — plus any spilled mapping blocks.
      Inode* node = find(slot->ino);
      if (!node) continue;
      const u64 tpos = node->inode_block.v - table_base_.v;
      const u64 fetch = table_ra.advise(tpos, 1);
      if (fetch > 0) {
        const u64 cap = cfg_.inode_table_blocks - tpos;
        ctx_.cache.read(node->inode_block, std::min(fetch, cap));
      }
      for (DiskBlock mb : node->mapping_blocks) ctx_.cache.read(mb, 1);
    }
  }
  return out;
}

Status NormalDirLayout::unlink(InodeNo dir, std::string_view name) {
  DirState* d = dir_state(dir);
  if (!d) return Errc::kNotDirectory;
  auto ordinal = d->index.find(name);
  if (!ordinal) return Errc::kNotFound;
  // Find the victim dirent on disk (linear scan up to its block; Htree
  // probes straight to it).
  {
    const u64 found_in = *ordinal / Format::kDirentsPerBlock;
    const u64 probes = NameIndex::lookup_block_cost(
        ctx_.discipline, d->dirent_blocks.size(), found_in);
    if (ctx_.discipline == LookupDiscipline::kLinearScan) {
      for (u64 i = 0; i < probes && i < d->dirent_blocks.size(); ++i)
        ctx_.cache.read(d->dirent_blocks[i], 1);
    }
  }
  Slot& slot = *d->slots[*ordinal];
  if (slot.type == FileType::kDirectory) {
    DirState* child = dir_state(slot.ino);
    if (child && child->live_entries > 0) return Errc::kNotEmpty;
    dirs_.erase(slot.ino.v);
  }
  ++stats_.unlinks;

  Inode& node = inodes_.at(slot.ino.v);
  const DiskBlock dirent_blk =
      d->dirent_blocks[*ordinal / Format::kDirentsPerBlock];
  // ext3 unlink transaction: dirent block, inode block (dtime), inode
  // bitmap, and the block bitmap(s) covering freed mapping blocks.
  ctx_.cache.read(dirent_blk, 1);
  ctx_.cache.read(node.inode_block, 1);
  std::vector<block::BlockRange> tx{
      {dirent_blk, 1}, {node.inode_block, 1}, {ibitmap_block_, 1}};
  if (!node.mapping_blocks.empty()) tx.push_back({gdesc_block_, 1});
  ctx_.journal.log(tx);
  for (DiskBlock mb : node.mapping_blocks)
    (void)ctx_.space.free_range({mb, 1});

  linkage_.erase(slot.ino.v);
  inodes_.erase(slot.ino.v);
  d->index.erase(name);
  d->slots[*ordinal].reset();
  d->free_ordinals.push_back(*ordinal);
  --d->live_entries;
  return {};
}

Result<InodeNo> NormalDirLayout::rename(InodeNo src_dir,
                                        std::string_view src_name,
                                        InodeNo dst_dir,
                                        std::string_view dst_name) {
  DirState* src = dir_state(src_dir);
  DirState* dst = dir_state(dst_dir);
  if (!src || !dst) return Errc::kNotDirectory;
  auto src_ord = src->index.find(src_name);
  if (!src_ord) return Errc::kNotFound;
  if (dst->index.find(dst_name)) return Errc::kExists;
  ++stats_.renames;

  Slot moving = *src->slots[*src_ord];
  src->index.erase(src_name);
  src->slots[*src_ord].reset();
  src->free_ordinals.push_back(*src_ord);
  --src->live_entries;

  u64 ordinal;
  if (!dst->free_ordinals.empty()) {
    ordinal = dst->free_ordinals.back();
    dst->free_ordinals.pop_back();
  } else {
    ordinal = dst->slots.size();
    dst->slots.emplace_back();
  }
  auto dst_blk = ensure_dirent_block(*dst, ordinal);
  if (!dst_blk) return dst_blk.error();
  moving.name = std::string(dst_name);
  dst->slots[ordinal] = moving;
  dst->index.insert(dst_name, ordinal);
  ++dst->live_entries;
  linkage_[moving.ino.v] = Linkage{dst_dir, ordinal};

  const DiskBlock src_blk =
      src->dirent_blocks[*src_ord / Format::kDirentsPerBlock];
  ctx_.cache.read(src_blk, 1);
  ctx_.cache.read(*dst_blk, 1);
  ctx_.journal.log({{src_blk, 1}, {*dst_blk, 1}});
  // The inode number is stable under the traditional layout.
  return moving.ino;
}

Status NormalDirLayout::sync_layout(InodeNo file, u64 extent_count) {
  Inode* node = find(file);
  if (!node) return Errc::kNotFound;
  ++stats_.layout_syncs;
  node->last_synced_extents = extent_count;
  const u64 need = Inode::overflow_blocks_for(extent_count);
  std::vector<block::BlockRange> tx{{node->inode_block, 1}};
  while (node->mapping_blocks.size() < need) {
    // Overflow mapping blocks come from the data area wherever the allocator
    // finds room — under churn they end up far from both the inode table and
    // the dirent blocks (the third region of Fig. 1(b)).
    const DiskBlock goal = node->mapping_blocks.empty()
                               ? DiskBlock{table_base_.v + cfg_.inode_table_blocks}
                               : DiskBlock{node->mapping_blocks.back().v + 1};
    auto run = ctx_.space.allocate_best(goal, 1, 1);
    if (!run) return Errc::kNoSpace;
    node->mapping_blocks.push_back(run->start);
    tx.push_back({run->start, 1});
  }
  ctx_.cache.read(node->inode_block, 1);
  ctx_.journal.log(tx);
  return {};
}

Status NormalDirLayout::getlayout(InodeNo file) {
  Inode* node = find(file);
  if (!node) return Errc::kNotFound;
  ++stats_.getlayouts;
  ctx_.cache.read(node->inode_block, 1);
  for (DiskBlock mb : node->mapping_blocks) ctx_.cache.read(mb, 1);
  return {};
}

Inode* NormalDirLayout::find(InodeNo ino) {
  auto it = inodes_.find(ino.v);
  return it == inodes_.end() ? nullptr : &it->second;
}

void NormalDirLayout::scan_fragmentation(
    const std::function<void(u64)>& file_cb,
    const std::function<void(double, u64)>& dir_cb) const {
  for (const auto& [num, node] : inodes_) {
    if (!node.is_dir()) file_cb(node.last_synced_extents);
  }
  // No per-directory accumulator in this layout (the traditional scheme has
  // no use for the degree); derive it from the live dirents.
  for (const auto& [ino, d] : dirs_) {
    u64 files = 0;
    u64 extents = 0;
    for (const auto& slot : d.slots) {
      if (!slot || slot->type != FileType::kFile) continue;
      auto it = inodes_.find(slot->ino.v);
      if (it == inodes_.end()) continue;
      ++files;
      extents += it->second.last_synced_extents;
    }
    dir_cb(files == 0 ? 0.0
                      : static_cast<double>(extents) /
                            static_cast<double>(files),
           files);
  }
}

NamespaceVerifyReport NormalDirLayout::verify() const {
  NamespaceVerifyReport report;
  report.inodes = inodes_.size();
  report.directories = dirs_.size();

  // Every metadata block (dirent blocks, mapping blocks) owned exactly once.
  std::vector<u64> blocks;
  for (const auto& [ino, d] : dirs_) {
    for (DiskBlock b : d.dirent_blocks) blocks.push_back(b.v);
  }
  for (const auto& [ino, node] : inodes_) {
    for (DiskBlock b : node.mapping_blocks) blocks.push_back(b.v);
  }
  report.metadata_blocks = blocks.size();
  std::sort(blocks.begin(), blocks.end());
  report.blocks_unique =
      std::adjacent_find(blocks.begin(), blocks.end()) == blocks.end();

  // Every directory slot points at a live inode whose linkage points back.
  for (const auto& [dir_ino, d] : dirs_) {
    for (std::size_t ord = 0; ord < d.slots.size(); ++ord) {
      const auto& slot = d.slots[ord];
      if (!slot) continue;
      auto node = inodes_.find(slot->ino.v);
      if (node == inodes_.end()) {
        report.links_consistent = false;
        continue;
      }
      auto link = linkage_.find(slot->ino.v);
      if (link == linkage_.end() || link->second.parent.v != dir_ino ||
          link->second.ordinal != ord) {
        report.links_consistent = false;
      }
    }
  }
  return report;
}

}  // namespace mif::mfs
