#include "mfs/dir_table.hpp"

#include "mfs/inode.hpp"

namespace mif::mfs {

DirId DirectoryTable::register_directory(InodeNo dir_inode) {
  std::lock_guard lock(mu_);
  const DirId id{next_id_++};
  table_[id] = dir_inode;
  return id;
}

Result<InodeNo> DirectoryTable::directory_inode(DirId id) const {
  std::lock_guard lock(mu_);
  auto it = table_.find(id);
  if (it == table_.end()) return Errc::kNotFound;
  return it->second;
}

Status DirectoryTable::update(DirId id, InodeNo new_inode) {
  std::lock_guard lock(mu_);
  auto it = table_.find(id);
  if (it == table_.end()) return Errc::kNotFound;
  it->second = new_inode;
  return {};
}

Status DirectoryTable::unregister(DirId id) {
  std::lock_guard lock(mu_);
  return table_.erase(id) ? Status{} : Status{Errc::kNotFound};
}

Result<std::vector<InodeNo>> DirectoryTable::resolve_chain(
    InodeNo composite,
    const std::unordered_map<u64, InodeNo>& parent_of) const {
  std::vector<InodeNo> chain;
  InodeNo cur = composite;
  // Bounded walk: directory trees deeper than this indicate a cycle bug.
  for (int depth = 0; depth < 4096; ++depth) {
    const DirId dir = EmbeddedInodeNo::dir_of(cur);
    if (dir.v == 0) return chain;  // reached the root
    auto parent = directory_inode(dir);
    if (!parent) return parent.error();
    chain.push_back(*parent);
    auto up = parent_of.find(parent->v);
    if (up == parent_of.end()) return chain;  // parent is the root
    cur = *parent;
  }
  return Errc::kInvalid;
}

std::size_t DirectoryTable::size() const {
  std::lock_guard lock(mu_);
  return table_.size();
}

}  // namespace mif::mfs
