// Directory-layout engine interface.
//
// The metadata file system supports two on-disk organisations of the same
// namespace (§IV vs the traditional scheme of Fig. 1(b)):
//   * NormalDirLayout   — dirent blocks in the data area + a separate inode
//                         table region + mapping overflow blocks wherever the
//                         allocator had room;
//   * EmbeddedDirLayout — inodes and layout mappings live inside the
//                         directory's (preallocated, contiguous) content.
//
// A layout engine is responsible for (a) maintaining the in-memory namespace
// and (b) issuing the *block traffic* every operation causes, through the
// buffer cache and journal it is given.  Benches read traffic from the
// underlying disk/scheduler/journal counters.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "block/buffer_cache.hpp"
#include "block/free_space.hpp"
#include "block/journal.hpp"
#include "mfs/inode.hpp"
#include "mfs/name_index.hpp"
#include "sim/readahead.hpp"
#include "util/result.hpp"

namespace mif::mfs {

enum class DirectoryMode { kNormal, kEmbedded };
std::string_view to_string(DirectoryMode m);

/// Everything a layout engine needs from the MDS storage stack.
struct MdsContext {
  block::BufferCache& cache;
  block::Journal& journal;
  block::FreeSpace& space;  // data area of the MDS disk
  LookupDiscipline discipline{LookupDiscipline::kLinearScan};
  sim::ReadaheadConfig readahead{};
};

struct DirEntry {
  std::string name;
  InodeNo ino{};
  FileType type{FileType::kFile};
};

/// fsck-style namespace integrity report (see DirLayout::verify).
struct NamespaceVerifyReport {
  u64 inodes{0};
  u64 directories{0};
  u64 metadata_blocks{0};   // distinct on-disk blocks owned by the namespace
  bool blocks_unique{true}; // no metadata block claimed twice
  bool links_consistent{true};  // every entry's inode exists & points back
  bool ok() const { return blocks_unique && links_consistent; }
};

struct LayoutOpStats {
  u64 creates{0};
  u64 lookups{0};
  u64 stats_ops{0};
  u64 utimes{0};
  u64 readdirs{0};
  u64 unlinks{0};
  u64 renames{0};
  u64 getlayouts{0};
  u64 layout_syncs{0};
};

class DirLayout {
 public:
  explicit DirLayout(MdsContext ctx) : ctx_(ctx) {}
  virtual ~DirLayout() = default;

  DirLayout(const DirLayout&) = delete;
  DirLayout& operator=(const DirLayout&) = delete;

  virtual DirectoryMode mode() const = 0;

  /// Create the root directory; must be the first call on a fresh layout.
  virtual Result<InodeNo> make_root() = 0;

  virtual Result<InodeNo> mkdir(InodeNo parent, std::string_view name) = 0;
  virtual Result<InodeNo> create(InodeNo parent, std::string_view name) = 0;
  virtual Result<InodeNo> lookup(InodeNo dir, std::string_view name) = 0;

  /// Touch the disk blocks a stat of `ino` reads (the caller already knows
  /// `dir` from the preceding lookup — stat cost excludes the name lookup).
  virtual Status stat(InodeNo ino) = 0;

  /// Update mtime: read-modify-write of the inode's home block, journaled.
  virtual Status utime(InodeNo ino) = 0;

  /// List a directory.  `plus` = readdirplus: also bring every child's inode
  /// (and, embedded mode, its stuffed mapping) into cache — the aggregated
  /// op modern PFS protocols issue (§II-A2).
  virtual Result<std::vector<DirEntry>> readdir(InodeNo dir, bool plus) = 0;

  virtual Status unlink(InodeNo dir, std::string_view name) = 0;

  /// Move src_dir/src_name to dst_dir/dst_name.  Returns the file's inode
  /// number AFTER the move (embedded mode re-numbers, §IV-B).
  virtual Result<InodeNo> rename(InodeNo src_dir, std::string_view src_name,
                                 InodeNo dst_dir,
                                 std::string_view dst_name) = 0;

  /// Persist a grown layout mapping for `file` now holding `extent_count`
  /// extents (called by the MDS when storage targets report new extents).
  /// Allocates overflow mapping blocks as needed.
  virtual Status sync_layout(InodeNo file, u64 extent_count) = 0;

  /// Read the blocks a getlayout (open aggregation) touches.
  virtual Status getlayout(InodeNo file) = 0;

  /// In-memory inode, or nullptr.  Embedded mode resolves stale (pre-rename)
  /// numbers transparently.
  virtual Inode* find(InodeNo ino) = 0;

  virtual InodeNo root() const = 0;

  /// Walk every structure and check the on-disk invariants (block ownership
  /// uniqueness, entry↔inode consistency).  Cheap enough to run inside
  /// tests after every scenario.
  virtual NamespaceVerifyReport verify() const = 0;

  /// Visit the live namespace for the fragmentation lens (obs/fraglens.hpp):
  /// `file_cb` receives every live regular file's last-synced extent count;
  /// `dir_cb` receives every directory's fragmentation degree (§III —
  /// extents per live child file) and its live file count.  Pure in-memory
  /// walk: no block traffic, no clock movement, so sampling cannot perturb
  /// the modeled timeline.
  virtual void scan_fragmentation(
      const std::function<void(u64)>& file_cb,
      const std::function<void(double, u64)>& dir_cb) const = 0;

  const LayoutOpStats& op_stats() const { return stats_; }

 protected:
  MdsContext ctx_;
  LayoutOpStats stats_;
};

}  // namespace mif::mfs
