// Per-directory name index.
//
// §IV-C: scalable parallel file systems keep a fast in-memory index (Htree /
// Btree over name hashes) per metadata server; MiF's embedded layout is
// orthogonal to it.  We model two lookup disciplines because the aging
// experiment (Fig. 9) contrasts them: Lustre's ext4 MDS has Htree lookup
// (O(1) dirent-block probes), Redbud's ext3 MDS does a linear dirent scan.
// The index returns which *entry ordinal* a name maps to; the directory
// layout translates that to blocks, and the discipline decides how many
// blocks a cold lookup must touch.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/types.hpp"

namespace mif::mfs {

enum class LookupDiscipline {
  kLinearScan,  // ext3: read dirent blocks in order until the name is found
  kHtree,       // ext4/Lustre: hash straight to the right block
};

/// FNV-1a, stable across runs — also used by the MDS cluster to partition
/// giant directories (§IV-C).
u64 name_hash(std::string_view name);

class NameIndex {
 public:
  /// Insert a name → ordinal binding.  Fails (returns false) on duplicates.
  bool insert(std::string_view name, u64 ordinal);

  std::optional<u64> find(std::string_view name) const;

  bool erase(std::string_view name);

  std::size_t size() const { return map_.size(); }

  /// Number of dirent blocks a cold lookup touches under the given
  /// discipline, for a directory whose entries span `blocks` dirent blocks
  /// and where the name sits in block `found_in` (0-based).
  static u64 lookup_block_cost(LookupDiscipline d, u64 blocks, u64 found_in);

 private:
  std::unordered_map<std::string, u64> map_;
};

}  // namespace mif::mfs
