// Embedded directory layout (§IV): every file's inode AND layout mapping
// live inside the parent directory's content blocks.
//
//   * mkdir persistently preallocates content blocks for future children,
//     doubling the reservation as the directory grows;
//   * create takes a slot inside those (contiguous) blocks — no separate
//     dirent block, no inode-table block, no inode bitmap;
//   * layout mappings are stuffed in the inode tail and spill into extra
//     mapping blocks drawn from the SAME content reservation, so a
//     getlayout/readdirplus touches one contiguous region;
//   * a per-directory fragmentation degree (extents ÷ files) triggers eager
//     mapping-block preallocation at create time;
//   * unlink is lazy: freed slots batch up and are reclaimed in bulk;
//   * inode numbers encode (directory id, slot); the global directory table
//     plus a rename correlation keep number-based access working (§IV-B).
#pragma once

#include <optional>
#include <unordered_map>

#include "mfs/dir_table.hpp"
#include "mfs/layout.hpp"
#include "mfs/rename_map.hpp"

namespace mif::mfs {

struct EmbeddedLayoutConfig {
  /// Content blocks persistently preallocated at mkdir (§IV-A).
  u64 initial_dir_blocks{16};
  /// Reservation growth factor when the directory outgrows its content.
  u64 growth_factor{2};
  /// Unlinked slots batched before lazy-free reclaims them (§IV-A).
  u64 lazy_free_batch{64};
  /// Fragmentation degree (extents per file) above which creates eagerly
  /// preallocate an extra mapping block next to the inode (§IV-A).
  double frag_degree_threshold{4.0};
  /// Blocks reserved for the global directory table.
  u64 dir_table_blocks{16};
};

class EmbeddedDirLayout final : public DirLayout {
 public:
  EmbeddedDirLayout(MdsContext ctx, EmbeddedLayoutConfig cfg = {});

  DirectoryMode mode() const override { return DirectoryMode::kEmbedded; }

  Result<InodeNo> make_root() override;
  Result<InodeNo> mkdir(InodeNo parent, std::string_view name) override;
  Result<InodeNo> create(InodeNo parent, std::string_view name) override;
  Result<InodeNo> lookup(InodeNo dir, std::string_view name) override;
  Status stat(InodeNo ino) override;
  Status utime(InodeNo ino) override;
  Result<std::vector<DirEntry>> readdir(InodeNo dir, bool plus) override;
  Status unlink(InodeNo dir, std::string_view name) override;
  Result<InodeNo> rename(InodeNo src_dir, std::string_view src_name,
                         InodeNo dst_dir, std::string_view dst_name) override;
  Status sync_layout(InodeNo file, u64 extent_count) override;
  Status getlayout(InodeNo file) override;
  Inode* find(InodeNo ino) override;
  InodeNo root() const override { return root_; }
  NamespaceVerifyReport verify() const override;
  void scan_fragmentation(
      const std::function<void(u64)>& file_cb,
      const std::function<void(double, u64)>& dir_cb) const override;

  // --- introspection for tests, examples and benches --------------------
  const DirectoryTable& dir_table() const { return dir_table_; }
  RenameCorrelation& correlation() { return correlation_; }
  /// Fragmentation degree of a directory (extents per live file).
  double fragmentation_degree(InodeNo dir) const;
  /// Pending (not yet reclaimed) lazily-freed slots of a directory.
  u64 pending_lazy_frees(InodeNo dir) const;
  /// Content blocks (used + preallocated) a directory currently owns.
  u64 content_blocks(InodeNo dir) const;
  /// Resolve an inode number to the chain of parent-directory inode numbers
  /// up to the root (extra I/O path of §IV-B).
  Result<std::vector<InodeNo>> resolve_by_number(InodeNo ino);

 private:
  struct Slot {
    std::string name;
    InodeNo ino{};
    FileType type{FileType::kFile};
  };
  struct DirState {
    DirId id{};
    std::vector<DiskBlock> content;     // all blocks of the reservation
    u64 used_blocks{0};                 // prefix of `content` in use
    std::vector<u64> slot_group_block;  // slot-group -> index into `content`
    u64 next_slot{0};
    std::vector<u32> reusable_slots;    // reclaimed by lazy-free
    std::vector<u32> pending_frees;     // awaiting lazy-free
    NameIndex index;                    // name -> slot
    std::unordered_map<u32, Slot> slots;
    u64 live_entries{0};
    u64 extent_units{0};  // Σ extent counts of child files
    u64 file_count{0};
    explicit DirState(const sim::ReadaheadConfig&) {}
  };

  DirState* dir_state(InodeNo dir);
  const DirState* dir_state(InodeNo dir) const;
  Result<InodeNo> create_common(InodeNo parent, std::string_view name,
                                FileType type);
  /// Grow the directory's content reservation (doubling), preferably in
  /// place so the region stays contiguous.
  Status grow_content(DirState& d);
  /// Hand out the next unused content block (for a slot group or a mapping
  /// block), growing the reservation if exhausted.
  Result<u64> take_content_block(DirState& d);
  /// Content block holding a slot's embedded inode.
  Result<DiskBlock> slot_block(DirState& d, u32 slot);
  DiskBlock dir_table_block(DirId id) const;
  void lazy_free_flush(DirState& d);
  /// Release every content block of a directory (rmdir).
  void release_content(DirState& d);

  EmbeddedLayoutConfig cfg_;
  DiskBlock table_base_{};     // global directory table region
  DiskBlock free_bitmap_block_{};
  InodeNo root_{};
  DirectoryTable dir_table_;
  RenameCorrelation correlation_;
  std::unordered_map<u64, Inode> inodes_;      // keyed by CURRENT ino
  // Directories are keyed by their own DirId — stable across rename, unlike
  // their composite inode number.
  std::unordered_map<u32, DirState> dirs_;
  std::unordered_map<u64, InodeNo> parent_of_; // dir ino -> parent dir ino
};

}  // namespace mif::mfs
