// Traditional directory layout (Fig. 1(b)): dirent blocks in the data area,
// inodes in a dedicated inode-table region, layout mappings spilled to
// overflow blocks allocated from the data area.  Performing a stat touches
// the dirent block AND the inode-table block; a getlayout may add mapping
// blocks — each in a different disk region, hence the positioning traffic
// MiF attacks.
#pragma once

#include <optional>
#include <unordered_map>

#include "mfs/layout.hpp"

namespace mif::mfs {

struct NormalLayoutConfig {
  /// Blocks reserved for the inode table region (16 inodes each).
  u64 inode_table_blocks{16384};  // 256 K inodes
};

class NormalDirLayout final : public DirLayout {
 public:
  NormalDirLayout(MdsContext ctx, NormalLayoutConfig cfg = {});

  DirectoryMode mode() const override { return DirectoryMode::kNormal; }

  Result<InodeNo> make_root() override;
  Result<InodeNo> mkdir(InodeNo parent, std::string_view name) override;
  Result<InodeNo> create(InodeNo parent, std::string_view name) override;
  Result<InodeNo> lookup(InodeNo dir, std::string_view name) override;
  Status stat(InodeNo ino) override;
  Status utime(InodeNo ino) override;
  Result<std::vector<DirEntry>> readdir(InodeNo dir, bool plus) override;
  Status unlink(InodeNo dir, std::string_view name) override;
  Result<InodeNo> rename(InodeNo src_dir, std::string_view src_name,
                         InodeNo dst_dir, std::string_view dst_name) override;
  Status sync_layout(InodeNo file, u64 extent_count) override;
  Status getlayout(InodeNo file) override;
  Inode* find(InodeNo ino) override;
  InodeNo root() const override { return root_; }
  NamespaceVerifyReport verify() const override;
  void scan_fragmentation(
      const std::function<void(u64)>& file_cb,
      const std::function<void(double, u64)>& dir_cb) const override;

 private:
  struct Slot {
    std::string name;
    InodeNo ino{};
    FileType type{FileType::kFile};
  };
  struct DirState {
    std::vector<DiskBlock> dirent_blocks;
    std::vector<std::optional<Slot>> slots;  // ordinal-indexed
    std::vector<u64> free_ordinals;
    NameIndex index;  // name -> ordinal
    u64 live_entries{0};
    // ext3-style per-directory block reservation for dirent growth, so each
    // directory's dirent blocks cluster with their own window instead of
    // interleaving block-by-block with every other growing directory.
    DiskBlock reserve_next{};
    u64 reserve_left{0};
    explicit DirState(const sim::ReadaheadConfig&) {}
  };

  Result<InodeNo> create_common(InodeNo parent, std::string_view name,
                                FileType type);
  DirState* dir_state(InodeNo dir);
  DiskBlock inode_block_of(InodeNo ino) const;
  /// Ensure the dirent block covering `ordinal` exists; returns it.
  Result<DiskBlock> ensure_dirent_block(DirState& d, u64 ordinal);
  /// Read the dirent block holding `ordinal` (1 block through the cache).
  void read_dirent_block(DirState& d, u64 ordinal);

  NormalLayoutConfig cfg_;
  DiskBlock table_base_{};
  DiskBlock ibitmap_block_{};
  DiskBlock gdesc_block_{};
  u64 next_ino_{1};
  InodeNo root_{};
  std::unordered_map<u64, Inode> inodes_;
  std::unordered_map<u64, DirState> dirs_;
  /// parent dir + ordinal of every inode, to locate its dirent.
  struct Linkage {
    InodeNo parent{};
    u64 ordinal{0};
  };
  std::unordered_map<u64, Linkage> linkage_;
};

}  // namespace mif::mfs
