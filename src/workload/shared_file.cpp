#include "workload/shared_file.hpp"

#include <cassert>

namespace mif::workload {

SharedFileResult run_shared_file(core::ParallelFileSystem& fs,
                                 const SharedFileConfig& cfg) {
  SharedFileResult res;
  auto client = fs.connect(ClientId{1});
  auto fh = client.create("/shared.odb");
  assert(fh);

  const u64 total_blocks =
      static_cast<u64>(cfg.processes) * cfg.blocks_per_process;
  res.file_blocks = total_blocks;

  if (cfg.static_prealloc) {
    const Status s = fs.preallocate(fh->ino, total_blocks);
    assert(s.ok());
    (void)s;
  }

  // ---- phase 1: concurrent interleaved extends --------------------------
  // Requests arrive in rounds: at Tn every live process issues its n-th
  // request (the exact arrival pattern of Fig. 1(a)/Fig. 3).  Process p is
  // thread (p % threads) of client (p / threads).
  const u64 rounds =
      (cfg.blocks_per_process + cfg.request_blocks - 1) / cfg.request_blocks;
  // Per-node client sessions, as in the real cluster.
  std::vector<client::ClientFs> clients;
  const u32 nodes =
      (cfg.processes + cfg.threads_per_client - 1) / cfg.threads_per_client;
  clients.reserve(nodes);
  for (u32 n = 0; n < nodes; ++n)
    clients.push_back(fs.connect(ClientId{2 + n}));

  for (u64 r = 0; r < rounds; ++r) {
    for (u32 p = 0; p < cfg.processes; ++p) {
      const u64 region_start = static_cast<u64>(p) * cfg.blocks_per_process;
      const u64 off = r * cfg.request_blocks;
      if (off >= cfg.blocks_per_process) continue;
      const u64 len = std::min(cfg.request_blocks,
                               cfg.blocks_per_process - off);
      client::ClientFs& c = clients[p / cfg.threads_per_client];
      const Status s = c.write(*fh, p % cfg.threads_per_client,
                               blocks_to_bytes(region_start + off),
                               blocks_to_bytes(len));
      assert(s.ok());
      (void)s;
    }
  }
  fs.drain_data();
  res.phase1_ms = fs.data_elapsed_ms();

  // End of the producing job: close releases temporary reservations and
  // ships the final layout to the MDS.
  const Status closed = client.close(*fh);
  assert(closed.ok());
  (void)closed;
  res.extents = fs.file_extents(fh->ino);

  // ---- phase 2: 1024 concurrent segment readers ---------------------------
  // "The shared file was split into 1024 segments and each one was
  // sequentially read by a thread in cluster": every reader streams its own
  // segment; the per-target elevator queues mix the concurrent segment
  // streams exactly as the block layer under a real cluster would.
  fs.reset_data_stats();
  const double t0 = fs.data_elapsed_ms();
  const u64 seg_blocks = std::max<u64>(1, total_blocks / cfg.read_segments);
  auto rfh = client.open("/shared.odb");
  assert(rfh);
  const u64 segments = (total_blocks + seg_blocks - 1) / seg_blocks;
  for (u64 seg = 0; seg < segments; ++seg) {
    const u64 start = seg * seg_blocks;
    const u64 len = std::min(seg_blocks, total_blocks - start);
    const Status s =
        client.read(*rfh, blocks_to_bytes(start), blocks_to_bytes(len));
    assert(s.ok());
    (void)s;
  }
  fs.drain_data();
  res.phase2_ms = fs.data_elapsed_ms() - t0;
  res.positionings = fs.data_stats().positionings;
  const double bytes = static_cast<double>(blocks_to_bytes(total_blocks));
  res.phase2_throughput_mbps = bytes / (res.phase2_ms * 1e-3) / 1e6;
  res.mds_cpu =
      fs.mds().stats().cpu_ms / std::max(res.phase1_ms + res.phase2_ms, 1e-9);
  // Unmount-style metadata sync: force the batched journal transactions out
  // (commit + checkpoint) so short runs still reach stable storage.  All
  // result fields are measured above; this only settles the MDS disk.
  fs.finish_mds();
  return res;
}

}  // namespace mif::workload
