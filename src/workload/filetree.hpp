// Source-tree application models (§V-D3, Fig. 10): untar / make /
// make-clean over a Linux-kernel-shaped file tree ("the three applications
// all use files of linux kernel code (v2.6.30)").
//
// The tree generator reproduces the structural properties that matter to a
// metadata server: many directories, heavy-tailed small-file sizes, sources
// outnumbering everything else.  `make` is deliberately CPU-dominated (the
// paper sees only ~4 % improvement there and is "actually quite glad at
// it").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/pfs.hpp"
#include "util/rng.hpp"

namespace mif::workload {

struct FileTreeConfig {
  u32 directories{300};
  u32 files{12000};
  u64 min_file_bytes{512};
  u64 max_file_bytes{512 * 1024};
  double size_alpha{1.1};  // Pareto tail: most files are a few KiB
  /// Fraction of files that are compilable sources (become .o files).
  double source_fraction{0.45};
  /// CPU milliseconds to compile one source (makes `make` CPU-bound).
  double compile_cpu_ms{15.0};
  u64 seed{26300};
};

struct AppRunResult {
  double elapsed_ms{0.0};
  double metadata_ms{0.0};
  double data_ms{0.0};
  double cpu_ms{0.0};
  u64 ops{0};
};

/// A generated tree bound to one cluster; run the application phases in
/// order (untar → make → make_clean → tar_scan).
class FileTreeWorkload {
 public:
  FileTreeWorkload(core::ParallelFileSystem& fs, FileTreeConfig cfg = {});

  /// Unpack: create every directory and file, writing file contents.
  AppRunResult untar();

  /// Build: read every source, compile (CPU), create+write the .o files.
  AppRunResult make();

  /// Clean: stat and unlink every derived object file.
  AppRunResult make_clean();

  /// Archive: readdir-stat every directory and read every file back.
  AppRunResult tar_scan();

  u64 file_count() const { return files_.size(); }

 private:
  struct TreeFile {
    std::string path;
    InodeNo ino{};
    u64 size{0};
    bool is_source{false};
  };

  AppRunResult timed(u64 ops, double cpu_ms,
                     const std::function<void()>& body);

  core::ParallelFileSystem& fs_;
  FileTreeConfig cfg_;
  Rng rng_;
  std::vector<std::string> dirs_;
  std::vector<TreeFile> files_;
  std::vector<TreeFile> objects_;
};

}  // namespace mif::workload
