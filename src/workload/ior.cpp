#include "workload/ior.hpp"

#include <cassert>

#include "obs/timeline.hpp"
#include "util/rng.hpp"

namespace mif::workload {

namespace {

/// Drive one IOR phase: every process walks its own contiguous share in
/// request-size steps; processes advance with probability `pacing` per
/// scheduler step, so their positions drift apart as on a real cluster.
template <typename IssueFn>
void drive_drifted(u32 processes, u64 rounds, double pacing, Rng& rng,
                   IssueFn&& issue) {
  std::vector<u64> next(processes, 0);
  u64 remaining = static_cast<u64>(processes) * rounds;
  while (remaining > 0) {
    for (u32 p = 0; p < processes; ++p) {
      if (next[p] >= rounds) continue;
      if (pacing < 1.0 && !rng.chance(pacing)) continue;
      issue(p, next[p]);
      ++next[p];
      --remaining;
    }
  }
}

}  // namespace

IorResult run_ior(core::ParallelFileSystem& fs, const IorConfig& cfg) {
  IorResult res;
  Rng rng(cfg.seed);
  auto client = fs.connect(ClientId{1});
  auto fh = client.create("/ior.dat");
  assert(fh);

  const u64 total_bytes =
      static_cast<u64>(cfg.processes) * cfg.bytes_per_process;
  const u64 rounds =
      (cfg.bytes_per_process + cfg.request_bytes - 1) / cfg.request_bytes;

  client::CollectiveWriter collective(client, cfg.collective_cfg);

  auto offset_of = [&](u32 p, u64 r) {
    return static_cast<u64>(p) * cfg.bytes_per_process + r * cfg.request_bytes;
  };
  auto len_of = [&](u64 r) {
    return std::min(cfg.request_bytes,
                    cfg.bytes_per_process - r * cfg.request_bytes);
  };

  // ---- write phase --------------------------------------------------------
  // This driver is single-threaded, so request boundaries are safe points
  // for flight-recorder samples (tick_timeline is a no-op when detached).
  if (obs::Timeline* tl = fs.timeline()) tl->mark_epoch("ior.write");
  if (cfg.collective) {
    // Collective rounds ARE synchronised (MPI barrier inside MPI_File_write_all).
    for (u64 r = 0; r < rounds; ++r) {
      std::vector<client::IoRequest> round;
      round.reserve(cfg.processes);
      for (u32 p = 0; p < cfg.processes; ++p)
        round.push_back({p, offset_of(p, r), len_of(r)});
      const Status s = collective.write_round(*fh, std::move(round));
      assert(s.ok());
      (void)s;
      fs.tick_timeline();
    }
  } else {
    drive_drifted(cfg.processes, rounds, cfg.pacing, rng, [&](u32 p, u64 r) {
      const Status s = client.write(*fh, p, offset_of(p, r), len_of(r));
      assert(s.ok());
      (void)s;
      fs.tick_timeline();
    });
  }
  fs.drain_data();
  res.write_ms = fs.data_elapsed_ms();
  const Status closed = client.close(*fh);
  assert(closed.ok());
  (void)closed;
  res.extents = fs.file_extents(fh->ino);

  // ---- read-back (verification) phase -------------------------------------
  fs.reset_data_stats();
  const double t0 = fs.data_elapsed_ms();
  auto rfh = client.open("/ior.dat");
  assert(rfh);
  if (obs::Timeline* tl = fs.timeline()) tl->mark_epoch("ior.read");
  if (cfg.collective) {
    for (u64 r = 0; r < rounds; ++r) {
      std::vector<client::IoRequest> round;
      for (u32 p = 0; p < cfg.processes; ++p)
        round.push_back({p, offset_of(p, r), len_of(r)});
      const Status s = collective.read_round(*rfh, std::move(round));
      assert(s.ok());
      (void)s;
      fs.tick_timeline();
    }
  } else {
    drive_drifted(cfg.processes, rounds, cfg.pacing, rng, [&](u32 p, u64 r) {
      const Status s = client.read(*rfh, offset_of(p, r), len_of(r));
      assert(s.ok());
      (void)s;
      fs.tick_timeline();
    });
  }
  fs.drain_data();
  res.read_ms = fs.data_elapsed_ms() - t0;

  const double mb = static_cast<double>(total_bytes) / 1e6;
  res.write_mbps = mb / (res.write_ms * 1e-3);
  res.read_mbps = mb / (res.read_ms * 1e-3);
  res.total_mbps = 2.0 * mb / ((res.write_ms + res.read_ms) * 1e-3);
  // MDS CPU utilisation over the whole run (Table I).
  res.mds_cpu = fs.mds().stats().cpu_ms / (res.write_ms + res.read_ms);
  // Unmount-style metadata sync after measurement: forces the batched
  // journal out so even short runs commit + checkpoint.
  fs.finish_mds();
  return res;
}

}  // namespace mif::workload
