// IOR2-like macro benchmark (§V-C2, Fig. 7).
//
// "Configured at shared mode; it writes a large amount of data to one file
// and then reads them back to verify; each of the m MPI processes is
// responsible to read or write 1/m of a file" — large-ish requests
// (32–64 KiB), each process sequential inside its own contiguous share,
// processes interleaving in arrival order.  Optionally through collective
// I/O (two-phase aggregation into ~40 MB requests).
#pragma once

#include "client/collective.hpp"
#include "core/pfs.hpp"

namespace mif::workload {

struct IorConfig {
  u32 processes{64};
  u64 request_bytes{32 * 1024};
  u64 bytes_per_process{u64{4} * 1024 * 1024};
  bool collective{false};
  client::CollectiveConfig collective_cfg{};
  /// Per-step probability that a process issues its next request.  Real
  /// clusters never run in lock-step: compute noise and network jitter let
  /// processes drift apart, which is exactly why arrival-order placement
  /// fragments shared files.  1.0 = unrealistic perfect synchrony.
  double pacing{0.75};
  u64 seed{4242};
};

struct IorResult {
  double write_ms{0.0};
  double read_ms{0.0};
  double write_mbps{0.0};
  double read_mbps{0.0};
  double total_mbps{0.0};
  u64 extents{0};
  double mds_cpu{0.0};
};

IorResult run_ior(core::ParallelFileSystem& fs, const IorConfig& cfg);

}  // namespace mif::workload
