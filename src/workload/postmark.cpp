#include "workload/postmark.hpp"

#include <cassert>
#include <string>
#include <vector>

namespace mif::workload {

namespace {
struct LiveFile {
  std::string path;
  InodeNo ino{};
  u64 size{0};
};
}  // namespace

PostmarkResult run_postmark(core::ParallelFileSystem& fs,
                            const PostmarkConfig& cfg) {
  PostmarkResult res;
  Rng rng(cfg.seed);
  auto client = fs.connect(ClientId{1});

  const double meta0 = fs.mds().fs().elapsed_ms();
  const double data0 = fs.data_elapsed_ms();

  for (u32 d = 0; d < cfg.subdirectories; ++d) {
    auto r = fs.rpc().mkdir("s" + std::to_string(d));
    assert(r);
    (void)r;
  }

  std::vector<LiveFile> files;
  files.reserve(cfg.base_files + cfg.transactions / 2);
  u64 serial = 0;

  auto make_file = [&]() {
    const u32 d = static_cast<u32>(rng.uniform(0, cfg.subdirectories - 1));
    LiveFile f;
    f.path = "s" + std::to_string(d) + "/p" + std::to_string(serial++);
    auto fh = client.create(f.path);
    assert(fh);
    f.ino = fh->ino;
    f.size = rng.uniform(cfg.min_file_bytes, cfg.max_file_bytes);
    const Status w = client.write(*fh, 0, 0, f.size);
    assert(w.ok());
    (void)w;
    const Status c = client.close(*fh);
    assert(c.ok());
    (void)c;
    files.push_back(std::move(f));
    ++res.created;
  };

  auto delete_file = [&]() {
    if (files.empty()) return;
    const std::size_t i = rng.uniform(0, files.size() - 1);
    const Status s = fs.rpc().unlink(files[i].path);
    assert(s.ok());
    (void)s;
    fs.delete_file(files[i].ino);
    files[i] = std::move(files.back());
    files.pop_back();
    ++res.deleted;
  };

  // Initial pool.
  for (u32 i = 0; i < cfg.base_files; ++i) make_file();

  // Transactions.
  for (u32 t = 0; t < cfg.transactions; ++t) {
    if (rng.chance(0.5)) {
      make_file();
    } else {
      delete_file();
    }
    if (files.empty()) continue;
    const std::size_t i = rng.uniform(0, files.size() - 1);
    LiveFile& f = files[i];
    auto fh = client.open(f.path);
    if (!fh) continue;
    if (rng.chance(0.5)) {
      const Status s = client.read(*fh, 0, std::max<u64>(f.size, 1));
      assert(s.ok());
      (void)s;
      ++res.read;
    } else {
      const u64 grow = rng.uniform(cfg.min_file_bytes, cfg.max_file_bytes);
      const Status s = client.write(*fh, 0, f.size, grow);
      assert(s.ok());
      (void)s;
      f.size += grow;
      const Status c = client.close(*fh);
      assert(c.ok());
      (void)c;
      ++res.appended;
    }
  }

  fs.drain_data();
  fs.finish_mds();
  res.metadata_ms = fs.mds().fs().elapsed_ms() - meta0;
  res.data_ms = fs.data_elapsed_ms() - data0;
  res.elapsed_ms = res.metadata_ms + res.data_ms;
  res.transactions_per_sec =
      static_cast<double>(cfg.transactions) / (res.elapsed_ms * 1e-3);
  return res;
}

}  // namespace mif::workload
