#include "workload/btio.hpp"

#include <cassert>

#include "obs/timeline.hpp"
#include "util/rng.hpp"

namespace mif::workload {

BtioResult run_btio(core::ParallelFileSystem& fs, const BtioConfig& cfg) {
  BtioResult res;
  Rng rng(cfg.seed);
  auto client = fs.connect(ClientId{1});
  auto fh = client.create("/btio.out");
  assert(fh);

  const u64 slab_bytes = static_cast<u64>(cfg.cells_per_process) *
                         cfg.cell_bytes;
  const u64 frame_bytes = static_cast<u64>(cfg.processes) * slab_bytes;
  client::CollectiveWriter collective(client, cfg.collective_cfg);

  // Process-major layout over the whole run: process p owns the contiguous
  // region [p·T·slab, (p+1)·T·slab) and appends one slab per timestep —
  // the checkpoint-style shared-file organisation of §II-A1.  frame_bytes
  // is the data volume of one timestep across all processes.
  auto offset_of = [&](u32 step, u32 p, u32 c) {
    return static_cast<u64>(p) * cfg.timesteps * slab_bytes +
           static_cast<u64>(step) * slab_bytes +
           static_cast<u64>(c) * cfg.cell_bytes;
  };

  // ---- solution write phase ----------------------------------------------
  // Single-threaded driver: timestep/cell boundaries are safe sample points.
  if (obs::Timeline* tl = fs.timeline()) tl->mark_epoch("btio.write");
  if (cfg.collective) {
    for (u32 step = 0; step < cfg.timesteps; ++step) {
      std::vector<client::IoRequest> round;
      round.reserve(static_cast<std::size_t>(cfg.processes) *
                    cfg.cells_per_process);
      for (u32 p = 0; p < cfg.processes; ++p)
        for (u32 c = 0; c < cfg.cells_per_process; ++c)
          round.push_back({p, offset_of(step, p, c), cfg.cell_bytes});
      const Status s = collective.write_round(*fh, std::move(round));
      assert(s.ok());
      (void)s;
      fs.tick_timeline();
    }
  } else {
    // Non-collective: every process appends its cells in order, processes
    // drifting apart as on a real cluster — the arrival stream interleaves
    // cells from many slabs, which is what fragments the reservation
    // baseline (Fig. 1(a)).
    const u64 cells_total =
        static_cast<u64>(cfg.timesteps) * cfg.cells_per_process;
    std::vector<u64> next(cfg.processes, 0);
    u64 remaining = cells_total * cfg.processes;
    while (remaining > 0) {
      for (u32 p = 0; p < cfg.processes; ++p) {
        if (next[p] >= cells_total) continue;
        if (cfg.pacing < 1.0 && !rng.chance(cfg.pacing)) continue;
        const u32 step = static_cast<u32>(next[p] / cfg.cells_per_process);
        const u32 c = static_cast<u32>(next[p] % cfg.cells_per_process);
        const Status s =
            client.write(*fh, p, offset_of(step, p, c), cfg.cell_bytes);
        assert(s.ok());
        (void)s;
        fs.tick_timeline();
        ++next[p];
        --remaining;
      }
    }
  }
  fs.drain_data();
  res.write_ms = fs.data_elapsed_ms();
  const Status closed = client.close(*fh);
  assert(closed.ok());
  (void)closed;
  res.extents = fs.file_extents(fh->ino);

  // ---- verification read-back ---------------------------------------------
  fs.reset_data_stats();
  const double t0 = fs.data_elapsed_ms();
  auto rfh = client.open("/btio.out");
  assert(rfh);
  if (obs::Timeline* tl = fs.timeline()) tl->mark_epoch("btio.read");
  const u64 total_bytes = static_cast<u64>(cfg.timesteps) * frame_bytes;
  constexpr u64 kReadChunk = 256 * 1024;
  for (u64 off = 0; off < total_bytes; off += kReadChunk) {
    const Status s =
        client.read(*rfh, off, std::min(kReadChunk, total_bytes - off));
    assert(s.ok());
    (void)s;
    fs.tick_timeline();
  }
  fs.drain_data();
  res.read_ms = fs.data_elapsed_ms() - t0;

  const double mb = static_cast<double>(total_bytes) / 1e6;
  res.write_mbps = mb / (res.write_ms * 1e-3);
  res.read_mbps = mb / (res.read_ms * 1e-3);
  res.mds_cpu = fs.mds().stats().cpu_ms / (res.write_ms + res.read_ms);
  // Unmount-style metadata sync after measurement (commit + checkpoint).
  fs.finish_mds();
  return res;
}

}  // namespace mif::workload
