// File-system aging driver (§V-D2, Fig. 9).
//
// "We used an aging method similar to that described in the NetApp network
// file system report: our program created and deleted a large number of
// files.  After reaching the desired file system utilization for the first
// time, our program executed a number of metadata accesses with the same
// distribution."  Aging here applies to the MDS's metadata file system:
// create/delete churn consumes and fragments its free space until the
// target utilisation, then the create/delete micro-benchmark measures what
// is left of the throughput.
#pragma once

#include "mds/mds.hpp"
#include "util/rng.hpp"

namespace mif::workload {

struct AgingConfig {
  double target_utilisation{0.8};
  /// Files per churn directory; sized so churn converges in sane time.
  u32 files_per_round{2000};
  /// Fraction of each round's files deleted again (leaves survivors that
  /// pin space and fragment the free list).
  double delete_fraction{0.5};
  /// Simulated extents per surviving file (forces mapping-block spill).
  u64 extents_per_file{64};
  /// Measurement phase: files created/deleted per directory.
  u32 measure_files{2000};
  u32 measure_dirs{4};
  u64 seed{17};
  u32 max_rounds{400};
};

struct AgingResult {
  double utilisation_reached{0.0};
  u32 rounds{0};
  double create_ops_per_sec{0.0};
  double delete_ops_per_sec{0.0};
  u64 create_disk_accesses{0};
  u64 delete_disk_accesses{0};
};

AgingResult run_aging(mds::Mds& mds, const AgingConfig& cfg);

}  // namespace mif::workload
