#include "workload/metarates.hpp"

#include <cassert>
#include <string>

namespace mif::workload {

namespace {

std::string dir_name(u32 c) { return "client" + std::to_string(c); }

std::string file_path(u32 c, u32 f) {
  return dir_name(c) + "/f" + std::to_string(f);
}

class PhaseScope {
 public:
  PhaseScope(mds::Mds& mds, PhaseResult& out, bool cold)
      : mds_(mds), out_(out) {
    mds_.finish();
    if (cold) mds_.fs().cache().invalidate_all();
    start_ms_ = mds_.fs().elapsed_ms();
    start_access_ = mds_.fs().disk_accesses();
  }
  ~PhaseScope() {
    mds_.finish();
    out_.elapsed_ms = mds_.fs().elapsed_ms() - start_ms_;
    out_.disk_accesses = mds_.fs().disk_accesses() - start_access_;
  }

 private:
  mds::Mds& mds_;
  PhaseResult& out_;
  double start_ms_{0.0};
  u64 start_access_{0};
};

}  // namespace

MetaratesResult run_metarates(rpc::MdsNode& node, const MetaratesConfig& cfg) {
  MetaratesResult res;
  mds::Mds& mds = node.mds();
  rpc::Client& client = node.client();

  // Directories are part of the setup, not the timed create phase.
  for (u32 c = 0; c < cfg.clients; ++c) {
    auto r = client.mkdir(dir_name(c));
    assert(r);
    (void)r;
  }

  {
    PhaseScope scope(mds, res.create, cfg.cold_phases);
    for (u32 f = 0; f < cfg.files_per_dir; ++f) {
      for (u32 c = 0; c < cfg.clients; ++c) {
        auto r = client.create(file_path(c, f));
        assert(r);
        (void)r;
        ++res.create.ops;
      }
    }
  }

  {
    PhaseScope scope(mds, res.utime, cfg.cold_phases);
    for (u32 f = 0; f < cfg.files_per_dir; ++f) {
      for (u32 c = 0; c < cfg.clients; ++c) {
        const Status s = client.utime(file_path(c, f));
        assert(s.ok());
        (void)s;
        ++res.utime.ops;
      }
    }
  }

  {
    PhaseScope scope(mds, res.readdir_stat, cfg.cold_phases);
    for (u32 c = 0; c < cfg.clients; ++c) {
      auto entries = client.readdir_stats(dir_name(c));
      assert(entries);
      res.readdir_stat.ops += entries->size();
    }
  }

  {
    PhaseScope scope(mds, res.remove, cfg.cold_phases);
    for (u32 f = 0; f < cfg.files_per_dir; ++f) {
      for (u32 c = 0; c < cfg.clients; ++c) {
        const Status s = client.unlink(file_path(c, f));
        assert(s.ok());
        (void)s;
        ++res.remove.ops;
      }
    }
  }

  return res;
}

}  // namespace mif::workload
