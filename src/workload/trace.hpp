// I/O trace recording and replay.
//
// The paper's micro-benchmark is "based on the trace analysis of scientific
// computing environment" [16] — traces of which files each process touched,
// where, and in what order.  This module gives the reproduction the same
// methodology: a compact text trace format, generators that synthesise
// traces with the published workloads' structure (concurrent disjoint-region
// extends of shared files), and a replayer that drives a mounted cluster
// from any trace.  Traces round-trip through text so captured runs can be
// archived, diffed and replayed deterministically.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/pfs.hpp"
#include "util/rng.hpp"

namespace mif::workload {

enum class TraceOpKind : u8 {
  kCreate,
  kOpen,
  kWrite,
  kRead,
  kClose,
  kUnlink,
  kBarrier,  // all outstanding data I/O drains (MPI barrier / phase end)
};
std::string_view to_string(TraceOpKind k);

struct TraceOp {
  TraceOpKind kind{TraceOpKind::kBarrier};
  u32 pid{0};        // issuing process
  std::string path;  // target file (empty for barrier)
  u64 offset{0};
  u64 length{0};
  bool operator==(const TraceOp&) const = default;
};

class Trace {
 public:
  void append(TraceOp op) { ops_.push_back(std::move(op)); }
  const std::vector<TraceOp>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// One line per op: `<kind> <pid> <path> <offset> <length>`.
  void save(std::ostream& out) const;
  static Result<Trace> load(std::istream& in);

  std::string to_string() const;
  static Result<Trace> parse(std::string_view text);

 private:
  std::vector<TraceOp> ops_;
};

/// Statistics from a replay run.
struct ReplayResult {
  u64 ops_executed{0};
  u64 errors{0};
  double data_elapsed_ms{0.0};
  double metadata_elapsed_ms{0.0};
  u64 bytes_written{0};
  u64 bytes_read{0};
};

/// Replays a trace against a mounted cluster.  Each pid maps onto a stream
/// of the single replay client; paths are created on first use if the trace
/// says so.  Unknown files on read/write are reported as errors, not
/// aborts, so truncated traces degrade gracefully.
ReplayResult replay(core::ParallelFileSystem& fs, const Trace& trace);

/// Synthesises the checkpoint-style trace of [16]: `processes` ranks
/// appending disjoint regions of one shared file in `rounds` interleaved
/// request waves, with optional pacing jitter.
Trace make_checkpoint_trace(u32 processes, u64 region_bytes,
                            u64 request_bytes, double pacing = 1.0,
                            u64 seed = 16);

/// Synthesises a small-file create/read/delete churn trace (PostMark-ish).
Trace make_smallfile_trace(u32 files, u32 transactions, u64 max_bytes,
                           u64 seed = 17);

}  // namespace mif::workload
