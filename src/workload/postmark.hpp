// PostMark-like small-file benchmark (§V-D3, Fig. 10).
//
// Katcher's PostMark: build an initial pool of small files, then run
// transactions, each pairing a create-or-delete with a read-or-append,
// over uniformly random targets.  The paper configures 100 K files / 500 K
// transactions with transaction size = file size; the bench scales that
// down proportionally (documented in EXPERIMENTS.md) — the comparison is
// between directory layouts on identical configurations.
#pragma once

#include "core/pfs.hpp"
#include "util/rng.hpp"

namespace mif::workload {

struct PostmarkConfig {
  u32 base_files{10000};
  u32 transactions{50000};
  u32 subdirectories{100};
  u64 min_file_bytes{512};
  u64 max_file_bytes{16 * 1024};
  u64 seed{20110946};
};

struct PostmarkResult {
  double elapsed_ms{0.0};       // metadata + data time
  double metadata_ms{0.0};
  double data_ms{0.0};
  u64 created{0};
  u64 deleted{0};
  u64 read{0};
  u64 appended{0};
  double transactions_per_sec{0.0};
};

PostmarkResult run_postmark(core::ParallelFileSystem& fs,
                            const PostmarkConfig& cfg);

}  // namespace mif::workload
