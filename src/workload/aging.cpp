#include "workload/aging.hpp"

#include <cassert>
#include <string>
#include <vector>

#include "obs/timeline.hpp"

namespace mif::workload {

AgingResult run_aging(mds::Mds& mds, const AgingConfig& cfg) {
  AgingResult res;
  Rng rng(cfg.seed);

  // Phase boundaries become epoch marks on an attached flight recorder;
  // the per-sample gauges tick from the MDS handlers themselves.
  obs::Timeline* tl = mds.timeline();

  // ---- churn until the metadata device reaches the target utilisation ----
  if (tl) tl->mark_epoch("churn");
  u32 round = 0;
  // At least one churn round always runs: the measurement phase operates
  // inside churn directories (fixed on-disk regions like the inode table
  // may already push a fresh volume past a low utilisation target).
  while (round == 0 || (mds.fs().space().utilisation() <
                            cfg.target_utilisation &&
                        round < cfg.max_rounds)) {
    const std::string dir = "churn" + std::to_string(round);
    auto d = mds.mkdir(dir);
    assert(d);
    (void)d;
    std::vector<std::string> names;
    names.reserve(cfg.files_per_round);
    bool full = false;
    for (u32 f = 0; f < cfg.files_per_round; ++f) {
      const std::string path = dir + "/f" + std::to_string(f);
      auto ino = mds.create(path);
      if (!ino) {
        full = true;  // device exhausted mid-round: utilisation is maximal
        break;
      }
      // Survivors carry fragmented mappings so mapping blocks pin space.
      const Status s = mds.report_extents(*ino, cfg.extents_per_file);
      assert(s.ok());
      (void)s;
      names.push_back(path);
    }
    // Delete a random subset; what survives fragments the free space.
    for (const std::string& path : names) {
      if (rng.chance(cfg.delete_fraction)) {
        const Status s = mds.unlink(path);
        assert(s.ok());
        (void)s;
      }
    }
    ++round;
    if (full) break;
  }
  res.rounds = round;
  res.utilisation_reached = mds.fs().space().utilisation();

  // ---- measurement: create/delete "with the same distribution" -----------
  // The paper re-runs the metadata workload against the aged file system —
  // so the measured creates land in the large, aged churn directories, and
  // every operation pays the (aged) lookup cost.
  mds.finish();
  mds.fs().cache().invalidate_all();

  const u32 dirs = std::min<u32>(cfg.measure_dirs, std::max<u32>(1, round));
  std::vector<std::string> paths;
  {
    if (tl) tl->mark_epoch("measure.create");
    const double t0 = mds.fs().elapsed_ms();
    const u64 a0 = mds.fs().disk_accesses();
    for (u32 f = 0; f < cfg.measure_files; ++f) {
      for (u32 d = 0; d < dirs; ++d) {
        const std::string path = "churn" + std::to_string(round - 1 - d) +
                                 "/m" + std::to_string(f);
        auto ino = mds.create(path);
        if (!ino) continue;  // device may be practically full when fully aged
        paths.push_back(path);
      }
    }
    mds.finish();
    const double dt = mds.fs().elapsed_ms() - t0;
    res.create_disk_accesses = mds.fs().disk_accesses() - a0;
    res.create_ops_per_sec =
        static_cast<double>(paths.size()) / std::max(dt * 1e-3, 1e-12);
  }
  {
    if (tl) tl->mark_epoch("measure.delete");
    mds.fs().cache().invalidate_all();
    const double t0 = mds.fs().elapsed_ms();
    const u64 a0 = mds.fs().disk_accesses();
    for (const std::string& path : paths) {
      const Status s = mds.unlink(path);
      assert(s.ok());
      (void)s;
    }
    mds.finish();
    const double dt = mds.fs().elapsed_ms() - t0;
    res.delete_disk_accesses = mds.fs().disk_accesses() - a0;
    res.delete_ops_per_sec =
        static_cast<double>(paths.size()) / std::max(dt * 1e-3, 1e-12);
  }
  return res;
}

}  // namespace mif::workload
