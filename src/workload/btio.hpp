// NPB BTIO-like macro benchmark (§V-C2, Fig. 7).
//
// BT solves the 3D Navier-Stokes equations on a block-tridiagonal grid; the
// I/O variant appends the solution array every few timesteps through MPI-IO.
// The on-disk pattern that matters for placement: each process owns a
// *nested-strided* set of small cells inside every timestep's frame, so
// non-collective writes are small and interleave heavily across processes —
// the worst case for per-inode reservation and the best case for per-stream
// on-demand preallocation (the paper's 19 % BTIO gain).  Collective mode
// fuses each frame into a handful of huge aggregator writes.
#pragma once

#include "client/collective.hpp"
#include "core/pfs.hpp"

namespace mif::workload {

struct BtioConfig {
  u32 processes{64};
  u32 timesteps{20};
  /// Cells each process appends per timestep.  Each frame holds one slab
  /// per process (cells of a process adjacent inside its slab).
  u32 cells_per_process{16};
  u64 cell_bytes{8 * 1024};
  bool collective{false};
  client::CollectiveConfig collective_cfg{};
  /// Per-step probability a process issues its next cell (arrival drift —
  /// see IorConfig::pacing).
  double pacing{0.75};
  u64 seed{777};
};

struct BtioResult {
  double write_ms{0.0};
  double read_ms{0.0};
  double write_mbps{0.0};
  double read_mbps{0.0};
  u64 extents{0};
  double mds_cpu{0.0};
};

BtioResult run_btio(core::ParallelFileSystem& fs, const BtioConfig& cfg);

}  // namespace mif::workload
