#include "workload/filetree.hpp"

#include <cassert>

namespace mif::workload {

FileTreeWorkload::FileTreeWorkload(core::ParallelFileSystem& fs,
                                   FileTreeConfig cfg)
    : fs_(fs), cfg_(cfg), rng_(cfg.seed) {
  // Plan the tree up front (deterministic given the seed); nothing touches
  // the file system until untar().
  dirs_.reserve(cfg_.directories);
  for (u32 d = 0; d < cfg_.directories; ++d) {
    if (d == 0 || rng_.chance(0.7)) {
      dirs_.push_back("src" + std::to_string(d));
    } else {
      // Nest under an existing directory.
      const std::size_t parent = rng_.uniform(0, dirs_.size() - 1);
      dirs_.push_back(dirs_[parent] + "/sub" + std::to_string(d));
    }
  }
  files_.reserve(cfg_.files);
  for (u32 f = 0; f < cfg_.files; ++f) {
    TreeFile tf;
    const std::size_t d = rng_.uniform(0, dirs_.size() - 1);
    tf.is_source = rng_.chance(cfg_.source_fraction);
    tf.path = dirs_[d] + (tf.is_source ? "/s" : "/h") + std::to_string(f) +
              (tf.is_source ? ".c" : ".h");
    tf.size = rng_.pareto(cfg_.min_file_bytes, cfg_.max_file_bytes,
                          cfg_.size_alpha);
    files_.push_back(std::move(tf));
  }
}

AppRunResult FileTreeWorkload::timed(u64 ops, double cpu_ms,
                                     const std::function<void()>& body) {
  // Each application starts with a cold metadata cache — untar, make and
  // clean are separate program runs with other activity in between.
  fs_.finish_mds();
  fs_.mds().fs().cache().invalidate_all();
  const double meta0 = fs_.mds().fs().elapsed_ms();
  const double data0 = fs_.data_elapsed_ms();
  body();
  fs_.drain_data();
  fs_.finish_mds();
  AppRunResult r;
  r.ops = ops;
  r.cpu_ms = cpu_ms;
  r.metadata_ms = fs_.mds().fs().elapsed_ms() - meta0;
  r.data_ms = fs_.data_elapsed_ms() - data0;
  r.elapsed_ms = r.metadata_ms + r.data_ms + r.cpu_ms;
  return r;
}

AppRunResult FileTreeWorkload::untar() {
  auto client = fs_.connect(ClientId{1});
  return timed(dirs_.size() + files_.size(), 0.0, [&] {
    for (const std::string& d : dirs_) {
      auto r = fs_.rpc().mkdir(d);
      assert(r);
      (void)r;
    }
    for (TreeFile& f : files_) {
      auto fh = client.create(f.path);
      assert(fh);
      f.ino = fh->ino;
      const Status w = client.write(*fh, 0, 0, f.size);
      assert(w.ok());
      (void)w;
      const Status c = client.close(*fh);
      assert(c.ok());
      (void)c;
    }
  });
}

AppRunResult FileTreeWorkload::make() {
  auto client = fs_.connect(ClientId{1});
  u64 compiled = 0;
  for (const TreeFile& f : files_)
    if (f.is_source) ++compiled;
  const double cpu = static_cast<double>(compiled) * cfg_.compile_cpu_ms;
  return timed(compiled, cpu, [&] {
    objects_.clear();
    for (const TreeFile& f : files_) {
      if (!f.is_source) continue;
      auto src = client.open(f.path);
      assert(src);
      const Status rs = client.read(*src, 0, f.size);
      assert(rs.ok());
      (void)rs;
      TreeFile obj;
      obj.path = f.path + ".o";
      obj.size = f.size * 2;  // objects are larger than sources
      auto fh = client.create(obj.path);
      assert(fh);
      obj.ino = fh->ino;
      const Status w = client.write(*fh, 0, 0, obj.size);
      assert(w.ok());
      (void)w;
      const Status c = client.close(*fh);
      assert(c.ok());
      (void)c;
      objects_.push_back(std::move(obj));
    }
  });
}

AppRunResult FileTreeWorkload::make_clean() {
  return timed(objects_.size(), 0.0, [&] {
    for (const TreeFile& obj : objects_) {
      const Status st = fs_.rpc().stat(obj.path);
      assert(st.ok());
      (void)st;
      const Status s = fs_.rpc().unlink(obj.path);
      assert(s.ok());
      (void)s;
      fs_.delete_file(obj.ino);
    }
    objects_.clear();
  });
}

AppRunResult FileTreeWorkload::tar_scan() {
  auto client = fs_.connect(ClientId{1});
  return timed(files_.size(), 0.0, [&] {
    for (const std::string& d : dirs_) {
      auto entries = fs_.rpc().readdir_stats(d);
      assert(entries);
      (void)entries;
    }
    for (const TreeFile& f : files_) {
      auto fh = client.open(f.path);
      assert(fh);
      const Status s = client.read(*fh, 0, f.size);
      assert(s.ok());
      (void)s;
    }
  });
}

}  // namespace mif::workload
