// Shared-file micro-benchmark (§V-C1, Fig. 6).
//
// Reconstructed from the paper's description, which in turn follows the
// LLNL trace analysis of [16]:
//   phase 1 — N processes (4 threads per client node) concurrently extend
//             one shared file, each writing its own contiguous logical
//             region in fixed-size requests, requests interleaving in
//             arrival order across processes (Fig. 1(a)'s pathology);
//   phase 2 — the file is split into 1024 segments, each read sequentially
//             (the "further analysis" pass whose throughput Fig. 6 plots).
#pragma once

#include "core/pfs.hpp"

namespace mif::workload {

struct SharedFileConfig {
  u32 processes{32};
  u32 threads_per_client{4};
  u64 request_blocks{1};       // phase-1 write request size (blocks)
  u64 blocks_per_process{256}; // each process extends this much (1 MiB)
  u32 read_segments{1024};
  /// Use the fallocate baseline: persistently preallocate the whole file
  /// before phase 1 (requires foreknowledge of the final size).
  bool static_prealloc{false};
};

struct SharedFileResult {
  double phase1_ms{0.0};
  double phase2_ms{0.0};
  double phase2_throughput_mbps{0.0};
  u64 file_blocks{0};
  u64 extents{0};        // Table I metric
  u64 positionings{0};   // phase-2 head movements
  double mds_cpu{0.0};   // MDS CPU utilisation over the run
};

/// Runs both phases on an already-mounted cluster.  The caller chooses the
/// preallocation strategy via the cluster's allocator mode (plus
/// `static_prealloc` for the fallocate baseline).
SharedFileResult run_shared_file(core::ParallelFileSystem& fs,
                                 const SharedFileConfig& cfg);

}  // namespace mif::workload
