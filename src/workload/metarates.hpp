// Metarates-like metadata benchmark (§V-D1, Fig. 8).
//
// "We used the Metarates application, an MPI application that coordinates
// file system accesses from multiple clients … each client worked in its own
// directory; each single directory contained 5000 subfiles."  Four phases —
// create, utime, readdir-stat, delete — each interleaved across clients so
// the MDS sees concurrent streams (which is what scatters normal-mode inode
// tables across directories).
#pragma once

#include "rpc/mds_node.hpp"

namespace mif::workload {

struct MetaratesConfig {
  u32 clients{10};
  u32 files_per_dir{5000};
  /// Drop the MDS cache before each phase (cold-cache measurement, matching
  /// the paper's disk-access-count methodology).
  bool cold_phases{true};
};

struct PhaseResult {
  u64 ops{0};
  double elapsed_ms{0.0};
  u64 disk_accesses{0};
  double ops_per_sec() const {
    return elapsed_ms > 0 ? static_cast<double>(ops) / (elapsed_ms * 1e-3)
                          : 0.0;
  }
};

struct MetaratesResult {
  PhaseResult create;
  PhaseResult utime;
  PhaseResult readdir_stat;
  PhaseResult remove;
};

MetaratesResult run_metarates(rpc::MdsNode& node, const MetaratesConfig& cfg);

}  // namespace mif::workload
