#include "workload/trace.hpp"

#include <sstream>
#include <unordered_map>

namespace mif::workload {

std::string_view to_string(TraceOpKind k) {
  switch (k) {
    case TraceOpKind::kCreate: return "create";
    case TraceOpKind::kOpen: return "open";
    case TraceOpKind::kWrite: return "write";
    case TraceOpKind::kRead: return "read";
    case TraceOpKind::kClose: return "close";
    case TraceOpKind::kUnlink: return "unlink";
    case TraceOpKind::kBarrier: return "barrier";
  }
  return "?";
}

namespace {
Result<TraceOpKind> kind_from(std::string_view s) {
  if (s == "create") return TraceOpKind::kCreate;
  if (s == "open") return TraceOpKind::kOpen;
  if (s == "write") return TraceOpKind::kWrite;
  if (s == "read") return TraceOpKind::kRead;
  if (s == "close") return TraceOpKind::kClose;
  if (s == "unlink") return TraceOpKind::kUnlink;
  if (s == "barrier") return TraceOpKind::kBarrier;
  return Errc::kInvalid;
}
}  // namespace

void Trace::save(std::ostream& out) const {
  for (const TraceOp& op : ops_) {
    out << workload::to_string(op.kind) << ' ' << op.pid << ' '
        << (op.path.empty() ? "-" : op.path) << ' ' << op.offset << ' '
        << op.length << '\n';
  }
}

Result<Trace> Trace::load(std::istream& in) {
  Trace t;
  std::string kind_s, path;
  u32 pid;
  u64 offset, length;
  while (in >> kind_s >> pid >> path >> offset >> length) {
    auto kind = kind_from(kind_s);
    if (!kind) return kind.error();
    TraceOp op;
    op.kind = *kind;
    op.pid = pid;
    op.path = path == "-" ? std::string{} : path;
    op.offset = offset;
    op.length = length;
    t.append(std::move(op));
  }
  if (!in.eof() && in.fail()) return Errc::kInvalid;
  return t;
}

std::string Trace::to_string() const {
  std::ostringstream os;
  save(os);
  return os.str();
}

Result<Trace> Trace::parse(std::string_view text) {
  std::istringstream is{std::string(text)};
  return load(is);
}

ReplayResult replay(core::ParallelFileSystem& fs, const Trace& trace) {
  ReplayResult res;
  auto client = fs.connect(ClientId{1});
  std::unordered_map<std::string, client::FileHandle> open_files;

  const double data0 = fs.data_elapsed_ms();
  const double meta0 = fs.mds().fs().elapsed_ms();

  auto handle_for = [&](const std::string& path) -> client::FileHandle* {
    auto it = open_files.find(path);
    if (it != open_files.end()) return &it->second;
    auto fh = client.open(path);
    if (!fh) return nullptr;
    return &open_files.emplace(path, *fh).first->second;
  };

  for (const TraceOp& op : trace.ops()) {
    ++res.ops_executed;
    switch (op.kind) {
      case TraceOpKind::kCreate: {
        auto fh = client.create(op.path);
        if (!fh) {
          ++res.errors;
        } else {
          open_files[op.path] = *fh;
        }
        break;
      }
      case TraceOpKind::kOpen: {
        if (!handle_for(op.path)) ++res.errors;
        break;
      }
      case TraceOpKind::kWrite: {
        client::FileHandle* fh = handle_for(op.path);
        if (!fh || !client.write(*fh, op.pid, op.offset, op.length).ok()) {
          ++res.errors;
        } else {
          res.bytes_written += op.length;
        }
        break;
      }
      case TraceOpKind::kRead: {
        client::FileHandle* fh = handle_for(op.path);
        if (!fh || !client.read(*fh, op.offset, op.length).ok()) {
          ++res.errors;
        } else {
          res.bytes_read += op.length;
        }
        break;
      }
      case TraceOpKind::kClose: {
        auto it = open_files.find(op.path);
        if (it == open_files.end()) {
          ++res.errors;
        } else {
          if (!client.close(it->second).ok()) ++res.errors;
          open_files.erase(it);
        }
        break;
      }
      case TraceOpKind::kUnlink: {
        auto it = open_files.find(op.path);
        InodeNo ino{};
        if (it != open_files.end()) {
          ino = it->second.ino;
          open_files.erase(it);
        }
        if (!fs.rpc().unlink(op.path).ok()) {
          ++res.errors;
        } else if (ino.valid()) {
          fs.delete_file(ino);
        }
        break;
      }
      case TraceOpKind::kBarrier:
        fs.drain_data();
        break;
    }
  }
  fs.drain_data();
  fs.finish_mds();
  res.data_elapsed_ms = fs.data_elapsed_ms() - data0;
  res.metadata_elapsed_ms = fs.mds().fs().elapsed_ms() - meta0;
  return res;
}

Trace make_checkpoint_trace(u32 processes, u64 region_bytes, u64 request_bytes,
                            double pacing, u64 seed) {
  Trace t;
  Rng rng(seed);
  const std::string file = "ckpt.odb";
  t.append({TraceOpKind::kCreate, 0, file, 0, 0});

  const u64 rounds = (region_bytes + request_bytes - 1) / request_bytes;
  std::vector<u64> next(processes, 0);
  u64 remaining = static_cast<u64>(processes) * rounds;
  while (remaining > 0) {
    for (u32 p = 0; p < processes; ++p) {
      if (next[p] >= rounds) continue;
      if (pacing < 1.0 && !rng.chance(pacing)) continue;
      const u64 off = static_cast<u64>(p) * region_bytes +
                      next[p] * request_bytes;
      const u64 len =
          std::min(request_bytes, region_bytes - next[p] * request_bytes);
      t.append({TraceOpKind::kWrite, p, file, off, len});
      ++next[p];
      --remaining;
    }
  }
  t.append({TraceOpKind::kBarrier, 0, {}, 0, 0});
  t.append({TraceOpKind::kClose, 0, file, 0, 0});
  return t;
}

Trace make_smallfile_trace(u32 files, u32 transactions, u64 max_bytes,
                           u64 seed) {
  Trace t;
  Rng rng(seed);
  std::vector<std::string> live;
  u64 serial = 0;
  auto create_one = [&] {
    std::string path = "sf" + std::to_string(serial++);
    const u64 size = rng.uniform(512, max_bytes);
    t.append({TraceOpKind::kCreate, 0, path, 0, 0});
    t.append({TraceOpKind::kWrite, 0, path, 0, size});
    t.append({TraceOpKind::kClose, 0, path, 0, 0});
    live.push_back(std::move(path));
  };
  for (u32 i = 0; i < files; ++i) create_one();
  for (u32 x = 0; x < transactions; ++x) {
    if (live.empty() || rng.chance(0.5)) {
      create_one();
    } else {
      const std::size_t i = rng.uniform(0, live.size() - 1);
      if (rng.chance(0.5)) {
        t.append({TraceOpKind::kRead, 0, live[i], 0, max_bytes / 2});
      } else {
        t.append({TraceOpKind::kUnlink, 0, live[i], 0, 0});
        live[i] = live.back();
        live.pop_back();
      }
    }
  }
  t.append({TraceOpKind::kBarrier, 0, {}, 0, 0});
  return t;
}

}  // namespace mif::workload
