// Positional rotating-disk model.
//
// The paper's entire argument is mechanical: intra-file fragmentation forces
// the disk head to "move back and forth constantly among the different
// regions" (§I).  We therefore model exactly the quantities that mechanism
// touches — head position, distance-dependent seek time, rotational latency
// and sequential transfer rate — and nothing else (no zoning, no cache, no
// NCQ), so results are attributable to placement alone.
//
// Peak rates default to the paper's measured hardware: 170.2 MB/s sequential
// read and 171.3 MB/s sequential write per spindle (§V-B).
#pragma once

#include <cstddef>

#include "util/stats.hpp"
#include "util/types.hpp"

namespace mif::obs {
class SpanCollector;
}

namespace mif::sim {

struct DiskGeometry {
  u64 capacity_blocks{u64{4} * 1024 * 1024};  // 16 GiB at 4 KiB blocks
  double seq_read_mbps{170.2};
  double seq_write_mbps{171.3};
  /// Short seek (track-to-track) and full-stroke seek, milliseconds.
  double seek_min_ms{0.5};
  double seek_max_ms{8.5};
  /// Average rotational latency (half a revolution at 7200 rpm).
  double rotational_ms{4.17};
  /// Short forward gaps are crossed by staying on track and letting the
  /// platter spin past the unwanted sectors — cost ≈ streaming over the gap
  /// — instead of a full seek + rotational wait.  Real drives (and their
  /// schedulers) rely on this; without it, near-sequential access with
  /// small holes would be absurdly penalised.
  bool track_skip{true};
};

enum class IoKind { kRead, kWrite };

struct DiskRequest {
  IoKind kind{IoKind::kRead};
  DiskBlock start{};
  u64 count{1};  // blocks
  /// Cost-attribution tag (obs::Principal::key(); 0 = system) and the disk
  /// time at submit, stamped by IoScheduler only when attribution is
  /// attached.  Opaque here — the disk model itself never reads them.
  u64 principal{0};
  double submit_ms{0.0};
};

/// Counters exposed by every disk; benches read these to build the paper's
/// tables ("disk access count" in Fig. 8 is `positionings + sequential_hits`,
/// i.e. requests dispatched at the block layer; `positionings` alone is the
/// number of head movements).
struct DiskStats {
  u64 requests{0};         // dispatched requests
  u64 positionings{0};     // requests that required a full seek + rotation
  u64 skips{0};            // requests reached by cheap forward sector skip
  u64 sequential_hits{0};  // requests starting exactly at the head position
  u64 blocks_read{0};
  u64 blocks_written{0};
  double seek_ms{0.0};
  double rotation_ms{0.0};
  double skip_ms{0.0};
  double transfer_ms{0.0};
  double busy_ms() const {
    return seek_ms + rotation_ms + skip_ms + transfer_ms;
  }
};

/// Pure streaming transfer time for `blocks` at the geometry's sequential
/// rate — the head-position-independent floor of a request's service time.
/// The async transport prices per-envelope disk service with this (it cannot
/// know head position: the real charge still happens inside the OSD).
inline double stream_transfer_ms(const DiskGeometry& g, u64 blocks,
                                 IoKind kind) {
  const double rate_mbps =
      kind == IoKind::kRead ? g.seq_read_mbps : g.seq_write_mbps;
  return static_cast<double>(blocks_to_bytes(blocks)) / (rate_mbps * 1e6) *
         1e3;
}

class Disk {
 public:
  explicit Disk(DiskGeometry geometry = {});

  /// Services one request immediately, advancing this disk's private
  /// timeline.  Returns the service time in milliseconds.
  double service(const DiskRequest& req);

  /// Simulated time at which the last request completed (ms since mount).
  double now_ms() const { return now_ms_; }

  /// Idle the disk until `t_ms` (used when an upstream queue starves it).
  void advance_to(double t_ms);

  DiskBlock head() const { return head_; }
  const DiskGeometry& geometry() const { return geometry_; }
  const DiskStats& stats() const { return stats_; }

  /// Per-request positioning time (seek + rotation) for the requests that
  /// paid a full reposition — the distribution behind the paper's "move
  /// back and forth constantly" argument, not just its sum.
  const RunningStats& position_times_ms() const { return position_times_ms_; }

  /// Component breakdown of the MOST RECENT service() call.  IoScheduler
  /// reads this right after dispatching a merged request to split its cost
  /// back to the contributors pro-rata (cost attribution).
  struct ServiceBreakdown {
    double seek_ms{0.0};
    double rotation_ms{0.0};
    double skip_ms{0.0};
    double transfer_ms{0.0};
  };
  const ServiceBreakdown& last_service() const { return last_; }

  void reset_stats() {
    stats_ = {};
    position_times_ms_ = {};
  }

  /// Attach a span collector: every serviced request then emits
  /// `disk.seek` / `disk.skip` / `disk.transfer` spans on this disk's
  /// simulated timeline (track = `track`), attributed to the collector's
  /// ambient trace context at service time.  nullptr detaches.
  void set_spans(obs::SpanCollector* spans, u32 track) {
    spans_ = spans;
    span_track_ = track;
  }

  /// Seek time for a head movement of `distance` blocks.  Square-root model:
  /// short seeks are dominated by head settle, long ones by the arm sweep.
  double seek_time_ms(u64 distance) const;

 private:
  DiskGeometry geometry_;
  DiskBlock head_{0};
  double now_ms_{0.0};
  DiskStats stats_;
  ServiceBreakdown last_;
  RunningStats position_times_ms_;
  obs::SpanCollector* spans_{nullptr};
  u32 span_track_{0};
};

}  // namespace mif::sim
