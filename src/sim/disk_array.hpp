// JBOD array: a set of independent spindles, each behind its own merging
// scheduler — the paper's "fabric disks sitting in an individual JBOD array"
// (§V-B).  Striped file data spreads across members; the elapsed time of a
// parallel phase is the slowest member's busy time, which is how a striped
// read completes in a real PFS client.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "obs/span.hpp"
#include "sim/disk.hpp"
#include "sim/io_scheduler.hpp"

namespace mif::obs {
class SpanCollector;
}

namespace mif::sim {

class DiskArray {
 public:
  DiskArray(std::size_t disks, DiskGeometry geometry = {},
            std::size_t scheduler_queue = 128);

  std::size_t size() const { return disks_.size(); }
  Disk& disk(std::size_t i) { return *disks_[i]; }
  const Disk& disk(std::size_t i) const { return *disks_[i]; }
  IoScheduler& scheduler(std::size_t i) { return *schedulers_[i]; }

  void submit(std::size_t disk_idx, const DiskRequest& req);

  /// Drain every member queue.
  void drain_all();

  /// Wall-clock of the phase so far: the furthest-ahead member timeline.
  double elapsed_ms() const;

  /// Aggregate counters over all members.
  DiskStats total_stats() const;
  u64 total_dispatched() const;

  void reset_stats();

  /// Attach a span collector to every member disk (track = member index);
  /// nullptr detaches.
  void set_spans(obs::SpanCollector* spans) {
    const u32 inst = spans ? spans->reserve_track_namespace() : 0;
    for (std::size_t i = 0; i < disks_.size(); ++i)
      disks_[i]->set_spans(spans, obs::make_track(inst, static_cast<u32>(i)));
  }

 private:
  std::vector<std::unique_ptr<Disk>> disks_;
  std::vector<std::unique_ptr<IoScheduler>> schedulers_;
};

}  // namespace mif::sim
