#include "sim/disk.hpp"

#include <cassert>
#include <cmath>

#include "obs/span.hpp"

namespace mif::sim {

Disk::Disk(DiskGeometry geometry) : geometry_(geometry), head_{0} {}

double Disk::seek_time_ms(u64 distance) const {
  if (distance == 0) return 0.0;
  const double frac = std::sqrt(static_cast<double>(distance) /
                                static_cast<double>(geometry_.capacity_blocks));
  return geometry_.seek_min_ms +
         (geometry_.seek_max_ms - geometry_.seek_min_ms) * std::min(frac, 1.0);
}

double Disk::service(const DiskRequest& req) {
  assert(req.start.valid());
  assert(req.count > 0);
  assert(req.start.v + req.count <= geometry_.capacity_blocks);

  double t = 0.0;
  ++stats_.requests;
  last_ = {};
  const obs::SpanContext ctx = spans_ ? spans_->ambient() : obs::SpanContext{};
  if (req.start == head_) {
    // Head already on the right spot: pure streaming.
    ++stats_.sequential_hits;
  } else {
    const u64 dist = req.start.v > head_.v ? req.start.v - head_.v
                                           : head_.v - req.start.v;
    const double reposition = seek_time_ms(dist) + geometry_.rotational_ms;
    // Forward gaps can be crossed by sector-skipping at streaming speed.
    const double skip =
        req.start.v > head_.v && geometry_.track_skip
            ? static_cast<double>(blocks_to_bytes(dist)) /
                  (geometry_.seq_read_mbps * 1e6) * 1e3
            : reposition;
    if (skip < reposition) {
      t += skip;
      stats_.skip_ms += skip;
      last_.skip_ms = skip;
      ++stats_.skips;
      if (spans_)
        spans_->record_sim("disk.skip", span_track_, now_ms_, skip, ctx,
                           req.start.v, dist);
    } else {
      const double seek = seek_time_ms(dist);
      t += seek + geometry_.rotational_ms;
      stats_.seek_ms += seek;
      stats_.rotation_ms += geometry_.rotational_ms;
      last_.seek_ms = seek;
      last_.rotation_ms = geometry_.rotational_ms;
      ++stats_.positionings;
      position_times_ms_.add(seek + geometry_.rotational_ms);
      if (spans_)
        spans_->record_sim("disk.seek", span_track_, now_ms_,
                           seek + geometry_.rotational_ms, ctx, req.start.v,
                           dist);
    }
  }

  const double rate_mbps = req.kind == IoKind::kRead ? geometry_.seq_read_mbps
                                                     : geometry_.seq_write_mbps;
  const double bytes = static_cast<double>(blocks_to_bytes(req.count));
  const double transfer = bytes / (rate_mbps * 1e6) * 1e3;  // ms
  if (spans_)
    spans_->record_sim("disk.transfer", span_track_, now_ms_ + t, transfer,
                       ctx, req.start.v, req.count);
  t += transfer;
  stats_.transfer_ms += transfer;
  last_.transfer_ms = transfer;

  if (req.kind == IoKind::kRead) {
    stats_.blocks_read += req.count;
  } else {
    stats_.blocks_written += req.count;
  }

  head_ = DiskBlock{req.start.v + req.count};
  now_ms_ += t;
  return t;
}

void Disk::advance_to(double t_ms) {
  if (t_ms > now_ms_) now_ms_ = t_ms;
}

}  // namespace mif::sim
