// Pipelined request-issue timeline: the overlap model behind the async
// transport.
//
// The synchronous client pays sum(network + disk) for a striped stream —
// every exchange waits for the previous one.  With a completion-queue
// transport the client keeps up to `depth` requests in flight, and requests
// travelling to DISTINCT servers/disks proceed concurrently: a window of
// in-flight exchanges completes in the max() of its members' service times,
// not their sum.  That is the win MPI-IO aggregation and PVFS list-I/O
// measure once the layout is contiguous (see ISSUE/PAPERS), and it is what
// this class models.
//
// Mechanics (all simulated time, milliseconds):
//   * one ISSUE clock — the client; issuing is free but bounded by the
//     window: with `depth` requests outstanding, the next issue stalls
//     until the oldest completes (completion-queue backpressure);
//   * one CHANNEL clock per destination (server NIC + disk): exchanges to
//     one destination serialise FIFO; distinct channels overlap freely.
//
// depth == 1 degenerates to the blocking client exactly: every issue waits
// for the previous completion, so elapsed_ms() == serial_ms() (the sum).
// depth >= #channels with balanced load approaches serial/#channels.
#pragma once

#include <queue>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace mif::sim {

struct PipelineStats {
  u64 issued{0};         // exchanges submitted
  u64 stalls{0};         // issues that waited for a window slot
  double stall_ms{0.0};  // total time the issue clock waited on the window
  double serial_ms{0.0}; // sum of all service times: the depth-1 cost
  u64 max_inflight{0};   // deepest window occupancy observed
};

class Pipeline {
 public:
  /// `depth` = max in-flight exchanges (clamped to >= 1).
  explicit Pipeline(u32 depth = 1);

  struct Times {
    double issue_ms{0.0};  // when the window admitted the exchange
    double start_ms{0.0};  // when its channel began serving it
    double done_ms{0.0};   // completion on the modeled timeline
    double stall_ms{0.0};  // window backpressure THIS submit waited out
  };

  /// Submit one exchange of `service_ms` to `channel`; returns its modeled
  /// times.  Monotonic per channel — FIFO ordering per destination.
  Times submit(u32 channel, double service_ms);

  /// Resize the admission window (clamped to >= 1).  Used by the adaptive
  /// async transport: a deeper window admits more overlap, a shallower one
  /// makes the next submits wait out the excess in-flight exchanges first
  /// (their stall time is charged to the submit that waited, as usual).
  void set_depth(u32 depth);

  /// In-flight exchanges after the most recent submit (window occupancy).
  u64 inflight() const { return inflight_.size(); }

  /// Completion time of the latest-finishing exchange: the pipelined
  /// end-to-end elapsed.  max() across channels, by construction.
  double elapsed_ms() const { return elapsed_ms_; }

  /// The issue clock: everything completed at or before it has retired out
  /// of the window (the horizon a non-blocking caller has observed).
  double issue_clock_ms() const { return issue_ms_; }

  u32 depth() const { return depth_; }
  const PipelineStats& stats() const { return stats_; }

 private:
  u32 depth_;
  double issue_ms_{0.0};
  double elapsed_ms_{0.0};
  /// Oldest-completion-first heap of in-flight done times (size <= depth).
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      inflight_;
  std::unordered_map<u32, double> channel_ms_;
  PipelineStats stats_;
};

}  // namespace mif::sim
