#include "sim/pipeline.hpp"

#include <algorithm>

namespace mif::sim {

Pipeline::Pipeline(u32 depth) : depth_(std::max<u32>(depth, 1)) {}

void Pipeline::set_depth(u32 depth) { depth_ = std::max<u32>(depth, 1); }

Pipeline::Times Pipeline::submit(u32 channel, double service_ms) {
  // Window backpressure: with `depth` outstanding, the issue clock waits
  // for the oldest in-flight exchanges to complete (a slot in the
  // completion queue).  A loop, not an if: set_depth() may have shrunk the
  // window below the current occupancy, and every excess exchange must
  // retire before the next issue is admitted.
  Times t;
  bool stalled = false;
  while (inflight_.size() >= depth_) {
    const double freed_at = inflight_.top();
    inflight_.pop();
    if (freed_at > issue_ms_) {
      if (!stalled) {
        stalled = true;
        ++stats_.stalls;
      }
      t.stall_ms += freed_at - issue_ms_;
      stats_.stall_ms += freed_at - issue_ms_;
      issue_ms_ = freed_at;
    }
  }
  t.issue_ms = issue_ms_;
  // FIFO per destination: the channel serves one exchange at a time.
  double& ch = channel_ms_[channel];
  t.start_ms = std::max(issue_ms_, ch);
  t.done_ms = t.start_ms + service_ms;
  ch = t.done_ms;
  inflight_.push(t.done_ms);
  elapsed_ms_ = std::max(elapsed_ms_, t.done_ms);
  ++stats_.issued;
  stats_.serial_ms += service_ms;
  stats_.max_inflight = std::max<u64>(stats_.max_inflight, inflight_.size());
  return t;
}

}  // namespace mif::sim
