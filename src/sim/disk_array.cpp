#include "sim/disk_array.hpp"

#include <algorithm>

namespace mif::sim {

DiskArray::DiskArray(std::size_t disks, DiskGeometry geometry,
                     std::size_t scheduler_queue) {
  disks_.reserve(disks);
  schedulers_.reserve(disks);
  for (std::size_t i = 0; i < disks; ++i) {
    disks_.push_back(std::make_unique<Disk>(geometry));
    schedulers_.push_back(
        std::make_unique<IoScheduler>(*disks_.back(), scheduler_queue));
  }
}

void DiskArray::submit(std::size_t disk_idx, const DiskRequest& req) {
  schedulers_.at(disk_idx)->submit(req);
}

void DiskArray::drain_all() {
  for (auto& s : schedulers_) s->drain();
}

double DiskArray::elapsed_ms() const {
  double t = 0.0;
  for (const auto& d : disks_) t = std::max(t, d->now_ms());
  return t;
}

DiskStats DiskArray::total_stats() const {
  DiskStats total;
  for (const auto& d : disks_) {
    const DiskStats& s = d->stats();
    total.requests += s.requests;
    total.positionings += s.positionings;
    total.skips += s.skips;
    total.sequential_hits += s.sequential_hits;
    total.blocks_read += s.blocks_read;
    total.blocks_written += s.blocks_written;
    total.seek_ms += s.seek_ms;
    total.rotation_ms += s.rotation_ms;
    total.skip_ms += s.skip_ms;
    total.transfer_ms += s.transfer_ms;
  }
  return total;
}

u64 DiskArray::total_dispatched() const {
  u64 n = 0;
  for (const auto& s : schedulers_) n += s->stats().dispatched;
  return n;
}

void DiskArray::reset_stats() {
  for (auto& d : disks_) d->reset_stats();
  for (auto& s : schedulers_) s->reset_stats();
}

}  // namespace mif::sim
