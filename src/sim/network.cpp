#include "sim/network.hpp"

namespace mif::sim {

Network::Network(NetworkConfig cfg) : cfg_(cfg) {}

double Network::cost(u64 payload_bytes) const {
  const double xfer =
      static_cast<double>(payload_bytes) / (cfg_.bandwidth_mbps * 1e6) * 1e3;
  return cfg_.rtt_ms + xfer;
}

double Network::rpc(u64 payload_bytes) {
  const double t = cost(payload_bytes);
  ++stats_.rpcs;
  stats_.bytes += payload_bytes;
  stats_.time_ms += t;
  return t;
}

}  // namespace mif::sim
