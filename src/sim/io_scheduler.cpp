#include "sim/io_scheduler.hpp"

#include <algorithm>

#include "obs/attrib.hpp"
#include "obs/span.hpp"

namespace mif::sim {

IoScheduler::IoScheduler(Disk& disk, std::size_t max_queue,
                         std::size_t max_write_queue)
    : disk_(disk),
      max_queue_(max_queue),
      max_write_queue_(max_write_queue ? max_write_queue : max_queue) {
  queue_.reserve(max_queue_);
}

void IoScheduler::submit(const DiskRequest& req) {
  ++stats_.queued;
  queue_.push_back(req);
  if (attrib_) {
    queue_.back().principal = obs::ambient_principal().key();
    queue_.back().submit_ms = disk_.now_ms();
  }
  if (req.kind == IoKind::kRead) {
    ++queued_reads_;
  } else {
    ++queued_writes_;
  }
  if (queued_reads_ >= max_queue_ || queued_writes_ >= max_write_queue_)
    drain();
}

double IoScheduler::drain() {
  if (queue_.empty()) return 0.0;
  // One-way elevator: ascending block order.  Reads and writes keep their
  // own merge chains but share the sweep, as in CFQ's sync service tree.
  std::stable_sort(queue_.begin(), queue_.end(),
                   [](const DiskRequest& a, const DiskRequest& b) {
                     return a.start.v < b.start.v;
                   });

  double elapsed = 0.0;
  std::size_t i = 0;
  while (i < queue_.size()) {
    DiskRequest merged = queue_[i];
    std::size_t j = i + 1;
    while (j < queue_.size() && queue_[j].kind == merged.kind &&
           queue_[j].start.v <= merged.start.v + merged.count) {
      // Back-to-back or overlapping: coalesce.
      const u64 end = std::max(merged.start.v + merged.count,
                               queue_[j].start.v + queue_[j].count);
      merged.count = end - merged.start.v;
      ++stats_.merged;
      ++j;
    }
    const double start_ms = disk_.now_ms();
    elapsed += disk_.service(merged);
    ++stats_.dispatched;
    if (attrib_) attribute_dispatch(i, j, start_ms);
    i = j;
  }
  queue_.clear();
  queued_reads_ = 0;
  queued_writes_ = 0;
  return elapsed;
}

/// Split the just-serviced dispatch (contributors queue_[first, last)) back
/// to its submitters: each cost component pro-rata by contributed block
/// count, with the LAST contributor taking the remainder so the shares sum
/// to the disk's charge exactly; queue wait is per contributor, service
/// start minus its submit stamp on the same disk clock.
void IoScheduler::attribute_dispatch(std::size_t first, std::size_t last,
                                     double start_ms) {
  const Disk::ServiceBreakdown& b = disk_.last_service();
  double total_wait = 0.0;
  for (std::size_t k = first; k < last; ++k) {
    const obs::Principal p = obs::Principal::from_key(queue_[k].principal);
    const double wait = start_ms - queue_[k].submit_ms;
    attrib_->charge_queue_wait(p, wait);
    attrib_->count_disk_request(p);
    total_wait += wait;
  }
  // Single contributor (or a uniform group) keeps the charge exact.
  bool uniform = true;
  u64 total_blocks = queue_[first].count;
  for (std::size_t k = first + 1; k < last; ++k) {
    uniform = uniform && queue_[k].principal == queue_[first].principal;
    total_blocks += queue_[k].count;
  }
  if (uniform) {
    attrib_->charge_disk(obs::Principal::from_key(queue_[first].principal),
                         b.seek_ms, b.rotation_ms, b.skip_ms, b.transfer_ms);
  } else {
    double seek_left = b.seek_ms, rotation_left = b.rotation_ms;
    double skip_left = b.skip_ms, transfer_left = b.transfer_ms;
    for (std::size_t k = first; k < last; ++k) {
      const obs::Principal p = obs::Principal::from_key(queue_[k].principal);
      if (k + 1 == last) {
        attrib_->charge_disk(p, seek_left, rotation_left, skip_left,
                             transfer_left);
      } else {
        const double w = static_cast<double>(queue_[k].count) /
                         static_cast<double>(total_blocks);
        const double seek = b.seek_ms * w, rotation = b.rotation_ms * w;
        const double skip = b.skip_ms * w, transfer = b.transfer_ms * w;
        attrib_->charge_disk(p, seek, rotation, skip, transfer);
        seek_left -= seek;
        rotation_left -= rotation;
        skip_left -= skip;
        transfer_left -= transfer;
      }
    }
  }
  if (spans_ && total_wait > 0.0) {
    spans_->record_sim("io.queue_wait", span_track_, qwait_clock_, total_wait,
                       spans_->ambient(), last - first, total_blocks);
    qwait_clock_ += total_wait;
  }
}

}  // namespace mif::sim
