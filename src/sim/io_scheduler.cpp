#include "sim/io_scheduler.hpp"

#include <algorithm>

namespace mif::sim {

IoScheduler::IoScheduler(Disk& disk, std::size_t max_queue,
                         std::size_t max_write_queue)
    : disk_(disk),
      max_queue_(max_queue),
      max_write_queue_(max_write_queue ? max_write_queue : max_queue) {
  queue_.reserve(max_queue_);
}

void IoScheduler::submit(const DiskRequest& req) {
  ++stats_.queued;
  queue_.push_back(req);
  if (req.kind == IoKind::kRead) {
    ++queued_reads_;
  } else {
    ++queued_writes_;
  }
  if (queued_reads_ >= max_queue_ || queued_writes_ >= max_write_queue_)
    drain();
}

double IoScheduler::drain() {
  if (queue_.empty()) return 0.0;
  // One-way elevator: ascending block order.  Reads and writes keep their
  // own merge chains but share the sweep, as in CFQ's sync service tree.
  std::stable_sort(queue_.begin(), queue_.end(),
                   [](const DiskRequest& a, const DiskRequest& b) {
                     return a.start.v < b.start.v;
                   });

  double elapsed = 0.0;
  std::size_t i = 0;
  while (i < queue_.size()) {
    DiskRequest merged = queue_[i];
    std::size_t j = i + 1;
    while (j < queue_.size() && queue_[j].kind == merged.kind &&
           queue_[j].start.v <= merged.start.v + merged.count) {
      // Back-to-back or overlapping: coalesce.
      const u64 end = std::max(merged.start.v + merged.count,
                               queue_[j].start.v + queue_[j].count);
      merged.count = end - merged.start.v;
      ++stats_.merged;
      ++j;
    }
    elapsed += disk_.service(merged);
    ++stats_.dispatched;
    i = j;
  }
  queue_.clear();
  queued_reads_ = 0;
  queued_writes_ = 0;
  return elapsed;
}

}  // namespace mif::sim
