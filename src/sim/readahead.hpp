// Kernel-style sequential readahead window.
//
// Fig. 8's readdir-stat result depends on this explicitly: "the size of the
// prefetching window is gradually enlarged when it correctly predicts the
// blocks to be used", which lets the embedded directory merge individual
// readdir-stat operations into a few large disk reads.  We reproduce the
// classic Linux ondemand-readahead shape: start small, double on every
// sequential hit, collapse on a miss.
#pragma once

#include "util/types.hpp"

namespace mif::sim {

struct ReadaheadConfig {
  u64 initial_blocks{4};   // 16 KiB
  u64 max_blocks{128};     // 512 KiB — the kernel default max_readahead
};

class Readahead {
 public:
  explicit Readahead(ReadaheadConfig cfg = {});

  /// Ask the window how many blocks to read for an access of `want` blocks
  /// at logical position `pos`.  Contract: the caller reads logical range
  /// [pos, pos + returned) through its buffer cache (which absorbs the
  /// already-resident prefix), or nothing when 0 is returned because an
  /// earlier prefetch fully covers the access.
  u64 advise(u64 pos, u64 want);

  u64 window() const { return window_; }
  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }

 private:
  ReadaheadConfig cfg_;
  u64 next_expected_{kNoBlock};
  u64 prefetched_until_{0};  // exclusive logical bound already fetched
  u64 window_;
  u64 hits_{0};
  u64 misses_{0};
};

}  // namespace mif::sim
