#include "sim/readahead.hpp"

#include <algorithm>

namespace mif::sim {

Readahead::Readahead(ReadaheadConfig cfg)
    : cfg_(cfg), window_(cfg.initial_blocks) {}

u64 Readahead::advise(u64 pos, u64 want) {
  const bool sequential =
      next_expected_ != kNoBlock &&
      (pos == next_expected_ || pos < prefetched_until_);

  if (sequential) {
    ++hits_;
    if (pos + want <= prefetched_until_) {
      // Fully covered by an earlier prefetch: no new I/O.
      next_expected_ = std::max(next_expected_, pos + want);
      return 0;
    }
    // Correct prediction: grow the window before fetching further.
    window_ = std::min(window_ * 2, cfg_.max_blocks);
  } else if (next_expected_ != kNoBlock) {
    // Pattern broken: collapse to the initial window.
    ++misses_;
    window_ = cfg_.initial_blocks;
  }

  const u64 fetch = std::max(want, window_);
  next_expected_ = pos + want;
  prefetched_until_ = pos + fetch;
  return fetch;
}

}  // namespace mif::sim
