// Elevator/merging I/O scheduler in front of each simulated disk.
//
// Fig. 8 of the paper measures "disk access count by intercepting the disk
// access in the general block layer" — i.e. *after* request merging.  The
// paper also attributes part of Fig. 6(b) to the scheduler being unable to
// "merge the fragmentary requests on disk".  This class reproduces that
// layer: requests accumulate in a queue, are sorted by block address
// (one-way elevator, as CFQ does per service tree) and physically adjacent
// requests of the same kind coalesce into one dispatch.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/disk.hpp"

namespace mif::obs {
class Attribution;
}

namespace mif::sim {

struct SchedulerStats {
  u64 queued{0};
  u64 dispatched{0};  // requests actually issued to the disk (post-merge)
  u64 merged{0};      // queued requests absorbed into a neighbour
};

class IoScheduler {
 public:
  /// `max_queue` bounds READ batching: once that many reads are queued they
  /// are drained, mimicking the bounded nr_requests block-layer queue a
  /// synchronous reader is exposed to.  WRITES may accumulate up to
  /// `max_write_queue` (0 ⇒ same as max_queue): write-back caching lets
  /// dirty data pile up and flush in long per-region runs, which is why
  /// writes tolerate stream interleaving far better than reads.
  explicit IoScheduler(Disk& disk, std::size_t max_queue = 128,
                       std::size_t max_write_queue = 0);

  /// Queue a request; may trigger a drain when the queue fills.
  void submit(const DiskRequest& req);

  /// Sort + merge + dispatch everything queued.  Returns time spent (ms).
  double drain();

  const SchedulerStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  Disk& disk() { return disk_; }
  /// Requests currently queued (pre-merge) — the timeline's queue gauge.
  std::size_t queue_depth() const { return queue_.size(); }

  /// Attach cost attribution: submit() then stamps each request with the
  /// ambient principal and the disk time at submit; drain() splits every
  /// merged dispatch's service time back to its contributors pro-rata by
  /// block count and charges each contributor's queue wait
  /// (service start − submit).  nullptr detaches.
  void set_attribution(obs::Attribution* attrib) { attrib_ = attrib; }

  /// Attach a span collector for aggregated `io.queue_wait` sim spans (one
  /// per dispatch that waited, on a cumulative queue-wait clock so spans on
  /// one track never overlap).  Only emitted while attribution is also
  /// attached — plain `--trace` output is unchanged.
  void set_spans(obs::SpanCollector* spans, u32 track) {
    spans_ = spans;
    span_track_ = track;
  }

 private:
  void attribute_dispatch(std::size_t first, std::size_t last,
                          double start_ms);

  Disk& disk_;
  std::size_t max_queue_;
  std::size_t max_write_queue_;
  std::size_t queued_reads_{0};
  std::size_t queued_writes_{0};
  std::vector<DiskRequest> queue_;
  SchedulerStats stats_;
  obs::Attribution* attrib_{nullptr};
  obs::SpanCollector* spans_{nullptr};
  u32 span_track_{0};
  double qwait_clock_{0.0};
};

}  // namespace mif::sim
