// Client <-> server network cost model (GbE through the paper's Catalyst 3750
// switches).  Metadata results in the paper are disk-bound, but RPC counts
// still matter for the aggregation argument (§II-A2): readdirplus and
// open-getlayout exist to cut request counts, so we charge a per-RPC latency
// plus a bandwidth term and count RPCs.
#pragma once

#include "util/types.hpp"

namespace mif::sim {

struct NetworkConfig {
  double rtt_ms{0.12};          // GbE switch round trip
  double bandwidth_mbps{117.0}; // achievable GbE payload rate
};

struct NetworkStats {
  u64 rpcs{0};
  u64 bytes{0};
  double time_ms{0.0};
};

class Network {
 public:
  explicit Network(NetworkConfig cfg = {});

  /// Cost of one request/response exchange carrying `payload_bytes`,
  /// without charging it (no stats).  The async transport prices envelopes
  /// with this to build its pipelined timeline.
  double cost(u64 payload_bytes) const;

  /// Cost of one request/response exchange carrying `payload_bytes`,
  /// charged to the stats.
  double rpc(u64 payload_bytes);

  const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  NetworkConfig cfg_;
  NetworkStats stats_;
};

}  // namespace mif::sim
