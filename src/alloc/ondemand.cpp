#include "alloc/ondemand.hpp"

#include <algorithm>

namespace mif::alloc {

OnDemandAllocator::OnDemandAllocator(block::FreeSpace& space,
                                     AllocatorTuning tuning)
    : FileAllocator(space), tuning_(tuning) {}

OnDemandAllocator::~OnDemandAllocator() {
  // Teardown: temporary reservations go back; current windows may be
  // partially served into maps we no longer see, so only the bookkeeping
  // dies with us (the free-space manager is being destroyed too).
  for (auto& [key, st] : streams_) release_sequential(st);
}

void OnDemandAllocator::release_sequential(StreamState& st) {
  if (st.sequential.valid()) {
    (void)space_.free_range({st.sequential.disk, st.sequential.len});
    stats_.released_blocks += st.sequential.len;
    stats_.reserved_blocks -= st.sequential.len;
    st.sequential = {};
  }
}

void OnDemandAllocator::reserve_sequential(StreamState& st, DiskBlock goal,
                                           FileBlock file_pos, u64 want) {
  want = std::min(std::max<u64>(want, 1), tuning_.max_preallocation_blocks);
  // Prefer growing in place so current + sequential stay physically
  // contiguous; fall back to the best nearby run.
  const u64 in_place = space_.extend_in_place(goal, want);
  if (in_place > 0) {
    st.sequential = Window{goal, file_pos, in_place};
  } else if (auto run = space_.allocate_best(goal, 1, want)) {
    st.sequential = Window{run->start, file_pos, run->length};
  } else {
    st.sequential = {};  // disk too full/fragmented to reserve anything
    return;
  }
  stats_.reserved_blocks += st.sequential.len;
}

void OnDemandAllocator::serve_from(const Window& w, FileBlock logical,
                                   u64 count, block::ExtentMap& map) {
  map.insert({logical, w.map_block(logical), count, block::kExtentNone});
  stats_.reserved_blocks -= count;
  stats_.allocated_blocks += count;
}

void OnDemandAllocator::persist_window(Window& w, block::ExtentMap& map) {
  if (!w.valid()) return;
  u64 b = w.file.v;
  const u64 end = w.file.v + w.len;
  while (b < end) {
    if (auto e = map.lookup(FileBlock{b})) {
      const u64 run = std::min(end, e->file_end()) - b;
      const DiskBlock ours{w.disk.v + (b - w.file.v)};
      if (e->map(FileBlock{b}) != ours) {
        // Another stream claimed this logical range first; our reserved
        // blocks under it are surplus.
        (void)space_.free_range({ours, run});
        stats_.released_blocks += run;
        stats_.reserved_blocks -= run;
      }
      // else: we served this range from the window earlier — accounted.
      b += run;
    } else {
      u64 hole_end = end;
      for (const block::Extent& e : map.extents()) {
        if (e.file_off.v > b) {
          hole_end = std::min(hole_end, e.file_off.v);
          break;
        }
      }
      const u64 run = hole_end - b;
      map.insert({FileBlock{b}, DiskBlock{w.disk.v + (b - w.file.v)}, run,
                  block::kExtentUnwritten});
      stats_.reserved_blocks -= run;
      stats_.allocated_blocks += run;
      b = hole_end;
    }
  }
  w = {};
}

Result<DiskBlock> OnDemandAllocator::fill_range(const AllocContext& ctx,
                                                FileBlock logical, u64 count,
                                                block::ExtentMap& map) {
  DiskBlock last{};
  u64 pos = logical.v;
  const u64 end = logical.v + count;
  while (pos < end) {
    if (auto e = map.lookup(FileBlock{pos})) {
      const u64 run = std::min(end, e->file_end()) - pos;
      if (e->flags & block::kExtentUnwritten)
        map.mark_written(FileBlock{pos}, run);
      last = DiskBlock{e->map(FileBlock{pos}).v + run};
      pos += run;
      continue;
    }
    u64 hole_end = end;
    for (const block::Extent& e : map.extents()) {
      if (e.file_off.v > pos) {
        hole_end = std::min(hole_end, e.file_off.v);
        break;
      }
    }
    u64 remaining = hole_end - pos;
    DiskBlock goal = last.valid() ? last : goal_for(ctx.inode, map);
    while (remaining > 0) {
      auto run = space_.allocate_best(goal, 1, remaining);
      if (!run) return Errc::kNoSpace;
      map.insert({FileBlock{pos}, run->start, run->length,
                  block::kExtentNone});
      ++stats_.fresh_allocations;
      stats_.allocated_blocks += run->length;
      pos += run->length;
      remaining -= run->length;
      goal = DiskBlock{run->end()};
      last = goal;
    }
  }
  return last;
}

Status OnDemandAllocator::allocate_fresh(const AllocContext& ctx,
                                         FileBlock logical, u64 count,
                                         block::ExtentMap& map) {
  std::lock_guard lock(mu_);
  const Key key{ctx.inode.v, ctx.stream.key()};
  auto [it, first_extend] = streams_.try_emplace(key);
  StreamState& st = it->second;
  if (first_extend) st.ordinal = stream_count_[ctx.inode.v]++;

  // --- inside the current window: no trigger -----------------------------
  if (st.current.covers(logical, count)) {
    serve_from(st.current, logical, count, map);
    return {};
  }

  // --- pre_alloc_layout ---------------------------------------------------
  if (!first_extend && st.prealloc_on &&
      st.sequential.covers(logical, count)) {
    ++stats_.prealloc_promotions;
    // The retiring current window persists; the sequential window becomes
    // the new current window ("the range presented by the new current
    // window is replaced by the one indicated by original sequential
    // window", §III-B)…
    persist_window(st.current, map);
    st.current = st.sequential;
    st.sequential = {};
    serve_from(st.current, logical, count, map);
    // …and a scale-times larger sequential window is pushed forward.
    st.next_window_blocks = std::min(st.next_window_blocks * tuning_.scale,
                                     tuning_.max_preallocation_blocks);
    reserve_sequential(st, DiskBlock{st.current.disk.v + st.current.len},
                       FileBlock{st.current.file.v + st.current.len},
                       st.next_window_blocks);
    emit(obs::TraceEventType::kPreAllocLayout, ctx.inode, ctx.stream,
         st.current.len, st.sequential.len);
    return {};
  }

  // --- layout_miss ----------------------------------------------------------
  ++stats_.layout_misses;
  emit(obs::TraceEventType::kLayoutMiss, ctx.inode, ctx.stream, logical.v,
       count);
  if (!first_extend) {
    ++st.misses;
    if (st.prealloc_on && st.misses >= tuning_.miss_threshold) {
      // Workload classified random: preallocation off for this stream.
      st.prealloc_on = false;
      ++stats_.prealloc_disabled;
      const u64 released = st.sequential.len;
      release_sequential(st);
      emit(obs::TraceEventType::kStreamDemote, ctx.inode, ctx.stream,
           st.misses, released);
    }
  }

  // The stream abandoned its current window; persist what is left of it.
  persist_window(st.current, map);

  // Allocate the write itself, as contiguously as possible near the last
  // on-disk block of the shared file (§III-A).  Concurrent streams'
  // windows end up leapfrogging each other in one dense area, which keeps
  // inter-region distances short — spreading streams far apart measures
  // worse because cross-region repositioning then always pays a full seek.
  auto last = fill_range(ctx, logical, count, map);
  if (!last) return last.error();

  if (st.prealloc_on) {
    // (Re-)seed the sequential window right past the blocks just written.
    release_sequential(st);
    st.next_window_blocks =
        std::min(count * tuning_.scale, tuning_.max_preallocation_blocks);
    reserve_sequential(st, *last, FileBlock{logical.v + count},
                       st.next_window_blocks);
  }
  return {};
}

void OnDemandAllocator::close_file(InodeNo inode, block::ExtentMap& map) {
  std::lock_guard lock(mu_);
  // Temporary (sequential) reservations die with the close; current-window
  // remainders persist in the map, exactly like fallocate space (§III-C).
  for (auto it = streams_.begin(); it != streams_.end();) {
    if (it->first.inode == inode.v) {
      const u64 released = it->second.sequential.len;
      release_sequential(it->second);
      if (released > 0) {
        emit(obs::TraceEventType::kLazyFree, inode,
             StreamId{static_cast<u32>(it->first.stream >> 32),
                      static_cast<u32>(it->first.stream)},
             released);
      }
      persist_window(it->second.current, map);
      it = streams_.erase(it);
    } else {
      ++it;
    }
  }
}

bool OnDemandAllocator::prealloc_disabled(InodeNo inode,
                                          StreamId stream) const {
  std::lock_guard lock(mu_);
  auto it = streams_.find(Key{inode.v, stream.key()});
  return it != streams_.end() && !it->second.prealloc_on;
}

u64 OnDemandAllocator::sequential_window_blocks(InodeNo inode,
                                                StreamId stream) const {
  std::lock_guard lock(mu_);
  auto it = streams_.find(Key{inode.v, stream.key()});
  return it != streams_.end() ? it->second.sequential.len : 0;
}

u64 OnDemandAllocator::current_window_blocks(InodeNo inode,
                                             StreamId stream) const {
  std::lock_guard lock(mu_);
  auto it = streams_.find(Key{inode.v, stream.key()});
  return it != streams_.end() ? it->second.current.len : 0;
}

}  // namespace mif::alloc
