// Vanilla allocator: no preallocation at all.
//
// Blocks are handed out one at a time from a shared cursor, and — as in a
// real block-at-a-time allocator fed by racing flusher threads — a request's
// blocks interleave with whatever the other in-flight writers are taking.
// We model that race with a small set of allocation "lanes" that requests
// round-robin between: the result is the maximally fragmented placement the
// paper's Fig. 1(a) illustrates and Table I's "Vanilla" row measures (2023
// extents for IOR vs 231 on-demand).
#pragma once

#include <array>

#include "alloc/allocator.hpp"

namespace mif::alloc {

class VanillaAllocator final : public FileAllocator {
 public:
  explicit VanillaAllocator(block::FreeSpace& space);

  AllocatorMode mode() const override { return AllocatorMode::kVanilla; }

 protected:
  Status allocate_fresh(const AllocContext& ctx, FileBlock logical, u64 count,
                        block::ExtentMap& map) override;

 private:
  /// Concurrent flusher threads racing for blocks; each lane is a cursor.
  static constexpr std::size_t kRaceLanes = 2;
  std::array<u64, kRaceLanes> lanes_{};  // guarded by mu_
  std::size_t next_lane_{0};
};

}  // namespace mif::alloc
