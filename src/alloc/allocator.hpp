// File-block allocator strategies.
//
// Four policies behind one interface, matching the paper's evaluation modes:
//   * Vanilla      — no preallocation; every extend grabs blocks wherever the
//                    global cursor sits (Table I "Vanilla").
//   * Reservation  — ext4-style per-INODE reservation window (the baseline
//                    both Lustre and original Redbud use, §I/§II-B).
//   * Static       — fallocate: the whole file is persistently preallocated
//                    up-front, requiring foreknowledge of its size (§I).
//   * OnDemand     — the paper's contribution (§III): per-STREAM current +
//                    sequential windows with layout_miss / pre_alloc_layout
//                    triggers and adaptive window sizing.
//
// An allocator mutates the file's ExtentMap directly: extend() guarantees
// that after it returns, the logical range of the write is mapped to disk
// blocks and marked written.  How contiguous that mapping is — and therefore
// how the file reads back — is entirely the strategy's doing.
#pragma once

#include <memory>
#include <mutex>

#include "block/block_types.hpp"
#include "block/free_space.hpp"
#include "obs/trace.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace mif::alloc {

struct AllocContext {
  InodeNo inode{};
  StreamId stream{};
  FileBlock logical{};
  u64 count{0};  // blocks
};

struct AllocatorStats {
  u64 extends{0};            // extend() calls
  u64 fresh_allocations{0};  // calls into the free-space manager
  u64 allocated_blocks{0};
  u64 layout_misses{0};      // on-demand trigger (or window resets elsewhere)
  u64 prealloc_promotions{0};// pre_alloc_layout hits
  u64 reserved_blocks{0};    // currently temporarily reserved (seq windows)
  u64 released_blocks{0};    // unwritten blocks given back (close/trim)
  u64 prealloc_disabled{0};  // streams demoted to no-prealloc (miss threshold)
};

enum class AllocatorMode { kVanilla, kReservation, kStatic, kOnDemand };
std::string_view to_string(AllocatorMode m);

class FileAllocator {
 public:
  explicit FileAllocator(block::FreeSpace& space) : space_(space) {}
  virtual ~FileAllocator() = default;

  FileAllocator(const FileAllocator&) = delete;
  FileAllocator& operator=(const FileAllocator&) = delete;

  /// Ensure [ctx.logical, ctx.logical + ctx.count) is mapped and written in
  /// `map`.  Thread-safe: strategies lock their private state; the
  /// underlying groups lock themselves.  The caller serialises access to any
  /// single file's `map` (the OSD holds a per-file lock).
  Status extend(const AllocContext& ctx, block::ExtentMap& map);

  /// fallocate-style persistent preallocation of [0, total_blocks).
  /// Only meaningful for kStatic; others return kInvalid.
  virtual Status preallocate(InodeNo inode, block::ExtentMap& map,
                             u64 total_blocks);

  /// Release temporary reservations held on behalf of this file and trim
  /// never-written preallocated tails.  Called on last close.
  virtual void close_file(InodeNo inode, block::ExtentMap& map);

  /// Return every block of the file (mapped or reserved) to free space.
  void delete_file(InodeNo inode, block::ExtentMap& map);

  virtual AllocatorStats stats() const;
  block::FreeSpace& space() { return space_; }
  virtual AllocatorMode mode() const = 0;

  /// Attach a trace sink for state-machine events (layout_miss,
  /// pre_alloc_layout, demotion, lazy free).  nullptr (the default)
  /// disables tracing; the write path then pays a single branch.
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }
  obs::TraceBuffer* trace() const { return trace_; }

 protected:
  /// Strategy hook: map the currently-unmapped logical hole
  /// [logical, logical+count) for this stream.  Must insert written extents.
  virtual Status allocate_fresh(const AllocContext& ctx, FileBlock logical,
                                u64 count, block::ExtentMap& map) = 0;

  /// Allocate possibly-scattered runs near `goal` and insert them as written
  /// extents starting at `logical`.  Shared fallback for every strategy.
  Status allocate_near(DiskBlock goal, FileBlock logical, u64 count,
                       block::ExtentMap& map);

  /// Reasonable allocation goal for a file: just past its last mapped block,
  /// or a per-inode home group when the file is empty.
  DiskBlock goal_for(InodeNo inode, const block::ExtentMap& map) const;

  /// Record an event if a trace sink is attached.
  void emit(obs::TraceEventType t, InodeNo inode, StreamId stream,
            u64 arg0 = 0, u64 arg1 = 0) {
    if (trace_) trace_->record(t, inode, stream, arg0, arg1);
  }

  block::FreeSpace& space_;
  // Recursive: strategy hooks run under the lock and may call shared helpers
  // (allocate_near) that also account stats under it.
  mutable std::recursive_mutex mu_;
  AllocatorStats stats_;
  obs::TraceBuffer* trace_{nullptr};
};

/// Factory used by the storage target.
struct AllocatorTuning {
  // Reservation strategy.
  u64 reservation_blocks{64};  // 256 KiB, near the ext4 default window
  // On-demand strategy (§III-C).
  u64 scale{2};                       // window growth factor (2 or 4)
  u64 max_preallocation_blocks{2048}; // 8 MiB cap, "tunable"
  u32 miss_threshold{4};              // misses before a stream is "random"
};

std::unique_ptr<FileAllocator> make_allocator(AllocatorMode mode,
                                              block::FreeSpace& space,
                                              AllocatorTuning tuning = {});

}  // namespace mif::alloc
