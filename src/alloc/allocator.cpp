#include "alloc/allocator.hpp"

#include <algorithm>

#include "alloc/ondemand.hpp"
#include "alloc/reservation.hpp"
#include "alloc/static_prealloc.hpp"
#include "alloc/vanilla.hpp"

namespace mif::alloc {

std::string_view to_string(AllocatorMode m) {
  switch (m) {
    case AllocatorMode::kVanilla: return "vanilla";
    case AllocatorMode::kReservation: return "reservation";
    case AllocatorMode::kStatic: return "static";
    case AllocatorMode::kOnDemand: return "on-demand";
  }
  return "?";
}

Status FileAllocator::extend(const AllocContext& ctx, block::ExtentMap& map) {
  if (ctx.count == 0) return Errc::kInvalid;
  {
    std::lock_guard lock(mu_);
    ++stats_.extends;
  }

  // Decompose the write into already-mapped pieces (mark written) and holes
  // (delegate to the strategy).
  u64 pos = ctx.logical.v;
  const u64 end = pos + ctx.count;
  while (pos < end) {
    if (auto e = map.lookup(FileBlock{pos})) {
      const u64 run = std::min(end, e->file_end()) - pos;
      if (e->flags & block::kExtentUnwritten) map.mark_written(FileBlock{pos}, run);
      pos += run;
      continue;
    }
    // Hole: find where it ends (next mapped extent or write end).
    u64 hole_end = end;
    for (const auto& e : map.extents()) {
      if (e.file_off.v > pos) {
        hole_end = std::min(hole_end, e.file_off.v);
        break;
      }
    }
    if (Status s = allocate_fresh(ctx, FileBlock{pos}, hole_end - pos, map); !s)
      return s;
    pos = hole_end;
  }
  return {};
}

Status FileAllocator::preallocate(InodeNo, block::ExtentMap&, u64) {
  return Errc::kInvalid;
}

void FileAllocator::close_file(InodeNo, block::ExtentMap&) {}

void FileAllocator::delete_file(InodeNo inode, block::ExtentMap& map) {
  close_file(inode, map);
  for (const block::Extent& e : map.extents()) {
    (void)space_.free_range({e.disk_off, e.length});
  }
  map = block::ExtentMap{};
}

AllocatorStats FileAllocator::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

Status FileAllocator::allocate_near(DiskBlock goal, FileBlock logical,
                                    u64 count, block::ExtentMap& map) {
  auto runs = space_.allocate_scattered(goal, count);
  if (!runs) return runs.error();
  u64 at = logical.v;
  for (const block::BlockRange& r : *runs) {
    map.insert({FileBlock{at}, r.start, r.length, block::kExtentNone});
    at += r.length;
  }
  std::lock_guard lock(mu_);
  ++stats_.fresh_allocations;
  stats_.allocated_blocks += count;
  return {};
}

DiskBlock FileAllocator::goal_for(InodeNo inode,
                                  const block::ExtentMap& map) const {
  if (!map.empty()) {
    const block::Extent& last = map.extents().back();
    return DiskBlock{last.disk_end()};
  }
  // Empty file: spread inodes across groups so independent files do not all
  // pile onto group 0 (the classic cylinder-group heuristic).
  const u32 g = static_cast<u32>(inode.v % space_.group_count());
  return space_.group(g).base();
}

std::unique_ptr<FileAllocator> make_allocator(AllocatorMode mode,
                                              block::FreeSpace& space,
                                              AllocatorTuning tuning) {
  switch (mode) {
    case AllocatorMode::kVanilla:
      return std::make_unique<VanillaAllocator>(space);
    case AllocatorMode::kReservation:
      return std::make_unique<ReservationAllocator>(space, tuning);
    case AllocatorMode::kStatic:
      return std::make_unique<StaticAllocator>(space, tuning);
    case AllocatorMode::kOnDemand:
      return std::make_unique<OnDemandAllocator>(space, tuning);
  }
  return nullptr;
}

}  // namespace mif::alloc
