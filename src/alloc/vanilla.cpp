#include "alloc/vanilla.hpp"

#include <algorithm>

namespace mif::alloc {

VanillaAllocator::VanillaAllocator(block::FreeSpace& space)
    : FileAllocator(space) {
  // Without per-file reservation the goal heuristic degrades under
  // concurrency and allocations spread across block groups; each lane
  // cursor starts in its own region of the device.
  const u32 groups = space.group_count();
  for (std::size_t i = 0; i < kRaceLanes; ++i) {
    const u32 g = static_cast<u32>(i * groups / kRaceLanes);
    lanes_[i] = space.group(g).base().v;
  }
}

Status VanillaAllocator::allocate_fresh(const AllocContext&, FileBlock logical,
                                        u64 count, block::ExtentMap& map) {
  std::lock_guard lock(mu_);
  // Block-group ping-pong at small granularity: a request's blocks come in
  // small chunks from alternating lanes, the way racing flusher threads
  // split an unreserved allocation.
  constexpr u64 kChunk = 4;
  u64 placed = 0;
  while (placed < count) {
    const u64 want = std::min(kChunk, count - placed);
    u64& cursor = lanes_[next_lane_];
    next_lane_ = (next_lane_ + 1) % kRaceLanes;
    auto run = space_.allocate_best(DiskBlock{cursor}, 1, want);
    if (!run) return Errc::kNoSpace;
    map.insert({FileBlock{logical.v + placed}, run->start, run->length,
                block::kExtentNone});
    cursor = run->end();
    placed += run->length;
    ++stats_.fresh_allocations;
    stats_.allocated_blocks += run->length;
  }
  return {};
}

}  // namespace mif::alloc
