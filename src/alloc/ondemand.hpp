// On-demand preallocation — the paper's primary contribution (§III).
//
// The allocator tracks every (file, stream) pair extending a shared file and
// keeps the paper's two windows per stream, each a (disk block, file logic
// block, length) triple:
//
//   current window    — blocks persistently preallocated to the stream.
//                       Writes that land inside it are served straight from
//                       the window ("neither layout_miss nor
//                       pre_alloc_layout", Fig. 3 T3).  Its unused remainder
//                       is persisted into the file map as unwritten extents
//                       when the window is replaced or the file closes —
//                       "preallocated blocks in the current window are
//                       persistent across system reboot" (§III-C).
//   sequential window — blocks temporarily reserved in the free-space bitmap
//                       only; other streams cannot allocate them, but they
//                       belong to no file yet.
//
// Triggers (Fig. 2):
//   layout_miss       — write outside both windows, or the stream's first
//                       extend.  Allocates the write, re-seeds a sequential
//                       window, and counts a miss; at `miss_threshold` the
//                       stream is classified random and preallocation is
//                       switched off for it ("turned off immediately").
//   pre_alloc_layout  — write lands inside the sequential window with the
//                       stream still in good standing.  The sequential
//                       window is promoted to current window and a new one
//                       `scale`× larger (capped) is reserved just past it.
//
// Window sizing (§III-C): first window = write_size × scale (scale ∈ {2,4}),
// then exponential ramp, clamped to max_preallocation_blocks.
#pragma once

#include <unordered_map>

#include "alloc/allocator.hpp"

namespace mif::alloc {

class OnDemandAllocator final : public FileAllocator {
 public:
  OnDemandAllocator(block::FreeSpace& space, AllocatorTuning tuning);
  ~OnDemandAllocator() override;

  AllocatorMode mode() const override { return AllocatorMode::kOnDemand; }

  void close_file(InodeNo inode, block::ExtentMap& map) override;

  /// True if the given stream has been demoted to no-preallocation (its
  /// workload was classified random).  Test/diagnostic hook.
  bool prealloc_disabled(InodeNo inode, StreamId stream) const;

  /// Current sequential-window length in blocks for a stream (0 = none).
  u64 sequential_window_blocks(InodeNo inode, StreamId stream) const;

  /// Current-window length in blocks for a stream (0 = none).
  u64 current_window_blocks(InodeNo inode, StreamId stream) const;

 protected:
  Status allocate_fresh(const AllocContext& ctx, FileBlock logical, u64 count,
                        block::ExtentMap& map) override;

 private:
  struct Window {
    DiskBlock disk{};
    FileBlock file{};
    u64 len{0};
    bool valid() const { return len > 0; }
    bool covers(FileBlock b, u64 n) const {
      return valid() && b.v >= file.v && b.v + n <= file.v + len;
    }
    DiskBlock map_block(FileBlock b) const {
      return DiskBlock{disk.v + (b.v - file.v)};
    }
  };

  struct StreamState {
    Window current{};
    Window sequential{};
    u32 misses{0};
    bool prealloc_on{true};
    u64 next_window_blocks{0};  // size of the next sequential window
    u32 ordinal{0};             // arrival rank of this stream on this file
  };

  struct Key {
    u64 inode;
    u64 stream;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<u64>{}(k.inode * 0x9e3779b97f4a7c15ULL ^ k.stream);
    }
  };

  /// Insert a written extent for [logical, logical+count) served from the
  /// window's reservation.
  void serve_from(const Window& w, FileBlock logical, u64 count,
                  block::ExtentMap& map);

  /// Persist a retiring current window: its still-unmapped file ranges
  /// become unwritten extents; ranges another stream claimed meanwhile have
  /// their reserved disk blocks freed.
  void persist_window(Window& w, block::ExtentMap& map);

  void release_sequential(StreamState& st);

  /// Reserve a sequential window of ~`want` blocks starting at logical
  /// `file_pos`, physically as close to `goal` as possible.
  void reserve_sequential(StreamState& st, DiskBlock goal, FileBlock file_pos,
                          u64 want);

  /// Map-and-write the (possibly partially mapped, post-persist) range.
  /// Returns the disk block just past the last allocation, for window goals.
  Result<DiskBlock> fill_range(const AllocContext& ctx, FileBlock logical,
                               u64 count, block::ExtentMap& map);

  AllocatorTuning tuning_;
  std::unordered_map<Key, StreamState, KeyHash> streams_;  // guarded by mu_
  std::unordered_map<u64, u32> stream_count_;  // inode -> streams seen
};

}  // namespace mif::alloc
