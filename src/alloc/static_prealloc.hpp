// Static allocator: fallocate-style whole-file persistent preallocation (§I).
//
// "Recent efforts in file systems provide the fallocate syscall which
// persistently allocates all blocks for the file.  Nevertheless, it requires
// an application to have sufficient foreknowledge of how much space the file
// will need."  This is the paper's upper bound in Fig. 6: data is perfectly
// contiguous, but only because the benchmark told the FS the final size.
// Writes beyond (or without) a preallocation degrade to reservation
// behaviour.
#pragma once

#include "alloc/reservation.hpp"

namespace mif::alloc {

class StaticAllocator final : public FileAllocator {
 public:
  StaticAllocator(block::FreeSpace& space, AllocatorTuning tuning);

  AllocatorMode mode() const override { return AllocatorMode::kStatic; }

  /// fallocate: map [0, total_blocks) as one (or as few as possible)
  /// unwritten extents.  Idempotent for already-mapped prefixes.
  Status preallocate(InodeNo inode, block::ExtentMap& map,
                     u64 total_blocks) override;

  void close_file(InodeNo inode, block::ExtentMap& map) override;

  /// Includes the fallback reservation allocator's counters (its windows
  /// hold real blocks that space accounting must see).
  AllocatorStats stats() const override;

 protected:
  Status allocate_fresh(const AllocContext& ctx, FileBlock logical, u64 count,
                        block::ExtentMap& map) override;

 private:
  ReservationAllocator fallback_;
};

}  // namespace mif::alloc
