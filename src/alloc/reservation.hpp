// Reservation allocator: the ext4/GPFS-style per-INODE window (§I, §II-B).
//
// "For every file that is being extended, the allocator reserves a range of
// on-disk blocks near the last non-hole block of the file.  Blocks needed by
// subsequent write operations for that inode are allocated from that range."
//
// The deliberate flaw the paper attacks: the window belongs to the *inode*,
// so when many streams extend one shared file, their blocks are carved from
// the same window in ARRIVAL order — inter-file fragmentation is fixed,
// intra-file fragmentation is not (Fig. 1(a)).
#pragma once

#include <unordered_map>

#include "alloc/allocator.hpp"

namespace mif::alloc {

class ReservationAllocator final : public FileAllocator {
 public:
  ReservationAllocator(block::FreeSpace& space, AllocatorTuning tuning);
  ~ReservationAllocator() override;

  AllocatorMode mode() const override { return AllocatorMode::kReservation; }
  void close_file(InodeNo inode, block::ExtentMap& map) override;

 protected:
  Status allocate_fresh(const AllocContext& ctx, FileBlock logical, u64 count,
                        block::ExtentMap& map) override;

 private:
  struct Window {
    DiskBlock next{};   // next free block inside the reservation
    u64 remaining{0};   // blocks left
  };

  /// Discard the remainder of an inode's window (blocks go back to free
  /// space — reservations are NOT persistent, unlike on-demand's current
  /// window).
  void discard_window(Window& w);

  AllocatorTuning tuning_;
  std::unordered_map<InodeNo, Window> windows_;  // guarded by mu_
};

}  // namespace mif::alloc
