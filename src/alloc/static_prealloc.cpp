#include "alloc/static_prealloc.hpp"

namespace mif::alloc {

StaticAllocator::StaticAllocator(block::FreeSpace& space,
                                 AllocatorTuning tuning)
    : FileAllocator(space), fallback_(space, tuning) {}

Status StaticAllocator::preallocate(InodeNo inode, block::ExtentMap& map,
                                    u64 total_blocks) {
  const u64 have = map.logical_end();
  if (total_blocks <= have) return {};
  u64 at = have;
  u64 remaining = total_blocks - have;
  while (remaining > 0) {
    auto run = space_.allocate_best(goal_for(inode, map), 1, remaining);
    if (!run) return Errc::kNoSpace;
    map.insert(
        {FileBlock{at}, run->start, run->length, block::kExtentUnwritten});
    at += run->length;
    remaining -= run->length;
    std::lock_guard lock(mu_);
    ++stats_.fresh_allocations;
    stats_.allocated_blocks += run->length;
  }
  return {};
}

Status StaticAllocator::allocate_fresh(const AllocContext& ctx,
                                       FileBlock logical, u64 count,
                                       block::ExtentMap& map) {
  // A write past the preallocated region (the application's foreknowledge
  // was wrong): behave like the reservation baseline from here on.
  std::lock_guard lock(mu_);
  ++stats_.layout_misses;
  AllocContext sub = ctx;
  sub.logical = logical;
  sub.count = count;
  return fallback_.extend(sub, map);
}

AllocatorStats StaticAllocator::stats() const {
  AllocatorStats s = FileAllocator::stats();
  const AllocatorStats f = fallback_.stats();
  s.extends += f.extends;
  s.fresh_allocations += f.fresh_allocations;
  s.allocated_blocks += f.allocated_blocks;
  s.reserved_blocks += f.reserved_blocks;
  s.released_blocks += f.released_blocks;
  return s;
}

void StaticAllocator::close_file(InodeNo inode, block::ExtentMap& map) {
  // fallocate'd space is persistent: keep unwritten extents, only release
  // any fallback reservation window.
  fallback_.close_file(inode, map);
}

}  // namespace mif::alloc
