#include "alloc/reservation.hpp"

#include <algorithm>

namespace mif::alloc {

ReservationAllocator::ReservationAllocator(block::FreeSpace& space,
                                           AllocatorTuning tuning)
    : FileAllocator(space), tuning_(tuning) {}

ReservationAllocator::~ReservationAllocator() {
  for (auto& [inode, w] : windows_) discard_window(w);
}

void ReservationAllocator::discard_window(Window& w) {
  if (w.remaining > 0) {
    (void)space_.free_range({w.next, w.remaining});
    stats_.released_blocks += w.remaining;
    stats_.reserved_blocks -= w.remaining;
    w.remaining = 0;
  }
}

void ReservationAllocator::close_file(InodeNo inode, block::ExtentMap&) {
  std::lock_guard lock(mu_);
  if (auto it = windows_.find(inode); it != windows_.end()) {
    discard_window(it->second);
    windows_.erase(it);
  }
}

Status ReservationAllocator::allocate_fresh(const AllocContext& ctx,
                                            FileBlock logical, u64 count,
                                            block::ExtentMap& map) {
  std::lock_guard lock(mu_);
  Window& w = windows_[ctx.inode];

  u64 at = logical.v;
  u64 remaining = count;
  while (remaining > 0) {
    if (w.remaining == 0) {
      // Refill the per-inode window near the file's last non-hole block.
      const u64 want = std::max(tuning_.reservation_blocks, remaining);
      auto run = space_.allocate_best(goal_for(ctx.inode, map), remaining,
                                      want);
      if (!run) {
        // Fall back to scattered allocation of what is left.
        return allocate_near(goal_for(ctx.inode, map), FileBlock{at},
                             remaining, map);
      }
      w.next = run->start;
      w.remaining = run->length;
      ++stats_.fresh_allocations;
      stats_.allocated_blocks += run->length;
      stats_.reserved_blocks += run->length;
    }
    const u64 take = std::min(w.remaining, remaining);
    stats_.reserved_blocks -= take;
    map.insert({FileBlock{at}, w.next, take, block::kExtentNone});
    w.next.v += take;
    w.remaining -= take;
    at += take;
    remaining -= take;
  }
  return {};
}

}  // namespace mif::alloc
