#include "redundancy/repair.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "obs/attrib.hpp"
#include "obs/span.hpp"
#include "osd/storage_target.hpp"
#include "rpc/client.hpp"

namespace mif::redundancy {

namespace {

/// A subfile's logical block runs: extents sorted by file offset, adjacent
/// runs merged (physical placement is irrelevant here — repair replays
/// logical content, the replacement allocator chooses fresh placement).
std::vector<BlockRun> logical_runs(const osd::StorageTarget& t, InodeNo ino) {
  std::vector<BlockRun> runs;
  for (const block::Extent& e : t.extents(ino)) {
    runs.push_back(BlockRun{e.file_off, e.length});
  }
  std::sort(runs.begin(), runs.end(), [](const BlockRun& a, const BlockRun& b) {
    return a.start.v < b.start.v;
  });
  std::vector<BlockRun> merged;
  for (const BlockRun& r : runs) {
    if (!merged.empty() &&
        r.start.v <= merged.back().start.v + merged.back().count) {
      const u64 end = std::max(merged.back().start.v + merged.back().count,
                               r.start.v + r.count);
      merged.back().count = end - merged.back().start.v;
    } else {
      merged.push_back(r);
    }
  }
  return merged;
}

/// Sorted-disjoint interval union.
std::vector<BlockRun> union_runs(std::vector<BlockRun> a,
                                 const std::vector<BlockRun>& b) {
  a.insert(a.end(), b.begin(), b.end());
  std::sort(a.begin(), a.end(), [](const BlockRun& x, const BlockRun& y) {
    return x.start.v < y.start.v;
  });
  std::vector<BlockRun> out;
  for (const BlockRun& r : a) {
    if (r.count == 0) continue;
    if (!out.empty() && r.start.v <= out.back().start.v + out.back().count) {
      const u64 end =
          std::max(out.back().start.v + out.back().count, r.start.v + r.count);
      out.back().count = end - out.back().start.v;
    } else {
      out.push_back(r);
    }
  }
  return out;
}

/// Runs of `need` not covered by `have` (both sorted and disjoint).
std::vector<BlockRun> subtract_runs(const std::vector<BlockRun>& need,
                                    const std::vector<BlockRun>& have) {
  std::vector<BlockRun> out;
  std::size_t j = 0;
  for (const BlockRun& n : need) {
    u64 cur = n.start.v;
    const u64 end = n.start.v + n.count;
    while (cur < end) {
      while (j < have.size() && have[j].start.v + have[j].count <= cur) ++j;
      if (j == have.size() || have[j].start.v >= end) {
        out.push_back(BlockRun{FileBlock{cur}, end - cur});
        cur = end;
      } else if (have[j].start.v > cur) {
        out.push_back(BlockRun{FileBlock{cur}, have[j].start.v - cur});
        cur = have[j].start.v;
      } else {
        cur = have[j].start.v + have[j].count;
      }
    }
  }
  return out;
}

/// Overlap of two sorted-disjoint run lists.
std::vector<BlockRun> intersect_runs(const std::vector<BlockRun>& a,
                                     const std::vector<BlockRun>& b) {
  std::vector<BlockRun> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const u64 lo = std::max(a[i].start.v, b[j].start.v);
    const u64 hi =
        std::min(a[i].start.v + a[i].count, b[j].start.v + b[j].count);
    if (lo < hi) out.push_back(BlockRun{FileBlock{lo}, hi - lo});
    if (a[i].start.v + a[i].count < b[j].start.v + b[j].count) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

u64 run_blocks(const std::vector<BlockRun>& runs) {
  u64 n = 0;
  for (const BlockRun& r : runs) n += r.count;
  return n;
}

}  // namespace

RepairService::RepairService(osd::StripeLayout stripe, Policy policy,
                             HealthMap& health,
                             std::vector<osd::StorageTarget*> targets,
                             rpc::Client& rpc, RepairConfig cfg)
    : stripe_(stripe),
      policy_(policy),
      health_(health),
      targets_(std::move(targets)),
      rpc_(rpc),
      cfg_(cfg),
      bucket_(cfg_.rate_bytes_per_ms, cfg_.burst_bytes) {}

void RepairService::request(u32 target) {
  if (target >= targets_.size()) return;
  for (const Job& j : queue_) {
    if (j.target == target) return;
  }
  queue_.push_back(Job{target});
  ++stats_.requested;
}

void RepairService::drain() {
  // Bounded by the pass cap inside pump_some: a job that cannot converge
  // (persistent faults) is abandoned rather than spinning the unmount.
  while (pending()) {
    if (!pump_some(true)) break;
  }
}

std::vector<u64> RepairService::survivor_inos(u32 dead) const {
  // Primaries any target still knows about — including the wiped target's
  // zero-extent shells (a file whose every primary unit lived on `dead` is
  // still discoverable through its replica subfiles elsewhere, and
  // primary_ino() folds those tags away).
  std::set<u64> inos;
  for (std::size_t t = 0; t < targets_.size(); ++t) {
    if (t != dead && !health_.alive(static_cast<u32>(t))) continue;
    targets_[t]->for_each_file(
        [&inos](InodeNo ino) { inos.insert(primary_ino(ino).v); });
  }
  return {inos.begin(), inos.end()};
}

long long RepairService::rebuild_subfile(
    u32 dead, InodeNo dst_ino,
    const std::vector<std::pair<u32, InodeNo>>& sources) {
  // What the subfile should hold = the union of every surviving copy.
  std::vector<BlockRun> need;
  std::vector<std::vector<BlockRun>> source_runs;
  source_runs.reserve(sources.size());
  for (const auto& [t, ino] : sources) {
    source_runs.push_back(logical_runs(*targets_[t], ino));
    need = union_runs(std::move(need), source_runs.back());
  }
  std::vector<BlockRun> missing =
      subtract_runs(need, logical_runs(*targets_[dead], dst_ino));
  if (missing.empty()) return 0;

  obs::ScopedSpan span(spans_, "repair.rebuild", dst_ino.v,
                       run_blocks(missing));
  long long written = 0;
  for (std::size_t s = 0; s < sources.size() && !missing.empty(); ++s) {
    const auto take = intersect_runs(missing, source_runs[s]);
    if (take.empty()) continue;
    const auto& [src_t, src_ino] = sources[s];
    for (std::size_t at = 0; at < take.size();
         at += cfg_.max_runs_per_envelope) {
      const std::size_t n =
          std::min<std::size_t>(cfg_.max_runs_per_envelope, take.size() - at);
      std::vector<BlockRun> chunk{take.begin() + at, take.begin() + at + n};
      // Gather from the survivor, then replay onto the replacement — both
      // as list-I/O envelopes through the full transport chain, so repair
      // traffic is priced (network + disk) like any other I/O.
      if (Status st = rpc_.read_list(src_t, src_ino, chunk); !st) {
        // Mid-repair fault: roll the torn subfile back and retry the whole
        // file at the next pump.
        (void)rpc_.delete_file(dead, dst_ino);
        return -1;
      }
      if (Status st = rpc_.write_list(dead, dst_ino, StreamId{0, 0},
                                      std::move(chunk));
          !st) {
        (void)rpc_.delete_file(dead, dst_ino);
        return -1;
      }
      for (std::size_t k = 0; k < n; ++k) ++stats_.extents_rebuilt;
    }
    written += static_cast<long long>(run_blocks(take));
    missing = subtract_runs(missing, take);
  }
  if (!missing.empty()) ++stats_.unrecoverable;
  if (written > 0) {
    ++stats_.files_rebuilt;
    stats_.blocks_rebuilt += static_cast<u64>(written);
    stats_.bytes_rebuilt += static_cast<u64>(written) * kBlockSize;
  }
  return written;
}

long long RepairService::rebuild_file(u32 dead, InodeNo ino) {
  long long total = 0;
  // 1. The primary subfile `dead` lost: its stripe units survive as copy c
  //    in replica subfiles on (dead + c) % W.
  std::vector<std::pair<u32, InodeNo>> sources;
  for (u32 c = 1; c <= policy_.copies(); ++c) {
    const u32 t = copy_target(stripe_, dead, c);
    if (t != dead && health_.alive(t)) {
      sources.emplace_back(t, replica_ino(ino, c));
    }
  }
  long long n = rebuild_subfile(dead, ino, sources);
  if (n < 0) return n;
  total += n;

  // 2. The replica subfiles `dead` hosted: copy c on `dead` backs the
  //    primary on (dead + W - c) % W — re-read that primary (or, if it is
  //    also gone, one of its other copies).
  for (u32 c = 1; c <= policy_.copies(); ++c) {
    const u32 p = (dead + stripe_.width - (c % stripe_.width)) % stripe_.width;
    if (p == dead) continue;
    sources.clear();
    if (health_.alive(p)) sources.emplace_back(p, ino);
    for (u32 c2 = 1; c2 <= policy_.copies(); ++c2) {
      const u32 t2 = copy_target(stripe_, p, c2);
      if (t2 != dead && t2 != p && health_.alive(t2)) {
        sources.emplace_back(t2, replica_ino(ino, c2));
      }
    }
    long long m = rebuild_subfile(dead, replica_ino(ino, c), sources);
    if (m < 0) return m;
    total += m;
  }
  return total;
}

bool RepairService::pump_some(bool unthrottled) {
  if (queue_.empty()) return false;
  // The reserved background principal: every millisecond repair costs is
  // charged to {client 0, kBackground}, keeping attribution conservation
  // exact and client-facing Jain fairness untouched.
  obs::ScopedPrincipal who{obs::Principal{}};
  Job& job = queue_.front();
  obs::ScopedSpan pass(spans_, "repair.pass", job.target);
  if (!job.enumerated) {
    job.work = survivor_inos(job.target);
    std::reverse(job.work.begin(), job.work.end());  // pop_back ascends
    job.enumerated = true;
    job.pass_blocks = 0;
    job.pass_failures = 0;
  }
  bool progressed = false;
  u32 visited = 0;
  while (!job.work.empty() && visited < cfg_.files_per_pump) {
    if (!unthrottled && cfg_.rate_bytes_per_ms > 0.0) {
      bucket_.refill(clock_ ? clock_() : 0.0);
      if (bucket_.tokens() <= 0.0) break;  // budget spent; next safe point
    }
    const InodeNo ino{job.work.back()};
    job.work.pop_back();
    ++visited;
    const long long n = rebuild_file(job.target, ino);
    if (n < 0) {
      ++job.pass_failures;
      ++stats_.rollbacks;
      progressed = true;
      continue;
    }
    if (n > 0) {
      job.pass_blocks += static_cast<u64>(n);
      progressed = true;
      if (!unthrottled && cfg_.rate_bytes_per_ms > 0.0) {
        (void)bucket_.try_consume(static_cast<u64>(n) * kBlockSize);
      }
    }
  }
  if (job.work.empty()) {
    ++job.passes;
    if (job.pass_blocks == 0 && job.pass_failures == 0) {
      // A clean full verification pass: every subfile matches its surviving
      // copies.  Revive the target and stamp the rebuild's finish time on
      // the simulated timeline.
      health_.mark_alive(job.target);
      ++stats_.completed;
      stats_.completed_at_ms = clock_ ? clock_() : 0.0;
      queue_.pop_front();
      progressed = true;
    } else if (job.passes >= kMaxPasses) {
      // Cannot converge (persistent fault): abandon the rebuild and leave
      // the target dead — the degraded paths keep serving.
      ++stats_.unrecoverable;
      queue_.pop_front();
    } else {
      job.enumerated = false;  // re-enumerate: verification pass next
    }
  }
  if (progressed) ++stats_.rounds;
  return progressed;
}

}  // namespace mif::redundancy
