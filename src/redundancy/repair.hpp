// Online rebuild of a killed storage target from its surviving replicas.
//
// Driven at safe points on the simulated clock — the same hook discipline
// as the flight recorder: core::ParallelFileSystem pumps the service from
// tick_timeline() (workload loop boundaries) and loops it to completion in
// drain_data() (phase/unmount boundary), never from threaded data-path
// internals.  Each pump rebuilds a bounded number of files, so foreground
// traffic keeps flowing between pumps and the timeline gauges show the
// rebuild ramp.
//
// What a rebuild does, for dead target d of width W with R-way replication:
//   * d's primary subfiles: the data survives as replica copies c on
//     targets (d+c)%W, whose extents' logical runs ARE d's local addresses
//     (the invariant redundancy.hpp establishes).  Read them from the first
//     surviving copy via list-I/O, write them back to d's primary subfile.
//   * d's replica subfiles: copy c on d backs the primary on (d+W-c)%W;
//     re-read that primary's extents and replay them into replica_ino.
// Missing-run computation subtracts what d already holds, so repair is
// idempotent and converges while foreground writes keep landing.  The
// replacement disk is freshly formatted, and the missing runs are written
// in sorted, merged order — the allocator lays them out contiguously, so
// repair DE-fragments rather than re-fragments (the Sears/van Ingen
// regression the issue calls out).
//
// Every envelope the service issues runs under the reserved background
// principal (the system principal {client 0, kBackground}), so the
// attribution ledger's conservation invariant and Jain's fairness over
// client principals hold unchanged.  Between safe points the service is
// throttled by the same token-bucket machinery QoS uses (rpc::TokenBucket
// on the cluster-max simulated clock); drain() bypasses the throttle — at
// an unmount barrier there is no foreground left to protect, and a bucket
// that only refills when disks advance would otherwise deadlock the drain.
//
// A mid-repair fault rolls the victim file back: the partially written
// subfile is deleted from the replacement target and the file is retried at
// the next pump, so a transient fault window never leaves a torn rebuild.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "redundancy/redundancy.hpp"
#include "rpc/qos.hpp"

namespace mif::obs {
class SpanCollector;
}
namespace mif::osd {
class StorageTarget;
}
namespace mif::rpc {
class Client;
}

namespace mif::redundancy {

struct RepairConfig {
  /// Runs per kWriteList/kReadList envelope (list-I/O chunking).
  u64 max_runs_per_envelope{64};
  /// Files rebuilt per pump() — the online-granularity knob.
  u32 files_per_pump{4};
  /// Token-bucket throttle on rebuilt bytes per simulated ms (0 = none).
  double rate_bytes_per_ms{0.0};
  u64 burst_bytes{u64{1} << 22};
};

struct RepairStats {
  u64 requested{0};        // kill events queued for rebuild
  u64 completed{0};        // targets fully rebuilt and revived
  u64 files_rebuilt{0};    // subfiles that received at least one run
  u64 extents_rebuilt{0};  // source extents replayed
  u64 blocks_rebuilt{0};
  u64 bytes_rebuilt{0};
  u64 rounds{0};           // pump passes that made progress
  u64 rollbacks{0};        // files rolled back after a mid-repair fault
  u64 unrecoverable{0};    // files with runs no surviving copy holds
  double completed_at_ms{-1.0};  // sim time the last rebuild finished
};

class RepairService {
 public:
  RepairService(osd::StripeLayout stripe, Policy policy, HealthMap& health,
                std::vector<osd::StorageTarget*> targets, rpc::Client& rpc,
                RepairConfig cfg = {});

  void set_spans(obs::SpanCollector* spans) { spans_ = spans; }
  /// Simulated clock for throttling and the completion stamp (cluster-max,
  /// wired at mount).
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }

  /// Queue target `t` for rebuild (the kill sink calls this after wiping).
  void request(u32 target);

  bool pending() const { return !queue_.empty(); }
  /// Dead targets still queued (timeline gauge).
  u64 backlog() const { return queue_.size(); }

  /// Rebuild up to files_per_pump subfiles of the front target, respecting
  /// the throttle; marks the target alive once a full verification pass
  /// finds nothing missing.  Returns true when any progress was made.
  bool pump() { return pump_some(false); }
  /// Run every queued rebuild to completion (unmount/phase barrier;
  /// bypasses the throttle).
  void drain();

  const RepairStats& stats() const { return stats_; }

 private:
  struct Job {
    u32 target{0};
    /// Primary inos still to visit this pass (sorted, high to low so
    /// pop_back walks ascending).
    std::vector<u64> work;
    bool enumerated{false};
    /// Blocks rebuilt in the current pass; a clean full pass completes the
    /// job.
    u64 pass_blocks{0};
    u64 pass_failures{0};
    /// Full passes taken; a job that cannot converge is abandoned.
    u32 passes{0};
  };

  /// Full-pass cap before a rebuild is abandoned (persistent faults).
  static constexpr u32 kMaxPasses = 64;

  bool pump_some(bool unthrottled);
  /// All primary inos any surviving target knows about (sorted).
  std::vector<u64> survivor_inos(u32 dead) const;
  /// Rebuild both the primary and the replica subfiles file `ino` keeps on
  /// `dead`.  Returns blocks written, or a negative count on rollback.
  long long rebuild_file(u32 dead, InodeNo ino);
  /// Rebuild one subfile (`dst_ino` on `dead`) from candidate sources
  /// ({target, ino} pairs holding the same logical runs).
  long long rebuild_subfile(
      u32 dead, InodeNo dst_ino,
      const std::vector<std::pair<u32, InodeNo>>& sources);

  osd::StripeLayout stripe_;
  Policy policy_;
  HealthMap& health_;
  std::vector<osd::StorageTarget*> targets_;
  rpc::Client& rpc_;
  RepairConfig cfg_;
  obs::SpanCollector* spans_{nullptr};
  std::function<double()> clock_;
  rpc::TokenBucket bucket_;
  std::deque<Job> queue_;
  RepairStats stats_;
};

}  // namespace mif::redundancy
