#include "redundancy/redundancy.hpp"

namespace mif::redundancy {

std::string validate(const Policy& p, u32 width) {
  if (p.replicas == 0) return "replicas must be >= 1";
  if (p.scheme != Policy::Scheme::kReplication)
    return "only the replication scheme is implemented";
  if (p.replicas > width)
    return "replicas (" + std::to_string(p.replicas) +
           ") exceeds the stripe width (" + std::to_string(width) +
           "): every copy of a stripe unit needs its own target";
  if (p.enabled() && width > 64)
    return "redundancy supports at most 64 targets (HealthMap mask)";
  return "";
}

}  // namespace mif::redundancy
