// Striped redundancy: replicated layouts, per-target health, and the
// replica-subfile naming scheme the degraded-read and repair paths share.
//
// Policy (N-way replication per stripe unit)
// ------------------------------------------
// A stripe unit owned by primary target p keeps copy c (1..replicas-1) on
// target (p + c) % width, at the SAME local block addresses the primary
// uses.  The copy lives in a *replica subfile*: the primary's inode with a
// copy tag in bits 48..55 (the shard router owns 56..63, see
// shard/placement).  That tag IS the rpc envelope's replica-target
// annotation — the codec ships an InodeNo either way, so the wire format,
// Formation coalescing keys ((ino, stream) never mixes a copy with its
// primary) and QoS deferrable-data classification all work unchanged.
//
// Keeping local addresses identical across copies is what makes the
// degraded paths trivial: re-routing a run from a dead primary to a
// surviving copy only swaps (target, ino) — the run list is reused verbatim
// — and repair can rebuild a lost subfile by reading a copy's extents and
// replaying their logical runs onto the replacement disk.
//
// The Policy interface is shaped so a k+m parity flavor can slot in later
// (Scheme::kParity with data_units/parity_units): placement queries go
// through copy_target()/copies() rather than open-coded `replicas - 1`
// arithmetic at call sites.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <string>

#include "osd/striping.hpp"
#include "util/types.hpp"

namespace mif::redundancy {

struct Policy {
  /// Total copies of every stripe unit, primary included.  1 (default) =
  /// redundancy off: nothing in the data path changes, byte-identical.
  u32 replicas{1};
  /// Layout scheme.  Only replication exists today; the enum (rather than a
  /// bool) is the seam a k+m parity flavor slots into.
  enum class Scheme : u8 { kReplication = 0 };
  Scheme scheme{Scheme::kReplication};

  bool enabled() const { return replicas >= 2; }
  /// Redundant copies per stripe unit (excludes the primary).
  u32 copies() const { return enabled() ? replicas - 1 : 0; }
};

/// "" when the policy is mountable over `width` targets; otherwise the
/// reason (same contract as rpc::validate / obs::validate).
std::string validate(const Policy& p, u32 width);

// --- replica subfile naming --------------------------------------------------

/// Copy tag: bits 48..55 hold (copy index + 1); 0 = the primary subfile.
inline constexpr u32 kCopyShift = 48;
inline constexpr u64 kCopyMask = u64{0xff} << kCopyShift;

/// The replica subfile's inode for copy `c` (1-based: 1..replicas-1) of
/// `primary`.
constexpr InodeNo replica_ino(InodeNo primary, u32 copy) {
  return InodeNo{(primary.v & ~kCopyMask) |
                 (u64{copy + 1} << kCopyShift)};
}

constexpr bool is_replica(InodeNo ino) { return (ino.v & kCopyMask) != 0; }

/// 1-based copy index of a replica subfile inode (0 for a primary).
constexpr u32 copy_of(InodeNo ino) {
  const u32 tag = static_cast<u32>((ino.v & kCopyMask) >> kCopyShift);
  return tag == 0 ? 0 : tag - 1;
}

/// The primary inode a (possibly tagged) subfile inode belongs to.
constexpr InodeNo primary_ino(InodeNo ino) {
  return InodeNo{ino.v & ~kCopyMask};
}

/// Owning target of copy `c` (1..replicas-1) of a stripe unit whose primary
/// lives on `primary_target` (delegates to the stripe layout's rotation —
/// placement is the layout's decision, not the redundancy layer's).
inline u32 copy_target(const osd::StripeLayout& layout, u32 primary_target,
                       u32 copy) {
  return osd::replica_target(layout, primary_target, copy);
}

// --- per-target health -------------------------------------------------------

/// Sticky per-target liveness, shared by the FaultTransport kill mode, the
/// client's degraded routing and the repair service.  Lock-free (a 64-bit
/// dead mask) because every client issue polls it; capacity is therefore 64
/// targets — far above any mount this harness builds.
class HealthMap {
 public:
  void resize(std::size_t num_targets) {
    assert(num_targets <= 64);
    n_ = num_targets;
  }
  std::size_t size() const { return n_; }

  void mark_dead(u32 target) {
    const u64 prev = dead_.fetch_or(bit(target), std::memory_order_acq_rel);
    if ((prev & bit(target)) == 0)
      deaths_.fetch_add(1, std::memory_order_relaxed);
  }
  void mark_alive(u32 target) {
    dead_.fetch_and(~bit(target), std::memory_order_acq_rel);
  }

  bool alive(u32 target) const {
    return (dead_.load(std::memory_order_acquire) & bit(target)) == 0;
  }
  bool any_dead() const {
    return dead_.load(std::memory_order_acquire) != 0;
  }
  u32 dead_count() const {
    u64 m = dead_.load(std::memory_order_acquire);
    u32 n = 0;
    for (; m; m &= m - 1) ++n;
    return n;
  }
  /// Cumulative kill events (sticky even after repair revives the target).
  u64 deaths() const { return deaths_.load(std::memory_order_relaxed); }

 private:
  static constexpr u64 bit(u32 t) { return u64{1} << (t & 63); }
  std::atomic<u64> dead_{0};
  std::atomic<u64> deaths_{0};
  std::size_t n_{0};
};

/// Cluster-wide redundancy counters (exported as `redundancy.*` only when
/// the policy is mounted — default reports stay byte-identical).  Atomic:
/// several client sessions may route concurrently.
struct Stats {
  /// Reads re-routed from a dead primary to a surviving copy.
  std::atomic<u64> degraded_reads{0};
  /// Replica-copy write envelopes fanned out by clients.
  std::atomic<u64> replica_writes{0};
  /// Writes that skipped a dead target (the surviving copies carried them).
  std::atomic<u64> degraded_writes{0};
  /// Routes with no surviving copy — the client-visible kIo data-loss case.
  std::atomic<u64> lost_routes{0};
};

}  // namespace mif::redundancy
