// Uniform bridge from every subsystem's snapshot struct into the
// MetricsRegistry.
//
// Each `*Stats` struct in the stack keeps its role as the lock-free hot-path
// accumulator (updated under the subsystem's own lock, exactly as before);
// `publish(registry, prefix, snapshot)` maps one snapshot into hierarchical
// registry metrics.  One overload per struct keeps the naming scheme in one
// file — see docs/OBSERVABILITY.md for the catalogue.
//
// Prefixes compose: `publish(reg, "osd.0.disk", disk.stats())` yields
// `osd.0.disk.positionings` and friends.
#pragma once

#include <string>
#include <string_view>

#include "alloc/allocator.hpp"
#include "block/buffer_cache.hpp"
#include "block/journal.hpp"
#include "client/client_fs.hpp"
#include "mds/mds.hpp"
#include "obs/metrics.hpp"
#include "sim/disk.hpp"
#include "sim/io_scheduler.hpp"
#include "sim/network.hpp"

namespace mif::obs {

/// Dot-safe allocator-mode key ("ondemand", not "on-demand"): used as the
/// middle segment of the `alloc.<mode>.<metric>` names.
std::string_view metric_key(alloc::AllocatorMode m);

void publish(MetricsRegistry& reg, std::string_view prefix,
             const alloc::AllocatorStats& s);
void publish(MetricsRegistry& reg, std::string_view prefix,
             const sim::DiskStats& s);
void publish(MetricsRegistry& reg, std::string_view prefix,
             const sim::SchedulerStats& s);
void publish(MetricsRegistry& reg, std::string_view prefix,
             const sim::NetworkStats& s);
void publish(MetricsRegistry& reg, std::string_view prefix,
             const block::JournalStats& s);
void publish(MetricsRegistry& reg, std::string_view prefix,
             const block::CacheStats& s);
void publish(MetricsRegistry& reg, std::string_view prefix,
             const client::ClientStats& s);
void publish(MetricsRegistry& reg, std::string_view prefix,
             const mds::MdsStats& s);

/// Helper for the overloads above: "<prefix>.<leaf>".
std::string join_key(std::string_view prefix, std::string_view leaf);

}  // namespace mif::obs
