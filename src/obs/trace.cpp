#include "obs/trace.hpp"

#include <algorithm>
#include <sstream>

namespace mif::obs {

std::string_view to_string(TraceEventType t) {
  switch (t) {
    case TraceEventType::kLayoutMiss: return "layout_miss";
    case TraceEventType::kPreAllocLayout: return "pre_alloc_layout";
    case TraceEventType::kStreamDemote: return "stream_demote";
    case TraceEventType::kLazyFree: return "lazy_free";
    case TraceEventType::kJournalCommit: return "journal_commit";
    case TraceEventType::kJournalCheckpoint: return "journal_checkpoint";
    case TraceEventType::kCacheEvict: return "cache_evict";
  }
  return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void TraceBuffer::push(const TraceRecord& r) {
  if (ring_.size() < capacity_) {
    ring_.push_back(r);  // within the reserved capacity: no allocation
    return;
  }
  ring_[head_] = r;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void TraceBuffer::record(TraceEventType t, InodeNo inode, StreamId stream,
                         u64 arg0, u64 arg1) {
  std::lock_guard lock(mu_);
  if (filter_on_ &&
      (inode.v != filter_inode_ || stream.key() != filter_stream_)) {
    ++filtered_;
    return;
  }
  push({next_seq_++, t, inode.v, stream.key(), arg0, arg1});
}

void TraceBuffer::record(TraceEventType t, u64 arg0, u64 arg1) {
  std::lock_guard lock(mu_);
  if (filter_on_) {
    ++filtered_;
    return;
  }
  push({next_seq_++, t, 0, 0, arg0, arg1});
}

void TraceBuffer::set_filter(InodeNo inode, StreamId stream) {
  std::lock_guard lock(mu_);
  filter_on_ = true;
  filter_inode_ = inode.v;
  filter_stream_ = stream.key();
}

void TraceBuffer::clear_filter() {
  std::lock_guard lock(mu_);
  filter_on_ = false;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard lock(mu_);
  return ring_.size();
}

u64 TraceBuffer::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

u64 TraceBuffer::filtered() const {
  std::lock_guard lock(mu_);
  return filtered_;
}

std::vector<TraceRecord> TraceBuffer::events() const {
  std::lock_guard lock(mu_);
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  // Oldest first: [head_, end) then [0, head_) once wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceRecord> TraceBuffer::events(InodeNo inode,
                                             StreamId stream) const {
  std::vector<TraceRecord> all = events();
  std::erase_if(all, [&](const TraceRecord& r) {
    return r.inode != inode.v || r.stream != stream.key();
  });
  return all;
}

void TraceBuffer::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  filtered_ = 0;
}

std::string TraceBuffer::dump() const {
  std::ostringstream os;
  for (const TraceRecord& r : events()) {
    os << '#' << r.seq << ' ' << to_string(r.type);
    if (r.inode != 0) os << " ino=" << r.inode;
    if (r.stream != 0)
      os << " stream=" << (r.stream >> 32) << ':' << (r.stream & 0xffffffffu);
    os << " arg0=" << r.arg0 << " arg1=" << r.arg1 << '\n';
  }
  return os.str();
}

Json TraceBuffer::to_json() const {
  Json doc;
  {
    std::lock_guard lock(mu_);
    doc["capacity"] = u64{capacity_};
    doc["dropped"] = dropped_;
    doc["filtered"] = filtered_;
  }
  Json::Array events_json;
  for (const TraceRecord& r : events()) {
    Json e;
    e["seq"] = r.seq;
    e["type"] = to_string(r.type);
    e["inode"] = r.inode;
    e["stream"] = r.stream;
    e["arg0"] = r.arg0;
    e["arg1"] = r.arg1;
    events_json.push_back(std::move(e));
  }
  doc["events"] = std::move(events_json);
  return doc;
}

}  // namespace mif::obs
