// Critical-path profiler: decompose each traced request's *simulated*
// latency into the resource segments the attribution ledger charges.
//
// The span collector (obs/span.hpp) retains two families of records per
// trace: host-clock phases (client.write, mds.create, …) and sim-clock cost
// spans that the charging sites emit when BOTH a collector and an
// Attribution are attached — net.exchange, io.queue_wait, rpc.stall,
// fault.delay, mds.cpu, and the disks' mechanical disk.* phases.  Every
// sim-clock span is a simulated cost with a known resource, so summing them
// per trace decomposes that request's simulated milliseconds exactly:
//
//   total == queue + network + disk + mds + stall + fault     (by
//   construction — each segment is the sum of the spans mapped to it).
//
// analyze_critical_path() groups the retained ring by trace, reports the
// top-k slowest requests (by attributed sim total) with their segment
// breakdown and dominant segment, plus aggregate per-segment totals.  Two
// identical runs against fresh collectors produce identical reports: trace
// ids come from a per-collector counter starting at 1 and every charge is
// driven by the deterministic simulation clocks.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "util/types.hpp"

namespace mif::obs {

class SpanCollector;

/// Resource segment a sim-clock cost span belongs to.
enum class Segment : u8 {
  kQueue,    // io.queue_wait — scheduler queue wait before dispatch
  kNetwork,  // net.exchange — wire cost of the request's envelopes
  kDisk,     // disk.seek / disk.skip / disk.transfer — mechanical service
  kMds,      // mds.cpu — metadata handler CPU
  kStall,    // rpc.stall — async pipeline window backpressure
  kFault,    // fault.delay — injected fault-path delay
  kNone,     // not a cost span (host phases, unknown names)
};

/// Span-name → segment mapping (kNone for anything that is not a sim cost
/// span).  Exposed for tests.
Segment segment_of(std::string_view span_name);
std::string_view to_string(Segment s);

/// One analyzed request.
struct CriticalPathEntry {
  u64 trace_id{0};
  std::string_view root;  // root host span's name; "?" if it left the ring
  double total_ms{0.0};   // sum of all segments (== attributed sim cost)
  double queue_ms{0.0};
  double network_ms{0.0};
  double disk_ms{0.0};
  double mds_ms{0.0};
  double stall_ms{0.0};
  double fault_ms{0.0};
  Segment dominant{Segment::kNone};
};

/// Walk the collector's retained spans and return the top-k slowest traced
/// requests by attributed simulated cost, slowest first (ties broken by
/// ascending trace id, so the order is deterministic).
std::vector<CriticalPathEntry> critical_path_entries(const SpanCollector& c,
                                                     std::size_t top_k = 8);

/// JSON report:
///   {"requests": [{"trace_id", "root", "total_ms", "dominant",
///                  "segments": {"queue_ms", "network_ms", "disk_ms",
///                               "mds_ms", "stall_ms", "fault_ms"}}, ...],
///    "segment_totals": {...same keys, summed over EVERY trace...},
///    "traced_requests": <traces with at least one cost span>}
Json analyze_critical_path(const SpanCollector& c, std::size_t top_k = 8);

}  // namespace mif::obs
