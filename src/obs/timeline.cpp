#include "obs/timeline.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/span.hpp"

namespace mif::obs {

Timeline::Timeline(Config cfg)
    : capacity_(cfg.timeline_capacity >= 2 ? cfg.timeline_capacity
                                           : Config{}.timeline_capacity),
      interval_ms_(cfg.sample_interval_ms > 0.0
                       ? cfg.sample_interval_ms
                       : Config{}.sample_interval_ms) {}

void Timeline::set_clock(std::function<double()> clock) {
  std::lock_guard lock(mu_);
  clock_ = std::move(clock);
}

void Timeline::set_label(std::string label) {
  std::lock_guard lock(mu_);
  label_ = std::move(label);
}

void Timeline::add_prepare(std::function<void()> fn) {
  std::lock_guard lock(mu_);
  prepare_.push_back(std::move(fn));
}

void Timeline::add_gauge(std::string name, GaugeProvider fn) {
  std::lock_guard lock(mu_);
  Series& s = series_[std::move(name)];
  s.fn = std::move(fn);
  // Late registration: pad with zeros so every series shares the time axis.
  s.values.resize(times_.size(), 0.0);
}

void Timeline::maybe_decimate_locked() {
  if (times_.size() < capacity_) return;
  // Keep even indices: the very first sample survives, and the caller
  // appends the new (newest) row right after, so both ends of the run stay
  // represented.  The interval doubles so future samples keep the new grid.
  auto decimate = [](std::vector<double>& v) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < v.size(); r += 2) v[w++] = v[r];
    v.resize(w);
  };
  decimate(times_);
  for (auto& [name, s] : series_) decimate(s.values);
  interval_ms_ *= 2.0;
  ++downsamples_;
}

void Timeline::sample_locked(double now, bool overwrite) {
  for (const auto& fn : prepare_) fn();
  if (overwrite && !times_.empty()) {
    times_.back() = std::max(times_.back(), now);
    for (auto& [name, s] : series_) {
      const double v = s.fn ? s.fn() : 0.0;
      s.values.back() = v;
      s.last = v;
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
    }
    return;
  }
  maybe_decimate_locked();
  times_.push_back(now);
  ++total_samples_;
  for (auto& [name, s] : series_) {
    const double v = s.fn ? s.fn() : 0.0;
    s.values.push_back(v);
    s.last = v;
    if (s.count == 0) {
      s.min = s.max = v;
    } else {
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
    }
    ++s.count;
  }
}

void Timeline::tick() {
  std::lock_guard lock(mu_);
  if (!clock_) return;
  const double now = clock_();
  if (!times_.empty() && now < next_due_) return;
  if (!times_.empty() && now <= times_.back()) return;
  sample_locked(now, /*overwrite=*/false);
  next_due_ = now + interval_ms_;
}

void Timeline::mark_epoch(std::string_view label) {
  std::lock_guard lock(mu_);
  if (!clock_) return;
  const double now = clock_();
  // Keep the shared time axis strictly increasing: a mark landing on (or
  // before) the previous sample's timestamp re-samples that row in place.
  const bool overwrite = !times_.empty() && now <= times_.back();
  sample_locked(now, overwrite);
  epochs_.emplace_back(overwrite ? times_.back() : now, std::string(label));
  next_due_ = std::max(next_due_, now + interval_ms_);
}

double Timeline::interval_ms() const {
  std::lock_guard lock(mu_);
  return interval_ms_;
}

std::size_t Timeline::sample_count() const {
  std::lock_guard lock(mu_);
  return times_.size();
}

u64 Timeline::total_samples() const {
  std::lock_guard lock(mu_);
  return total_samples_;
}

u64 Timeline::downsamples() const {
  std::lock_guard lock(mu_);
  return downsamples_;
}

std::vector<double> Timeline::times() const {
  std::lock_guard lock(mu_);
  return times_;
}

std::vector<double> Timeline::series(std::string_view name) const {
  std::lock_guard lock(mu_);
  auto it = series_.find(name);
  return it == series_.end() ? std::vector<double>{} : it->second.values;
}

double Timeline::last(std::string_view name) const {
  std::lock_guard lock(mu_);
  auto it = series_.find(name);
  return it == series_.end() ? 0.0 : it->second.last;
}

Json Timeline::to_json() const {
  std::lock_guard lock(mu_);
  Json doc;
  doc["interval_ms"] = interval_ms_;
  doc["total_samples"] = total_samples_;
  doc["downsamples"] = downsamples_;
  Json::Array epochs;
  for (const auto& [t, label] : epochs_) {
    Json e;
    e["label"] = label;
    e["t_ms"] = t;
    epochs.push_back(std::move(e));
  }
  doc["epochs"] = std::move(epochs);
  Json::Array times;
  times.reserve(times_.size());
  for (double t : times_) times.push_back(Json(t));
  doc["times_ms"] = std::move(times);
  Json& series = doc["series"];
  series = Json::Object{};
  for (const auto& [name, s] : series_) {
    Json entry;
    entry["min"] = s.min;
    entry["max"] = s.max;
    entry["last"] = s.last;
    entry["count"] = s.count;
    Json::Array values;
    values.reserve(s.values.size());
    for (double v : s.values) values.push_back(Json(v));
    entry["values"] = std::move(values);
    series[name] = std::move(entry);
  }
  return doc;
}

Json chrome_trace_json(const SpanCollector& c,
                       const std::vector<const Timeline*>& timelines) {
  Json doc = chrome_trace_json(c);
  Json::Array& events = doc["traceEvents"].as_array();
  u64 pid = 3;  // pids 1/2 are the host/sim span tracks
  for (const Timeline* tl : timelines) {
    if (!tl) continue;
    const Json snap = tl->to_json();
    {
      Json e;
      e["name"] = "process_name";
      e["ph"] = "M";
      e["pid"] = pid;
      e["tid"] = u64{0};
      Json args;
      args["name"] = tl->label().empty()
                         ? "mif timeline " + std::to_string(pid - 3)
                         : tl->label();
      e["args"] = std::move(args);
      events.push_back(std::move(e));
    }
    const Json::Array& times = snap.at("times_ms").as_array();
    for (const auto& [name, series] : snap.at("series").as_object()) {
      const Json::Array& values = series.at("values").as_array();
      for (std::size_t i = 0; i < times.size() && i < values.size(); ++i) {
        Json e;
        e["name"] = name;
        e["cat"] = "gauge";
        e["ph"] = "C";
        e["ts"] = times[i].as_double() * 1000.0;  // ms → µs
        e["pid"] = pid;
        e["tid"] = u64{0};
        Json args;
        args["value"] = values[i].as_double();
        e["args"] = std::move(args);
        events.push_back(std::move(e));
      }
    }
    for (const Json& epoch : snap.at("epochs").as_array()) {
      Json e;
      e["name"] = epoch.at("label").as_string();
      e["cat"] = "epoch";
      e["ph"] = "i";
      e["s"] = "p";  // process-scoped instant
      e["ts"] = epoch.at("t_ms").as_double() * 1000.0;
      e["pid"] = pid;
      e["tid"] = u64{0};
      events.push_back(std::move(e));
    }
    ++pid;
  }
  return doc;
}

bool write_chrome_trace(const SpanCollector& c,
                        const std::vector<const Timeline*>& timelines,
                        const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "obs: cannot write chrome trace to %s\n",
                 path.c_str());
    return false;
  }
  const std::string text = chrome_trace_json(c, timelines).dump(1);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "obs: chrome trace written to %s\n", path.c_str());
  return true;
}

}  // namespace mif::obs
