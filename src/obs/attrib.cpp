#include "obs/attrib.hpp"

namespace mif::obs {

namespace {

thread_local std::vector<Principal> t_ambient;
thread_local const Principal* t_frame = nullptr;
thread_local std::size_t t_frame_count = 0;

}  // namespace

std::string_view to_string(OpClass cls) {
  switch (cls) {
    case OpClass::kData: return "data";
    case OpClass::kMeta: return "meta";
    case OpClass::kBackground: return "background";
  }
  return "?";
}

std::string Principal::label() const {
  if (system()) return "system";
  return "client" + std::to_string(client) + "." +
         std::string(to_string(cls));
}

Principal ambient_principal() {
  return t_ambient.empty() ? Principal{} : t_ambient.back();
}

ScopedPrincipal::ScopedPrincipal(Principal p) { t_ambient.push_back(p); }

ScopedPrincipal::~ScopedPrincipal() { t_ambient.pop_back(); }

std::pair<const Principal*, std::size_t> frame_principals() {
  return {t_frame, t_frame_count};
}

ScopedFramePrincipals::ScopedFramePrincipals(const Principal* principals,
                                             std::size_t count)
    : prev_(t_frame), prev_count_(t_frame_count) {
  t_frame = principals;
  t_frame_count = count;
}

ScopedFramePrincipals::~ScopedFramePrincipals() {
  t_frame = prev_;
  t_frame_count = prev_count_;
}

void CostAccount::add(const CostAccount& o) {
  disk_seek_ms += o.disk_seek_ms;
  disk_rotation_ms += o.disk_rotation_ms;
  disk_skip_ms += o.disk_skip_ms;
  disk_transfer_ms += o.disk_transfer_ms;
  queue_wait_ms += o.queue_wait_ms;
  stall_ms += o.stall_ms;
  net_ms += o.net_ms;
  mds_cpu_ms += o.mds_cpu_ms;
  fault_delay_ms += o.fault_delay_ms;
  net_bytes += o.net_bytes;
  rpcs += o.rpcs;
  disk_requests += o.disk_requests;
}

Json CostAccount::to_json() const {
  Json j;
  j["disk_seek_ms"] = disk_seek_ms;
  j["disk_rotation_ms"] = disk_rotation_ms;
  j["disk_skip_ms"] = disk_skip_ms;
  j["disk_transfer_ms"] = disk_transfer_ms;
  j["disk_ms"] = disk_ms();
  j["queue_wait_ms"] = queue_wait_ms;
  j["stall_ms"] = stall_ms;
  j["net_ms"] = net_ms;
  j["mds_cpu_ms"] = mds_cpu_ms;
  j["fault_delay_ms"] = fault_delay_ms;
  j["net_bytes"] = net_bytes;
  j["rpcs"] = rpcs;
  j["disk_requests"] = disk_requests;
  j["total_ms"] = total_ms();
  return j;
}

void Attribution::charge_disk(const Principal& p, double seek_ms,
                              double rotation_ms, double skip_ms,
                              double transfer_ms) {
  std::lock_guard lock(mu_);
  CostAccount& a = accounts_[p.key()];
  a.disk_seek_ms += seek_ms;
  a.disk_rotation_ms += rotation_ms;
  a.disk_skip_ms += skip_ms;
  a.disk_transfer_ms += transfer_ms;
}

void Attribution::charge_queue_wait(const Principal& p, double ms) {
  std::lock_guard lock(mu_);
  accounts_[p.key()].queue_wait_ms += ms;
}

void Attribution::charge_stall(const Principal& p, double ms) {
  std::lock_guard lock(mu_);
  accounts_[p.key()].stall_ms += ms;
}

void Attribution::charge_net(const Principal& p, double ms, u64 bytes) {
  std::lock_guard lock(mu_);
  CostAccount& a = accounts_[p.key()];
  a.net_ms += ms;
  a.net_bytes += bytes;
}

void Attribution::charge_mds(const Principal& p, double cpu_ms) {
  std::lock_guard lock(mu_);
  accounts_[p.key()].mds_cpu_ms += cpu_ms;
}

void Attribution::charge_fault_delay(const Principal& p, double ms) {
  std::lock_guard lock(mu_);
  accounts_[p.key()].fault_delay_ms += ms;
}

void Attribution::count_rpc(const Principal& p, u64 n) {
  std::lock_guard lock(mu_);
  accounts_[p.key()].rpcs += n;
}

void Attribution::count_disk_request(const Principal& p, u64 n) {
  std::lock_guard lock(mu_);
  accounts_[p.key()].disk_requests += n;
}

std::map<u64, CostAccount> Attribution::accounts() const {
  std::lock_guard lock(mu_);
  return accounts_;
}

CostAccount Attribution::total() const {
  std::lock_guard lock(mu_);
  CostAccount sum;
  for (const auto& [key, account] : accounts_) sum.add(account);
  return sum;
}

double Attribution::fairness() const {
  std::map<u32, double> per_client;
  for (const auto& [key, account] : accounts()) {
    const Principal p = Principal::from_key(key);
    if (p.system()) continue;
    per_client[p.client] += account.total_ms();
  }
  std::vector<double> xs;
  xs.reserve(per_client.size());
  for (const auto& [client, ms] : per_client) xs.push_back(ms);
  return jain_fairness(xs);
}

Json Attribution::to_json() const {
  Json j;
  for (const auto& [key, account] : accounts()) {
    j[Principal::from_key(key).label()] = account.to_json();
  }
  return j;
}

double Attribution::jain_fairness(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace mif::obs
