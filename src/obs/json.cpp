#include "obs/json.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace mif::obs {

double Json::as_double() const {
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  if (const auto* u = std::get_if<u64>(&v_)) return static_cast<double>(*u);
  return static_cast<double>(std::get<i64>(v_));
}

u64 Json::as_u64() const {
  if (const auto* u = std::get_if<u64>(&v_)) return *u;
  if (const auto* i = std::get_if<i64>(&v_)) return static_cast<u64>(*i);
  return static_cast<u64>(std::get<double>(v_));
}

i64 Json::as_i64() const {
  if (const auto* i = std::get_if<i64>(&v_)) return *i;
  if (const auto* u = std::get_if<u64>(&v_)) return static_cast<i64>(*u);
  return static_cast<i64>(std::get<double>(v_));
}

bool Json::contains(std::string_view key) const {
  const auto* o = std::get_if<Object>(&v_);
  return o && o->find(key) != o->end();
}

const Json& Json::at(std::string_view key) const {
  static const Json null_json{};
  if (const auto* o = std::get_if<Object>(&v_)) {
    if (auto it = o->find(key); it != o->end()) return it->second;
  }
  return null_json;
}

Json& Json::operator[](std::string_view key) {
  if (!is_object()) v_ = Object{};
  auto& o = std::get<Object>(v_);
  auto it = o.find(key);
  if (it == o.end()) it = o.emplace(std::string(key), Json{}).first;
  return it->second;
}

bool Json::operator==(const Json& other) const {
  if (is_number() && other.is_number()) {
    // Compare numerically so 3 == 3.0 regardless of carrier type.
    return as_double() == other.as_double();
  }
  return v_ == other.v_;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_into(std::string& out, double d) {
  if (!std::isfinite(d)) {  // JSON has no inf/nan; emit null like most tools
    out += "null";
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, d);
  assert(ec == std::errc{});
  out.append(buf, end);
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  // Recursive serialiser as an explicit lambda so dump() stays the only
  // public entry point.
  auto emit = [&](auto&& self, const Json& j, int depth) -> void {
    auto newline = [&](int d) {
      if (indent < 0) return;
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    if (j.is_null()) {
      out += "null";
    } else if (j.is_bool()) {
      out += j.as_bool() ? "true" : "false";
    } else if (const auto* u = std::get_if<u64>(&j.v_)) {
      char buf[24];
      auto [end, ec] = std::to_chars(buf, buf + sizeof buf, *u);
      assert(ec == std::errc{});
      out.append(buf, end);
    } else if (const auto* i = std::get_if<i64>(&j.v_)) {
      char buf[24];
      auto [end, ec] = std::to_chars(buf, buf + sizeof buf, *i);
      assert(ec == std::errc{});
      out.append(buf, end);
    } else if (const auto* d = std::get_if<double>(&j.v_)) {
      number_into(out, *d);
    } else if (j.is_string()) {
      escape_into(out, j.as_string());
    } else if (j.is_array()) {
      const Array& a = j.as_array();
      if (a.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t k = 0; k < a.size(); ++k) {
        if (k) out += ',';
        newline(depth + 1);
        self(self, a[k], depth + 1);
      }
      newline(depth);
      out += ']';
    } else {
      const Object& o = j.as_object();
      if (o.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : o) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        escape_into(out, key);
        out += indent < 0 ? ":" : ": ";
        self(self, value, depth + 1);
      }
      newline(depth);
      out += '}';
    }
  };
  emit(emit, *this, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<std::string> string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned cp = 0;
          const auto [p, ec] = std::from_chars(
              text_.data() + pos_, text_.data() + pos_ + 4, cp, 16);
          if (ec != std::errc{} || p != text_.data() + pos_ + 4)
            return std::nullopt;
          pos_ += 4;
          // The exporters only emit \u00xx control escapes; anything above
          // Latin-1 would need UTF-8 encoding we don't produce.
          if (cp > 0xFF) return std::nullopt;
          out += static_cast<char>(cp);
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false, fractional = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        digits = true;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        fractional = true;
      } else {
        break;
      }
      ++pos_;
    }
    if (!digits) return std::nullopt;
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (!fractional) {
      // Integers keep an exact 64-bit carrier so counters round-trip.
      if (tok[0] == '-') {
        i64 v = 0;
        const auto [p, ec] =
            std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (ec == std::errc{} && p == tok.data() + tok.size()) return Json(v);
      } else {
        u64 v = 0;
        const auto [p, ec] =
            std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (ec == std::errc{} && p == tok.data() + tok.size()) return Json(v);
      }
    }
    double v = 0.0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc{} || p != tok.data() + tok.size()) return std::nullopt;
    return Json(v);
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case 'n': return literal("null") ? std::optional<Json>(Json{}) : std::nullopt;
      case 't': return literal("true") ? std::optional<Json>(Json{true}) : std::nullopt;
      case 'f': return literal("false") ? std::optional<Json>(Json{false}) : std::nullopt;
      case '"': {
        auto s = string();
        if (!s) return std::nullopt;
        return Json(std::move(*s));
      }
      case '[': {
        ++pos_;
        Json::Array a;
        skip_ws();
        if (consume(']')) return Json(std::move(a));
        while (true) {
          auto v = value();
          if (!v) return std::nullopt;
          a.push_back(std::move(*v));
          if (consume(']')) return Json(std::move(a));
          if (!consume(',')) return std::nullopt;
        }
      }
      case '{': {
        ++pos_;
        Json::Object o;
        skip_ws();
        if (consume('}')) return Json(std::move(o));
        while (true) {
          skip_ws();
          auto key = string();
          if (!key || !consume(':')) return std::nullopt;
          auto v = value();
          if (!v) return std::nullopt;
          o.insert_or_assign(std::move(*key), std::move(*v));
          if (consume('}')) return Json(std::move(o));
          if (!consume(',')) return std::nullopt;
        }
      }
      default: return number();
    }
  }

  std::string_view text_;
  std::size_t pos_{0};
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace mif::obs
