#include "obs/critpath.hpp"

#include <algorithm>
#include <map>

#include "obs/span.hpp"

namespace mif::obs {

Segment segment_of(std::string_view span_name) {
  if (span_name == "io.queue_wait") return Segment::kQueue;
  if (span_name == "net.exchange") return Segment::kNetwork;
  if (span_name == "disk.seek" || span_name == "disk.skip" ||
      span_name == "disk.transfer") {
    return Segment::kDisk;
  }
  if (span_name == "mds.cpu") return Segment::kMds;
  if (span_name == "rpc.stall") return Segment::kStall;
  if (span_name == "fault.delay") return Segment::kFault;
  return Segment::kNone;
}

std::string_view to_string(Segment s) {
  switch (s) {
    case Segment::kQueue: return "queue";
    case Segment::kNetwork: return "network";
    case Segment::kDisk: return "disk";
    case Segment::kMds: return "mds";
    case Segment::kStall: return "stall";
    case Segment::kFault: return "fault";
    case Segment::kNone: break;
  }
  return "none";
}

namespace {

double& segment_slot(CriticalPathEntry& e, Segment s) {
  switch (s) {
    case Segment::kQueue: return e.queue_ms;
    case Segment::kNetwork: return e.network_ms;
    case Segment::kDisk: return e.disk_ms;
    case Segment::kMds: return e.mds_ms;
    case Segment::kStall: return e.stall_ms;
    case Segment::kFault: return e.fault_ms;
    case Segment::kNone: break;
  }
  return e.total_ms;  // unreachable: callers filter kNone first
}

Segment dominant_of(const CriticalPathEntry& e) {
  // Fixed evaluation order makes ties deterministic (first wins on >).
  const std::pair<Segment, double> vals[] = {
      {Segment::kQueue, e.queue_ms},   {Segment::kNetwork, e.network_ms},
      {Segment::kDisk, e.disk_ms},     {Segment::kMds, e.mds_ms},
      {Segment::kStall, e.stall_ms},   {Segment::kFault, e.fault_ms},
  };
  Segment best = Segment::kNone;
  double best_ms = 0.0;
  for (const auto& [s, v] : vals) {
    if (v > best_ms) {
      best_ms = v;
      best = s;
    }
  }
  return best;
}

Json segments_json(const CriticalPathEntry& e) {
  Json j;
  j["queue_ms"] = e.queue_ms;
  j["network_ms"] = e.network_ms;
  j["disk_ms"] = e.disk_ms;
  j["mds_ms"] = e.mds_ms;
  j["stall_ms"] = e.stall_ms;
  j["fault_ms"] = e.fault_ms;
  return j;
}

}  // namespace

std::vector<CriticalPathEntry> critical_path_entries(const SpanCollector& c,
                                                     std::size_t top_k) {
  const std::vector<SpanRecord> spans = c.spans();

  // One pass: accumulate sim cost spans per trace, remember each trace's
  // root host span (parent_id == 0) for the report label.
  std::map<u64, CriticalPathEntry> traces;
  for (const SpanRecord& r : spans) {
    if (r.trace_id == 0) continue;
    if (r.clock == SpanClock::kHost) {
      if (r.parent_id == 0) {
        CriticalPathEntry& e = traces[r.trace_id];
        e.trace_id = r.trace_id;
        e.root = r.name;
      }
      continue;
    }
    const Segment s = segment_of(r.name);
    if (s == Segment::kNone) continue;
    CriticalPathEntry& e = traces[r.trace_id];
    e.trace_id = r.trace_id;
    const double ms = r.dur_us / 1000.0;
    segment_slot(e, s) += ms;
    e.total_ms += ms;
  }

  std::vector<CriticalPathEntry> out;
  out.reserve(traces.size());
  for (auto& [id, e] : traces) {
    if (e.total_ms <= 0.0) continue;  // root span with no retained cost
    if (e.root.empty()) e.root = "?";  // root host span left the ring
    e.dominant = dominant_of(e);
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const CriticalPathEntry& a, const CriticalPathEntry& b) {
              if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
              return a.trace_id < b.trace_id;
            });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

Json analyze_critical_path(const SpanCollector& c, std::size_t top_k) {
  const std::vector<SpanRecord> spans = c.spans();

  // Aggregate per-segment totals over EVERY trace (not just the top-k) —
  // the whole-run view of where attributed simulated time went.
  CriticalPathEntry agg;
  std::size_t traced = 0;
  {
    std::map<u64, bool> seen;
    for (const SpanRecord& r : spans) {
      if (r.trace_id == 0 || r.clock == SpanClock::kHost) continue;
      const Segment s = segment_of(r.name);
      if (s == Segment::kNone) continue;
      const double ms = r.dur_us / 1000.0;
      segment_slot(agg, s) += ms;
      agg.total_ms += ms;
      if (!seen[r.trace_id]) {
        seen[r.trace_id] = true;
        ++traced;
      }
    }
  }

  Json::Array requests;
  for (const CriticalPathEntry& e : critical_path_entries(c, top_k)) {
    Json r;
    r["trace_id"] = e.trace_id;
    r["root"] = e.root;
    r["total_ms"] = e.total_ms;
    r["dominant"] = to_string(e.dominant);
    r["segments"] = segments_json(e);
    requests.push_back(std::move(r));
  }

  Json j;
  j["requests"] = Json(std::move(requests));
  j["segment_totals"] = segments_json(agg);
  j["attributed_ms"] = agg.total_ms;
  j["traced_requests"] = traced;
  return j;
}

}  // namespace mif::obs
