// Fragmentation lens: one periodic scan, many gauges.
//
// The paper's central metric is extents per file (ExtentMap::extent_count);
// its §III "fragmentation degree" divides a directory's extent total by its
// live file count.  Until now both were computed once, at preallocation time
// or end of run.  The lens turns them into time series: sources (OSD extent
// maps, the MDS namespace, free-space bitmaps) append into one FragSnapshot,
// `bind()` registers the snapshot's summary statistics as timeline gauges,
// and the timeline's prepare hook refreshes the scan once per sample so all
// frag gauges describe the same instant.
//
// The cached snapshot is also what `export_metrics` publishes, so the final
// timeline sample and the end-of-run registry metric are the *same doubles*
// by construction — the CI gate (scripts/check_bench_json.sh) compares them
// for exact equality.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.hpp"
#include "util/types.hpp"

namespace mif::obs {

class MetricsRegistry;
class Timeline;

/// One consistent scan over every registered source.
struct FragSnapshot {
  /// Per-file extent-count distribution (log2 buckets).
  Histogram extent_counts{40};
  /// Free-space run lengths in blocks (log2 buckets).
  Histogram free_runs{40};
  u64 files{0};           // live regular files seen
  u64 laid_out_files{0};  // files with at least one extent
  u64 extents_total{0};   // over laid-out files
  u64 dirs{0};
  double degree_sum{0.0};  // per-directory fragmentation degree (§III)
  double degree_max{0.0};
  u64 free_run_count{0};
  u64 free_blocks{0};

  /// Record one live file's extent count.  Files that have no layout yet
  /// (created but never written/synced) count as `files` only — they would
  /// otherwise dilute the mean and make it dip while a batch of fresh
  /// creates is in flight.
  void add_file(u64 extents) {
    ++files;
    if (extents == 0) return;
    ++laid_out_files;
    extents_total += extents;
    extent_counts.add(extents);
  }

  void add_dir(double degree, u64 live_files) {
    if (live_files == 0) return;
    ++dirs;
    degree_sum += degree;
    if (degree > degree_max) degree_max = degree;
  }

  /// Mean extents per laid-out file — the `frag.extent_count` series.
  double extent_count_mean() const {
    return laid_out_files == 0
               ? 0.0
               : static_cast<double>(extents_total) /
                     static_cast<double>(laid_out_files);
  }
  /// Mean per-directory fragmentation degree — the `frag.degree` series.
  double degree_mean() const {
    return dirs == 0 ? 0.0 : degree_sum / static_cast<double>(dirs);
  }
};

class FragLens {
 public:
  using Source = std::function<void(FragSnapshot&)>;

  /// Sources append into the snapshot; added once at wiring time.
  void add_source(Source src) { sources_.push_back(std::move(src)); }

  /// Run every source into a fresh snapshot (no caching).
  FragSnapshot scan() const;

  /// scan() into the cached snapshot returned by last().
  void refresh() { last_ = scan(); }
  const FragSnapshot& last() const { return last_; }

  /// Register this lens on a timeline: one prepare hook that refreshes the
  /// scan, plus gauges `<prefix>.extent_count`, `.degree`, `.degree_max`,
  /// `.files`, `.extents_total`, `.free_runs`, `.free_blocks`.
  void bind(Timeline& tl, std::string prefix = "frag");

  /// Publish the *cached* snapshot into `reg` under `<prefix>.*` — gauges
  /// with the exact values of the last timeline sample, plus the two
  /// distributions as `<prefix>.extent_counts` / `<prefix>.free_runs`
  /// histograms.
  void export_metrics(MetricsRegistry& reg, std::string_view prefix) const;

 private:
  std::vector<Source> sources_;
  FragSnapshot last_;
};

}  // namespace mif::obs
