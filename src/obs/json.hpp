// Minimal JSON document model for the observability exporters.
//
// The bench harness emits machine-readable reports (`--json <path>`) and the
// obs tests parse them back, so we need both a writer and a reader — but only
// for the subset the exporters produce: null, bool, integer/double numbers,
// strings, arrays, objects.  Objects keep their keys sorted, which makes
// every dump deterministic (diff-able across runs, like the rest of the
// simulator's output).  No external dependency: the container image only
// ships gtest/benchmark.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/types.hpp"

namespace mif::obs {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json, std::less<>>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(double d) : v_(d) {}
  Json(u64 n) : v_(n) {}
  Json(i64 n) : v_(n) {}
  Json(int n) : v_(static_cast<i64>(n)) {}
  Json(unsigned n) : v_(static_cast<u64>(n)) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string_view s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(Array a) : v_(std::move(a)) {}
  Json(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const {
    return std::holds_alternative<double>(v_) ||
           std::holds_alternative<u64>(v_) || std::holds_alternative<i64>(v_);
  }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  /// Numeric accessors convert between the three number representations.
  double as_double() const;
  u64 as_u64() const;
  i64 as_i64() const;
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }
  Array& as_array() { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }
  Object& as_object() { return std::get<Object>(v_); }

  /// Object field access; `at` returns null for missing keys (chainable).
  bool contains(std::string_view key) const;
  const Json& at(std::string_view key) const;
  Json& operator[](std::string_view key);

  /// Serialise.  indent < 0 → compact one-liner; otherwise pretty-printed
  /// with `indent` spaces per level.
  std::string dump(int indent = -1) const;

  /// Strict parse of a complete document; nullopt on any syntax error.
  static std::optional<Json> parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  std::variant<std::nullptr_t, bool, double, u64, i64, std::string, Array,
               Object>
      v_;
};

}  // namespace mif::obs
