// Bench-harness JSON reporting.
//
// Every bench binary keeps printing its human table exactly as before; with
// `--json <path>` it additionally writes a machine-readable trajectory:
//
//   {
//     "schema_version": 1,
//     "bench": "fig6a_stream_count",
//     "runs": [
//       {"name": "streams=32 mode=ondemand",
//        "config": {...},        // the knobs of this run
//        "results": {...},       // the numbers the table prints
//        "metrics": {...}},      // optional full MetricsRegistry::to_json()
//       ...
//     ]
//   }
//
// `--quick` is also parsed here: CI (scripts/check_bench_json.sh) uses it to
// run a reduced workload so the schema check stays fast.
#pragma once

#include <string>
#include <string_view>

#include "obs/config.hpp"
#include "obs/json.hpp"

namespace mif::obs {

inline constexpr u64 kReportSchemaVersion = 1;

class BenchReport {
 public:
  /// Parses `--json <path>`, `--trace <path>`, `--quick`,
  /// `--timeseries[=<interval_ms>]`, `--attribution`,
  /// `--pipeline-depth <N>`, `--mds-shards <N>`,
  /// `--collective-aggregators <N>`, `--list-io <N>`, `--qos <N>`,
  /// `--adaptive-depth <N>`, `--replicas <N>` and `--kill-osd <id>@<ms>`
  /// out of argv.
  /// Unknown arguments are ignored (google-benchmark style flags pass
  /// through).  An invalid `--timeseries` interval, and a
  /// zero/negative/non-numeric count flag, fail fast: the message goes to
  /// stderr and the process exits with status 2.
  BenchReport(std::string_view bench_name, int argc, char** argv);

  bool json_enabled() const { return !path_.empty(); }
  bool quick() const { return quick_; }

  /// `--pipeline-depth <N>` / `--pipeline-depth=<N>`: in-flight window for
  /// the async transport.  0 when absent; benches treat 0/1 as the default
  /// synchronous chain (output stays byte-identical).  A zero, negative or
  /// non-numeric value fails fast with status 2 (like --timeseries).
  u32 pipeline_depth() const { return pipeline_depth_; }

  /// `--mds-shards <N>` / `--mds-shards=<N>`: metadata shards to mount.
  /// 0 when absent; benches treat 0/1 as the classic single-MDS stack
  /// (output stays byte-identical).  Same fail-fast validation as
  /// --pipeline-depth.
  u32 mds_shards() const { return mds_shards_; }

  /// `--collective-aggregators <N>` / `--collective-aggregators=<N>`:
  /// aggregator count for benches that run collective rounds (ROMIO
  /// cb_nodes).  0 when absent; benches substitute their built-in default,
  /// so passing the default value explicitly stays byte-identical.  Same
  /// fail-fast validation as --pipeline-depth.
  u32 collective_aggregators() const { return collective_aggregators_; }

  /// `--list-io <N>` / `--list-io=<N>`: mount list I/O with at most N
  /// (offset,len) runs per kWriteList/kReadList envelope
  /// (ClusterConfig::list_io_max_runs) and enable the benches' list-I/O
  /// comparison sections.  0 when absent — the per-block data path runs and
  /// output stays byte-identical.  Same fail-fast validation as
  /// --pipeline-depth.
  u64 list_io_runs() const { return list_io_runs_; }

  /// `--qos <N>` / `--qos=<N>`: per-client token-bucket QoS at N MB/s of
  /// admitted envelope bytes (rpc::QosConfig::rate_bytes_per_ms = N * 1000).
  /// 0 when absent; benches leave the QoS layer unmounted (output stays
  /// byte-identical).  Same fail-fast validation as --pipeline-depth.
  u32 qos_mbps() const { return qos_mbps_; }

  /// `--adaptive-depth <N>` / `--adaptive-depth=<N>`: adaptive async window
  /// ceiling (rpc::TransportOptions::adaptive_depth_max).  0 when absent —
  /// the static --pipeline-depth (or sync) chain runs and output stays
  /// byte-identical.  Values must be >= 2 to arm the controller; a bare 1
  /// is rejected (the window floor is 2).  Same fail-fast validation as
  /// --pipeline-depth.
  u32 adaptive_depth() const { return adaptive_depth_; }

  /// `--replicas <N>` / `--replicas=<N>`: mount N-way stripe-unit
  /// replication (ClusterConfig::redundancy.replicas) and enable the
  /// benches' redundancy sections.  0 when absent; benches treat 0/1 as the
  /// unreplicated mount (output stays byte-identical).  Same fail-fast
  /// validation as --pipeline-depth.
  u32 replicas() const { return replicas_; }

  /// `--kill-osd <id>@<ms>` / `--kill-osd=<id>@<ms>`: schedule a
  /// deterministic whole-target failure at simulated time `ms`
  /// (rpc::FaultTransport::kill_osd).  Requires --replicas >= 2 — killing
  /// an unreplicated mount's target can only lose data, so the combination
  /// fails fast with status 2, as does a malformed spec.
  bool kill_armed() const { return kill_armed_; }
  u32 kill_target() const { return kill_target_; }
  double kill_at_ms() const { return kill_at_ms_; }

  /// `--attribution`: attach a cost-attribution ledger (obs/attrib.hpp) and
  /// embed each run's per-principal accounts + critical-path report.  Off
  /// by default — reports stay byte-identical without the flag.
  bool attribution_enabled() const { return attribution_; }

  /// `--trace <path>` / `--trace=<path>`: where to write the Chrome-trace /
  /// Perfetto span dump; empty when tracing was not requested.  The bench
  /// attaches an obs::SpanCollector and calls obs::write_chrome_trace.
  bool trace_enabled() const { return !trace_path_.empty(); }
  const std::string& trace_path() const { return trace_path_; }

  /// `--timeseries` / `--timeseries=<interval_ms>`: attach a flight
  /// recorder (obs/timeline.hpp) and embed each run's sampled series as a
  /// "timeseries" object in the JSON report.  Off by default — reports stay
  /// byte-identical without the flag.
  bool timeseries_enabled() const { return timeseries_; }

  /// The validated obs::Config for timelines this invocation should mount
  /// (sample_interval_ms carries the `--timeseries=<X>` override).
  const Config& timeline_config() const { return timeline_cfg_; }

  /// Append one run row.  `name` identifies the configuration point.
  /// `timeseries` (a Timeline::to_json() document) and `attribution`
  /// (a ParallelFileSystem::attribution_json() document) are embedded only
  /// when non-null, so runs without a recorder/ledger serialise exactly as
  /// before.
  void add_run(std::string_view name, Json config, Json results,
               Json metrics = Json{}, Json timeseries = Json{},
               Json attribution = Json{});

  /// Root document (already carrying schema_version/bench/runs); open for
  /// benches that want extra top-level fields.
  Json& doc() { return doc_; }

  /// Write the report if `--json` was given.  Returns false (and prints to
  /// stderr) when the file cannot be written.  Safe to call when disabled.
  bool write() const;

 private:
  std::string path_;
  std::string trace_path_;
  bool quick_{false};
  bool timeseries_{false};
  bool attribution_{false};
  Config timeline_cfg_{};
  u32 pipeline_depth_{0};
  u32 mds_shards_{0};
  u32 collective_aggregators_{0};
  u64 list_io_runs_{0};
  u32 qos_mbps_{0};
  u32 adaptive_depth_{0};
  u32 replicas_{0};
  bool kill_armed_{false};
  u32 kill_target_{0};
  double kill_at_ms_{0.0};
  Json doc_;
};

}  // namespace mif::obs
