// One observability configuration for the whole obs layer.
//
// The allocator event ring (obs/trace.hpp) and the request-span buffer
// (obs/span.hpp) used to carry their own scattered capacity constants; both
// now size themselves from this struct, so a bench or test that wants a
// bigger (or tiny) observability footprint changes one knob.
#pragma once

#include <cstddef>

namespace mif::obs {

struct Config {
  /// TraceBuffer ring capacity (allocator/journal/cache event records).
  std::size_t trace_capacity{4096};
  /// SpanCollector ring capacity (completed span records kept for export).
  std::size_t span_capacity{65536};
  /// Slow-request log size: the K slowest root spans retained with their
  /// full span trees (tail sampling).
  std::size_t slow_k{8};
  /// Admission threshold for the slow log in microseconds; 0 = every
  /// finished trace competes for the top-K slots.
  double slow_threshold_us{0.0};
  /// Quantile-triggered admission: when > 0, a finished trace must also be
  /// at or above this quantile of all root durations seen so far (e.g. 0.99
  /// keeps only the tail).  0 disables the quantile gate.
  double slow_quantile{0.0};
};

}  // namespace mif::obs
