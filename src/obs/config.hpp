// One observability configuration for the whole obs layer.
//
// The allocator event ring (obs/trace.hpp) and the request-span buffer
// (obs/span.hpp) used to carry their own scattered capacity constants; both
// now size themselves from this struct, so a bench or test that wants a
// bigger (or tiny) observability footprint changes one knob.
#pragma once

#include <cstddef>
#include <string>

namespace mif::obs {

struct Config {
  /// TraceBuffer ring capacity (allocator/journal/cache event records).
  std::size_t trace_capacity{4096};
  /// SpanCollector ring capacity (completed span records kept for export).
  std::size_t span_capacity{65536};
  /// Slow-request log size: the K slowest root spans retained with their
  /// full span trees (tail sampling).
  std::size_t slow_k{8};
  /// Admission threshold for the slow log in microseconds; 0 = every
  /// finished trace competes for the top-K slots.
  double slow_threshold_us{0.0};
  /// Quantile-triggered admission: when > 0, a finished trace must also be
  /// at or above this quantile of all root durations seen so far (e.g. 0.99
  /// keeps only the tail).  0 disables the quantile gate.
  double slow_quantile{0.0};
  /// Timeline (obs/timeline.hpp) sampling interval in *simulated*
  /// milliseconds; a sample is taken at the first tick after this much sim
  /// time has passed since the previous one.  Must be > 0.
  double sample_interval_ms{50.0};
  /// Rows retained per timeline before the deterministic downsampler
  /// decimates by two and doubles the interval.  Must be >= 2.
  std::size_t timeline_capacity{4096};
};

/// Knob sanity check: empty string when `cfg` is usable, otherwise a
/// human-readable description of the first offending knob.  Benches call
/// this on flag-derived configs so a bad `--timeseries=0` fails loudly
/// instead of being silently clamped.
inline std::string validate(const Config& cfg) {
  if (!(cfg.sample_interval_ms > 0.0)) {
    return "obs.sample_interval_ms must be > 0 (got " +
           std::to_string(cfg.sample_interval_ms) + ")";
  }
  if (cfg.timeline_capacity < 2) {
    return "obs.timeline_capacity must be >= 2 (got " +
           std::to_string(cfg.timeline_capacity) + ")";
  }
  return "";
}

}  // namespace mif::obs
