// Per-principal cost attribution: account every simulated millisecond.
//
// PR 2's spans answer "where did THIS request's time go"; the metrics
// registry answers "what did the whole run cost".  Neither answers the
// question the ROADMAP's QoS/formation/scavenger items need: *who* spent the
// time.  This layer tags work with a Principal — (client id, op class) with
// a reserved background/system class for journal replay and future scavenger
// work — threads the tag through the transport decorator chain down to
// sim::Disk, Mds handlers and sim::Network, and accumulates one CostAccount
// per principal.
//
// Invariant (enforced by attrib_test and the check_bench_json gate): for
// every cost category, the per-principal sums equal the existing global
// counters.  Untagged work (no ScopedPrincipal open on the thread) lands on
// the system principal {client 0, kBackground}, so the invariant holds by
// construction — nothing is ever dropped on the floor.
//
// Propagation
// -----------
// ScopedPrincipal keeps a thread-local ambient stack, exactly like
// ScopedSpan's ambient trace context: ClientFs opens one per client-visible
// op, and everything the op triggers synchronously (MDS handler time,
// network charges, scheduler submits) reads `ambient_principal()`.  Two
// places need more than the ambient:
//
//  * BatchingTransport flushes a coalesced frame on whatever thread tripped
//    the watermark — the flusher's ambient is NOT the contributors'.  The
//    queue carries a parallel per-request principal vector, and the flush
//    wraps `call_batch` in a ScopedFramePrincipals so InprocTransport can
//    split the frame's network cost back to its contributors pro-rata by
//    bytes and dispatch each request under its contributor's identity.
//
//  * sim::IoScheduler services requests at drain time, possibly merged
//    across submitters — each DiskRequest carries its submitter's principal
//    key and submit stamp, and the drain splits the merged service time
//    pro-rata by block count (and charges queue wait per contributor).
//
// Thread-safety: the ambient stack is thread_local (no lock); Attribution
// guards its accounts with one mutex — charge sites are per RPC / per disk
// dispatch, orders of magnitude rarer than per-block work.
#pragma once

#include <cstddef>
#include <mutex>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "util/types.hpp"

namespace mif::obs {

/// What kind of work a principal is doing.  Data and metadata are priced by
/// different networks and different service paths, and the QoS story needs
/// them separable; kBackground is reserved for system work (journal replay,
/// the future scavenger) and is the class of the untagged default.
enum class OpClass : u8 {
  kData = 0,
  kMeta = 1,
  kBackground = 2,
};

std::string_view to_string(OpClass cls);

/// The accountable identity: which client, doing what class of work.  The
/// default-constructed principal {client 0, kBackground} is the *system*
/// principal — everything untagged is charged there.
struct Principal {
  u32 client{0};
  OpClass cls{OpClass::kBackground};

  constexpr u64 key() const {
    return (static_cast<u64>(client) << 8) | static_cast<u64>(cls);
  }
  static constexpr Principal from_key(u64 key) {
    return {static_cast<u32>(key >> 8), static_cast<OpClass>(key & 0xffu)};
  }
  constexpr bool system() const {
    return client == 0 && cls == OpClass::kBackground;
  }
  constexpr auto operator<=>(const Principal&) const = default;

  /// Stable display label: "system", or "client<N>.<class>".
  std::string label() const;
};

/// Innermost ScopedPrincipal on this thread; the system principal when none
/// is open.  Charge sites call this at the moment the cost is incurred.
Principal ambient_principal();

/// RAII principal tag, mirroring ScopedSpan's ambient stack.  Must be
/// destroyed on the creating thread in LIFO order.
class ScopedPrincipal {
 public:
  explicit ScopedPrincipal(Principal p);
  ~ScopedPrincipal();
  ScopedPrincipal(const ScopedPrincipal&) = delete;
  ScopedPrincipal& operator=(const ScopedPrincipal&) = delete;
};

/// Per-request principals of a coalesced frame, parallel to the request
/// vector handed to `Transport::call_batch`.  BatchingTransport sets this
/// around the inner call (same thread), InprocTransport reads it to split
/// the frame's cost back to contributors.  Empty when no frame is open.
std::pair<const Principal*, std::size_t> frame_principals();

/// RAII frame-principal window (see frame_principals).  Nestable; restores
/// the outer window on destruction.
class ScopedFramePrincipals {
 public:
  ScopedFramePrincipals(const Principal* principals, std::size_t count);
  ~ScopedFramePrincipals();
  ScopedFramePrincipals(const ScopedFramePrincipals&) = delete;
  ScopedFramePrincipals& operator=(const ScopedFramePrincipals&) = delete;

 private:
  const Principal* prev_;
  std::size_t prev_count_;
};

/// Everything one principal has been charged.  All `_ms` fields are
/// simulated milliseconds on the clock of the subsystem that charged them.
struct CostAccount {
  double disk_seek_ms{0.0};
  double disk_rotation_ms{0.0};
  double disk_skip_ms{0.0};
  double disk_transfer_ms{0.0};
  double queue_wait_ms{0.0};   // scheduler submit → disk service start
  double stall_ms{0.0};        // async pipeline window backpressure
  double net_ms{0.0};          // meta + data sim::Network transfer time
  double mds_cpu_ms{0.0};      // MDS handler cpu (per-RPC + per-extent)
  double fault_delay_ms{0.0};  // injected FaultTransport delays (kept out of
                               // the disk/queue categories by construction)
  u64 net_bytes{0};
  u64 rpcs{0};
  u64 disk_requests{0};

  double disk_ms() const {
    return disk_seek_ms + disk_rotation_ms + disk_skip_ms + disk_transfer_ms;
  }
  /// Total attributed simulated time across every category.
  double total_ms() const {
    return disk_ms() + queue_wait_ms + stall_ms + net_ms + mds_cpu_ms +
           fault_delay_ms;
  }
  void add(const CostAccount& o);
  Json to_json() const;
};

/// The accounts book.  One instance per mounted cluster (attached via
/// ParallelFileSystem::set_attribution, like spans and the timeline); with
/// none attached every charge site is a null-pointer check.
class Attribution {
 public:
  void charge_disk(const Principal& p, double seek_ms, double rotation_ms,
                   double skip_ms, double transfer_ms);
  void charge_queue_wait(const Principal& p, double ms);
  void charge_stall(const Principal& p, double ms);
  void charge_net(const Principal& p, double ms, u64 bytes);
  void charge_mds(const Principal& p, double cpu_ms);
  void charge_fault_delay(const Principal& p, double ms);
  void count_rpc(const Principal& p, u64 n = 1);
  void count_disk_request(const Principal& p, u64 n = 1);

  /// Snapshot of every account, keyed by Principal::key() (deterministic
  /// iteration order — client asc, then class).
  std::map<u64, CostAccount> accounts() const;

  /// Element-wise sum over every account (the conservation comparand).
  CostAccount total() const;

  /// Jain's fairness index (Σx)²/(n·Σx²) over per-client attributed
  /// total_ms, system principal excluded.  1.0 for 0/1 clients or a
  /// perfectly even split; → 1/n as one client dominates.
  double fairness() const;

  /// {"<label>": {account...}, ...} — one entry per principal.
  Json to_json() const;

  static double jain_fairness(const std::vector<double>& xs);

 private:
  mutable std::mutex mu_;
  std::map<u64, CostAccount> accounts_;
};

}  // namespace mif::obs
