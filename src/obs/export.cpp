#include "obs/export.hpp"

namespace mif::obs {

std::string_view metric_key(alloc::AllocatorMode m) {
  switch (m) {
    case alloc::AllocatorMode::kVanilla: return "vanilla";
    case alloc::AllocatorMode::kReservation: return "reservation";
    case alloc::AllocatorMode::kStatic: return "static";
    case alloc::AllocatorMode::kOnDemand: return "ondemand";
  }
  return "?";
}

std::string join_key(std::string_view prefix, std::string_view leaf) {
  std::string out;
  out.reserve(prefix.size() + 1 + leaf.size());
  out.append(prefix);
  out.push_back('.');
  out.append(leaf);
  return out;
}

namespace {

void add(MetricsRegistry& reg, std::string_view prefix, std::string_view leaf,
         u64 v) {
  reg.counter(join_key(prefix, leaf)).inc(v);
}

void set_gauge(MetricsRegistry& reg, std::string_view prefix,
               std::string_view leaf, double v) {
  reg.gauge(join_key(prefix, leaf)).set(v);
}

}  // namespace

void publish(MetricsRegistry& reg, std::string_view prefix,
             const alloc::AllocatorStats& s) {
  add(reg, prefix, "extends", s.extends);
  add(reg, prefix, "fresh_allocations", s.fresh_allocations);
  add(reg, prefix, "allocated_blocks", s.allocated_blocks);
  add(reg, prefix, "layout_miss", s.layout_misses);
  add(reg, prefix, "pre_alloc_layout", s.prealloc_promotions);
  add(reg, prefix, "released_blocks", s.released_blocks);
  add(reg, prefix, "prealloc_disabled", s.prealloc_disabled);
  // Reserved blocks are a point-in-time quantity, not an event count.
  set_gauge(reg, prefix, "reserved_blocks",
            static_cast<double>(s.reserved_blocks));
}

void publish(MetricsRegistry& reg, std::string_view prefix,
             const sim::DiskStats& s) {
  add(reg, prefix, "requests", s.requests);
  add(reg, prefix, "positionings", s.positionings);
  add(reg, prefix, "skips", s.skips);
  add(reg, prefix, "sequential_hits", s.sequential_hits);
  add(reg, prefix, "blocks_read", s.blocks_read);
  add(reg, prefix, "blocks_written", s.blocks_written);
  set_gauge(reg, prefix, "seek_ms", s.seek_ms);
  set_gauge(reg, prefix, "rotation_ms", s.rotation_ms);
  set_gauge(reg, prefix, "skip_ms", s.skip_ms);
  set_gauge(reg, prefix, "transfer_ms", s.transfer_ms);
  set_gauge(reg, prefix, "busy_ms", s.busy_ms());
}

void publish(MetricsRegistry& reg, std::string_view prefix,
             const sim::SchedulerStats& s) {
  add(reg, prefix, "queued", s.queued);
  add(reg, prefix, "dispatched", s.dispatched);
  add(reg, prefix, "merged", s.merged);
}

void publish(MetricsRegistry& reg, std::string_view prefix,
             const sim::NetworkStats& s) {
  add(reg, prefix, "rpcs", s.rpcs);
  add(reg, prefix, "bytes", s.bytes);
  set_gauge(reg, prefix, "time_ms", s.time_ms);
}

void publish(MetricsRegistry& reg, std::string_view prefix,
             const block::JournalStats& s) {
  add(reg, prefix, "transactions", s.transactions);
  add(reg, prefix, "journal_blocks", s.journal_blocks);
  add(reg, prefix, "checkpoint_blocks", s.checkpoint_blocks);
  add(reg, prefix, "checkpoints", s.checkpoints);
}

void publish(MetricsRegistry& reg, std::string_view prefix,
             const block::CacheStats& s) {
  add(reg, prefix, "hits", s.hits);
  add(reg, prefix, "misses", s.misses);
  add(reg, prefix, "writebacks", s.writebacks);
  add(reg, prefix, "evictions", s.evictions);
  set_gauge(reg, prefix, "hit_ratio", s.hit_ratio());
}

void publish(MetricsRegistry& reg, std::string_view prefix,
             const client::ClientStats& s) {
  add(reg, prefix, "opens", s.opens);
  add(reg, prefix, "layout_cache_hits", s.layout_cache_hits);
  add(reg, prefix, "writes", s.writes);
  add(reg, prefix, "reads", s.reads);
  add(reg, prefix, "bytes_written", s.bytes_written);
  add(reg, prefix, "bytes_read", s.bytes_read);
  add(reg, prefix, "readahead_hits", s.readahead_hits);
  add(reg, prefix, "readahead_blocks", s.readahead_blocks);
}

void publish(MetricsRegistry& reg, std::string_view prefix,
             const mds::MdsStats& s) {
  add(reg, prefix, "rpcs", s.rpcs);
  add(reg, prefix, "extent_ops", s.extent_ops);
  set_gauge(reg, prefix, "cpu_ms", s.cpu_ms);
}

}  // namespace mif::obs
