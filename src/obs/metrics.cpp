#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace mif::obs {

void Histo::merge_from(const Histogram& other) {
  std::lock_guard lock(mu_);
  h_.merge(other);
}

namespace {

template <typename Map, typename... Args>
auto& get_or_create(std::mutex& mu, Map& map, std::string_view name,
                    Args&&... args) {
  std::lock_guard lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>(
                         std::forward<Args>(args)...))
             .first;
  }
  return *it->second;
}

template <typename Map>
auto* find_in(std::mutex& mu, const Map& map, std::string_view name) {
  std::lock_guard lock(mu);
  auto it = map.find(name);
  return it == map.end() ? nullptr : it->second.get();
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return get_or_create(mu_, counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return get_or_create(mu_, gauges_, name);
}

Histo& MetricsRegistry::histogram(std::string_view name, std::size_t buckets) {
  return get_or_create(mu_, histograms_, name, buckets);
}

Stat& MetricsRegistry::stat(std::string_view name) {
  return get_or_create(mu_, stats_, name);
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find_in(mu_, counters_, name);
}
const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_in(mu_, gauges_, name);
}
const Histo* MetricsRegistry::find_histogram(std::string_view name) const {
  return find_in(mu_, histograms_, name);
}
const Stat* MetricsRegistry::find_stat(std::string_view name) const {
  return find_in(mu_, stats_, name);
}

u64 MetricsRegistry::counter_value(std::string_view name) const {
  const Counter* c = find_counter(name);
  return c ? c->value() : 0;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() +
              stats_.size());
  for (const auto& [k, v] : counters_) out.push_back(k);
  for (const auto& [k, v] : gauges_) out.push_back(k);
  for (const auto& [k, v] : histograms_) out.push_back(k);
  for (const auto& [k, v] : stats_) out.push_back(k);
  std::sort(out.begin(), out.end());
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [k, c] : counters_) c->set(0);
  for (auto& [k, g] : gauges_) g->set(0.0);
  for (auto& [k, h] : histograms_) h->reset();
  for (auto& [k, s] : stats_) s->reset();
}

Json MetricsRegistry::to_json() const {
  std::lock_guard lock(mu_);
  Json doc;
  Json& counters = doc["counters"];
  counters = Json::Object{};
  for (const auto& [name, c] : counters_) counters[name] = c->value();
  Json& gauges = doc["gauges"];
  gauges = Json::Object{};
  for (const auto& [name, g] : gauges_) gauges[name] = g->value();
  Json& histograms = doc["histograms"];
  histograms = Json::Object{};
  for (const auto& [name, h] : histograms_) {
    const Histogram snap = h->snapshot();
    Json entry;
    entry["count"] = snap.count();
    for (const QuantileSpec& qs : kQuantiles)
      entry[qs.key] = snap.quantile(qs.q);
    if (h->tail_quantiles()) {
      for (const QuantileSpec& qs : kTailQuantiles)
        entry[qs.key] = snap.quantile(qs.q);
    }
    Json::Array buckets;
    for (std::size_t i = 0; i < snap.buckets(); ++i) {
      if (snap.bucket(i) == 0) continue;
      buckets.push_back(Json(Json::Array{Json(u64{i}), Json(snap.bucket(i))}));
    }
    entry["buckets"] = std::move(buckets);
    histograms[name] = std::move(entry);
  }
  Json& stats = doc["stats"];
  stats = Json::Object{};
  for (const auto& [name, s] : stats_) {
    const RunningStats snap = s->snapshot();
    Json entry;
    entry["count"] = u64{snap.count()};
    entry["mean"] = snap.mean();
    entry["min"] = snap.min();
    entry["max"] = snap.max();
    entry["stddev"] = snap.stddev();
    entry["sum"] = snap.sum();
    stats[name] = std::move(entry);
  }
  return doc;
}

std::string MetricsRegistry::to_text() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, std::string>> lines;
  auto line = [&](const std::string& name, std::string text) {
    lines.emplace_back(name, std::move(text));
  };
  for (const auto& [name, c] : counters_) {
    std::ostringstream os;
    os << name << " = " << c->value();
    line(name, os.str());
  }
  for (const auto& [name, g] : gauges_) {
    std::ostringstream os;
    os << name << " = " << g->value();
    line(name, os.str());
  }
  for (const auto& [name, h] : histograms_) {
    const Histogram snap = h->snapshot();
    std::ostringstream os;
    os << name << " (n=" << snap.count() << ")";
    for (const QuantileSpec& qs : kQuantiles)
      os << " " << qs.key << "=" << snap.quantile(qs.q);
    if (h->tail_quantiles()) {
      for (const QuantileSpec& qs : kTailQuantiles)
        os << " " << qs.key << "=" << snap.quantile(qs.q);
    }
    line(name, os.str());
  }
  for (const auto& [name, s] : stats_) {
    const RunningStats snap = s->snapshot();
    std::ostringstream os;
    os << name << " (n=" << snap.count() << ") mean=" << snap.mean()
       << " min=" << snap.min() << " max=" << snap.max();
    line(name, os.str());
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& [name, text] : lines) {
    out += text;
    out += '\n';
  }
  return out;
}

}  // namespace mif::obs
