// Unified metrics registry.
//
// Every layer of the stack — allocators, block layer, simulated disks,
// schedulers, MDS, clients — publishes its counters here under one
// hierarchical, dot-separated naming scheme:
//
//   <layer>[.<instance>].<metric>      e.g.  alloc.ondemand.layout_miss
//                                            osd.0.disk.positionings
//                                            mds.mfs.cache.hits
//
// Four metric kinds cover everything the paper's evaluation reads:
//   Counter — monotonically increasing u64 (events, blocks, RPCs);
//   Gauge   — instantaneous double (free blocks, utilisation);
//   Histo   — log2 histogram of sizes (extent counts, request sizes),
//             backed by util/stats.hpp's Histogram;
//   Stat    — streaming mean/min/max/stddev (positioning times, latencies),
//             backed by util/stats.hpp's RunningStats.
//
// Registration is idempotent: asking for an existing name returns the same
// object, so a subsystem can cache the reference once and update it on the
// hot path (counters are atomic; Histo/Stat carry a small mutex).  Objects
// are heap-pinned — references stay valid for the registry's lifetime.
//
// Exporters: `to_text()` for humans, `to_json()` for the bench harness
// (`--json`), whose output `Json::parse` reads back for round-trip tests.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace mif::obs {

class Counter {
 public:
  void inc(u64 delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void set(u64 v) { v_.store(v, std::memory_order_relaxed); }
  u64 value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// One exported quantile: JSON/text key plus the q it reads.
struct QuantileSpec {
  const char* key;
  double q;
};

/// Quantiles every histogram exports (to_json "p50"… keys and the to_text
/// lines read the same table, so adding one here changes both).
inline constexpr QuantileSpec kQuantiles[] = {
    {"p50", 0.50}, {"p90", 0.90}, {"p95", 0.95}, {"p99", 0.99}};
/// Extra tail quantiles, exported only by histograms that opted in via
/// `enable_tail_quantiles()` (span latencies want the p999 story; block-size
/// distributions do not need the key churn).
inline constexpr QuantileSpec kTailQuantiles[] = {{"p999", 0.999}};

/// Registry-owned log2 histogram; thread-safe via a per-object mutex (the
/// paths that feed it are not per-block hot).
class Histo {
 public:
  explicit Histo(std::size_t buckets = 40) : h_(buckets) {}

  void add(u64 value) {
    std::lock_guard lock(mu_);
    h_.add(value);
  }
  void merge_from(const Histogram& other);
  Histogram snapshot() const {
    std::lock_guard lock(mu_);
    return h_;
  }
  u64 count() const {
    std::lock_guard lock(mu_);
    return h_.count();
  }
  u64 quantile(double q) const {
    std::lock_guard lock(mu_);
    return h_.quantile(q);
  }
  /// Opt this histogram into the kTailQuantiles exports (p999 …).
  void enable_tail_quantiles() {
    std::lock_guard lock(mu_);
    tail_ = true;
  }
  bool tail_quantiles() const {
    std::lock_guard lock(mu_);
    return tail_;
  }
  void reset() {
    std::lock_guard lock(mu_);
    h_ = Histogram(h_.buckets());
  }

 private:
  mutable std::mutex mu_;
  Histogram h_;
  bool tail_{false};
};

/// Registry-owned RunningStats with the same locking discipline.
class Stat {
 public:
  void add(double x) {
    std::lock_guard lock(mu_);
    s_.add(x);
  }
  void merge_from(const RunningStats& other) {
    std::lock_guard lock(mu_);
    s_.merge(other);
  }
  RunningStats snapshot() const {
    std::lock_guard lock(mu_);
    return s_;
  }
  void reset() {
    std::lock_guard lock(mu_);
    s_ = {};
  }

 private:
  mutable std::mutex mu_;
  RunningStats s_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register-or-lookup.  The returned reference is stable for the
  /// registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histo& histogram(std::string_view name, std::size_t buckets = 40);
  Stat& stat(std::string_view name);

  /// Lookup without creating; nullptr when the name was never registered.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histo* find_histogram(std::string_view name) const;
  const Stat* find_stat(std::string_view name) const;

  /// Convenience for tests/exporters: counter value or 0 when absent.
  u64 counter_value(std::string_view name) const;

  /// Every registered name, sorted, across all four kinds.
  std::vector<std::string> names() const;

  /// Zero every metric (objects stay registered; cached references survive).
  void reset();

  /// {"counters": {name: n}, "gauges": {...}, "histograms": {name:
  ///  {count, p50, p90, p99, buckets: [[log2, count], ...]}},
  ///  "stats": {name: {count, mean, min, max, stddev, sum}}}
  Json to_json() const;

  /// Human-readable dump, one metric per line, sorted by name.
  std::string to_text() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histo>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Stat>, std::less<>> stats_;
};

}  // namespace mif::obs
