#include "obs/fraglens.hpp"

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace mif::obs {

FragSnapshot FragLens::scan() const {
  FragSnapshot snap;
  for (const Source& src : sources_) src(snap);
  return snap;
}

void FragLens::bind(Timeline& tl, std::string prefix) {
  tl.add_prepare([this] { refresh(); });
  auto gauge = [&](const char* leaf, double (*get)(const FragSnapshot&)) {
    tl.add_gauge(prefix + "." + leaf, [this, get] { return get(last_); });
  };
  gauge("extent_count",
        +[](const FragSnapshot& s) { return s.extent_count_mean(); });
  gauge("degree", +[](const FragSnapshot& s) { return s.degree_mean(); });
  gauge("degree_max", +[](const FragSnapshot& s) { return s.degree_max; });
  gauge("files", +[](const FragSnapshot& s) {
    return static_cast<double>(s.files);
  });
  gauge("extents_total", +[](const FragSnapshot& s) {
    return static_cast<double>(s.extents_total);
  });
  gauge("free_runs", +[](const FragSnapshot& s) {
    return static_cast<double>(s.free_run_count);
  });
  gauge("free_blocks", +[](const FragSnapshot& s) {
    return static_cast<double>(s.free_blocks);
  });
}

void FragLens::export_metrics(MetricsRegistry& reg,
                              std::string_view prefix) const {
  const FragSnapshot& s = last_;
  reg.gauge(join_key(prefix, "extent_count")).set(s.extent_count_mean());
  reg.gauge(join_key(prefix, "degree")).set(s.degree_mean());
  reg.gauge(join_key(prefix, "degree_max")).set(s.degree_max);
  reg.gauge(join_key(prefix, "files")).set(static_cast<double>(s.files));
  reg.gauge(join_key(prefix, "extents_total"))
      .set(static_cast<double>(s.extents_total));
  reg.gauge(join_key(prefix, "free_runs"))
      .set(static_cast<double>(s.free_run_count));
  reg.gauge(join_key(prefix, "free_blocks"))
      .set(static_cast<double>(s.free_blocks));
  reg.histogram(join_key(prefix, "extent_counts")).merge_from(s.extent_counts);
  reg.histogram(join_key(prefix, "free_runs_hist")).merge_from(s.free_runs);
}

}  // namespace mif::obs
