#include "obs/report.hpp"

#include <cstdio>
#include <string_view>

namespace mif::obs {

BenchReport::BenchReport(std::string_view bench_name, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      path_ = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path_ = arg.substr(7);
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path_ = argv[++i];
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path_ = arg.substr(8);
    } else if (arg == "--quick") {
      quick_ = true;
    } else if (arg == "--pipeline-depth" && i + 1 < argc) {
      pipeline_depth_ = static_cast<u32>(std::atoi(argv[++i]));
    } else if (arg.rfind("--pipeline-depth=", 0) == 0) {
      pipeline_depth_ =
          static_cast<u32>(std::atoi(std::string(arg.substr(17)).c_str()));
    } else if (arg == "--mds-shards" && i + 1 < argc) {
      mds_shards_ = static_cast<u32>(std::atoi(argv[++i]));
    } else if (arg.rfind("--mds-shards=", 0) == 0) {
      mds_shards_ =
          static_cast<u32>(std::atoi(std::string(arg.substr(13)).c_str()));
    }
  }
  doc_["schema_version"] = kReportSchemaVersion;
  doc_["bench"] = bench_name;
  doc_["runs"] = Json::Array{};
}

void BenchReport::add_run(std::string_view name, Json config, Json results,
                          Json metrics) {
  Json run;
  run["name"] = name;
  run["config"] = std::move(config);
  run["results"] = std::move(results);
  if (!metrics.is_null()) run["metrics"] = std::move(metrics);
  doc_["runs"].as_array().push_back(std::move(run));
}

bool BenchReport::write() const {
  if (path_.empty()) return true;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "obs: cannot write JSON report to %s\n",
                 path_.c_str());
    return false;
  }
  const std::string text = doc_.dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "obs: JSON report written to %s\n", path_.c_str());
  return true;
}

}  // namespace mif::obs
