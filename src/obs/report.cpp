#include "obs/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace mif::obs {

namespace {

/// Strict positive-integer parse for count-valued flags.  atoi-style
/// leniency let `--pipeline-depth garbage` silently mean depth 0 (i.e. the
/// default chain) — a bench invocation that LOOKS configured but is not.
/// Mirrors the --timeseries treatment: bad values fail fast with status 2.
u32 parse_count_flag(std::string_view bench_name, std::string_view flag,
                     std::string_view value) {
  const std::string v(value);
  char* end = nullptr;
  const long n = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || (end && *end != '\0') || n <= 0) {
    std::fprintf(stderr,
                 "%s: bad %s '%s': expected a positive integer\n",
                 std::string(bench_name).c_str(), std::string(flag).c_str(),
                 v.c_str());
    std::exit(2);
  }
  return static_cast<u32>(n);
}

/// Parse a `--kill-osd` spec: `<target>@<at_ms>` with a non-negative
/// simulated millisecond timestamp.  Anything else fails fast with status 2.
void parse_kill_spec(std::string_view bench_name, std::string_view value,
                     u32* target, double* at_ms) {
  const std::string v(value);
  const std::size_t at = v.find('@');
  bool ok = at != std::string::npos && at > 0 && at + 1 < v.size();
  if (ok) {
    char* end = nullptr;
    const std::string id = v.substr(0, at);
    const long t = std::strtol(id.c_str(), &end, 10);
    ok = end != id.c_str() && *end == '\0' && t >= 0;
    if (ok) *target = static_cast<u32>(t);
    const std::string ms = v.substr(at + 1);
    end = nullptr;
    const double m = std::strtod(ms.c_str(), &end);
    ok = ok && end != ms.c_str() && *end == '\0' && m >= 0.0;
    if (ok) *at_ms = m;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "%s: bad --kill-osd '%s': expected <target>@<at_ms> (e.g. "
                 "1@2.5)\n",
                 std::string(bench_name).c_str(), v.c_str());
    std::exit(2);
  }
}

}  // namespace

BenchReport::BenchReport(std::string_view bench_name, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      path_ = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path_ = arg.substr(7);
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path_ = argv[++i];
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path_ = arg.substr(8);
    } else if (arg == "--quick") {
      quick_ = true;
    } else if (arg == "--timeseries") {
      timeseries_ = true;
    } else if (arg.rfind("--timeseries=", 0) == 0) {
      timeseries_ = true;
      const std::string value(arg.substr(13));
      char* end = nullptr;
      timeline_cfg_.sample_interval_ms = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || (end && *end != '\0'))
        timeline_cfg_.sample_interval_ms = 0.0;  // force validate() to fail
      if (const std::string err = validate(timeline_cfg_); !err.empty()) {
        std::fprintf(stderr, "%s: bad --timeseries interval '%s': %s\n",
                     std::string(bench_name).c_str(), value.c_str(),
                     err.c_str());
        std::exit(2);
      }
    } else if (arg == "--pipeline-depth" && i + 1 < argc) {
      pipeline_depth_ =
          parse_count_flag(bench_name, "--pipeline-depth", argv[++i]);
    } else if (arg.rfind("--pipeline-depth=", 0) == 0) {
      pipeline_depth_ =
          parse_count_flag(bench_name, "--pipeline-depth", arg.substr(17));
    } else if (arg == "--mds-shards" && i + 1 < argc) {
      mds_shards_ = parse_count_flag(bench_name, "--mds-shards", argv[++i]);
    } else if (arg.rfind("--mds-shards=", 0) == 0) {
      mds_shards_ =
          parse_count_flag(bench_name, "--mds-shards", arg.substr(13));
    } else if (arg == "--collective-aggregators" && i + 1 < argc) {
      collective_aggregators_ =
          parse_count_flag(bench_name, "--collective-aggregators", argv[++i]);
    } else if (arg.rfind("--collective-aggregators=", 0) == 0) {
      collective_aggregators_ = parse_count_flag(
          bench_name, "--collective-aggregators", arg.substr(25));
    } else if (arg == "--list-io" && i + 1 < argc) {
      list_io_runs_ = parse_count_flag(bench_name, "--list-io", argv[++i]);
    } else if (arg.rfind("--list-io=", 0) == 0) {
      list_io_runs_ = parse_count_flag(bench_name, "--list-io", arg.substr(10));
    } else if (arg == "--qos" && i + 1 < argc) {
      qos_mbps_ = parse_count_flag(bench_name, "--qos", argv[++i]);
    } else if (arg.rfind("--qos=", 0) == 0) {
      qos_mbps_ = parse_count_flag(bench_name, "--qos", arg.substr(6));
    } else if (arg == "--adaptive-depth" && i + 1 < argc) {
      adaptive_depth_ =
          parse_count_flag(bench_name, "--adaptive-depth", argv[++i]);
    } else if (arg.rfind("--adaptive-depth=", 0) == 0) {
      adaptive_depth_ =
          parse_count_flag(bench_name, "--adaptive-depth", arg.substr(17));
    } else if (arg == "--replicas" && i + 1 < argc) {
      replicas_ = parse_count_flag(bench_name, "--replicas", argv[++i]);
    } else if (arg.rfind("--replicas=", 0) == 0) {
      replicas_ = parse_count_flag(bench_name, "--replicas", arg.substr(11));
    } else if (arg == "--kill-osd" && i + 1 < argc) {
      kill_armed_ = true;
      parse_kill_spec(bench_name, argv[++i], &kill_target_, &kill_at_ms_);
    } else if (arg.rfind("--kill-osd=", 0) == 0) {
      kill_armed_ = true;
      parse_kill_spec(bench_name, arg.substr(11), &kill_target_, &kill_at_ms_);
    } else if (arg == "--attribution") {
      attribution_ = true;
    }
  }
  if (kill_armed_ && replicas_ < 2) {
    // Killing a target on an unreplicated mount can only lose data: the
    // combination is a harness misuse, not a scenario.
    std::fprintf(stderr,
                 "%s: --kill-osd requires --replicas >= 2 (an unreplicated "
                 "mount cannot survive a target loss)\n",
                 std::string(bench_name).c_str());
    std::exit(2);
  }
  if (adaptive_depth_ == 1) {
    // The adaptive window floor is 2: a ceiling of 1 can never arm the
    // controller and silently degenerating to the sync chain would make the
    // invocation LOOK adaptive while it is not.
    std::fprintf(stderr,
                 "%s: bad --adaptive-depth '1': the adaptive ceiling must be "
                 ">= 2\n",
                 std::string(bench_name).c_str());
    std::exit(2);
  }
  doc_["schema_version"] = kReportSchemaVersion;
  doc_["bench"] = bench_name;
  doc_["runs"] = Json::Array{};
}

void BenchReport::add_run(std::string_view name, Json config, Json results,
                          Json metrics, Json timeseries, Json attribution) {
  Json run;
  run["name"] = name;
  run["config"] = std::move(config);
  run["results"] = std::move(results);
  if (!metrics.is_null()) run["metrics"] = std::move(metrics);
  if (!timeseries.is_null()) run["timeseries"] = std::move(timeseries);
  if (!attribution.is_null()) run["attribution"] = std::move(attribution);
  doc_["runs"].as_array().push_back(std::move(run));
}

bool BenchReport::write() const {
  if (path_.empty()) return true;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "obs: cannot write JSON report to %s\n",
                 path_.c_str());
    return false;
  }
  const std::string text = doc_.dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "obs: JSON report written to %s\n", path_.c_str());
  return true;
}

}  // namespace mif::obs
