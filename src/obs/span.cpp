#include "obs/span.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"

namespace mif::obs {

namespace {

/// Ambient open-span stack.  Entries are per (collector, thread); the stack
/// is tiny (nesting depth), so parent lookup scans from the back.
struct TlsEntry {
  const SpanCollector* owner;
  u64 trace_id;
  u64 span_id;
};
thread_local std::vector<TlsEntry> g_open_spans;

/// Small dense per-thread lane id for the Chrome trace's tid field.
u32 thread_lane() {
  static std::atomic<u32> next{1};
  thread_local const u32 lane = next.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

}  // namespace

SpanCollector::SpanCollector(Config cfg)
    : cfg_(cfg), epoch_(std::chrono::steady_clock::now()) {
  cfg_.span_capacity = std::max<std::size_t>(1, cfg_.span_capacity);
  cfg_.slow_k = std::max<std::size_t>(1, cfg_.slow_k);
  ring_.reserve(cfg_.span_capacity);
}

double SpanCollector::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

SpanContext SpanCollector::ambient() const {
  for (auto it = g_open_spans.rbegin(); it != g_open_spans.rend(); ++it) {
    if (it->owner == this) return {it->trace_id, it->span_id};
  }
  return {};
}

void SpanCollector::push_ring(const SpanRecord& r) {
  ++total_;
  if (ring_.size() < cfg_.span_capacity) {
    ring_.push_back(r);  // within the reserved capacity: no allocation
    return;
  }
  ring_[head_] = r;
  head_ = (head_ + 1) % cfg_.span_capacity;
  ++dropped_;
}

void SpanCollector::admit_slow(u64 trace_id, std::string_view root_name,
                               double dur_us, std::vector<SpanRecord> spans) {
  const double dur_ns = dur_us * 1000.0;
  root_durs_ns_.add(static_cast<u64>(std::max(0.0, dur_ns)));
  if (dur_us < cfg_.slow_threshold_us) return;
  if (cfg_.slow_quantile > 0.0 &&
      static_cast<u64>(dur_ns) <
          root_durs_ns_.quantile(cfg_.slow_quantile) / 2) {
    // quantile() reports the containing bucket's upper bound; admit the
    // whole bucket by comparing against its lower bound.
    return;
  }
  if (slow_.size() == cfg_.slow_k && dur_us <= slow_.back().dur_us) return;
  SlowTrace t{trace_id, root_name, dur_us, std::move(spans)};
  const auto pos = std::upper_bound(
      slow_.begin(), slow_.end(), dur_us,
      [](double d, const SlowTrace& s) { return d > s.dur_us; });
  slow_.insert(pos, std::move(t));
  if (slow_.size() > cfg_.slow_k) slow_.pop_back();
}

void SpanCollector::begin_trace(u64 trace_id) {
  std::lock_guard lock(mu_);
  active_.emplace(trace_id, std::vector<SpanRecord>{});
}

void SpanCollector::finish_span(const SpanRecord& r, bool root) {
  std::lock_guard lock(mu_);
  push_ring(r);

  PhaseStats& ps = [&]() -> PhaseStats& {
    auto it = phases_.find(r.name);
    if (it == phases_.end())
      it = phases_.emplace(std::string(r.name), PhaseStats{}).first;
    return it->second;
  }();
  ps.hist_ns.add(static_cast<u64>(std::max(0.0, r.dur_us * 1000.0)));
  ps.us.add(r.dur_us);

  if (root) {
    std::vector<SpanRecord> tree;
    auto it = active_.find(r.trace_id);
    if (it != active_.end()) {
      tree = std::move(it->second);
      active_.erase(it);
    }
    tree.push_back(r);
    admit_slow(r.trace_id, r.name, r.dur_us, std::move(tree));
  } else {
    auto it = active_.find(r.trace_id);
    if (it != active_.end() && it->second.size() < kMaxSpansPerTrace)
      it->second.push_back(r);
  }
}

void SpanCollector::record_sim(std::string_view name, u32 track,
                               double start_ms, double dur_ms, SpanContext ctx,
                               u64 arg0, u64 arg1) {
  SpanRecord r;
  r.trace_id = ctx.trace_id;
  r.span_id = next_span_id();
  r.parent_id = ctx.span_id;
  r.name = name;
  r.clock = SpanClock::kSim;
  r.track = track;
  r.start_us = start_ms * 1000.0;
  r.dur_us = dur_ms * 1000.0;
  r.arg0 = arg0;
  r.arg1 = arg1;
  finish_span(r, /*root=*/false);
}

std::size_t SpanCollector::size() const {
  std::lock_guard lock(mu_);
  return ring_.size();
}

u64 SpanCollector::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

u64 SpanCollector::total_spans() const {
  std::lock_guard lock(mu_);
  return total_;
}

std::vector<SpanRecord> SpanCollector::spans() const {
  std::lock_guard lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<SlowTrace> SpanCollector::slow_traces() const {
  std::lock_guard lock(mu_);
  return slow_;
}

std::map<std::string, SpanCollector::PhaseStats, std::less<>>
SpanCollector::phase_stats() const {
  std::lock_guard lock(mu_);
  return phases_;
}

void SpanCollector::export_metrics(MetricsRegistry& reg) const {
  std::lock_guard lock(mu_);
  for (const auto& [name, ps] : phases_) {
    Histo& h = reg.histogram("span." + name);
    h.merge_from(ps.hist_ns);
    // Latency distributions carry the tail story: export p999 too.
    h.enable_tail_quantiles();
    reg.stat("span." + name + ".us").merge_from(ps.us);
  }
  reg.counter("span.total").inc(total_);
  reg.counter("span.dropped").inc(dropped_);
}

Json SpanCollector::slow_json() const {
  Json doc;
  Json::Array traces;
  for (const SlowTrace& t : slow_traces()) {
    Json entry;
    entry["trace_id"] = t.trace_id;
    entry["root"] = t.root_name;
    entry["dur_us"] = t.dur_us;
    Json::Array spans;
    for (const SpanRecord& s : t.spans) {
      Json e;
      e["span_id"] = s.span_id;
      e["parent_id"] = s.parent_id;
      e["name"] = s.name;
      e["clock"] = s.clock == SpanClock::kHost ? "host" : "sim";
      e["start_us"] = s.start_us;
      e["dur_us"] = s.dur_us;
      e["arg0"] = s.arg0;
      e["arg1"] = s.arg1;
      spans.push_back(std::move(e));
    }
    entry["spans"] = std::move(spans);
    traces.push_back(std::move(entry));
  }
  doc["slow_traces"] = std::move(traces);
  return doc;
}

void SpanCollector::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  total_ = 0;
  active_.clear();
  slow_.clear();
  root_durs_ns_ = Histogram{40};
  phases_.clear();
}

ScopedSpan::ScopedSpan(SpanCollector* c, std::string_view name, u64 arg0,
                       u64 arg1)
    : c_(c) {
  if (!c_) return;
  const SpanContext parent = c_->ambient();
  root_ = !parent.valid();
  rec_.trace_id = root_ ? c_->next_trace_id() : parent.trace_id;
  rec_.span_id = c_->next_span_id();
  rec_.parent_id = parent.span_id;
  rec_.name = name;
  rec_.clock = SpanClock::kHost;
  rec_.track = thread_lane();
  rec_.arg0 = arg0;
  rec_.arg1 = arg1;
  rec_.start_us = c_->now_us();
  if (root_) c_->begin_trace(rec_.trace_id);
  g_open_spans.push_back({c_, rec_.trace_id, rec_.span_id});
}

ScopedSpan::~ScopedSpan() {
  if (!c_) return;
  rec_.dur_us = c_->now_us() - rec_.start_us;
  // LIFO discipline: scoped construction guarantees our entry is on top.
  g_open_spans.pop_back();
  c_->finish_span(rec_, root_);
}

Json chrome_trace_json(const SpanCollector& c) {
  Json doc;
  doc["displayTimeUnit"] = "ms";
  Json::Array events;

  // Process/thread naming metadata so the viewer labels the two clock
  // families and their lanes.
  auto meta = [&](std::string_view what, u64 pid, i64 tid,
                  std::string_view value) {
    Json e;
    e["name"] = what;
    e["ph"] = "M";
    e["pid"] = pid;
    e["tid"] = tid;
    Json args;
    args["name"] = value;
    e["args"] = std::move(args);
    events.push_back(std::move(e));
  };
  meta("process_name", 1, 0, "mif host (wall clock)");
  meta("process_name", 2, 0, "mif sim disks (simulated time)");

  std::vector<std::pair<u64, u32>> named_tracks;  // (pid, tid) already named
  for (const SpanRecord& s : c.spans()) {
    const u64 pid = s.clock == SpanClock::kHost ? 1 : 2;
    if (std::find(named_tracks.begin(), named_tracks.end(),
                  std::make_pair(pid, s.track)) == named_tracks.end()) {
      named_tracks.emplace_back(pid, s.track);
      std::string label;
      if (pid == 1) {
        label = "thread " + std::to_string(s.track);
      } else {
        // Sim lanes: "<disk> (mount k)" — k counts set_spans attachments.
        const u32 lane = track_lane(s.track);
        label = (lane == 0xffu ? std::string("mds disk")
                               : "disk " + std::to_string(lane)) +
                " (mount " + std::to_string(track_instance(s.track)) + ")";
      }
      meta("thread_name", pid, s.track, label);
    }
    Json e;
    e["name"] = s.name;
    const std::string_view cat = s.name.substr(0, s.name.find('.'));
    e["cat"] = cat;
    e["ph"] = "X";
    e["ts"] = s.start_us;
    e["dur"] = s.dur_us;
    e["pid"] = pid;
    e["tid"] = u64{s.track};
    Json args;
    args["trace_id"] = s.trace_id;
    args["span_id"] = s.span_id;
    args["parent_id"] = s.parent_id;
    args["arg0"] = s.arg0;
    args["arg1"] = s.arg1;
    e["args"] = std::move(args);
    events.push_back(std::move(e));
  }
  doc["traceEvents"] = std::move(events);
  doc["slowTraces"] = c.slow_json()["slow_traces"];
  return doc;
}

bool write_chrome_trace(const SpanCollector& c, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "obs: cannot write chrome trace to %s\n",
                 path.c_str());
    return false;
  }
  const std::string text = chrome_trace_json(c).dump(1);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "obs: chrome trace written to %s\n", path.c_str());
  return true;
}

}  // namespace mif::obs
