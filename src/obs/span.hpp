// End-to-end request spans: causal latency attribution across
// client → MDS → OSD → disk.
//
// PR 1's counters say *what happened*; spans say *where a request's time
// went* — the per-phase attribution the paper's Fig. 6–9 evaluations hinge
// on (positioning vs. transfer time under concurrent streams, §V).
//
// Model
// -----
// A *trace* is one client-visible operation (a `client.write`, a
// `client.read`, …) plus everything it causally triggered.  A *span* is one
// named phase inside a trace: it has a trace id, its own span id, its
// parent's span id, a start time and a duration.  The phase-name taxonomy
// (see docs/OBSERVABILITY.md for the full catalogue):
//
//   client.write / client.read / client.open / client.create / client.close
//   mds.lookup / mds.create / mds.open_getlayout / mds.report_extents
//   osd.stripe_unit / alloc.decide
//   journal.commit / journal.checkpoint
//   disk.seek / disk.skip / disk.transfer
//
// Two clocks
// ----------
// Software phases (client/mds/osd/alloc/journal) are timed with the host's
// steady clock: RAII ScopedSpan, microseconds since the collector was
// created.  Mechanical phases (`disk.*`) live on each simulated disk's own
// timeline and carry *simulated* durations — those are the quantities the
// paper argues about, and a wall-clock measurement of `Disk::service()`
// would time the model's arithmetic instead of the disk.  Every SpanRecord
// says which clock it is on (`clock`); the Chrome-trace writer keeps the two
// families on separate process tracks so a viewer never compares them
// side-by-side by accident.
//
// Propagation
// -----------
// ScopedSpan keeps a thread-local stack of open spans per collector: a span
// opened while another is open on the same thread becomes its child and
// inherits the trace id — that is how one `client.write` flows through
// `osd.stripe_unit` into `alloc.decide` without any signature changes.
// `SpanCollector::ambient()` exposes the innermost open context so
// fire-and-forget recorders (the simulated disks, whose work is triggered by
// whatever operation happened to fill the scheduler queue) can attribute
// their records to the operation that caused the drain.
//
// Thread-safety (exercised by concurrency_test)
// ---------------------------------------------
// Trace/span ids come from atomic counters; record() appends to the bounded
// ring, the per-phase stats and the active-trace trees under ONE collector
// mutex.  We deliberately chose a single mutex over per-thread buffers:
// spans are per *request phase*, orders of magnitude rarer than per-block
// events, so contention is negligible and export needs no merge step.  The
// ambient-parent stack is thread_local and needs no lock at all.
//
// Costs are bounded like TraceBuffer's: the ring overwrites its oldest
// records once full (`dropped()` counts), an active trace keeps at most
// kMaxSpansPerTrace spans, and the slow log holds exactly `slow_k` traces.
// With no collector attached every instrumentation point is one null check.
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/config.hpp"
#include "obs/json.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace mif::obs {

class MetricsRegistry;

/// Which timeline a span's (start, dur) pair lives on.
enum class SpanClock : u8 {
  kHost,  // host steady clock, µs since collector creation
  kSim,   // a simulated disk's private timeline, µs since mount
};

/// Trace/span identity carried across layers.  trace_id 0 = "no trace".
struct SpanContext {
  u64 trace_id{0};
  u64 span_id{0};
  bool valid() const { return trace_id != 0; }
};

/// Sim-clock track ids combine a per-attachment *instance* (upper 24 bits,
/// from SpanCollector::reserve_track_namespace) with a disk *lane* (low
/// byte).  A bench sweep recreates the cluster per configuration while
/// sharing one collector; separate namespaces keep two different disks'
/// private timelines from interleaving on one viewer lane.
constexpr u32 make_track(u32 instance, u32 lane) {
  return (instance << 8) | (lane & 0xffu);
}
constexpr u32 track_lane(u32 track) { return track & 0xffu; }
constexpr u32 track_instance(u32 track) { return track >> 8; }

/// One completed phase.  `name` must point at storage that outlives the
/// collector — every call site passes a string literal from the phase
/// taxonomy above.
struct SpanRecord {
  u64 trace_id{0};
  u64 span_id{0};
  u64 parent_id{0};  // 0 = root span of its trace
  std::string_view name;
  SpanClock clock{SpanClock::kHost};
  u32 track{0};       // host: per-thread lane; sim: disk track id
  double start_us{0.0};
  double dur_us{0.0};
  u64 arg0{0};  // phase-specific (inode, blocks, target index, …)
  u64 arg1{0};
};

/// One retained slow trace: the root's identity plus its full span tree.
struct SlowTrace {
  u64 trace_id{0};
  std::string_view root_name;
  double dur_us{0.0};
  std::vector<SpanRecord> spans;  // completion order; root last
};

class SpanCollector {
 public:
  explicit SpanCollector(Config cfg = {});

  /// Spans an active trace may accumulate before further ones are dropped
  /// (keeps a runaway trace from holding unbounded memory).
  static constexpr std::size_t kMaxSpansPerTrace = 4096;

  /// Microseconds on the host span clock (steady, starts near 0).
  double now_us() const;

  /// Innermost open context on this thread for THIS collector; invalid
  /// context when no span is open.  Used by async recorders (disk drains).
  SpanContext ambient() const;

  /// Record a completed span on a simulated timeline (disk.* phases).  The
  /// caller supplies simulated start/duration in milliseconds; attribution
  /// to a trace comes from `ctx` (typically `ambient()`).
  void record_sim(std::string_view name, u32 track, double start_ms,
                  double dur_ms, SpanContext ctx, u64 arg0 = 0, u64 arg1 = 0);

  /// Claim a fresh sim-track instance (see make_track above).  Called once
  /// per set_spans attachment that owns disks.
  u32 reserve_track_namespace() {
    return next_instance_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- introspection -------------------------------------------------------
  std::size_t size() const;
  std::size_t capacity() const { return cfg_.span_capacity; }
  u64 dropped() const;
  u64 total_spans() const;

  /// Completion-ordered copy of the retained span ring.
  std::vector<SpanRecord> spans() const;

  /// The K slowest finished traces, slowest first.
  std::vector<SlowTrace> slow_traces() const;

  /// Per-phase duration statistics (µs) accumulated over every span.
  struct PhaseStats {
    Histogram hist_ns{40};  // log2 ns buckets → ~µs..s span
    RunningStats us;
  };
  std::map<std::string, PhaseStats, std::less<>> phase_stats() const;

  /// Publish per-phase latency distributions into `reg` as
  /// `span.<phase>` histograms (nanoseconds; kQuantiles plus the opt-in
  /// p999 tail) and `span.<phase>.us` stats, plus `span.dropped` /
  /// `span.total`.
  void export_metrics(MetricsRegistry& reg) const;

  /// {"slow_traces": [{trace_id, root, dur_us, spans: [...]}, ...]}
  Json slow_json() const;

  /// Drop all retained spans, slow traces and phase stats (ids keep
  /// counting; config unchanged).
  void clear();

  const Config& config() const { return cfg_; }

 private:
  friend class ScopedSpan;

  u64 next_trace_id() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }
  u64 next_span_id() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Open a span-tree accumulator for a new root's trace.
  void begin_trace(u64 trace_id);

  /// Called by ScopedSpan/record_sim with a fully-formed record; `root`
  /// marks the span that opened its trace and triggers slow-log admission.
  void finish_span(const SpanRecord& r, bool root);

  void push_ring(const SpanRecord& r);
  void admit_slow(u64 trace_id, std::string_view root_name, double dur_us,
                  std::vector<SpanRecord> spans);

  Config cfg_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<u64> next_trace_id_{1};
  std::atomic<u64> next_span_id_{1};
  std::atomic<u32> next_instance_{0};

  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  // reserved once; grows to capacity max
  std::size_t head_{0};
  u64 dropped_{0};
  u64 total_{0};
  /// Span trees of traces whose root is still open.
  std::map<u64, std::vector<SpanRecord>> active_;
  /// Slowest-first finished traces, at most cfg_.slow_k entries.
  std::vector<SlowTrace> slow_;
  /// Root durations seen (ns), for the quantile admission gate.
  Histogram root_durs_ns_{40};
  std::map<std::string, PhaseStats, std::less<>> phases_;
};

/// RAII phase timer.  Null collector → every member is a no-op, so call
/// sites stay unconditional.  Must be destroyed on the thread that created
/// it, in LIFO order (automatic with scope-based use).
class ScopedSpan {
 public:
  ScopedSpan(SpanCollector* c, std::string_view name, u64 arg0 = 0,
             u64 arg1 = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// This span's identity (invalid when no collector is attached).
  SpanContext context() const { return {rec_.trace_id, rec_.span_id}; }
  bool root() const { return root_; }

 private:
  SpanCollector* c_;
  SpanRecord rec_;
  bool root_{false};
};

/// Serialise the collector's retained spans (plus the slow-request log) as a
/// Chrome-trace-event / Perfetto JSON object:
///
///   {"displayTimeUnit": "ms",
///    "traceEvents": [{"name", "cat", "ph": "X", "ts", "dur", "pid", "tid",
///                     "args": {...}}, ...],
///    "slowTraces": [...]}            // extra key; viewers ignore it
///
/// Host-clock spans appear under pid 1 ("mif host"), one tid lane per
/// recording thread; sim-clock spans under pid 2 ("mif sim disks"), one tid
/// per disk track.  Load the file at ui.perfetto.dev or chrome://tracing.
Json chrome_trace_json(const SpanCollector& c);

/// chrome_trace_json() → file.  Returns false (and prints to stderr) when
/// the file cannot be written.
bool write_chrome_trace(const SpanCollector& c, const std::string& path);

}  // namespace mif::obs
