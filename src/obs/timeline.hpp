// Sim-timeline flight recorder: periodic gauge sampling over the simulated
// clock.
//
// The registry (obs/metrics.hpp) and spans (obs/span.hpp) answer *how much*
// and *where*; the timeline answers *when*.  Subsystems register
// GaugeProvider callbacks (disk queue depth, journal backlog, fragmentation
// degree, …) and the owner of the simulated clock calls `tick()` at safe
// points — operation boundaries, never from inside `Disk::service()` — so a
// sample is taken whenever at least `sample_interval_ms` of *simulated* time
// has passed since the previous one.  Workloads additionally call
// `mark_epoch("measure.create")` at phase boundaries, which forces a sample
// and records a labelled marker.
//
// Determinism & boundedness
// -------------------------
// Samples are driven purely by the simulated clock, so two identical runs
// produce byte-identical series.  The store is bounded: when the shared time
// axis reaches `timeline_capacity` rows, every series is decimated by two
// (even indices kept) and the sampling interval doubles — a deterministic
// downsampler that keeps long aging runs at bounded memory while preserving
// the run's shape.  Decimation happens *before* the new row is appended, so
// the newest sample always survives; per-series min/max/last/count aggregate
// over every sample ever taken, not just the retained rows.
//
// Thread-safety
// -------------
// One mutex guards the store; `tick()`/`mark_epoch()` run the registered
// prepare hooks and gauge callbacks under it.  Providers therefore must not
// re-enter the timeline, and must themselves be safe against whatever
// concurrency exists at the tick site (the OSD accessors lock their own
// state; MDS-state providers are only ticked from the metadata path, which
// is single-threaded in every workload).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/config.hpp"
#include "obs/json.hpp"
#include "util/types.hpp"

namespace mif::obs {

class SpanCollector;

/// Instantaneous value read at each sample point.
using GaugeProvider = std::function<double()>;

class Timeline {
 public:
  /// Invalid knobs are clamped to the defaults (mirrors how the span ring
  /// treats nonsense capacities); benches that want a hard error call
  /// obs::validate(cfg) first.
  explicit Timeline(Config cfg = {});

  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  /// The simulated clock samples are stamped with (milliseconds).  Without a
  /// clock, tick() and mark_epoch() are no-ops.
  void set_clock(std::function<double()> clock);

  /// Viewer-facing label ("mds timeline", "shard 2"); used as the Perfetto
  /// process name.
  void set_label(std::string label);
  const std::string& label() const { return label_; }

  /// Hook run once per sample *before* the gauges are read — the
  /// fragmentation lens refreshes its scan here so its gauges share one
  /// consistent snapshot.
  void add_prepare(std::function<void()> fn);

  /// Register a series.  A gauge added after sampling started backfills its
  /// history with zeros so every series shares the time axis.
  void add_gauge(std::string name, GaugeProvider fn);

  /// Sample if at least one interval of simulated time elapsed since the
  /// last sample.  Cheap when not due (one mutex + one clock read).
  void tick();

  /// Force a sample and record a labelled phase marker.  If the clock has
  /// not advanced past the previous sample, that row is re-sampled in place
  /// so the time axis stays strictly increasing.
  void mark_epoch(std::string_view label);

  // --- introspection (tests) -----------------------------------------------
  double interval_ms() const;
  std::size_t sample_count() const;
  u64 total_samples() const;
  u64 downsamples() const;
  std::vector<double> times() const;
  std::vector<double> series(std::string_view name) const;
  /// Last recorded value of a series; 0.0 when absent or never sampled.
  double last(std::string_view name) const;

  /// {"interval_ms", "total_samples", "downsamples",
  ///  "epochs": [{"label", "t_ms"}, ...],
  ///  "times_ms": [...],
  ///  "series": {name: {"min","max","last","count","values":[...]}, ...}}
  Json to_json() const;

 private:
  struct Series {
    GaugeProvider fn;
    std::vector<double> values;  // parallel to times_
    double min{0.0};
    double max{0.0};
    double last{0.0};
    u64 count{0};  // samples ever taken, survives decimation
  };

  /// Take one sample at `now` (mutex held).  When `overwrite`, re-sample the
  /// final row instead of appending.
  void sample_locked(double now, bool overwrite);
  void maybe_decimate_locked();

  mutable std::mutex mu_;
  std::size_t capacity_;
  double interval_ms_;
  std::function<double()> clock_;
  std::string label_;
  std::vector<std::function<void()>> prepare_;
  std::vector<double> times_;  // shared, strictly increasing time axis
  std::map<std::string, Series, std::less<>> series_;
  std::vector<std::pair<double, std::string>> epochs_;
  double next_due_{0.0};
  u64 total_samples_{0};
  u64 downsamples_{0};
};

/// chrome_trace_json(collector) plus the timelines' series merged in as
/// Chrome-trace counter events (ph "C") — one process track per timeline
/// (pid 3 + index, named from its label) — and epoch marks as instant
/// events (ph "i").  Perfetto renders each series as a counter track
/// aligned with the sim-disk span tracks.
Json chrome_trace_json(const SpanCollector& c,
                       const std::vector<const Timeline*>& timelines);

/// chrome_trace_json(c, timelines) → file; false + stderr on I/O failure.
bool write_chrome_trace(const SpanCollector& c,
                        const std::vector<const Timeline*>& timelines,
                        const std::string& path);

}  // namespace mif::obs
