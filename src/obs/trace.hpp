// Allocator state-machine tracing.
//
// The paper's on-demand preallocation is a per-stream state machine (Fig. 3):
// layout_miss re-seeds a window, pre_alloc_layout promotes the sequential
// window and ramps the next one, enough misses demote the stream to
// no-preallocation.  Those transitions are what every fragmentation result
// in §V is made of, so they are recorded first-class here — together with
// journal commits and buffer-cache evictions, the two block-layer events the
// metadata results (Fig. 8) hinge on.
//
// TraceBuffer is a bounded ring: capacity is fixed at construction, record()
// never allocates, and once full the oldest records are overwritten (the
// `dropped()` counter says how many).  That bounds tracing overhead on the
// allocator write path to one mutex + one in-place store.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "obs/config.hpp"
#include "obs/json.hpp"
#include "util/types.hpp"

namespace mif::obs {

enum class TraceEventType : u8 {
  kLayoutMiss,        // write outside both windows (Fig. 2 trigger 1)
  kPreAllocLayout,    // sequential-window hit → promotion (Fig. 2 trigger 2)
  kStreamDemote,      // miss threshold reached: stream classified random
  kLazyFree,          // unused reservation returned at close
  kJournalCommit,     // compound transaction written to the journal area
  kJournalCheckpoint, // logged blocks written back to home locations
  kCacheEvict,        // buffer-cache LRU eviction (arg1 = was dirty)
};

std::string_view to_string(TraceEventType t);

/// One fixed-size trace record.  `arg0`/`arg1` are event-specific:
///   kLayoutMiss       — logical block, write length (blocks)
///   kPreAllocLayout   — promoted (new current) window length,
///                       newly reserved sequential window length
///   kStreamDemote     — misses seen, reservation blocks released
///   kLazyFree         — blocks released
///   kJournalCommit    — blocks written (records + commit block)
///   kJournalCheckpoint— home-location blocks written
///   kCacheEvict       — victim disk block, 1 if a writeback was issued
struct TraceRecord {
  u64 seq{0};  // global arrival order, never reset by wraparound
  TraceEventType type{TraceEventType::kLayoutMiss};
  u64 inode{0};   // 0 = not file-scoped (journal/cache events)
  u64 stream{0};  // StreamId::key(); 0 = not stream-scoped
  u64 arg0{0};
  u64 arg1{0};
};

class TraceBuffer {
 public:
  /// Capacity defaults to the shared obs::Config knob (see obs/config.hpp).
  explicit TraceBuffer(std::size_t capacity = Config{}.trace_capacity);
  explicit TraceBuffer(const Config& cfg) : TraceBuffer(cfg.trace_capacity) {}

  /// Record a stream-scoped allocator event.  O(1), no allocation.
  void record(TraceEventType t, InodeNo inode, StreamId stream, u64 arg0 = 0,
              u64 arg1 = 0);

  /// Record a subsystem event with no file/stream association.
  void record(TraceEventType t, u64 arg0 = 0, u64 arg1 = 0);

  /// Restrict recording to one (inode, stream); events from other streams
  /// (including non-stream-scoped ones) are counted as filtered, not stored.
  void set_filter(InodeNo inode, StreamId stream);
  void clear_filter();

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  /// Records overwritten by wraparound since construction/clear().
  u64 dropped() const;
  /// Records rejected by the stream filter.
  u64 filtered() const;

  /// Chronological copy of the retained records.
  std::vector<TraceRecord> events() const;

  /// Chronological copy of retained records for one (inode, stream).
  std::vector<TraceRecord> events(InodeNo inode, StreamId stream) const;

  /// Drop all records (capacity and filter unchanged).
  void clear();

  /// Human-readable dump, one event per line.
  std::string dump() const;

  /// {"capacity": n, "dropped": n, "events": [{seq, type, inode, stream,
  ///   arg0, arg1}, ...]}
  Json to_json() const;

 private:
  void push(const TraceRecord& r);

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<TraceRecord> ring_;  // reserved once; grows to capacity_ max
  std::size_t head_{0};            // next slot once ring_ is full
  u64 next_seq_{0};
  u64 dropped_{0};
  u64 filtered_{0};
  bool filter_on_{false};
  u64 filter_inode_{0};
  u64 filter_stream_{0};
};

}  // namespace mif::obs
