#include "shard/map.hpp"

#include "mfs/mfs.hpp"
#include "mfs/name_index.hpp"

namespace mif::shard {

std::string_view to_string(Policy p) {
  switch (p) {
    case Policy::kSubtree: return "subtree";
    case Policy::kHash: return "hash";
  }
  return "?";
}

u64 hash_of(std::string_view key) { return mfs::name_hash(key); }

u32 Map::delegate(std::string_view top_level) {
  const auto [it, inserted] =
      delegation_.emplace(std::string(top_level), next_delegate_ % shards_);
  if (inserted) ++next_delegate_;
  return it->second;
}

u32 Map::home_of(std::string_view path) const {
  const auto parts = mfs::split_path(path);
  if (parts.empty()) return 0;  // the root itself
  const auto it = delegation_.find(std::string(parts.front()));
  return it == delegation_.end() ? 0 : it->second;
}

}  // namespace mif::shard
