#include "shard/group.hpp"

#include <cassert>

namespace mif::shard {

MdsGroup::MdsGroup(std::size_t servers, const mds::MdsConfig& cfg) {
  assert(servers >= 1);
  servers_.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i) {
    servers_.push_back(std::make_unique<mds::Mds>(cfg));
  }
  rpc::Endpoints eps;
  for (auto& s : servers_) eps.mds.push_back(s.get());
  transport_ = std::make_unique<rpc::InprocTransport>(std::move(eps));
  clients_.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i) {
    clients_.emplace_back(*transport_, static_cast<u32>(i));
  }
}

}  // namespace mif::shard
