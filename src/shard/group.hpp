// shard::MdsGroup — N metadata servers behind one in-process transport.
//
// The member-vector plumbing both §IV-C/§IV-D cluster models used to carry
// privately (server ownership, Endpoints wiring, one typed stub per member):
// now in one place, shared by MdsCluster, SubtreeCluster and any fixture
// that needs a standalone shard set without the full core stack.
#pragma once

#include <memory>
#include <vector>

#include "mds/mds.hpp"
#include "rpc/client.hpp"
#include "rpc/inproc.hpp"

namespace mif::shard {

class MdsGroup {
 public:
  explicit MdsGroup(std::size_t servers, const mds::MdsConfig& cfg = {});

  std::size_t size() const { return servers_.size(); }
  mds::Mds& server(std::size_t i) { return *servers_[i]; }
  const mds::Mds& server(std::size_t i) const { return *servers_[i]; }

  /// Typed stub bound to member `i` (Address{kMds, i}).
  rpc::Client& client(std::size_t i) { return clients_[i]; }

  rpc::InprocTransport& transport() { return *transport_; }

  /// Attach a span collector to every member server (nullptr detaches).
  void set_spans(obs::SpanCollector* spans) {
    for (auto& s : servers_) s->set_spans(spans);
  }

 private:
  std::vector<std::unique_ptr<mds::Mds>> servers_;
  std::unique_ptr<rpc::InprocTransport> transport_;
  std::vector<rpc::Client> clients_;
};

}  // namespace mif::shard
