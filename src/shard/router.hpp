// shard::Router — the brain behind ShardedTransport.
//
// Owns everything the sharded metadata path needs besides envelope
// mechanics:
//
//   * the placement Map (subtree delegation / name hash);
//   * the inode tag: with >1 MDS each shard numbers inodes independently,
//     so every inode that crosses the client boundary is tagged with its
//     home shard in the top byte — data-path keys stay cluster-unique and
//     ino-keyed envelopes (report_extents) route without a lookup;
//   * the data-ino alias table: a cross-shard rename creates a NEW inode on
//     the target shard while the file's blocks stay keyed by the old one on
//     the storage targets; the alias chain redirects data envelopes so the
//     renamed file's data remains reachable (no orphaned subfiles);
//   * the rename journal: cross-shard renames are two-phase
//     (create-on-target, tombstone-on-source) and each phase is a separate
//     wire envelope a fault can kill; the journal records progress so
//     recover() can roll a half-done rename back;
//   * shard.* statistics (per-shard op counts, fan-out, imbalance).
//
// Thread-safety: one mutex over all mutable state.  The metadata path is
// orders of magnitude colder than block I/O; data envelopes only touch the
// router through `has_aliases()` (an atomic flag) unless an alias exists.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "shard/map.hpp"
#include "util/types.hpp"

namespace mif::shard {

struct ShardStats {
  std::vector<u64> ops_per_shard;  // delivered metadata sub-envelopes
  u64 meta_ops{0};                 // total across shards
  u64 fanout_requests{0};  // sub-envelopes beyond one per aggregate op
  u64 renames_local{0};
  u64 renames_cross{0};
  u64 renames_recovered{0};  // half-done renames rolled back by recover()
  u64 rename_failures{0};    // cross-shard renames that lost a phase
  /// Load imbalance: max per-shard op count over the per-shard mean
  /// (1.0 = perfectly balanced; kShards = everything on one shard).
  double imbalance() const;
};

/// One cross-shard rename's journal record.
struct RenameRecord {
  enum class State : u8 {
    kPending,    // begun, target entry not yet created
    kCreated,    // created on target, source tombstone still outstanding
    kCommitted,  // both phases done
    kAborted,    // rolled back (phase-1 failure or recover())
  };
  u64 seq{0};
  std::string from;
  std::string to;
  u32 src_shard{0};
  u32 dst_shard{0};
  InodeNo src_ino{};  // shard-local ino of the source entry
  InodeNo dst_ino{};  // shard-local ino created on the target (phase 1)
  State state{State::kPending};
};

class Router {
 public:
  Router(u32 shards, Policy policy) : map_(shards, policy) {
    ops_per_shard_.assign(shards, 0);
  }

  u32 shards() const { return map_.shards(); }
  Policy policy() const { return map_.policy(); }

  // --- inode tagging -------------------------------------------------------
  // Top byte carries (shard + 1); 0 marks an untagged number so a stray
  // untagged ino routes to shard 0 instead of aliasing shard 255's.  The
  // embedded composite (dir id << 32 | slot) stays well below bit 56 for any
  // simulated namespace; tag() asserts it in debug builds.
  static constexpr u32 kTagShift = 56;

  static InodeNo tag(u32 shard, InodeNo local);
  static u32 shard_of(InodeNo tagged) {
    const u64 hi = tagged.v >> kTagShift;
    return hi == 0 ? 0 : static_cast<u32>(hi - 1);
  }
  static InodeNo untag(InodeNo tagged) {
    return InodeNo{tagged.v & ((u64{1} << kTagShift) - 1)};
  }

  // --- routing -------------------------------------------------------------
  u32 route_path(std::string_view path) {
    std::lock_guard lock(mu_);
    return map_.owner_of(path);
  }
  /// Delegate the top-level directory of `path` (subtree policy, mkdir of a
  /// depth-1 directory) and return its home shard.
  u32 delegate_top_level(std::string_view name) {
    std::lock_guard lock(mu_);
    return map_.delegate(name);
  }
  /// True when `path`'s aggregate listing must ask every shard: always
  /// under hash placement (children scatter), and for the root directory
  /// under subtree placement (top-level entries live with their subtrees).
  bool needs_fanout(std::string_view path) const;

  // --- data-ino aliases ----------------------------------------------------
  bool has_aliases() const {
    return has_aliases_.load(std::memory_order_relaxed);
  }
  void add_alias(InodeNo renamed, InodeNo original);
  /// Follow the alias chain to the ino the storage targets actually key the
  /// file's blocks by.
  InodeNo data_ino(InodeNo ino) const;

  // --- rename journal ------------------------------------------------------
  u64 journal_begin(std::string_view from, std::string_view to, u32 src,
                    u32 dst, InodeNo src_ino);
  void journal_created(u64 seq, InodeNo dst_ino);
  void journal_commit(u64 seq);
  void journal_abort(u64 seq);
  /// Records stuck in kCreated: phase 1 landed, phase 2 was lost.
  std::vector<RenameRecord> pending_renames() const;
  std::vector<RenameRecord> journal_snapshot() const;

  // --- statistics ----------------------------------------------------------
  void count_op(u32 shard);
  void count_fanout(u64 extra_requests);
  void count_rename(bool cross);
  void count_rename_failure();
  void count_rename_recovered();
  ShardStats stats() const;

 private:
  RenameRecord* find_record(u64 seq);

  mutable std::mutex mu_;
  Map map_;
  std::unordered_map<u64, u64> aliases_;  // renamed ino.v -> original ino.v
  std::atomic<bool> has_aliases_{false};
  std::vector<RenameRecord> journal_;
  u64 next_seq_{1};
  std::vector<u64> ops_per_shard_;
  u64 fanout_requests_{0};
  u64 renames_local_{0};
  u64 renames_cross_{0};
  u64 renames_recovered_{0};
  u64 rename_failures_{0};
};

}  // namespace mif::shard
