// ShardedTransport — multi-MDS routing as an rpc decorator.
//
// Sits OUTERMOST in the transport chain:
//
//   Sharded( Fault( Batching( Async( Inproc ))))
//
// i.e. it is client-library logic, above the "NIC": every sub-envelope it
// emits (each fan-out leg, each phase of a cross-shard rename) separately
// traverses the fault/batching/async layers and is separately charged by the
// wire transport — so fault injection can kill a rename between its phases,
// and a readdir fan-out really costs N exchanges.
//
// Routing:
//   * path-keyed metadata ops go to shard::Map::owner_of(path) (the incoming
//     Address's MDS index is a single-MDS fiction and is ignored);
//   * mkdir delegates top-level directories round-robin under the subtree
//     policy; under the hash policy it mirrors the directory skeleton to
//     every shard so hash-placed children always find their parent;
//   * every inode leaving the transport is tagged with its home shard
//     (Router::tag) — ino-keyed envelopes (report_extents) route by tag, and
//     data-path envelopes carry cluster-unique subfile keys;
//   * readdir/readdirplus fan out (hash placement always; the root directory
//     under subtree placement) and merge per-shard listings, deduplicating
//     mirrored directory entries by name;
//   * cross-shard rename is two-phase — create-on-target, then
//     tombstone-on-source — journaled in the Router; recover() rolls
//     half-done renames back (unlink the target copy) so the source stays
//     resolvable and no inode is orphaned.  The renamed file's blocks stay
//     keyed by the OLD ino on the storage targets; a data-ino alias rewrites
//     subsequent data envelopes so the data remains reachable.
//
// With ClusterConfig mds.shards <= 1 the TransportStack does not build this
// decorator at all — the single-MDS hot path is untouched and the default
// figures stay byte-identical.
#pragma once

#include "rpc/transport.hpp"
#include "shard/router.hpp"

namespace mif::shard {

class ShardedTransport final : public rpc::Transport {
 public:
  ShardedTransport(rpc::Transport& inner, u32 shards, Policy policy)
      : inner_(inner), router_(shards, policy) {}

  Result<rpc::Response> call(const rpc::Address& to,
                             const rpc::Request& req) override;
  rpc::Ticket call_async(const rpc::Address& to,
                         const rpc::Request& req) override;
  rpc::CompletionQueue& completions() override {
    return inner_.completions();
  }
  Status call_batch(const rpc::Address& to,
                    std::vector<rpc::Request> reqs) override;
  Status flush() override { return inner_.flush(); }
  void pump() override { inner_.pump(); }
  void set_spans(obs::SpanCollector* spans) override {
    spans_ = spans;
    inner_.set_spans(spans);
  }
  void set_attribution(obs::Attribution* attrib) override {
    // Pure routing: every sub-envelope (fan-out leg, rename phase) is
    // charged by the layers below under the caller's ambient principal.
    inner_.set_attribution(attrib);
  }
  void export_metrics(obs::MetricsRegistry& reg,
                      std::string_view prefix) const override;

  /// Roll back every journaled rename stuck between its phases: unlink the
  /// phase-1 copy on the target shard and abort the record.  Returns how
  /// many renames were rolled back.  Run after a fault, before trusting the
  /// namespace again.
  u64 recover();

  Router& router() { return router_; }
  const Router& router() const { return router_; }
  ShardStats stats() const { return router_.stats(); }

 private:
  Result<rpc::Response> route_meta(const rpc::Request& req);
  Result<rpc::Response> send_to(u32 shard, const rpc::Request& req);
  Result<rpc::Response> do_mkdir(const rpc::MkdirRequest& r);
  Result<rpc::Response> do_readdir(const rpc::Request& req,
                                   std::string_view path);
  Result<rpc::Response> do_rename(const rpc::RenameRequest& r);
  /// Clone a data-path request with its ino chased through the alias table.
  rpc::Request rewrite_data(const rpc::Request& req) const;

  rpc::Transport& inner_;
  Router router_;
  obs::SpanCollector* spans_{nullptr};
};

}  // namespace mif::shard
