// shard::Map — the one placement policy every multi-MDS component uses.
//
// The paper's §IV-C/§IV-D clusters place metadata two ways:
//   * kSubtree — a directory and everything beneath it live on the shard its
//     top-level directory was delegated to (round-robin at mkdir time).
//     Locality preserved: an aggregated readdirplus touches ONE shard.
//   * kHash   — every path is placed by a stable name hash.  Load spread
//     evenly, locality sacrificed: aggregates must fan out to every shard
//     (the limitation Sears & van Ingen call out for hashed placement).
//
// This used to live twice (MdsCluster's name-hash routing, SubtreeCluster's
// delegation map); both routers and the whole-stack shard::ShardedTransport
// now share this map, so a placement change lands everywhere at once.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>

#include "util/types.hpp"

namespace mif::shard {

enum class Policy : u8 {
  kSubtree,  // a directory's files live with the directory
  kHash,     // every path is placed by hash of its full name
};
std::string_view to_string(Policy p);

/// The cluster-wide placement hash (FNV-1a, stable across runs and
/// processes).  Every shard-owner decision — giant-directory striping,
/// pathname-hash distribution, the primary's negative-lookup set — uses this
/// one function, so two components never disagree about an owner.
u64 hash_of(std::string_view key);

class Map {
 public:
  Map(u32 shards, Policy policy) : shards_(shards), policy_(policy) {}

  u32 shards() const { return shards_; }
  Policy policy() const { return policy_; }

  /// Owner of a flat key (subfile name, full pathname) by hash placement.
  u32 owner_by_hash(std::string_view key) const {
    return static_cast<u32>(hash_of(key) % shards_);
  }

  /// Delegate a top-level directory round-robin (idempotent: re-delegating
  /// an assigned name keeps its shard).  Returns the home shard.
  u32 delegate(std::string_view top_level);

  /// Home shard of the subtree containing `path`: the delegation of its
  /// top-level component, shard 0 for the root and undelegated names.
  u32 home_of(std::string_view path) const;

  /// Placement of `path` under the configured policy.
  u32 owner_of(std::string_view path) const {
    return policy_ == Policy::kSubtree ? home_of(path)
                                       : owner_by_hash(path);
  }

  bool delegated(std::string_view top_level) const {
    return delegation_.find(std::string(top_level)) != delegation_.end();
  }

 private:
  u32 shards_;
  Policy policy_;
  /// Subtree policy: top-level directory name -> shard.
  std::unordered_map<std::string, u32> delegation_;
  u32 next_delegate_{0};
};

}  // namespace mif::shard
