#include "shard/router.hpp"

#include <algorithm>
#include <cassert>

#include "mfs/mfs.hpp"

namespace mif::shard {

double ShardStats::imbalance() const {
  if (ops_per_shard.empty() || meta_ops == 0) return 1.0;
  const u64 peak = *std::max_element(ops_per_shard.begin(),
                                     ops_per_shard.end());
  const double mean =
      static_cast<double>(meta_ops) / static_cast<double>(ops_per_shard.size());
  return mean > 0.0 ? static_cast<double>(peak) / mean : 1.0;
}

InodeNo Router::tag(u32 shard, InodeNo local) {
  assert(local.v >> kTagShift == 0 && "shard-local ino overflows the tag");
  return InodeNo{local.v | (static_cast<u64>(shard) + 1) << kTagShift};
}

bool Router::needs_fanout(std::string_view path) const {
  if (map_.policy() == Policy::kHash) return true;
  // Subtree placement: only the root's own listing spans shards — every
  // top-level entry lives on the shard its subtree was delegated to.
  return mfs::split_path(path).empty();
}

void Router::add_alias(InodeNo renamed, InodeNo original) {
  std::lock_guard lock(mu_);
  aliases_[renamed.v] = original.v;
  has_aliases_.store(true, std::memory_order_relaxed);
}

InodeNo Router::data_ino(InodeNo ino) const {
  std::lock_guard lock(mu_);
  u64 v = ino.v;
  for (auto it = aliases_.find(v); it != aliases_.end();
       it = aliases_.find(v)) {
    v = it->second;
  }
  return InodeNo{v};
}

u64 Router::journal_begin(std::string_view from, std::string_view to, u32 src,
                          u32 dst, InodeNo src_ino) {
  std::lock_guard lock(mu_);
  RenameRecord rec;
  rec.seq = next_seq_++;
  rec.from = std::string(from);
  rec.to = std::string(to);
  rec.src_shard = src;
  rec.dst_shard = dst;
  rec.src_ino = src_ino;
  journal_.push_back(std::move(rec));
  return journal_.back().seq;
}

RenameRecord* Router::find_record(u64 seq) {
  for (auto& rec : journal_) {
    if (rec.seq == seq) return &rec;
  }
  return nullptr;
}

void Router::journal_created(u64 seq, InodeNo dst_ino) {
  std::lock_guard lock(mu_);
  if (auto* rec = find_record(seq)) {
    rec->dst_ino = dst_ino;
    rec->state = RenameRecord::State::kCreated;
  }
}

void Router::journal_commit(u64 seq) {
  std::lock_guard lock(mu_);
  if (auto* rec = find_record(seq)) rec->state = RenameRecord::State::kCommitted;
}

void Router::journal_abort(u64 seq) {
  std::lock_guard lock(mu_);
  if (auto* rec = find_record(seq)) rec->state = RenameRecord::State::kAborted;
}

std::vector<RenameRecord> Router::pending_renames() const {
  std::lock_guard lock(mu_);
  std::vector<RenameRecord> out;
  for (const auto& rec : journal_) {
    if (rec.state == RenameRecord::State::kCreated) out.push_back(rec);
  }
  return out;
}

std::vector<RenameRecord> Router::journal_snapshot() const {
  std::lock_guard lock(mu_);
  return journal_;
}

void Router::count_op(u32 shard) {
  std::lock_guard lock(mu_);
  if (shard < ops_per_shard_.size()) ++ops_per_shard_[shard];
}

void Router::count_fanout(u64 extra_requests) {
  std::lock_guard lock(mu_);
  fanout_requests_ += extra_requests;
}

void Router::count_rename(bool cross) {
  std::lock_guard lock(mu_);
  if (cross) {
    ++renames_cross_;
  } else {
    ++renames_local_;
  }
}

void Router::count_rename_failure() {
  std::lock_guard lock(mu_);
  ++rename_failures_;
}

void Router::count_rename_recovered() {
  std::lock_guard lock(mu_);
  ++renames_recovered_;
}

ShardStats Router::stats() const {
  std::lock_guard lock(mu_);
  ShardStats s;
  s.ops_per_shard = ops_per_shard_;
  for (const u64 n : ops_per_shard_) s.meta_ops += n;
  s.fanout_requests = fanout_requests_;
  s.renames_local = renames_local_;
  s.renames_cross = renames_cross_;
  s.renames_recovered = renames_recovered_;
  s.rename_failures = rename_failures_;
  return s;
}

}  // namespace mif::shard
