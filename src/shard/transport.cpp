#include "shard/transport.hpp"

#include <string>
#include <unordered_set>
#include <utility>

#include "mfs/mfs.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace mif::shard {

using rpc::Address;
using rpc::Request;
using rpc::Response;
using rpc::mds_at;

namespace {

/// Tag every inode in a response with its home shard before it reaches the
/// client.
void tag_response(u32 shard, Response& resp) {
  if (auto* ino = std::get_if<rpc::InodeResponse>(&resp)) {
    ino->ino = Router::tag(shard, ino->ino);
  } else if (auto* open = std::get_if<rpc::OpenGetLayoutResponse>(&resp)) {
    open->ino = Router::tag(shard, open->ino);
  } else if (auto* dir = std::get_if<rpc::ReaddirResponse>(&resp)) {
    for (mfs::DirEntry& e : dir->entries) e.ino = Router::tag(shard, e.ino);
  }
}

}  // namespace

Result<Response> ShardedTransport::send_to(u32 shard, const Request& req) {
  router_.count_op(shard);
  Result<Response> resp = inner_.call(mds_at(shard), req);
  if (resp) tag_response(shard, *resp);
  return resp;
}

Result<Response> ShardedTransport::call(const Address& to,
                                        const Request& req) {
  if (to.kind == Address::Kind::kOsd) {
    return inner_.call(to,
                       router_.has_aliases() ? rewrite_data(req) : req);
  }
  return route_meta(req);
}

rpc::Ticket ShardedTransport::call_async(const Address& to,
                                         const Request& req) {
  if (to.kind == Address::Kind::kOsd) {
    // Keep the pipelined data path: issue through the inner chain so the
    // async window stays in control of retirement.
    return inner_.call_async(
        to, router_.has_aliases() ? rewrite_data(req) : req);
  }
  // Metadata ops are synchronous end to end; admit a completed ticket.
  return completions().admit(to, rpc::op_of(req), route_meta(req));
}

Status ShardedTransport::call_batch(const Address& to,
                                    std::vector<Request> reqs) {
  if (to.kind == Address::Kind::kOsd) {
    if (router_.has_aliases()) {
      for (Request& r : reqs) r = rewrite_data(r);
    }
    return inner_.call_batch(to, std::move(reqs));
  }
  // A metadata batch may span shards after routing; deliver per envelope.
  Status first{};
  for (const Request& r : reqs) {
    if (Result<Response> resp = route_meta(r); !resp && first.ok()) {
      first = resp.error();
    }
  }
  return first;
}

Request ShardedTransport::rewrite_data(const Request& req) const {
  Request copy = req;
  std::visit(
      [&](auto& r) {
        if constexpr (requires { r.ino; }) {
          r.ino = router_.data_ino(r.ino);
        }
      },
      copy);
  return copy;
}

Result<Response> ShardedTransport::route_meta(const Request& req) {
  return std::visit(
      [&](const auto& r) -> Result<Response> {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, rpc::MkdirRequest>) {
          return do_mkdir(r);
        } else if constexpr (std::is_same_v<T, rpc::RenameRequest>) {
          return do_rename(r);
        } else if constexpr (std::is_same_v<T, rpc::ReaddirRequest> ||
                             std::is_same_v<T, rpc::ReaddirPlusRequest>) {
          return do_readdir(Request{r}, r.path);
        } else if constexpr (std::is_same_v<T, rpc::ReportExtentsRequest>) {
          // Ino-keyed: the tag IS the route.
          const u32 shard = Router::shard_of(r.ino);
          obs::ScopedSpan span(spans_, "rpc.shard", shard);
          rpc::ReportExtentsRequest local = r;
          local.ino = Router::untag(r.ino);
          return send_to(shard, Request{local});
        } else if constexpr (requires { r.path; }) {
          const u32 shard = router_.route_path(r.path);
          obs::ScopedSpan span(spans_, "rpc.shard", shard);
          return send_to(shard, Request{r});
        } else {
          return Errc::kInvalid;  // data op addressed to an MDS
        }
      },
      req);
}

Result<Response> ShardedTransport::do_mkdir(const rpc::MkdirRequest& r) {
  if (router_.policy() == Policy::kHash) {
    // Mirror the directory skeleton to every shard so hash-placed children
    // always find their parent; the hash owner's inode is authoritative.
    const u32 primary = router_.route_path(r.path);
    obs::ScopedSpan span(spans_, "rpc.shard", primary);
    Result<Response> out = Errc::kInvalid;
    for (u32 s = 0; s < router_.shards(); ++s) {
      Result<Response> resp = send_to(s, Request{r});
      if (s == primary) out = std::move(resp);
    }
    router_.count_fanout(router_.shards() - 1);
    return out;
  }
  // Subtree policy: a new top-level directory picks its home round-robin;
  // everything beneath follows its top-level delegation.
  const auto parts = mfs::split_path(r.path);
  const u32 shard = parts.size() == 1
                        ? router_.delegate_top_level(parts.front())
                        : router_.route_path(r.path);
  obs::ScopedSpan span(spans_, "rpc.shard", shard);
  return send_to(shard, Request{r});
}

Result<Response> ShardedTransport::do_readdir(const Request& req,
                                              std::string_view path) {
  if (!router_.needs_fanout(path)) {
    const u32 shard = router_.route_path(path);
    obs::ScopedSpan span(spans_, "rpc.shard", shard);
    return send_to(shard, req);
  }
  obs::ScopedSpan span(spans_, "rpc.shard", router_.shards());
  rpc::ReaddirResponse merged;
  std::unordered_set<std::string> seen;
  Errc first_error = Errc::kNotFound;
  bool any = false, failed = false;
  for (u32 s = 0; s < router_.shards(); ++s) {
    Result<Response> resp = send_to(s, req);
    if (!resp) {
      if (!failed) {
        first_error = resp.error();
        failed = true;
      }
      continue;
    }
    any = true;
    auto& part = std::get<rpc::ReaddirResponse>(*resp);
    merged.plus = part.plus;
    for (mfs::DirEntry& e : part.entries) {
      // Hash placement mirrors directories to every shard — keep the first
      // copy of each name (already ino-tagged by send_to).
      if (seen.insert(e.name).second) merged.entries.push_back(std::move(e));
    }
  }
  router_.count_fanout(router_.shards() - 1);
  if (!any) return first_error;
  return Response{std::move(merged)};
}

Result<Response> ShardedTransport::do_rename(const rpc::RenameRequest& r) {
  const u32 src = router_.route_path(r.from);
  const u32 dst = router_.route_path(r.to);
  if (src == dst) {
    obs::ScopedSpan span(spans_, "rpc.shard", src);
    Result<Response> resp = send_to(src, Request{r});
    if (resp) router_.count_rename(false);
    return resp;
  }

  // Two-phase cross-shard rename: create-on-target, tombstone-on-source.
  // Each phase is its own wire envelope through the inner chain, so a fault
  // can kill the protocol between them; the journal records enough to roll
  // back (recover()).
  obs::ScopedSpan span(spans_, "rpc.shard", src, dst);
  Result<Response> resolved =
      inner_.call(mds_at(src), Request{rpc::ResolveRequest{r.from}});
  if (!resolved) return resolved;
  const InodeNo src_ino = std::get<rpc::InodeResponse>(*resolved).ino;

  const u64 seq = router_.journal_begin(r.from, r.to, src, dst, src_ino);

  Result<Response> created = send_to(dst, Request{rpc::CreateRequest{r.to}});
  if (!created) {
    // Phase 1 lost: nothing landed on the target, the source is untouched.
    router_.journal_abort(seq);
    router_.count_rename_failure();
    return created;
  }
  // send_to tagged the response; journal the target's local ino.
  const InodeNo dst_ino =
      Router::untag(std::get<rpc::InodeResponse>(*created).ino);
  router_.journal_created(seq, dst_ino);

  Result<Response> gone = send_to(src, Request{rpc::UnlinkRequest{r.from}});
  if (!gone) {
    // Phase 2 lost: both entries exist.  The record stays kCreated so
    // recover() can unlink the target copy; the source remains resolvable.
    router_.count_rename_failure();
    return gone.error();
  }

  router_.journal_commit(seq);
  // The file's blocks stay keyed by the old ino on the storage targets.
  router_.add_alias(Router::tag(dst, dst_ino), Router::tag(src, src_ino));
  router_.count_rename(true);
  router_.count_fanout(1);  // one logical op, two wire envelopes
  return Response{rpc::InodeResponse{Router::tag(dst, dst_ino)}};
}

u64 ShardedTransport::recover() {
  u64 rolled_back = 0;
  for (const RenameRecord& rec : router_.pending_renames()) {
    Result<Response> resp =
        inner_.call(mds_at(rec.dst_shard), Request{rpc::UnlinkRequest{rec.to}});
    if (!resp && resp.error() != Errc::kNotFound) continue;  // retry later
    router_.journal_abort(rec.seq);
    router_.count_rename_recovered();
    ++rolled_back;
  }
  return rolled_back;
}

void ShardedTransport::export_metrics(obs::MetricsRegistry& reg,
                                      std::string_view prefix) const {
  inner_.export_metrics(reg, prefix);
  const ShardStats s = router_.stats();
  for (std::size_t i = 0; i < s.ops_per_shard.size(); ++i) {
    reg.counter("shard." + std::to_string(i) + ".ops")
        .inc(s.ops_per_shard[i]);
  }
  reg.counter("shard.fanout").inc(s.fanout_requests);
  reg.counter("shard.rename.local").inc(s.renames_local);
  reg.counter("shard.rename.cross").inc(s.renames_cross);
  if (s.renames_recovered > 0) {
    reg.counter("shard.rename.recovered").inc(s.renames_recovered);
  }
  if (s.rename_failures > 0) {
    reg.counter("shard.rename.failures").inc(s.rename_failures);
  }
  reg.gauge("shard.imbalance").set(s.imbalance());
}

}  // namespace mif::shard
