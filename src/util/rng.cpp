#include "util/rng.hpp"

#include <cmath>

namespace mif {

namespace {
constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64 to expand the seed into the full state.
u64 splitmix(u64& state) {
  state += 0x9e3779b97f4a7c15ULL;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(u64 seed) {
  for (auto& s : s_) s = splitmix(seed);
}

u64 Rng::next() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::uniform(u64 lo, u64 hi) {
  const u64 span = hi - lo + 1;
  if (span == 0) return next();  // full 64-bit range
  // Rejection-free modulo is fine here: span << 2^64 for all our workloads.
  return lo + next() % span;
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform01() < p; }

u64 Rng::pareto(u64 lo, u64 hi, double alpha) {
  const double u = uniform01();
  const double l = static_cast<double>(lo);
  const double h = static_cast<double>(hi);
  const double la = std::pow(l, alpha);
  const double ha = std::pow(h, alpha);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  const u64 r = static_cast<u64>(x);
  return r < lo ? lo : (r > hi ? hi : r);
}

double Rng::exponential(double mean) {
  double u = uniform01();
  if (u >= 1.0) u = 0.999999999;
  return -mean * std::log(1.0 - u);
}

}  // namespace mif
