// ASCII table renderer for the benchmark harness.  Every bench binary prints
// the same rows/series as the paper's tables and figures; this keeps that
// output aligned and diff-able.
#pragma once

#include <string>
#include <vector>

namespace mif {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 1);
  static std::string pct(double fraction, int precision = 1);

  std::string to_string() const;
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mif
