// Streaming statistics and histograms used by the benchmark harness and by
// per-subsystem counters (disk positioning times, extent counts, latencies).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace mif {

/// Welford streaming mean/variance plus min/max.  O(1) memory.
class RunningStats {
 public:
  void add(double x);
  /// Parallel-merge `other` into this.  Merging an empty object is a no-op;
  /// merging into an empty object copies `other` (including min/max).
  void merge(const RunningStats& other);

  bool empty() const { return n_ == 0; }
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  /// min()/max() return 0.0 on an empty object purely as a sentinel — with
  /// all-negative samples max() is legitimately negative, so callers that
  /// care must check empty() rather than compare against 0.0.
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Fixed-bucket log2 histogram for sizes/latencies; cheap and allocation-free
/// after construction.
class Histogram {
 public:
  /// Buckets are [2^i, 2^(i+1)) for i in [0, buckets).
  explicit Histogram(std::size_t buckets = 40);

  void add(u64 value);
  /// Add `other`'s per-bucket counts into this histogram; `other`'s excess
  /// high buckets clamp into our last bucket, mirroring add().
  void merge(const Histogram& other);
  u64 count() const { return total_; }
  u64 bucket(std::size_t i) const { return i < counts_.size() ? counts_[i] : 0; }
  std::size_t buckets() const { return counts_.size(); }

  /// Approximate quantile (bucket upper bound containing quantile q in [0,1]).
  u64 quantile(double q) const;

  std::string to_string(std::string_view label) const;

 private:
  std::vector<u64> counts_;
  u64 total_{0};
};

/// Exact percentile over a recorded sample vector (used where sample counts
/// are small enough to keep, e.g. per-operation latencies in metadata tests).
double percentile(std::vector<double> samples, double p);

}  // namespace mif
