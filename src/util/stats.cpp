#include "util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace mif {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ = (n * mean_ + m * other.mean_) / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(std::size_t buckets) : counts_(buckets, 0) {}

void Histogram::add(u64 value) {
  const std::size_t b =
      value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value) - 1);
  counts_[std::min(b, counts_.size() - 1)]++;
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    if (other.counts_[i] == 0) continue;
    counts_[std::min(i, counts_.size() - 1)] += other.counts_[i];
    total_ += other.counts_[i];
  }
}

u64 Histogram::quantile(double q) const {
  if (total_ == 0) return 0;
  const u64 target = static_cast<u64>(q * static_cast<double>(total_));
  u64 seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) return u64{1} << (i + 1);
  }
  return u64{1} << counts_.size();
}

std::string Histogram::to_string(std::string_view label) const {
  std::ostringstream os;
  os << label << " (n=" << total_ << ")\n";
  u64 peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  if (peak == 0) return os.str();
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    os << "  [2^" << i << ", 2^" << i + 1 << "): ";
    const auto bar = static_cast<std::size_t>(
        40.0 * static_cast<double>(counts_[i]) / static_cast<double>(peak));
    for (std::size_t j = 0; j < bar; ++j) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace mif
