#include "util/runs.hpp"

#include <algorithm>

namespace mif::util {

bool append_run(std::vector<BlockRun>& runs, BlockRun next) {
  if (next.count == 0) return true;
  if (!runs.empty()) {
    BlockRun& tail = runs.back();
    if (next.start.v == tail.start.v + tail.count) {
      tail.count += next.count;
      return true;
    }
  }
  runs.push_back(next);
  return false;
}

std::vector<ByteRange> merge_ranges(std::vector<ByteRange> ranges) {
  std::sort(ranges.begin(), ranges.end(),
            [](const ByteRange& a, const ByteRange& b) {
              return a.offset < b.offset;
            });
  std::vector<ByteRange> out;
  for (const ByteRange& r : ranges) {
    if (r.len == 0) continue;
    if (!out.empty() && r.offset <= out.back().end()) {
      out.back().len = std::max(out.back().end(), r.end()) - out.back().offset;
    } else {
      out.push_back(r);
    }
  }
  return out;
}

bool as_strided(std::span<const BlockRun> runs, StridedRuns& out) {
  if (runs.size() < 2) return false;
  const u64 block_len = runs[0].count;
  const u64 stride = runs[1].start.v - runs[0].start.v;
  if (stride <= block_len) return false;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (runs[i].count != block_len) return false;
    if (i > 0 && runs[i].start.v - runs[i - 1].start.v != stride) return false;
  }
  out.start = runs[0].start;
  out.count = runs.size();
  out.stride = stride;
  out.block_len = block_len;
  return true;
}

std::vector<BlockRun> expand_strided(const StridedRuns& s) {
  std::vector<BlockRun> runs;
  runs.reserve(s.count);
  for (u64 i = 0; i < s.count; ++i) {
    runs.push_back(BlockRun{FileBlock{s.start.v + i * s.stride}, s.block_len});
  }
  return runs;
}

}  // namespace mif::util
