// Contiguous-run merging — the one place adjacency logic lives.
//
// Three layers used to re-implement "extend the tail if the next piece is
// adjacent": BatchingTransport's coalescer (block runs), CollectiveWriter's
// Range merge (byte ranges), and the client's slice grouping.  They all call
// these helpers now, so the semantics (sort, drop empties, merge on
// touch-or-overlap) are defined exactly once and unit-tested once.
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace mif::util {

/// Append `next` to `runs`, extending the tail run instead when `next`
/// starts exactly where the tail ends.  Returns true when merged (no new
/// element).  Empty runs (count == 0) are dropped and count as merged.
bool append_run(std::vector<BlockRun>& runs, BlockRun next);

/// A contiguous byte region of a file (the collective writer's currency).
struct ByteRange {
  u64 offset{0};
  u64 len{0};
  u64 end() const { return offset + len; }
  constexpr auto operator<=>(const ByteRange&) const = default;
};

/// Sort by offset, drop zero-length ranges, and merge every pair that
/// touches or overlaps (`r.offset <= back.end()`).  The result is the
/// minimal sorted set of disjoint non-empty ranges covering the input.
std::vector<ByteRange> merge_ranges(std::vector<ByteRange> ranges);

/// A strided pattern equivalent to a run list: `count` pieces of
/// `block_len` blocks, starts `stride` blocks apart, beginning at `start`.
struct StridedRuns {
  FileBlock start{};
  u64 count{0};
  u64 stride{0};
  u64 block_len{0};
};

/// Detect whether `runs` (sorted, disjoint) form a regular strided pattern
/// with at least two pieces: equal lengths and equal start-to-start gaps,
/// with stride > block_len (a degenerate stride == block_len is just one
/// contiguous run and not worth a strided envelope).  Returns true and
/// fills `out` on match.
bool as_strided(std::span<const BlockRun> runs, StridedRuns& out);

/// Expand a strided pattern back into its run list (the server side of
/// as_strided).
std::vector<BlockRun> expand_strided(const StridedRuns& s);

}  // namespace mif::util
