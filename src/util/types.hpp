// Fundamental identifiers and sizes shared by every MiF subsystem.
//
// The simulator works in units of fixed-size file-system blocks (4 KiB by
// default, matching the ext3/ext4 MFS the paper builds on).  Disk addresses,
// file logical addresses and sizes are all expressed in blocks unless a name
// says "bytes".  Strong aliases (rather than bare u64 everywhere) keep the
// allocator code honest about which address space a number lives in.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace mif {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// File-system block size in bytes.  All on-disk structures are block-sized.
inline constexpr u64 kBlockSize = 4096;

/// Sentinel for "no block" in both address spaces.
inline constexpr u64 kNoBlock = std::numeric_limits<u64>::max();

/// Physical disk block number (per storage target / allocation-group space).
struct DiskBlock {
  u64 v{kNoBlock};
  constexpr auto operator<=>(const DiskBlock&) const = default;
  constexpr bool valid() const { return v != kNoBlock; }
};

/// Logical block number inside one file.
struct FileBlock {
  u64 v{kNoBlock};
  constexpr auto operator<=>(const FileBlock&) const = default;
  constexpr bool valid() const { return v != kNoBlock; }
};

/// Unique id of a client node in the cluster.
struct ClientId {
  u32 v{0};
  constexpr auto operator<=>(const ClientId&) const = default;
};

/// A write stream = (client node, process/thread on that node).  The paper
/// (§III-A) identifies streams exactly this way: "combining the client ID and
/// the thread PID on client".
struct StreamId {
  u32 client{0};
  u32 pid{0};
  constexpr auto operator<=>(const StreamId&) const = default;
  constexpr u64 key() const { return (static_cast<u64>(client) << 32) | pid; }
};

/// Inode number.  Under the embedded-directory scheme this is a composite
/// (directory id << 32 | slot offset); under normal directories it is a flat
/// counter.  Both fit the same 64-bit carrier (paper §IV-B).
struct InodeNo {
  u64 v{0};
  constexpr auto operator<=>(const InodeNo&) const = default;
  constexpr bool valid() const { return v != 0; }
};

/// Directory identification used by the global directory table (§IV-B).
struct DirId {
  u32 v{0};
  constexpr auto operator<=>(const DirId&) const = default;
};

/// A contiguous run of logical file blocks — the unit of batched block I/O
/// (rpc::BlockWriteRequest, osd::StorageTarget::write_runs).
struct BlockRun {
  FileBlock start{};
  u64 count{0};
  constexpr auto operator<=>(const BlockRun&) const = default;
};

constexpr u64 bytes_to_blocks(u64 bytes) {
  return (bytes + kBlockSize - 1) / kBlockSize;
}
constexpr u64 blocks_to_bytes(u64 blocks) { return blocks * kBlockSize; }

}  // namespace mif

template <>
struct std::hash<mif::StreamId> {
  std::size_t operator()(const mif::StreamId& s) const noexcept {
    return std::hash<mif::u64>{}(s.key());
  }
};
template <>
struct std::hash<mif::InodeNo> {
  std::size_t operator()(const mif::InodeNo& i) const noexcept {
    return std::hash<mif::u64>{}(i.v);
  }
};
template <>
struct std::hash<mif::DirId> {
  std::size_t operator()(const mif::DirId& d) const noexcept {
    return std::hash<mif::u32>{}(d.v);
  }
};
