#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mif {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : header_[c];
      os << ' ' << s;
      for (std::size_t i = s.size(); i < width[c]; ++i) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    for (std::size_t i = 0; i < width[c] + 2; ++i) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace mif
