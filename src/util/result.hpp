// Lightweight Result<T> used across the library instead of exceptions on the
// I/O hot path (allocation failures, lookup misses and quota errors are
// ordinary control flow in a file system, not exceptional conditions).
#pragma once

#include <cassert>
#include <string_view>
#include <utility>
#include <variant>

namespace mif {

enum class Errc {
  kOk = 0,
  kNoSpace,        // allocator exhausted the requested group / device
  kNotFound,       // path, inode or directory id does not exist
  kExists,         // create over an existing name
  kNotDirectory,   // path component is a regular file
  kIsDirectory,    // file operation on a directory
  kNotEmpty,       // rmdir on a non-empty directory
  kInvalid,        // malformed argument (zero-length write, bad offset...)
  kStale,          // handle or layout generation no longer valid
  kBusy,           // resource locked by another stream/server
  kQuota,          // per-directory or per-fs structural limit reached
  kIo,             // simulated device error (fault injection)
};

std::string_view to_string(Errc e);

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT implicit by design
  Result(Errc err) : state_(err) { assert(err != Errc::kOk); }  // NOLINT

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  Errc error() const { return ok() ? Errc::kOk : std::get<Errc>(state_); }

  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Value or a fallback, for callers that have a safe default.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Errc> state_;
};

/// Specialisation-free void result.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Errc err) : err_(err) {}  // NOLINT implicit by design
  bool ok() const { return err_ == Errc::kOk; }
  explicit operator bool() const { return ok(); }
  Errc error() const { return err_; }

 private:
  Errc err_{Errc::kOk};
};

inline std::string_view to_string(Errc e) {
  switch (e) {
    case Errc::kOk: return "ok";
    case Errc::kNoSpace: return "no space";
    case Errc::kNotFound: return "not found";
    case Errc::kExists: return "exists";
    case Errc::kNotDirectory: return "not a directory";
    case Errc::kIsDirectory: return "is a directory";
    case Errc::kNotEmpty: return "directory not empty";
    case Errc::kInvalid: return "invalid argument";
    case Errc::kStale: return "stale handle";
    case Errc::kBusy: return "busy";
    case Errc::kQuota: return "quota/structural limit";
    case Errc::kIo: return "i/o error";
  }
  return "unknown";
}

}  // namespace mif
