// Deterministic PRNG (xoshiro256**) for workload generators.
//
// Benchmarks must be reproducible run-to-run, so every workload takes an
// explicit seed and derives its own generator; we never touch global RNG
// state or wall-clock entropy.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace mif {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  u64 next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  u64 uniform(u64 lo, u64 hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Sample from a bounded Pareto-ish distribution: heavy-tailed file sizes
  /// as observed in source trees (many small files, few large ones).
  u64 pareto(u64 lo, u64 hi, double alpha);

  /// Exponentially distributed double with the given mean.
  double exponential(double mean);

 private:
  u64 s_[4];
};

}  // namespace mif
