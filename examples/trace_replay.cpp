// Trace-driven methodology example: synthesise an LLNL-style checkpoint
// trace, archive it as text, then replay the identical arrival sequence
// against every allocator strategy — isolating placement policy from
// workload, exactly how the paper's micro-benchmark methodology works.
#include <cstdio>
#include <sstream>

#include "util/table.hpp"
#include "workload/trace.hpp"

int main() {
  using namespace mif;

  // 16 ranks, 1 MiB each, 8 KiB requests, realistic pacing jitter.
  const workload::Trace trace =
      workload::make_checkpoint_trace(16, 1 << 20, 8 * 1024, 0.75);

  // Traces round-trip through plain text (archive, diff, share).
  std::ostringstream archive;
  trace.save(archive);
  auto reloaded = workload::Trace::parse(archive.str());
  if (!reloaded || reloaded->size() != trace.size()) {
    std::fprintf(stderr, "trace round-trip failed\n");
    return 1;
  }
  std::printf("checkpoint trace: %zu ops, %.1f KiB as text\n\n",
              trace.size(), archive.str().size() / 1024.0);

  Table t({"allocator", "errors", "extents", "data ms", "write MB/s"});
  for (auto mode :
       {alloc::AllocatorMode::kVanilla, alloc::AllocatorMode::kReservation,
        alloc::AllocatorMode::kOnDemand}) {
    core::ClusterConfig cfg;
    cfg.num_targets = 5;
    cfg.target.allocator = mode;
    core::ParallelFileSystem fs(cfg);
    const workload::ReplayResult r = workload::replay(fs, *reloaded);
    auto layout = fs.rpc().open_getlayout("ckpt.odb");
    t.add_row({std::string(alloc::to_string(mode)), std::to_string(r.errors),
               layout ? std::to_string(layout->extent_count) : "?",
               Table::num(r.data_elapsed_ms, 1),
               Table::num(static_cast<double>(r.bytes_written) /
                          (r.data_elapsed_ms * 1e-3) / 1e6)});
  }
  t.print();
  std::printf(
      "\nSame bytes, same arrival order — only the allocator changed.\n");
  return 0;
}
