// Diagnostic example: drive the allocator with different stream mixes and
// print a fragmentation report — extents per file, window state, and what
// the on-demand triggers did.  Useful for understanding §III's algorithm.
#include <cstdio>

#include "alloc/ondemand.hpp"
#include "util/table.hpp"

int main() {
  using namespace mif;

  block::FreeSpace space(DiskBlock{0}, 512 * 1024, 8);
  alloc::AllocatorTuning tuning;
  alloc::OnDemandAllocator allocator(space, tuning);

  std::printf("On-demand preallocation trigger walkthrough (Fig. 3)\n\n");

  block::ExtentMap shared;
  const u32 streams = 3;
  const u64 per_stream = 24;

  // Interleaved single-block extends, exactly like the paper's example.
  for (u64 round = 0; round < per_stream; ++round) {
    for (u32 p = 0; p < streams; ++p) {
      const u64 logical = static_cast<u64>(p) * per_stream + round;
      if (!allocator
               .extend({InodeNo{1}, StreamId{p, 0}, FileBlock{logical}, 1},
                       shared)
               .ok()) {
        std::fprintf(stderr, "extend failed\n");
        return 1;
      }
    }
  }

  const auto stats = allocator.stats();
  std::printf("after %llu interleaved writes from %u streams:\n",
              static_cast<unsigned long long>(per_stream * streams), streams);
  std::printf("  layout_miss hits      : %llu\n",
              static_cast<unsigned long long>(stats.layout_misses));
  std::printf("  pre_alloc_layout hits : %llu\n",
              static_cast<unsigned long long>(stats.prealloc_promotions));
  std::printf("  extents in file       : %zu\n", shared.extent_count());
  std::printf("  blocks still reserved : %llu\n\n",
              static_cast<unsigned long long>(stats.reserved_blocks));

  Table windows({"stream", "sequential window (blocks)", "demoted?"});
  for (u32 p = 0; p < streams; ++p) {
    windows.add_row(
        {"P" + std::to_string(p + 1),
         std::to_string(
             allocator.sequential_window_blocks(InodeNo{1}, StreamId{p, 0})),
         allocator.prealloc_disabled(InodeNo{1}, StreamId{p, 0}) ? "yes"
                                                                 : "no"});
  }
  windows.print();

  // Now a random writer: watch the miss threshold demote it.
  std::printf("\nrandom stream P9 writing far-apart offsets:\n");
  block::ExtentMap scratch;
  for (u64 i = 0; i < 6; ++i) {
    (void)allocator.extend(
        {InodeNo{2}, StreamId{9, 0}, FileBlock{i * 5000}, 1}, scratch);
    std::printf("  write %llu: window=%llu demoted=%s\n",
                static_cast<unsigned long long>(i),
                static_cast<unsigned long long>(
                    allocator.sequential_window_blocks(InodeNo{2},
                                                       StreamId{9, 0})),
                allocator.prealloc_disabled(InodeNo{2}, StreamId{9, 0})
                    ? "yes"
                    : "no");
  }
  std::printf(
      "\nSequential streams ramp their windows exponentially; the random\n"
      "stream is cut off after %u misses and stops wasting reservations.\n",
      tuning.miss_threshold);
  return 0;
}
