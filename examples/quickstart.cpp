// Quickstart: mount a MiF-enabled Redbud cluster, write a shared file from
// several streams, read it back, and print what the placement looked like.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/pfs.hpp"

int main() {
  using namespace mif;

  // A cluster with both MiF techniques enabled: on-demand preallocation on
  // the storage targets, embedded directories on the metadata server.
  core::ClusterConfig cfg;
  cfg.num_targets = 5;
  cfg.target.allocator = alloc::AllocatorMode::kOnDemand;
  cfg.mds.mfs.mode = mfs::DirectoryMode::kEmbedded;
  core::ParallelFileSystem fs(cfg);

  auto client = fs.connect(ClientId{1});

  // Create a directory and a shared output file.
  if (!fs.rpc().mkdir("results")) {
    std::fprintf(stderr, "mkdir failed\n");
    return 1;
  }
  auto fh = client.create("results/simulation.odb");
  if (!fh) {
    std::fprintf(stderr, "create failed\n");
    return 1;
  }

  // Four "processes" concurrently extend disjoint regions of the file —
  // the access pattern that fragments traditional parallel file systems.
  constexpr u64 kRegionBytes = 1 << 20;  // 1 MiB per stream
  for (u64 round = 0; round < 16; ++round) {
    for (u32 pid = 0; pid < 4; ++pid) {
      const u64 offset = pid * kRegionBytes + round * (kRegionBytes / 16);
      if (!client.write(*fh, pid, offset, kRegionBytes / 16).ok()) {
        std::fprintf(stderr, "write failed\n");
        return 1;
      }
    }
  }
  fs.drain_data();
  if (!client.close(*fh).ok()) return 1;

  // Read everything back sequentially.
  auto rfh = client.open("results/simulation.odb");
  if (!rfh || !client.read(*rfh, 0, 4 * kRegionBytes).ok()) return 1;
  fs.drain_data();

  const auto stats = fs.data_stats();
  std::printf("MiF quickstart\n");
  std::printf("  wrote+read      : %.1f MiB\n",
              4.0 * kRegionBytes / (1 << 20));
  std::printf("  file extents    : %llu (lower = less fragmented)\n",
              static_cast<unsigned long long>(fs.file_extents(fh->ino)));
  std::printf("  disk positions  : %llu\n",
              static_cast<unsigned long long>(stats.positionings));
  std::printf("  simulated time  : %.2f ms\n", fs.data_elapsed_ms());
  std::printf("  MDS cpu         : %.2f%%\n",
              100.0 * fs.mds().cpu_utilization());
  return 0;
}
