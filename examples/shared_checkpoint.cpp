// Scenario example: an LLNL-style physics simulation checkpointing into one
// shared file from many processes (§II-A1's motivating workload), run under
// all three preallocation strategies so the effect of on-demand
// preallocation is visible side by side.
#include <cstdio>

#include "util/table.hpp"
#include "workload/shared_file.hpp"

int main() {
  using namespace mif;

  workload::SharedFileConfig wcfg;
  wcfg.processes = 32;
  wcfg.threads_per_client = 4;
  wcfg.blocks_per_process = 256;  // 1 MiB per process
  wcfg.read_segments = 256;

  Table table({"strategy", "extents", "positionings", "read MB/s"});

  struct Mode {
    const char* name;
    alloc::AllocatorMode alloc;
    bool static_pre;
  };
  const Mode modes[] = {
      {"reservation (ext4-style)", alloc::AllocatorMode::kReservation, false},
      {"on-demand (MiF)", alloc::AllocatorMode::kOnDemand, false},
      {"fallocate (needs size)", alloc::AllocatorMode::kStatic, true},
  };

  std::printf("Shared checkpoint: %u processes extending one file\n\n",
              wcfg.processes);
  for (const Mode& m : modes) {
    core::ClusterConfig cfg;
    cfg.num_targets = 5;
    cfg.target.allocator = m.alloc;
    core::ParallelFileSystem fs(cfg);
    workload::SharedFileConfig c = wcfg;
    c.static_prealloc = m.static_pre;
    const auto res = workload::run_shared_file(fs, c);
    table.add_row({m.name, std::to_string(res.extents),
                   std::to_string(res.positionings),
                   Table::num(res.phase2_throughput_mbps)});
  }
  table.print();
  std::printf(
      "\nOn-demand preallocation keeps each stream's region contiguous\n"
      "without knowing the file size in advance (fallocate's requirement).\n");
  return 0;
}
