// Scenario example: `ls -l` over a big directory — the readdir-stat
// aggregation of §II-A2 — under both directory layouts, printing the disk
// traffic each one causes.
#include <cstdio>

#include "mds/mds.hpp"
#include "util/table.hpp"

int main() {
  using namespace mif;

  constexpr int kFiles = 5000;  // the paper's per-directory population
  Table table(
      {"layout", "disk accesses", "blocks read", "positionings", "ms"});

  for (auto mode :
       {mfs::DirectoryMode::kNormal, mfs::DirectoryMode::kEmbedded}) {
    mds::MdsConfig cfg;
    cfg.mfs.mode = mode;
    mds::Mds mds(cfg);

    if (!mds.mkdir("project")) return 1;
    for (int i = 0; i < kFiles; ++i) {
      if (!mds.create("project/file" + std::to_string(i))) return 1;
    }
    mds.finish();
    // Cold cache: we want the on-disk layout, not the page cache, to answer.
    mds.fs().cache().invalidate_all();

    const double t0 = mds.fs().elapsed_ms();
    const u64 a0 = mds.fs().disk_accesses();
    auto entries = mds.readdir_stats("project");  // ls -l
    if (!entries || entries->size() != kFiles) return 1;
    mds.finish();

    const auto& d = mds.fs().disk().stats();
    table.add_row({std::string(to_string(mode)),
                   std::to_string(mds.fs().disk_accesses() - a0),
                   std::to_string(d.blocks_read),
                   std::to_string(d.positionings),
                   Table::num(mds.fs().elapsed_ms() - t0, 2)});
  }

  std::printf("ls -l over one %d-file directory (cold MDS cache)\n\n", kFiles);
  table.print();
  std::printf(
      "\nEmbedded directories co-locate dirents, inodes and mappings, so the\n"
      "whole listing is one sequential sweep instead of region ping-pong.\n");
  return 0;
}
