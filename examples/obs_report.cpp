// Observability tour: mount a cluster with a trace buffer attached, run the
// shared-file micro-benchmark, then print everything the obs layer can tell
// you about it — the metrics registry as text, the allocator state-machine
// trace, and (with --json <path>) the full machine-readable report.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/obs_report [--json report.json]
#include <cstdio>

#include "obs/report.hpp"
#include "workload/shared_file.hpp"

int main(int argc, char** argv) {
  using namespace mif;
  obs::BenchReport report("obs_report", argc, argv);

  core::ClusterConfig cfg;
  cfg.num_targets = 5;
  cfg.target.allocator = alloc::AllocatorMode::kOnDemand;
  core::ParallelFileSystem fs(cfg);

  // Attach one bounded trace sink to the whole stack: every target's
  // allocator, the MDS journal, and the MDS buffer cache record into it.
  obs::TraceBuffer trace(8192);
  fs.set_trace(&trace);

  workload::SharedFileConfig wcfg;
  wcfg.processes = 16;
  wcfg.blocks_per_process = 128;
  wcfg.request_blocks = 4;
  wcfg.read_segments = 256;
  const auto res = workload::run_shared_file(fs, wcfg);

  // --- the registry: every layer's counters under one namespace -----------
  obs::MetricsRegistry reg;
  fs.export_metrics(reg);
  std::printf("=== metrics registry ===\n%s\n", reg.to_text().c_str());

  // --- the trace: what the on-demand state machine actually did -----------
  std::printf("=== allocator trace (%zu events, %llu dropped) ===\n",
              trace.size(), static_cast<unsigned long long>(trace.dropped()));
  u64 misses = 0, promotions = 0, demotions = 0, lazy_frees = 0;
  for (const auto& ev : trace.events()) {
    switch (ev.type) {
      case obs::TraceEventType::kLayoutMiss: ++misses; break;
      case obs::TraceEventType::kPreAllocLayout: ++promotions; break;
      case obs::TraceEventType::kStreamDemote: ++demotions; break;
      case obs::TraceEventType::kLazyFree: ++lazy_frees; break;
      default: break;
    }
  }
  std::printf("  layout_miss     : %llu\n",
              static_cast<unsigned long long>(misses));
  std::printf("  pre_alloc_layout: %llu\n",
              static_cast<unsigned long long>(promotions));
  std::printf("  stream_demote   : %llu\n",
              static_cast<unsigned long long>(demotions));
  std::printf("  lazy_free       : %llu\n",
              static_cast<unsigned long long>(lazy_frees));

  // The events of one stream in isolation (read-side filter): take the
  // (inode, stream) of the first stream-scoped event and show its
  // miss → promote ramp.
  for (const auto& first : trace.events()) {
    if (first.stream == 0) continue;
    const InodeNo ino{first.inode};
    const StreamId sid{static_cast<u32>(first.stream >> 32),
                       static_cast<u32>(first.stream)};
    const auto one = trace.events(ino, sid);
    std::printf("\nfirst stream's events (inode %llu): %zu recorded\n",
                static_cast<unsigned long long>(first.inode), one.size());
    std::size_t shown = 0;
    for (const auto& ev : one) {
      if (++shown > 6) break;
      std::printf("  seq=%llu %s args=(%llu, %llu)\n",
                  static_cast<unsigned long long>(ev.seq),
                  std::string(obs::to_string(ev.type)).c_str(),
                  static_cast<unsigned long long>(ev.arg0),
                  static_cast<unsigned long long>(ev.arg1));
    }
    break;
  }

  std::printf("\nshared-file result: phase2 %.1f MB/s, %llu extents\n",
              res.phase2_throughput_mbps,
              static_cast<unsigned long long>(res.extents));

  if (report.json_enabled()) {
    obs::Json results;
    results["phase2_throughput_mbps"] = res.phase2_throughput_mbps;
    results["extents"] = res.extents;
    report.add_run("shared_file", obs::Json::Object{}, std::move(results),
                   fs.metrics_json());
    report.doc()["trace"] = trace.to_json();
    report.write();
  }
  return 0;
}
