// Unit tests for the readahead window and the network model.
#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/readahead.hpp"

namespace mif::sim {
namespace {

TEST(Readahead, FirstAccessFetchesInitialWindow) {
  Readahead ra({4, 128});
  EXPECT_EQ(ra.advise(0, 1), 4u);  // want 1, window 4
}

TEST(Readahead, SequentialAccessesAreAbsorbedThenGrow) {
  Readahead ra({4, 128});
  EXPECT_EQ(ra.advise(0, 1), 4u);
  // Blocks 1..3 covered by the prefetch: zero new I/O.
  EXPECT_EQ(ra.advise(1, 1), 0u);
  EXPECT_EQ(ra.advise(2, 1), 0u);
  EXPECT_EQ(ra.advise(3, 1), 0u);
  // Block 4 continues the run: window doubled.
  const u64 f = ra.advise(4, 1);
  EXPECT_GE(f, 8u);
  EXPECT_EQ(ra.hits(), 4u);
}

TEST(Readahead, WindowDoublesUpToMax) {
  Readahead ra({4, 64});
  u64 pos = 0;
  // Long sequential scan: window must saturate at max.
  for (int i = 0; i < 200; ++i) {
    const u64 f = ra.advise(pos, 1);
    pos += 1;
    (void)f;
  }
  EXPECT_EQ(ra.window(), 64u);
}

TEST(Readahead, RandomAccessCollapsesWindow) {
  Readahead ra({4, 128});
  ra.advise(0, 1);
  ra.advise(1, 1);
  ra.advise(2, 1);
  ra.advise(1000, 1);  // jump
  EXPECT_EQ(ra.window(), 4u);
  EXPECT_EQ(ra.misses(), 1u);
}

TEST(Readahead, LargeWantFetchesAtLeastWant) {
  Readahead ra({4, 128});
  EXPECT_GE(ra.advise(0, 32), 32u);
}

TEST(Readahead, SequentialScanIssuesFarFewerFetches) {
  // The Fig. 8 readdir-stat mechanism: a growing window turns N unit reads
  // into O(log N + N/max) fetches.
  Readahead ra({4, 128});
  u64 fetches = 0;
  for (u64 b = 0; b < 1024; ++b) {
    if (ra.advise(b, 1) > 0) ++fetches;
  }
  EXPECT_LT(fetches, 20u);
}

TEST(Network, RpcChargesLatencyPlusBandwidth) {
  Network n({1.0, 100.0});  // 1 ms RTT, 100 MB/s
  const double t = n.rpc(1000000);  // 1 MB → 10 ms transfer
  EXPECT_NEAR(t, 11.0, 1e-9);
  EXPECT_EQ(n.stats().rpcs, 1u);
  EXPECT_EQ(n.stats().bytes, 1000000u);
}

TEST(Network, StatsAccumulate) {
  Network n;
  n.rpc(100);
  n.rpc(200);
  EXPECT_EQ(n.stats().rpcs, 2u);
  EXPECT_EQ(n.stats().bytes, 300u);
  n.reset_stats();
  EXPECT_EQ(n.stats().rpcs, 0u);
}

}  // namespace
}  // namespace mif::sim
