// Unit tests for the client file system against a small mounted cluster.
#include <gtest/gtest.h>

#include "core/pfs.hpp"

namespace mif::client {
namespace {

core::ClusterConfig small_cluster(alloc::AllocatorMode mode) {
  core::ClusterConfig cfg;
  cfg.num_targets = 3;
  cfg.stripe.unit_blocks = 8;
  cfg.target.allocator = mode;
  return cfg;
}

struct ClientFixture : ::testing::Test {
  core::ParallelFileSystem fs{small_cluster(alloc::AllocatorMode::kOnDemand)};
};

TEST_F(ClientFixture, CreateWriteReadClose) {
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("/data");
  ASSERT_TRUE(fh);
  ASSERT_TRUE(c.write(*fh, 0, 0, 1 << 20).ok());
  fs.drain_data();
  ASSERT_TRUE(c.read(*fh, 0, 1 << 20).ok());
  fs.drain_data();
  ASSERT_TRUE(c.close(*fh).ok());
  const auto stats = fs.data_stats();
  EXPECT_EQ(stats.blocks_written, (1u << 20) / kBlockSize);
  EXPECT_EQ(stats.blocks_read, (1u << 20) / kBlockSize);
}

TEST_F(ClientFixture, WritesStripeAcrossAllTargets) {
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("/striped");
  ASSERT_TRUE(fh);
  // 3 stripe units × 3 targets.
  ASSERT_TRUE(c.write(*fh, 0, 0, 9 * 8 * kBlockSize).ok());
  fs.drain_data();
  for (std::size_t t = 0; t < fs.num_targets(); ++t) {
    EXPECT_EQ(fs.target(t).disk().stats().blocks_written, 24u)
        << "target " << t;
  }
}

TEST_F(ClientFixture, UnalignedWritesRoundToBlocks) {
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("/odd");
  ASSERT_TRUE(fh);
  ASSERT_TRUE(c.write(*fh, 0, 100, 50).ok());  // inside block 0
  fs.drain_data();
  EXPECT_EQ(fs.data_stats().blocks_written, 1u);
}

TEST_F(ClientFixture, ZeroLengthRejected) {
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("/z");
  ASSERT_TRUE(fh);
  EXPECT_EQ(c.write(*fh, 0, 0, 0).error(), Errc::kInvalid);
  EXPECT_EQ(c.read(*fh, 0, 0).error(), Errc::kInvalid);
}

TEST_F(ClientFixture, OpenUsesLayoutCacheOnSecondOpen) {
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("/cached");
  ASSERT_TRUE(fh);
  ASSERT_TRUE(c.write(*fh, 0, 0, 64 * 1024).ok());
  ASSERT_TRUE(c.close(*fh).ok());
  ASSERT_TRUE(c.open("/cached"));
  EXPECT_EQ(c.stats().layout_cache_hits, 1u);  // close primed the cache
  ASSERT_TRUE(c.open("/cached"));
  EXPECT_EQ(c.stats().layout_cache_hits, 2u);
}

TEST_F(ClientFixture, CloseReportsExtentsToMds) {
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("/report");
  ASSERT_TRUE(fh);
  ASSERT_TRUE(c.write(*fh, 0, 0, 256 * 1024).ok());
  const u64 e0 = fs.mds().stats().extent_ops;
  ASSERT_TRUE(c.close(*fh).ok());
  EXPECT_GT(fs.mds().stats().extent_ops, e0);
  // And the MDS now serves the layout on open.
  auto c2 = fs.connect(ClientId{2});
  auto reopened = c2.open("/report");
  ASSERT_TRUE(reopened);
}

TEST_F(ClientFixture, OpenMissingFileFails) {
  auto c = fs.connect(ClientId{1});
  EXPECT_EQ(c.open("/missing").error(), Errc::kNotFound);
}

TEST_F(ClientFixture, StatsTrackTraffic) {
  auto c = fs.connect(ClientId{1});
  auto fh = c.create("/s");
  ASSERT_TRUE(fh);
  ASSERT_TRUE(c.write(*fh, 0, 0, 8192).ok());
  ASSERT_TRUE(c.read(*fh, 0, 4096).ok());
  EXPECT_EQ(c.stats().bytes_written, 8192u);
  EXPECT_EQ(c.stats().bytes_read, 4096u);
  EXPECT_EQ(c.stats().writes, 1u);
  EXPECT_EQ(c.stats().reads, 1u);
}

TEST_F(ClientFixture, TwoClientsShareOneFile) {
  auto c1 = fs.connect(ClientId{1});
  auto c2 = fs.connect(ClientId{2});
  auto fh = c1.create("/shared");
  ASSERT_TRUE(fh);
  auto fh2 = c2.open("/shared");
  ASSERT_TRUE(fh2);
  ASSERT_TRUE(c1.write(*fh, 0, 0, 64 * 1024).ok());
  ASSERT_TRUE(c2.write(*fh2, 0, 64 * 1024, 64 * 1024).ok());
  fs.drain_data();
  EXPECT_EQ(fs.data_stats().blocks_written, 32u);
  EXPECT_GT(fs.file_extents(fh->ino), 0u);
}

}  // namespace
}  // namespace mif::client
