// Tests for the end-to-end span tracer: nesting/causality, trace-id
// propagation through the full client → MDS → OSD → disk stack, slow-log
// retention, metrics export and the Chrome-trace JSON shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/pfs.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace mif::obs {
namespace {

/// Busy-wait so a span's host-clock duration is at least `us`.
void spin_us(const SpanCollector& c, double us) {
  const double until = c.now_us() + us;
  while (c.now_us() < until) {
  }
}

TEST(Span, NullCollectorIsNoOp) {
  ScopedSpan span(nullptr, "client.write", 1, 2);
  EXPECT_FALSE(span.context().valid());
  EXPECT_FALSE(span.root());
}

TEST(Span, RootOpensTraceChildInheritsIt) {
  SpanCollector c;
  u64 root_trace = 0, root_span = 0, child_span = 0;
  {
    ScopedSpan root(&c, "client.write");
    EXPECT_TRUE(root.root());
    EXPECT_TRUE(root.context().valid());
    root_trace = root.context().trace_id;
    root_span = root.context().span_id;
    {
      ScopedSpan child(&c, "osd.stripe_unit");
      EXPECT_FALSE(child.root());
      EXPECT_EQ(child.context().trace_id, root_trace);
      EXPECT_NE(child.context().span_id, root_span);
      child_span = child.context().span_id;
    }
  }
  const auto spans = c.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Children complete before their parent (LIFO scopes).
  EXPECT_EQ(spans[0].span_id, child_span);
  EXPECT_EQ(spans[0].parent_id, root_span);
  EXPECT_EQ(spans[1].span_id, root_span);
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_EQ(spans[0].trace_id, spans[1].trace_id);
}

TEST(Span, ChildDurationsSumWithinParent) {
  SpanCollector c;
  {
    ScopedSpan root(&c, "client.write");
    for (int i = 0; i < 3; ++i) {
      ScopedSpan child(&c, "osd.stripe_unit");
      spin_us(c, 50.0);
    }
  }
  const auto spans = c.spans();
  ASSERT_EQ(spans.size(), 4u);
  const SpanRecord& root = spans.back();
  EXPECT_EQ(root.parent_id, 0u);
  double child_sum = 0.0;
  for (std::size_t i = 0; i + 1 < spans.size(); ++i) {
    EXPECT_EQ(spans[i].parent_id, root.span_id);
    // Causality: a child starts and ends inside its parent.
    EXPECT_GE(spans[i].start_us, root.start_us);
    EXPECT_LE(spans[i].start_us + spans[i].dur_us,
              root.start_us + root.dur_us + 1e-6);
    child_sum += spans[i].dur_us;
  }
  EXPECT_LE(child_sum, root.dur_us + 1e-6);
  EXPECT_GE(root.dur_us, 150.0);  // three 50 µs children
}

TEST(Span, AmbientReflectsInnermostOpenSpan) {
  SpanCollector c;
  EXPECT_FALSE(c.ambient().valid());
  {
    ScopedSpan root(&c, "client.read");
    EXPECT_EQ(c.ambient().span_id, root.context().span_id);
    {
      ScopedSpan child(&c, "osd.stripe_unit");
      EXPECT_EQ(c.ambient().span_id, child.context().span_id);
    }
    EXPECT_EQ(c.ambient().span_id, root.context().span_id);
  }
  EXPECT_FALSE(c.ambient().valid());
  // Two collectors on one thread never see each other's ambient context.
  SpanCollector other;
  ScopedSpan root(&c, "client.read");
  EXPECT_FALSE(other.ambient().valid());
}

TEST(Span, RecordSimUsesSimClockAndMillisecondInput) {
  SpanCollector c;
  c.record_sim("disk.seek", /*track=*/3, /*start_ms=*/1.5, /*dur_ms=*/0.25,
               SpanContext{}, /*arg0=*/7);
  const auto spans = c.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].clock, SpanClock::kSim);
  EXPECT_EQ(spans[0].track, 3u);
  EXPECT_DOUBLE_EQ(spans[0].start_us, 1500.0);
  EXPECT_DOUBLE_EQ(spans[0].dur_us, 250.0);
  EXPECT_EQ(spans[0].arg0, 7u);
}

TEST(Span, RingOverwritesOldestAndCountsDrops) {
  Config cfg;
  cfg.span_capacity = 4;
  SpanCollector c(cfg);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span(&c, "client.write", static_cast<u64>(i));
  }
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.capacity(), 4u);
  EXPECT_EQ(c.total_spans(), 10u);
  EXPECT_EQ(c.dropped(), 6u);
  // The survivors are the four newest, still in completion order.
  const auto spans = c.spans();
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(spans[i].arg0, 6 + i);
}

TEST(Span, SlowLogRetainsExactlyTopKByDuration) {
  Config cfg;
  cfg.slow_k = 3;
  SpanCollector c(cfg);
  for (int i = 0; i < 8; ++i) {
    ScopedSpan root(&c, "client.write", static_cast<u64>(i));
    spin_us(c, 30.0 + 40.0 * i);
  }
  // Self-consistent check (immune to scheduler noise): the slow log must
  // hold exactly the K slowest roots actually recorded, slowest first.
  std::vector<SpanRecord> roots = c.spans();
  ASSERT_EQ(roots.size(), 8u);
  std::sort(roots.begin(), roots.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.dur_us > b.dur_us;
            });
  const auto slow = c.slow_traces();
  ASSERT_EQ(slow.size(), 3u);
  for (std::size_t i = 0; i < slow.size(); ++i) {
    EXPECT_EQ(slow[i].trace_id, roots[i].trace_id) << "rank " << i;
    EXPECT_DOUBLE_EQ(slow[i].dur_us, roots[i].dur_us);
    EXPECT_EQ(slow[i].root_name, "client.write");
    // The retained tree carries the root span itself.
    ASSERT_FALSE(slow[i].spans.empty());
    EXPECT_EQ(slow[i].spans.back().parent_id, 0u);
  }
  EXPECT_GE(slow[0].dur_us, slow[1].dur_us);
  EXPECT_GE(slow[1].dur_us, slow[2].dur_us);
}

TEST(Span, SlowLogKeepsFullSpanTree) {
  Config cfg;
  cfg.slow_k = 1;
  SpanCollector c(cfg);
  {
    ScopedSpan root(&c, "client.write");
    ScopedSpan child(&c, "osd.stripe_unit");
    c.record_sim("disk.seek", 0, 0.0, 1.0, c.ambient());
  }
  const auto slow = c.slow_traces();
  ASSERT_EQ(slow.size(), 1u);
  std::set<std::string> names;
  for (const SpanRecord& s : slow[0].spans) names.emplace(s.name);
  EXPECT_TRUE(names.count("client.write"));
  EXPECT_TRUE(names.count("osd.stripe_unit"));
  EXPECT_TRUE(names.count("disk.seek"));
}

TEST(Span, SlowThresholdFiltersFastTraces) {
  Config cfg;
  cfg.slow_k = 4;
  cfg.slow_threshold_us = 1e9;  // nothing on Earth is this slow
  SpanCollector c(cfg);
  for (int i = 0; i < 4; ++i) ScopedSpan{&c, "client.write"};
  EXPECT_TRUE(c.slow_traces().empty());
}

TEST(Span, PropagatesThroughFullStack) {
  core::ClusterConfig cluster;
  cluster.num_targets = 3;
  cluster.target.allocator = alloc::AllocatorMode::kOnDemand;
  core::ParallelFileSystem fs(cluster);
  SpanCollector c;
  fs.set_spans(&c);

  auto client = fs.connect(ClientId{1});
  auto fh = client.create("/spans.dat");
  ASSERT_TRUE(fh);
  ASSERT_TRUE(client.write(*fh, 0, 0, 256 * 1024).ok());
  fs.drain_data();
  ASSERT_TRUE(client.close(*fh).ok());

  // client.create reached the MDS: one trace holds both layers.
  const auto spans = c.spans();
  u64 create_trace = 0, write_trace = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == "client.create") create_trace = s.trace_id;
    if (s.name == "client.write") write_trace = s.trace_id;
  }
  ASSERT_NE(create_trace, 0u);
  ASSERT_NE(write_trace, 0u);
  EXPECT_NE(create_trace, write_trace);

  std::set<std::string> create_phases, write_phases;
  for (const SpanRecord& s : spans) {
    if (s.trace_id == create_trace) create_phases.emplace(s.name);
    if (s.trace_id == write_trace) write_phases.emplace(s.name);
  }
  EXPECT_TRUE(create_phases.count("mds.create"));
  EXPECT_TRUE(write_phases.count("osd.stripe_unit"));
  EXPECT_TRUE(write_phases.count("alloc.decide"));

  // Detach: no further spans are recorded.
  fs.set_spans(nullptr);
  const std::size_t before = c.size();
  ASSERT_TRUE(client.open("/spans.dat").ok());
  EXPECT_EQ(c.size(), before);
}

TEST(Span, ExportPublishesPerPhaseQuantiles) {
  SpanCollector c;
  for (int i = 0; i < 16; ++i) {
    ScopedSpan span(&c, "client.write");
    spin_us(c, 20.0);
  }
  MetricsRegistry reg;
  c.export_metrics(reg);
  const Json j = reg.to_json();
  const auto& histo = j.as_object().at("histograms").as_object();
  ASSERT_TRUE(histo.count("span.client.write"));
  const auto& h = histo.at("span.client.write").as_object();
  EXPECT_EQ(h.at("count").as_u64(), 16u);
  for (const char* q : {"p50", "p95", "p99"}) {
    ASSERT_TRUE(h.count(q)) << q;
    EXPECT_GE(h.at(q).as_double(), 20e3);  // ns: every span spun ≥ 20 µs
  }
  const auto& stats = j.as_object().at("stats").as_object();
  ASSERT_TRUE(stats.count("span.client.write.us"));
  EXPECT_EQ(j.as_object().at("counters").as_object().at("span.total").as_u64(),
            16u);
}

TEST(Span, ChromeTraceJsonIsWellFormed) {
  SpanCollector c;
  {
    ScopedSpan root(&c, "client.write", 42);
    ScopedSpan child(&c, "osd.stripe_unit");
    c.record_sim("disk.transfer", 1, 2.0, 3.0, c.ambient());
  }
  const Json doc = chrome_trace_json(c);
  // Round-trips through the parser (well-formed JSON text).
  auto reparsed = Json::parse(doc.dump(2));
  ASSERT_TRUE(reparsed.has_value());

  const auto& obj = reparsed->as_object();
  ASSERT_TRUE(obj.count("traceEvents"));
  const auto& events = obj.at("traceEvents").as_array();
  std::size_t complete = 0;
  std::set<u64> pids;
  for (const Json& e : events) {
    const auto& ev = e.as_object();
    ASSERT_TRUE(ev.count("ph"));
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "M") continue;  // metadata (process/thread names)
    EXPECT_EQ(ph, "X");
    ++complete;
    ASSERT_TRUE(ev.count("name"));
    ASSERT_TRUE(ev.count("ts"));
    ASSERT_TRUE(ev.count("dur"));
    ASSERT_TRUE(ev.count("pid"));
    ASSERT_TRUE(ev.count("tid"));
    EXPECT_GE(ev.at("ts").as_double(), 0.0);
    EXPECT_GE(ev.at("dur").as_double(), 0.0);
    pids.insert(ev.at("pid").as_u64());
  }
  EXPECT_EQ(complete, 3u);
  // Host spans on pid 1, sim-disk spans on pid 2 — never mixed.
  EXPECT_EQ(pids, (std::set<u64>{1u, 2u}));
  ASSERT_TRUE(obj.count("slowTraces"));
}

TEST(Span, ClearDropsDataKeepsIdentity) {
  SpanCollector c;
  u64 first_trace = 0;
  {
    ScopedSpan span(&c, "client.write");
    first_trace = span.context().trace_id;
  }
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_TRUE(c.slow_traces().empty());
  ScopedSpan span(&c, "client.write");
  EXPECT_GT(span.context().trace_id, first_trace);  // ids keep counting
}

TEST(Span, SharedObsConfigSizesTraceBufferAndSpanRing) {
  Config cfg;
  cfg.trace_capacity = 32;
  cfg.span_capacity = 16;
  TraceBuffer trace(cfg);
  SpanCollector spans(cfg);
  EXPECT_EQ(trace.capacity(), 32u);
  EXPECT_EQ(spans.capacity(), 16u);
}

}  // namespace
}  // namespace mif::obs
