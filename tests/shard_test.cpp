// Sharded metadata service: placement map, inode tagging, whole-stack
// routing through shard::ShardedTransport (fan-out aggregation, per-shard
// colocation), the two-phase cross-shard rename (including a
// FaultTransport-injected failure between the phases + recovery), and the
// shard.* observability surface.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/pfs.hpp"
#include "obs/span.hpp"
#include "shard/map.hpp"
#include "shard/router.hpp"
#include "shard/transport.hpp"

namespace mif {
namespace {

core::ClusterConfig sharded_cfg(u32 shards, shard::Policy policy) {
  core::ClusterConfig cfg;
  cfg.num_targets = 3;
  cfg.mds.shards = shards;
  cfg.mds.placement = policy;
  return cfg;
}

// --- shard::Map -------------------------------------------------------------

TEST(ShardMap, DelegationIsRoundRobinAndIdempotent) {
  shard::Map map(3, shard::Policy::kSubtree);
  EXPECT_EQ(map.delegate("a"), 0u);
  EXPECT_EQ(map.delegate("b"), 1u);
  EXPECT_EQ(map.delegate("c"), 2u);
  EXPECT_EQ(map.delegate("d"), 0u);
  // Re-delegating an assigned name keeps its shard and burns no slot.
  EXPECT_EQ(map.delegate("b"), 1u);
  EXPECT_EQ(map.delegate("e"), 1u);
  EXPECT_TRUE(map.delegated("a"));
  EXPECT_FALSE(map.delegated("zzz"));
}

TEST(ShardMap, SubtreeOwnerFollowsTopLevelDelegation) {
  shard::Map map(4, shard::Policy::kSubtree);
  map.delegate("proj");
  map.delegate("home");
  EXPECT_EQ(map.owner_of("proj/src/a.c"), map.owner_of("proj/doc/b.txt"));
  EXPECT_EQ(map.owner_of("home/u1"), 1u);
  // Root and undelegated names fall back to shard 0.
  EXPECT_EQ(map.owner_of("/"), 0u);
  EXPECT_EQ(map.owner_of("loose.txt"), 0u);
}

TEST(ShardMap, HashOwnerIsStableAndSpread) {
  shard::Map map(4, shard::Policy::kHash);
  std::vector<u64> per_shard(4, 0);
  for (int i = 0; i < 256; ++i) {
    const std::string p = "dir/f" + std::to_string(i);
    const u32 owner = map.owner_of(p);
    EXPECT_EQ(owner, map.owner_of(p));  // stable
    ++per_shard[owner];
  }
  for (u64 n : per_shard) EXPECT_GT(n, 0u);
}

// --- inode tagging ----------------------------------------------------------

TEST(ShardRouter, InodeTagRoundTrips) {
  for (u32 shard : {0u, 1u, 3u, 200u}) {
    const InodeNo local{(u64{7} << 32) | 42};  // embedded dir<<32|slot shape
    const InodeNo tagged = shard::Router::tag(shard, local);
    EXPECT_EQ(shard::Router::shard_of(tagged), shard);
    EXPECT_EQ(shard::Router::untag(tagged).v, local.v);
    EXPECT_NE(tagged.v, local.v);
  }
  // Untagged numbers route to shard 0.
  EXPECT_EQ(shard::Router::shard_of(InodeNo{12345}), 0u);
}

TEST(ShardRouter, StatsImbalance) {
  shard::Router r(4, shard::Policy::kHash);
  for (int i = 0; i < 10; ++i) r.count_op(0);
  for (int i = 0; i < 10; ++i) r.count_op(1);
  for (int i = 0; i < 10; ++i) r.count_op(2);
  for (int i = 0; i < 10; ++i) r.count_op(3);
  EXPECT_DOUBLE_EQ(r.stats().imbalance(), 1.0);
  for (int i = 0; i < 40; ++i) r.count_op(2);
  EXPECT_GT(r.stats().imbalance(), 2.0);
}

// --- whole-stack routing ----------------------------------------------------

TEST(ShardedStack, SingleShardBuildsNoRouter) {
  core::ParallelFileSystem fs(sharded_cfg(1, shard::Policy::kSubtree));
  EXPECT_EQ(fs.transport().sharded(), nullptr);
  EXPECT_EQ(fs.mds_shards(), 1u);
}

TEST(ShardedStack, SubtreeKeepsDirectoryColocated) {
  core::ParallelFileSystem fs(sharded_cfg(4, shard::Policy::kSubtree));
  ASSERT_EQ(fs.mds_shards(), 4u);
  for (int d = 0; d < 4; ++d) {
    ASSERT_TRUE(fs.rpc().mkdir("d" + std::to_string(d)));
  }
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(fs.rpc().create("d1/f" + std::to_string(i)));
  }
  auto* sharded = fs.transport().sharded();
  ASSERT_NE(sharded, nullptr);

  // Round-robin delegation sent d<i> to shard i; every create under d1
  // stayed on shard 1 (1 mkdir + 12 creates = 13 ops), the others saw only
  // their own mkdir.
  const shard::ShardStats before = sharded->stats();
  ASSERT_EQ(before.ops_per_shard.size(), 4u);
  EXPECT_EQ(before.ops_per_shard[1], 13u);
  EXPECT_EQ(before.ops_per_shard[0], 1u);
  EXPECT_EQ(before.ops_per_shard[2], 1u);
  EXPECT_EQ(before.ops_per_shard[3], 1u);

  // An aggregated listing of one directory touches exactly ONE shard: no
  // fan-out is recorded.
  auto entries = fs.rpc().readdir_stats("d1");
  ASSERT_TRUE(entries);
  EXPECT_EQ(entries->size(), 12u);
  EXPECT_EQ(sharded->stats().fanout_requests, before.fanout_requests);
  for (std::size_t s = 0; s < fs.mds_shards(); ++s) {
    EXPECT_TRUE(fs.mds(s).fs().layout().verify().ok());
  }
}

TEST(ShardedStack, HashScattersAndFansOut) {
  core::ParallelFileSystem fs(sharded_cfg(4, shard::Policy::kHash));
  ASSERT_TRUE(fs.rpc().mkdir("dir"));
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(fs.rpc().create("dir/f" + std::to_string(i)));
  }
  auto* sharded = fs.transport().sharded();
  ASSERT_NE(sharded, nullptr);

  // Children scattered across every shard.
  const shard::ShardStats before = sharded->stats();
  for (u64 n : before.ops_per_shard) EXPECT_GT(n, 0u);
  EXPECT_LT(before.imbalance(), 2.0);

  // The aggregated listing must ask every shard — and still come back
  // merged and deduplicated.
  auto entries = fs.rpc().readdir_stats("dir");
  ASSERT_TRUE(entries);
  EXPECT_EQ(entries->size(), 64u);
  const shard::ShardStats after = sharded->stats();
  EXPECT_EQ(after.fanout_requests, before.fanout_requests + 3);
}

TEST(ShardedStack, DataPathRoundTripsUnderShardedMetadata) {
  for (auto policy : {shard::Policy::kSubtree, shard::Policy::kHash}) {
    core::ParallelFileSystem fs(sharded_cfg(3, policy));
    auto client = fs.connect(ClientId{1});
    ASSERT_TRUE(fs.rpc().mkdir("data"));
    auto fh = client.create("data/file.bin");
    ASSERT_TRUE(fh);
    // The ino that crossed the transport carries its home-shard tag.
    EXPECT_GT(fh->ino.v >> shard::Router::kTagShift, 0u);
    ASSERT_TRUE(client.write(*fh, 0, 0, 96 * kBlockSize).ok());
    ASSERT_TRUE(client.read(*fh, 0, 96 * kBlockSize).ok());
    ASSERT_TRUE(client.close(*fh).ok());
    fs.drain_data();
    auto reopened = client.open("data/file.bin");
    ASSERT_TRUE(reopened);
    EXPECT_EQ(reopened->ino.v, fh->ino.v);
    for (std::size_t t = 0; t < fs.num_targets(); ++t) {
      EXPECT_TRUE(fs.target(t).verify().ok());
    }
  }
}

// --- rename -----------------------------------------------------------------

TEST(ShardedRename, WithinShardIsOneRpc) {
  core::ParallelFileSystem fs(sharded_cfg(4, shard::Policy::kSubtree));
  ASSERT_TRUE(fs.rpc().mkdir("d0"));
  ASSERT_TRUE(fs.rpc().create("d0/old"));
  auto client = fs.connect(ClientId{1});
  auto moved = client.rename("d0/old", "d0/new");
  ASSERT_TRUE(moved);
  EXPECT_TRUE(fs.rpc().stat("d0/new").ok());
  EXPECT_EQ(fs.rpc().stat("d0/old").error(), Errc::kNotFound);
  const shard::ShardStats s = fs.transport().sharded()->stats();
  EXPECT_EQ(s.renames_local, 1u);
  EXPECT_EQ(s.renames_cross, 0u);
}

TEST(ShardedRename, AcrossShardsMovesEntryAndKeepsDataReachable) {
  core::ParallelFileSystem fs(sharded_cfg(3, shard::Policy::kSubtree));
  ASSERT_TRUE(fs.rpc().mkdir("src"));  // delegated to shard 0
  ASSERT_TRUE(fs.rpc().mkdir("dst"));  // delegated to shard 1
  auto client = fs.connect(ClientId{1});
  auto fh = client.create("src/data.bin");
  ASSERT_TRUE(fh);
  ASSERT_TRUE(client.write(*fh, 0, 0, 48 * kBlockSize).ok());
  ASSERT_TRUE(client.close(*fh).ok());
  fs.drain_data();

  auto moved = client.rename("src/data.bin", "dst/data.bin");
  ASSERT_TRUE(moved);
  EXPECT_NE(moved->ino.v, fh->ino.v);  // new inode on the target shard
  EXPECT_TRUE(fs.rpc().stat("dst/data.bin").ok());
  EXPECT_EQ(fs.rpc().stat("src/data.bin").error(), Errc::kNotFound);

  // The blocks stayed keyed by the old ino on the storage targets; the
  // alias chain keeps them reachable through the new handle.
  EXPECT_TRUE(client.read(*moved, 0, 48 * kBlockSize).ok());

  const shard::ShardStats s = fs.transport().sharded()->stats();
  EXPECT_EQ(s.renames_cross, 1u);
  EXPECT_EQ(s.rename_failures, 0u);
  // The journal records the committed protocol; nothing is pending.
  const auto journal = fs.transport().sharded()->router().journal_snapshot();
  ASSERT_EQ(journal.size(), 1u);
  EXPECT_EQ(journal[0].state, shard::RenameRecord::State::kCommitted);
  EXPECT_TRUE(fs.transport().sharded()->router().pending_renames().empty());
}

TEST(ShardedRename, FaultBetweenPhasesRollsBackWithoutOrphan) {
  core::ClusterConfig cfg = sharded_cfg(3, shard::Policy::kSubtree);
  cfg.rpc.inject_faults = true;
  core::ParallelFileSystem fs(cfg);
  ASSERT_TRUE(fs.rpc().mkdir("src"));
  ASSERT_TRUE(fs.rpc().mkdir("dst"));
  ASSERT_TRUE(fs.rpc().create("src/f"));
  auto* sharded = fs.transport().sharded();
  ASSERT_NE(sharded, nullptr);

  // A cross-shard rename sends resolve, create, unlink through the fault
  // layer in that order; let two through and drop the third — the protocol
  // dies exactly between create-on-target and tombstone-on-source.
  fs.transport().fault()->arm({.drop_after = 2, .drop_count = 1});
  auto client = fs.connect(ClientId{1});
  auto moved = client.rename("src/f", "dst/f");
  ASSERT_FALSE(moved);
  EXPECT_EQ(moved.error(), Errc::kIo);
  fs.transport().fault()->disarm();

  // Half-done: the source entry MUST remain resolvable ...
  EXPECT_TRUE(fs.rpc().stat("src/f").ok());
  // ... and the journal knows phase 1 landed but phase 2 did not.
  ASSERT_EQ(sharded->router().pending_renames().size(), 1u);
  EXPECT_EQ(sharded->stats().rename_failures, 1u);

  // Recovery unlinks the phase-1 copy on the target shard: no orphan inode
  // is left behind and the namespace is back to the pre-rename state.
  EXPECT_EQ(sharded->recover(), 1u);
  EXPECT_TRUE(sharded->router().pending_renames().empty());
  EXPECT_TRUE(fs.rpc().stat("src/f").ok());
  EXPECT_EQ(fs.rpc().stat("dst/f").error(), Errc::kNotFound);
  for (std::size_t s = 0; s < fs.mds_shards(); ++s) {
    EXPECT_TRUE(fs.mds(s).fs().layout().verify().ok());
  }

  // With the fault gone, the retry completes the move.
  auto retried = client.rename("src/f", "dst/f");
  ASSERT_TRUE(retried);
  EXPECT_TRUE(fs.rpc().stat("dst/f").ok());
  EXPECT_EQ(fs.rpc().stat("src/f").error(), Errc::kNotFound);
  EXPECT_EQ(sharded->stats().renames_recovered, 1u);
}

// --- observability ----------------------------------------------------------

TEST(ShardedObservability, MetricsAndSpansExport) {
  core::ParallelFileSystem fs(sharded_cfg(4, shard::Policy::kHash));
  obs::SpanCollector spans;
  fs.set_spans(&spans);
  ASSERT_TRUE(fs.rpc().mkdir("m"));
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(fs.rpc().create("m/f" + std::to_string(i)));
  }
  (void)fs.rpc().readdir_stats("m");
  fs.set_spans(nullptr);

  obs::MetricsRegistry reg;
  fs.export_metrics(reg);
  const std::string json = reg.to_json().dump(0);
  EXPECT_NE(json.find("\"shard.0.ops\""), std::string::npos);
  EXPECT_NE(json.find("\"shard.3.ops\""), std::string::npos);
  EXPECT_NE(json.find("\"shard.fanout\""), std::string::npos);
  EXPECT_NE(json.find("\"shard.imbalance\""), std::string::npos);
  // Multi-shard mounts export per-shard MDS metrics.
  EXPECT_NE(json.find("\"mds.0."), std::string::npos);

  // The routed metadata calls recorded rpc.shard span phases.
  obs::MetricsRegistry span_reg;
  spans.export_metrics(span_reg);
  const std::string span_json = span_reg.to_json().dump(0);
  EXPECT_NE(span_json.find("span.rpc.shard"), std::string::npos);
}

}  // namespace
}  // namespace mif
