// Unit tests for the vanilla and reservation allocators (the paper's two
// non-MiF baselines) and the shared FileAllocator plumbing.
#include <gtest/gtest.h>

#include "alloc/allocator.hpp"
#include "alloc/reservation.hpp"
#include "alloc/vanilla.hpp"

namespace mif::alloc {
namespace {

struct AllocFixture : ::testing::Test {
  block::FreeSpace space{DiskBlock{0}, 64 * 1024, 4};
};

TEST_F(AllocFixture, FactoryMakesEveryMode) {
  for (auto m : {AllocatorMode::kVanilla, AllocatorMode::kReservation,
                 AllocatorMode::kStatic, AllocatorMode::kOnDemand}) {
    auto a = make_allocator(m, space);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->mode(), m);
  }
}

TEST_F(AllocFixture, ExtendMapsAndMarksWritten) {
  VanillaAllocator a(space);
  block::ExtentMap map;
  ASSERT_TRUE(a.extend({InodeNo{1}, StreamId{1, 1}, FileBlock{0}, 8}, map).ok());
  EXPECT_EQ(map.mapped_blocks(), 8u);
  for (u64 b = 0; b < 8; ++b) {
    auto e = map.lookup(FileBlock{b});
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->flags & block::kExtentUnwritten, 0u);
  }
}

TEST_F(AllocFixture, ExtendZeroCountRejected) {
  VanillaAllocator a(space);
  block::ExtentMap map;
  EXPECT_EQ(a.extend({InodeNo{1}, StreamId{1, 1}, FileBlock{0}, 0}, map)
                .error(),
            Errc::kInvalid);
}

TEST_F(AllocFixture, ExtendIsIdempotentOverMappedRanges) {
  VanillaAllocator a(space);
  block::ExtentMap map;
  ASSERT_TRUE(a.extend({InodeNo{1}, StreamId{1, 1}, FileBlock{0}, 8}, map).ok());
  const u64 used = space.total_blocks() - space.free_blocks();
  ASSERT_TRUE(a.extend({InodeNo{1}, StreamId{1, 1}, FileBlock{2}, 4}, map).ok());
  EXPECT_EQ(space.total_blocks() - space.free_blocks(), used);  // rewrite
}

TEST_F(AllocFixture, ExtendFillsHoles) {
  VanillaAllocator a(space);
  block::ExtentMap map;
  ASSERT_TRUE(a.extend({InodeNo{1}, StreamId{1, 1}, FileBlock{0}, 2}, map).ok());
  ASSERT_TRUE(a.extend({InodeNo{1}, StreamId{1, 1}, FileBlock{6}, 2}, map).ok());
  ASSERT_TRUE(a.extend({InodeNo{1}, StreamId{1, 1}, FileBlock{0}, 8}, map).ok());
  EXPECT_EQ(map.mapped_blocks(), 8u);
}

TEST_F(AllocFixture, DeleteFileFreesEverything) {
  VanillaAllocator a(space);
  block::ExtentMap map;
  ASSERT_TRUE(a.extend({InodeNo{1}, StreamId{1, 1}, FileBlock{0}, 32}, map).ok());
  a.delete_file(InodeNo{1}, map);
  EXPECT_EQ(space.free_blocks(), space.total_blocks());
  EXPECT_TRUE(map.empty());
}

TEST_F(AllocFixture, VanillaInterleavedStreamsFragmentTheFile) {
  // Fig. 1(a): arrival-order placement of concurrent streams makes a mess —
  // one extent per request.
  VanillaAllocator a(space);
  block::ExtentMap map;
  const u32 streams = 8;
  const u64 per_stream = 16;
  for (u64 r = 0; r < per_stream; ++r) {
    for (u32 p = 0; p < streams; ++p) {
      const u64 logical = static_cast<u64>(p) * per_stream + r;
      ASSERT_TRUE(
          a.extend({InodeNo{1}, StreamId{p, 0}, FileBlock{logical}, 1}, map)
              .ok());
    }
  }
  EXPECT_EQ(map.mapped_blocks(), streams * per_stream);
  // Every single-block request became its own extent (no two adjacent
  // requests of one stream are physically adjacent).
  EXPECT_GE(map.extent_count(), streams * per_stream - streams);
}

TEST_F(AllocFixture, ReservationSingleStreamIsContiguous) {
  ReservationAllocator a(space, {});
  block::ExtentMap map;
  for (u64 r = 0; r < 32; ++r) {
    ASSERT_TRUE(
        a.extend({InodeNo{1}, StreamId{1, 1}, FileBlock{r}, 1}, map).ok());
  }
  // A lone sequential writer gets (nearly) one extent out of reservation.
  EXPECT_LE(map.extent_count(), 2u);
}

TEST_F(AllocFixture, ReservationSharedFileStillFragments) {
  // The flaw MiF attacks: the reservation belongs to the inode, so
  // interleaved streams still produce arrival-order placement.
  ReservationAllocator a(space, {});
  block::ExtentMap map;
  const u32 streams = 8;
  const u64 per_stream = 16;
  for (u64 r = 0; r < per_stream; ++r) {
    for (u32 p = 0; p < streams; ++p) {
      const u64 logical = static_cast<u64>(p) * per_stream + r;
      ASSERT_TRUE(
          a.extend({InodeNo{1}, StreamId{p, 0}, FileBlock{logical}, 1}, map)
              .ok());
    }
  }
  // Far more extents than streams: intra-file fragmentation survives.
  EXPECT_GT(map.extent_count(), u64{streams} * 4);
}

TEST_F(AllocFixture, ReservationWindowDiscardedOnClose) {
  ReservationAllocator a(space, {});
  block::ExtentMap map;
  ASSERT_TRUE(a.extend({InodeNo{1}, StreamId{1, 1}, FileBlock{0}, 4}, map).ok());
  const u64 free_with_window = space.free_blocks();
  a.close_file(InodeNo{1}, map);
  // The unused reservation tail goes back to free space.
  EXPECT_GT(space.free_blocks(), free_with_window);
  // But the mapped data stays.
  EXPECT_EQ(map.mapped_blocks(), 4u);
}

TEST_F(AllocFixture, ReservationSurvivesExhaustedWindow) {
  AllocatorTuning t;
  t.reservation_blocks = 4;
  ReservationAllocator a(space, t);
  block::ExtentMap map;
  ASSERT_TRUE(
      a.extend({InodeNo{1}, StreamId{1, 1}, FileBlock{0}, 100}, map).ok());
  EXPECT_EQ(map.mapped_blocks(), 100u);
}

TEST_F(AllocFixture, StatsCountExtends) {
  VanillaAllocator a(space);
  block::ExtentMap map;
  ASSERT_TRUE(a.extend({InodeNo{1}, StreamId{1, 1}, FileBlock{0}, 4}, map).ok());
  ASSERT_TRUE(a.extend({InodeNo{1}, StreamId{1, 1}, FileBlock{4}, 4}, map).ok());
  EXPECT_EQ(a.stats().extends, 2u);
  EXPECT_EQ(a.stats().allocated_blocks, 8u);
}

TEST(AllocatorModeNames, RoundTrip) {
  EXPECT_EQ(to_string(AllocatorMode::kVanilla), "vanilla");
  EXPECT_EQ(to_string(AllocatorMode::kReservation), "reservation");
  EXPECT_EQ(to_string(AllocatorMode::kStatic), "static");
  EXPECT_EQ(to_string(AllocatorMode::kOnDemand), "on-demand");
}

}  // namespace
}  // namespace mif::alloc
