// Unit + property tests for the per-file extent map (the fragmentation
// metric of Table I lives here).
#include <gtest/gtest.h>

#include "block/block_types.hpp"
#include "util/rng.hpp"

namespace mif::block {
namespace {

Extent ext(u64 file, u64 disk, u64 len, u32 flags = kExtentNone) {
  return Extent{FileBlock{file}, DiskBlock{disk}, len, flags};
}

TEST(ExtentMap, InsertAndLookup) {
  ExtentMap m;
  m.insert(ext(0, 100, 10));
  auto e = m.lookup(FileBlock{5});
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->map(FileBlock{5}).v, 105u);
  EXPECT_FALSE(m.lookup(FileBlock{10}).has_value());
}

TEST(ExtentMap, MergesContiguousInserts) {
  ExtentMap m;
  m.insert(ext(0, 100, 4));
  m.insert(ext(4, 104, 4));
  m.insert(ext(8, 108, 4));
  EXPECT_EQ(m.extent_count(), 1u);
  EXPECT_EQ(m.mapped_blocks(), 12u);
}

TEST(ExtentMap, DoesNotMergeLogicalOnlyAdjacency) {
  ExtentMap m;
  m.insert(ext(0, 100, 4));
  m.insert(ext(4, 500, 4));  // logically adjacent, physically not
  EXPECT_EQ(m.extent_count(), 2u);
}

TEST(ExtentMap, DoesNotMergeAcrossFlags) {
  ExtentMap m;
  m.insert(ext(0, 100, 4));
  m.insert(ext(4, 104, 4, kExtentUnwritten));
  EXPECT_EQ(m.extent_count(), 2u);
}

TEST(ExtentMap, MergesGapFillBothSides) {
  ExtentMap m;
  m.insert(ext(0, 100, 4));
  m.insert(ext(8, 108, 4));
  m.insert(ext(4, 104, 4));  // plugs the hole, joins all three
  EXPECT_EQ(m.extent_count(), 1u);
}

TEST(ExtentMap, OutOfOrderInsertKeepsSorted) {
  ExtentMap m;
  m.insert(ext(100, 1000, 10));
  m.insert(ext(0, 2000, 10));
  m.insert(ext(50, 3000, 10));
  EXPECT_EQ(m.extents()[0].file_off.v, 0u);
  EXPECT_EQ(m.extents()[1].file_off.v, 50u);
  EXPECT_EQ(m.extents()[2].file_off.v, 100u);
  EXPECT_EQ(m.logical_end(), 110u);
}

TEST(ExtentMap, MapRangeCrossesExtentsAndSkipsHoles) {
  ExtentMap m;
  m.insert(ext(0, 100, 4));
  m.insert(ext(8, 300, 4));  // hole at [4, 8)
  auto runs = m.map_range(FileBlock{0}, 12);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].start.v, 100u);
  EXPECT_EQ(runs[0].length, 4u);
  EXPECT_EQ(runs[1].start.v, 300u);
  EXPECT_EQ(runs[1].length, 4u);
}

TEST(ExtentMap, MapRangeCoalescesPhysicallyContiguousRuns) {
  ExtentMap m;
  m.insert(ext(0, 100, 4));
  m.insert(ext(4, 104, 4, kExtentUnwritten));  // separate extent, same run
  auto runs = m.map_range(FileBlock{0}, 8);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].length, 8u);
}

TEST(ExtentMap, MapRangePartialOverlap) {
  ExtentMap m;
  m.insert(ext(0, 100, 10));
  auto runs = m.map_range(FileBlock{3}, 4);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].start.v, 103u);
  EXPECT_EQ(runs[0].length, 4u);
}

TEST(ExtentMap, MarkWrittenSplitsUnwrittenExtent) {
  ExtentMap m;
  m.insert(ext(0, 100, 10, kExtentUnwritten));
  m.mark_written(FileBlock{4}, 2);
  // [0,4) unwritten, [4,6) written, [6,10) unwritten.
  EXPECT_EQ(m.extent_count(), 3u);
  EXPECT_EQ(m.lookup(FileBlock{4})->flags, kExtentNone);
  EXPECT_EQ(m.lookup(FileBlock{0})->flags, kExtentUnwritten);
  EXPECT_EQ(m.lookup(FileBlock{9})->flags, kExtentUnwritten);
  // Physical mapping is unchanged.
  EXPECT_EQ(m.lookup(FileBlock{5})->map(FileBlock{5}).v, 105u);
}

TEST(ExtentMap, MarkWrittenWholeExtentRemerges) {
  ExtentMap m;
  m.insert(ext(0, 100, 4));
  m.insert(ext(4, 104, 4, kExtentUnwritten));
  m.mark_written(FileBlock{4}, 4);
  EXPECT_EQ(m.extent_count(), 1u);  // flags now equal → merge
}

TEST(ExtentMap, MarkWrittenIgnoresAlreadyWritten) {
  ExtentMap m;
  m.insert(ext(0, 100, 8));
  m.mark_written(FileBlock{0}, 8);
  EXPECT_EQ(m.extent_count(), 1u);
}

// Property: inserting N randomly-shuffled, pairwise-disjoint sub-extents of
// one physical run always collapses back to a single extent after all are
// written.
TEST(ExtentMapProperty, ShuffledContiguousPiecesAlwaysCoalesce) {
  mif::Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<u64> order(64);
    for (u64 i = 0; i < 64; ++i) order[i] = i;
    for (u64 i = 63; i > 0; --i)
      std::swap(order[i], order[rng.uniform(0, i)]);
    ExtentMap m;
    for (u64 i : order) m.insert(ext(i * 2, 1000 + i * 2, 2));
    EXPECT_EQ(m.extent_count(), 1u) << "trial " << trial;
    EXPECT_EQ(m.mapped_blocks(), 128u);
  }
}

// Property: map_range over random queries agrees with per-block lookup.
TEST(ExtentMapProperty, MapRangeMatchesBlockwiseLookup) {
  mif::Rng rng(14);
  ExtentMap m;
  u64 file = 0;
  for (int i = 0; i < 50; ++i) {
    const u64 len = rng.uniform(1, 8);
    if (rng.chance(0.3)) file += rng.uniform(1, 5);  // hole
    m.insert(ext(file, rng.uniform(0, 1) * 100000 + file * 7 + i * 1000, len));
    file += len;
  }
  for (int q = 0; q < 200; ++q) {
    const u64 start = rng.uniform(0, file);
    const u64 len = rng.uniform(1, 32);
    auto runs = m.map_range(FileBlock{start}, len);
    u64 covered = 0;
    for (const auto& r : runs) covered += r.length;
    u64 expect = 0;
    for (u64 b = start; b < start + len; ++b)
      if (m.lookup(FileBlock{b})) ++expect;
    EXPECT_EQ(covered, expect);
  }
}

}  // namespace
}  // namespace mif::block
