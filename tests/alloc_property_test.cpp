// Property-based tests over ALL allocator strategies: whatever the policy,
// the resulting mapping must be correct — complete, non-overlapping, inside
// the device, and space-accounted.  Parameterised across modes and stream
// mixes (TEST_P sweep).
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "alloc/allocator.hpp"
#include "util/rng.hpp"

namespace mif::alloc {
namespace {

struct Params {
  AllocatorMode mode;
  u32 streams;
  u64 max_request;  // blocks
  double random_fraction;
};

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  std::string s{to_string(info.param.mode)};
  for (auto& c : s)
    if (c == '-') c = '_';
  return s + "_s" + std::to_string(info.param.streams) + "_r" +
         std::to_string(info.param.max_request) + "_p" +
         std::to_string(static_cast<int>(info.param.random_fraction * 100));
}

class AllocatorProperty : public ::testing::TestWithParam<Params> {};

TEST_P(AllocatorProperty, MappingInvariantsHoldUnderRandomWorkload) {
  const Params p = GetParam();
  const u64 device_blocks = 512 * 1024;
  block::FreeSpace space(DiskBlock{0}, device_blocks, 8);
  auto alloc = make_allocator(p.mode, space);
  block::ExtentMap map;
  Rng rng(1234 + static_cast<u64>(p.mode) * 97 + p.streams);

  // Per-stream sequential cursors over disjoint regions, with a configurable
  // fraction of random-offset writes thrown in.
  const u64 region = 4096;
  std::vector<u64> cursor(p.streams);
  for (u32 s = 0; s < p.streams; ++s) cursor[s] = static_cast<u64>(s) * region;

  std::map<u64, u64> written;  // logical start -> len (expected written set)
  for (int op = 0; op < 3000; ++op) {
    const u32 s = static_cast<u32>(rng.uniform(0, p.streams - 1));
    const u64 len = rng.uniform(1, p.max_request);
    u64 logical;
    if (rng.chance(p.random_fraction)) {
      logical = static_cast<u64>(s) * region + rng.uniform(0, region - len);
    } else {
      logical = cursor[s];
      cursor[s] += len;
      if (cursor[s] >= (static_cast<u64>(s) + 1) * region)
        cursor[s] = static_cast<u64>(s) * region;  // wrap inside the region
    }
    ASSERT_TRUE(
        alloc->extend({InodeNo{9}, StreamId{s, 0}, FileBlock{logical}, len},
                      map)
            .ok());
    written[logical] = std::max(written[logical], len);
  }

  // Invariant 1: every written logical block is mapped and marked written.
  for (const auto& [start, len] : written) {
    for (u64 b = start; b < start + len; ++b) {
      auto e = map.lookup(FileBlock{b});
      ASSERT_TRUE(e.has_value()) << "unmapped block " << b;
      EXPECT_EQ(e->flags & block::kExtentUnwritten, 0u)
          << "unwritten block " << b;
    }
  }

  // Invariant 2: extents are sorted, non-overlapping, and inside the device.
  u64 prev_end = 0;
  u64 mapped = 0;
  for (const auto& e : map.extents()) {
    EXPECT_GE(e.file_off.v, prev_end);
    prev_end = e.file_end();
    EXPECT_LT(e.disk_end(), device_blocks + 1);
    mapped += e.length;
  }

  // Invariant 3: space accounting.  used = mapped blocks + temporary
  // reservations held by the allocator.
  const u64 used = device_blocks - space.free_blocks();
  EXPECT_EQ(used, mapped + alloc->stats().reserved_blocks);

  // Invariant 4: no two extents map the same physical block.
  std::vector<std::pair<u64, u64>> phys;
  phys.reserve(map.extent_count());
  for (const auto& e : map.extents()) phys.emplace_back(e.disk_off.v, e.length);
  std::sort(phys.begin(), phys.end());
  for (std::size_t i = 1; i < phys.size(); ++i) {
    EXPECT_GE(phys[i].first, phys[i - 1].first + phys[i - 1].second)
        << "physical overlap";
  }

  // Invariant 5: delete returns every block.
  alloc->close_file(InodeNo{9}, map);
  alloc->delete_file(InodeNo{9}, map);
  EXPECT_EQ(space.free_blocks(), device_blocks);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllocatorProperty,
    ::testing::Values(
        Params{AllocatorMode::kVanilla, 1, 4, 0.0},
        Params{AllocatorMode::kVanilla, 8, 4, 0.3},
        Params{AllocatorMode::kReservation, 1, 4, 0.0},
        Params{AllocatorMode::kReservation, 8, 4, 0.3},
        Params{AllocatorMode::kReservation, 16, 8, 0.5},
        Params{AllocatorMode::kStatic, 4, 4, 0.2},
        Params{AllocatorMode::kOnDemand, 1, 4, 0.0},
        Params{AllocatorMode::kOnDemand, 8, 4, 0.0},
        Params{AllocatorMode::kOnDemand, 8, 4, 0.3},
        Params{AllocatorMode::kOnDemand, 16, 8, 0.5},
        Params{AllocatorMode::kOnDemand, 32, 2, 0.1}),
    param_name);

// Cross-strategy ordering property: on the canonical interleaved shared-file
// workload, extent counts must order vanilla >= reservation > on-demand
// (Table I's row ordering).
TEST(AllocatorOrdering, ExtentCountsFollowTableOne) {
  auto run = [](AllocatorMode mode) {
    block::FreeSpace space(DiskBlock{0}, 256 * 1024, 8);
    auto alloc = make_allocator(mode, space);
    block::ExtentMap map;
    const u32 streams = 16;
    const u64 per_stream = 64;
    for (u64 r = 0; r < per_stream; ++r) {
      for (u32 p = 0; p < streams; ++p) {
        EXPECT_TRUE(alloc
                        ->extend({InodeNo{1}, StreamId{p, 0},
                                  FileBlock{static_cast<u64>(p) * per_stream + r},
                                  1},
                                 map)
                        .ok());
      }
    }
    return map.extent_count();
  };
  const u64 vanilla = run(AllocatorMode::kVanilla);
  const u64 reservation = run(AllocatorMode::kReservation);
  const u64 ondemand = run(AllocatorMode::kOnDemand);
  EXPECT_GE(vanilla, reservation);
  EXPECT_GT(reservation, 2 * ondemand);
  // The paper reports a 5–10× reduction from reservation to on-demand.
  EXPECT_GE(static_cast<double>(reservation) / static_cast<double>(ondemand),
            4.0);
}

}  // namespace
}  // namespace mif::alloc
