// System matrix: miniature versions of every workload, run across the full
// (allocator × directory-layout × shards × list-I/O/pipeline) configuration
// grid.  Each cell must (a) complete without errors, (b) leave every storage
// target and the namespace verifiably consistent, (c) be bit-deterministic
// across two runs, and (d) conserve the attribution ledger against the
// global counters — including over multi-run list frames.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <utility>

#include "obs/attrib.hpp"
#include "workload/btio.hpp"
#include "workload/filetree.hpp"
#include "workload/ior.hpp"
#include "workload/metarates.hpp"
#include "workload/postmark.hpp"
#include "workload/shared_file.hpp"

namespace mif {
namespace {

/// (list_io_max_runs, pipeline_depth, qos, replicas): the per-block sync
/// mount, list I/O over the sync chain, list I/O over a depth-4 async
/// pipeline, the pipelined mount with per-client token-bucket QoS enforcing
/// a rate low enough to actually park envelopes mid-workload, and a 2-way
/// replicated mount fanning every stripe unit to its copy target.
using IoMode = std::tuple<u64, u32, bool, u32>;

using Config =
    std::tuple<alloc::AllocatorMode, mfs::DirectoryMode, u32, IoMode>;

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  std::string s{alloc::to_string(std::get<0>(info.param))};
  for (auto& c : s)
    if (c == '-') c = '_';
  const IoMode io = std::get<3>(info.param);
  return s + "_" + std::string(to_string(std::get<1>(info.param))) + "_s" +
         std::to_string(std::get<2>(info.param)) + "_l" +
         std::to_string(std::get<0>(io)) + "d" +
         std::to_string(std::get<1>(io)) + (std::get<2>(io) ? "_qos" : "") +
         (std::get<3>(io) >= 2
              ? "_r" + std::to_string(std::get<3>(io))
              : "");
}

class SystemMatrix : public ::testing::TestWithParam<Config> {
 protected:
  core::ClusterConfig cluster() const {
    core::ClusterConfig cfg;
    cfg.num_targets = 3;
    cfg.target.allocator = std::get<0>(GetParam());
    cfg.mds.mfs.mode = std::get<1>(GetParam());
    cfg.mds.mfs.cache_blocks = 1024;
    cfg.mds.shards = std::get<2>(GetParam());
    const IoMode io = std::get<3>(GetParam());
    cfg.list_io_max_runs = std::get<0>(io);
    if (std::get<1>(io) >= 2) cfg.rpc.pipeline_depth = std::get<1>(io);
    if (std::get<2>(io)) {
      // A rate small against the workloads' bursts, so the scheduler
      // genuinely parks and releases envelopes inside every cell.
      cfg.rpc.qos.enabled = true;
      cfg.rpc.qos.rate_bytes_per_ms = 32.0 * 1024.0;
      cfg.rpc.qos.burst_bytes = 64 * 1024;
    }
    if (std::get<3>(io) >= 2) cfg.redundancy.replicas = std::get<3>(io);
    return cfg;
  }

  void verify_everything(core::ParallelFileSystem& fs) {
    for (std::size_t s = 0; s < fs.mds_shards(); ++s) {
      EXPECT_TRUE(fs.mds(s).fs().layout().verify().ok()) << "shard " << s;
    }
    for (std::size_t t = 0; t < fs.num_targets(); ++t) {
      const auto report = fs.target(t).verify();
      EXPECT_TRUE(report.ok())
          << "target " << t << ": overlap=" << report.overlap_free
          << " accounted=" << report.space_accounted;
    }
  }
};

TEST_P(SystemMatrix, SharedFileMicroBenchmark) {
  core::ParallelFileSystem fs(cluster());
  workload::SharedFileConfig cfg;
  cfg.processes = 8;
  cfg.blocks_per_process = 64;
  cfg.read_segments = 32;
  const auto r = workload::run_shared_file(fs, cfg);
  EXPECT_GT(r.phase2_throughput_mbps, 0.0);
  EXPECT_GT(r.extents, 0u);
  verify_everything(fs);
}

TEST_P(SystemMatrix, IorSmall) {
  core::ParallelFileSystem fs(cluster());
  workload::IorConfig cfg;
  cfg.processes = 8;
  cfg.bytes_per_process = 256 * 1024;
  const auto r = workload::run_ior(fs, cfg);
  EXPECT_GT(r.total_mbps, 0.0);
  verify_everything(fs);
}

TEST_P(SystemMatrix, BtioSmallCollectiveAndNot) {
  for (bool collective : {false, true}) {
    core::ParallelFileSystem fs(cluster());
    workload::BtioConfig cfg;
    cfg.processes = 8;
    cfg.timesteps = 3;
    cfg.cells_per_process = 4;
    cfg.collective = collective;
    const auto r = workload::run_btio(fs, cfg);
    EXPECT_GT(r.write_mbps, 0.0) << "collective=" << collective;
    verify_everything(fs);
  }
}

TEST_P(SystemMatrix, MetaratesSmall) {
  mds::MdsConfig cfg;
  cfg.mfs.mode = std::get<1>(GetParam());
  rpc::MdsNode node(cfg);
  workload::MetaratesConfig wcfg;
  wcfg.clients = 3;
  wcfg.files_per_dir = 60;
  const auto r = workload::run_metarates(node, wcfg);
  EXPECT_EQ(r.create.ops, 180u);
  EXPECT_EQ(r.remove.ops, 180u);
  EXPECT_TRUE(node.mds().fs().layout().verify().ok());
}

TEST_P(SystemMatrix, PostmarkSmall) {
  core::ParallelFileSystem fs(cluster());
  workload::PostmarkConfig cfg;
  cfg.base_files = 80;
  cfg.transactions = 150;
  cfg.subdirectories = 6;
  const auto r = workload::run_postmark(fs, cfg);
  EXPECT_GT(r.transactions_per_sec, 0.0);
  verify_everything(fs);
}

TEST_P(SystemMatrix, FileTreeBuildCycle) {
  core::ParallelFileSystem fs(cluster());
  workload::FileTreeConfig cfg;
  cfg.directories = 8;
  cfg.files = 80;
  workload::FileTreeWorkload tree(fs, cfg);
  EXPECT_GT(tree.untar().elapsed_ms, 0.0);
  EXPECT_GT(tree.make().ops, 0u);
  EXPECT_GT(tree.make_clean().ops, 0u);
  EXPECT_EQ(tree.tar_scan().ops, 80u);
  verify_everything(fs);
}

// The attribution ledger must conserve across every cell — in particular
// over multi-run list/strided frames, whose wire bytes and disk submits are
// split pro-rata across contributors.
TEST_P(SystemMatrix, AttributionConservesOverListFrames) {
  core::ParallelFileSystem fs(cluster());
  obs::Attribution attrib;
  fs.set_attribution(&attrib);
  workload::SharedFileConfig cfg;
  cfg.processes = 6;
  cfg.blocks_per_process = 48;
  cfg.read_segments = 24;
  const auto r = workload::run_shared_file(fs, cfg);
  EXPECT_GT(r.extents, 0u);
  fs.drain_data();

  // attribution_json()'s "global" section is the canonical comparand: it
  // adds back the disk time reset_data_stats() discarded mid-workload.
  const obs::CostAccount total = attrib.total();
  const obs::Json aj = fs.attribution_json();
  const obs::Json& g = aj.at("global");
  const auto conserved = [](double attributed, double global) {
    const double tol =
        1e-9 * std::max({1.0, std::fabs(attributed), std::fabs(global)});
    EXPECT_NEAR(attributed, global, tol);
  };
  conserved(total.disk_ms(), g.at("disk_ms").as_double());
  conserved(total.net_ms, g.at("net_ms").as_double());
  conserved(total.mds_cpu_ms, g.at("mds_cpu_ms").as_double());
  EXPECT_EQ(static_cast<double>(total.net_bytes),
            g.at("net_bytes").as_double());
  if (const rpc::AsyncTransport* a = fs.transport().async()) {
    conserved(total.stall_ms, a->report().stall_ms);
  } else {
    EXPECT_DOUBLE_EQ(total.stall_ms, 0.0);
  }
}

TEST_P(SystemMatrix, SharedFileDeterministic) {
  workload::SharedFileConfig cfg;
  cfg.processes = 6;
  cfg.blocks_per_process = 32;
  cfg.read_segments = 16;
  core::ParallelFileSystem fs1(cluster());
  core::ParallelFileSystem fs2(cluster());
  const auto a = workload::run_shared_file(fs1, cfg);
  const auto b = workload::run_shared_file(fs2, cfg);
  EXPECT_EQ(a.extents, b.extents);
  EXPECT_DOUBLE_EQ(a.phase1_ms, b.phase1_ms);
  EXPECT_DOUBLE_EQ(a.phase2_ms, b.phase2_ms);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SystemMatrix,
    ::testing::Combine(
        ::testing::Values(alloc::AllocatorMode::kVanilla,
                          alloc::AllocatorMode::kReservation,
                          alloc::AllocatorMode::kOnDemand),
        ::testing::Values(mfs::DirectoryMode::kNormal,
                          mfs::DirectoryMode::kEmbedded),
        // Metadata shards: the classic single-MDS stack and a 3-shard mount
        // routed through shard::ShardedTransport.
        ::testing::Values(1u, 3u),
        // I/O mode: per-block sync (the paper's default), list I/O on the
        // sync chain, list I/O through a depth-4 async pipeline, the
        // pipelined chain under token-bucket QoS admission control, and a
        // 2-way replicated pipelined mount (every workload doubles its
        // stripe-unit writes through the redundancy fan).
        ::testing::Values(IoMode{0, 1, false, 1}, IoMode{64, 1, false, 1},
                          IoMode{64, 4, false, 1}, IoMode{64, 4, true, 1},
                          IoMode{64, 4, false, 2})),
    config_name);

}  // namespace
}  // namespace mif
