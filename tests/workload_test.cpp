// Tests for the workload generators: each must run end-to-end at small
// scale and show the qualitative behaviour its paper experiment relies on.
#include <gtest/gtest.h>

#include "workload/aging.hpp"
#include "workload/btio.hpp"
#include "workload/filetree.hpp"
#include "workload/ior.hpp"
#include "workload/metarates.hpp"
#include "workload/postmark.hpp"

namespace mif::workload {
namespace {

core::ClusterConfig data_cluster(alloc::AllocatorMode mode) {
  core::ClusterConfig cfg;
  cfg.num_targets = 4;
  cfg.target.allocator = mode;
  return cfg;
}

mds::MdsConfig meta_cfg(mfs::DirectoryMode mode) {
  mds::MdsConfig cfg;
  cfg.mfs.mode = mode;
  cfg.mfs.cache_blocks = 2048;
  return cfg;
}

TEST(IorWorkload, RunsAndReportsThroughput) {
  core::ParallelFileSystem fs(data_cluster(alloc::AllocatorMode::kOnDemand));
  IorConfig cfg;
  cfg.processes = 8;
  cfg.bytes_per_process = 512 * 1024;
  const IorResult r = run_ior(fs, cfg);
  EXPECT_GT(r.write_mbps, 0.0);
  EXPECT_GT(r.read_mbps, 0.0);
  EXPECT_GT(r.extents, 0u);
}

TEST(IorWorkload, OnDemandBeatsReservationOnReadBack) {
  IorConfig cfg;
  cfg.processes = 32;
  cfg.request_bytes = 32 * 1024;
  cfg.bytes_per_process = 4 * 1024 * 1024;
  core::ParallelFileSystem r_fs(data_cluster(alloc::AllocatorMode::kReservation));
  core::ParallelFileSystem o_fs(data_cluster(alloc::AllocatorMode::kOnDemand));
  const IorResult r = run_ior(r_fs, cfg);
  const IorResult o = run_ior(o_fs, cfg);
  EXPECT_GT(o.read_mbps, r.read_mbps);
  EXPECT_LT(o.extents, r.extents);
}

TEST(BtioWorkload, NonCollectiveSmallStridesFragmentBadly) {
  BtioConfig cfg;
  cfg.processes = 32;
  cfg.timesteps = 10;
  cfg.cells_per_process = 16;
  core::ParallelFileSystem r_fs(data_cluster(alloc::AllocatorMode::kReservation));
  core::ParallelFileSystem o_fs(data_cluster(alloc::AllocatorMode::kOnDemand));
  const BtioResult r = run_btio(r_fs, cfg);
  const BtioResult o = run_btio(o_fs, cfg);
  EXPECT_GT(o.read_mbps, r.read_mbps);
  EXPECT_LT(o.extents, r.extents);
}

TEST(BtioWorkload, CollectiveModeLiftsThroughput) {
  BtioConfig cfg;
  cfg.processes = 32;
  cfg.timesteps = 10;
  cfg.cells_per_process = 16;
  core::ParallelFileSystem nc_fs(data_cluster(alloc::AllocatorMode::kReservation));
  core::ParallelFileSystem co_fs(data_cluster(alloc::AllocatorMode::kReservation));
  const BtioResult nc = run_btio(nc_fs, cfg);
  cfg.collective = true;
  const BtioResult co = run_btio(co_fs, cfg);
  // Aggregation pays off end-to-end (write-back already hides most of the
  // write-side cost, as on a real OSS — the read-back is where the merged
  // placement shines).
  const double nc_total = 2.0 / (1.0 / nc.write_mbps + 1.0 / nc.read_mbps);
  const double co_total = 2.0 / (1.0 / co.write_mbps + 1.0 / co.read_mbps);
  EXPECT_GT(co_total, nc_total);
}

TEST(MetaratesWorkload, AllPhasesComplete) {
  rpc::MdsNode node(meta_cfg(mfs::DirectoryMode::kEmbedded));
  MetaratesConfig cfg;
  cfg.clients = 4;
  cfg.files_per_dir = 100;
  const MetaratesResult r = run_metarates(node, cfg);
  EXPECT_EQ(r.create.ops, 400u);
  EXPECT_EQ(r.utime.ops, 400u);
  EXPECT_EQ(r.readdir_stat.ops, 400u);
  EXPECT_EQ(r.remove.ops, 400u);
  EXPECT_GT(r.create.ops_per_sec(), 0.0);
}

TEST(MetaratesWorkload, EmbeddedNeedsFewerDiskAccesses) {
  // Directory sizes in the regime the paper plots (thousands of entries) —
  // tiny directories live in the cache and show nothing.
  MetaratesConfig cfg;
  cfg.clients = 4;
  cfg.files_per_dir = 2000;
  rpc::MdsNode normal(meta_cfg(mfs::DirectoryMode::kNormal));
  rpc::MdsNode embedded(meta_cfg(mfs::DirectoryMode::kEmbedded));
  const MetaratesResult n = run_metarates(normal, cfg);
  const MetaratesResult e = run_metarates(embedded, cfg);
  EXPECT_LT(e.create.disk_accesses, n.create.disk_accesses);
  EXPECT_LE(e.readdir_stat.disk_accesses, n.readdir_stat.disk_accesses);
  // utime saves the separate dirent lookups but pays per-directory frontier
  // scatter at checkpoint: near-parity in request count (the win is in
  // positioning time), so allow a little slack.
  EXPECT_LE(e.utime.disk_accesses,
            n.utime.disk_accesses + n.utime.disk_accesses / 5);
  EXPECT_LE(e.remove.disk_accesses, n.remove.disk_accesses);
  // The end-to-end picture (Fig. 8's throughput bars): embedded is faster
  // over the whole run.
  const double n_ms = n.create.elapsed_ms + n.utime.elapsed_ms +
                      n.readdir_stat.elapsed_ms + n.remove.elapsed_ms;
  const double e_ms = e.create.elapsed_ms + e.utime.elapsed_ms +
                      e.readdir_stat.elapsed_ms + e.remove.elapsed_ms;
  EXPECT_LT(e_ms, n_ms);
}

TEST(PostmarkWorkload, RunsTransactionMix) {
  core::ParallelFileSystem fs(data_cluster(alloc::AllocatorMode::kOnDemand));
  PostmarkConfig cfg;
  cfg.base_files = 200;
  cfg.transactions = 500;
  cfg.subdirectories = 10;
  const PostmarkResult r = run_postmark(fs, cfg);
  EXPECT_EQ(r.created + r.deleted, 500u + 200u);
  EXPECT_GT(r.read + r.appended, 0u);
  EXPECT_GT(r.transactions_per_sec, 0.0);
  EXPECT_GT(r.elapsed_ms, 0.0);
}

TEST(PostmarkWorkload, DeterministicForSameSeed) {
  PostmarkConfig cfg;
  cfg.base_files = 100;
  cfg.transactions = 200;
  core::ParallelFileSystem fs1(data_cluster(alloc::AllocatorMode::kOnDemand));
  core::ParallelFileSystem fs2(data_cluster(alloc::AllocatorMode::kOnDemand));
  const PostmarkResult a = run_postmark(fs1, cfg);
  const PostmarkResult b = run_postmark(fs2, cfg);
  EXPECT_EQ(a.created, b.created);
  EXPECT_EQ(a.deleted, b.deleted);
  EXPECT_DOUBLE_EQ(a.elapsed_ms, b.elapsed_ms);
}

TEST(FileTreeWorkload, FullBuildCycle) {
  core::ParallelFileSystem fs(data_cluster(alloc::AllocatorMode::kOnDemand));
  FileTreeConfig cfg;
  cfg.directories = 20;
  cfg.files = 300;
  FileTreeWorkload tree(fs, cfg);
  const AppRunResult untar = tree.untar();
  EXPECT_EQ(untar.ops, 20u + 300u);
  EXPECT_GT(untar.elapsed_ms, 0.0);
  const AppRunResult make = tree.make();
  EXPECT_GT(make.ops, 0u);
  EXPECT_GT(make.cpu_ms, 0.0);
  // CPU dominates make (the paper's explanation for its small gain there).
  EXPECT_GT(make.cpu_ms, make.metadata_ms);
  const AppRunResult clean = tree.make_clean();
  EXPECT_EQ(clean.ops, make.ops);
  const AppRunResult tar = tree.tar_scan();
  EXPECT_EQ(tar.ops, 300u);
}

TEST(AgingWorkload, ReachesTargetUtilisationAndMeasures) {
  mds::MdsConfig cfg = meta_cfg(mfs::DirectoryMode::kEmbedded);
  cfg.mfs.geometry.capacity_blocks = 64 * 1024;  // small disk → fast aging
  cfg.mfs.journal_area_blocks = 2048;
  mds::Mds mds(cfg);
  AgingConfig acfg;
  acfg.target_utilisation = 0.5;
  acfg.files_per_round = 500;
  acfg.measure_files = 100;
  acfg.measure_dirs = 2;
  const AgingResult r = run_aging(mds, acfg);
  EXPECT_GE(r.utilisation_reached, 0.5);
  EXPECT_GT(r.create_ops_per_sec, 0.0);
  EXPECT_GT(r.delete_ops_per_sec, 0.0);
}

TEST(AgingWorkload, AgedCreateSlowerThanFresh) {
  auto create_rate = [](double target) {
    mds::MdsConfig cfg = meta_cfg(mfs::DirectoryMode::kEmbedded);
    cfg.mfs.geometry.capacity_blocks = 64 * 1024;
    cfg.mfs.journal_area_blocks = 2048;
    mds::Mds mds(cfg);
    AgingConfig acfg;
    acfg.target_utilisation = target;
    acfg.files_per_round = 500;
    acfg.measure_files = 200;
    acfg.measure_dirs = 2;
    return run_aging(mds, acfg).create_ops_per_sec;
  };
  // Fig. 9: aging has "a significant negative impact on creation".
  EXPECT_GT(create_rate(0.05), create_rate(0.75));
}

}  // namespace
}  // namespace mif::workload
