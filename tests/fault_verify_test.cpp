// Fault-injection and integrity-verification tests: transient I/O errors
// must surface as kIo without corrupting allocator or namespace state, and
// the fsck-style verifiers must pass after every scenario (and actually
// detect planted inconsistencies).
#include <gtest/gtest.h>

#include "core/pfs.hpp"
#include "mfs/mfs.hpp"
#include "obs/attrib.hpp"
#include "workload/postmark.hpp"

namespace mif {
namespace {

osd::TargetConfig target_cfg(alloc::AllocatorMode mode) {
  osd::TargetConfig cfg;
  cfg.allocator = mode;
  return cfg;
}

TEST(FaultInjection, WriteFailsWithIoThenRecovers) {
  osd::StorageTarget t(target_cfg(alloc::AllocatorMode::kOnDemand));
  t.inject_fault(/*after_ops=*/2, /*count=*/1);
  EXPECT_TRUE(t.write(InodeNo{1}, StreamId{1, 0}, FileBlock{0}, 4).ok());
  EXPECT_TRUE(t.write(InodeNo{1}, StreamId{1, 0}, FileBlock{4}, 4).ok());
  EXPECT_EQ(t.write(InodeNo{1}, StreamId{1, 0}, FileBlock{8}, 4).error(),
            Errc::kIo);
  // The fault window is exhausted: the retry succeeds.
  EXPECT_TRUE(t.write(InodeNo{1}, StreamId{1, 0}, FileBlock{8}, 4).ok());
  EXPECT_EQ(t.injected_failures(), 1u);
}

TEST(FaultInjection, ReadFailsWithIo) {
  osd::StorageTarget t(target_cfg(alloc::AllocatorMode::kReservation));
  ASSERT_TRUE(t.write(InodeNo{1}, StreamId{1, 0}, FileBlock{0}, 8).ok());
  t.inject_fault(0, 2);
  EXPECT_EQ(t.read(InodeNo{1}, FileBlock{0}, 8).error(), Errc::kIo);
  EXPECT_EQ(t.read(InodeNo{1}, FileBlock{0}, 8).error(), Errc::kIo);
  EXPECT_TRUE(t.read(InodeNo{1}, FileBlock{0}, 8).ok());
}

TEST(FaultInjection, FailedWriteLeavesTargetConsistent) {
  osd::StorageTarget t(target_cfg(alloc::AllocatorMode::kOnDemand));
  for (u64 b = 0; b < 64; b += 4) {
    ASSERT_TRUE(t.write(InodeNo{1}, StreamId{1, 0}, FileBlock{b}, 4).ok());
  }
  t.inject_fault(0, 3);
  EXPECT_FALSE(t.write(InodeNo{1}, StreamId{1, 0}, FileBlock{64}, 4).ok());
  EXPECT_FALSE(t.write(InodeNo{2}, StreamId{2, 0}, FileBlock{0}, 4).ok());
  EXPECT_FALSE(t.read(InodeNo{1}, FileBlock{0}, 8).ok());
  const auto report = t.verify();
  EXPECT_TRUE(report.ok()) << "overlap_free=" << report.overlap_free
                           << " space_accounted=" << report.space_accounted;
  // Failed ops allocated nothing.
  EXPECT_EQ(report.mapped_blocks, 64u);
}

TEST(FaultInjection, ErrorPropagatesThroughClient) {
  core::ClusterConfig cfg;
  cfg.num_targets = 3;
  core::ParallelFileSystem fs(cfg);
  auto client = fs.connect(ClientId{1});
  auto fh = client.create("/f");
  ASSERT_TRUE(fh);
  fs.target(0).inject_fault(0, 1);
  // The write stripes across targets; the faulted member fails the call.
  EXPECT_EQ(client.write(*fh, 0, 0, 5 * 16 * kBlockSize).error(), Errc::kIo);
  // Retry after the transient fault succeeds end to end.
  EXPECT_TRUE(client.write(*fh, 0, 0, 5 * 16 * kBlockSize).ok());
}

// A fault in the transport itself (lost wire message, not a device error)
// must surface the same way: kIo to the caller, servers untouched, clean
// recovery on retry.
TEST(FaultInjection, TransportDropSurfacesAsIoError) {
  core::ClusterConfig cfg;
  cfg.num_targets = 3;
  cfg.rpc.inject_faults = true;
  core::ParallelFileSystem fs(cfg);
  auto client = fs.connect(ClientId{1});
  auto fh = client.create("/f");
  ASSERT_TRUE(fh);

  rpc::FaultTransport* fault = fs.transport().fault();
  ASSERT_NE(fault, nullptr);
  fault->arm({.drop_count = 1});
  EXPECT_EQ(client.write(*fh, 0, 0, 5 * 16 * kBlockSize).error(), Errc::kIo);
  EXPECT_EQ(fault->stats().dropped, 1u);
  // The dropped envelope never reached a target: the retry places the very
  // same blocks without conflict and the targets verify clean.
  EXPECT_TRUE(client.write(*fh, 0, 0, 5 * 16 * kBlockSize).ok());
  for (std::size_t t = 0; t < fs.num_targets(); ++t) {
    EXPECT_TRUE(fs.target(t).verify().ok()) << "target " << t;
  }
}

// Killing a target on an UNREPLICATED mount is permanent data loss: the
// sticky dead-read guard fails every read addressed to the wiped target
// with kIo (no silent zero-reads from the replacement disk), while writes
// still pass — that is the path a rebuild would use.
TEST(FaultInjection, KillOsdUnreplicatedReadsFailSticky) {
  core::ClusterConfig cfg;
  cfg.num_targets = 3;
  cfg.rpc.inject_faults = true;
  core::ParallelFileSystem fs(cfg);
  auto client = fs.connect(ClientId{1});
  auto fh = client.create("/f");
  ASSERT_TRUE(fh);
  ASSERT_TRUE(client.write(*fh, 0, 0, 6 * 16 * kBlockSize).ok());

  rpc::FaultTransport* fault = fs.transport().fault();
  ASSERT_NE(fault, nullptr);
  fault->kill_osd(/*target=*/0, /*at_ms=*/0.0);  // due: fires on next call
  // The striped read hits the dead member and fails; it keeps failing —
  // unlike the transient fault window, a kill never heals by itself.
  EXPECT_EQ(client.read(*fh, 0, 6 * 16 * kBlockSize).error(), Errc::kIo);
  EXPECT_EQ(client.read(*fh, 0, 6 * 16 * kBlockSize).error(), Errc::kIo);
  EXPECT_EQ(fault->stats().kills, 1u);
  EXPECT_GT(fault->stats().dead_reads, 0u);
  EXPECT_FALSE(fs.health().alive(0));
  // Writes still flow to the replacement disk, and the survivors verify.
  EXPECT_TRUE(client.write(*fh, 0, 6 * 16 * kBlockSize, 16 * kBlockSize).ok());
  fs.drain_data();
  for (std::size_t t = 0; t < fs.num_targets(); ++t) {
    EXPECT_TRUE(fs.target(t).verify().ok()) << "target " << t;
  }
}

// The same kill against a replicated mount is survivable: reads re-route to
// the surviving copies with zero client-visible errors and the drain
// barrier rebuilds and revives the target.
TEST(FaultInjection, KillOsdReplicatedMountRecovers) {
  core::ClusterConfig cfg;
  cfg.num_targets = 3;
  cfg.rpc.inject_faults = true;
  cfg.redundancy.replicas = 2;
  core::ParallelFileSystem fs(cfg);
  fs.transport().fault()->kill_osd(/*target=*/0, /*at_ms=*/0.0);
  auto client = fs.connect(ClientId{1});
  auto fh = client.create("/f");
  ASSERT_TRUE(fh);
  ASSERT_TRUE(client.write(*fh, 0, 0, 6 * 16 * kBlockSize).ok());
  EXPECT_TRUE(client.read(*fh, 0, 6 * 16 * kBlockSize).ok());
  EXPECT_GT(fs.redundancy_stats().degraded_reads.load(), 0u);
  fs.drain_data();
  EXPECT_TRUE(fs.health().alive(0));
  EXPECT_EQ(fs.repair()->stats().completed, 1u);
  EXPECT_TRUE(client.read(*fh, 0, 6 * 16 * kBlockSize).ok());
  for (std::size_t t = 0; t < fs.num_targets(); ++t) {
    EXPECT_TRUE(fs.target(t).verify().ok()) << "target " << t;
  }
}

// Injected latency must be accounted as its own `fault_delay` category: the
// attributed total matches the transport's own delay counter exactly, and
// the disk-side categories stay identical to an undelayed baseline — a
// slow wire must not masquerade as slow spindles.
TEST(FaultInjection, InjectedDelayIsChargedAsFaultDelay) {
  auto run = [](double delay_ms, obs::CostAccount& out) -> double {
    core::ClusterConfig cfg;
    cfg.num_targets = 3;
    cfg.rpc.inject_faults = true;
    core::ParallelFileSystem fs(cfg);
    obs::Attribution attrib;
    fs.set_attribution(&attrib);
    rpc::FaultTransport* fault = fs.transport().fault();
    if (delay_ms > 0) fault->arm({.delay_ms = delay_ms});
    auto client = fs.connect(ClientId{1});
    auto fh = client.create("/f");
    EXPECT_TRUE(fh);
    EXPECT_TRUE(client.write(*fh, 0, 0, 5 * 16 * kBlockSize).ok());
    EXPECT_TRUE(client.read(*fh, 0, 5 * 16 * kBlockSize).ok());
    EXPECT_TRUE(client.close(*fh).ok());
    fs.finish_mds();
    fs.drain_data();
    out = attrib.total();
    return fault->stats().delay_total_ms;
  };

  obs::CostAccount base, delayed;
  const double base_wire = run(0.0, base);
  const double delayed_wire = run(0.25, delayed);

  EXPECT_DOUBLE_EQ(base_wire, 0.0);
  EXPECT_DOUBLE_EQ(base.fault_delay_ms, 0.0);
  ASSERT_GT(delayed_wire, 0.0);
  // Every injected millisecond lands in the dedicated category...
  EXPECT_DOUBLE_EQ(delayed.fault_delay_ms, delayed_wire);
  // ...and nowhere else: the mechanical/service categories are untouched.
  EXPECT_DOUBLE_EQ(delayed.disk_ms(), base.disk_ms());
  EXPECT_DOUBLE_EQ(delayed.queue_wait_ms, base.queue_wait_ms);
  EXPECT_DOUBLE_EQ(delayed.net_ms, base.net_ms);
  EXPECT_DOUBLE_EQ(delayed.mds_cpu_ms, base.mds_cpu_ms);
  EXPECT_EQ(delayed.net_bytes, base.net_bytes);
}

class TargetVerify : public ::testing::TestWithParam<alloc::AllocatorMode> {};

TEST_P(TargetVerify, CleanAfterChurn) {
  osd::StorageTarget t(target_cfg(GetParam()));
  // Write, close, delete across many files and streams.
  for (int round = 0; round < 5; ++round) {
    for (u64 ino = 1; ino <= 20; ++ino) {
      for (u64 b = 0; b < 32; b += 4) {
        ASSERT_TRUE(t.write(InodeNo{ino}, StreamId{static_cast<u32>(ino), 0},
                            FileBlock{b}, 4)
                        .ok());
      }
    }
    for (u64 ino = 1; ino <= 20; ++ino) {
      t.close_file(InodeNo{ino});
      if (ino % 3 == 0) t.delete_file(InodeNo{ino});
    }
    const auto report = t.verify();
    ASSERT_TRUE(report.ok()) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, TargetVerify,
    ::testing::Values(alloc::AllocatorMode::kVanilla,
                      alloc::AllocatorMode::kReservation,
                      alloc::AllocatorMode::kOnDemand),
    [](const auto& info) {
      std::string s{alloc::to_string(info.param)};
      for (auto& c : s)
        if (c == '-') c = '_';
      return s;
    });

class NamespaceVerify : public ::testing::TestWithParam<mfs::DirectoryMode> {
 protected:
  mfs::MfsConfig cfg() {
    mfs::MfsConfig c;
    c.mode = GetParam();
    return c;
  }
};

TEST_P(NamespaceVerify, CleanAfterMixedNamespaceChurn) {
  mfs::Mfs fs(cfg());
  for (int d = 0; d < 6; ++d) {
    ASSERT_TRUE(fs.mkdir("d" + std::to_string(d)));
    for (int f = 0; f < 50; ++f) {
      ASSERT_TRUE(
          fs.create("d" + std::to_string(d) + "/f" + std::to_string(f)));
    }
  }
  // Churn: renames across directories, deletes, re-creates.
  for (int f = 0; f < 25; ++f) {
    ASSERT_TRUE(fs.rename("d0/f" + std::to_string(f),
                          "d1/moved" + std::to_string(f)));
  }
  for (int f = 0; f < 50; ++f) {
    ASSERT_TRUE(fs.unlink("d2/f" + std::to_string(f)).ok());
  }
  for (int f = 0; f < 30; ++f) {
    ASSERT_TRUE(fs.create("d2/new" + std::to_string(f)));
  }
  const auto report = fs.layout().verify();
  EXPECT_TRUE(report.ok()) << "links=" << report.links_consistent
                           << " blocks=" << report.blocks_unique;
  EXPECT_GT(report.inodes, 0u);
  EXPECT_EQ(report.directories, GetParam() == mfs::DirectoryMode::kEmbedded
                                    ? 7u   // root + 6
                                    : 7u);
}

TEST_P(NamespaceVerify, CleanAfterDeepTreeAndRmdirs) {
  mfs::Mfs fs(cfg());
  std::string path;
  for (int depth = 0; depth < 10; ++depth) {
    path += (depth ? "/lvl" : "lvl") + std::to_string(depth);
    ASSERT_TRUE(fs.mkdir(path));
    ASSERT_TRUE(fs.create(path + "/leaf"));
  }
  // Remove the deepest levels bottom-up.
  for (int depth = 9; depth >= 5; --depth) {
    ASSERT_TRUE(fs.unlink(path + "/leaf").ok());
    ASSERT_TRUE(fs.unlink(path).ok());
    const auto cut = path.rfind('/');
    path.resize(cut == std::string::npos ? 0 : cut);
  }
  EXPECT_TRUE(fs.layout().verify().ok());
}

INSTANTIATE_TEST_SUITE_P(BothLayouts, NamespaceVerify,
                         ::testing::Values(mfs::DirectoryMode::kNormal,
                                           mfs::DirectoryMode::kEmbedded),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(EndToEndVerify, PostmarkLeavesEverythingConsistent) {
  core::ClusterConfig cfg;
  cfg.num_targets = 4;
  cfg.target.allocator = alloc::AllocatorMode::kOnDemand;
  cfg.mds.mfs.mode = mfs::DirectoryMode::kEmbedded;
  core::ParallelFileSystem fs(cfg);
  workload::PostmarkConfig pcfg;
  pcfg.base_files = 300;
  pcfg.transactions = 800;
  pcfg.subdirectories = 12;
  (void)workload::run_postmark(fs, pcfg);
  EXPECT_TRUE(fs.mds().fs().layout().verify().ok());
  for (std::size_t t = 0; t < fs.num_targets(); ++t) {
    EXPECT_TRUE(fs.target(t).verify().ok()) << "target " << t;
  }
}

}  // namespace
}  // namespace mif
