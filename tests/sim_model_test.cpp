// Deeper property tests of the simulation substrate: the cost model's
// monotonicity and invariants under parameter sweeps (TEST_P), the
// track-skip crossover, and split read/write queue behaviour.
#include <gtest/gtest.h>

#include "sim/disk.hpp"
#include "sim/io_scheduler.hpp"
#include "util/rng.hpp"

namespace mif::sim {
namespace {

TEST(DiskSkipModel, ShortForwardGapsAreSkips) {
  Disk d;
  d.service({IoKind::kRead, DiskBlock{0}, 8});
  // A 16-block forward gap costs far less than a seek + rotation.
  d.service({IoKind::kRead, DiskBlock{24}, 8});
  EXPECT_EQ(d.stats().skips, 1u);
  EXPECT_EQ(d.stats().positionings, 0u);
  EXPECT_LT(d.stats().skip_ms, d.geometry().rotational_ms);
}

TEST(DiskSkipModel, LongForwardGapsReposition) {
  Disk d;
  d.service({IoKind::kRead, DiskBlock{0}, 8});
  d.service({IoKind::kRead, DiskBlock{100000}, 8});
  EXPECT_EQ(d.stats().skips, 0u);
  EXPECT_EQ(d.stats().positionings, 1u);
}

TEST(DiskSkipModel, BackwardJumpsAlwaysReposition) {
  Disk d;
  d.service({IoKind::kRead, DiskBlock{1000}, 8});
  d.service({IoKind::kRead, DiskBlock{990}, 8});  // tiny BACKWARD gap
  EXPECT_EQ(d.stats().skips, 0u);
  EXPECT_EQ(d.stats().positionings, 2u);  // initial + backward
}

TEST(DiskSkipModel, DisabledFallsBackToRepositioning) {
  DiskGeometry g;
  g.track_skip = false;
  Disk d(g);
  d.service({IoKind::kRead, DiskBlock{0}, 8});
  d.service({IoKind::kRead, DiskBlock{24}, 8});
  EXPECT_EQ(d.stats().skips, 0u);
  EXPECT_EQ(d.stats().positionings, 1u);
}

TEST(DiskSkipModel, CrossoverMatchesCostFunctions) {
  // At the crossover gap, skip time equals reposition time; below it the
  // model must choose the skip, above it the seek.
  Disk d;
  const double block_ms =
      static_cast<double>(kBlockSize) / (d.geometry().seq_read_mbps * 1e6) *
      1e3;
  // Find a gap whose streaming cost clearly exceeds seek+rotation.
  const u64 big_gap =
      static_cast<u64>((d.geometry().seek_max_ms + d.geometry().rotational_ms) /
                       block_ms) *
      4;
  d.service({IoKind::kRead, DiskBlock{0}, 1});
  d.service({IoKind::kRead, DiskBlock{1 + big_gap}, 1});
  EXPECT_EQ(d.stats().positionings, 1u);
}

struct GeometryCase {
  double rpm_factor;   // scales rotational latency
  double rate_mbps;
  u64 request_blocks;
};

class DiskGeometrySweep : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(DiskGeometrySweep, FragmentationAlwaysCostsMore) {
  const GeometryCase c = GetParam();
  DiskGeometry g;
  g.rotational_ms *= c.rpm_factor;
  g.seq_read_mbps = c.rate_mbps;

  // Contiguous pass.
  Disk contiguous(g);
  double t_contig = 0.0;
  for (u64 i = 0; i < 64; ++i) {
    t_contig += contiguous.service(
        {IoKind::kRead, DiskBlock{i * c.request_blocks}, c.request_blocks});
  }
  // Strided pass (forced discontiguity, spread over the whole device).
  Disk strided(g);
  const u64 stride = (g.capacity_blocks - c.request_blocks) / 64;
  double t_strided = 0.0;
  for (u64 i = 0; i < 64; ++i) {
    t_strided += strided.service(
        {IoKind::kRead, DiskBlock{i * stride}, c.request_blocks});
  }
  EXPECT_GT(t_strided, t_contig)
      << "rpm x" << c.rpm_factor << " rate " << c.rate_mbps;
  // Same bytes transferred in both passes.
  EXPECT_EQ(strided.stats().blocks_read, contiguous.stats().blocks_read);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DiskGeometrySweep,
    ::testing::Values(GeometryCase{1.0, 170.2, 8},
                      GeometryCase{0.5, 170.2, 8},   // 15k rpm
                      GeometryCase{2.0, 80.0, 8},    // slow consumer disk
                      GeometryCase{1.0, 500.0, 8},   // fast media
                      GeometryCase{1.0, 170.2, 64},  // large requests
                      GeometryCase{1.0, 170.2, 1}),  // single blocks
    [](const auto& info) { return "g" + std::to_string(info.index); });

TEST(SplitQueues, WritesBatchDeeperThanReads) {
  Disk d;
  IoScheduler s(d, /*max_queue=*/4, /*max_write_queue=*/64);
  // 4 reads trigger a drain...
  for (u64 i = 0; i < 4; ++i)
    s.submit({IoKind::kRead, DiskBlock{i * 100}, 1});
  EXPECT_EQ(s.stats().dispatched, 4u);
  // ...while 32 writes sit and wait.
  for (u64 i = 0; i < 32; ++i)
    s.submit({IoKind::kWrite, DiskBlock{i * 100}, 1});
  EXPECT_EQ(s.stats().dispatched, 4u);
  s.drain();
  EXPECT_EQ(s.stats().dispatched, 36u);
}

TEST(SplitQueues, WriteThresholdTriggersFullDrain) {
  Disk d;
  IoScheduler s(d, 1000, 8);
  for (u64 i = 0; i < 7; ++i)
    s.submit({IoKind::kWrite, DiskBlock{i * 10}, 1});
  s.submit({IoKind::kRead, DiskBlock{9999}, 1});  // riding along
  EXPECT_EQ(s.stats().dispatched, 0u);
  s.submit({IoKind::kWrite, DiskBlock{70}, 1});  // 8th write → drain all
  EXPECT_GT(s.stats().dispatched, 0u);
  EXPECT_EQ(d.stats().blocks_read, 1u);
}

TEST(SplitQueues, ZeroWriteQueueDefaultsToReadBound) {
  Disk d;
  IoScheduler s(d, 4, 0);
  for (u64 i = 0; i < 4; ++i)
    s.submit({IoKind::kWrite, DiskBlock{i * 10}, 1});
  EXPECT_EQ(s.stats().dispatched, 4u);  // writes bounded by max_queue
}

// Property: the scheduler never loses or duplicates blocks, whatever the
// submission mix.
TEST(SchedulerProperty, BlocksConservedUnderRandomMix) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    Disk d;
    IoScheduler s(d, 32, 128);
    u64 submitted_read = 0, submitted_write = 0;
    for (int i = 0; i < 500; ++i) {
      const bool rd = rng.chance(0.5);
      const u64 len = rng.uniform(1, 16);
      // Non-overlapping ranges so merges conserve exact totals.
      const u64 start = static_cast<u64>(i) * 32 + (rd ? 0 : 16);
      s.submit({rd ? IoKind::kRead : IoKind::kWrite, DiskBlock{start}, len});
      (rd ? submitted_read : submitted_write) += len;
    }
    s.drain();
    EXPECT_EQ(d.stats().blocks_read, submitted_read);
    EXPECT_EQ(d.stats().blocks_written, submitted_write);
  }
}

TEST(SchedulerProperty, MergingNeverSlowerThanFifo) {
  Rng rng(78);
  Disk fifo, merged;
  IoScheduler s(merged, 4096, 4096);
  double t_fifo = 0.0;
  for (int i = 0; i < 300; ++i) {
    const DiskRequest req{IoKind::kRead,
                          DiskBlock{rng.uniform(0, 1 << 20)}, 4};
    t_fifo += fifo.service(req);
    s.submit(req);
  }
  const double t_merged = s.drain();
  EXPECT_LE(t_merged, t_fifo);
}

}  // namespace
}  // namespace mif::sim
