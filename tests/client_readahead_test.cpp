// Tests for the client-side readahead and buffering added to ClientFs: the
// Lustre-style mechanism that turns an application's small sequential reads
// into large per-region fetches.
#include <gtest/gtest.h>

#include "core/pfs.hpp"

namespace mif::client {
namespace {

core::ClusterConfig cfg_with_ra(u64 max_blocks) {
  core::ClusterConfig cfg;
  cfg.num_targets = 2;
  cfg.stripe.unit_blocks = 64;
  cfg.target.allocator = alloc::AllocatorMode::kStatic;
  cfg.client_readahead_max_blocks = max_blocks;
  return cfg;
}

struct ReadaheadFixture : ::testing::Test {
  core::ParallelFileSystem fs{cfg_with_ra(256)};
  ClientFs client{fs.connect(ClientId{1})};
  FileHandle fh;

  void SetUp() override {
    auto h = client.create("/data");
    ASSERT_TRUE(h);
    fh = *h;
    ASSERT_TRUE(fs.preallocate(fh.ino, 4096).ok());  // 16 MiB, contiguous
    ASSERT_TRUE(client.write(fh, 0, 0, 4096 * kBlockSize).ok());
    fs.drain_data();
    fs.reset_data_stats();
  }
};

TEST_F(ReadaheadFixture, FirstReadFetchesExactlyWhatWasAsked) {
  ASSERT_TRUE(client.read(fh, 0, 8 * kBlockSize).ok());
  fs.drain_data();
  EXPECT_EQ(fs.data_stats().blocks_read, 8u);
}

TEST_F(ReadaheadFixture, SequentialReadsPrefetchAhead) {
  ASSERT_TRUE(client.read(fh, 0, 8 * kBlockSize).ok());
  ASSERT_TRUE(client.read(fh, 8 * kBlockSize, 8 * kBlockSize).ok());
  fs.drain_data();
  // The second (sequential) read pulled a window beyond the 16 asked-for
  // blocks.
  EXPECT_GT(fs.data_stats().blocks_read, 16u);
  EXPECT_GT(client.stats().readahead_blocks, 0u);
}

TEST_F(ReadaheadFixture, PrefetchedDataIsNotReFetched) {
  // Walk the file sequentially; total disk traffic must stay ~file size,
  // not file size × window overshoot.
  for (u64 off = 0; off < 2048; off += 8) {
    ASSERT_TRUE(client.read(fh, off * kBlockSize, 8 * kBlockSize).ok());
  }
  fs.drain_data();
  const u64 read = fs.data_stats().blocks_read;
  EXPECT_GE(read, 2048u);
  EXPECT_LE(read, 2048u + 512u);  // at most one overshoot window beyond
  EXPECT_GT(client.stats().readahead_hits, 0u);
}

TEST_F(ReadaheadFixture, RandomReadsDoNotPrefetch) {
  ASSERT_TRUE(client.read(fh, 0, 4 * kBlockSize).ok());
  ASSERT_TRUE(client.read(fh, 1000 * kBlockSize, 4 * kBlockSize).ok());
  ASSERT_TRUE(client.read(fh, 500 * kBlockSize, 4 * kBlockSize).ok());
  fs.drain_data();
  EXPECT_EQ(fs.data_stats().blocks_read, 12u);
  EXPECT_EQ(client.stats().readahead_blocks, 0u);
}

TEST_F(ReadaheadFixture, WindowIsCapped) {
  for (u64 off = 0; off < 4000; off += 8) {
    ASSERT_TRUE(client.read(fh, off * kBlockSize, 8 * kBlockSize).ok());
  }
  fs.drain_data();
  // Even after a long run, traffic never exceeded file + one max window.
  EXPECT_LE(fs.data_stats().blocks_read, 4096u + 256u);
}

TEST_F(ReadaheadFixture, TwoInterleavedStreamsTrackIndependently) {
  // Stream A at the file head, stream B in the middle, interleaved: both
  // must be detected as sequential.
  for (u64 step = 0; step < 64; ++step) {
    ASSERT_TRUE(client.read(fh, step * 8 * kBlockSize, 8 * kBlockSize).ok());
    ASSERT_TRUE(
        client.read(fh, (2048 + step * 8) * kBlockSize, 8 * kBlockSize).ok());
  }
  fs.drain_data();
  EXPECT_GT(client.stats().readahead_hits, 32u);
}

TEST(ReadaheadDisabled, ZeroMaxMeansRawReads) {
  core::ParallelFileSystem fs(cfg_with_ra(0));
  auto client = fs.connect(ClientId{1});
  auto fh = client.create("/raw");
  ASSERT_TRUE(fh);
  ASSERT_TRUE(client.write(*fh, 0, 0, 256 * kBlockSize).ok());
  fs.drain_data();
  fs.reset_data_stats();
  for (u64 off = 0; off < 256; off += 8) {
    ASSERT_TRUE(client.read(*fh, off * kBlockSize, 8 * kBlockSize).ok());
  }
  fs.drain_data();
  EXPECT_EQ(fs.data_stats().blocks_read, 256u);
  EXPECT_EQ(client.stats().readahead_blocks, 0u);
}

TEST(ReadaheadPlacementInteraction, ReadaheadShrinksRequestStream) {
  // With readahead on, the storage targets see far fewer, larger requests
  // for the same sequential scan.
  auto queued_reads = [](u64 ra_blocks) {
    core::ParallelFileSystem fs(cfg_with_ra(ra_blocks));
    auto client = fs.connect(ClientId{1});
    auto fh = client.create("/scan");
    EXPECT_TRUE(fh.ok());
    EXPECT_TRUE(client.write(*fh, 0, 0, 2048 * kBlockSize).ok());
    fs.drain_data();
    u64 before = 0;
    for (std::size_t t = 0; t < fs.num_targets(); ++t)
      before += fs.target(t).io().stats().queued;
    for (u64 off = 0; off < 2048; off += 4) {
      EXPECT_TRUE(client.read(*fh, off * kBlockSize, 4 * kBlockSize).ok());
    }
    fs.drain_data();
    u64 after = 0;
    for (std::size_t t = 0; t < fs.num_targets(); ++t)
      after += fs.target(t).io().stats().queued;
    return after - before;
  };
  const u64 with_ra = queued_reads(256);
  const u64 without_ra = queued_reads(0);
  EXPECT_LT(with_ra, without_ra / 4);
}

}  // namespace
}  // namespace mif::client
